// client asks a running archlined daemon the paper's fig. 1 question —
// GTX Titan versus the power-matched Arndale GPU aggregate — using only
// the HTTP API, the way a dashboard or notebook would. Start the daemon
// first:
//
//	archline serve -addr :8080        (or: go run ./cmd/archlined)
//	go run ./examples/client -url http://localhost:8080
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"strings"
	"time"
)

// compareResult mirrors the /v1/compare response fields the report
// needs; extra fields in the response are ignored.
type compareResult struct {
	AName    string `json:"a_name"`
	BName    string `json:"b_name"`
	AggCount int    `json:"agg_count"`

	EnergyCrossover  *float64 `json:"energy_crossover"`
	AggPerfCrossover *float64 `json:"agg_perf_crossover"`
	MaxAggSpeedup    float64  `json:"max_agg_speedup"`
	AggPeakFraction  float64  `json:"agg_peak_fraction"`

	Eff []struct {
		Name   string `json:"name"`
		Points []struct {
			Intensity float64 `json:"intensity"`
			Value     float64 `json:"value"`
		} `json:"points"`
	} `json:"eff"`
}

func main() {
	url := flag.String("url", "http://localhost:8080", "archlined base URL")
	flag.Parse()

	client := &http.Client{Timeout: 30 * time.Second}

	resp, err := client.Post(*url+"/v1/compare", "application/json", strings.NewReader(
		`{"a": {"platform_id": "gtx-titan"}, "b": {"platform_id": "arndale-gpu"},
		  "imin": 0.125, "imax": 256, "points": 48}`))
	if err != nil {
		log.Fatalf("is archlined running? %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var envelope struct {
			Error struct{ Message string } `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&envelope)
		log.Fatalf("compare failed: %s: %s", resp.Status, envelope.Error.Message)
	}
	var cmp compareResult
	if err := json.NewDecoder(resp.Body).Decode(&cmp); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("fig. 1 via HTTP: %s vs %s\n\n", cmp.AName, cmp.BName)
	fmt.Printf("power-matched aggregate: %d x %s\n", cmp.AggCount, cmp.BName)
	if cmp.EnergyCrossover != nil {
		fmt.Printf("energy-efficiency crossover: single blocks tie at I = %.2f flop:Byte\n",
			*cmp.EnergyCrossover)
	} else {
		fmt.Println("no energy-efficiency crossover on the swept range")
	}
	if cmp.AggPerfCrossover != nil {
		fmt.Printf("aggregate performance crossover at I = %.2f flop:Byte\n", *cmp.AggPerfCrossover)
	}
	fmt.Printf("max aggregate speedup over %s: %.2fx\n", cmp.AName, cmp.MaxAggSpeedup)
	fmt.Printf("aggregate peak fraction at high intensity: %.2f\n\n", cmp.AggPeakFraction)

	if len(cmp.Eff) == 3 {
		fmt.Println("intensity    big flop/J     small flop/J   small/big")
		points := cmp.Eff[0].Points
		small := cmp.Eff[1].Points
		for k := 0; k < len(points) && k < len(small); k += 8 {
			fmt.Printf("%9.3f   %10.2f G   %10.2f G      %.2f\n",
				points[k].Intensity, points[k].Value/1e9, small[k].Value/1e9,
				small[k].Value/points[k].Value)
		}
	}
}
