// fitplatform runs the paper's full measurement-and-fitting pipeline on
// one simulated platform: execute the microbenchmark suite, record every
// run with the PowerMon-style meter, then recover the six model
// parameters (plus cache levels and random access) by nonlinear
// regression and compare them with the platform's published Table I
// constants.
package main

import (
	"flag"
	"fmt"
	"log"

	"archline"
	"archline/internal/fit"
)

func main() {
	id := flag.String("platform", "gtx-titan", "platform ID")
	seed := flag.Uint64("seed", 7, "measurement noise seed")
	flag.Parse()

	plat, err := archline.GetPlatform(archline.PlatformID(*id))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("platform: %s (%s, %s)\n", plat.Name, plat.Processor, plat.Microarch)

	suite, err := archline.RunSuite(plat, archline.SimOptions{Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("suite: %d measurements, idle power %.2f W\n\n",
		len(suite.Measurements), float64(suite.IdlePower))

	pf, err := fit.Platform(suite, fit.Options{Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}

	row := func(name string, got, want float64, unit string) {
		relErr := 0.0
		if want != 0 {
			relErr = 100 * (got - want) / want
		}
		fmt.Printf("  %-10s fitted %12.4g %-9s published %12.4g  (%+.1f%%)\n",
			name, got, unit, want, relErr)
	}
	fmt.Println("recovered model parameters:")
	row("1/tau_f", 1/float64(pf.Params.TauFlop), float64(plat.Sustained.SingleRate), "flop/s")
	row("1/tau_m", 1/float64(pf.Params.TauMem), float64(plat.Sustained.MemBW), "B/s")
	row("eps_s", float64(pf.Params.EpsFlop)*1e12, float64(plat.Single.EpsFlop)*1e12, "pJ/flop")
	row("eps_mem", float64(pf.Params.EpsMem)*1e12, float64(plat.Single.EpsMem)*1e12, "pJ/B")
	row("pi_1", pf.Params.Pi1.Watts(), plat.Single.Pi1.Watts(), "W")
	row("delta_pi", pf.Params.DeltaPi.Watts(), plat.Single.DeltaPi.Watts(), "W")
	if plat.SupportsDouble() {
		row("eps_d", float64(pf.DoubleEps)*1e12, float64(plat.DoubleEps)*1e12, "pJ/flop")
	}
	if pf.L1 != nil && plat.L1 != nil {
		row("eps_L1", float64(pf.L1.Eps)*1e12, float64(plat.L1.Eps)*1e12, "pJ/B")
	}
	if pf.L2 != nil && plat.L2 != nil {
		row("eps_L2", float64(pf.L2.Eps)*1e12, float64(plat.L2.Eps)*1e12, "pJ/B")
	}
	if pf.Rand != nil && plat.Rand != nil {
		row("eps_rand", float64(pf.Rand.Eps)*1e9, float64(plat.Rand.Eps)*1e9, "nJ/acc")
	}
	fmt.Printf("\nfit RMS log-residual: %.4f\n", pf.Residual)

	// Validate the recovered model: predict a workload it never saw.
	fftW, err := archline.FFT(1<<26, 4, plat.L2Size.Count())
	if err != nil {
		log.Fatal(err)
	}
	predFit := pf.Params.Predict(fftW.W, fftW.Q)
	predRef := plat.Single.Predict(fftW.W, fftW.Q)
	fmt.Printf("\ncross-check on a 64M-point FFT (I = %.2f flop:Byte):\n", float64(fftW.Intensity()))
	fmt.Printf("  fitted model:    %.3f s, %.1f J\n", float64(predFit.Time), float64(predFit.Energy))
	fmt.Printf("  published model: %.3f s, %.1f J\n", float64(predRef.Time), float64(predRef.Energy))
}
