// algorithms places the paper's motivating workloads — SpMV, a large
// FFT, dense matmul, a 3D stencil, out-of-core sorting, and BFS — on
// every Table I platform's time and energy rooflines, answering the
// question the paper poses in its introduction: which building block
// would you want for which algorithmic regime?
package main

import (
	"fmt"
	"log"
	"sort"

	"archline"
)

func main() {
	// Build the workload set. The fast-memory capacity Z matters for the
	// cache-oblivious traffic bounds; use 1 MiB as a representative
	// last-level cache per building block.
	const z = 1 << 20
	spmv, err := archline.SpMV(1<<22, 1<<26, 4)
	check(err)
	fft, err := archline.FFT(1<<26, 4, z)
	check(err)
	mm, err := archline.MatMul(4096, 4, z)
	check(err)
	st, err := archline.Stencil7(512, 4, z)
	check(err)
	srt, err := archline.MergeSort(1<<28, 4, z)
	check(err)

	workloads := []archline.Workload{spmv, fft, mm, st, srt}

	fmt.Println("workload intensities (single precision):")
	for _, w := range workloads {
		fmt.Printf("  %-10s I = %6.2f flop:Byte   (W = %.3g ops, Q = %.3g B)\n",
			w.Name, float64(w.Intensity()), float64(w.W), float64(w.Q))
	}

	// For each workload, rank the platforms by energy efficiency.
	for _, w := range workloads {
		type entry struct {
			name string
			eff  float64 // flop/J
			rate float64 // flop/s
		}
		var entries []entry
		for _, p := range archline.Platforms() {
			pl, err := archline.PlaceWorkload(w, p.Single, p.Rand)
			check(err)
			entries = append(entries, entry{
				name: p.Name,
				eff:  w.W.Count() / pl.Energy.Joules(),
				rate: w.W.Count() / pl.Time.Seconds(),
			})
		}
		sort.Slice(entries, func(i, j int) bool { return entries[i].eff > entries[j].eff })
		fmt.Printf("\n%s (I = %.2f flop:Byte) — platforms by flop/J:\n",
			w.Name, float64(w.Intensity()))
		for rank, e := range entries {
			if rank >= 5 {
				fmt.Printf("  ... %d more\n", len(entries)-5)
				break
			}
			fmt.Printf("  %d. %-14s %8.2f Gflop/J  %10.1f Gflop/s\n",
				rank+1, e.name, e.eff/1e9, e.rate/1e9)
		}
	}

	// BFS is the odd one out: costed against eps_rand where measured.
	// The paper's conclusion highlights the Xeon Phi's random-access
	// energy as an order of magnitude better than everyone else's.
	fmt.Println("\nBFS (64M edges) — random-access platforms by edges/J:")
	type entry struct {
		name string
		perJ float64
	}
	var entries []entry
	for _, p := range archline.Platforms() {
		if p.Rand == nil {
			continue
		}
		bfs, err := archline.BFS(1<<20, 1<<26, p.Rand.Line.Count())
		check(err)
		pl, err := archline.PlaceWorkload(bfs, p.Single, p.Rand)
		check(err)
		entries = append(entries, entry{p.Name, bfs.W.Count() / pl.Energy.Joules()})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].perJ > entries[j].perJ })
	for rank, e := range entries {
		fmt.Printf("  %d. %-14s %8.2f Medges/J\n", rank+1, e.name, e.perJ/1e6)
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
