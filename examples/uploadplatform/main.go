// uploadplatform drives a running archlined daemon's persistent
// platform registry end to end, the way an operator onboarding a
// freshly calibrated board would: upload the description, query the
// model through the new ID, re-upload after recalibration and watch
// the version bump (and the old answers vanish), revalidate with the
// content-hash ETag, then tombstone the entry. Start the daemon with a
// data directory first:
//
//	archline serve -addr :8080 -data-dir /tmp/archlined-data
//	go run ./examples/uploadplatform -url http://localhost:8080
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"
	"time"
)

// board renders the platform description for a small dev board; the
// sustained-gflops knob stands in for a recalibration.
func board(gflops float64) string {
	return fmt.Sprintf(`{
		"id": "demo-board", "name": "Demo Dev Board", "class": "mini",
		"cache_line_bytes": 64,
		"vendor_single_gflops": %g, "vendor_mem_gbs": 20, "idle_w": 3,
		"sustained_single_gflops": %g, "sustained_mem_gbs": 10,
		"eps_s_pj_per_flop": 40, "eps_mem_pj_per_byte": 300,
		"pi1_w": 2, "delta_pi_w": 4
	}`, gflops*1.25, gflops)
}

// uploadAck mirrors the POST /v1/platforms response body.
type uploadAck struct {
	ID      string `json:"id"`
	Version uint64 `json:"version"`
	ETag    string `json:"etag"`
	Outcome string `json:"outcome"`
}

func main() {
	url := flag.String("url", "http://localhost:8080", "archlined base URL")
	flag.Parse()
	client := &http.Client{Timeout: 30 * time.Second}

	// Upload the calibrated board. The 201 comes back only after the
	// description is fsync'd and atomically in place on disk — the ETag
	// is the SHA-256 of the canonical bytes the daemon will serve back.
	ack := upload(client, *url, board(8))
	fmt.Printf("uploaded  %s v%d (%s)  etag %s\n", ack.ID, ack.Version, ack.Outcome, ack.ETag)

	// The upload resolves exactly like a Table I built-in.
	fmt.Printf("query v%d: %s\n", ack.Version, query(client, *url))

	// Identical bytes are idempotent: no new version, outcome says so.
	again := upload(client, *url, board(8))
	fmt.Printf("re-upload %s v%d (%s)\n", again.ID, again.Version, again.Outcome)

	// Recalibration doubled the sustained rate: the version bumps and
	// every cached answer computed against v1 is unreachable — the next
	// query must reflect the new board, immediately.
	ack2 := upload(client, *url, board(16))
	fmt.Printf("re-upload %s v%d (%s)  etag %s\n", ack2.ID, ack2.Version, ack2.Outcome, ack2.ETag)
	fmt.Printf("query v%d: %s\n", ack2.Version, query(client, *url))

	// Conditional GET: the current ETag revalidates for free.
	req, err := http.NewRequest(http.MethodGet, *url+"/v1/platforms/demo-board", nil)
	if err != nil {
		log.Fatal(err)
	}
	req.Header.Set("If-None-Match", ack2.ETag)
	resp, err := client.Do(req)
	if err != nil {
		log.Fatalf("revalidate: %v", err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	fmt.Printf("revalidate with current etag: %s\n", resp.Status)

	// Clean up: tombstone the entry. A later re-creation would start
	// above v3 — no cache anywhere can confuse it with this board.
	del, err := http.NewRequest(http.MethodDelete, *url+"/v1/platforms/demo-board", nil)
	if err != nil {
		log.Fatal(err)
	}
	dresp, err := client.Do(del)
	if err != nil {
		log.Fatalf("delete: %v", err)
	}
	_, _ = io.Copy(io.Discard, dresp.Body)
	_ = dresp.Body.Close()
	fmt.Printf("delete: %s\n", dresp.Status)
}

// upload POSTs one platform description and decodes the acknowledgement.
func upload(client *http.Client, base, platform string) uploadAck {
	resp, err := client.Post(base+"/v1/platforms", "application/json", strings.NewReader(platform))
	if err != nil {
		log.Fatalf("upload: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		log.Fatalf("upload read: %v", err)
	}
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		log.Fatalf("upload: %s: %s (is the daemon running with -data-dir?)", resp.Status, body)
	}
	var ack uploadAck
	if err := json.Unmarshal(body, &ack); err != nil {
		log.Fatalf("upload ack %q: %v", body, err)
	}
	return ack
}

// query asks for the compute-bound rate forms on the uploaded board and
// returns the headline numbers.
func query(client *http.Client, base string) string {
	resp, err := client.Post(base+"/v1/query", "application/json",
		strings.NewReader(`{"platform_id": "demo-board", "intensity": 1000}`))
	if err != nil {
		log.Fatalf("query: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		log.Fatalf("query: %s: %s (%v)", resp.Status, body, err)
	}
	var out struct {
		Regime        string   `json:"regime"`
		FlopsPerSec   *float64 `json:"flops_per_sec"`
		FlopsPerJoule *float64 `json:"flops_per_joule"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		log.Fatalf("query JSON: %v", err)
	}
	gf, gfj := 0.0, 0.0
	if out.FlopsPerSec != nil {
		gf = *out.FlopsPerSec / 1e9
	}
	if out.FlopsPerJoule != nil {
		gfj = *out.FlopsPerJoule / 1e9
	}
	return fmt.Sprintf("%s, %.1f Gflop/s, %.2f Gflops/J", out.Regime, gf, gfj)
}
