// powercap walks through the paper's section V-D what-if analyses: what
// happens to power, performance, and energy efficiency when a node's
// usable power cap DeltaPi is reduced (figs. 6-7), and how a throttled
// big node compares against an assembly of small nodes under the same
// power bound.
package main

import (
	"fmt"
	"log"

	"archline"
)

func main() {
	titan := archline.MustPlatform(archline.GTXTitan)
	mali := archline.MustPlatform(archline.ArndaleGPU)

	// Figs. 6-7: sweep the Titan under DeltaPi/k.
	grid := archline.LogSpace(0.25, 128, 10)
	curves, err := archline.ThrottleSweep(titan.Single, []float64{1, 0.5, 0.25, 0.125}, grid)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GTX Titan under power caps (pi_1 = %.0f W stays)\n\n", float64(titan.Single.Pi1))
	fmt.Print("intensity ")
	for _, c := range curves {
		fmt.Printf("  cap x%-5.3g", c.Frac)
	}
	fmt.Println("   <- average power (W) and regime")
	for k, i := range grid {
		fmt.Printf("%9.3f ", float64(i))
		for _, c := range curves {
			pt := c.Points[k]
			fmt.Printf("  %5.0f W (%s)", float64(pt.Power), pt.Regime.Letter())
		}
		fmt.Println()
	}

	// The section V-D headline: reducing DeltaPi by k reduces total power
	// by less than k because pi_1 remains.
	full := curves[0].Params.PeakAvgPower()
	eighth := curves[3].Params.PeakAvgPower()
	fmt.Printf("\ncap cut 8x -> peak power only %.1fx lower (%.0f W -> %.0f W): pi_1 dominates\n",
		full.Watts()/eighth.Watts(), float64(full), float64(eighth))

	// Power bounding: a 50% node power bound.
	budget := titan.Single.PeakAvgPower().Watts() / 2
	res, err := archline.PowerBound(titan.Single, mali.Single, budget, 0.25)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npower bound: %.0f W per node (half a Titan node), workload I = 0.25 flop:Byte\n", budget)
	fmt.Printf("  option A: throttle the Titan to DeltaPi x %.3f -> %.2fx of its unthrottled speed (paper: ~0.31x)\n",
		res.CapFrac, res.BigPerfRatio)
	fmt.Printf("  option B: %d Arndale GPUs in the same envelope -> %.2fx faster than option A (paper: ~2.8x)\n",
		res.SmallCount, res.SmallVsBig)
	fmt.Println("\nconclusion (paper): a lower power grainsize plus low pi_1 degrades more gracefully under a power bound")
}
