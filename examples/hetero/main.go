// hetero partitions divisible work across a mixed pool of building
// blocks — the plural reading of the paper's title. Given one GTX Titan
// and a tray of Arndale GPUs, how should a bandwidth-bound workload be
// split to finish fastest, and how does that change when the goal is
// energy under a deadline?
package main

import (
	"fmt"
	"log"

	"archline"
)

func main() {
	titan := archline.MustPlatform(archline.GTXTitan)
	mali := archline.MustPlatform(archline.ArndaleGPU)
	pool := []archline.HeteroMachine{
		{Name: titan.Name, Params: titan.Single, Count: 1},
		{Name: mali.Name, Params: mali.Single, Count: 16},
	}
	work := archline.Flops(2e12)

	fmt.Println("pool: 1x GTX Titan + 16x Arndale GPU")
	fmt.Printf("work: %.0f Gflop\n\n", work.Count()/1e9)

	for _, i := range []archline.Intensity{0.25, 4, 64} {
		timeOpt, err := archline.SplitForTime(pool, work, i)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("I = %-5.4g  time-optimal: %5.1f%% Titan, %5.1f%% Malis -> %.2f s, %.0f J\n",
			float64(i),
			100*timeOpt.Shares[0].Fraction, 100*timeOpt.Shares[1].Fraction,
			float64(timeOpt.Time), float64(timeOpt.Energy))

		// Energy-optimal at the same deadline: shift work toward the
		// machine with cheaper marginal joules per flop (never worse).
		energyOpt, err := archline.SplitForEnergy(pool, work, i, timeOpt.Time)
		if err != nil {
			log.Fatal(err)
		}
		saved := 100 * (1 - energyOpt.Energy.Joules()/timeOpt.Energy.Joules())
		fmt.Printf("           energy-optimal (same deadline): %5.1f%% Titan -> %.0f J (%.1f%% saved)\n",
			100*energyOpt.Shares[0].Fraction, float64(energyOpt.Energy), saved)

		// Relaxing the deadline 2x: the pool's constant power burns for
		// the whole window, and with pi_1-dominated machines that swamps
		// the dynamic savings — the paper's pi_1 lesson at pool scale.
		relaxed, err := archline.SplitForEnergy(pool, work, i, archline.Time(2*timeOpt.Time.Seconds()))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("           2x-relaxed window: %.0f J (%.0f%% MORE: pi_1 burns all window)\n",
			float64(relaxed.Energy),
			100*(relaxed.Energy.Joules()/energyOpt.Energy.Joules()-1))
	}

	fmt.Println("\nreading: at low intensity the Malis' aggregate bandwidth earns them a real")
	fmt.Println("share of the work; at high intensity the Titan's flops dominate. And slowing")
	fmt.Println("down costs energy here: the pool's constant power (the paper's pi_1 lesson)")
	fmt.Println("makes racing-to-done the energy-efficient policy at pool scale too.")
}
