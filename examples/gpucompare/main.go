// gpucompare reproduces the paper's fig. 1 demonstration end-to-end
// through the public API: should a future HPC system be built from
// high-end desktop GPUs (GTX Titan) or swarms of low-power mobile GPUs
// (Arndale/Mali T-604)?
package main

import (
	"fmt"
	"log"

	"archline"
)

func main() {
	titan := archline.MustPlatform(archline.GTXTitan)
	mali := archline.MustPlatform(archline.ArndaleGPU)

	fmt.Printf("big block:   %s — %s, %.0f W peak\n", titan.Name, titan.Processor,
		float64(titan.Single.PeakAvgPower()))
	fmt.Printf("small block: %s — %s, %.1f W peak\n\n", mali.Name, mali.Processor,
		float64(mali.Single.PeakAvgPower()))

	cmp, err := archline.CompareBlocks(titan.Name, titan.Single, mali.Name, mali.Single,
		0.125, 256, 48)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("power-matched aggregate: %d x %s\n\n", cmp.AggCount, mali.Name)
	fmt.Println("intensity   Titan flop/J  Arndale flop/J  ratio   aggregate/Titan perf")
	for k, i := range cmp.Grid {
		if k%6 != 0 {
			continue
		}
		tEff := cmp.Eff[0].Points[k].Value
		aEff := cmp.Eff[1].Points[k].Value
		perfRatio := cmp.Perf[2].Points[k].Value / cmp.Perf[0].Points[k].Value
		fmt.Printf("%8.3f   %9.2f G  %11.2f G   %.2f        %.2fx\n",
			float64(i), tEff/1e9, aEff/1e9, aEff/tEff, perfRatio)
	}

	fmt.Println("\nfindings (paper's fig. 1 reading):")
	fmt.Printf("  - the two blocks tie on flop/J at I = %.1f flop:Byte (paper: as high as 4)\n",
		float64(cmp.EnergyCrossover))
	fmt.Printf("  - the %d-GPU aggregate beats the Titan by up to %.2fx for I < %.1f (paper: 1.6x below ~4)\n",
		cmp.AggCount, cmp.MaxAggSpeedup, float64(cmp.AggPerfCrossover))
	fmt.Printf("  - but its peak is only %.2fx of the Titan's (paper: < 1/2)\n", cmp.AggPeakFraction)

	// Where do real algorithms land? The paper reads fig. 1 through SpMV
	// and a large FFT.
	spmv, err := archline.SpMV(1<<22, 1<<26, 4)
	if err != nil {
		log.Fatal(err)
	}
	fft, err := archline.FFT(1<<26, 4, 1<<20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nalgorithm placements:")
	for _, w := range []archline.Workload{spmv, fft} {
		i := w.Intensity()
		tEff := float64(titan.Single.FlopsPerJouleAt(i))
		aEff := float64(mali.Single.FlopsPerJouleAt(i))
		winner := "Titan"
		if aEff > tEff {
			winner = "Arndale GPU"
		}
		fmt.Printf("  %-6s I = %.2f flop:Byte -> Titan %.2f Gflop/J, Arndale %.2f Gflop/J (%s ahead)\n",
			w.Name, float64(i), tEff/1e9, aEff/1e9, winner)
	}
}
