// asyncfit drives a running archlined daemon's async fit-job API end
// to end, the way an operator recalibrating a platform would: submit a
// measure→fit job under a fault profile, follow its NDJSON progress
// stream live, then poll the terminal body and report the re-fitted
// constants next to the paper's Table I values. Start the daemon
// first:
//
//	archline serve -addr :8080        (or: go run ./cmd/archlined)
//	go run ./examples/asyncfit -url http://localhost:8080
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"
	"time"
)

// jobInfo mirrors the /v1/fit and /v1/jobs/{id} wire shape; extra
// fields are ignored.
type jobInfo struct {
	ID     string `json:"id"`
	Name   string `json:"name"`
	State  string `json:"state"`
	Error  string `json:"error"`
	Result struct {
		FaultProfile string `json:"fault_profile"`
		Robust       struct {
			Repeats    int    `json:"repeats"`
			Retries    int    `json:"retries"`
			Discarded  int    `json:"discarded"`
			WorstGrade string `json:"worst_grade"`
		} `json:"robust"`
		Fit struct {
			EpsFlopJ float64 `json:"eps_flop_j_per_flop"`
			EpsMemJ  float64 `json:"eps_mem_j_per_byte"`
			Pi1W     float64 `json:"pi1_w"`
			Kernels  int     `json:"kernels"`
		} `json:"fit"`
		Grade string `json:"grade"`
	} `json:"result"`
}

func main() {
	url := flag.String("url", "http://localhost:8080", "archlined base URL")
	profile := flag.String("profile", "paper", "fault profile: none, paper, harsh")
	flag.Parse()

	client := &http.Client{Timeout: 5 * time.Minute}

	// Submit: 202 Accepted comes back immediately; the measurement and
	// fit run off the request path.
	body := fmt.Sprintf(`{"platform_id": "gtx-titan", "fault_profile": %q, "seed": 42}`, *profile)
	resp, err := client.Post(*url+"/v1/fit", "application/json", strings.NewReader(body))
	if err != nil {
		log.Fatalf("is archlined running? %v", err)
	}
	out, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		log.Fatalf("submit failed: %s: %s", resp.Status, out)
	}
	var job jobInfo
	if err := json.Unmarshal(out, &job); err != nil {
		log.Fatalf("submit body: %v", err)
	}
	fmt.Printf("submitted %s (%s), state %s\n", job.ID, job.Name, job.State)

	// Follow the progress stream until the daemon sends the trailer.
	stream, err := client.Get(*url + "/v1/jobs/" + job.ID + "/events")
	if err != nil {
		log.Fatal(err)
	}
	sc := bufio.NewScanner(stream.Body)
	for sc.Scan() {
		var ev struct {
			Job    string         `json:"job"` // set only on the header line
			Name   string         `json:"name"`
			Attrs  map[string]any `json:"attrs"`
			Replay int            `json:"replay"`
			Done   *bool          `json:"done"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			continue
		}
		switch {
		case ev.Done != nil:
			fmt.Printf("  stream done=%v\n", *ev.Done)
		case ev.Job != "":
			fmt.Printf("  following %s (%d events replayed)\n", ev.Job, ev.Replay)
		case ev.Name != "":
			fmt.Printf("  event %-14s %v\n", ev.Name, ev.Attrs)
		}
	}
	_ = stream.Body.Close()
	if err := sc.Err(); err != nil {
		log.Fatalf("event stream: %v", err)
	}

	// The job is terminal now; fetch the full result body.
	final := poll(client, *url, job.ID)
	if final.State != "done" {
		log.Fatalf("job ended %s: %s", final.State, final.Error)
	}
	r := final.Result
	fmt.Printf("\nre-fitted GTX Titan under the %q profile (grade %s):\n", r.FaultProfile, r.Grade)
	fmt.Printf("  robust: %d repeats, %d retries, %d discarded, worst trace %s\n",
		r.Robust.Repeats, r.Robust.Retries, r.Robust.Discarded, r.Robust.WorstGrade)
	fmt.Printf("  %-22s %12s %12s\n", "constant", "fitted", "Table I")
	for _, row := range []struct {
		name   string
		fitted float64
		truth  float64
	}{
		// Table I, GTX Titan single precision: 30.4 pJ/flop,
		// 267 pJ/B, 123 W.
		{"eps_flop (J/flop)", r.Fit.EpsFlopJ, 30.4e-12},
		{"eps_mem  (J/byte)", r.Fit.EpsMemJ, 267e-12},
		{"pi_1     (W)", r.Fit.Pi1W, 123},
	} {
		fmt.Printf("  %-22s %12.3e %12.3e\n", row.name, row.fitted, row.truth)
	}
	fmt.Printf("  fitted from %d kernels\n", r.Fit.Kernels)
}

// poll fetches the job until it is terminal.
func poll(client *http.Client, base, id string) jobInfo {
	for {
		resp, err := client.Get(base + "/v1/jobs/" + id)
		if err != nil {
			log.Fatal(err)
		}
		var job jobInfo
		err = json.NewDecoder(resp.Body).Decode(&job)
		_ = resp.Body.Close()
		if err != nil {
			log.Fatal(err)
		}
		switch job.State {
		case "done", "failed", "canceled":
			return job
		}
		time.Sleep(100 * time.Millisecond)
	}
}
