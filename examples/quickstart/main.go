// Quickstart: build a machine from headline numbers, ask the capped
// energy-roofline model (eqs. (1)-(7) of the paper) for time, energy,
// and power across intensities, and find where two machines trade
// places.
package main

import (
	"fmt"
	"log"

	"archline"
)

func main() {
	// A hypothetical accelerator: 2 Tflop/s, 200 GB/s, 40 pJ/flop,
	// 300 pJ/B, 50 W constant power, 120 W usable above that.
	custom, err := archline.NewMachine(2e12, 200e9, 40e-12, 300e-12, 50, 120)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== custom machine ==")
	fmt.Printf("time balance (intrinsic flop:Byte): %.1f\n", float64(custom.TimeBalance()))
	fmt.Printf("peak energy efficiency: %.2f Gflop/J\n", float64(custom.PeakFlopsPerJoule())/1e9)
	fmt.Printf("power-capped anywhere? %v\n\n", !custom.Powerful())

	fmt.Println("intensity  regime          flop/s       flop/J       power     throttle")
	for _, i := range archline.LogSpace(0.25, 256, 11) {
		fmt.Printf("%8.2f   %-14s  %8.2f G  %8.2f G  %6.1f W  %.2fx\n",
			float64(i),
			custom.RegimeAt(i),
			float64(custom.FlopRateAt(i))/1e9,
			float64(custom.FlopsPerJouleAt(i))/1e9,
			float64(custom.AvgPowerAt(i)),
			custom.ThrottleFactor(i))
	}

	// Compare against a Table I platform.
	titan := archline.MustPlatform(archline.GTXTitan)
	fmt.Printf("\n== vs %s ==\n", titan.Name)
	x, err := archline.Crossover(custom, titan.Single, archline.MetricFlopsPerJoule, 0.125, 512)
	switch err {
	case nil:
		fmt.Printf("energy-efficiency crossover at I = %.2f flop:Byte\n", float64(x))
	default:
		fmt.Println("no energy-efficiency crossover in [1/8, 512]:", err)
	}

	// Concrete workload: one capped-model prediction.
	w, q := 1e12, 250e9 // 1 Tflop over 250 GB -> I = 4
	pred := custom.Predict(archline.Flops(w), archline.Bytes(q))
	fmt.Printf("\n1 Tflop at 4 flop:Byte -> time %.3f s, energy %.1f J, power %.1f W (%s)\n",
		float64(pred.Time), float64(pred.Energy), float64(pred.AvgPower), pred.Regime)
}
