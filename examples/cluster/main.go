// cluster quantifies the caveat the paper attaches to its fig. 1
// analysis: the 47-Arndale-GPU "supercomputer" that power-matches a GTX
// Titan "ignores the significant costs of an interconnection network".
// This example builds that machine with real interconnect parameters and
// runs a distributed CG solve on it.
package main

import (
	"fmt"
	"log"

	"archline"
)

func main() {
	titan := archline.MustPlatform(archline.GTXTitan)
	mali := archline.MustPlatform(archline.ArndaleGPU)
	nodes, err := archline.PowerMatch(titan.Single, mali.Single)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("power-matched aggregate: %d x %s vs 1 x %s\n\n", nodes, mali.Name, titan.Name)

	networks := []struct {
		name string
		net  archline.ClusterNetwork
	}{
		{"free network (fig. 1 best case)", archline.ClusterNetwork{SwitchRadix: 1, LinkBW: 1e15}},
		{"1 GbE-class fabric", archline.EthernetLowPower()},
		{"FDR InfiniBand fabric", archline.InfinibandFDR()},
	}

	// One distributed CG iteration on 2^24 unknowns, ~16 nonzeros/row:
	// the SpMV's halo plus two allreduce dots.
	const n, nnz = 1 << 24, 1 << 28
	cg, err := archline.CG(n, nnz, 4, 1)
	if err != nil {
		log.Fatal(err)
	}
	total, err := cg.Total()
	if err != nil {
		log.Fatal(err)
	}

	// The Titan baseline runs it monolithically.
	base := titan.Single.Predict(total.W, total.Q)
	fmt.Printf("Titan baseline: %.1f ms, %.2f J per iteration\n\n",
		1e3*base.Time.Seconds(), float64(base.Energy))

	for _, nw := range networks {
		cl := &archline.Cluster{Node: mali.Single, Nodes: nodes, Net: nw.net, Overlap: true}
		// Per superstep: the whole CG iteration's flops and traffic,
		// with a halo of ~surface bytes per node plus dot reductions.
		halo := archline.Bytes(4 * 2 * (n / int64(nodes))) // 2 ghost vectors' worth
		pred, err := cl.Run(archline.ClusterStep{
			W: total.W, Q: total.Q, Msg: halo, Pattern: archline.Halo,
		})
		if err != nil {
			log.Fatal(err)
		}
		speedup := base.Time.Seconds() / pred.Time.Seconds()
		energyRatio := base.Energy.Joules() / pred.Energy.Joules()
		bound := "node-bound"
		if pred.NetworkBound {
			bound = "NETWORK-bound"
		}
		fmt.Printf("%-32s  %.1f ms (%.2fx vs Titan), %.2f J (%.2fx), const %s, %s\n",
			nw.name,
			1e3*pred.Time.Seconds(), speedup,
			float64(pred.Energy), energyRatio,
			fmtW(cl.ConstantPower().Watts()), bound)
	}

	fmt.Println("\nthe paper's caveat: with the network charged, the aggregate improves on")
	fmt.Println("the Titan \"only marginally or not at all\" — the free-network numbers are")
	fmt.Println("the best case, and every real fabric above erodes them.")
}

func fmtW(w float64) string { return fmt.Sprintf("%.0f W", w) }
