// Package fit implements the paper's parameter-estimation pipeline: the
// "(nonlinear) regression parameter fitting techniques to obtain
// statistically significant estimates of the values tau_flop, tau_mem,
// eps_flop, eps_mem, pi_1, and DeltaPi, as well as the corresponding
// parameters for each cache level" (section V-A).
//
// The optimizer is a classic Nelder-Mead downhill simplex with restarts
// and multi-start, which is robust to the kinks the capped model's
// max(...) introduces into the objective. Linear sub-problems use QR
// least squares.
package fit

import (
	"errors"
	"math"
	"sort"

	"archline/internal/stats"
)

// Objective is a scalar function to minimize.
type Objective func(x []float64) float64

// NMOptions tune the Nelder-Mead optimizer.
type NMOptions struct {
	// MaxIter bounds the number of simplex iterations. Default 2000.
	MaxIter int
	// Tol terminates when the simplex's relative function spread falls
	// below it. Default 1e-10.
	Tol float64
	// Step is the initial simplex displacement per coordinate. Default 0.1.
	Step float64
}

func (o NMOptions) withDefaults() NMOptions {
	if o.MaxIter <= 0 {
		o.MaxIter = 2000
	}
	if o.Tol <= 0 {
		o.Tol = 1e-10
	}
	if o.Step == 0 {
		o.Step = 0.1
	}
	return o
}

// NMResult is the outcome of a minimization.
type NMResult struct {
	X     []float64 // best point found
	F     float64   // objective at X
	Iters int       // iterations used
}

// NelderMead minimizes f starting from x0.
func NelderMead(f Objective, x0 []float64, opts NMOptions) (NMResult, error) {
	if f == nil {
		return NMResult{}, errors.New("fit: nil objective")
	}
	n := len(x0)
	if n == 0 {
		return NMResult{}, errors.New("fit: empty start point")
	}
	opts = opts.withDefaults()

	// Standard coefficients.
	const (
		alpha = 1.0 // reflection
		gamma = 2.0 // expansion
		rho   = 0.5 // contraction
		sigma = 0.5 // shrink
	)

	type vertex struct {
		x []float64
		f float64
	}
	eval := func(x []float64) float64 {
		v := f(x)
		if math.IsNaN(v) {
			return math.Inf(1)
		}
		return v
	}
	// Build the initial simplex.
	simplex := make([]vertex, n+1)
	base := append([]float64(nil), x0...)
	simplex[0] = vertex{x: base, f: eval(base)}
	for i := 1; i <= n; i++ {
		x := append([]float64(nil), x0...)
		step := opts.Step
		if x[i-1] != 0 {
			step = opts.Step * math.Abs(x[i-1])
		}
		x[i-1] += step
		simplex[i] = vertex{x: x, f: eval(x)}
	}

	centroid := make([]float64, n)
	trial := make([]float64, n)
	iters := 0
	for ; iters < opts.MaxIter; iters++ {
		sort.Slice(simplex, func(a, b int) bool { return simplex[a].f < simplex[b].f })
		best, worst := simplex[0], simplex[n]
		// Convergence requires both the objective spread and the simplex
		// extent to be small: a flat-valley simplex (equal f at distinct
		// points, common with piecewise objectives) must keep contracting
		// rather than stop early.
		spread := math.Abs(worst.f - best.f)
		scale := math.Abs(best.f) + math.Abs(worst.f) + 1e-300
		xspread := 0.0
		for j := 0; j < n; j++ {
			lo, hi := simplex[0].x[j], simplex[0].x[j]
			for i := 1; i <= n; i++ {
				lo = math.Min(lo, simplex[i].x[j])
				hi = math.Max(hi, simplex[i].x[j])
			}
			rel := (hi - lo) / (1 + math.Abs(best.x[j]))
			xspread = math.Max(xspread, rel)
		}
		if spread/scale < opts.Tol && xspread < math.Sqrt(opts.Tol) {
			break
		}
		// Centroid of all but the worst.
		for j := range centroid {
			centroid[j] = 0
		}
		for i := 0; i < n; i++ {
			for j := range centroid {
				centroid[j] += simplex[i].x[j]
			}
		}
		for j := range centroid {
			centroid[j] /= float64(n)
		}
		// Reflection.
		for j := range trial {
			trial[j] = centroid[j] + alpha*(centroid[j]-worst.x[j])
		}
		fr := eval(trial)
		switch {
		case fr < best.f:
			// Expansion.
			exp := make([]float64, n)
			for j := range exp {
				exp[j] = centroid[j] + gamma*(trial[j]-centroid[j])
			}
			if fe := eval(exp); fe < fr {
				simplex[n] = vertex{x: exp, f: fe}
			} else {
				simplex[n] = vertex{x: append([]float64(nil), trial...), f: fr}
			}
		case fr < simplex[n-1].f:
			simplex[n] = vertex{x: append([]float64(nil), trial...), f: fr}
		default:
			// Contraction (inside or outside).
			var fc float64
			con := make([]float64, n)
			if fr < worst.f {
				for j := range con {
					con[j] = centroid[j] + rho*(trial[j]-centroid[j])
				}
				fc = eval(con)
				if fc <= fr {
					simplex[n] = vertex{x: con, f: fc}
					continue
				}
			} else {
				for j := range con {
					con[j] = centroid[j] + rho*(worst.x[j]-centroid[j])
				}
				fc = eval(con)
				if fc < worst.f {
					simplex[n] = vertex{x: con, f: fc}
					continue
				}
			}
			// Shrink toward the best vertex.
			for i := 1; i <= n; i++ {
				for j := range simplex[i].x {
					simplex[i].x[j] = best.x[j] + sigma*(simplex[i].x[j]-best.x[j])
				}
				simplex[i].f = eval(simplex[i].x)
			}
		}
	}
	sort.Slice(simplex, func(a, b int) bool { return simplex[a].f < simplex[b].f })
	return NMResult{X: simplex[0].x, F: simplex[0].f, Iters: iters}, nil
}

// MultiStart runs NelderMead from x0 and from `restarts` log-normally
// perturbed copies, returning the best result. It is the defence against
// the capped objective's local minima.
func MultiStart(f Objective, x0 []float64, restarts int, spread float64, seed uint64, opts NMOptions) (NMResult, error) {
	best, err := NelderMead(f, x0, opts)
	if err != nil {
		return NMResult{}, err
	}
	rng := stats.NewStream(seed, "multistart")
	for r := 0; r < restarts; r++ {
		x := make([]float64, len(x0))
		for j := range x {
			if x0[j] == 0 {
				x[j] = rng.Gaussian(0, spread)
			} else {
				x[j] = x0[j] + spread*math.Abs(x0[j])*rng.NormFloat64()
			}
		}
		res, err := NelderMead(f, x, opts)
		if err != nil {
			return NMResult{}, err
		}
		if res.F < best.F {
			best = res
		}
	}
	return best, nil
}
