package fit

import (
	"errors"
	"math"
)

// LeastSquares solves the overdetermined linear system min ||A x - b||_2
// by Householder QR factorization. A is row-major with m rows and n
// columns (m >= n); it must have full column rank.
func LeastSquares(a [][]float64, b []float64) ([]float64, error) {
	m := len(a)
	if m == 0 {
		return nil, errors.New("fit: empty system")
	}
	n := len(a[0])
	if n == 0 || m < n {
		return nil, errors.New("fit: system must have at least as many rows as columns")
	}
	if len(b) != m {
		return nil, errors.New("fit: right-hand side length mismatch")
	}
	// Work on copies.
	r := make([][]float64, m)
	for i := range a {
		if len(a[i]) != n {
			return nil, errors.New("fit: ragged matrix")
		}
		r[i] = append([]float64(nil), a[i]...)
	}
	y := append([]float64(nil), b...)

	// Frobenius norm sets the scale for the rank-deficiency test.
	frob := 0.0
	for i := range r {
		for _, v := range r[i] {
			frob += v * v
		}
	}
	rankTol := 1e-12 * math.Sqrt(frob)

	// Householder QR: for each column k, reflect to zero below diagonal.
	for k := 0; k < n; k++ {
		// Norm of the column below (and including) the diagonal.
		norm := 0.0
		for i := k; i < m; i++ {
			norm += r[i][k] * r[i][k]
		}
		norm = math.Sqrt(norm)
		if norm <= rankTol {
			return nil, errors.New("fit: rank-deficient system")
		}
		if r[k][k] > 0 {
			norm = -norm
		}
		// v = x - norm*e1 (stored in place), beta = 2/(v'v).
		v := make([]float64, m-k)
		v[0] = r[k][k] - norm
		for i := k + 1; i < m; i++ {
			v[i-k] = r[i][k]
		}
		vtv := 0.0
		for _, vi := range v {
			vtv += vi * vi
		}
		if vtv == 0 {
			continue
		}
		beta := 2 / vtv
		// Apply H = I - beta v v' to remaining columns of R and to y.
		for j := k; j < n; j++ {
			dot := 0.0
			for i := k; i < m; i++ {
				dot += v[i-k] * r[i][j]
			}
			dot *= beta
			for i := k; i < m; i++ {
				r[i][j] -= dot * v[i-k]
			}
		}
		dot := 0.0
		for i := k; i < m; i++ {
			dot += v[i-k] * y[i]
		}
		dot *= beta
		for i := k; i < m; i++ {
			y[i] -= dot * v[i-k]
		}
	}
	// Back-substitution on the upper-triangular R.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= r[i][j] * x[j]
		}
		if r[i][i] == 0 {
			return nil, errors.New("fit: singular upper triangle")
		}
		x[i] = s / r[i][i]
	}
	return x, nil
}

// Residual returns ||A x - b||_2 for a candidate solution.
func Residual(a [][]float64, b, x []float64) float64 {
	s := 0.0
	for i := range a {
		r := -b[i]
		for j := range x {
			r += a[i][j] * x[j]
		}
		s += r * r
	}
	return math.Sqrt(s)
}
