package fit

import (
	"testing"

	"archline/internal/machine"
	"archline/internal/microbench"
)

func TestBootstrapIntervalsCoverTruth(t *testing.T) {
	res := runSuite(t, machine.GTXTitan, false)
	br, err := Bootstrap(res, 30, 0.95, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if br.B != 30 || br.Level != 0.95 {
		t.Error("metadata")
	}
	truth := machine.MustByID(machine.GTXTitan).Single
	want := map[string]float64{
		"tau_flop": float64(truth.TauFlop),
		"tau_mem":  float64(truth.TauMem),
		"pi_1":     float64(truth.Pi1),
		"delta_pi": float64(truth.DeltaPi),
	}
	for name, v := range want {
		iv, ok := br.Intervals[name]
		if !ok {
			t.Fatalf("missing interval for %s", name)
		}
		if iv.Lo > iv.Hi {
			t.Errorf("%s: interval inverted [%v, %v]", name, iv.Lo, iv.Hi)
		}
		// A 95% interval padded by 5% of the point estimate should cover
		// the true value (bootstrap noise on 30 replicates is coarse).
		pad := 0.05 * iv.Point
		if v < iv.Lo-pad || v > iv.Hi+pad {
			t.Errorf("%s: truth %v outside [%v, %v]", name, v, iv.Lo, iv.Hi)
		}
		// Intervals should be informative: width well under the estimate.
		if iv.Width() > 0.5*iv.Point {
			t.Errorf("%s: interval too wide: %v vs point %v", name, iv.Width(), iv.Point)
		}
	}
}

func TestBootstrapIntervalHelpers(t *testing.T) {
	iv := Interval{Lo: 1, Point: 2, Hi: 3}
	if iv.Width() != 2 {
		t.Error("width")
	}
	if !iv.Contains(2) || iv.Contains(0) || iv.Contains(4) {
		t.Error("contains")
	}
}

func TestBootstrapErrors(t *testing.T) {
	res := runSuite(t, machine.GTXTitan, true)
	if _, err := Bootstrap(res, 5, 0.95, Options{}); err == nil {
		t.Error("too few replicates should error")
	}
	if _, err := Bootstrap(res, 20, 0, Options{}); err == nil {
		t.Error("bad level should error")
	}
	if _, err := Bootstrap(res, 20, 1, Options{}); err == nil {
		t.Error("bad level should error")
	}
	tiny := &microbench.Result{Platform: res.Platform, Measurements: res.Measurements[:3]}
	if _, err := Bootstrap(tiny, 20, 0.95, Options{}); err == nil {
		t.Error("insufficient data should error")
	}
}

func TestBootstrapDeterministic(t *testing.T) {
	res := runSuite(t, machine.ArndaleCPU, false)
	a, err := Bootstrap(res, 12, 0.9, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Bootstrap(res, 12, 0.9, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for name, iv := range a.Intervals {
		if b.Intervals[name] != iv {
			t.Fatalf("%s: bootstrap not deterministic per seed", name)
		}
	}
}

func TestBootstrapNoiselessIsTight(t *testing.T) {
	// Noiseless measurements: resampling changes nothing material, so
	// intervals collapse around the point estimate.
	res := runSuite(t, machine.GTXTitan, true)
	br, err := Bootstrap(res, 15, 0.95, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for name, iv := range br.Intervals {
		if iv.Width() > 0.05*iv.Point {
			t.Errorf("%s: noiseless interval should be tight, got width %v of point %v",
				name, iv.Width(), iv.Point)
		}
	}
}
