package fit

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"archline/internal/microbench"
	"archline/internal/model"
	"archline/internal/sim"
	"archline/internal/stats"
)

// Interval is a bootstrap percentile confidence interval with the
// point estimate from the full-sample fit.
type Interval struct {
	Lo, Point, Hi float64
}

// Width returns Hi - Lo.
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

// Contains reports whether v lies inside [Lo, Hi].
func (iv Interval) Contains(v float64) bool { return v >= iv.Lo && v <= iv.Hi }

// BootstrapResult carries per-parameter confidence intervals for the
// six DRAM-level model parameters.
type BootstrapResult struct {
	// Intervals maps parameter name (tau_flop, tau_mem, eps_s, eps_mem,
	// pi_1, delta_pi) to its interval.
	Intervals map[string]Interval
	// B is the number of bootstrap replicates used.
	B int
	// Level is the confidence level (e.g. 0.95).
	Level float64
}

// paramVector extracts the six parameters in a fixed order.
func paramVector(p model.Params) [6]float64 {
	return [6]float64{
		float64(p.TauFlop), float64(p.TauMem),
		float64(p.EpsFlop), float64(p.EpsMem),
		p.Pi1.Watts(), p.DeltaPi.Watts(),
	}
}

// paramNames matches paramVector's order.
var paramNames = [6]string{"tau_flop", "tau_mem", "eps_s", "eps_mem", "pi_1", "delta_pi"}

// Bootstrap estimates confidence intervals for the fitted DRAM
// parameters by case-resampling the single-precision sweep measurements
// B times and refitting each replicate. The paper reports its fits as
// "statistically significant estimates"; this is the machinery that
// quantifies that claim for the reproduction.
func Bootstrap(res *microbench.Result, b int, level float64, opts Options) (*BootstrapResult, error) {
	if b < 10 {
		return nil, errors.New("fit: need at least 10 bootstrap replicates")
	}
	if level <= 0 || level >= 1 {
		return nil, errors.New("fit: confidence level must be in (0,1)")
	}
	sweep := res.Sweep(sim.Single)
	if len(sweep) < 6 {
		return nil, errors.New("fit: insufficient sweep data to bootstrap")
	}
	// Point estimate from the full sample.
	point, err := Platform(res, opts)
	if err != nil {
		return nil, err
	}
	pv := paramVector(point.Params)

	// Replicate fits use fewer restarts: each resample is a perturbation
	// of a well-conditioned problem whose solution is near the point
	// estimate. Replicates are independent, so they fan out across a
	// worker pool; each derives its own deterministic resampling stream,
	// making the result identical at any parallelism.
	repOpts := opts
	repOpts.Restarts = 2

	type repResult struct {
		vec [6]float64
		err error
	}
	results := make([]repResult, b)
	var wg sync.WaitGroup
	jobs := make(chan int)
	workers := runtime.NumCPU()
	if workers > b {
		workers = b
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := range jobs {
				rng := stats.NewStream(opts.Seed^0xb00f,
					fmt.Sprintf("bootstrap-%s-%d", res.Platform.ID, rep))
				clone := &microbench.Result{
					Platform:  res.Platform,
					IdlePower: res.IdlePower,
				}
				// Case-resample the SP sweep; keep everything else out
				// (only the DRAM parameters are bootstrapped).
				for range sweep {
					clone.Measurements = append(clone.Measurements, sweep[rng.Intn(len(sweep))])
				}
				pf, err := Platform(clone, repOpts)
				if err != nil {
					results[rep] = repResult{err: err}
					continue
				}
				results[rep] = repResult{vec: paramVector(pf.Params)}
			}
		}()
	}
	for rep := 0; rep < b; rep++ {
		jobs <- rep
	}
	close(jobs)
	wg.Wait()

	samples := make([][]float64, 6)
	for rep, r := range results {
		if r.err != nil {
			return nil, fmt.Errorf("fit: bootstrap replicate %d: %w", rep, r.err)
		}
		for j := range samples {
			samples[j] = append(samples[j], r.vec[j])
		}
	}

	alpha := (1 - level) / 2
	out := &BootstrapResult{Intervals: map[string]Interval{}, B: b, Level: level}
	for j, name := range paramNames {
		s := append([]float64(nil), samples[j]...)
		sort.Float64s(s)
		out.Intervals[name] = Interval{
			Lo:    stats.Quantile(s, alpha),
			Point: pv[j],
			Hi:    stats.Quantile(s, 1-alpha),
		}
	}
	return out, nil
}
