package fit

import (
	"math"
	"testing"
	"time"

	"archline/internal/faults"
	"archline/internal/machine"
	"archline/internal/microbench"
	"archline/internal/model"
	"archline/internal/powermon"
	"archline/internal/sim"
	"archline/internal/stats"
	"archline/internal/units"
)

func noSleep(time.Duration) {}

// runRobustSuite runs the fault-hardened pipeline under an injector.
func runRobustSuite(t *testing.T, inj *faults.Injector, seed uint64) *microbench.Result {
	t.Helper()
	res, _, err := microbench.RunRobust(machine.MustByID(machine.GTXTitan),
		microbench.DefaultConfig(),
		sim.Options{Seed: seed, Faults: inj, Sanitize: true},
		microbench.RobustConfig{Sleep: noSleep})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// cappedPowerErrs is the fig. 4 statistic under a fitted model: the
// relative error of the capped power prediction per sweep measurement.
func cappedPowerErrs(res *microbench.Result, p model.Params) []float64 {
	var errs []float64
	for _, m := range res.Sweep(sim.Single) {
		measured := m.AvgPower.Watts()
		if measured <= 0 {
			continue
		}
		pred := p.AvgPowerAt(m.Intensity).Watts()
		errs = append(errs, (pred-measured)/measured)
	}
	return errs
}

// TestRobustPipelineRecoversUnderPaperFaults is the PR's acceptance
// bar: with the paper-plausible fault profile (≤2% dropped samples,
// ≤0.5% spikes, roughly one throttle event per run), the hardened
// measure→fit pipeline must recover the Table I energy and power
// constants within 5% of ground truth, and its fig. 4 validation
// statistic must be indistinguishable from a fault-free run's.
func TestRobustPipelineRecoversUnderPaperFaults(t *testing.T) {
	res := runRobustSuite(t, faults.New(faults.Paper(), 7), 42)
	pf, err := Platform(res, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	truth := machine.MustByID(machine.GTXTitan).Single
	for _, c := range []struct {
		name      string
		got, want float64
	}{
		{"eps_flop", float64(pf.Params.EpsFlop), float64(truth.EpsFlop)},
		{"eps_mem", float64(pf.Params.EpsMem), float64(truth.EpsMem)},
		{"pi_1", float64(pf.Params.Pi1), float64(truth.Pi1)},
	} {
		if re := relErr(c.got, c.want); re > 0.05 {
			t.Errorf("%s = %v, truth %v (rel err %.3f > 0.05)", c.name, c.got, c.want, re)
		}
	}
	if pf.Grade > powermon.GradeB {
		t.Errorf("robust fit grade = %v under the paper profile", pf.Grade)
	}

	// KS validation: the capped-model power-error distribution under
	// faults must match the clean pipeline's.
	clean, err := microbench.Run(machine.MustByID(machine.GTXTitan),
		microbench.DefaultConfig(), sim.Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	cleanFit, err := Platform(clean, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	ks, err := stats.KolmogorovSmirnov(
		cappedPowerErrs(res, pf.Params),
		cappedPowerErrs(clean, cleanFit.Params))
	if err != nil {
		t.Fatal(err)
	}
	if ks.Significant(0.05) {
		t.Errorf("fault-pipeline error distribution distinguishable from clean: %+v", ks)
	}
}

// TestNaivePipelineFailsUnderPaperFaults shows the hardening is load-
// bearing: the pre-existing naive path (no retry, no sanitization, no
// repeats, least squares only) must demonstrably fail under the same
// profile — either a hard transient error or constants pulled beyond
// the 5% acceptance band.
func TestNaivePipelineFailsUnderPaperFaults(t *testing.T) {
	inj := faults.New(faults.Paper(), 7)
	res, err := microbench.Run(machine.MustByID(machine.GTXTitan),
		microbench.DefaultConfig(), sim.Options{Seed: 42, Faults: inj})
	if err != nil {
		if !powermon.IsTransient(err) {
			t.Fatalf("naive failure should be a transient meter error, got %v", err)
		}
		return // died on a disconnect: the failure mode retries exist for
	}
	pf, err := Platform(res, Options{Seed: 2})
	if err != nil {
		return // fit blew up outright: also a demonstrated failure
	}
	truth := machine.MustByID(machine.GTXTitan).Single
	worst := 0.0
	for _, c := range [][2]float64{
		{float64(pf.Params.EpsFlop), float64(truth.EpsFlop)},
		{float64(pf.Params.EpsMem), float64(truth.EpsMem)},
		{float64(pf.Params.Pi1), float64(truth.Pi1)},
	} {
		if re := relErr(c[0], c[1]); re > worst {
			worst = re
		}
	}
	if worst <= 0.05 {
		t.Errorf("naive pipeline recovered constants within 5%% (worst %.3f) — fault profile too gentle to matter", worst)
	}
}

// TestRobustRefitOnSyntheticContamination exercises the Huber fallback
// in isolation: observations generated from known parameters with a
// contaminated minority must trip the diagnostics, switch estimators,
// and still recover the truth.
func TestRobustRefitOnSyntheticContamination(t *testing.T) {
	truth := machine.MustByID(machine.GTXTitan).Single
	mk := func(corrupt bool) *microbench.Result {
		res := &microbench.Result{
			Platform:  machine.MustByID(machine.GTXTitan),
			IdlePower: truth.Pi1,
		}
		for i := 0; i < 25; i++ {
			fpw := 0.5 * math.Pow(2048/0.5, float64(i)/24)
			w := units.Flops(fpw * 16e6)
			q := units.Bytes(4 * 16e6)
			tm := truth.Time(w, q)
			pw := truth.Energy(w, q).Over(tm)
			if corrupt && i%8 == 3 {
				pw *= 2.5 // an un-sanitized spike burst's bias
			}
			res.Measurements = append(res.Measurements, sim.Measurement{
				Platform: machine.GTXTitan, Kernel: "syn",
				Precision: sim.Single, Pattern: sim.StreamPattern,
				Level: model.LevelDRAM,
				W:     w, Q: q, Intensity: w.Intensity(q),
				Time: tm, Energy: units.Power(pw).For(tm), AvgPower: units.Power(pw),
			})
		}
		return res
	}
	cleanFit, err := Platform(mk(false), Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if cleanFit.RobustApplied || cleanFit.Grade != powermon.GradeA {
		t.Errorf("clean synthetic fit flagged: robust=%v grade=%v contamination=%v",
			cleanFit.RobustApplied, cleanFit.Grade, cleanFit.Contamination)
	}
	dirtyFit, err := Platform(mk(true), Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !dirtyFit.RobustApplied {
		t.Fatalf("contaminated synthetic fit did not trigger the Huber refit (contamination %v)",
			dirtyFit.Contamination)
	}
	if dirtyFit.Grade != powermon.GradeB {
		t.Errorf("contaminated fit grade = %v, want B", dirtyFit.Grade)
	}
	for _, c := range []struct {
		name      string
		got, want float64
	}{
		{"eps_flop", float64(dirtyFit.Params.EpsFlop), float64(truth.EpsFlop)},
		{"eps_mem", float64(dirtyFit.Params.EpsMem), float64(truth.EpsMem)},
		{"pi_1", float64(dirtyFit.Params.Pi1), float64(truth.Pi1)},
	} {
		if re := relErr(c.got, c.want); re > 0.05 {
			t.Errorf("robust %s = %v, truth %v (rel err %.3f)", c.name, c.got, c.want, re)
		}
	}
}
