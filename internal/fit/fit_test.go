package fit

import (
	"math"
	"testing"

	"archline/internal/machine"
	"archline/internal/microbench"
	"archline/internal/sim"
)

// runSuite produces a suite result for fitting tests.
func runSuite(t *testing.T, id machine.ID, noiseless bool) *microbench.Result {
	t.Helper()
	res, err := microbench.Run(machine.MustByID(id), microbench.DefaultConfig(),
		sim.Options{Seed: 11, Noiseless: noiseless})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func relErr(got, want float64) float64 {
	return math.Abs(got-want) / math.Abs(want)
}

func TestPlatformFitRecoversTitanNoiseless(t *testing.T) {
	res := runSuite(t, machine.GTXTitan, true)
	pf, err := Platform(res, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	truth := machine.MustByID(machine.GTXTitan)
	checks := []struct {
		name      string
		got, want float64
		tol       float64
	}{
		{"tau_flop", float64(pf.Params.TauFlop), float64(truth.Single.TauFlop), 0.02},
		{"tau_mem", float64(pf.Params.TauMem), float64(truth.Single.TauMem), 0.02},
		{"eps_flop", float64(pf.Params.EpsFlop), float64(truth.Single.EpsFlop), 0.05},
		{"eps_mem", float64(pf.Params.EpsMem), float64(truth.Single.EpsMem), 0.05},
		{"pi_1", float64(pf.Params.Pi1), float64(truth.Single.Pi1), 0.05},
		{"delta_pi", float64(pf.Params.DeltaPi), float64(truth.Single.DeltaPi), 0.05},
		{"eps_d", float64(pf.DoubleEps), float64(truth.DoubleEps), 0.08},
	}
	for _, c := range checks {
		if relErr(c.got, c.want) > c.tol {
			t.Errorf("%s = %v, truth %v (rel err %.3f > %.3f)",
				c.name, c.got, c.want, relErr(c.got, c.want), c.tol)
		}
	}
	if pf.Residual > 0.02 {
		t.Errorf("noiseless residual %v should be tiny", pf.Residual)
	}
	// Cache levels recovered.
	if pf.L1 == nil || pf.L2 == nil {
		t.Fatal("Titan fit should include L1 and L2")
	}
	if relErr(float64(pf.L1.Eps), float64(truth.L1.Eps)) > 0.10 {
		t.Errorf("eps_L1 = %v, truth %v", pf.L1.Eps, truth.L1.Eps)
	}
	if relErr(float64(pf.L2.Eps), float64(truth.L2.Eps)) > 0.10 {
		t.Errorf("eps_L2 = %v, truth %v", pf.L2.Eps, truth.L2.Eps)
	}
	// Random access recovered.
	if pf.Rand == nil {
		t.Fatal("Titan fit should include random access")
	}
	if relErr(float64(pf.Rand.Rate), float64(truth.Rand.Rate)) > 0.05 {
		t.Errorf("rand rate = %v, truth %v", pf.Rand.Rate, truth.Rand.Rate)
	}
	if relErr(float64(pf.Rand.Eps), float64(truth.Rand.Eps)) > 0.10 {
		t.Errorf("eps_rand = %v, truth %v", pf.Rand.Eps, truth.Rand.Eps)
	}
}

func TestPlatformFitNoisy(t *testing.T) {
	// With realistic measurement noise the fit should still land within
	// ~10% of ground truth on the main parameters.
	res := runSuite(t, machine.GTXTitan, false)
	pf, err := Platform(res, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	truth := machine.MustByID(machine.GTXTitan).Single
	if relErr(float64(pf.Params.TauFlop), float64(truth.TauFlop)) > 0.10 {
		t.Errorf("tau_flop off by %v", relErr(float64(pf.Params.TauFlop), float64(truth.TauFlop)))
	}
	if relErr(float64(pf.Params.Pi1), float64(truth.Pi1)) > 0.10 {
		t.Errorf("pi_1 = %v, truth %v", pf.Params.Pi1, truth.Pi1)
	}
	if relErr(float64(pf.Params.DeltaPi), float64(truth.DeltaPi)) > 0.15 {
		t.Errorf("delta_pi = %v, truth %v", pf.Params.DeltaPi, truth.DeltaPi)
	}
}

func TestPlatformFitMobileBoard(t *testing.T) {
	// A low-power platform with very different magnitudes (watts vs
	// hundreds of watts) must fit equally well.
	res := runSuite(t, machine.ArndaleCPU, true)
	pf, err := Platform(res, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	truth := machine.MustByID(machine.ArndaleCPU).Single
	for _, c := range []struct {
		name      string
		got, want float64
	}{
		{"tau_flop", float64(pf.Params.TauFlop), float64(truth.TauFlop)},
		{"tau_mem", float64(pf.Params.TauMem), float64(truth.TauMem)},
		{"pi_1", float64(pf.Params.Pi1), float64(truth.Pi1)},
		{"delta_pi", float64(pf.Params.DeltaPi), float64(truth.DeltaPi)},
	} {
		if relErr(c.got, c.want) > 0.08 {
			t.Errorf("%s = %v, truth %v", c.name, c.got, c.want)
		}
	}
}

func TestPlatformFitWithoutOptionalData(t *testing.T) {
	// NUC GPU: no double, no caches, no chase. Fit must succeed with only
	// the SP sweep and leave the optional outputs empty.
	res := runSuite(t, machine.NUCGPU, true)
	pf, err := Platform(res, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if pf.DoubleEps != 0 {
		t.Error("no DP data: eps_d should stay 0")
	}
	if pf.L1 != nil || pf.L2 != nil || pf.Rand != nil {
		t.Error("no cache/chase data: optional fits should stay nil")
	}
	if pf.Params.Validate() != nil {
		t.Error("fitted params should validate")
	}
}

func TestPlatformFitInsufficientData(t *testing.T) {
	res := runSuite(t, machine.GTXTitan, true)
	res.Measurements = res.Measurements[:4]
	if _, err := Platform(res, Options{Seed: 5}); err == nil {
		t.Error("too few observations should error")
	}
}

func TestFitAllPlatformsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full 12-platform fit in -short mode")
	}
	// Every platform's fitted tau/pi values should land near ground
	// truth even with noise and quirks (the quirky platforms get looser
	// tolerances, as in the paper where their fits are the weakest).
	for _, plat := range machine.All() {
		res, err := microbench.Run(plat, microbench.DefaultConfig(), sim.Options{Seed: 21})
		if err != nil {
			t.Fatalf("%s: %v", plat.Name, err)
		}
		pf, err := Platform(res, Options{Seed: 6})
		if err != nil {
			t.Fatalf("%s: %v", plat.Name, err)
		}
		tol := 0.12
		if len(plat.Quirks) > 0 {
			tol = 0.30 // quirky hardware deviates from the clean physics
		}
		truth := plat.Single
		if relErr(float64(pf.Params.TauFlop), float64(truth.TauFlop)) > tol {
			t.Errorf("%s: tau_flop %v vs %v", plat.Name, pf.Params.TauFlop, truth.TauFlop)
		}
		if relErr(float64(pf.Params.TauMem), float64(truth.TauMem)) > tol {
			t.Errorf("%s: tau_mem %v vs %v", plat.Name, pf.Params.TauMem, truth.TauMem)
		}
		// pi_1 is unreliable on quirky platforms: the paper's own fits
		// land below observed idle power there (Table I's asterisks).
		if len(plat.Quirks) == 0 &&
			relErr(float64(pf.Params.Pi1), float64(truth.Pi1)) > tol {
			t.Errorf("%s: pi_1 %v vs %v", plat.Name, pf.Params.Pi1, truth.Pi1)
		}
	}
}

func TestCacheLineSizeRecovery(t *testing.T) {
	// Simulate the lab procedure on every platform: one unit-stride and
	// one page-stride DRAM run, then recover the line size.
	for _, plat := range machine.All() {
		s := sim.New(plat, sim.Options{Seed: 13, Noiseless: true})
		stream := sim.Kernel{
			Name: "ls-stream", Precision: sim.Single,
			WorkingSet: 64 << 20, Passes: 2,
		}
		strided := sim.Kernel{
			Name: "ls-strided", Precision: sim.Single, Pattern: sim.StridedPattern,
			WorkingSet: 64 << 20, Passes: 2, StrideBytes: 4096,
		}
		rs, err := s.Run(stream)
		if err != nil {
			t.Fatal(err)
		}
		rt, err := s.Run(strided)
		if err != nil {
			t.Fatal(err)
		}
		streamBW := float64(rs.Q) / float64(rs.TrueTime)
		words := float64(strided.WorkingSet) / 4096 * float64(strided.Passes)
		stridedUseful := words * 4 / float64(rt.TrueTime)
		line, err := CacheLineSize(streamBW, stridedUseful, 4)
		if err != nil {
			t.Fatalf("%s: %v", plat.Name, err)
		}
		if line != int(plat.CacheLine) {
			t.Errorf("%s: recovered line %d, truth %d", plat.Name, line, int(plat.CacheLine))
		}
	}
}

func TestCacheLineSizeErrors(t *testing.T) {
	if _, err := CacheLineSize(0, 1, 4); err == nil {
		t.Error("zero stream BW should error")
	}
	if _, err := CacheLineSize(1, 0, 4); err == nil {
		t.Error("zero strided BW should error")
	}
	if _, err := CacheLineSize(1, 1, 0); err == nil {
		t.Error("zero word should error")
	}
	if _, err := CacheLineSize(1, 2, 4); err == nil {
		t.Error("strided above streaming should error")
	}
	// Equal bandwidths: line == word.
	line, err := CacheLineSize(100, 100, 8)
	if err != nil || line != 8 {
		t.Errorf("line=%d err=%v, want word size", line, err)
	}
}
