package fit

import (
	"math"
	"testing"
	"testing/quick"

	"archline/internal/stats"
)

func TestLeastSquaresExact(t *testing.T) {
	// Square well-conditioned system.
	a := [][]float64{{2, 1}, {1, 3}}
	b := []float64{5, 10}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// 2x + y = 5; x + 3y = 10 -> x = 1, y = 3.
	if math.Abs(x[0]-1) > 1e-10 || math.Abs(x[1]-3) > 1e-10 {
		t.Errorf("x = %v, want (1,3)", x)
	}
}

func TestLeastSquaresOverdetermined(t *testing.T) {
	// Fit y = 2 + 3t to noiseless points: exact recovery.
	var a [][]float64
	var b []float64
	for i := 0; i < 10; i++ {
		ti := float64(i)
		a = append(a, []float64{1, ti})
		b = append(b, 2+3*ti)
	}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-10 || math.Abs(x[1]-3) > 1e-10 {
		t.Errorf("x = %v, want (2,3)", x)
	}
	if r := Residual(a, b, x); r > 1e-9 {
		t.Errorf("residual %v", r)
	}
}

func TestLeastSquaresMinimizesResidual(t *testing.T) {
	// Noisy overdetermined fit: the QR solution should beat nearby
	// perturbations.
	rng := stats.NewStream(5, "lsq")
	var a [][]float64
	var b []float64
	for i := 0; i < 50; i++ {
		ti := float64(i) / 10
		a = append(a, []float64{1, ti, ti * ti})
		b = append(b, 1+0.5*ti-0.2*ti*ti+0.01*rng.NormFloat64())
	}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	r0 := Residual(a, b, x)
	for trial := 0; trial < 20; trial++ {
		xp := append([]float64(nil), x...)
		for j := range xp {
			xp[j] += 0.01 * rng.NormFloat64()
		}
		if Residual(a, b, xp) < r0-1e-12 {
			t.Fatalf("perturbation beats QR solution: %v < %v", Residual(a, b, xp), r0)
		}
	}
}

func TestLeastSquaresErrors(t *testing.T) {
	if _, err := LeastSquares(nil, nil); err == nil {
		t.Error("empty system should error")
	}
	if _, err := LeastSquares([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Error("underdetermined system should error")
	}
	if _, err := LeastSquares([][]float64{{1}, {2}}, []float64{1}); err == nil {
		t.Error("rhs length mismatch should error")
	}
	if _, err := LeastSquares([][]float64{{1, 2}, {3}}, []float64{1, 2}); err == nil {
		t.Error("ragged matrix should error")
	}
	// Rank-deficient: two identical columns.
	a := [][]float64{{1, 1}, {2, 2}, {3, 3}}
	if _, err := LeastSquares(a, []float64{1, 2, 3}); err == nil {
		t.Error("rank-deficient system should error")
	}
	if _, err := LeastSquares([][]float64{{}}, []float64{}); err == nil {
		t.Error("zero-column system should error")
	}
}

// Property: for random full-rank systems with a known solution and no
// noise, LeastSquares recovers it.
func TestQuickLeastSquaresRecovery(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewStream(seed, "quick-lsq")
		n := 2 + rng.Intn(4)
		m := n + 2 + rng.Intn(6)
		xTrue := make([]float64, n)
		for j := range xTrue {
			xTrue[j] = rng.Gaussian(0, 3)
		}
		a := make([][]float64, m)
		b := make([]float64, m)
		for i := range a {
			a[i] = make([]float64, n)
			s := 0.0
			for j := range a[i] {
				a[i][j] = rng.Gaussian(0, 1)
				s += a[i][j] * xTrue[j]
			}
			b[i] = s
		}
		x, err := LeastSquares(a, b)
		if err != nil {
			return true // singular draw: fine
		}
		for j := range x {
			if math.Abs(x[j]-xTrue[j]) > 1e-6*(1+math.Abs(xTrue[j])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
