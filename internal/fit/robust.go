package fit

import (
	"math"
	"sort"

	"archline/internal/microbench"
	"archline/internal/model"
	// Aliased: "obs" is this package's conventional name for the
	// observation slice the fitters consume.
	tele "archline/internal/obs"
	"archline/internal/powermon"
	"archline/internal/units"
)

// Robust refitting: least squares is the right estimator for the clean
// Gaussian noise the simulator produces, but one throttled run or one
// un-sanitized spike burst drags a squared loss arbitrarily far. When
// the residual diagnostics flag contamination, the fit switches to a
// Huber loss — quadratic near zero, linear in the tails — seeded from
// the least-squares solution, and the PlatformFit carries a grade so
// consumers know which estimator produced their constants.

const (
	// outlierK flags a residual component beyond this many robust
	// standard deviations as an outlier.
	outlierK = 3.5
	// contaminationThreshold is the outlier fraction above which the
	// Huber refit replaces the least-squares solution.
	contaminationThreshold = 0.02
	// huberK scales the robust residual spread into the Huber corner
	// (the classical 95%-efficiency constant).
	huberK = 1.345
	// gradeCContamination is the post-refit outlier fraction beyond
	// which the fit is graded C: even the robust loss is extrapolating.
	gradeCContamination = 0.25
	// madScale converts a MAD to a Gaussian-consistent sigma.
	madScale = 1.4826
)

// residuals returns the per-observation log-residual components (time
// and power interleaved) of the parameters over the observations.
func residuals(obs []observation, p model.Params) []float64 {
	rs := make([]float64, 0, 2*len(obs))
	for _, o := range obs {
		that := p.Time(units.Flops(o.w), units.Bytes(o.q)).Seconds()
		ehat := p.Energy(units.Flops(o.w), units.Bytes(o.q)).Joules()
		if that <= 0 || ehat <= 0 || math.IsInf(that, 0) {
			rs = append(rs, math.Inf(1), math.Inf(1))
			continue
		}
		rs = append(rs, math.Log(that/o.t), math.Log(ehat/that/o.p))
	}
	return rs
}

// diagnostics summarizes a residual vector robustly.
type diagnostics struct {
	scale         float64 // MAD-based robust sigma
	contamination float64 // fraction beyond outlierK*scale
	rms           float64
}

func diagnose(rs []float64) diagnostics {
	if len(rs) == 0 {
		return diagnostics{}
	}
	abs := make([]float64, len(rs))
	sumSq := 0.0
	for i, r := range rs {
		abs[i] = math.Abs(r)
		sumSq += r * r
	}
	sort.Float64s(abs)
	scale := madScale * abs[len(abs)/2]
	var d diagnostics
	d.scale = scale
	d.rms = math.Sqrt(sumSq / float64(len(rs)))
	if scale <= 0 {
		return d
	}
	out := 0
	for _, a := range abs {
		if a > outlierK*scale {
			out++
		}
	}
	d.contamination = float64(out) / float64(len(abs))
	return d
}

// huber is the Huber loss with corner delta.
func huber(r, delta float64) float64 {
	a := math.Abs(r)
	if a <= delta {
		return r * r
	}
	return delta * (2*a - delta)
}

// huberObjective mirrors dramObjective with the squared loss replaced by
// a Huber loss of the given corner.
func huberObjective(obs []observation, tauF, tauM, maxP, delta float64) Objective {
	const dpiReg = 0.01
	return func(logx []float64) float64 {
		p := paramsFromLog(tauF, tauM, logx)
		loss := 0.0
		if cap := maxP - p.Pi1.Watts(); cap > 0 {
			if d := logx[3] - math.Log(cap); d > 0 {
				loss += dpiReg * d * d
			}
		}
		for _, o := range obs {
			that := p.Time(units.Flops(o.w), units.Bytes(o.q)).Seconds()
			ehat := p.Energy(units.Flops(o.w), units.Bytes(o.q)).Joules()
			if that <= 0 || ehat <= 0 || math.IsInf(that, 0) {
				return math.Inf(1)
			}
			loss += huber(math.Log(that/o.t), delta)
			loss += huber(math.Log(ehat/that/o.p), delta)
		}
		return loss
	}
}

// robustRefit inspects the least-squares solution's residuals and, when
// they look contaminated, replaces the fit with a Huber refit seeded
// from the least-squares point. It updates out in place and narrates
// the diagnostics and any re-fit as events on span (which may be nil).
func robustRefit(span *tele.Span, out *PlatformFit, obs []observation, tauF, tauM, maxP float64,
	best NMResult, opts Options) {
	d := diagnose(residuals(obs, out.Params))
	out.Contamination = d.contamination
	span.Event("residual.diagnostics", tele.Float("contamination", d.contamination),
		tele.Float("scale", d.scale), tele.Float("rms", d.rms))
	if d.contamination <= contaminationThreshold || d.scale <= 0 {
		return
	}
	rb, err := MultiStart(huberObjective(obs, tauF, tauM, maxP, huberK*d.scale),
		best.X, opts.Restarts, opts.Spread, opts.Seed+3, opts.NM)
	if err != nil || math.IsInf(rb.F, 0) {
		span.Event("huber.refit.failed")
		return // keep the least-squares fit; the grade will say C
	}
	params := paramsFromLog(tauF, tauM, rb.X)
	d2 := diagnose(residuals(obs, params))
	out.Params = params
	out.RobustApplied = true
	out.Contamination = d2.contamination
	out.Residual = d2.rms
	span.Event("huber.refit", tele.Float("contamination_before", d.contamination),
		tele.Float("contamination_after", d2.contamination), tele.Float("rms", d2.rms))
}

// fitGrade buckets the fit's trustworthiness from the residual
// diagnostics and the measurement-quality flags the suite carried in.
func fitGrade(out *PlatformFit, res *microbench.Result) powermon.Grade {
	grade := powermon.GradeA
	if out.RobustApplied {
		grade = powermon.GradeB
	}
	// Degraded measurements cap the grade at B even when the fit
	// converged cleanly; a quarter of the suite at GradeC means the
	// constants rest on data no estimator can trust.
	gradeC := 0
	for _, m := range res.Measurements {
		switch m.Quality.Grade {
		case powermon.GradeB:
			if grade < powermon.GradeB {
				grade = powermon.GradeB
			}
		case powermon.GradeC:
			gradeC++
		}
	}
	if gradeC > 0 && grade < powermon.GradeB {
		grade = powermon.GradeB
	}
	if len(res.Measurements) > 0 &&
		float64(gradeC)/float64(len(res.Measurements)) > 0.25 {
		grade = powermon.GradeC
	}
	if out.Contamination > gradeCContamination {
		grade = powermon.GradeC
	}
	return grade
}
