package fit

import (
	"context"
	"errors"
	"fmt"
	"math"

	"archline/internal/microbench"
	"archline/internal/model"
	// Aliased: "obs" is this package's conventional name for the
	// observation slice the fitters consume.
	tele "archline/internal/obs"
	"archline/internal/powermon"
	"archline/internal/sim"
	"archline/internal/units"
)

// PlatformFit holds the recovered Table I parameters for one platform.
type PlatformFit struct {
	// Params are the fitted single-precision DRAM-level parameters:
	// tau_flop, tau_mem, eps_flop (eps_s), eps_mem, pi_1, DeltaPi.
	Params model.Params
	// DoubleEps is the fitted eps_d (0 when double is unsupported).
	DoubleEps units.EnergyPerFlop
	// L1 and L2 are fitted per-level costs (nil when unmeasured).
	L1 *model.LevelParams
	L2 *model.LevelParams
	// Rand is the fitted random-access mode (nil when unmeasured).
	Rand *model.RandomAccessParams
	// Residual is the RMS log-residual of the DRAM fit over time and
	// power, a goodness-of-fit summary.
	Residual float64
	// Contamination is the fraction of DRAM residual components flagged
	// as outliers (beyond outlierK robust standard deviations) under the
	// final parameters.
	Contamination float64
	// RobustApplied reports that the least-squares fit looked
	// contaminated and a Huber refit replaced it.
	RobustApplied bool
	// Grade buckets the fit's trustworthiness: A clean, B recovered via
	// robust refit or from degraded measurements, C contaminated beyond
	// what the robust loss can absorb.
	Grade powermon.Grade
}

// observation is one fitting data point.
type observation struct {
	w, q, t, p float64 // flops, bytes, seconds, average watts
}

// sustainedTaus extracts tau_flop and tau_mem from the sweep the way the
// paper's dedicated peak microbenchmarks do: tau_flop is the reciprocal
// of the best observed flop rate (reached at the compute-bound end of
// the sweep) and tau_mem of the best observed bandwidth (the
// memory-bound end). These are "sustained peaks": on a platform whose
// cap binds even at the sweep extremes (e.g. the NUC CPU's streaming,
// where pi_mem slightly exceeds DeltaPi), the true tau is not observable
// and the sustained value is what any measurement study would report.
func sustainedTaus(obs []observation) (tauF, tauM float64) {
	bestFlop, bestBW := 0.0, 0.0
	for _, o := range obs {
		if r := o.w / o.t; r > bestFlop {
			bestFlop = r
		}
		if r := o.q / o.t; r > bestBW {
			bestBW = r
		}
	}
	return 1 / bestFlop, 1 / bestBW
}

// dramObjective builds the nonlinear least-squares objective over the
// intensity sweep: squared log-residuals of predicted vs measured time
// and average power. The taus are pinned from the sustained peaks;
// the free parameters, optimized in log space to enforce positivity, are
// [eps_f, eps_m, pi_1, delta_pi].
//
// A one-sided regularizer keeps delta_pi from escaping upward: the data
// bound it from below (too small a cap would throttle regions the
// measurements show unthrottled) but on platforms whose cap binds only
// in a narrow intensity band (Xeon Phi) nothing bounds it from above, so
// we softly forbid pi_1 + delta_pi from exceeding the largest observed
// average power, maxP.
func dramObjective(obs []observation, tauF, tauM, maxP float64) Objective {
	const dpiReg = 0.01
	return func(logx []float64) float64 {
		p := paramsFromLog(tauF, tauM, logx)
		loss := 0.0
		if cap := maxP - p.Pi1.Watts(); cap > 0 {
			if d := logx[3] - math.Log(cap); d > 0 {
				loss += dpiReg * d * d
			}
		}
		for _, o := range obs {
			that := p.Time(units.Flops(o.w), units.Bytes(o.q)).Seconds()
			ehat := p.Energy(units.Flops(o.w), units.Bytes(o.q)).Joules()
			if that <= 0 || ehat <= 0 || math.IsInf(that, 0) {
				return math.Inf(1)
			}
			phat := ehat / that
			lt := math.Log(that / o.t)
			lp := math.Log(phat / o.p)
			loss += lt*lt + lp*lp
		}
		return loss
	}
}

// paramsFromLog decodes the log-space free-parameter vector
// [eps_f, eps_m, pi_1, delta_pi] around pinned taus.
func paramsFromLog(tauF, tauM float64, logx []float64) model.Params {
	return model.Params{
		TauFlop: units.TimePerFlop(tauF),
		TauMem:  units.TimePerByte(tauM),
		EpsFlop: units.EnergyPerFlop(math.Exp(logx[0])),
		EpsMem:  units.EnergyPerByte(math.Exp(logx[1])),
		Pi1:     units.Power(math.Exp(logx[2])),
		DeltaPi: units.Power(math.Exp(logx[3])),
	}
}

// initialGuess derives a starting point for the free parameters from the
// data itself: the extreme-intensity points pin the epsilons, the idle
// measurement pins pi_1, and the largest observed dynamic power pins
// DeltaPi.
func initialGuess(obs []observation, idle float64) ([]float64, error) {
	if len(obs) < 6 {
		return nil, errors.New("fit: need at least 6 sweep observations")
	}
	lo, hi := obs[0], obs[0]
	loI := obs[0].w / obs[0].q
	hiI := loI
	maxDyn := 0.0
	for _, o := range obs[1:] {
		i := o.w / o.q
		if i < loI {
			lo, loI = o, i
		}
		if i > hiI {
			hi, hiI = o, i
		}
		if dyn := o.p - idle; dyn > maxDyn {
			maxDyn = dyn
		}
	}
	if idle <= 0 {
		idle = 0.5 * lo.p
	}
	if maxDyn <= 0 {
		maxDyn = 0.1 * idle
	}
	epsF := math.Max((hi.p-idle)*hi.t/hi.w, 1e-18)
	epsM := math.Max((lo.p-idle)*lo.t/lo.q, 1e-18)
	guess := []float64{epsF, epsM, idle, maxDyn}
	logx := make([]float64, len(guess))
	for i, g := range guess {
		if g <= 0 || math.IsNaN(g) || math.IsInf(g, 0) {
			return nil, fmt.Errorf("fit: degenerate initial guess component %d = %v", i, g)
		}
		logx[i] = math.Log(g)
	}
	return logx, nil
}

// Options tune the platform fit.
type Options struct {
	// Restarts is the number of multi-start perturbations. Default 8.
	Restarts int
	// Spread is the multi-start perturbation scale. Default 0.15.
	Spread float64
	// Seed drives the multi-start perturbations.
	Seed uint64
	// NM overrides the optimizer options.
	NM NMOptions
}

func (o Options) withDefaults() Options {
	if o.Restarts == 0 {
		o.Restarts = 8
	}
	if o.Spread == 0 {
		o.Spread = 0.15
	}
	if o.NM.MaxIter == 0 {
		o.NM.MaxIter = 4000
	}
	return o
}

// Platform runs the full fitting pipeline on a suite result: the joint
// six-parameter DRAM fit, then the per-cache-level fits with the
// flop-side parameters frozen, then the double-precision flop energy and
// the random-access mode. It is PlatformContext without tracing.
func Platform(res *microbench.Result, opts Options) (*PlatformFit, error) {
	return PlatformContext(context.Background(), res, opts)
}

// PlatformContext is Platform under a fit.platform span: the residual
// diagnostics and any Huber re-fit are recorded as span events, and the
// span closes with the fit's grade, residual, and contamination.
func PlatformContext(ctx context.Context, res *microbench.Result, opts Options) (*PlatformFit, error) {
	_, span := tele.Start(ctx, "fit.platform", tele.String("platform", string(res.Platform.ID)))
	defer span.End()
	opts = opts.withDefaults()
	sweep := res.Sweep(sim.Single)
	obs := toObservations(sweep)
	if len(obs) < 6 {
		return nil, errors.New("fit: insufficient single-precision sweep data")
	}
	x0, err := initialGuess(obs, res.IdlePower.Watts())
	if err != nil {
		return nil, err
	}
	tauF, tauM := sustainedTaus(obs)
	maxP := 0.0
	for _, o := range obs {
		if o.p > maxP {
			maxP = o.p
		}
	}
	best, err := MultiStart(dramObjective(obs, tauF, tauM, maxP), x0,
		opts.Restarts, opts.Spread, opts.Seed, opts.NM)
	if err != nil {
		return nil, err
	}
	out := &PlatformFit{
		Params:   paramsFromLog(tauF, tauM, best.X),
		Residual: math.Sqrt(best.F / float64(2*len(obs))),
	}
	// Contamination diagnostics: if the least-squares solution looks
	// dragged by outliers, refit with a Huber loss (robust.go). The span
	// collects the diagnostics and any re-fit as events.
	robustRefit(span, out, obs, tauF, tauM, maxP, best, opts)
	out.Grade = fitGrade(out, res)
	span.SetAttr(tele.String("grade", out.Grade.String()),
		tele.Float("residual", out.Residual),
		tele.Float("contamination", out.Contamination),
		tele.Bool("huber_refit", out.RobustApplied))

	// Double precision: refit the flop side only on the DP sweep.
	if dp := toObservations(res.Sweep(sim.Double)); len(dp) >= 6 {
		de, err := fitFlopSide(dp, out.Params, opts)
		if err == nil {
			out.DoubleEps = de
		}
	}

	// Cache levels: freeze flop side and powers, fit (tau, eps) per level.
	for _, lv := range []struct {
		level model.MemLevel
		dst   **model.LevelParams
	}{
		{model.LevelL1, &out.L1},
		{model.LevelL2, &out.L2},
	} {
		ms := res.ByLevel(lv.level)
		if len(ms) < 2 {
			continue
		}
		lp, err := fitLevel(toObservations(ms), out.Params, opts)
		if err != nil {
			return nil, fmt.Errorf("fit: level %v: %w", lv.level, err)
		}
		*lv.dst = lp
	}

	// Random access: closed-form from the chase measurements.
	if chase := res.Chase(); len(chase) > 0 {
		r, err := fitChase(chase, out.Params, res.Platform.CacheLine)
		if err != nil {
			return nil, err
		}
		out.Rand = r
	}
	return out, nil
}

// toObservations converts measurements, skipping degenerate rows.
func toObservations(ms []sim.Measurement) []observation {
	var obs []observation
	for _, m := range ms {
		o := observation{
			w: m.W.Count(), q: m.Q.Count(),
			t: m.Time.Seconds(), p: m.AvgPower.Watts(),
		}
		if o.q <= 0 || o.t <= 0 || o.p <= 0 {
			continue
		}
		obs = append(obs, o)
	}
	return obs
}

// fitFlopSide recovers eps_flop (and implicitly tau_flop) on an alternate
// precision, holding the memory side and powers fixed.
func fitFlopSide(obs []observation, base model.Params, opts Options) (units.EnergyPerFlop, error) {
	// tau_flop for the alternate precision comes from the most
	// compute-bound observation.
	hi := obs[0]
	hiI := hi.w / hi.q
	for _, o := range obs[1:] {
		if i := o.w / o.q; i > hiI {
			hi, hiI = o, i
		}
	}
	tauF := hi.t / hi.w
	obj := func(logx []float64) float64 {
		p := base
		p.TauFlop = units.TimePerFlop(tauF)
		p.EpsFlop = units.EnergyPerFlop(math.Exp(logx[0]))
		loss := 0.0
		for _, o := range obs {
			that := p.Time(units.Flops(o.w), units.Bytes(o.q)).Seconds()
			ehat := p.Energy(units.Flops(o.w), units.Bytes(o.q)).Joules()
			if that <= 0 || ehat <= 0 {
				return math.Inf(1)
			}
			lp := math.Log(ehat / that / o.p)
			lt := math.Log(that / o.t)
			loss += lp*lp + lt*lt
		}
		return loss
	}
	start := math.Log(math.Max((hi.p-base.Pi1.Watts())*hi.t/hi.w, 1e-18))
	best, err := MultiStart(obj, []float64{start}, opts.Restarts, opts.Spread, opts.Seed+1, opts.NM)
	if err != nil {
		return 0, err
	}
	return units.EnergyPerFlop(math.Exp(best.X[0])), nil
}

// fitLevel recovers a cache level's (tau, eps): tau is pinned from the
// level's best observed (sustained) bandwidth and eps fitted by
// regression with everything else frozen.
func fitLevel(obs []observation, base model.Params, opts Options) (*model.LevelParams, error) {
	if len(obs) < 2 {
		return nil, errors.New("fit: need at least 2 level observations")
	}
	bestBW := 0.0
	for _, o := range obs {
		if r := o.q / o.t; r > bestBW {
			bestBW = r
		}
	}
	if bestBW <= 0 {
		return nil, errors.New("fit: level observations carry no bandwidth")
	}
	tau := 1 / bestBW
	obj := func(logx []float64) float64 {
		p := base
		p.TauMem = units.TimePerByte(tau)
		p.EpsMem = units.EnergyPerByte(math.Exp(logx[0]))
		loss := 0.0
		for _, o := range obs {
			that := p.Time(units.Flops(o.w), units.Bytes(o.q)).Seconds()
			ehat := p.Energy(units.Flops(o.w), units.Bytes(o.q)).Joules()
			if that <= 0 || ehat <= 0 {
				return math.Inf(1)
			}
			lt := math.Log(that / o.t)
			lp := math.Log(ehat / that / o.p)
			loss += lt*lt + lp*lp
		}
		return loss
	}
	// Start from the most memory-bound observation.
	lo := obs[0]
	loI := lo.w / lo.q
	for _, o := range obs[1:] {
		if i := o.w / o.q; i < loI {
			lo, loI = o, i
		}
	}
	eps0 := math.Max((lo.p-base.Pi1.Watts())*lo.t/lo.q, 1e-18)
	best, err := MultiStart(obj, []float64{math.Log(eps0)},
		opts.Restarts, opts.Spread, opts.Seed+2, opts.NM)
	if err != nil {
		return nil, err
	}
	return &model.LevelParams{
		Tau: units.TimePerByte(tau),
		Eps: units.EnergyPerByte(math.Exp(best.X[0])),
	}, nil
}

// fitChase recovers the random-access mode in closed form: the sustained
// rate is accesses/time and the inclusive per-access energy is the
// dynamic energy divided by the access count.
func fitChase(ms []sim.Measurement, base model.Params, line units.Bytes) (*model.RandomAccessParams, error) {
	var rateSum, epsSum float64
	n := 0
	for _, m := range ms {
		if m.Accesses <= 0 || m.Time <= 0 {
			continue
		}
		rateSum += m.Accesses.Count() / m.Time.Seconds()
		dyn := m.Energy.Joules() - base.Pi1.Watts()*m.Time.Seconds()
		epsSum += dyn / m.Accesses.Count()
		n++
	}
	if n == 0 {
		return nil, errors.New("fit: no usable chase measurements")
	}
	eps := epsSum / float64(n)
	if eps < 0 {
		eps = 0
	}
	return &model.RandomAccessParams{
		Rate: units.AccessRate(rateSum / float64(n)),
		Eps:  units.EnergyPerAccess(eps),
		Line: line,
	}, nil
}

// CacheLineSize recovers a platform's effective cache-line size from a
// pair of bandwidth measurements, the standard lab method: a unit-stride
// streaming run moves only useful bytes, while a large-stride run moves
// one full line per useful word, so
//
//	line = word * (useful streaming BW / useful strided BW)
//
// Both measurements must be taken from the same memory level. The result
// is rounded to the nearest power of two, as real line sizes are.
func CacheLineSize(streamUsefulBW, stridedUsefulBW, wordBytes float64) (int, error) {
	if streamUsefulBW <= 0 || stridedUsefulBW <= 0 || wordBytes <= 0 {
		return 0, errors.New("fit: bandwidths and word size must be positive")
	}
	if stridedUsefulBW > streamUsefulBW {
		return 0, errors.New("fit: strided bandwidth exceeds streaming bandwidth")
	}
	raw := wordBytes * streamUsefulBW / stridedUsefulBW
	line := 1
	for float64(line) < raw/math.Sqrt2 {
		line *= 2
	}
	if line < int(wordBytes) {
		line = int(wordBytes)
	}
	return line, nil
}
