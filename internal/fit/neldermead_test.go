package fit

import (
	"math"
	"testing"
)

func TestNelderMeadQuadratic(t *testing.T) {
	f := func(x []float64) float64 {
		return (x[0]-3)*(x[0]-3) + 2*(x[1]+1)*(x[1]+1)
	}
	res, err := NelderMead(f, []float64{0, 0}, NMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-3) > 1e-4 || math.Abs(res.X[1]+1) > 1e-4 {
		t.Errorf("minimum at %v, want (3,-1)", res.X)
	}
	if res.F > 1e-8 {
		t.Errorf("objective %v, want ~0", res.F)
	}
	if res.Iters <= 0 {
		t.Error("iterations should be counted")
	}
}

func TestNelderMeadRosenbrock(t *testing.T) {
	f := func(x []float64) float64 {
		a := 1 - x[0]
		b := x[1] - x[0]*x[0]
		return a*a + 100*b*b
	}
	res, err := NelderMead(f, []float64{-1.2, 1}, NMOptions{MaxIter: 10000, Tol: 1e-14})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-1) > 1e-3 || math.Abs(res.X[1]-1) > 1e-3 {
		t.Errorf("Rosenbrock minimum at %v, want (1,1)", res.X)
	}
}

func TestNelderMeadPiecewiseKink(t *testing.T) {
	// max-of-linear objective, like the capped model's time: NM must cope
	// with non-smooth points.
	f := func(x []float64) float64 {
		return math.Max(math.Abs(x[0]-2), 0.5*math.Abs(x[0]-2)+1e-3) + math.Abs(x[1])
	}
	res, err := NelderMead(f, []float64{10, -7}, NMOptions{MaxIter: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-2) > 1e-2 || math.Abs(res.X[1]) > 1e-2 {
		t.Errorf("kinked minimum at %v, want (2,0)", res.X)
	}
}

func TestNelderMeadHandlesNaN(t *testing.T) {
	// Objective returning NaN off-domain must not break the search.
	f := func(x []float64) float64 {
		if x[0] < 0 {
			return math.NaN()
		}
		return (x[0] - 2) * (x[0] - 2)
	}
	res, err := NelderMead(f, []float64{5}, NMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-2) > 1e-4 {
		t.Errorf("minimum at %v, want 2", res.X)
	}
}

func TestNelderMeadErrors(t *testing.T) {
	if _, err := NelderMead(nil, []float64{0}, NMOptions{}); err == nil {
		t.Error("nil objective should error")
	}
	if _, err := NelderMead(func([]float64) float64 { return 0 }, nil, NMOptions{}); err == nil {
		t.Error("empty start should error")
	}
}

func TestNelderMeadZeroCoordinateStep(t *testing.T) {
	// A zero starting coordinate still gets a nonzero simplex step.
	f := func(x []float64) float64 { return (x[0] - 1) * (x[0] - 1) }
	res, err := NelderMead(f, []float64{0}, NMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-1) > 1e-4 {
		t.Errorf("minimum at %v, want 1", res.X)
	}
}

func TestMultiStartEscapesLocalMinimum(t *testing.T) {
	// Double well: local minimum at x=-1 (f=0.5), global at x=2 (f=0).
	f := func(x []float64) float64 {
		a := (x[0] + 1) * (x[0] + 1) * ((x[0]-2)*(x[0]-2) + 0.0)
		return a + 0.5*math.Exp(-(x[0]-(-1))*(x[0]-(-1))*4)*0 +
			0.5/(1+(x[0]-(-1))*(x[0]-(-1))*100)
	}
	// Start near the local minimum; multi-start with wide spread should
	// find the global one at x=2.
	res, err := MultiStart(f, []float64{-1}, 30, 2.0, 42, NMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-2) > 0.05 {
		t.Errorf("global minimum at %v, want 2", res.X)
	}
}

func TestMultiStartZeroStart(t *testing.T) {
	f := func(x []float64) float64 { return x[0]*x[0] + (x[1]-1)*(x[1]-1) }
	res, err := MultiStart(f, []float64{0, 0}, 5, 0.3, 7, NMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.F > 1e-6 {
		t.Errorf("objective %v", res.F)
	}
}

func TestMultiStartPropagatesErrors(t *testing.T) {
	if _, err := MultiStart(nil, []float64{0}, 3, 0.1, 1, NMOptions{}); err == nil {
		t.Error("nil objective should error")
	}
}
