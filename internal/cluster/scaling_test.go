package cluster

import (
	"testing"

	"archline/internal/machine"
	"archline/internal/units"
)

func TestScalingModeString(t *testing.T) {
	if StrongScaling.String() != "strong" || WeakScaling.String() != "weak" {
		t.Error("mode names")
	}
}

func TestStrongScalingBreaksDownOnSlowNetwork(t *testing.T) {
	node := machine.MustByID(machine.ArndaleGPU).Single
	step := Step{
		W: units.TFlops(0.1), Q: units.GB(40),
		Msg: units.MiB(32), Pattern: Halo,
	}
	sizes := []int{1, 2, 4, 8, 16, 32, 64}
	pts, err := ScalingSweep(node, EthernetLowPower(), sizes, step, StrongScaling, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(sizes) {
		t.Fatal("point count")
	}
	// Base case: one node, efficiency 1 by construction.
	if pts[0].Efficiency < 0.99 || pts[0].Efficiency > 1.01 {
		t.Errorf("single-node efficiency %v", pts[0].Efficiency)
	}
	// Time decreases then saturates; efficiency decays.
	for k := 1; k < len(pts); k++ {
		if pts[k].Time > pts[k-1].Time*units.Time(1.0001) {
			t.Errorf("strong-scaling time increased at N=%d", pts[k].Nodes)
		}
		if pts[k].Efficiency > pts[k-1].Efficiency+1e-9 {
			t.Errorf("efficiency rose at N=%d", pts[k].Nodes)
		}
	}
	// The fixed halo on 1 GbE eventually dominates: the largest size is
	// network-bound and far below perfect efficiency.
	last := pts[len(pts)-1]
	if !last.NetworkBound {
		t.Error("64 nodes with fixed halos on GbE should be network-bound")
	}
	if last.Efficiency > 0.5 {
		t.Errorf("strong-scaling efficiency at 64 nodes %v, want collapsed", last.Efficiency)
	}
}

func TestWeakScalingHoldsUpWithOverlap(t *testing.T) {
	node := machine.MustByID(machine.ArndaleGPU).Single
	// Per-node share sized so compute clearly exceeds the halo wire time
	// on FDR.
	step := Step{
		W: units.GFlops(20), Q: units.GB(8),
		Msg: units.MiB(1), Pattern: Halo,
	}
	sizes := []int{1, 4, 16, 64}
	pts, err := ScalingSweep(node, InfinibandFDR(), sizes, step, WeakScaling, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range pts {
		if pt.Efficiency < 0.95 {
			t.Errorf("weak scaling with halo exchange should hold: N=%d eff=%v",
				pt.Nodes, pt.Efficiency)
		}
	}
	// Energy per unit work includes the growing network constant power
	// but stays bounded.
	if pts[len(pts)-1].EnergyPerWork <= 0 {
		t.Error("energy accounting")
	}
}

func TestScalingSweepAllReduceWeak(t *testing.T) {
	// Weak scaling with an allreduce: the ring algorithm's per-node
	// volume is nearly constant in N, so efficiency stays high even as
	// the job grows.
	node := machine.MustByID(machine.ArndaleCPU).Single
	step := Step{
		W: units.GFlops(10), Q: units.GB(2),
		Msg: units.KiB(512), Pattern: AllReduce,
	}
	pts, err := ScalingSweep(node, InfinibandFDR(), []int{1, 8, 64}, step, WeakScaling, false)
	if err != nil {
		t.Fatal(err)
	}
	if pts[2].Efficiency < 0.9 {
		t.Errorf("allreduce weak scaling efficiency %v", pts[2].Efficiency)
	}
}

func TestScalingSweepErrors(t *testing.T) {
	node := machine.MustByID(machine.ArndaleGPU).Single
	step := Step{W: 1e9, Q: 1e9}
	if _, err := ScalingSweep(node, EthernetLowPower(), nil, step, StrongScaling, true); err == nil {
		t.Error("empty sizes should error")
	}
	if _, err := ScalingSweep(node, EthernetLowPower(), []int{0}, step, StrongScaling, true); err == nil {
		t.Error("zero size should error")
	}
	bad := Network{}
	if _, err := ScalingSweep(node, bad, []int{1}, step, StrongScaling, true); err == nil {
		t.Error("invalid network should error")
	}
}
