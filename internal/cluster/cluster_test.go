package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"archline/internal/machine"
	"archline/internal/model"
	"archline/internal/units"
)

func arndaleCluster(n int, net Network, overlap bool) *Cluster {
	return &Cluster{
		Node:    machine.MustByID(machine.ArndaleGPU).Single,
		Nodes:   n,
		Net:     net,
		Overlap: overlap,
	}
}

func approx(t *testing.T, got, want, relTol float64, name string) {
	t.Helper()
	if math.Abs(got-want) > relTol*math.Abs(want)+1e-300 {
		t.Errorf("%s = %v, want %v", name, got, want)
	}
}

func TestNetworkValidate(t *testing.T) {
	for _, n := range []Network{EthernetLowPower(), InfinibandFDR()} {
		if err := n.Validate(); err != nil {
			t.Errorf("standard network invalid: %v", err)
		}
	}
	cases := []func(*Network){
		func(n *Network) { n.NICPower = -1 },
		func(n *Network) { n.SwitchPower = -1 },
		func(n *Network) { n.SwitchRadix = 0 },
		func(n *Network) { n.LinkBW = 0 },
		func(n *Network) { n.EpsLink = -1 },
	}
	for i, mutate := range cases {
		n := EthernetLowPower()
		mutate(&n)
		if n.Validate() == nil {
			t.Errorf("case %d: invalid network accepted", i)
		}
	}
}

func TestPerNodeConstantPower(t *testing.T) {
	n := Network{NICPower: 2, SwitchPower: 48, SwitchRadix: 24, LinkBW: 1, EpsLink: 0}
	approx(t, float64(n.PerNodeConstantPower()), 4, 1e-12, "NIC + switch share")
}

func TestClusterValidate(t *testing.T) {
	c := arndaleCluster(4, EthernetLowPower(), false)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	c.Nodes = 0
	if c.Validate() == nil {
		t.Error("zero nodes should be rejected")
	}
	c = arndaleCluster(4, EthernetLowPower(), false)
	c.Net.LinkBW = 0
	if c.Validate() == nil {
		t.Error("invalid network should be rejected")
	}
	c = arndaleCluster(4, EthernetLowPower(), false)
	c.Node = model.Params{}
	if c.Validate() == nil {
		t.Error("invalid node should be rejected")
	}
}

func TestWireVolume(t *testing.T) {
	msg := units.Bytes(1000)
	cases := []struct {
		p     Pattern
		nodes int
		want  float64
	}{
		{Embarrassing, 8, 0},
		{Halo, 8, 1000},
		{AllReduce, 8, 2 * 1000 * 7.0 / 8.0},
		{AllReduce, 1, 0},
		{AllToAll, 8, 7000},
	}
	for _, c := range cases {
		got, err := wireVolume(c.p, msg, c.nodes)
		if err != nil {
			t.Fatal(err)
		}
		approx(t, float64(got), c.want, 1e-12, c.p.String())
	}
	if _, err := wireVolume(Pattern(99), msg, 4); err == nil {
		t.Error("unknown pattern should error")
	}
	for p, want := range map[Pattern]string{
		Embarrassing: "embarrassing", Halo: "halo", AllReduce: "allreduce",
		AllToAll: "all-to-all", Pattern(9): "unknown",
	} {
		if p.String() != want {
			t.Errorf("%d.String() = %q", p, p.String())
		}
	}
}

func TestRunEmbarrassingMatchesScaledNode(t *testing.T) {
	// With no communication and no network power, a cluster step equals
	// the scaled single machine.
	c := arndaleCluster(8, Network{SwitchRadix: 1, LinkBW: 1, NICPower: 0, SwitchPower: 0}, false)
	w, q := units.GFlops(80), units.GB(8)
	pred, err := c.Run(Step{W: w, Q: q, Pattern: Embarrassing})
	if err != nil {
		t.Fatal(err)
	}
	agg, _ := c.Node.Scale(8)
	approx(t, float64(pred.Time), float64(agg.Time(w, q)), 1e-9, "time")
	approx(t, float64(pred.Energy), float64(agg.Energy(w, q)), 1e-9, "energy")
	if pred.NetworkBound || pred.CommTime != 0 || pred.CommEnergy != 0 {
		t.Error("embarrassing step should have no communication")
	}
}

func TestRunChargesCommunication(t *testing.T) {
	c := arndaleCluster(16, EthernetLowPower(), false)
	w, q := units.GFlops(160), units.GB(16)
	msg := units.MiB(64)
	noComm, err := c.Run(Step{W: w, Q: q, Pattern: Embarrassing})
	if err != nil {
		t.Fatal(err)
	}
	halo, err := c.Run(Step{W: w, Q: q, Msg: msg, Pattern: Halo})
	if err != nil {
		t.Fatal(err)
	}
	if halo.Time <= noComm.Time {
		t.Error("halo exchange should cost time on a slow network")
	}
	if halo.Energy <= noComm.Energy {
		t.Error("halo exchange should cost energy")
	}
	if halo.CommEnergy <= 0 {
		t.Error("link energy should be charged")
	}
	// All-to-all moves (N-1)x the payload of halo.
	a2a, err := c.Run(Step{W: w, Q: q, Msg: msg, Pattern: AllToAll})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, float64(a2a.CommTime), float64(halo.CommTime)*15, 1e-9, "a2a wire time")
}

func TestOverlapHidesCommunication(t *testing.T) {
	net := InfinibandFDR()
	w, q := units.GFlops(800), units.GB(80)
	msg := units.MiB(8)
	bsp := arndaleCluster(16, net, false)
	ovl := arndaleCluster(16, net, true)
	pb, err := bsp.Run(Step{W: w, Q: q, Msg: msg, Pattern: Halo})
	if err != nil {
		t.Fatal(err)
	}
	po, err := ovl.Run(Step{W: w, Q: q, Msg: msg, Pattern: Halo})
	if err != nil {
		t.Fatal(err)
	}
	if po.Time >= pb.Time {
		t.Error("overlap should hide wire time behind compute")
	}
	// When comm fits under compute, overlapped time equals compute time.
	if po.NetworkBound {
		t.Error("small message on FDR should not be network-bound")
	}
}

func TestNetworkBoundStep(t *testing.T) {
	c := arndaleCluster(4, EthernetLowPower(), true)
	// Tiny compute, huge message: wire dominates.
	pred, err := c.Run(Step{W: units.MFlops(1), Q: units.KiB(4), Msg: units.GB(1), Pattern: Halo})
	if err != nil {
		t.Fatal(err)
	}
	if !pred.NetworkBound {
		t.Error("1 GB over 1 GbE must be network-bound")
	}
	approx(t, float64(pred.Time), float64(pred.CommTime), 1e-9, "wire sets the pace")
}

func TestRunErrors(t *testing.T) {
	c := arndaleCluster(4, EthernetLowPower(), false)
	if _, err := c.Run(Step{W: -1}); err == nil {
		t.Error("negative work should error")
	}
	bad := arndaleCluster(0, EthernetLowPower(), false)
	if _, err := bad.Run(Step{}); err == nil {
		t.Error("invalid cluster should error")
	}
	if _, err := c.Run(Step{Pattern: Pattern(42)}); err == nil {
		t.Error("unknown pattern should error")
	}
	if _, err := bad.EffectiveParams(); err == nil {
		t.Error("invalid cluster should error from EffectiveParams")
	}
}

func TestEffectiveParamsNetworkErodesAdvantage(t *testing.T) {
	// The paper's caveat, quantified: the 47-Arndale aggregate beats the
	// Titan by ~1.6x at low intensity with a free network, but an
	// Ethernet-class network's constant power alone erodes the
	// energy-efficiency advantage.
	titan := machine.MustByID(machine.GTXTitan).Single
	free := arndaleCluster(47, Network{SwitchRadix: 1, LinkBW: 1}, true)
	eth := arndaleCluster(47, EthernetLowPower(), true)

	pFree, err := free.EffectiveParams()
	if err != nil {
		t.Fatal(err)
	}
	pEth, err := eth.EffectiveParams()
	if err != nil {
		t.Fatal(err)
	}
	i := units.Intensity(0.25)
	// Performance: unchanged by constant power (still ~1.6x).
	if pEth.FlopRateAt(i) != pFree.FlopRateAt(i) {
		t.Error("network constant power should not change peak-rate analysis")
	}
	// Energy efficiency: eroded.
	effFree := float64(pFree.FlopsPerJouleAt(i))
	effEth := float64(pEth.FlopsPerJouleAt(i))
	if effEth >= effFree {
		t.Error("network power must erode energy efficiency")
	}
	// With the network, the Arndale cluster's energy advantage over the
	// Titan at SpMV-like intensity drops substantially.
	effTitan := float64(titan.FlopsPerJouleAt(i))
	advFree := effFree / effTitan
	advEth := effEth / effTitan
	if advFree < 1.05 {
		t.Fatalf("premise: free-network cluster should beat Titan on flop/J at I=0.25, ratio %v", advFree)
	}
	if advEth >= advFree-0.05 {
		t.Errorf("network should visibly erode the advantage: %v -> %v", advFree, advEth)
	}
	t.Logf("flop/J advantage over Titan at I=0.25: free net %.2fx, 1GbE %.2fx", advFree, advEth)
}

func TestClusterPowerAccounting(t *testing.T) {
	c := arndaleCluster(10, EthernetLowPower(), false)
	per := float64(c.Node.Pi1) + float64(c.Net.PerNodeConstantPower())
	approx(t, float64(c.ConstantPower()), 10*per, 1e-12, "constant power")
	if c.PeakPower() <= c.ConstantPower() {
		t.Error("peak power must exceed constant power")
	}
}

// Property: cluster energy and time are monotone in message size.
func TestQuickMonotoneInMessage(t *testing.T) {
	c := arndaleCluster(8, EthernetLowPower(), false)
	f := func(m1, m2 float64) bool {
		a := units.Bytes(math.Abs(math.Mod(m1, 1e9)))
		b := units.Bytes(math.Abs(math.Mod(m2, 1e9)))
		if math.IsNaN(float64(a)) || math.IsNaN(float64(b)) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		pa, err := c.Run(Step{W: units.GFlops(10), Q: units.GB(1), Msg: a, Pattern: AllReduce})
		if err != nil {
			return false
		}
		pb, err := c.Run(Step{W: units.GFlops(10), Q: units.GB(1), Msg: b, Pattern: AllReduce})
		if err != nil {
			return false
		}
		return pb.Time >= pa.Time && pb.Energy >= pa.Energy
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: E = P*T for any step.
func TestQuickEnergyPowerConsistency(t *testing.T) {
	c := arndaleCluster(8, InfinibandFDR(), true)
	f := func(wi, mi float64) bool {
		w := units.Flops(1e9 * (1 + math.Abs(math.Mod(wi, 100))))
		m := units.Bytes(math.Abs(math.Mod(mi, 1e8)))
		if math.IsNaN(float64(w)) || math.IsNaN(float64(m)) {
			return true
		}
		p, err := c.Run(Step{W: w, Q: units.Bytes(float64(w) / 4), Msg: m, Pattern: Halo})
		if err != nil {
			return false
		}
		e := float64(p.AvgPower) * float64(p.Time)
		return math.Abs(e-float64(p.Energy)) <= 1e-9*float64(p.Energy)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
