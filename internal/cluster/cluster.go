// Package cluster extends the node-level capped energy-roofline model to
// multi-node systems with an interconnection network.
//
// The paper's fig. 1 analysis constructs a hypothetical "supercomputer"
// from 47 Arndale GPUs power-matched to one GTX Titan and immediately
// cautions that "this best-case ignores the significant costs of an
// interconnection network", predicting the aggregate is "more likely to
// improve upon GTX Titan only marginally or not at all" once those costs
// are paid. This package makes that caveat quantitative: a Network adds
// per-node NIC constant power, amortized switch power, finite injection
// bandwidth, and a per-byte link energy; bulk-synchronous steps then
// charge communication volume by pattern (halo exchange, allreduce,
// all-to-all).
package cluster

import (
	"errors"
	"fmt"
	"math"

	"archline/internal/model"
	"archline/internal/units"
)

// Network describes the interconnect attached to every node.
type Network struct {
	// NICPower is the constant power of each node's network interface.
	NICPower units.Power
	// SwitchPower is one switch's constant power, amortized over
	// SwitchRadix nodes.
	SwitchPower units.Power
	SwitchRadix int
	// LinkBW is each node's injection bandwidth.
	LinkBW units.ByteRate
	// EpsLink is the inclusive energy to move one byte node-to-node
	// (serdes, switch traversal, NIC DMA on both ends).
	EpsLink units.EnergyPerByte
}

// Validate checks the network parameters.
func (n Network) Validate() error {
	if n.NICPower < 0 || n.SwitchPower < 0 {
		return errors.New("cluster: network powers must be non-negative")
	}
	if n.SwitchRadix < 1 {
		return errors.New("cluster: switch radix must be >= 1")
	}
	if n.LinkBW <= 0 {
		return errors.New("cluster: link bandwidth must be positive")
	}
	if n.EpsLink < 0 {
		return errors.New("cluster: link energy must be non-negative")
	}
	return nil
}

// PerNodeConstantPower is the network's constant-power charge per node:
// the NIC plus the amortized switch share.
func (n Network) PerNodeConstantPower() units.Power {
	return n.NICPower + units.Power(n.SwitchPower.Watts()/float64(n.SwitchRadix))
}

// EthernetLowPower is a small-system network: a 1 GbE-class NIC and an
// amortized edge switch. Numbers are representative of the Mont
// Blanc-era boards the paper cites.
func EthernetLowPower() Network {
	return Network{
		NICPower:    0.8,
		SwitchPower: 30,
		SwitchRadix: 48,
		LinkBW:      units.GBPerSec(0.117), // ~1 Gb/s
		EpsLink:     units.PicoJoulePerByte(8000),
	}
}

// InfinibandFDR is an HPC-class fabric: FDR-generation NIC and switch.
func InfinibandFDR() Network {
	return Network{
		NICPower:    8,
		SwitchPower: 120,
		SwitchRadix: 36,
		LinkBW:      units.GBPerSec(6.8),
		EpsLink:     units.PicoJoulePerByte(1500),
	}
}

// Pattern is a bulk-synchronous communication pattern.
type Pattern int

// The supported patterns.
const (
	// Embarrassing performs no communication.
	Embarrassing Pattern = iota
	// Halo exchanges one payload with a fixed set of neighbours
	// (stencil-style surface exchange).
	Halo
	// AllReduce reduces one payload across all nodes (ring algorithm:
	// each node moves ~2x the payload regardless of N).
	AllReduce
	// AllToAll sends a distinct payload to every other node.
	AllToAll
)

// String names the pattern.
func (p Pattern) String() string {
	switch p {
	case Embarrassing:
		return "embarrassing"
	case Halo:
		return "halo"
	case AllReduce:
		return "allreduce"
	case AllToAll:
		return "all-to-all"
	default:
		return "unknown"
	}
}

// wireVolume returns the bytes each node pushes through its link for a
// per-node payload msg under the pattern.
func wireVolume(p Pattern, msg units.Bytes, nodes int) (units.Bytes, error) {
	switch p {
	case Embarrassing:
		return 0, nil
	case Halo:
		return msg, nil
	case AllReduce:
		if nodes < 2 {
			return 0, nil
		}
		f := 2 * float64(nodes-1) / float64(nodes)
		return units.Bytes(f * msg.Count()), nil
	case AllToAll:
		return units.Bytes(msg.Count() * float64(nodes-1)), nil
	default:
		return 0, fmt.Errorf("cluster: unknown pattern %d", p)
	}
}

// Cluster is N identical nodes joined by a network.
type Cluster struct {
	Node  model.Params
	Nodes int
	Net   Network
	// Overlap reports whether communication overlaps computation (true
	// for pipelined codes) or serializes after it (plain BSP).
	Overlap bool
}

// Validate checks the cluster.
func (c *Cluster) Validate() error {
	if err := c.Node.Validate(); err != nil {
		return err
	}
	if c.Nodes < 1 {
		return errors.New("cluster: need at least one node")
	}
	return c.Net.Validate()
}

// ConstantPower is the whole system's constant power: node pi_1 plus the
// per-node network charge, times N.
func (c *Cluster) ConstantPower() units.Power {
	per := c.Node.Pi1.Watts() + c.Net.PerNodeConstantPower().Watts()
	return units.Power(per * float64(c.Nodes))
}

// PeakPower is the whole system's worst-case power.
func (c *Cluster) PeakPower() units.Power {
	dyn := math.Min(c.Node.DeltaPi.Watts(),
		c.Node.PiFlop().Watts()+c.Node.PiMem().Watts())
	// Link power at full injection counts against the node's envelope
	// only through EpsLink (we do not model a separate link cap).
	return units.Power(c.ConstantPower().Watts() + dyn*float64(c.Nodes))
}

// Step is one bulk-synchronous superstep: the whole system executes w
// flops and moves q local bytes (both divided evenly over nodes), then
// each node communicates a payload of msg bytes under the pattern.
type Step struct {
	W       units.Flops
	Q       units.Bytes
	Msg     units.Bytes // per-node payload for the pattern
	Pattern Pattern
}

// Prediction is the cluster-level outcome of one step.
type Prediction struct {
	Time     units.Time
	Energy   units.Energy
	AvgPower units.Power
	// CommTime is the (per-node) wire time of the step; under Overlap it
	// may hide inside the compute time.
	CommTime units.Time
	// CommEnergy is the total link energy spent.
	CommEnergy units.Energy
	// NetworkBound reports whether the wire, not the node, set the pace.
	NetworkBound bool
}

// Run evaluates one step.
func (c *Cluster) Run(s Step) (Prediction, error) {
	if err := c.Validate(); err != nil {
		return Prediction{}, err
	}
	if s.W < 0 || s.Q < 0 || s.Msg < 0 {
		return Prediction{}, errors.New("cluster: negative step component")
	}
	n := float64(c.Nodes)
	wNode := units.Flops(s.W.Count() / n)
	qNode := units.Bytes(s.Q.Count() / n)
	compute := c.Node.Time(wNode, qNode).Seconds()

	wire, err := wireVolume(s.Pattern, s.Msg, c.Nodes)
	if err != nil {
		return Prediction{}, err
	}
	comm := wire.Count() / float64(c.Net.LinkBW)

	var total float64
	if c.Overlap {
		total = math.Max(compute, comm)
	} else {
		total = compute + comm
	}

	// Energy: node dynamic + link dynamic + all constant power for the
	// full step duration.
	nodeDyn := wNode.Count()*float64(c.Node.EpsFlop) + qNode.Count()*float64(c.Node.EpsMem)
	linkDyn := wire.Count() * float64(c.Net.EpsLink)
	constP := c.ConstantPower().Watts()
	energy := n*(nodeDyn+linkDyn) + constP*total

	return Prediction{
		Time:         units.Time(total),
		Energy:       units.Energy(energy),
		AvgPower:     units.Energy(energy).Over(units.Time(total)),
		CommTime:     units.Time(comm),
		CommEnergy:   units.Energy(n * linkDyn),
		NetworkBound: comm > compute,
	}, nil
}

// EffectiveParams folds the cluster into a single capped-model machine
// for communication-free workloads: aggregate throughputs, per-op node
// energies, and constant power including the network's share. It is the
// machine fig. 1's dashed "47x" line would become once the network's
// constant power is charged.
func (c *Cluster) EffectiveParams() (model.Params, error) {
	if err := c.Validate(); err != nil {
		return model.Params{}, err
	}
	agg, err := c.Node.Scale(float64(c.Nodes))
	if err != nil {
		return model.Params{}, err
	}
	agg.Pi1 = c.ConstantPower()
	return agg, nil
}
