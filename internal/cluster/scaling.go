package cluster

import (
	"errors"

	"archline/internal/model"
	"archline/internal/units"
)

// ScalingPoint is one cluster size in a scaling sweep.
type ScalingPoint struct {
	Nodes int
	Time  units.Time
	// Efficiency is the parallel efficiency: T(1)/(N*T(N)) for strong
	// scaling, T(1)/T(N) for weak scaling.
	Efficiency float64
	// EnergyPerWork is joules per flop of useful work.
	EnergyPerWork float64
	NetworkBound  bool
}

// ScalingMode selects the sweep's scaling discipline.
type ScalingMode int

// Scaling modes.
const (
	// StrongScaling keeps the global problem fixed and divides it over N.
	StrongScaling ScalingMode = iota
	// WeakScaling grows the problem with N (fixed work per node).
	WeakScaling
)

// String names the mode.
func (m ScalingMode) String() string {
	if m == WeakScaling {
		return "weak"
	}
	return "strong"
}

// ScalingSweep evaluates a step across cluster sizes. For strong scaling
// the step describes the whole problem; for weak scaling it describes
// one node's share (the global problem grows with N). The per-node halo
// payload is fixed (surface exchange), the classic source of strong-
// scaling breakdown: as N grows, per-node compute shrinks but the wire
// time does not.
func ScalingSweep(node model.Params, net Network, sizes []int, step Step,
	mode ScalingMode, overlap bool) ([]ScalingPoint, error) {
	if len(sizes) == 0 {
		return nil, errors.New("cluster: no sizes to sweep")
	}
	var baseTime float64
	var out []ScalingPoint
	for idx, n := range sizes {
		if n < 1 {
			return nil, errors.New("cluster: sizes must be >= 1")
		}
		c := &Cluster{Node: node, Nodes: n, Net: net, Overlap: overlap}
		s := step
		if mode == WeakScaling {
			s.W = units.Flops(step.W.Count() * float64(n))
			s.Q = units.Bytes(step.Q.Count() * float64(n))
		}
		pred, err := c.Run(s)
		if err != nil {
			return nil, err
		}
		t := pred.Time.Seconds()
		if idx == 0 {
			baseTime = t * float64(sizes[0])
			if mode == WeakScaling {
				baseTime = t
			}
		}
		eff := 0.0
		switch mode {
		case StrongScaling:
			// Ideal: T(N) = T(base)*base/N; efficiency = ideal/actual.
			eff = baseTime / (float64(n) * t)
		case WeakScaling:
			eff = baseTime / t
		}
		work := s.W.Count()
		out = append(out, ScalingPoint{
			Nodes:         n,
			Time:          pred.Time,
			Efficiency:    eff,
			EnergyPerWork: pred.Energy.Joules() / work,
			NetworkBound:  pred.NetworkBound,
		})
	}
	return out, nil
}
