// Package scenario implements the paper's analyses and what-if studies on
// top of the capped model: the building-block comparison of fig. 1 and
// section I, the power-throttling sweeps of figs. 6-7 (section V-D), the
// streaming-energy ranking of section V-B, the constant-power statistics
// of section V-C, and the power-bounding construction of section V-D.
package scenario

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"archline/internal/machine"
	"archline/internal/model"
	"archline/internal/stats"
	"archline/internal/units"
)

// MetricPoint is one metric sample on an intensity grid.
type MetricPoint struct {
	I     units.Intensity
	Value float64
}

// Series is a named curve over intensity.
type Series struct {
	Name   string
	Points []MetricPoint
}

// SweepMetric evaluates a metric for a machine over a grid.
func SweepMetric(name string, p model.Params, m model.Metric, grid []units.Intensity) Series {
	k := model.NewKernel(p)
	return sweepKernel(make([]MetricPoint, 0, len(grid)), name, &k, m, grid)
}

// SweepMetricInto is SweepMetric evaluating into dst's backing array
// (append semantics: dst is truncated, filled, and returned inside the
// Series). The caller owns dst and may hand the same buffer back on
// the next sweep — at which point the previous Series' points are
// overwritten, so retain at most one sweep per buffer.
func SweepMetricInto(dst []MetricPoint, name string, p model.Params, m model.Metric, grid []units.Intensity) Series {
	k := model.NewKernel(p)
	return sweepKernel(dst[:0], name, &k, m, grid)
}

// sweepKernel appends one metric curve evaluated through a prebuilt
// coefficient table. Shared by the public sweeps and CompareBlocks,
// which reuses one kernel across its three metrics per machine.
func sweepKernel(dst []MetricPoint, name string, k *model.Kernel, m model.Metric, grid []units.Intensity) Series {
	for _, i := range grid {
		dst = append(dst, MetricPoint{I: i, Value: k.MetricAt(m, i.Ratio())})
	}
	return Series{Name: name, Points: dst}
}

// BlockComparison is the fig. 1 analysis: a big building block (A)
// against a small one (B) plus the power-matched aggregate of ks copies
// of B.
type BlockComparison struct {
	AName, BName string
	A, B         model.Params
	AggCount     int          // copies of B matching A's peak power ("47 x Arndale GPU")
	Agg          model.Params // the aggregate machine
	Grid         []units.Intensity

	// Per-metric curves: [A, B, Agg] for each of flop/time, flop/energy,
	// power.
	Perf, Eff, Power [3]Series

	// EnergyCrossover is the intensity where A and B tie on flop/J
	// (paper: "the two systems match in flops per Joule for intensities
	// as high as 4 flop:Byte"); zero when none exists in the grid range.
	EnergyCrossover units.Intensity
	// AggPerfCrossover is where the aggregate stops beating A on flop/s
	// (paper: about 4 flop:Byte); zero when none.
	AggPerfCrossover units.Intensity
	// MaxAggSpeedup is the aggregate's best flop/s advantage over A on
	// the grid (paper: "up to 1.6x").
	MaxAggSpeedup float64
	// AggPeakFraction is the aggregate's peak flop/s relative to A's
	// (paper: "less than 1/2").
	AggPeakFraction float64
}

// CompareBlocks runs the fig. 1 analysis over [lo, hi] with n grid points.
func CompareBlocks(aName string, a model.Params, bName string, b model.Params,
	lo, hi units.Intensity, n int) (*BlockComparison, error) {
	if err := a.Validate(); err != nil {
		return nil, fmt.Errorf("scenario: machine A: %w", err)
	}
	if err := b.Validate(); err != nil {
		return nil, fmt.Errorf("scenario: machine B: %w", err)
	}
	grid := model.LogSpace(lo, hi, n)
	if grid == nil {
		return nil, errors.New("scenario: bad intensity grid")
	}
	ks, err := model.PowerMatch(a, b)
	if err != nil {
		return nil, err
	}
	agg, err := b.Scale(float64(ks))
	if err != nil {
		return nil, err
	}
	bc := &BlockComparison{
		AName: aName, BName: bName,
		A: a, B: b, AggCount: ks, Agg: agg, Grid: grid,
	}
	aggName := fmt.Sprintf("%dx %s", ks, bName)
	machines := []struct {
		name string
		p    model.Params
	}{{aName, a}, {bName, b}, {aggName, agg}}
	// All nine curves share one flat backing array (capacity is exact,
	// so the sub-slices below never move), and each machine's three
	// metrics share one coefficient table.
	flat := make([]MetricPoint, 0, 9*len(grid))
	sweep := func(name string, k *model.Kernel, m model.Metric) Series {
		base := len(flat)
		s := sweepKernel(flat, name, k, m, grid)
		flat = s.Points
		s.Points = flat[base:len(flat):len(flat)]
		return s
	}
	for mi, mm := range machines {
		k := model.NewKernel(mm.p)
		bc.Perf[mi] = sweep(mm.name, &k, model.MetricFlopRate)
		bc.Eff[mi] = sweep(mm.name, &k, model.MetricFlopsPerJoule)
		bc.Power[mi] = sweep(mm.name, &k, model.MetricAvgPower)
	}
	// One shared refinement grid for both crossover scans: 4x the sweep
	// resolution, built once instead of once per metric pair.
	fine := model.LogSpace(lo, hi, 4*n)
	if xs := model.CrossoversOnGrid(a, b, model.MetricFlopsPerJoule, fine); len(xs) > 0 {
		bc.EnergyCrossover = xs[len(xs)-1]
	}
	if xs := model.CrossoversOnGrid(agg, a, model.MetricFlopRate, fine); len(xs) > 0 {
		bc.AggPerfCrossover = xs[len(xs)-1]
	}
	for k := range grid {
		if r := bc.Perf[2].Points[k].Value / bc.Perf[0].Points[k].Value; r > bc.MaxAggSpeedup {
			bc.MaxAggSpeedup = r
		}
	}
	bc.AggPeakFraction = float64(agg.PeakFlopRate()) / float64(a.PeakFlopRate())
	return bc, nil
}

// ThrottlePoint is one intensity sample of a throttled machine.
type ThrottlePoint struct {
	I      units.Intensity
	Power  units.Power         // eq. (7) under the reduced cap
	Perf   units.FlopRate      // eq. (4) under the reduced cap
	Eff    units.FlopsPerJoule // eq. (2) under the reduced cap
	Regime model.Regime        // the F/C/M annotation of fig. 6
}

// ThrottleCurve is a machine swept at one cap setting.
type ThrottleCurve struct {
	Frac   float64 // cap fraction: 1, 1/2, 1/4, 1/8 in figs. 6-7
	Params model.Params
	Points []ThrottlePoint
}

// ThrottleSweep evaluates the machine at each cap fraction over the grid,
// reproducing the data behind figs. 6, 7a, and 7b.
func ThrottleSweep(p model.Params, fracs []float64, grid []units.Intensity) ([]ThrottleCurve, error) {
	return ThrottleSweepInto(nil, p, fracs, grid)
}

// ThrottleSweepInto is ThrottleSweep evaluating every curve into buf's
// backing array (len(fracs)*len(grid) entries; grown once when short).
// The caller owns buf: handing the same buffer to a later sweep
// overwrites the earlier curves' points, so retain at most one sweep
// per buffer. One coefficient table is built per cap setting — the
// per-point loop is pure table arithmetic.
func ThrottleSweepInto(buf []ThrottlePoint, p model.Params, fracs []float64, grid []units.Intensity) ([]ThrottleCurve, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(fracs) == 0 || len(grid) == 0 {
		return nil, errors.New("scenario: need cap fractions and an intensity grid")
	}
	if need := len(fracs) * len(grid); cap(buf) < need {
		buf = make([]ThrottlePoint, 0, need)
	}
	buf = buf[:0]
	curves := make([]ThrottleCurve, 0, len(fracs))
	for _, f := range fracs {
		capped, err := p.WithCap(f)
		if err != nil {
			return nil, err
		}
		k := model.NewKernel(capped)
		base := len(buf)
		for _, i := range grid {
			iv := i.Ratio()
			buf = append(buf, ThrottlePoint{
				I:      i,
				Power:  units.Power(k.AvgPowerAt(iv)),
				Perf:   units.FlopRate(k.FlopRateAt(iv)),
				Eff:    units.FlopsPerJoule(k.FlopsPerJouleAt(iv)),
				Regime: k.RegimeAt(iv),
			})
		}
		curves = append(curves, ThrottleCurve{Frac: f, Params: capped, Points: buf[base:len(buf):len(buf)]})
	}
	return curves, nil
}

// PowerReduction reports how much a cap reduction actually lowers
// worst-case system power: reducing DeltaPi by k reduces total power by
// less than k because pi_1 stays (section V-D observation i).
func PowerReduction(p model.Params, frac float64) (float64, error) {
	capped, err := p.WithCap(frac)
	if err != nil {
		return 0, err
	}
	orig := p.PeakAvgPower().Watts()
	if orig <= 0 {
		return 0, errors.New("scenario: machine has no peak power")
	}
	return capped.PeakAvgPower().Watts() / orig, nil
}

// StreamCost is a platform's total cost of streaming one byte, section
// V-B's worked example.
type StreamCost struct {
	ID          machine.ID
	Name        string
	EpsMem      units.EnergyPerByte // the raw fitted eps_mem
	ConstCharge units.EnergyPerByte // pi_1 * max(tau_mem, eps_mem/DeltaPi)
	Total       units.EnergyPerByte // StreamEnergyPerByte
}

// StreamingEnergyRanking ranks platforms by total streaming energy per
// byte, ascending. Section V-B's point: the ranking by Total inverts the
// ranking by raw EpsMem (Arndale GPU < GTX Titan < Xeon Phi).
func StreamingEnergyRanking(platforms []*machine.Platform) []StreamCost {
	out := make([]StreamCost, 0, len(platforms))
	for _, p := range platforms {
		total := p.Single.StreamEnergyPerByte()
		out = append(out, StreamCost{
			ID:          p.ID,
			Name:        p.Name,
			EpsMem:      p.Single.EpsMem,
			ConstCharge: units.EnergyPerByte(float64(total) - float64(p.Single.EpsMem)),
			Total:       total,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Total < out[j].Total })
	return out
}

// ConstantPowerStats summarises section V-C's constant-power analysis.
type ConstantPowerStats struct {
	// Shares maps platform to pi_1/(pi_1 + DeltaPi).
	Shares map[machine.ID]float64
	// OverHalf counts platforms whose constant power exceeds 50% of
	// maximum power (the paper: 7 of 12).
	OverHalf int
	// Correlation is the Pearson correlation between the share and peak
	// energy-efficiency (the paper: about -0.6).
	Correlation float64
	// PowerRange maps platform to max/min of eq. (7) over the sweep
	// range, the "less than 2x" within-platform spread.
	PowerRange map[machine.ID]float64
}

// ConstantPowerAnalysis computes section V-C's statistics over a platform
// set, sweeping [lo, hi] for the within-platform power range.
func ConstantPowerAnalysis(platforms []*machine.Platform, lo, hi units.Intensity) (*ConstantPowerStats, error) {
	if len(platforms) < 2 {
		return nil, errors.New("scenario: need at least two platforms")
	}
	st := &ConstantPowerStats{
		Shares:     map[machine.ID]float64{},
		PowerRange: map[machine.ID]float64{},
	}
	var shares, eff []float64
	grid := model.LogSpace(lo, hi, 128)
	for _, p := range platforms {
		s := p.ConstantPowerShare()
		st.Shares[p.ID] = s
		if s > 0.5 {
			st.OverHalf++
		}
		shares = append(shares, s)
		eff = append(eff, float64(p.Single.PeakFlopsPerJoule()))

		minP, maxP := math.Inf(1), 0.0
		for _, i := range grid {
			v := p.Single.AvgPowerAt(i).Watts()
			minP = math.Min(minP, v)
			maxP = math.Max(maxP, v)
		}
		st.PowerRange[p.ID] = maxP / minP
	}
	r, err := stats.Pearson(shares, eff)
	if err != nil {
		return nil, err
	}
	st.Correlation = r
	return st, nil
}

// PowerBoundResult is the section V-D construction: a big node throttled
// to a power budget versus an assembly of small nodes at the same budget.
type PowerBoundResult struct {
	Budget units.Power
	I      units.Intensity

	// CapFrac is the cap fraction that brings the big machine to the
	// budget (the paper's "DeltaPi/8" for a 140 W Titan).
	CapFrac float64
	// BigPerfRatio is the throttled big machine's performance at I
	// relative to its unthrottled self (paper: ~0.31x at I = 0.25).
	BigPerfRatio float64
	// SmallCount is the number of small machines matching the budget
	// (paper: 23 Arndale GPUs at 140 W), rounded to nearest.
	SmallCount int
	// SmallVsBig is the small assembly's performance at I relative to the
	// throttled big machine (paper: ~2.8x).
	SmallVsBig float64
}

// PowerBound evaluates the section V-D scenario.
func PowerBound(big, small model.Params, budget units.Power, i units.Intensity) (*PowerBoundResult, error) {
	if err := big.Validate(); err != nil {
		return nil, err
	}
	if err := small.Validate(); err != nil {
		return nil, err
	}
	if i <= 0 {
		return nil, errors.New("scenario: intensity must be positive")
	}
	if budget.Watts() <= big.Pi1.Watts() {
		return nil, fmt.Errorf("scenario: budget %v below the big machine's constant power %v",
			budget, big.Pi1)
	}
	frac := (budget.Watts() - big.Pi1.Watts()) / big.DeltaPi.Watts()
	if frac > 1 {
		frac = 1
	}
	capped, err := big.WithCap(frac)
	if err != nil {
		return nil, err
	}
	res := &PowerBoundResult{
		Budget:  budget,
		I:       i,
		CapFrac: frac,
	}
	res.BigPerfRatio = float64(capped.FlopRateAt(i)) / float64(big.FlopRateAt(i))

	peakSmall := small.PeakAvgPower().Watts()
	if peakSmall <= 0 {
		return nil, errors.New("scenario: small machine has no peak power")
	}
	k := int(math.Round(budget.Watts() / peakSmall))
	if k < 1 {
		return nil, errors.New("scenario: budget below one small machine")
	}
	res.SmallCount = k
	assembly, err := small.Scale(float64(k))
	if err != nil {
		return nil, err
	}
	bigRate := float64(capped.FlopRateAt(i))
	if bigRate <= 0 {
		return nil, errors.New("scenario: throttled big machine has no throughput")
	}
	res.SmallVsBig = float64(assembly.FlopRateAt(i)) / bigRate
	return res, nil
}
