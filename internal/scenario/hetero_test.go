package scenario

import (
	"math"
	"testing"

	"archline/internal/units"
)

func heteroPool() []HeteroMachine {
	return []HeteroMachine{
		{Name: "titan", Params: titan(), Count: 1},
		{Name: "mali", Params: mali(), Count: 8},
	}
}

func TestSplitForTimeBalances(t *testing.T) {
	w := units.TFlops(1)
	i := units.Intensity(0.25)
	sp, err := SplitForTime(heteroPool(), w, i)
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.Shares) != 2 {
		t.Fatal("two shares expected")
	}
	// Fractions sum to 1.
	if s := sp.Shares[0].Fraction + sp.Shares[1].Fraction; math.Abs(s-1) > 1e-12 {
		t.Errorf("fractions sum to %v", s)
	}
	// Work splits by rate: at I=0.25 the Titan streams 239 GB/s against
	// 8x8.39 GB/s of Malis, so the Titan gets ~78%.
	titanRate := float64(titan().FlopRateAt(i))
	maliRate := 8 * float64(mali().FlopRateAt(i))
	wantFrac := titanRate / (titanRate + maliRate)
	if math.Abs(sp.Shares[0].Fraction-wantFrac) > 1e-9 {
		t.Errorf("titan fraction %v, want %v", sp.Shares[0].Fraction, wantFrac)
	}
	// Makespan beats either machine alone.
	alone := float64(w) / titanRate
	if float64(sp.Time) >= alone {
		t.Errorf("pooled time %v should beat the Titan alone %v", sp.Time, alone)
	}
	// All shares finish together (balanced).
	if sp.Shares[0].Time != sp.Shares[1].Time {
		t.Error("balanced split should equalize completion times")
	}
	// E = sum of share energies.
	if math.Abs(float64(sp.Shares[0].Energy+sp.Shares[1].Energy-sp.Energy)) > 1e-9*float64(sp.Energy) {
		t.Error("share energies should sum")
	}
}

func TestSplitForTimeErrors(t *testing.T) {
	if _, err := SplitForTime(nil, 1, 1); err == nil {
		t.Error("empty pool should error")
	}
	if _, err := SplitForTime(heteroPool(), 0, 1); err == nil {
		t.Error("zero work should error")
	}
	if _, err := SplitForTime(heteroPool(), 1, 0); err == nil {
		t.Error("zero intensity should error")
	}
	bad := heteroPool()
	bad[0].Count = 0
	if _, err := SplitForTime(bad, 1, 1); err == nil {
		t.Error("zero count should error")
	}
	bad = heteroPool()
	bad[0].Params.TauFlop = 0
	if _, err := SplitForTime(bad, 1, 1); err == nil {
		t.Error("invalid params should error")
	}
}

func TestSplitForEnergyPrefersCheapMarginalFlops(t *testing.T) {
	w := units.GFlops(500)
	i := units.Intensity(0.25)
	// At I = 0.25 the Titan's dynamic cost is eps_s + 4*eps_mem =
	// 30.4p + 1068p = ~1.1 nJ/flop vs the Mali's 84.2p + 2072p = ~2.2
	// nJ/flop: the Titan is the cheaper marginal machine and should fill
	// first under a loose deadline.
	loose := units.Time(60)
	sp, err := SplitForEnergy(heteroPool(), w, i, loose)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Shares[0].Fraction < 0.999 {
		t.Errorf("loose deadline should give the Titan everything, got %v", sp.Shares[0].Fraction)
	}
	// Tight deadline: Titan capacity alone covers only 90% of the work;
	// the Malis pick up the remainder.
	titanRate := float64(titan().FlopRateAt(i))
	tight := units.Time(0.9 * float64(w) / titanRate)
	sp, err = SplitForEnergy(heteroPool(), w, i, tight)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Shares[1].Fraction <= 0 {
		t.Error("tight deadline should spill work to the Malis")
	}
	// Shares still sum to 1.
	if s := sp.Shares[0].Fraction + sp.Shares[1].Fraction; math.Abs(s-1) > 1e-9 {
		t.Errorf("fractions sum to %v", s)
	}
	// Impossible deadline errors.
	if _, err := SplitForEnergy(heteroPool(), w, i, units.Time(1e-9)); err == nil {
		t.Error("impossible deadline should error")
	}
}

func TestSplitForEnergyNeverBeatsPhysics(t *testing.T) {
	// Energy-optimal with a deadline can never use less dynamic energy
	// than putting all work on the cheapest machine unconstrained.
	w := units.GFlops(100)
	i := units.Intensity(16)
	sp, err := SplitForEnergy(heteroPool(), w, i, units.Time(10))
	if err != nil {
		t.Fatal(err)
	}
	cheapDyn := float64(w) * (float64(titan().EpsFlop) + float64(titan().EpsMem)/16)
	constant := (float64(titan().Pi1) + 8*float64(mali().Pi1)) * 10
	if float64(sp.Energy) < cheapDyn+constant-1e-6 {
		t.Error("energy below the physical floor")
	}
}

func TestSplitForEnergyErrors(t *testing.T) {
	if _, err := SplitForEnergy(nil, 1, 1, 1); err == nil {
		t.Error("empty pool should error")
	}
	if _, err := SplitForEnergy(heteroPool(), 0, 1, 1); err == nil {
		t.Error("zero work should error")
	}
	if _, err := SplitForEnergy(heteroPool(), 1, 0, 1); err == nil {
		t.Error("zero intensity should error")
	}
	if _, err := SplitForEnergy(heteroPool(), 1, 1, 0); err == nil {
		t.Error("zero deadline should error")
	}
}

func TestHeteroTimeVsEnergyTradeoff(t *testing.T) {
	// The time-optimal split finishes sooner; the energy-optimal split
	// (at the time-optimal makespan as deadline) uses no more energy.
	w := units.TFlops(0.5)
	i := units.Intensity(0.5)
	timeOpt, err := SplitForTime(heteroPool(), w, i)
	if err != nil {
		t.Fatal(err)
	}
	energyOpt, err := SplitForEnergy(heteroPool(), w, i, timeOpt.Time)
	if err != nil {
		t.Fatal(err)
	}
	if float64(energyOpt.Energy) > float64(timeOpt.Energy)*(1+1e-9) {
		t.Errorf("energy-optimal split (%v J) should not exceed time-optimal (%v J)",
			energyOpt.Energy, timeOpt.Energy)
	}
}
