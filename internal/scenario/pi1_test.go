package scenario

import (
	"math"
	"testing"

	"archline/internal/machine"
	"archline/internal/model"
)

func TestPi1Reduction(t *testing.T) {
	studies, err := Pi1Reduction(machine.All(), 0.125, 512)
	if err != nil {
		t.Fatal(err)
	}
	if len(studies) != 12 {
		t.Fatalf("got %d studies", len(studies))
	}
	for _, s := range studies {
		if len(s.Points) != 4 {
			t.Fatalf("%s: %d points", s.Platform.Name, len(s.Points))
		}
		// Factor 1 is the baseline: gain exactly 1.
		if math.Abs(s.Points[0].EffGain-1) > 1e-12 {
			t.Errorf("%s: baseline gain %v", s.Platform.Name, s.Points[0].EffGain)
		}
		// Efficiency improves monotonically as pi_1 shrinks.
		for k := 1; k < len(s.Points); k++ {
			if s.Points[k].EffGain < s.Points[k-1].EffGain-1e-12 {
				t.Errorf("%s: efficiency not monotone in pi_1 reduction", s.Platform.Name)
			}
		}
		// Reconfigurability (power range) widens as pi_1 shrinks — the
		// paper's "key factor" claim. (Factor 0 may yield min power 0;
		// range is then reported as 0 and skipped.)
		prev := s.Points[0].ReconfigRange
		for k := 1; k < len(s.Points); k++ {
			r := s.Points[k].ReconfigRange
			if r == 0 {
				continue
			}
			if r < prev-1e-12 {
				t.Errorf("%s: power range narrowed as pi_1 fell", s.Platform.Name)
			}
			prev = r
		}
	}
	// The platform with the largest pi_1 share (Xeon Phi or APU CPU at
	// ~83-94%) gains the most from eliminating it.
	var phiGain, titanGain float64
	for _, s := range studies {
		switch s.Platform.ID {
		case machine.XeonPhi:
			phiGain = s.Points[3].EffGain
		case machine.GTXTitan:
			titanGain = s.Points[3].EffGain
		}
	}
	if phiGain <= titanGain {
		t.Errorf("Phi (pi_1-dominated) should gain more than Titan: %v vs %v", phiGain, titanGain)
	}
	if _, err := Pi1Reduction(nil, 0.1, 10); err == nil {
		t.Error("no platforms should error")
	}
	if _, err := Pi1Reduction(machine.All(), 10, 1); err == nil {
		t.Error("bad range should error")
	}
}

func TestParetoCap(t *testing.T) {
	p := titan()
	pc, err := ParetoCap(p, 16, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(pc.Points) == 0 {
		t.Fatal("no points")
	}
	// Along the sweep, time per flop is non-increasing in frac and
	// energy behaviour is the trade-off: check the frontier property at
	// the ends.
	first, last := pc.Points[0], pc.Points[len(pc.Points)-1]
	if first.TimePerFlop < last.TimePerFlop {
		t.Error("tighter cap must not be faster")
	}
	// EDP optimum is attainable and within (0, 1].
	if pc.EDPOptimalFrac <= 0 || pc.EDPOptimalFrac > 1 {
		t.Errorf("EDP-optimal frac %v", pc.EDPOptimalFrac)
	}
	// EDP at the optimum beats the endpoints.
	edp := func(pt CapParetoPoint) float64 { return pt.TimePerFlop * pt.EnergyPerFlop }
	var opt CapParetoPoint
	for _, pt := range pc.Points {
		if pt.Frac == pc.EDPOptimalFrac {
			opt = pt
		}
	}
	if edp(opt) > edp(first)*(1+1e-12) || edp(opt) > edp(last)*(1+1e-12) {
		t.Error("EDP optimum should beat the sweep endpoints")
	}

	// On a machine with abundant power, any cap above pi_flop is free:
	// the EDP optimum ties with full cap and must not sacrifice speed.
	roomy := p
	roomy.DeltaPi = 1000
	pc2, err := ParetoCap(roomy, 1024, 16)
	if err != nil {
		t.Fatal(err)
	}
	var opt2 CapParetoPoint
	for _, pt := range pc2.Points {
		if pt.Frac == pc2.EDPOptimalFrac {
			opt2 = pt
		}
	}
	full := pc2.Points[len(pc2.Points)-1]
	if math.Abs(opt2.TimePerFlop-full.TimePerFlop) > 1e-15*full.TimePerFlop {
		t.Errorf("EDP optimum on a roomy machine should retain full speed: %v vs %v",
			opt2.TimePerFlop, full.TimePerFlop)
	}

	// Errors.
	if _, err := ParetoCap(model.Params{}, 1, 8); err == nil {
		t.Error("invalid machine should error")
	}
	if _, err := ParetoCap(p, 0, 8); err == nil {
		t.Error("zero intensity should error")
	}
	if _, err := ParetoCap(p, 1, 1); err == nil {
		t.Error("n<2 should error")
	}
}

func TestProcessNodeAnalysis(t *testing.T) {
	st, err := ProcessNodeAnalysis(machine.All())
	if err != nil {
		t.Fatal(err)
	}
	if st.N != 12 || st.NCPU < 5 {
		t.Errorf("sample sizes N=%d NCPU=%d", st.N, st.NCPU)
	}
	// Per-flop energy tracks process node: positive rank correlation,
	// stronger when the GPU/manycore architectural spread is removed.
	if st.RhoCPU < 0.5 {
		t.Errorf("CPU-only Spearman %v, expected a clear Dennard-scaling signal", st.RhoCPU)
	}
	if st.RhoAll <= 0 {
		t.Errorf("all-platform Spearman %v, expected positive", st.RhoAll)
	}
	if st.RhoCPU < st.RhoAll-0.05 {
		t.Errorf("CPU-only signal (%v) should be at least as clean as mixed (%v)",
			st.RhoCPU, st.RhoAll)
	}
	if _, err := ProcessNodeAnalysis(machine.All()[:1]); err == nil {
		t.Error("too few platforms should error")
	}
}
