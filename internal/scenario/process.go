package scenario

import (
	"errors"

	"archline/internal/machine"
	"archline/internal/stats"
)

// ProcessNodeStats extracts the technology-scaling signal latent in
// Table I: the paper tabulates each processor's process node (45 nm
// Nehalem down to 22 nm Phi/Ivy Bridge) alongside its fitted per-flop
// energy. Under Dennard-style scaling, smaller nodes should show lower
// eps_flop; the rank correlation quantifies how strongly the twelve
// fitted constants actually follow that expectation despite the
// architectural confounders (CPU vs GPU vs manycore).
type ProcessNodeStats struct {
	// RhoAll is the Spearman rank correlation of (process nm, eps_s)
	// over every platform with a known node.
	RhoAll float64
	// RhoCPU restricts to CPU-style platforms (non-GPU), where the
	// architectural spread is smaller and the scaling signal cleaner.
	RhoCPU float64
	// N and NCPU are the sample sizes.
	N, NCPU int
}

// ProcessNodeAnalysis computes the correlations over a platform set.
func ProcessNodeAnalysis(platforms []*machine.Platform) (*ProcessNodeStats, error) {
	var nmAll, epsAll, nmCPU, epsCPU []float64
	for _, p := range platforms {
		if p.ProcessNM <= 0 {
			continue
		}
		nm := float64(p.ProcessNM)
		eps := float64(p.Single.EpsFlop)
		nmAll = append(nmAll, nm)
		epsAll = append(epsAll, eps)
		if !p.IsGPU {
			nmCPU = append(nmCPU, nm)
			epsCPU = append(epsCPU, eps)
		}
	}
	if len(nmAll) < 3 || len(nmCPU) < 3 {
		return nil, errors.New("scenario: too few platforms with process data")
	}
	rhoAll, err := stats.Spearman(nmAll, epsAll)
	if err != nil {
		return nil, err
	}
	rhoCPU, err := stats.Spearman(nmCPU, epsCPU)
	if err != nil {
		return nil, err
	}
	return &ProcessNodeStats{
		RhoAll: rhoAll, RhoCPU: rhoCPU,
		N: len(nmAll), NCPU: len(nmCPU),
	}, nil
}
