package scenario

import (
	"errors"
	"sort"

	"archline/internal/model"
	"archline/internal/units"
)

// This file answers the question the paper's title poses in the plural:
// if a system may mix candidate building blocks, how should divisible
// work at a given intensity be split across them? Two classic policies:
// minimize time (load balance by achievable rate) or minimize energy
// under a deadline (greedily fill the machines with the cheapest
// marginal joules per flop first).

// HeteroMachine is one building block in a heterogeneous pool.
type HeteroMachine struct {
	Name   string
	Params model.Params
	// Count replicates the block (Count >= 1).
	Count int
}

// HeteroShare is one machine's assignment.
type HeteroShare struct {
	Name     string
	Fraction float64 // share of total work
	Time     units.Time
	Energy   units.Energy // dynamic + this machine's pi_1 over its busy time
}

// HeteroSplit is a complete partition.
type HeteroSplit struct {
	Shares []HeteroShare
	// Time is the makespan; Energy totals every machine's cost over the
	// makespan (idle machines still burn pi_1 until the job completes).
	Time   units.Time
	Energy units.Energy
}

// validatePool checks a machine pool.
func validatePool(pool []HeteroMachine) error {
	if len(pool) == 0 {
		return errors.New("scenario: empty machine pool")
	}
	for _, m := range pool {
		if err := m.Params.Validate(); err != nil {
			return err
		}
		if m.Count < 1 {
			return errors.New("scenario: machine count must be >= 1")
		}
	}
	return nil
}

// SplitForTime partitions w flops at intensity i across the pool to
// minimize the makespan: each machine receives work in proportion to its
// achievable rate at that intensity, so all finish together (the
// balanced partition is optimal for divisible work).
func SplitForTime(pool []HeteroMachine, w units.Flops, i units.Intensity) (*HeteroSplit, error) {
	if err := validatePool(pool); err != nil {
		return nil, err
	}
	if w <= 0 || i <= 0 {
		return nil, errors.New("scenario: work and intensity must be positive")
	}
	var totalRate float64
	rates := make([]float64, len(pool))
	for k, m := range pool {
		rates[k] = float64(m.Params.FlopRateAt(i)) * float64(m.Count)
		totalRate += rates[k]
	}
	if totalRate <= 0 {
		return nil, errors.New("scenario: pool has no throughput at this intensity")
	}
	makespan := w.Count() / totalRate
	out := &HeteroSplit{Time: units.Time(makespan)}
	var energy float64
	for k, m := range pool {
		frac := rates[k] / totalRate
		wk := units.Flops(w.Count() * frac)
		qk := i.Bytes(wk)
		// All machines run the full makespan by construction.
		e := wk.Count()*float64(m.Params.EpsFlop) + qk.Count()*float64(m.Params.EpsMem) +
			m.Params.Pi1.Watts()*float64(m.Count)*makespan
		energy += e
		out.Shares = append(out.Shares, HeteroShare{
			Name:     m.Name,
			Fraction: frac,
			Time:     units.Time(makespan),
			Energy:   units.Energy(e),
		})
	}
	out.Energy = units.Energy(energy)
	return out, nil
}

// SplitForEnergy partitions w flops at intensity i to minimize energy
// subject to finishing within the deadline: machines are filled in
// increasing order of marginal (dynamic) joules per flop, each up to the
// work it can complete by the deadline. Constant power burns on every
// pool machine for the full deadline regardless of assignment (the pool
// is powered either way), so only dynamic energy drives the ordering.
// It returns an error if the pool cannot finish in time.
func SplitForEnergy(pool []HeteroMachine, w units.Flops, i units.Intensity,
	deadline units.Time) (*HeteroSplit, error) {
	if err := validatePool(pool); err != nil {
		return nil, err
	}
	if w <= 0 || i <= 0 || deadline <= 0 {
		return nil, errors.New("scenario: work, intensity, and deadline must be positive")
	}
	type cand struct {
		idx      int
		marginal float64 // dynamic J/flop at intensity i
		capacity float64 // flops completable within the deadline
	}
	cands := make([]cand, len(pool))
	for k, m := range pool {
		dyn := float64(m.Params.EpsFlop) + float64(m.Params.EpsMem)/i.Ratio()
		capacity := float64(m.Params.FlopRateAt(i)) * float64(m.Count) * deadline.Seconds()
		cands[k] = cand{idx: k, marginal: dyn, capacity: capacity}
	}
	sort.SliceStable(cands, func(a, b int) bool { return cands[a].marginal < cands[b].marginal })

	assigned := make([]float64, len(pool))
	remaining := w.Count()
	for _, c := range cands {
		if remaining <= 0 {
			break
		}
		take := remaining
		if take > c.capacity {
			take = c.capacity
		}
		assigned[c.idx] = take
		remaining -= take
	}
	if remaining > 1e-9*w.Count() {
		return nil, errors.New("scenario: pool cannot meet the deadline")
	}
	out := &HeteroSplit{Time: deadline}
	var energy float64
	for k, m := range pool {
		wk := assigned[k]
		dyn := wk * (float64(m.Params.EpsFlop) + float64(m.Params.EpsMem)/i.Ratio())
		e := dyn + m.Params.Pi1.Watts()*float64(m.Count)*deadline.Seconds()
		energy += e
		busy := 0.0
		if rate := float64(m.Params.FlopRateAt(i)) * float64(m.Count); rate > 0 {
			busy = wk / rate
		}
		out.Shares = append(out.Shares, HeteroShare{
			Name:     m.Name,
			Fraction: wk / w.Count(),
			Time:     units.Time(busy),
			Energy:   units.Energy(e),
		})
	}
	out.Energy = units.Energy(energy)
	return out, nil
}
