package scenario

import (
	"errors"

	"archline/internal/machine"
	"archline/internal/model"
	"archline/internal/units"
)

// This file studies the question the paper's conclusions pose to
// "device designers, architects, and system integrators": constant power
// pi_1 "accounts for more than 50% of observed power on 7 of the 12
// evaluation platforms ... To what extent can pi_1 be reduced, perhaps
// by more tightly integrating non-processor and non-memory components?"
// Pi1Reduction answers the what-if side: how much peak energy efficiency
// and power reconfigurability each platform gains as pi_1 shrinks.

// Pi1Point is one platform at one pi_1 reduction factor.
type Pi1Point struct {
	Factor float64 // pi_1 multiplier (1, 1/2, 1/4, 0)
	// PeakFlopsPerJoule at the reduced pi_1.
	PeakFlopsPerJoule units.FlopsPerJoule
	// EffGain relative to the unmodified platform.
	EffGain float64
	// ReconfigRange is the max/min ratio of eq. (7) over intensity: the
	// within-platform power range the paper finds limited to < 2x; lower
	// pi_1 widens it ("driving down pi_1 would be the key factor for
	// improving overall system power reconfigurability").
	ReconfigRange float64
}

// Pi1Study is one platform's reduction sweep.
type Pi1Study struct {
	Platform *machine.Platform
	Points   []Pi1Point
}

// Pi1Reduction sweeps pi_1 x {1, 1/2, 1/4, 0} on each platform over the
// given intensity range.
func Pi1Reduction(platforms []*machine.Platform, lo, hi units.Intensity) ([]Pi1Study, error) {
	if len(platforms) == 0 {
		return nil, errors.New("scenario: no platforms")
	}
	grid := model.LogSpace(lo, hi, 96)
	if grid == nil {
		return nil, errors.New("scenario: bad intensity range")
	}
	factors := []float64{1, 0.5, 0.25, 0}
	var out []Pi1Study
	for _, plat := range platforms {
		study := Pi1Study{Platform: plat}
		base := float64(plat.Single.PeakFlopsPerJoule())
		for _, f := range factors {
			p := plat.Single
			p.Pi1 = units.Power(p.Pi1.Watts() * f)
			minP, maxP := 0.0, 0.0
			for k, i := range grid {
				v := p.AvgPowerAt(i).Watts()
				if k == 0 || v < minP {
					minP = v
				}
				if k == 0 || v > maxP {
					maxP = v
				}
			}
			rangeRatio := maxP / minP
			if minP == 0 {
				rangeRatio = 0
			}
			study.Points = append(study.Points, Pi1Point{
				Factor:            f,
				PeakFlopsPerJoule: p.PeakFlopsPerJoule(),
				EffGain:           float64(p.PeakFlopsPerJoule()) / base,
				ReconfigRange:     rangeRatio,
			})
		}
		out = append(out, study)
	}
	return out, nil
}

// CapPareto traces the time-energy trade-off of throttling: for a
// workload at intensity i, each cap setting yields a (time, energy) pair
// per flop; the curve is the Pareto frontier power bounding navigates.
// It also reports the cap minimizing the energy-delay product.
type CapPareto struct {
	I      units.Intensity
	Points []CapParetoPoint
	// EDPOptimalFrac is the cap fraction minimizing E*T per flop.
	EDPOptimalFrac float64
}

// CapParetoPoint is one cap setting's cost per flop.
type CapParetoPoint struct {
	Frac          float64
	TimePerFlop   float64 // seconds per flop
	EnergyPerFlop float64 // joules per flop
}

// ParetoCap sweeps cap fractions over (0, 1] for a machine at intensity
// i. n controls the sweep resolution.
func ParetoCap(p model.Params, i units.Intensity, n int) (*CapPareto, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if i <= 0 {
		return nil, errors.New("scenario: intensity must be positive")
	}
	if n < 2 {
		return nil, errors.New("scenario: need at least 2 sweep points")
	}
	out := &CapPareto{I: i}
	bestEDP := 0.0
	for k := 1; k <= n; k++ {
		frac := float64(k) / float64(n)
		capped, err := p.WithCap(frac)
		if err != nil {
			return nil, err
		}
		rate := capped.FlopRateAt(i).FlopsPerSec()
		if rate <= 0 {
			continue
		}
		t := 1 / rate
		e := capped.EnergyPerFlopAt(i).JoulesPerFlop()
		out.Points = append(out.Points, CapParetoPoint{Frac: frac, TimePerFlop: t, EnergyPerFlop: e})
		if edp := e * t; bestEDP == 0 || edp < bestEDP {
			bestEDP = edp
			out.EDPOptimalFrac = frac
		}
	}
	if len(out.Points) == 0 {
		return nil, errors.New("scenario: no feasible cap settings")
	}
	return out, nil
}
