package scenario

import (
	"math"
	"testing"

	"archline/internal/machine"
	"archline/internal/model"
	"archline/internal/units"
)

func titan() model.Params { return machine.MustByID(machine.GTXTitan).Single }
func mali() model.Params  { return machine.MustByID(machine.ArndaleGPU).Single }

func TestCompareBlocksFig1(t *testing.T) {
	bc, err := CompareBlocks("GTX Titan", titan(), "Arndale GPU", mali(), 0.125, 256, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 1's headline label: "47 x Arndale GPU".
	if bc.AggCount != 47 {
		t.Errorf("aggregate count = %d, paper labels 47", bc.AggCount)
	}
	// Energy crossover "as high as 4 flop:Byte".
	if bc.EnergyCrossover == 0 {
		t.Fatal("expected an energy crossover")
	}
	if x := float64(bc.EnergyCrossover); x < 1.5 || x > 8 {
		t.Errorf("energy crossover at %v, paper says ~4", x)
	}
	// Aggregate wins below ~4 flop:Byte, loses above.
	if bc.AggPerfCrossover == 0 {
		t.Fatal("expected an aggregate performance crossover")
	}
	if x := float64(bc.AggPerfCrossover); x < 1 || x > 16 {
		t.Errorf("perf crossover at %v, paper says ~4", x)
	}
	// "up to 1.6x" bandwidth-bound speedup.
	if bc.MaxAggSpeedup < 1.3 || bc.MaxAggSpeedup > 2.0 {
		t.Errorf("max aggregate speedup %v, paper says up to 1.6x", bc.MaxAggSpeedup)
	}
	// "less than 1/2" of the Titan's peak.
	if bc.AggPeakFraction >= 0.5 {
		t.Errorf("aggregate peak fraction %v, paper says < 1/2", bc.AggPeakFraction)
	}
	// Series shapes.
	for _, s := range [][3]Series{bc.Perf, bc.Eff, bc.Power} {
		for _, ser := range s {
			if len(ser.Points) != 100 {
				t.Fatalf("series %s has %d points", ser.Name, len(ser.Points))
			}
		}
	}
	if bc.Perf[2].Name != "47x Arndale GPU" {
		t.Errorf("aggregate series name %q", bc.Perf[2].Name)
	}
}

func TestCompareBlocksErrors(t *testing.T) {
	var bad model.Params
	if _, err := CompareBlocks("a", bad, "b", mali(), 0.1, 10, 10); err == nil {
		t.Error("invalid machine A should error")
	}
	if _, err := CompareBlocks("a", titan(), "b", bad, 0.1, 10, 10); err == nil {
		t.Error("invalid machine B should error")
	}
	if _, err := CompareBlocks("a", titan(), "b", mali(), 0, 10, 10); err == nil {
		t.Error("bad grid should error")
	}
}

func TestThrottleSweepFig6(t *testing.T) {
	grid := model.LogSpace(0.25, 128, 60)
	fracs := []float64{1, 0.5, 0.25, 0.125}
	curves, err := ThrottleSweep(titan(), fracs, grid)
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 4 {
		t.Fatalf("got %d curves", len(curves))
	}
	// Tighter caps never increase power, performance, or efficiency...
	// (efficiency can only degrade or stay equal under a tighter cap).
	for k := range grid {
		for c := 1; c < len(curves); c++ {
			if curves[c].Points[k].Power > curves[c-1].Points[k].Power+1e-9 {
				t.Errorf("power increased under tighter cap at I=%v", grid[k])
			}
			if curves[c].Points[k].Perf > curves[c-1].Points[k].Perf*(1+1e-9) {
				t.Errorf("perf increased under tighter cap at I=%v", grid[k])
			}
			if float64(curves[c].Points[k].Eff) > float64(curves[c-1].Points[k].Eff)*(1+1e-9) {
				t.Errorf("efficiency increased under tighter cap at I=%v", grid[k])
			}
		}
	}
	// At DeltaPi/8 the cap regime covers (almost) the whole sweep.
	capped := 0
	for _, pt := range curves[3].Points {
		if pt.Regime == model.CapBound {
			capped++
		}
	}
	if capped < len(grid)*3/4 {
		t.Errorf("DeltaPi/8 should be cap-bound almost everywhere, got %d/%d", capped, len(grid))
	}

	if _, err := ThrottleSweep(titan(), nil, grid); err == nil {
		t.Error("empty fractions should error")
	}
	if _, err := ThrottleSweep(titan(), fracs, nil); err == nil {
		t.Error("empty grid should error")
	}
	var bad model.Params
	if _, err := ThrottleSweep(bad, fracs, grid); err == nil {
		t.Error("invalid machine should error")
	}
	if _, err := ThrottleSweep(titan(), []float64{-1}, grid); err == nil {
		t.Error("negative fraction should error")
	}
}

func TestPowerReduction(t *testing.T) {
	// Section V-D: reducing DeltaPi by k reduces overall power by less
	// than k, because pi_1 remains.
	for _, frac := range []float64{0.5, 0.25, 0.125} {
		r, err := PowerReduction(titan(), frac)
		if err != nil {
			t.Fatal(err)
		}
		if r <= frac || r >= 1 {
			t.Errorf("power reduction to %v of cap gives ratio %v; want frac < ratio < 1", frac, r)
		}
	}
	// The Arndale GPU (lowest pi_1 share) reduces the most; the Xeon Phi
	// (highest pi_1 share) the least — the paper's observation.
	rMali, _ := PowerReduction(mali(), 0.125)
	rPhi, _ := PowerReduction(machine.MustByID(machine.XeonPhi).Single, 0.125)
	if rMali >= rPhi {
		t.Errorf("Arndale GPU ratio %v should be below Xeon Phi %v", rMali, rPhi)
	}
	if _, err := PowerReduction(titan(), -1); err == nil {
		t.Error("negative fraction should error")
	}
}

func TestStreamingEnergyRankingSectionVB(t *testing.T) {
	ranking := StreamingEnergyRanking(machine.All())
	if len(ranking) != 12 {
		t.Fatalf("got %d entries", len(ranking))
	}
	// Ascending total.
	for i := 1; i < len(ranking); i++ {
		if ranking[i].Total < ranking[i-1].Total {
			t.Fatal("ranking not ascending")
		}
	}
	pos := map[machine.ID]int{}
	totals := map[machine.ID]float64{}
	for i, r := range ranking {
		pos[r.ID] = i
		totals[r.ID] = float64(r.Total)
		if math.Abs(float64(r.EpsMem)+float64(r.ConstCharge)-float64(r.Total)) > 1e-18 {
			t.Errorf("%s: components do not sum", r.Name)
		}
	}
	// The inversion: Arndale GPU beats Titan beats Phi on total, even
	// though Phi has the lowest raw eps_mem.
	if !(pos[machine.ArndaleGPU] < pos[machine.GTXTitan] && pos[machine.GTXTitan] < pos[machine.XeonPhi]) {
		t.Error("section V-B ordering Arndale < Titan < Phi violated")
	}
	// Paper's numbers: 671 pJ/B, 782 pJ/B, 1.13 nJ/B.
	if math.Abs(totals[machine.ArndaleGPU]-671e-12) > 0.02*671e-12 {
		t.Errorf("Arndale total %v, paper 671 pJ/B", totals[machine.ArndaleGPU])
	}
	if math.Abs(totals[machine.GTXTitan]-782e-12) > 0.02*782e-12 {
		t.Errorf("Titan total %v, paper 782 pJ/B", totals[machine.GTXTitan])
	}
	if math.Abs(totals[machine.XeonPhi]-1.13e-9) > 0.02*1.13e-9 {
		t.Errorf("Phi total %v, paper 1.13 nJ/B", totals[machine.XeonPhi])
	}
}

func TestConstantPowerAnalysisSectionVC(t *testing.T) {
	st, err := ConstantPowerAnalysis(machine.All(), 0.125, 512)
	if err != nil {
		t.Fatal(err)
	}
	if st.OverHalf != 7 {
		t.Errorf("constant power > 50%% on %d platforms, paper says 7", st.OverHalf)
	}
	if st.Correlation > -0.4 || st.Correlation < -0.8 {
		t.Errorf("correlation %v, paper reports about -0.6", st.Correlation)
	}
	// Within-platform power range "less than 2x" — with a little slack
	// for the model tails beyond the measured range.
	for id, r := range st.PowerRange {
		if r < 1 || r > 2.1 {
			t.Errorf("%s: power range %v, paper says < 2x", id, r)
		}
	}
	if _, err := ConstantPowerAnalysis(machine.All()[:1], 0.1, 10); err == nil {
		t.Error("single platform should error")
	}
}

func TestPowerBoundSectionVD(t *testing.T) {
	// The paper's "140 Watts per node" is half the Titan's 287 W peak,
	// rounded down; half-peak is exactly the DeltaPi/8 setting it quotes.
	budget := units.Power(float64(titan().PeakAvgPower()) / 2)
	res, err := PowerBound(titan(), mali(), budget, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	// "This corresponds to a power cap setting of DeltaPi/8": 140 W =
	// 123 W pi_1 + ~17 W cap, i.e. frac ~ 1/8 to 1/9.
	if res.CapFrac < 0.08 || res.CapFrac > 0.16 {
		t.Errorf("cap fraction %v, paper says ~1/8", res.CapFrac)
	}
	// "approximately 0.31x at I = 0.25".
	if math.Abs(res.BigPerfRatio-0.31) > 0.05 {
		t.Errorf("throttled Titan perf ratio %v, paper says ~0.31", res.BigPerfRatio)
	}
	// "assembling 23 Arndale GPUs will match 140 Watts".
	if res.SmallCount != 23 {
		t.Errorf("small count %d, paper says 23", res.SmallCount)
	}
	// "approximately 2.8x faster at I = 0.25" — our reconstruction gives
	// ~2.6x with Table I constants; accept the band.
	if res.SmallVsBig < 2.2 || res.SmallVsBig > 3.2 {
		t.Errorf("assembly vs throttled Titan %v, paper says ~2.8x", res.SmallVsBig)
	}
	// Better than fig. 1's 1.6x whole-power scenario.
	if res.SmallVsBig <= 1.6 {
		t.Error("power bounding should beat the fig. 1 full-power scenario")
	}
}

func TestPowerBoundErrors(t *testing.T) {
	if _, err := PowerBound(titan(), mali(), 100, 0.25); err == nil {
		t.Error("budget below pi_1 should error")
	}
	if _, err := PowerBound(titan(), mali(), 140, 0); err == nil {
		t.Error("zero intensity should error")
	}
	if _, err := PowerBound(titan(), titan(), 140, 0.25); err == nil {
		t.Error("budget below one small machine should error")
	}
	var bad model.Params
	if _, err := PowerBound(bad, mali(), 140, 0.25); err == nil {
		t.Error("invalid big machine should error")
	}
	if _, err := PowerBound(titan(), bad, 140, 0.25); err == nil {
		t.Error("invalid small machine should error")
	}
	// Budget above full power: frac clamps to 1.
	res, err := PowerBound(titan(), mali(), 400, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if res.CapFrac != 1 {
		t.Errorf("cap fraction %v, want clamped to 1", res.CapFrac)
	}
	if math.Abs(res.BigPerfRatio-1) > 1e-9 {
		t.Error("unthrottled ratio should be 1")
	}
}

func TestSweepMetric(t *testing.T) {
	grid := model.LogSpace(1, 4, 3)
	s := SweepMetric("titan", titan(), model.MetricAvgPower, grid)
	if s.Name != "titan" || len(s.Points) != 3 {
		t.Fatal("series shape")
	}
	for k, pt := range s.Points {
		if pt.I != grid[k] {
			t.Error("grid mismatch")
		}
		want := float64(titan().AvgPowerAt(pt.I))
		if pt.Value != want {
			t.Error("metric value mismatch")
		}
	}
}
