package sim

import (
	"math"
	"testing"

	"archline/internal/faults"
	"archline/internal/machine"
	"archline/internal/powermon"
)

// measureWithFaults runs the kernel under the given options, retrying
// transient disconnects without sleeping.
func measureWithFaults(t *testing.T, opts Options, k Kernel) Measurement {
	t.Helper()
	s := New(machine.MustByID(machine.GTXTitan), opts)
	for attempt := 0; attempt < 10; attempt++ {
		m, err := s.Measure(k)
		if err == nil {
			return m
		}
		if !powermon.IsTransient(err) {
			t.Fatal(err)
		}
	}
	t.Fatal("measure never recovered from transient faults")
	return Measurement{}
}

func TestMeasureWithFaultsAndSanitizeStaysClose(t *testing.T) {
	k := streamKernel(8)
	clean, err := titanSim(false).Measure(k)
	if err != nil {
		t.Fatal(err)
	}
	prof := faults.Paper()
	prof.ThrottleProb = 0 // throttle stretches time; tested separately
	opts := Options{Seed: 42, Faults: faults.New(prof, 7), Sanitize: true}
	got := measureWithFaults(t, opts, k)
	if got.Quality.Grade > powermon.GradeB {
		t.Errorf("paper-profile quality grade = %v", got.Quality.Grade)
	}
	// Sanitized power must land within 2% of the clean measurement
	// (calibration drift alone allows ±0.4%).
	cw, gw := clean.AvgPower.Watts(), got.AvgPower.Watts()
	if math.Abs(gw-cw)/cw > 0.02 {
		t.Errorf("sanitized power %v, clean %v", gw, cw)
	}
	if got.Time != clean.Time {
		t.Errorf("time changed without a throttle event: %v vs %v", got.Time, clean.Time)
	}
}

func TestMeasureThrottleStretchesRun(t *testing.T) {
	k := streamKernel(8)
	clean, err := titanSim(false).Measure(k)
	if err != nil {
		t.Fatal(err)
	}
	prof := faults.Paper()
	prof.ThrottleProb = 1 // force the event
	prof.DisconnectProb = 0
	opts := Options{Seed: 42, Faults: faults.New(prof, 7), Sanitize: true}
	got := measureWithFaults(t, opts, k)
	f, g := prof.ThrottleFactor, prof.ThrottleWorkFrac
	wantStretch := (1 - g) + g/f
	stretch := got.Time.Seconds() / clean.Time.Seconds()
	if math.Abs(stretch-wantStretch) > 0.01*wantStretch {
		t.Errorf("throttle stretched time by %.3fx, want %.3fx", stretch, wantStretch)
	}
	// Average power drops: part of the run draws only Factor of the
	// dynamic power.
	if got.AvgPower >= clean.AvgPower {
		t.Errorf("throttled power %v not below clean %v", got.AvgPower, clean.AvgPower)
	}
}

func TestMeasureFaultsDeterministic(t *testing.T) {
	k := streamKernel(8)
	mk := func() Measurement {
		opts := Options{Seed: 42, Faults: faults.New(faults.Paper(), 7), Sanitize: true}
		return measureWithFaults(t, opts, k)
	}
	a, b := mk(), mk()
	if a != b {
		t.Errorf("same fault seed produced different measurements:\n%+v\n%+v", a, b)
	}
}

func TestMeasureNilInjectorUnchanged(t *testing.T) {
	// Options without faults must behave exactly as before the fault
	// layer existed.
	k := streamKernel(8)
	want, err := titanSim(false).Measure(k)
	if err != nil {
		t.Fatal(err)
	}
	got := measureWithFaults(t, Options{Seed: 42}, k)
	if got != want {
		t.Errorf("nil injector changed measurement:\n%+v\n%+v", got, want)
	}
}
