// Package sim simulates the execution of microbenchmark kernels on the
// paper's twelve platforms.
//
// The physical machines are unavailable, so this package stands in for
// them: given a kernel specification (flops per word, precision, working
// set, access pattern) and a platform, it computes the run's "true" time
// and power draw from the platform's Table I ground-truth physics — the
// same first-principles behaviour the paper's model claims governs the
// hardware: maximal overlap of flops and memory traffic, throughput
// limits per memory level, and dynamic-power throttling under the usable
// power cap. On top of that physics it layers what made the paper's
// measurements interesting: multiplicative timing noise, platform quirks
// (the NUC GPU's OS-interference variance and cap overshoot, the Arndale
// GPU's utilisation-dependent efficiency), and a PowerMon-style sampled
// power measurement (internal/powermon).
//
// The output of a simulated run is exactly what the paper's lab setup
// produced: a (W, Q, time, energy, average power) tuple per kernel, which
// the fitting (internal/fit) and validation (internal/experiments)
// pipelines consume unchanged.
package sim

import (
	"context"
	"errors"
	"fmt"
	"math"

	"archline/internal/cache"
	"archline/internal/faults"
	"archline/internal/machine"
	"archline/internal/model"
	"archline/internal/obs"
	"archline/internal/powermon"
	"archline/internal/stats"
	"archline/internal/units"
)

// Precision selects single or double floating point.
type Precision int

// Precisions.
const (
	Single Precision = iota
	Double
)

// String names the precision.
func (p Precision) String() string {
	if p == Double {
		return "double"
	}
	return "single"
}

// Bytes is the word size of the precision.
func (p Precision) Bytes() units.Bytes {
	if p == Double {
		return 8
	}
	return 4
}

// Pattern selects the access pattern of a kernel.
type Pattern int

// Patterns.
const (
	// StreamPattern reads the working set with unit stride, the pattern
	// of the intensity and cache microbenchmarks.
	StreamPattern Pattern = iota
	// ChasePattern follows a random pointer cycle through the working
	// set, the paper's random-access microbenchmark.
	ChasePattern
	// StridedPattern reads every StrideBytes-th word. Strides at or
	// beyond the line size waste the rest of each transferred line —
	// exactly the traffic the paper avoids by "directing" the prefetcher
	// "into prefetching only the data that will be used".
	StridedPattern
)

// String names the pattern.
func (p Pattern) String() string {
	switch p {
	case ChasePattern:
		return "chase"
	case StridedPattern:
		return "strided"
	default:
		return "stream"
	}
}

// Kernel is a microbenchmark specification: the simulated analogue of
// the paper's hand-tuned assembly/CUDA/OpenCL kernels.
type Kernel struct {
	Name         string
	Precision    Precision
	Pattern      Pattern
	FlopsPerWord float64     // flops executed per word loaded (intensity knob)
	WorkingSet   units.Bytes // bytes of data touched per pass
	Passes       int         // passes over the working set
	// StrideBytes is the distance between consecutive accesses for
	// StridedPattern kernels (ignored otherwise).
	StrideBytes units.Bytes
}

// Validate checks the kernel specification.
func (k Kernel) Validate() error {
	if k.WorkingSet < k.Precision.Bytes() {
		return fmt.Errorf("sim: working set %v below one word", k.WorkingSet)
	}
	if k.Passes < 1 {
		return errors.New("sim: passes must be >= 1")
	}
	if k.FlopsPerWord < 0 || math.IsNaN(k.FlopsPerWord) || math.IsInf(k.FlopsPerWord, 0) {
		return errors.New("sim: flops per word must be finite and non-negative")
	}
	if k.Pattern == StridedPattern && k.StrideBytes < k.Precision.Bytes() {
		return errors.New("sim: strided kernels need a stride of at least one word")
	}
	return nil
}

// Intensity is the kernel's nominal operational intensity in flop:Byte,
// assuming all traffic comes from the target level.
func (k Kernel) Intensity() units.Intensity {
	return units.Intensity(k.FlopsPerWord / k.Precision.Bytes().Count())
}

// Work returns the flop count the kernel executes.
func (k Kernel) Work() units.Flops {
	words := k.WorkingSet.Count() / k.Precision.Bytes().Count()
	return units.Flops(k.FlopsPerWord * words * float64(k.Passes))
}

// RunResult is the ground-truth outcome of one simulated run, before the
// measurement layer samples it.
type RunResult struct {
	Kernel   Kernel
	Platform machine.ID
	Level    model.MemLevel // the level that served the traffic
	W        units.Flops
	Q        units.Bytes    // bytes served by Level
	Accesses units.Accesses // nonzero for chase kernels
	TrueTime units.Time
	TrueDyn  units.Power // true dynamic (above-constant) power during the run
	// Signal is the instantaneous device power over the run, for the
	// power meter to sample.
	Signal powermon.Signal
}

// Measurement is what the lab bench records for one run: the tuple the
// fitting pipeline consumes. Time comes from the host clock (noisy),
// power and energy from the PowerMon trace.
type Measurement struct {
	Platform  machine.ID
	Kernel    string
	Precision Precision
	Pattern   Pattern
	Level     model.MemLevel
	W         units.Flops
	Q         units.Bytes
	Accesses  units.Accesses // random accesses performed (chase kernels)
	Intensity units.Intensity
	Time      units.Time
	Energy    units.Energy
	AvgPower  units.Power
	// Quality reports what trace sanitization found and repaired; the
	// zero value means the trace was taken at face value.
	Quality powermon.Quality
}

// Options tune the simulator.
type Options struct {
	// Seed drives all noise streams; runs are deterministic per seed.
	Seed uint64
	// Noiseless disables measurement noise and quirk variance (quirk
	// *bias* remains: it is physics, not noise).
	Noiseless bool
	// UseCacheSim routes working-set classification through the
	// set-associative cache simulator instead of the analytic capacity
	// rule. Slower; used by the fidelity ablation.
	UseCacheSim bool
	// Faults, when non-nil, injects the measurement pathologies of its
	// profile: corrupted traces, thermal-throttle events, and transient
	// meter disconnects (surfaced as powermon.ErrDisconnect).
	Faults *faults.Injector
	// Sanitize runs powermon trace sanitization on every recording and
	// reports the result in Measurement.Quality. It is a no-op on clean
	// traces and is skipped entirely for noiseless runs (a noiseless
	// constant trace must never be "repaired").
	Sanitize bool
}

// Simulator runs kernels on one platform.
type Simulator struct {
	plat  *machine.Platform
	opts  Options
	meter *powermon.Meter
}

// New builds a simulator for the platform.
func New(p *machine.Platform, opts Options) *Simulator {
	return &Simulator{plat: p, opts: opts, meter: MeterFor(p)}
}

// MeterFor selects the paper's fig. 3 probe placement for a platform:
// PCIe devices get the interposer + PCIe-connector setup, desktop CPUs
// the CPU+motherboard setup, and boards the DC-brick setup.
func MeterFor(p *machine.Platform) *powermon.Meter {
	switch p.Class {
	case machine.ClassCoprocessor:
		return powermon.PCIeGPUMeter()
	case machine.ClassDesktop:
		return powermon.CPUSystemMeter()
	default:
		return powermon.MobileBoardMeter()
	}
}

// Platform returns the platform under simulation.
func (s *Simulator) Platform() *machine.Platform { return s.plat }

// groundParams selects the true physics parameters for the kernel: the
// platform's fitted constants with the memory side swapped to the level
// that serves the working set.
func (s *Simulator) groundParams(k Kernel) (model.Params, model.MemLevel, error) {
	var base model.Params
	switch k.Precision {
	case Single:
		base = s.plat.Single
	case Double:
		d, err := s.plat.DoubleParams()
		if err != nil {
			return model.Params{}, 0, err
		}
		base = d
	default:
		return model.Params{}, 0, fmt.Errorf("sim: unknown precision %d", k.Precision)
	}
	level := s.classifyLevel(k)
	switch level {
	case model.LevelL1:
		base.TauMem = s.plat.L1.Tau
		base.EpsMem = s.plat.L1.Eps
	case model.LevelL2:
		base.TauMem = s.plat.L2.Tau
		base.EpsMem = s.plat.L2.Eps
	}
	return base, level, nil
}

// classifyLevel decides which memory level serves the kernel's working
// set: analytically by capacity, or via the cache simulator when
// requested.
func (s *Simulator) classifyLevel(k Kernel) model.MemLevel {
	if s.opts.UseCacheSim {
		if lvl, ok := s.classifyWithCacheSim(k); ok {
			return lvl
		}
	}
	if s.plat.L1 != nil && k.WorkingSet <= s.plat.L1Size {
		return model.LevelL1
	}
	if s.plat.L2 != nil && k.WorkingSet <= s.plat.L2Size {
		return model.LevelL2
	}
	return model.LevelDRAM
}

// classifyWithCacheSim replays a bounded version of the kernel's access
// stream through a simulated L1/L2 hierarchy and picks the level that
// served the majority of steady-state traffic.
func (s *Simulator) classifyWithCacheSim(k Kernel) (model.MemLevel, bool) {
	if s.plat.L1 == nil {
		return model.LevelDRAM, false
	}
	line := int64(s.plat.CacheLine)
	cfgs := []cache.Config{{
		Name: "L1", Size: s.plat.L1Size, LineSize: units.Bytes(line), Assoc: 8, Policy: cache.LRU,
	}}
	if s.plat.L2 != nil {
		cfgs = append(cfgs, cache.Config{
			Name: "L2", Size: s.plat.L2Size, LineSize: units.Bytes(line), Assoc: 8, Policy: cache.LRU,
		})
	}
	h, err := cache.NewHierarchy(cfgs...)
	if err != nil {
		return model.LevelDRAM, false
	}
	// Bound the replay: cap the working set replay at 1M accesses by
	// touching at line granularity; the classification only needs the
	// steady-state residency, not exact counts.
	ws := int64(k.WorkingSet)
	if ws > int64(units.MiB(16)) {
		return model.LevelDRAM, true // far beyond any L2 here
	}
	var addrs []uint64
	switch k.Pattern {
	case ChasePattern:
		n := int(ws / line * 2)
		if n < 1 {
			n = 1
		}
		addrs, err = cache.ChaseAddrs(units.Bytes(ws), units.Bytes(line), n,
			stats.NewStream(s.opts.Seed, "classify-"+k.Name))
	default:
		addrs, err = cache.StreamAddrs(units.Bytes(ws), units.Bytes(line), 2)
	}
	if err != nil {
		return model.LevelDRAM, false
	}
	// Warm with the first half of the stream, then measure the second
	// half: steady-state residency is what decides the serving level.
	half := len(addrs) / 2
	if half < 1 {
		half = len(addrs)
	}
	for _, a := range addrs[:half] {
		h.Access(a)
	}
	tr := h.Run(addrs[half:], units.Bytes(line))
	if len(addrs[half:]) == 0 {
		tr = h.Run(addrs, units.Bytes(line))
	}
	best, bestCount := 0, uint64(0)
	for d, c := range tr.ServedBy {
		if c > bestCount {
			best, bestCount = d, c
		}
	}
	switch {
	case best == 0:
		return model.LevelL1, true
	case best == 1 && s.plat.L2 != nil:
		return model.LevelL2, true
	default:
		return model.LevelDRAM, true
	}
}

// Run executes the kernel's ground-truth physics and returns the true
// time and the power signal for measurement.
func (s *Simulator) Run(k Kernel) (RunResult, error) {
	if err := k.Validate(); err != nil {
		return RunResult{}, err
	}
	if k.Pattern == ChasePattern {
		return s.runChase(k)
	}
	return s.runStream(k)
}

// strideFactors returns, for a strided kernel, the fraction of touched
// words that are useful and the transferred-to-useful byte inflation:
// strides within a line still consume the whole working set exactly once
// (streaming), while strides at or beyond the line size transfer a full
// line per useful word.
func (s *Simulator) strideFactors(k Kernel) (usefulWords float64, transferred units.Bytes) {
	stride := k.StrideBytes.Count()
	line := s.plat.CacheLine.Count()
	usefulWords = math.Floor(k.WorkingSet.Count() / stride)
	if usefulWords < 1 {
		usefulWords = 1
	}
	if stride < line {
		// Every transferred line still gets fully consumed across
		// successive accesses: effectively streaming traffic.
		transferred = k.WorkingSet
	} else {
		transferred = units.Bytes(usefulWords * line)
	}
	return usefulWords, transferred
}

func (s *Simulator) runStream(k Kernel) (RunResult, error) {
	params, level, err := s.groundParams(k)
	if err != nil {
		return RunResult{}, err
	}
	w := k.Work()
	q := units.Bytes(k.WorkingSet.Count() * float64(k.Passes))
	if k.Pattern == StridedPattern {
		usefulWords, transferred := s.strideFactors(k)
		// Work only covers the touched words; traffic covers the lines
		// actually moved.
		w = units.Flops(k.FlopsPerWord * usefulWords * float64(k.Passes))
		q = units.Bytes(transferred.Count() * float64(k.Passes))
	}

	trueTime := params.Time(w, q).Seconds()
	dynEnergy := w.Count()*float64(params.EpsFlop) + q.Count()*float64(params.EpsMem)

	// Quirks change the physics before noise is added.
	trueTime, dynEnergy = s.applyQuirks(k, params, trueTime, dynEnergy)

	return s.finish(k, level, w, q, 0, trueTime, dynEnergy)
}

func (s *Simulator) runChase(k Kernel) (RunResult, error) {
	if s.plat.Rand == nil {
		return RunResult{}, fmt.Errorf("sim: %s has no random-access data", s.plat.Name)
	}
	if k.Precision == Double && !s.plat.SupportsDouble() {
		return RunResult{}, fmt.Errorf("sim: %s does not support double", s.plat.Name)
	}
	r := *s.plat.Rand
	lines := math.Floor(k.WorkingSet.Count() / r.Line.Count())
	if lines < 1 {
		return RunResult{}, errors.New("sim: working set below one cache line")
	}
	n := units.Accesses(lines * float64(k.Passes))
	t, e, err := r.TimeEnergy(n, s.plat.Single)
	if err != nil {
		return RunResult{}, err
	}
	dynEnergy := e.Joules() - s.plat.Single.Pi1.Watts()*t.Seconds()
	//archlint:ignore dimcheck r.Line is the line size in bytes per access, so the access count cancels
	q := units.Bytes(n.Count() * r.Line.Count())
	res, err := s.finish(k, model.LevelRand, 0, q, n, t.Seconds(), dynEnergy)
	return res, err
}

// applyQuirks adjusts true time and dynamic energy for the platform's
// documented second-order behaviours.
func (s *Simulator) applyQuirks(k Kernel, params model.Params, trueTime, dynEnergy float64) (float64, float64) {
	i := k.Intensity().Ratio()
	if s.plat.HasQuirk(machine.QuirkUtilizationScaling) && i > 0 {
		// Arndale GPU: active energy-efficiency scaling with utilisation.
		// Near the balance point the hardware is measurably *more*
		// efficient than the constant-cost model, so the capped model
		// overpredicts power there by up to ~12% (the paper reports
		// mispredictions "always less than 15%" at mid-range intensities).
		// The run still proceeds at the throttled speed (the constant-cost
		// cap model predicts performance well there), but draws less
		// dynamic power than the cap while doing so, so measured power at
		// mid intensities sits below the model's flat cap line, exactly
		// the fig. 5 Arndale-GPU panel shape.
		bt := params.TimeBalance().Ratio()
		x := math.Log(i / bt)
		dynEnergy *= 1 - 0.12*math.Exp(-x*x/2)
	}
	// QuirkOSInterference (NUC GPU) is pure measurement variance: it is
	// applied in finish() as a widened noise sigma, not as a physics
	// change. The platform's published 268 Gflop/s "sustained peak" above
	// what its 17.7 W fitted cap admits is consistent with that
	// variance — the paper itself flags the NUC GPU's capping behaviour
	// as inaccurate and attributes it to OS interference.
	return trueTime, dynEnergy
}

// finish layers noise, builds the power signal, and assembles the result.
func (s *Simulator) finish(k Kernel, level model.MemLevel, w units.Flops, q units.Bytes,
	acc units.Accesses, trueTime, dynEnergy float64) (RunResult, error) {
	if trueTime <= 0 || math.IsInf(trueTime, 0) || math.IsNaN(trueTime) {
		return RunResult{}, fmt.Errorf("sim: degenerate run time %v", trueTime)
	}
	rng := stats.NewStream(s.opts.Seed, string(s.plat.ID)+"/"+k.Name)
	if !s.opts.Noiseless {
		sigma := 0.008
		if s.plat.HasQuirk(machine.QuirkOSInterference) {
			sigma = 0.05 // OS interference: much larger run-to-run variance
		}
		trueTime *= rng.LogNormalFactor(sigma)
	}
	dynPower := dynEnergy / trueTime
	pi1 := s.plat.Single.Pi1.Watts()

	// The power signal: constant power plus dynamic power, with slow
	// utilisation wiggle so traces are not perfectly flat.
	wiggleSeed := rng.Float64() * 2 * math.Pi
	noiseless := s.opts.Noiseless
	sig := func(ts units.Time) units.Power {
		p := pi1 + dynPower
		if !noiseless {
			p += 0.01 * dynPower * math.Sin(wiggleSeed+2*math.Pi*ts.Seconds()*37)
		}
		return units.Power(p)
	}
	return RunResult{
		Kernel:   k,
		Platform: s.plat.ID,
		Level:    level,
		W:        w,
		Q:        q,
		Accesses: acc,
		TrueTime: units.Time(trueTime),
		TrueDyn:  units.Power(dynPower),
		Signal:   sig,
	}, nil
}

// noiseStream builds a deterministic noise stream for a measurement
// label, or nil when the simulator is noiseless.
func (s *Simulator) noiseStream(label string) *stats.Stream {
	if s.opts.Noiseless {
		return nil
	}
	return stats.NewStream(s.opts.Seed^0xabcd, string(s.plat.ID)+"/"+label)
}

// Measure runs the kernel and records it with the platform's power meter,
// returning the lab-bench measurement tuple. With a fault injector
// configured it may return a transient error (powermon.IsTransient) the
// caller can retry. Measure is MeasureContext without tracing.
func (s *Simulator) Measure(k Kernel) (Measurement, error) {
	return s.MeasureContext(context.Background(), k)
}

// MeasureContext is Measure under a span: with a tracer on ctx it opens
// a sim.measure span recording the kernel, any throttle window or meter
// error as events, and the sanitize pass as a child span carrying the
// quality flags. Without a tracer it costs nothing.
func (s *Simulator) MeasureContext(ctx context.Context, k Kernel) (Measurement, error) {
	ctx, span := obs.Start(ctx, "sim.measure",
		obs.String("platform", string(s.plat.ID)), obs.String("kernel", k.Name))
	defer span.End()
	res, err := s.Run(k)
	if err != nil {
		span.Event("run.error", obs.String("error", err.Error()))
		return Measurement{}, err
	}
	span.SetAttr(obs.String("level", res.Level.String()))
	label := string(s.plat.ID) + "/" + k.Name
	sig, dur := res.Signal, res.TrueTime
	if w, hit := s.opts.Faults.ThrottleEvent(label, dur.Seconds()); hit {
		// Thermal throttle: the run stretches to conserve work while the
		// dynamic power inside the window drops by the throttle factor.
		span.Event("fault.throttle", obs.Float("factor", w.Factor),
			obs.Float("start_s", w.Start), obs.Float("dur_s", w.Dur))
		sig = throttledSignal(sig, s.plat.Single.Pi1.Watts(), w)
		dur = units.Time(w.Total)
	}
	var rng *stats.Stream
	if !s.opts.Noiseless {
		rng = stats.NewStream(s.opts.Seed^0xabcd, string(s.plat.ID)+"/meter/"+k.Name)
	}
	trace, err := s.opts.Faults.Record(s.meter, sig, dur, rng, label)
	if err != nil {
		span.Event("meter.error", obs.String("error", err.Error()),
			obs.Bool("transient", powermon.IsTransient(err)))
		return Measurement{}, err
	}
	var qual powermon.Quality
	if s.opts.Sanitize && !s.opts.Noiseless {
		// The sanitize pass gets its own child span so its share of the
		// measurement shows up in the trace; the closure scopes the defer
		// to exactly the pass.
		func() {
			_, ssp := obs.Start(ctx, "powermon.sanitize", obs.String("kernel", k.Name))
			defer ssp.End()
			qual = trace.Sanitize()
			ssp.SetAttr(qual.SpanAttrs()...)
		}()
	}
	w, q := res.W, res.Q
	inten := units.Intensity(0)
	if q > 0 {
		inten = w.Intensity(q)
	}
	return Measurement{
		Platform:  s.plat.ID,
		Kernel:    k.Name,
		Precision: k.Precision,
		Pattern:   k.Pattern,
		Level:     res.Level,
		W:         w,
		Q:         q,
		Accesses:  res.Accesses,
		Intensity: inten,
		Time:      dur,
		Energy:    trace.Energy(),
		AvgPower:  trace.AvgPower(),
		Quality:   qual,
	}, nil
}

// throttledSignal scales the dynamic (above-idle) portion of the signal
// inside the throttle window.
func throttledSignal(sig powermon.Signal, pi1 float64, w faults.ThrottleWindow) powermon.Signal {
	return func(t units.Time) units.Power {
		p := sig(t).Watts()
		if ts := t.Seconds(); ts >= w.Start && ts < w.Start+w.Dur {
			p = pi1 + w.Factor*(p-pi1)
		}
		return units.Power(p)
	}
}

// MeasureIdle records the platform idling for the given duration: the
// no-load baseline of Table I's column 6. It is MeasureIdleContext
// without tracing.
func (s *Simulator) MeasureIdle(duration units.Time) (units.Power, error) {
	return s.MeasureIdleContext(context.Background(), duration)
}

// MeasureIdleContext is MeasureIdle under a sim.measure_idle span.
func (s *Simulator) MeasureIdleContext(ctx context.Context, duration units.Time) (units.Power, error) {
	_, span := obs.Start(ctx, "sim.measure_idle",
		obs.String("platform", string(s.plat.ID)), obs.Float("duration_s", duration.Seconds()))
	defer span.End()
	var rng *stats.Stream
	if !s.opts.Noiseless {
		rng = stats.NewStream(s.opts.Seed^0x1d1e, string(s.plat.ID)+"/idle")
	}
	trace, err := s.opts.Faults.Record(s.meter, powermon.Constant(s.plat.IdlePower), duration, rng,
		string(s.plat.ID)+"/idle")
	if err != nil {
		span.Event("meter.error", obs.String("error", err.Error()),
			obs.Bool("transient", powermon.IsTransient(err)))
		return 0, err
	}
	if s.opts.Sanitize && !s.opts.Noiseless {
		qual := trace.Sanitize()
		span.SetAttr(qual.SpanAttrs()...)
	}
	return trace.AvgPower(), nil
}
