package sim

import (
	"math"
	"testing"

	"archline/internal/machine"
	"archline/internal/model"
	"archline/internal/units"
)

func approx(t *testing.T, got, want, relTol float64, name string) {
	t.Helper()
	if math.Abs(got-want) > relTol*math.Abs(want)+1e-300 {
		t.Errorf("%s = %v, want %v", name, got, want)
	}
}

// streamKernel builds a DRAM streaming kernel at the given flops per word.
func streamKernel(fpw float64) Kernel {
	return Kernel{
		Name: "stream", Precision: Single, Pattern: StreamPattern,
		FlopsPerWord: fpw, WorkingSet: units.MiB(64), Passes: 4,
	}
}

func titanSim(noiseless bool) *Simulator {
	return New(machine.MustByID(machine.GTXTitan), Options{Seed: 42, Noiseless: noiseless})
}

func TestKernelValidate(t *testing.T) {
	if err := streamKernel(8).Validate(); err != nil {
		t.Fatalf("valid kernel rejected: %v", err)
	}
	bad := streamKernel(8)
	bad.WorkingSet = 2
	if bad.Validate() == nil {
		t.Error("sub-word working set should be rejected")
	}
	bad = streamKernel(8)
	bad.Passes = 0
	if bad.Validate() == nil {
		t.Error("zero passes should be rejected")
	}
	bad = streamKernel(math.NaN())
	if bad.Validate() == nil {
		t.Error("NaN flops per word should be rejected")
	}
	bad = streamKernel(-1)
	if bad.Validate() == nil {
		t.Error("negative flops per word should be rejected")
	}
}

func TestKernelDerived(t *testing.T) {
	k := streamKernel(8)
	approx(t, float64(k.Intensity()), 2, 1e-12, "single 8 flop/word = 2 flop:B")
	k.Precision = Double
	approx(t, float64(k.Intensity()), 1, 1e-12, "double 8 flop/word = 1 flop:B")
	k = Kernel{Precision: Single, FlopsPerWord: 4, WorkingSet: 4096, Passes: 2}
	approx(t, float64(k.Work()), 4*1024*2, 1e-12, "work accounting")
	if Single.String() != "single" || Double.String() != "double" {
		t.Error("precision names")
	}
	if StreamPattern.String() != "stream" || ChasePattern.String() != "chase" {
		t.Error("pattern names")
	}
	if Single.Bytes() != 4 || Double.Bytes() != 8 {
		t.Error("word sizes")
	}
}

func TestRunComputeBoundNoiseless(t *testing.T) {
	// Titan at very high intensity: compute-bound, time = W * tau_flop.
	s := titanSim(true)
	k := streamKernel(512) // 128 flop:Byte, far above B_tau ~ 16.8
	res, err := s.Run(k)
	if err != nil {
		t.Fatal(err)
	}
	wantT := float64(k.Work()) / 4020e9
	approx(t, float64(res.TrueTime), wantT, 1e-9, "compute-bound time")
	if res.Level != model.LevelDRAM {
		t.Errorf("64 MiB working set should be DRAM, got %v", res.Level)
	}
}

func TestRunMemoryBoundNoiseless(t *testing.T) {
	s := titanSim(true)
	k := streamKernel(0.5) // I = 0.125
	res, err := s.Run(k)
	if err != nil {
		t.Fatal(err)
	}
	wantT := float64(res.Q) / 239e9
	approx(t, float64(res.TrueTime), wantT, 1e-9, "memory-bound time")
	approx(t, float64(res.Q), float64(units.MiB(64))*4, 1e-12, "Q accounting")
}

func TestRunCapBoundNoiseless(t *testing.T) {
	// Titan at its balance point needs pi_flop + pi_mem = 186 W > 164 W.
	s := titanSim(true)
	p := machine.MustByID(machine.GTXTitan).Single
	bal := float64(p.TimeBalance())
	k := streamKernel(bal * 4) // flop/word for I = bal
	res, err := s.Run(k)
	if err != nil {
		t.Fatal(err)
	}
	dyn := float64(res.W)*float64(p.EpsFlop) + float64(res.Q)*float64(p.EpsMem)
	wantT := dyn / float64(p.DeltaPi)
	approx(t, float64(res.TrueTime), wantT, 1e-9, "cap-bound time")
	// True dynamic power equals the cap.
	approx(t, float64(res.TrueDyn), float64(p.DeltaPi), 1e-9, "dynamic power at cap")
}

func TestRunCacheLevels(t *testing.T) {
	s := New(machine.MustByID(machine.DesktopCPU), Options{Seed: 1, Noiseless: true})
	plat := s.Platform()

	k := streamKernel(4)
	k.WorkingSet = units.KiB(16) // fits 32 KiB L1
	k.Passes = 64
	res, err := s.Run(k)
	if err != nil {
		t.Fatal(err)
	}
	if res.Level != model.LevelL1 {
		t.Errorf("16 KiB should be L1-resident, got %v", res.Level)
	}
	// Memory-bound pure streaming from L1 runs at L1 bandwidth.
	k.FlopsPerWord = 0
	res, _ = s.Run(k)
	approx(t, float64(res.Q)/float64(res.TrueTime), float64(plat.Sustained.L1BW), 1e-9, "L1 bandwidth")

	k.WorkingSet = units.KiB(128) // fits 256 KiB L2, not L1
	res, _ = s.Run(k)
	if res.Level != model.LevelL2 {
		t.Errorf("128 KiB should be L2-resident, got %v", res.Level)
	}
	approx(t, float64(res.Q)/float64(res.TrueTime), float64(plat.Sustained.L2BW), 1e-9, "L2 bandwidth")

	k.WorkingSet = units.MiB(64)
	res, _ = s.Run(k)
	if res.Level != model.LevelDRAM {
		t.Errorf("64 MiB should be DRAM, got %v", res.Level)
	}
}

func TestRunCacheSimClassification(t *testing.T) {
	// The cache-simulator classifier should agree with the analytic rule
	// on clearly-sized working sets.
	for _, ws := range []units.Bytes{units.KiB(16), units.KiB(128), units.MiB(64)} {
		a := New(machine.MustByID(machine.DesktopCPU), Options{Seed: 1, Noiseless: true})
		c := New(machine.MustByID(machine.DesktopCPU), Options{Seed: 1, Noiseless: true, UseCacheSim: true})
		k := streamKernel(4)
		k.WorkingSet = ws
		ra, err := a.Run(k)
		if err != nil {
			t.Fatal(err)
		}
		rc, err := c.Run(k)
		if err != nil {
			t.Fatal(err)
		}
		if ra.Level != rc.Level {
			t.Errorf("ws %v: analytic %v vs cache-sim %v", ws, ra.Level, rc.Level)
		}
	}
}

func TestRunChase(t *testing.T) {
	s := titanSim(true)
	plat := s.Platform()
	k := Kernel{
		Name: "chase", Precision: Single, Pattern: ChasePattern,
		WorkingSet: units.MiB(256), Passes: 1,
	}
	res, err := s.Run(k)
	if err != nil {
		t.Fatal(err)
	}
	if res.Level != model.LevelRand {
		t.Errorf("level = %v, want random", res.Level)
	}
	lines := math.Floor(float64(k.WorkingSet) / float64(plat.Rand.Line))
	approx(t, float64(res.Accesses), lines, 1e-12, "access count")
	// Sustained access rate matches Table I.
	rate := float64(res.Accesses) / float64(res.TrueTime)
	approx(t, rate, float64(plat.Sustained.RandRate), 1e-9, "chase rate")

	// Sub-line working set errors.
	k.WorkingSet = 16
	if _, err := s.Run(k); err == nil {
		t.Error("sub-line chase should error")
	}
}

func TestRunDoublePrecision(t *testing.T) {
	s := titanSim(true)
	k := streamKernel(512)
	k.Precision = Double
	res, err := s.Run(k)
	if err != nil {
		t.Fatal(err)
	}
	wantT := float64(k.Work()) / 1600e9 // Titan sustained double rate
	approx(t, float64(res.TrueTime), wantT, 1e-9, "double compute-bound time")

	// Platforms without double support error.
	sm := New(machine.MustByID(machine.ArndaleGPU), Options{Seed: 1, Noiseless: true})
	if _, err := sm.Run(k); err == nil {
		t.Error("double on Mali should error")
	}
}

func TestMeasureConsistency(t *testing.T) {
	s := titanSim(true)
	k := streamKernel(8)
	m, err := s.Measure(k)
	if err != nil {
		t.Fatal(err)
	}
	if m.Platform != machine.GTXTitan || m.Kernel != "stream" {
		t.Error("measurement metadata")
	}
	approx(t, float64(m.Intensity), 2, 1e-12, "measured intensity")
	// Noiseless: E = P * T and P = pi_1 + dynamic.
	approx(t, float64(m.Energy), float64(m.AvgPower)*float64(m.Time), 1e-9, "E = P*T")
	p := machine.MustByID(machine.GTXTitan).Single
	wantP := float64(p.AvgPowerAt(2))
	approx(t, float64(m.AvgPower), wantP, 1e-6, "measured power matches eq. (7) ground truth")
}

func TestMeasureNoiseIsSmallAndDeterministic(t *testing.T) {
	a := titanSim(false)
	b := titanSim(false)
	k := streamKernel(8)
	ma, err := a.Measure(k)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := b.Measure(k)
	if err != nil {
		t.Fatal(err)
	}
	if ma.Time != mb.Time || ma.Energy != mb.Energy {
		t.Error("same seed must reproduce identical measurements")
	}
	// Noise is small: within 5% of noiseless.
	clean, _ := titanSim(true).Measure(k)
	if math.Abs(float64(ma.Time-clean.Time)) > 0.05*float64(clean.Time) {
		t.Error("time noise too large")
	}
	if math.Abs(float64(ma.AvgPower-clean.AvgPower)) > 0.05*float64(clean.AvgPower) {
		t.Error("power noise too large")
	}
	// Different seeds differ.
	c := New(machine.MustByID(machine.GTXTitan), Options{Seed: 43})
	mc, _ := c.Measure(k)
	if mc.Time == ma.Time {
		t.Error("different seeds should perturb measurements")
	}
}

func TestNUCGPUQuirkIsVariance(t *testing.T) {
	// The NUC GPU's OS-interference quirk is measurement variance, not a
	// physics change: noiseless runs follow the capped model exactly
	// (the hardware is flop-cap-bound at ~233 Gflop/s, pi_flop > DeltaPi),
	// while noisy runs scatter several times wider than on quirk-free
	// platforms.
	s := New(machine.MustByID(machine.NUCGPU), Options{Seed: 1, Noiseless: true})
	k := streamKernel(4096)
	k.WorkingSet = units.MiB(64)
	res, err := s.Run(k)
	if err != nil {
		t.Fatal(err)
	}
	p := machine.MustByID(machine.NUCGPU).Single
	rate := float64(res.W) / float64(res.TrueTime)
	modelRate := float64(p.FlopRateAt(k.Intensity()))
	approx(t, rate, modelRate, 1e-6, "noiseless NUC GPU follows the capped model")

	// Noisy runs: spread across seeds far exceeds the quirk-free 0.8%.
	var lo, hi float64 = math.Inf(1), 0
	for seed := uint64(0); seed < 20; seed++ {
		n := New(machine.MustByID(machine.NUCGPU), Options{Seed: seed})
		r, err := n.Run(k)
		if err != nil {
			t.Fatal(err)
		}
		v := float64(r.TrueTime)
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if hi/lo < 1.05 {
		t.Errorf("NUC GPU run-to-run spread %v, want OS-interference-sized (>5%%)", hi/lo)
	}
}

func TestArndaleGPUQuirkMidIntensityEfficiency(t *testing.T) {
	// At the balance point the Arndale GPU hardware is more efficient
	// than the constant-cost model: the capped model overpredicts power
	// there by up to ~15% but is accurate in the tails.
	plat := machine.MustByID(machine.ArndaleGPU)
	s := New(plat, Options{Seed: 1, Noiseless: true})
	bal := float64(plat.Single.TimeBalance())

	mid := streamKernel(bal * 4)
	mMid, err := s.Measure(mid)
	if err != nil {
		t.Fatal(err)
	}
	modelP := float64(plat.Single.AvgPowerAt(mMid.Intensity))
	errMid := (modelP - float64(mMid.AvgPower)) / float64(mMid.AvgPower)
	if errMid < 0.03 || errMid > 0.15 {
		t.Errorf("mid-intensity overprediction = %v, want within (3%%, 15%%]", errMid)
	}

	tail := streamKernel(bal * 4 * 64)
	mTail, _ := s.Measure(tail)
	modelP = float64(plat.Single.AvgPowerAt(mTail.Intensity))
	errTail := math.Abs(modelP-float64(mTail.AvgPower)) / float64(mTail.AvgPower)
	if errTail > errMid {
		t.Errorf("tail error %v should be below mid error %v", errTail, errMid)
	}
}

func TestMeasureIdle(t *testing.T) {
	s := titanSim(true)
	p, err := s.MeasureIdle(1)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, float64(p), 72.9, 1e-9, "noiseless idle power")
	n := titanSim(false)
	pn, err := n.MeasureIdle(1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(pn)-72.9) > 0.05*72.9 {
		t.Errorf("noisy idle power %v too far from 72.9", pn)
	}
}

func TestMeterFor(t *testing.T) {
	if len(MeterFor(machine.MustByID(machine.GTXTitan)).Channels) != 3 {
		t.Error("GPU should use the 3-rail PCIe setup")
	}
	if len(MeterFor(machine.MustByID(machine.DesktopCPU)).Channels) != 2 {
		t.Error("desktop should use the 2-rail CPU setup")
	}
	if len(MeterFor(machine.MustByID(machine.ArndaleCPU)).Channels) != 1 {
		t.Error("boards should use the single-rail brick setup")
	}
}

func TestRunInvalidKernel(t *testing.T) {
	s := titanSim(true)
	k := streamKernel(8)
	k.Passes = 0
	if _, err := s.Run(k); err == nil {
		t.Error("invalid kernel should error from Run")
	}
	if _, err := s.Measure(k); err == nil {
		t.Error("invalid kernel should error from Measure")
	}
}

func TestChaseOnPlatformWithoutRandData(t *testing.T) {
	s := New(machine.MustByID(machine.NUCGPU), Options{Seed: 1, Noiseless: true})
	k := Kernel{Name: "chase", Pattern: ChasePattern, WorkingSet: units.MiB(8), Passes: 1}
	if _, err := s.Run(k); err == nil {
		t.Error("NUC GPU has no random-access data; chase should error")
	}
}

func TestAllPlatformsMeasureAcrossIntensities(t *testing.T) {
	// Integration: every platform produces sane measurements over the
	// fig. 5 intensity range.
	for _, plat := range machine.All() {
		s := New(plat, Options{Seed: 7})
		for _, fpw := range []float64{0.5, 4, 32, 256} {
			k := streamKernel(fpw)
			m, err := s.Measure(k)
			if err != nil {
				t.Fatalf("%s fpw=%v: %v", plat.Name, fpw, err)
			}
			if m.Time <= 0 || m.Energy <= 0 || m.AvgPower <= 0 {
				t.Fatalf("%s fpw=%v: degenerate measurement %+v", plat.Name, fpw, m)
			}
			// Power bounded by pi_1 and peak, generously (noise + quirks).
			lo := float64(plat.Single.Pi1) * 0.8
			hi := float64(plat.Single.PeakAvgPower()) * 1.35
			if pw := float64(m.AvgPower); pw < lo || pw > hi {
				t.Errorf("%s fpw=%v: power %v outside [%v, %v]", plat.Name, fpw, pw, lo, hi)
			}
		}
	}
}

func TestStridedPattern(t *testing.T) {
	s := titanSim(true)
	line := float64(machine.MustByID(machine.GTXTitan).CacheLine)

	// Stride of exactly one line: every access transfers a line but uses
	// one word — traffic inflates by line/word = 32x over the useful
	// bytes, and the achieved useful bandwidth collapses accordingly.
	k := Kernel{
		Name: "strided", Precision: Single, Pattern: StridedPattern,
		FlopsPerWord: 0, WorkingSet: units.MiB(64), Passes: 4,
		StrideBytes: units.Bytes(line),
	}
	res, err := s.Run(k)
	if err != nil {
		t.Fatal(err)
	}
	wantQ := float64(units.MiB(64)) / line * line * 4 // all lines, all passes
	approx(t, float64(res.Q), wantQ, 1e-9, "line-stride traffic")
	usefulBytes := float64(units.MiB(64)) / line * 4 * 4 // one word per line
	usefulBW := usefulBytes / float64(res.TrueTime)
	approx(t, usefulBW, 239e9/line*4, 1e-6, "useful bandwidth collapses by line/word")

	// Sub-line stride: traffic equals plain streaming of the set.
	k.StrideBytes = 8
	res, err = s.Run(k)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, float64(res.Q), float64(units.MiB(64))*4, 1e-9, "sub-line stride streams")

	// Huge stride beyond a line: one line per useful word regardless.
	k.StrideBytes = units.KiB(4)
	res, err = s.Run(k)
	if err != nil {
		t.Fatal(err)
	}
	words := math.Floor(float64(units.MiB(64)) / float64(units.KiB(4)))
	approx(t, float64(res.Q), words*line*4, 1e-9, "page-stride traffic")

	// Work accounting follows useful words only.
	k.FlopsPerWord = 10
	res, _ = s.Run(k)
	approx(t, float64(res.W), 10*words*4, 1e-9, "strided work")

	// Validation: stride below a word is rejected.
	k.StrideBytes = 2
	if _, err := s.Run(k); err == nil {
		t.Error("sub-word stride should error")
	}
	if StridedPattern.String() != "strided" {
		t.Error("pattern name")
	}
}
