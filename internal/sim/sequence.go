package sim

import (
	"errors"

	"archline/internal/powermon"
	"archline/internal/units"
)

// SequenceResult is a back-to-back execution of several kernels: one
// continuous power signal with phase boundaries, as a real benchmark
// harness produces when it runs its suite under a single recording.
type SequenceResult struct {
	Runs []RunResult
	// Boundaries[k] is the end time of the k-th kernel.
	Boundaries []units.Time
	Total      units.Time
	Signal     powermon.Signal
}

// RunSequence executes the kernels consecutively and concatenates their
// power signals, so a single PowerMon recording spans all phases.
func (s *Simulator) RunSequence(kernels []Kernel) (*SequenceResult, error) {
	if len(kernels) == 0 {
		return nil, errors.New("sim: empty kernel sequence")
	}
	res := &SequenceResult{}
	total := 0.0
	for _, k := range kernels {
		r, err := s.Run(k)
		if err != nil {
			return nil, err
		}
		res.Runs = append(res.Runs, r)
		total += r.TrueTime.Seconds()
		res.Boundaries = append(res.Boundaries, units.Time(total))
	}
	res.Total = units.Time(total)
	runs := res.Runs
	bounds := res.Boundaries
	res.Signal = func(t units.Time) units.Power {
		// Find the active phase and delegate to its signal with
		// phase-local time.
		prev := units.Time(0)
		for i, b := range bounds {
			if t < b || i == len(bounds)-1 {
				return runs[i].Signal(t - prev)
			}
			prev = b
		}
		return runs[len(runs)-1].Signal(t - prev)
	}
	return res, nil
}

// MeasureSequence records a kernel sequence with the platform's meter
// and returns the trace alongside the ground truth.
func (s *Simulator) MeasureSequence(kernels []Kernel) (*SequenceResult, *powermon.Trace, error) {
	seq, err := s.RunSequence(kernels)
	if err != nil {
		return nil, nil, err
	}
	rng := s.noiseStream("sequence-meter")
	tr, err := s.meter.Record(seq.Signal, seq.Total, rng)
	if err != nil {
		return nil, nil, err
	}
	return seq, tr, nil
}
