package machine

import (
	"math"
	"testing"

	"archline/internal/model"
	"archline/internal/units"
)

func TestAllTwelvePlatforms(t *testing.T) {
	ps := All()
	if len(ps) != 12 {
		t.Fatalf("Table I has 12 platforms, got %d", len(ps))
	}
	seen := map[ID]bool{}
	for _, p := range ps {
		if seen[p.ID] {
			t.Errorf("duplicate platform ID %q", p.ID)
		}
		seen[p.ID] = true
		if p.Name == "" || p.Processor == "" {
			t.Errorf("%s: missing name/processor", p.ID)
		}
		if err := p.Single.Validate(); err != nil {
			t.Errorf("%s: invalid fitted params: %v", p.Name, err)
		}
	}
	// Exactly 4 asterisked platforms (fitted pi_1 below idle): NUC GPU,
	// GTX 580, GTX 680, Arndale GPU.
	stars := 0
	for _, p := range ps {
		if p.FittedPi1BelowIdle {
			stars++
			if float64(p.Single.Pi1) >= float64(p.IdlePower) {
				t.Errorf("%s: asterisk claims fitted pi_1 < idle but %v >= %v",
					p.Name, p.Single.Pi1, p.IdlePower)
			}
		}
	}
	if stars != 4 {
		t.Errorf("Table I marks 4 platforms with '*', got %d", stars)
	}
}

func TestAllReturnsFreshCopies(t *testing.T) {
	a := All()
	a[0].Name = "mutated"
	if All()[0].Name == "mutated" {
		t.Error("All must return fresh copies")
	}
}

func TestByID(t *testing.T) {
	p, err := ByID(GTXTitan)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "GTX Titan" {
		t.Errorf("got %q", p.Name)
	}
	if _, err := ByID("no-such"); err == nil {
		t.Error("unknown ID should error")
	}
	if MustByID(ArndaleGPU).Name != "Arndale GPU" {
		t.Error("MustByID")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustByID should panic on unknown ID")
		}
	}()
	MustByID("nope")
}

func TestEpsL1LeqEpsL2Invariant(t *testing.T) {
	// Section V-B: "eps_L1 <= eps_L2 for every system".
	for _, p := range All() {
		if p.L1 != nil && p.L2 != nil && p.L1.Eps > p.L2.Eps {
			t.Errorf("%s: eps_L1 (%v) > eps_L2 (%v)", p.Name, p.L1.Eps, p.L2.Eps)
		}
		if err := p.Hierarchy().Validate(); err != nil {
			t.Errorf("%s: hierarchy invalid: %v", p.Name, err)
		}
	}
}

func TestRandomAccessEnergyOrderOfMagnitude(t *testing.T) {
	// Section V-B: "we expect this cost to be at least an order of
	// magnitude higher than eps_mem, as table I reflects" — eps_rand in
	// J/access vs eps_mem in J/B.
	for _, p := range All() {
		if p.Rand == nil {
			continue
		}
		if float64(p.Rand.Eps) < 10*float64(p.Single.EpsMem) {
			t.Errorf("%s: eps_rand %v J/access not >= 10x eps_mem %v J/B",
				p.Name, float64(p.Rand.Eps), float64(p.Single.EpsMem))
		}
	}
	// And the Phi anomaly the conclusions highlight: Xeon Phi's random
	// access energy is at least an order of magnitude below every other
	// measured platform.
	phi := MustByID(XeonPhi)
	for _, p := range All() {
		if p.Rand == nil || p.ID == XeonPhi {
			continue
		}
		if float64(p.Rand.Eps) < 8*float64(phi.Rand.Eps) {
			t.Errorf("%s eps_rand %v should be ~10x Phi's %v", p.Name, p.Rand.Eps, phi.Rand.Eps)
		}
	}
}

func TestSustainedBelowVendorPeak(t *testing.T) {
	for _, p := range All() {
		f, bw := p.SustainedFraction()
		if f <= 0 || f > 1.005 { // Phi reports 100%
			t.Errorf("%s: sustained flop fraction %v out of (0,1]", p.Name, f)
		}
		if bw <= 0 || bw > 1.005 {
			t.Errorf("%s: sustained bw fraction %v out of (0,1]", p.Name, bw)
		}
	}
}

func TestConstantPowerShareSectionVC(t *testing.T) {
	// Section V-C: pi_1/(pi_1+DeltaPi) > 50% on 7 of the 12 platforms.
	over := 0
	for _, p := range All() {
		s := p.ConstantPowerShare()
		if s < 0 || s > 1 {
			t.Errorf("%s: share %v out of range", p.Name, s)
		}
		if s > 0.5 {
			over++
		}
	}
	if over != 7 {
		t.Errorf("constant power exceeds 50%% on %d platforms, paper says 7", over)
	}
}

func TestPeakEfficiencyMatchesPaper(t *testing.T) {
	// Derived peak Gflop/J should match fig. 5's panel headers within 10%
	// (the paper rounds to 2 significant digits).
	for _, p := range All() {
		got := float64(p.Single.PeakFlopsPerJoule())
		want := float64(p.Paper.PeakFlopsPerJoule)
		if math.Abs(got-want) > 0.10*want {
			t.Errorf("%s: peak efficiency %v flop/J, paper reports %v", p.Name, got, want)
		}
	}
}

func TestFig5PanelOrder(t *testing.T) {
	order := ByPeakEfficiency()
	wantFirst, wantLast := GTXTitan, DesktopCPU
	if order[0].ID != wantFirst {
		t.Errorf("most efficient should be %s, got %s", wantFirst, order[0].ID)
	}
	if order[len(order)-1].ID != wantLast && order[len(order)-1].ID != APUCPU {
		// Desktop CPU (620 Mflop/J) and APU CPU (650 Mflop/J) are within
		// rounding of each other; accept either in last place but Desktop
		// must be in the bottom two.
		t.Errorf("least efficient should be Desktop CPU or APU CPU, got %s", order[len(order)-1].ID)
	}
	// Monotone non-increasing.
	for i := 1; i < len(order); i++ {
		if order[i].Single.PeakFlopsPerJoule() > order[i-1].Single.PeakFlopsPerJoule() {
			t.Errorf("order not sorted at %d: %s > %s", i, order[i].Name, order[i-1].Name)
		}
	}
}

func TestFig4RankAndSignificance(t *testing.T) {
	ranked := ByFig4Rank()
	wantOrder := []ID{ArndaleGPU, NUCGPU, ArndaleCPU, GTX680, PandaBoard, GTXTitan,
		GTX580, XeonPhi, DesktopCPU, NUCCPU, APUGPU, APUCPU}
	for i, id := range wantOrder {
		if ranked[i].ID != id {
			t.Errorf("fig. 4 rank %d: got %s, want %s", i+1, ranked[i].ID, id)
		}
	}
	// 7 of 12 platforms significant by K-S.
	sig := 0
	for _, p := range All() {
		if p.Paper.KSSignificant {
			sig++
		}
	}
	if sig != 7 {
		t.Errorf("fig. 4 marks 7 platforms '**', got %d", sig)
	}
}

func TestDoubleParams(t *testing.T) {
	titan := MustByID(GTXTitan)
	d, err := titan.DoubleParams()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(d.PeakFlopRate())-1600e9) > 1e-3*1600e9 {
		t.Errorf("Titan double rate = %v, want 1.6 Tflop/s", d.PeakFlopRate())
	}
	if d.EpsFlop != units.PicoJoulePerFlop(93.9) {
		t.Errorf("Titan eps_d = %v", d.EpsFlop)
	}
	// Memory side shared with single.
	if d.TauMem != titan.Single.TauMem || d.EpsMem != titan.Single.EpsMem {
		t.Error("double params should share the memory side")
	}
	// GPUs without double support.
	for _, id := range []ID{NUCGPU, APUGPU, ArndaleGPU} {
		p := MustByID(id)
		if p.SupportsDouble() {
			t.Errorf("%s should not support double", p.Name)
		}
		if _, err := p.DoubleParams(); err == nil {
			t.Errorf("%s: DoubleParams should error", p.Name)
		}
	}
	// The rest do.
	for _, id := range []ID{DesktopCPU, NUCCPU, APUCPU, GTX580, GTX680, GTXTitan, XeonPhi, PandaBoard, ArndaleCPU} {
		if !MustByID(id).SupportsDouble() {
			t.Errorf("%s should support double", id)
		}
	}
}

func TestHierarchyLevels(t *testing.T) {
	titan := MustByID(GTXTitan)
	h := titan.Hierarchy()
	if _, err := h.ParamsFor(model.LevelL1); err != nil {
		t.Error("Titan should have L1 (shared memory) parameters")
	}
	if _, err := h.ParamsFor(model.LevelL2); err != nil {
		t.Error("Titan should have L2 parameters")
	}
	// NUC GPU measured no cache levels (OpenCL driver deficiency).
	nuc := MustByID(NUCGPU)
	if len(nuc.Hierarchy().Levels) != 0 {
		t.Error("NUC GPU should have no cache-level data")
	}
	// Scratchpad-only platforms have L1 but no L2 data.
	for _, id := range []ID{APUGPU, ArndaleGPU} {
		p := MustByID(id)
		if p.L1 == nil || p.L2 != nil {
			t.Errorf("%s should have L1 (scratchpad) only", p.Name)
		}
	}
}

func TestQuirks(t *testing.T) {
	if !MustByID(NUCGPU).HasQuirk(QuirkOSInterference) {
		t.Error("NUC GPU should have the OS-interference quirk")
	}
	if !MustByID(ArndaleGPU).HasQuirk(QuirkUtilizationScaling) {
		t.Error("Arndale GPU should have the utilisation-scaling quirk")
	}
	if MustByID(GTXTitan).HasQuirk(QuirkOSInterference) {
		t.Error("Titan should have no quirks")
	}
}

func TestClassString(t *testing.T) {
	names := map[Class]string{
		ClassDesktop: "desktop", ClassMini: "mini", ClassMobile: "mobile",
		ClassCoprocessor: "coprocessor", Class(42): "unknown",
	}
	for c, want := range names {
		if c.String() != want {
			t.Errorf("%d.String() = %q", c, c.String())
		}
	}
}

func TestCorrelationOfConstantShareWithEfficiency(t *testing.T) {
	// Section V-C: the pi_1 fraction correlates with peak
	// energy-efficiency at about -0.6.
	var shares, eff []float64
	for _, p := range All() {
		shares = append(shares, p.ConstantPowerShare())
		eff = append(eff, float64(p.Single.PeakFlopsPerJoule()))
	}
	r := pearson(shares, eff)
	if r > -0.4 || r < -0.8 {
		t.Errorf("correlation = %v, paper reports about -0.6", r)
	}
}

// pearson is a local correlation helper (avoiding an import cycle with
// internal/stats would not be an issue, but the test stays self-contained).
func pearson(xs, ys []float64) float64 {
	n := float64(len(xs))
	var mx, my float64
	for i := range xs {
		mx += xs[i]
		my += ys[i]
	}
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	return sxy / math.Sqrt(sxx*syy)
}
