// Package machine carries the paper's Table I: the nine benchmarked
// systems and twelve distinct platforms, with vendor-claimed peaks,
// empirically sustained peaks, and the fitted model parameters
// (pi_1, DeltaPi, eps_s, eps_d, eps_mem, eps_L1, eps_L2, eps_rand).
//
// These numbers serve two roles in this reproduction. They are the
// *reference* values the fitting pipeline should recover, and they are
// the *ground truth* physics the hardware simulator (internal/sim) uses
// to generate synthetic measurements in place of the physical machines.
package machine

import (
	"fmt"
	"sort"

	"archline/internal/model"
	"archline/internal/units"
)

// ID identifies one of the twelve platforms.
type ID string

// The twelve platform IDs, in Table I row order.
const (
	DesktopCPU ID = "desktop-cpu" // Intel Core i7-950 "Nehalem"
	NUCCPU     ID = "nuc-cpu"     // Intel Core i3-3217U "Ivy Bridge"
	NUCGPU     ID = "nuc-gpu"     // Intel HD 4000
	APUCPU     ID = "apu-cpu"     // AMD E2-1800 "Bobcat"
	APUGPU     ID = "apu-gpu"     // AMD HD 7340 "Zacate"
	GTX580     ID = "gtx-580"     // NVIDIA GF100 "Fermi"
	GTX680     ID = "gtx-680"     // NVIDIA GK104 "Kepler"
	GTXTitan   ID = "gtx-titan"   // NVIDIA GK110 "Kepler"
	XeonPhi    ID = "xeon-phi"    // Intel 5110P "KNC"
	PandaBoard ID = "pandaboard"  // TI OMAP4460 "Cortex-A9"
	ArndaleCPU ID = "arndale-cpu" // Samsung Exynos 5 "Cortex-A15"
	ArndaleGPU ID = "arndale-gpu" // ARM Mali T-604
)

// Class is the paper's coarse platform category (server-, mini-, and
// mobile-class building blocks, plus discrete coprocessors measured
// card-only).
type Class int

// Platform classes.
const (
	ClassDesktop     Class = iota // desktop/server CPU
	ClassMini                     // mini-PC (NUC, APU boards)
	ClassMobile                   // mobile/embedded dev boards
	ClassCoprocessor              // discrete PCIe coprocessors (GPUs, Phi)
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassDesktop:
		return "desktop"
	case ClassMini:
		return "mini"
	case ClassMobile:
		return "mobile"
	case ClassCoprocessor:
		return "coprocessor"
	default:
		return "unknown"
	}
}

// Sustained holds the microbenchmark-measured "sustainable peak" values
// that Table I reports parenthetically next to each fitted parameter.
type Sustained struct {
	SingleRate units.FlopRate   // sustained single-precision flop/s
	DoubleRate units.FlopRate   // sustained double-precision flop/s (0 if unsupported)
	MemBW      units.ByteRate   // sustained streaming DRAM bandwidth
	L1BW       units.ByteRate   // sustained L1 (or scratchpad) bandwidth (0 if not measured)
	L2BW       units.ByteRate   // sustained L2 bandwidth (0 if not measured)
	RandRate   units.AccessRate // sustained random accesses/s (0 if not measured)
}

// VendorPeak holds the manufacturer-claimed peaks (Table I columns 3-5).
type VendorPeak struct {
	Single units.FlopRate // single-precision peak flop/s
	Double units.FlopRate // double-precision peak flop/s (0 if unsupported)
	MemBW  units.ByteRate // peak memory bandwidth
}

// PaperReported records the numbers the paper's fig. 5 panel headers
// print for this platform, used to validate our derived values against
// the publication.
type PaperReported struct {
	PeakFlopsPerJoule units.FlopsPerJoule // e.g. Titan: 16 Gflop/J
	PeakBytesPerJoule units.BytesPerJoule // e.g. Titan: 1.3 GB/J
	KSSignificant     bool                // "**" marker in fig. 4
	Fig4Rank          int                 // left-to-right position in fig. 4 (1 = worst uncapped error)
}

// Quirk flags the platform-specific second-order behaviours section V-C
// discusses; the simulator reproduces them.
type Quirk int

// Quirks observed in the paper.
const (
	// QuirkOSInterference: the NUC GPU's measurements vary due to OS
	// interference (Windows-only OpenCL driver without user-level power
	// management).
	QuirkOSInterference Quirk = iota
	// QuirkUtilizationScaling: the Arndale GPU shows active
	// energy-efficiency scaling with processor/memory utilisation, which
	// the constant-cost capped model mispredicts by up to 15% at
	// mid-range intensities.
	QuirkUtilizationScaling
)

// Platform is one Table I row.
type Platform struct {
	ID        ID
	Name      string // the paper's display name, e.g. "GTX Titan"
	Processor string // e.g. "NVIDIA GK110"
	Microarch string // e.g. "Kepler"
	ProcessNM int    // process technology in nm (0 when the paper omits it)
	Class     Class
	IsGPU     bool

	Vendor VendorPeak

	// IdlePower is the observed power under no load; Table I notes four
	// platforms (asterisked) whose fitted pi_1 is below it.
	IdlePower units.Power
	// FittedPi1BelowIdle is Table I's asterisk.
	FittedPi1BelowIdle bool

	// Single holds the fitted single-precision model parameters: tau from
	// the sustained throughputs, eps_s/eps_mem, pi_1, DeltaPi.
	Single model.Params
	// DoubleEps is the fitted double-precision flop energy (0 if double
	// precision is unsupported on this platform).
	DoubleEps units.EnergyPerFlop

	Sustained Sustained

	// L1 and L2 are the per-level inclusive memory costs (nil when Table I
	// has no entry). On Kepler GPUs "L1" is shared memory; on the APU GPU
	// and Mali it is the software-managed scratchpad.
	L1 *model.LevelParams
	L2 *model.LevelParams

	// Rand is the pointer-chasing access mode (nil when not measured).
	Rand *model.RandomAccessParams

	// CacheLine is the line size used by the cache simulator and the
	// random-access energy accounting.
	CacheLine units.Bytes
	// L1Size and L2Size are nominal capacities for working-set sizing of
	// the cache microbenchmarks (vendor datasheet values; the paper sizes
	// its working sets the same way without tabulating them).
	L1Size units.Bytes
	L2Size units.Bytes

	Paper PaperReported

	Quirks []Quirk
}

// HasQuirk reports whether the platform exhibits the given quirk.
func (p *Platform) HasQuirk(q Quirk) bool {
	for _, x := range p.Quirks {
		if x == q {
			return true
		}
	}
	return false
}

// SupportsDouble reports whether double-precision parameters exist.
func (p *Platform) SupportsDouble() bool { return p.DoubleEps > 0 }

// DoubleParams returns the fitted model parameters with the flop side
// replaced by the double-precision costs. The memory side and powers are
// shared with single precision, as in the paper's fitting.
func (p *Platform) DoubleParams() (model.Params, error) {
	if !p.SupportsDouble() {
		return model.Params{}, fmt.Errorf("machine: %s does not support double precision", p.Name)
	}
	d := p.Single
	d.TauFlop = p.Sustained.DoubleRate.Inverse()
	d.EpsFlop = p.DoubleEps
	return d, nil
}

// Hierarchy assembles the extended model with per-level memory costs.
func (p *Platform) Hierarchy() model.Hierarchy {
	h := model.Hierarchy{Params: p.Single, Levels: map[model.MemLevel]model.LevelParams{}}
	if p.L1 != nil {
		h.Levels[model.LevelL1] = *p.L1
	}
	if p.L2 != nil {
		h.Levels[model.LevelL2] = *p.L2
	}
	return h
}

// ConstantPowerShare is pi_1/(pi_1 + DeltaPi), the fraction of maximum
// power the platform spends regardless of load. Section V-C reports this
// exceeds 50% on 7 of the 12 platforms.
func (p *Platform) ConstantPowerShare() float64 {
	total := p.Single.Pi1.Watts() + p.Single.DeltaPi.Watts()
	if total <= 0 {
		return 0
	}
	return p.Single.Pi1.Watts() / total
}

// SustainedFraction returns sustained/vendor ratios (the bracketed
// percentages in fig. 5's panel headers) for flops and bandwidth.
func (p *Platform) SustainedFraction() (flops, bw float64) {
	if p.Vendor.Single > 0 {
		flops = float64(p.Sustained.SingleRate) / float64(p.Vendor.Single)
	}
	if p.Vendor.MemBW > 0 {
		bw = float64(p.Sustained.MemBW) / float64(p.Vendor.MemBW)
	}
	return
}

// ByID returns the platform with the given ID.
func ByID(id ID) (*Platform, error) {
	for _, p := range All() {
		if p.ID == id {
			return p, nil
		}
	}
	return nil, fmt.Errorf("machine: unknown platform %q", id)
}

// MustByID is ByID for static IDs; it panics on unknown IDs.
func MustByID(id ID) *Platform {
	p, err := ByID(id)
	if err != nil {
		panic(err)
	}
	return p
}

// All returns the twelve platforms in Table I row order. The slice and
// the platforms are freshly allocated on each call, so callers may mutate
// them (e.g. to build hypothetical variants).
func All() []*Platform { return tableI() }

// ByPeakEfficiency returns the platforms sorted in decreasing order of
// peak single-precision energy efficiency — the panel order of fig. 5
// (GTX Titan first at 16 Gflop/J, Desktop CPU last at 620 Mflop/J).
func ByPeakEfficiency() []*Platform {
	ps := All()
	sort.SliceStable(ps, func(i, j int) bool {
		return ps[i].Single.PeakFlopsPerJoule() > ps[j].Single.PeakFlopsPerJoule()
	})
	return ps
}

// ByFig4Rank returns the platforms in fig. 4's left-to-right order
// (descending median uncapped-model error).
func ByFig4Rank() []*Platform {
	ps := All()
	sort.SliceStable(ps, func(i, j int) bool {
		return ps[i].Paper.Fig4Rank < ps[j].Paper.Fig4Rank
	})
	return ps
}
