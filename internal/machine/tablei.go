package machine

import (
	"archline/internal/model"
	"archline/internal/units"
)

// level builds a per-level cost entry from Table I's units: pJ/B and GB/s.
func level(epsPJ, bwGBs float64) *model.LevelParams {
	return &model.LevelParams{
		Tau: units.GBPerSec(bwGBs).Inverse(),
		Eps: units.PicoJoulePerByte(epsPJ),
	}
}

// random builds a pointer-chase entry from Table I's units: nJ/access and
// Macc/s, with the platform's cache-line size.
func random(epsNJ, maccs, line float64) *model.RandomAccessParams {
	return &model.RandomAccessParams{
		Rate: units.MAccPerSec(maccs),
		Eps:  units.NanoJoulePerAccess(epsNJ),
		Line: units.Bytes(line),
	}
}

// fitted assembles the single-precision model parameters from Table I's
// units: sustained Gflop/s and GB/s for the taus, pJ/flop and pJ/B for
// the epsilons, watts for pi_1 and DeltaPi.
func fitted(gflops, gbs, epsS, epsMem, pi1, deltaPi float64) model.Params {
	return model.Params{
		TauFlop: units.GFlopPerSec(gflops).Inverse(),
		TauMem:  units.GBPerSec(gbs).Inverse(),
		EpsFlop: units.PicoJoulePerFlop(epsS),
		EpsMem:  units.PicoJoulePerByte(epsMem),
		Pi1:     units.Power(pi1),
		DeltaPi: units.Power(deltaPi),
	}
}

// tableI builds the twelve Table I rows. Every number below is
// transcribed from the paper: columns 3-5 are vendor peaks, column 6 is
// fitted pi_1 with observed idle power, column 7 is DeltaPi, columns 8-13
// are fitted energies with sustained throughputs in parentheses.
// Fig4Rank and KSSignificant come from fig. 4; the paper-reported peak
// efficiencies come from fig. 5's panel headers. L1/L2 capacities and
// line sizes are vendor datasheet values (the paper sizes working sets
// the same way without tabulating them).
func tableI() []*Platform {
	return []*Platform{
		{
			ID: DesktopCPU, Name: "Desktop CPU", Processor: "Intel Core i7-950",
			Microarch: "Nehalem", ProcessNM: 45, Class: ClassDesktop,
			Vendor: VendorPeak{
				Single: units.GFlopPerSec(107), Double: units.GFlopPerSec(53.3),
				MemBW: units.GBPerSec(25.6),
			},
			IdlePower: 79.9,
			Single:    fitted(99.4, 19.1, 371, 795, 122, 44.2),
			DoubleEps: units.PicoJoulePerFlop(670),
			Sustained: Sustained{
				SingleRate: units.GFlopPerSec(99.4), DoubleRate: units.GFlopPerSec(49.7),
				MemBW: units.GBPerSec(19.1), L1BW: units.GBPerSec(201),
				L2BW: units.GBPerSec(120), RandRate: units.MAccPerSec(149),
			},
			L1: level(135, 201), L2: level(168, 120),
			Rand:      random(108, 149, 64),
			CacheLine: 64, L1Size: units.KiB(32), L2Size: units.KiB(256),
			Paper: PaperReported{
				PeakFlopsPerJoule: 620e6, PeakBytesPerJoule: 140e6,
				KSSignificant: false, Fig4Rank: 9,
			},
		},
		{
			ID: NUCCPU, Name: "NUC CPU", Processor: "Intel Core i3-3217U",
			Microarch: "Ivy Bridge", ProcessNM: 22, Class: ClassMini,
			Vendor: VendorPeak{
				Single: units.GFlopPerSec(57.6), Double: units.GFlopPerSec(28.8),
				MemBW: units.GBPerSec(25.6),
			},
			IdlePower: 13.2,
			Single:    fitted(55.6, 17.9, 14.7, 418, 16.5, 7.37),
			DoubleEps: units.PicoJoulePerFlop(24.3),
			Sustained: Sustained{
				SingleRate: units.GFlopPerSec(55.6), DoubleRate: units.GFlopPerSec(27.9),
				MemBW: units.GBPerSec(17.9), L1BW: units.GBPerSec(201),
				L2BW: units.GBPerSec(103), RandRate: units.MAccPerSec(55.3),
			},
			L1: level(8.75, 201), L2: level(14.3, 103),
			Rand:      random(54.6, 55.3, 64),
			CacheLine: 64, L1Size: units.KiB(32), L2Size: units.KiB(256),
			Paper: PaperReported{
				PeakFlopsPerJoule: 3.2e9, PeakBytesPerJoule: 750e6,
				KSSignificant: false, Fig4Rank: 10,
			},
		},
		{
			ID: NUCGPU, Name: "NUC GPU", Processor: "Intel HD 4000",
			Microarch: "Ivy Bridge", ProcessNM: 22, Class: ClassMini, IsGPU: true,
			Vendor: VendorPeak{
				Single: units.GFlopPerSec(269), MemBW: units.GBPerSec(25.6),
			},
			IdlePower: 13.2, FittedPi1BelowIdle: true,
			Single: fitted(268, 15.4, 76.1, 837, 10.1, 17.7),
			Sustained: Sustained{
				SingleRate: units.GFlopPerSec(268),
				MemBW:      units.GBPerSec(15.4),
			},
			CacheLine: 64, L1Size: units.KiB(32), L2Size: units.KiB(256),
			Paper: PaperReported{
				PeakFlopsPerJoule: 8.8e9, PeakBytesPerJoule: 670e6,
				KSSignificant: true, Fig4Rank: 2,
			},
			Quirks: []Quirk{QuirkOSInterference},
		},
		{
			ID: APUCPU, Name: "APU CPU", Processor: "AMD E2-1800",
			Microarch: "Bobcat", ProcessNM: 40, Class: ClassMini,
			Vendor: VendorPeak{
				Single: units.GFlopPerSec(13.6), Double: units.GFlopPerSec(5.10),
				MemBW: units.GBPerSec(10.7),
			},
			IdlePower: 11.8,
			Single:    fitted(13.4, 3.32, 33.5, 435, 20.1, 1.39),
			DoubleEps: units.PicoJoulePerFlop(119),
			Sustained: Sustained{
				SingleRate: units.GFlopPerSec(13.4), DoubleRate: units.GFlopPerSec(5.05),
				MemBW: units.GBPerSec(3.32), L1BW: units.GBPerSec(25.8),
				L2BW: units.GBPerSec(11.6), RandRate: units.MAccPerSec(8.03),
			},
			L1: level(84.0, 25.8), L2: level(138, 11.6),
			Rand:      random(75.6, 8.03, 64),
			CacheLine: 64, L1Size: units.KiB(32), L2Size: units.KiB(512),
			Paper: PaperReported{
				PeakFlopsPerJoule: 650e6, PeakBytesPerJoule: 150e6,
				KSSignificant: false, Fig4Rank: 12,
			},
		},
		{
			ID: APUGPU, Name: "APU GPU", Processor: "AMD HD 7340",
			Microarch: "Zacate", ProcessNM: 40, Class: ClassMini, IsGPU: true,
			Vendor: VendorPeak{
				Single: units.GFlopPerSec(109), MemBW: units.GBPerSec(10.7),
			},
			IdlePower: 11.8,
			Single:    fitted(104, 8.70, 5.82, 333, 15.6, 3.23),
			Sustained: Sustained{
				SingleRate: units.GFlopPerSec(104),
				MemBW:      units.GBPerSec(8.70),
				L1BW:       units.GBPerSec(46.0),
				RandRate:   units.MAccPerSec(115),
			},
			L1:        level(6.47, 46.0), // software-managed scratchpad
			Rand:      random(45.8, 115, 64),
			CacheLine: 64, L1Size: units.KiB(32), L2Size: units.KiB(512),
			Paper: PaperReported{
				PeakFlopsPerJoule: 6.4e9, PeakBytesPerJoule: 470e6,
				KSSignificant: true, Fig4Rank: 11,
			},
		},
		{
			ID: GTX580, Name: "GTX 580", Processor: "NVIDIA GF100",
			Microarch: "Fermi", ProcessNM: 40, Class: ClassCoprocessor, IsGPU: true,
			Vendor: VendorPeak{
				Single: units.GFlopPerSec(1580), Double: units.GFlopPerSec(198),
				MemBW: units.GBPerSec(192),
			},
			IdlePower: 148, FittedPi1BelowIdle: true,
			Single:    fitted(1400, 171, 99.7, 513, 122, 146),
			DoubleEps: units.PicoJoulePerFlop(213),
			Sustained: Sustained{
				SingleRate: units.GFlopPerSec(1400), DoubleRate: units.GFlopPerSec(196),
				MemBW: units.GBPerSec(171), L1BW: units.GBPerSec(761),
				L2BW: units.GBPerSec(284), RandRate: units.MAccPerSec(977),
			},
			L1: level(149, 761), L2: level(257, 284),
			Rand:      random(112, 977, 128),
			CacheLine: 128, L1Size: units.KiB(48), L2Size: units.KiB(768),
			Paper: PaperReported{
				PeakFlopsPerJoule: 5.3e9, PeakBytesPerJoule: 810e6,
				KSSignificant: false, Fig4Rank: 7,
			},
		},
		{
			ID: GTX680, Name: "GTX 680", Processor: "NVIDIA GK104",
			Microarch: "Kepler", ProcessNM: 28, Class: ClassCoprocessor, IsGPU: true,
			Vendor: VendorPeak{
				Single: units.GFlopPerSec(3530), Double: units.GFlopPerSec(147),
				MemBW: units.GBPerSec(192),
			},
			IdlePower: 100, FittedPi1BelowIdle: true,
			Single:    fitted(3030, 158, 43.2, 437, 66.4, 145),
			DoubleEps: units.PicoJoulePerFlop(263),
			Sustained: Sustained{
				SingleRate: units.GFlopPerSec(3030), DoubleRate: units.GFlopPerSec(147),
				MemBW: units.GBPerSec(158), L1BW: units.GBPerSec(1150),
				L2BW: units.GBPerSec(297), RandRate: units.MAccPerSec(1420),
			},
			L1:        level(51, 1150), // shared memory: Kepler L1 does not cache loads
			L2:        level(195, 297),
			Rand:      random(184, 1420, 128),
			CacheLine: 128, L1Size: units.KiB(48), L2Size: units.KiB(512),
			Paper: PaperReported{
				PeakFlopsPerJoule: 15e9, PeakBytesPerJoule: 1.2e9,
				KSSignificant: true, Fig4Rank: 4,
			},
		},
		{
			ID: GTXTitan, Name: "GTX Titan", Processor: "NVIDIA GK110",
			Microarch: "Kepler", ProcessNM: 28, Class: ClassCoprocessor, IsGPU: true,
			Vendor: VendorPeak{
				Single: units.GFlopPerSec(4990), Double: units.GFlopPerSec(1660),
				MemBW: units.GBPerSec(288),
			},
			IdlePower: 72.9,
			Single:    fitted(4020, 239, 30.4, 267, 123, 164),
			DoubleEps: units.PicoJoulePerFlop(93.9),
			Sustained: Sustained{
				SingleRate: units.GFlopPerSec(4020), DoubleRate: units.GFlopPerSec(1600),
				MemBW: units.GBPerSec(239), L1BW: units.GBPerSec(1610),
				L2BW: units.GBPerSec(297), RandRate: units.MAccPerSec(968),
			},
			L1:        level(24.4, 1610), // shared memory
			L2:        level(195, 297),
			Rand:      random(48.0, 968, 128),
			CacheLine: 128, L1Size: units.KiB(48), L2Size: units.MiB(1.5),
			Paper: PaperReported{
				PeakFlopsPerJoule: 16e9, PeakBytesPerJoule: 1.3e9,
				KSSignificant: false, Fig4Rank: 6,
			},
		},
		{
			ID: XeonPhi, Name: "Xeon Phi", Processor: "Intel 5110P",
			Microarch: "KNC", ProcessNM: 22, Class: ClassCoprocessor,
			Vendor: VendorPeak{
				Single: units.GFlopPerSec(2020), Double: units.GFlopPerSec(1010),
				MemBW: units.GBPerSec(320),
			},
			IdlePower: 90,
			Single:    fitted(2020, 181, 6.05, 136, 180, 36.1),
			DoubleEps: units.PicoJoulePerFlop(12.4),
			Sustained: Sustained{
				SingleRate: units.GFlopPerSec(2020), DoubleRate: units.GFlopPerSec(1010),
				MemBW: units.GBPerSec(181), L1BW: units.GBPerSec(2890),
				L2BW: units.GBPerSec(591), RandRate: units.MAccPerSec(706),
			},
			L1: level(2.19, 2890), L2: level(8.65, 591),
			Rand:      random(5.11, 706, 64),
			CacheLine: 64, L1Size: units.KiB(32), L2Size: units.KiB(512),
			Paper: PaperReported{
				PeakFlopsPerJoule: 11e9, PeakBytesPerJoule: 880e6,
				KSSignificant: true, Fig4Rank: 8,
			},
		},
		{
			ID: PandaBoard, Name: "PandaBoard ES", Processor: "TI OMAP4460",
			Microarch: "Cortex-A9", ProcessNM: 45, Class: ClassMobile,
			Vendor: VendorPeak{
				Single: units.GFlopPerSec(9.60), Double: units.GFlopPerSec(3.60),
				MemBW: units.GBPerSec(3.20),
			},
			IdlePower: 2.74,
			Single:    fitted(9.47, 1.28, 37.2, 810, 3.48, 1.19),
			DoubleEps: units.PicoJoulePerFlop(302),
			Sustained: Sustained{
				SingleRate: units.GFlopPerSec(9.47), DoubleRate: units.GFlopPerSec(3.02),
				MemBW: units.GBPerSec(1.28), L1BW: units.GBPerSec(18.4),
				L2BW: units.GBPerSec(4.12), RandRate: units.MAccPerSec(12.1),
			},
			L1: level(79.5, 18.4), L2: level(134, 4.12),
			Rand:      random(60.9, 12.1, 32),
			CacheLine: 32, L1Size: units.KiB(32), L2Size: units.MiB(1),
			Paper: PaperReported{
				PeakFlopsPerJoule: 2.5e9, PeakBytesPerJoule: 280e6,
				KSSignificant: true, Fig4Rank: 5,
			},
		},
		{
			ID: ArndaleCPU, Name: "Arndale CPU", Processor: "Samsung Exynos 5",
			Microarch: "Cortex-A15", ProcessNM: 32, Class: ClassMobile,
			Vendor: VendorPeak{
				Single: units.GFlopPerSec(27.2), Double: units.GFlopPerSec(6.80),
				MemBW: units.GBPerSec(12.8),
			},
			IdlePower: 1.72,
			Single:    fitted(15.8, 3.94, 107, 386, 5.50, 2.01),
			DoubleEps: units.PicoJoulePerFlop(275),
			Sustained: Sustained{
				SingleRate: units.GFlopPerSec(15.8), DoubleRate: units.GFlopPerSec(3.97),
				MemBW: units.GBPerSec(3.94), L1BW: units.GBPerSec(50.8),
				L2BW: units.GBPerSec(15.2), RandRate: units.MAccPerSec(14.8),
			},
			L1: level(76.3, 50.8), L2: level(248, 15.2),
			Rand:      random(138, 14.8, 64),
			CacheLine: 64, L1Size: units.KiB(32), L2Size: units.MiB(1),
			Paper: PaperReported{
				PeakFlopsPerJoule: 2.2e9, PeakBytesPerJoule: 560e6,
				KSSignificant: true, Fig4Rank: 3,
			},
		},
		{
			ID: ArndaleGPU, Name: "Arndale GPU", Processor: "Samsung Exynos 5",
			Microarch: "Mali T-604", ProcessNM: 32, Class: ClassMobile, IsGPU: true,
			Vendor: VendorPeak{
				Single: units.GFlopPerSec(72.0), MemBW: units.GBPerSec(12.8),
			},
			IdlePower: 1.72, FittedPi1BelowIdle: true,
			Single: fitted(33.0, 8.39, 84.2, 518, 1.28, 4.83),
			Sustained: Sustained{
				SingleRate: units.GFlopPerSec(33.0),
				MemBW:      units.GBPerSec(8.39),
				L1BW:       units.GBPerSec(33.4),
				RandRate:   units.MAccPerSec(33.6),
			},
			L1:        level(71.4, 33.4), // software-managed scratchpad
			Rand:      random(125, 33.6, 64),
			CacheLine: 64, L1Size: units.KiB(16), L2Size: units.KiB(128),
			Paper: PaperReported{
				PeakFlopsPerJoule: 8.1e9, PeakBytesPerJoule: 1.5e9,
				KSSignificant: true, Fig4Rank: 1,
			},
			Quirks: []Quirk{QuirkUtilizationScaling},
		},
	}
}
