package machine

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"

	"archline/internal/model"
	"archline/internal/units"
)

// platformJSON is the on-disk platform description, in Table I's own
// units (Gflop/s, GB/s, pJ/flop, pJ/B, nJ/access, W) so a user can
// transcribe a datasheet or their own measurements directly.
type platformJSON struct {
	ID        string `json:"id"`
	Name      string `json:"name"`
	Processor string `json:"processor"`
	Microarch string `json:"microarch,omitempty"`
	ProcessNM int    `json:"process_nm,omitempty"`
	Class     string `json:"class"`
	IsGPU     bool   `json:"is_gpu,omitempty"`

	VendorSingleGflops float64 `json:"vendor_single_gflops"`
	VendorDoubleGflops float64 `json:"vendor_double_gflops,omitempty"`
	VendorMemGBs       float64 `json:"vendor_mem_gbs"`

	IdleW float64 `json:"idle_w"`

	SustainedSingleGflops float64 `json:"sustained_single_gflops"`
	SustainedDoubleGflops float64 `json:"sustained_double_gflops,omitempty"`
	SustainedMemGBs       float64 `json:"sustained_mem_gbs"`

	EpsSPJ    float64 `json:"eps_s_pj_per_flop"`
	EpsDPJ    float64 `json:"eps_d_pj_per_flop,omitempty"`
	EpsMemPJ  float64 `json:"eps_mem_pj_per_byte"`
	Pi1W      float64 `json:"pi1_w"`
	DeltaPiW  float64 `json:"delta_pi_w"`
	CacheLine int     `json:"cache_line_bytes"`

	L1 *levelJSON `json:"l1,omitempty"`
	L2 *levelJSON `json:"l2,omitempty"`

	RandEpsNJ   float64 `json:"eps_rand_nj_per_access,omitempty"`
	RandMaccs   float64 `json:"rand_macc_per_s,omitempty"`
	L1SizeBytes int64   `json:"l1_size_bytes,omitempty"`
	L2SizeBytes int64   `json:"l2_size_bytes,omitempty"`
}

type levelJSON struct {
	EpsPJ float64 `json:"eps_pj_per_byte"`
	BWGBs float64 `json:"bw_gbs"`
}

// classNames maps the JSON class field.
var classNames = map[string]Class{
	"desktop":     ClassDesktop,
	"mini":        ClassMini,
	"mobile":      ClassMobile,
	"coprocessor": ClassCoprocessor,
}

// classIDs is the inverse of classNames; kept as an explicit literal so
// encoding never depends on map iteration order.
var classIDs = map[Class]string{
	ClassDesktop:     "desktop",
	ClassMini:        "mini",
	ClassMobile:      "mobile",
	ClassCoprocessor: "coprocessor",
}

// MaxIDLength bounds platform IDs: they become URL path segments and
// registry index keys, so they stay short and filesystem-safe.
const MaxIDLength = 64

// ValidID reports whether id is acceptable as a platform identifier:
// 1-64 characters, lowercase alphanumerics plus '.', '_', '-', starting
// with a letter or digit. The restriction keeps IDs safe as URL path
// segments, cache-key fragments, and on-disk registry names.
func ValidID(id string) bool {
	if id == "" || len(id) > MaxIDLength {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '-':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// validate is the strict platform-description check shared by every
// ingestion path (-platform-file, uploads, the registry's recovery
// scan). Beyond the structural checks FromJSON always made, it rejects
// non-finite and negative quantities field by field and constrains the
// ID to the registry-safe character set, so a malformed or hostile
// description fails loudly instead of producing NaN physics.
func (pj *platformJSON) validate() error {
	if pj.ID == "" || pj.Name == "" {
		return errors.New("machine: platform needs id and name")
	}
	if !ValidID(pj.ID) {
		return fmt.Errorf("machine: invalid platform id %q (want 1-%d chars of [a-z0-9._-], starting alphanumeric)",
			pj.ID, MaxIDLength)
	}
	if _, ok := classNames[pj.Class]; !ok {
		return fmt.Errorf("machine: unknown class %q (want desktop|mini|mobile|coprocessor)", pj.Class)
	}
	if pj.CacheLine <= 0 {
		return errors.New("machine: cache_line_bytes must be positive")
	}
	// Every numeric quantity is physically non-negative; the must-have
	// rates are strictly positive (model.Params.Validate re-checks the
	// derived parameters, but catching the raw field gives the uploader
	// an error naming their own JSON key).
	type fieldCheck struct {
		name     string
		v        float64
		positive bool
	}
	checks := []fieldCheck{
		{"vendor_single_gflops", pj.VendorSingleGflops, false},
		{"vendor_double_gflops", pj.VendorDoubleGflops, false},
		{"vendor_mem_gbs", pj.VendorMemGBs, false},
		{"idle_w", pj.IdleW, false},
		{"sustained_single_gflops", pj.SustainedSingleGflops, true},
		{"sustained_double_gflops", pj.SustainedDoubleGflops, false},
		{"sustained_mem_gbs", pj.SustainedMemGBs, true},
		{"eps_s_pj_per_flop", pj.EpsSPJ, false},
		{"eps_d_pj_per_flop", pj.EpsDPJ, false},
		{"eps_mem_pj_per_byte", pj.EpsMemPJ, false},
		{"pi1_w", pj.Pi1W, false},
		{"delta_pi_w", pj.DeltaPiW, false},
		{"eps_rand_nj_per_access", pj.RandEpsNJ, false},
		{"rand_macc_per_s", pj.RandMaccs, false},
		{"process_nm", float64(pj.ProcessNM), false},
		{"l1_size_bytes", float64(pj.L1SizeBytes), false},
		{"l2_size_bytes", float64(pj.L2SizeBytes), false},
	}
	if pj.L1 != nil {
		checks = append(checks,
			fieldCheck{"l1.eps_pj_per_byte", pj.L1.EpsPJ, false},
			fieldCheck{"l1.bw_gbs", pj.L1.BWGBs, true})
	}
	if pj.L2 != nil {
		checks = append(checks,
			fieldCheck{"l2.eps_pj_per_byte", pj.L2.EpsPJ, false},
			fieldCheck{"l2.bw_gbs", pj.L2.BWGBs, true})
	}
	for _, c := range checks {
		if math.IsNaN(c.v) || math.IsInf(c.v, 0) {
			return fmt.Errorf("machine: %s is not finite (%v)", c.name, c.v)
		}
		if c.v < 0 {
			return fmt.Errorf("machine: %s must be >= 0, got %v", c.name, c.v)
		}
		if c.positive && c.v == 0 {
			return fmt.Errorf("machine: %s must be > 0", c.name)
		}
	}
	return nil
}

// FromJSON decodes a platform description under the strict validator:
// unknown fields, trailing JSON documents, non-finite or negative
// quantities, and registry-unsafe IDs are all rejected, and the derived
// model parameters are validated, so a malformed datasheet fails loudly.
// This is the single ingestion path shared by `-platform-file`, the
// POST /v1/platforms upload, and the registry's startup recovery scan.
func FromJSON(r io.Reader) (*Platform, error) {
	var pj platformJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&pj); err != nil {
		return nil, fmt.Errorf("machine: decoding platform: %w", err)
	}
	// A second document (or trailing garbage) after the description is
	// someone concatenating files or truncation corruption; either way
	// the description's boundary is ambiguous, so reject it.
	if dec.More() {
		return nil, errors.New("machine: trailing data after the platform description")
	}
	if err := pj.validate(); err != nil {
		return nil, err
	}
	class := classNames[pj.Class]
	p := &Platform{
		ID:        ID(pj.ID),
		Name:      pj.Name,
		Processor: pj.Processor,
		Microarch: pj.Microarch,
		ProcessNM: pj.ProcessNM,
		Class:     class,
		IsGPU:     pj.IsGPU,
		Vendor: VendorPeak{
			Single: units.GFlopPerSec(pj.VendorSingleGflops),
			Double: units.GFlopPerSec(pj.VendorDoubleGflops),
			MemBW:  units.GBPerSec(pj.VendorMemGBs),
		},
		IdlePower: units.Power(pj.IdleW),
		Single: model.Params{
			TauFlop: units.GFlopPerSec(pj.SustainedSingleGflops).Inverse(),
			TauMem:  units.GBPerSec(pj.SustainedMemGBs).Inverse(),
			EpsFlop: units.PicoJoulePerFlop(pj.EpsSPJ),
			EpsMem:  units.PicoJoulePerByte(pj.EpsMemPJ),
			Pi1:     units.Power(pj.Pi1W),
			DeltaPi: units.Power(pj.DeltaPiW),
		},
		DoubleEps: units.PicoJoulePerFlop(pj.EpsDPJ),
		Sustained: Sustained{
			SingleRate: units.GFlopPerSec(pj.SustainedSingleGflops),
			DoubleRate: units.GFlopPerSec(pj.SustainedDoubleGflops),
			MemBW:      units.GBPerSec(pj.SustainedMemGBs),
		},
		CacheLine: units.Bytes(pj.CacheLine),
		L1Size:    units.Bytes(pj.L1SizeBytes),
		L2Size:    units.Bytes(pj.L2SizeBytes),
	}
	if pj.L1 != nil {
		p.L1 = level(pj.L1.EpsPJ, pj.L1.BWGBs)
		p.Sustained.L1BW = units.GBPerSec(pj.L1.BWGBs)
	}
	if pj.L2 != nil {
		p.L2 = level(pj.L2.EpsPJ, pj.L2.BWGBs)
		p.Sustained.L2BW = units.GBPerSec(pj.L2.BWGBs)
	}
	if pj.RandMaccs > 0 {
		p.Rand = random(pj.RandEpsNJ, pj.RandMaccs, p.CacheLine.Count())
		p.Sustained.RandRate = units.MAccPerSec(pj.RandMaccs)
	}
	if err := p.Single.Validate(); err != nil {
		return nil, fmt.Errorf("machine: %s: %w", p.Name, err)
	}
	if err := p.Hierarchy().Validate(); err != nil {
		return nil, fmt.Errorf("machine: %s: %w", p.Name, err)
	}
	return p, nil
}

// ToJSON encodes a platform in the same format FromJSON reads.
func ToJSON(w io.Writer, p *Platform) error {
	if p == nil {
		return errors.New("machine: nil platform")
	}
	className := classIDs[p.Class]
	pj := platformJSON{
		ID:        string(p.ID),
		Name:      p.Name,
		Processor: p.Processor,
		Microarch: p.Microarch,
		ProcessNM: p.ProcessNM,
		Class:     className,
		IsGPU:     p.IsGPU,

		VendorSingleGflops: p.Vendor.Single.FlopsPerSec() / 1e9,
		VendorDoubleGflops: p.Vendor.Double.FlopsPerSec() / 1e9,
		VendorMemGBs:       p.Vendor.MemBW.BytesPerSec() / 1e9,

		IdleW: p.IdlePower.Watts(),

		SustainedSingleGflops: p.Sustained.SingleRate.FlopsPerSec() / 1e9,
		SustainedDoubleGflops: p.Sustained.DoubleRate.FlopsPerSec() / 1e9,
		SustainedMemGBs:       p.Sustained.MemBW.BytesPerSec() / 1e9,

		EpsSPJ:    p.Single.EpsFlop.JoulesPerFlop() * 1e12,
		EpsDPJ:    p.DoubleEps.JoulesPerFlop() * 1e12,
		EpsMemPJ:  p.Single.EpsMem.JoulesPerByte() * 1e12,
		Pi1W:      p.Single.Pi1.Watts(),
		DeltaPiW:  p.Single.DeltaPi.Watts(),
		CacheLine: int(p.CacheLine),

		L1SizeBytes: int64(p.L1Size),
		L2SizeBytes: int64(p.L2Size),
	}
	if p.L1 != nil {
		pj.L1 = &levelJSON{EpsPJ: p.L1.Eps.JoulesPerByte() * 1e12, BWGBs: 1e-9 / float64(p.L1.Tau)}
	}
	if p.L2 != nil {
		pj.L2 = &levelJSON{EpsPJ: p.L2.Eps.JoulesPerByte() * 1e12, BWGBs: 1e-9 / float64(p.L2.Tau)}
	}
	if p.Rand != nil {
		pj.RandEpsNJ = p.Rand.Eps.JoulesPerAccess() * 1e9
		pj.RandMaccs = p.Rand.Rate.AccessesPerSec() / 1e6
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(pj)
}

// Canonical returns the platform's deterministic compact JSON encoding:
// ToJSON's field order with all inter-token whitespace removed. Two
// descriptions of the same platform (however formatted) canonicalize to
// identical bytes, so content hashes over this encoding are stable
// identity: the registry's blob envelopes, ETags, and the response
// cache's custom-platform key fragments are all derived from it. The
// compact form is also exactly what encoding/json re-emits when the
// bytes are embedded as a RawMessage, so an envelope round-trips
// through marshal/unmarshal without perturbing the hashed bytes.
func Canonical(p *Platform) ([]byte, error) {
	var pretty bytes.Buffer
	if err := ToJSON(&pretty, p); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := json.Compact(&buf, pretty.Bytes()); err != nil {
		return nil, fmt.Errorf("machine: canonicalizing: %w", err)
	}
	return buf.Bytes(), nil
}
