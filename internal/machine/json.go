package machine

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"archline/internal/model"
	"archline/internal/units"
)

// platformJSON is the on-disk platform description, in Table I's own
// units (Gflop/s, GB/s, pJ/flop, pJ/B, nJ/access, W) so a user can
// transcribe a datasheet or their own measurements directly.
type platformJSON struct {
	ID        string `json:"id"`
	Name      string `json:"name"`
	Processor string `json:"processor"`
	Microarch string `json:"microarch,omitempty"`
	ProcessNM int    `json:"process_nm,omitempty"`
	Class     string `json:"class"`
	IsGPU     bool   `json:"is_gpu,omitempty"`

	VendorSingleGflops float64 `json:"vendor_single_gflops"`
	VendorDoubleGflops float64 `json:"vendor_double_gflops,omitempty"`
	VendorMemGBs       float64 `json:"vendor_mem_gbs"`

	IdleW float64 `json:"idle_w"`

	SustainedSingleGflops float64 `json:"sustained_single_gflops"`
	SustainedDoubleGflops float64 `json:"sustained_double_gflops,omitempty"`
	SustainedMemGBs       float64 `json:"sustained_mem_gbs"`

	EpsSPJ    float64 `json:"eps_s_pj_per_flop"`
	EpsDPJ    float64 `json:"eps_d_pj_per_flop,omitempty"`
	EpsMemPJ  float64 `json:"eps_mem_pj_per_byte"`
	Pi1W      float64 `json:"pi1_w"`
	DeltaPiW  float64 `json:"delta_pi_w"`
	CacheLine int     `json:"cache_line_bytes"`

	L1 *levelJSON `json:"l1,omitempty"`
	L2 *levelJSON `json:"l2,omitempty"`

	RandEpsNJ   float64 `json:"eps_rand_nj_per_access,omitempty"`
	RandMaccs   float64 `json:"rand_macc_per_s,omitempty"`
	L1SizeBytes int64   `json:"l1_size_bytes,omitempty"`
	L2SizeBytes int64   `json:"l2_size_bytes,omitempty"`
}

type levelJSON struct {
	EpsPJ float64 `json:"eps_pj_per_byte"`
	BWGBs float64 `json:"bw_gbs"`
}

// classNames maps the JSON class field.
var classNames = map[string]Class{
	"desktop":     ClassDesktop,
	"mini":        ClassMini,
	"mobile":      ClassMobile,
	"coprocessor": ClassCoprocessor,
}

// classIDs is the inverse of classNames; kept as an explicit literal so
// encoding never depends on map iteration order.
var classIDs = map[Class]string{
	ClassDesktop:     "desktop",
	ClassMini:        "mini",
	ClassMobile:      "mobile",
	ClassCoprocessor: "coprocessor",
}

// FromJSON decodes a platform description. It validates the resulting
// model parameters, so a malformed datasheet fails loudly.
func FromJSON(r io.Reader) (*Platform, error) {
	var pj platformJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&pj); err != nil {
		return nil, fmt.Errorf("machine: decoding platform: %w", err)
	}
	if pj.ID == "" || pj.Name == "" {
		return nil, errors.New("machine: platform needs id and name")
	}
	class, ok := classNames[pj.Class]
	if !ok {
		return nil, fmt.Errorf("machine: unknown class %q (want desktop|mini|mobile|coprocessor)", pj.Class)
	}
	if pj.CacheLine <= 0 {
		return nil, errors.New("machine: cache_line_bytes must be positive")
	}
	p := &Platform{
		ID:        ID(pj.ID),
		Name:      pj.Name,
		Processor: pj.Processor,
		Microarch: pj.Microarch,
		ProcessNM: pj.ProcessNM,
		Class:     class,
		IsGPU:     pj.IsGPU,
		Vendor: VendorPeak{
			Single: units.GFlopPerSec(pj.VendorSingleGflops),
			Double: units.GFlopPerSec(pj.VendorDoubleGflops),
			MemBW:  units.GBPerSec(pj.VendorMemGBs),
		},
		IdlePower: units.Power(pj.IdleW),
		Single: model.Params{
			TauFlop: units.GFlopPerSec(pj.SustainedSingleGflops).Inverse(),
			TauMem:  units.GBPerSec(pj.SustainedMemGBs).Inverse(),
			EpsFlop: units.PicoJoulePerFlop(pj.EpsSPJ),
			EpsMem:  units.PicoJoulePerByte(pj.EpsMemPJ),
			Pi1:     units.Power(pj.Pi1W),
			DeltaPi: units.Power(pj.DeltaPiW),
		},
		DoubleEps: units.PicoJoulePerFlop(pj.EpsDPJ),
		Sustained: Sustained{
			SingleRate: units.GFlopPerSec(pj.SustainedSingleGflops),
			DoubleRate: units.GFlopPerSec(pj.SustainedDoubleGflops),
			MemBW:      units.GBPerSec(pj.SustainedMemGBs),
		},
		CacheLine: units.Bytes(pj.CacheLine),
		L1Size:    units.Bytes(pj.L1SizeBytes),
		L2Size:    units.Bytes(pj.L2SizeBytes),
	}
	if pj.L1 != nil {
		p.L1 = level(pj.L1.EpsPJ, pj.L1.BWGBs)
		p.Sustained.L1BW = units.GBPerSec(pj.L1.BWGBs)
	}
	if pj.L2 != nil {
		p.L2 = level(pj.L2.EpsPJ, pj.L2.BWGBs)
		p.Sustained.L2BW = units.GBPerSec(pj.L2.BWGBs)
	}
	if pj.RandMaccs > 0 {
		p.Rand = random(pj.RandEpsNJ, pj.RandMaccs, p.CacheLine.Count())
		p.Sustained.RandRate = units.MAccPerSec(pj.RandMaccs)
	}
	if err := p.Single.Validate(); err != nil {
		return nil, fmt.Errorf("machine: %s: %w", p.Name, err)
	}
	if err := p.Hierarchy().Validate(); err != nil {
		return nil, fmt.Errorf("machine: %s: %w", p.Name, err)
	}
	return p, nil
}

// ToJSON encodes a platform in the same format FromJSON reads.
func ToJSON(w io.Writer, p *Platform) error {
	if p == nil {
		return errors.New("machine: nil platform")
	}
	className := classIDs[p.Class]
	pj := platformJSON{
		ID:        string(p.ID),
		Name:      p.Name,
		Processor: p.Processor,
		Microarch: p.Microarch,
		ProcessNM: p.ProcessNM,
		Class:     className,
		IsGPU:     p.IsGPU,

		VendorSingleGflops: p.Vendor.Single.FlopsPerSec() / 1e9,
		VendorDoubleGflops: p.Vendor.Double.FlopsPerSec() / 1e9,
		VendorMemGBs:       p.Vendor.MemBW.BytesPerSec() / 1e9,

		IdleW: p.IdlePower.Watts(),

		SustainedSingleGflops: p.Sustained.SingleRate.FlopsPerSec() / 1e9,
		SustainedDoubleGflops: p.Sustained.DoubleRate.FlopsPerSec() / 1e9,
		SustainedMemGBs:       p.Sustained.MemBW.BytesPerSec() / 1e9,

		EpsSPJ:    p.Single.EpsFlop.JoulesPerFlop() * 1e12,
		EpsDPJ:    p.DoubleEps.JoulesPerFlop() * 1e12,
		EpsMemPJ:  p.Single.EpsMem.JoulesPerByte() * 1e12,
		Pi1W:      p.Single.Pi1.Watts(),
		DeltaPiW:  p.Single.DeltaPi.Watts(),
		CacheLine: int(p.CacheLine),

		L1SizeBytes: int64(p.L1Size),
		L2SizeBytes: int64(p.L2Size),
	}
	if p.L1 != nil {
		pj.L1 = &levelJSON{EpsPJ: p.L1.Eps.JoulesPerByte() * 1e12, BWGBs: 1e-9 / float64(p.L1.Tau)}
	}
	if p.L2 != nil {
		pj.L2 = &levelJSON{EpsPJ: p.L2.Eps.JoulesPerByte() * 1e12, BWGBs: 1e-9 / float64(p.L2.Tau)}
	}
	if p.Rand != nil {
		pj.RandEpsNJ = p.Rand.Eps.JoulesPerAccess() * 1e9
		pj.RandMaccs = p.Rand.Rate.AccessesPerSec() / 1e6
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(pj)
}
