package machine

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestJSONRoundTripAllPlatforms(t *testing.T) {
	for _, p := range All() {
		var buf bytes.Buffer
		if err := ToJSON(&buf, p); err != nil {
			t.Fatalf("%s: encode: %v", p.Name, err)
		}
		back, err := FromJSON(&buf)
		if err != nil {
			t.Fatalf("%s: decode: %v", p.Name, err)
		}
		if back.ID != p.ID || back.Name != p.Name || back.Class != p.Class || back.IsGPU != p.IsGPU {
			t.Errorf("%s: identity fields changed", p.Name)
		}
		rel := func(a, b float64) float64 {
			if b == 0 {
				return math.Abs(a)
			}
			return math.Abs(a-b) / math.Abs(b)
		}
		if rel(float64(back.Single.TauFlop), float64(p.Single.TauFlop)) > 1e-9 {
			t.Errorf("%s: tau_flop changed", p.Name)
		}
		if rel(float64(back.Single.EpsMem), float64(p.Single.EpsMem)) > 1e-9 {
			t.Errorf("%s: eps_mem changed", p.Name)
		}
		if rel(float64(back.Single.Pi1), float64(p.Single.Pi1)) > 1e-9 {
			t.Errorf("%s: pi_1 changed", p.Name)
		}
		if (back.L1 == nil) != (p.L1 == nil) || (back.L2 == nil) != (p.L2 == nil) ||
			(back.Rand == nil) != (p.Rand == nil) {
			t.Errorf("%s: optional sections changed", p.Name)
		}
		if p.Rand != nil && rel(float64(back.Rand.Eps), float64(p.Rand.Eps)) > 1e-9 {
			t.Errorf("%s: eps_rand changed", p.Name)
		}
		if back.SupportsDouble() != p.SupportsDouble() {
			t.Errorf("%s: double support changed", p.Name)
		}
	}
}

func TestFromJSONCustomPlatform(t *testing.T) {
	src := `{
		"id": "my-accelerator",
		"name": "My Accelerator",
		"processor": "ACME X1",
		"class": "coprocessor",
		"is_gpu": true,
		"vendor_single_gflops": 8000,
		"vendor_mem_gbs": 400,
		"idle_w": 60,
		"sustained_single_gflops": 7200,
		"sustained_mem_gbs": 350,
		"eps_s_pj_per_flop": 20,
		"eps_mem_pj_per_byte": 200,
		"pi1_w": 80,
		"delta_pi_w": 150,
		"cache_line_bytes": 128,
		"l1": {"eps_pj_per_byte": 15, "bw_gbs": 2000},
		"l2": {"eps_pj_per_byte": 120, "bw_gbs": 500},
		"eps_rand_nj_per_access": 30,
		"rand_macc_per_s": 1200,
		"l1_size_bytes": 65536,
		"l2_size_bytes": 2097152
	}`
	p, err := FromJSON(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "My Accelerator" || !p.IsGPU {
		t.Error("identity fields")
	}
	if math.Abs(float64(p.Single.PeakFlopRate())-7.2e12) > 1e6 {
		t.Errorf("peak rate %v", p.Single.PeakFlopRate())
	}
	// The custom machine works with the whole model stack.
	if p.Single.AvgPowerAt(4) <= 0 {
		t.Error("model evaluation failed")
	}
	if p.Rand == nil || float64(p.Rand.Line) != 128 {
		t.Error("random access section")
	}
	if p.SupportsDouble() {
		t.Error("no eps_d given: double unsupported")
	}
}

func TestFromJSONErrors(t *testing.T) {
	cases := map[string]string{
		"garbage":       `{`,
		"unknown field": `{"id":"x","name":"y","class":"mini","bogus":1}`,
		"missing id":    `{"name":"y","class":"mini"}`,
		"bad class":     `{"id":"x","name":"y","class":"quantum","cache_line_bytes":64}`,
		"no line": `{"id":"x","name":"y","class":"mini",
			"sustained_single_gflops":10,"sustained_mem_gbs":10,
			"eps_s_pj_per_flop":10,"eps_mem_pj_per_byte":10,"pi1_w":1,"delta_pi_w":1}`,
		"zero rate": `{"id":"x","name":"y","class":"mini","cache_line_bytes":64,
			"sustained_single_gflops":0,"sustained_mem_gbs":10,
			"eps_s_pj_per_flop":10,"eps_mem_pj_per_byte":10,"pi1_w":1,"delta_pi_w":1}`,
		"l1 above l2": `{"id":"x","name":"y","class":"mini","cache_line_bytes":64,
			"sustained_single_gflops":10,"sustained_mem_gbs":10,
			"eps_s_pj_per_flop":10,"eps_mem_pj_per_byte":10,"pi1_w":1,"delta_pi_w":1,
			"l1":{"eps_pj_per_byte":100,"bw_gbs":100},
			"l2":{"eps_pj_per_byte":50,"bw_gbs":50}}`,
		"trailing document": `{"id":"x","name":"y","class":"mini","cache_line_bytes":64,
			"sustained_single_gflops":10,"sustained_mem_gbs":10,
			"eps_s_pj_per_flop":10,"eps_mem_pj_per_byte":10,"pi1_w":1,"delta_pi_w":1}
			{"second":"doc"}`,
		"negative energy": `{"id":"x","name":"y","class":"mini","cache_line_bytes":64,
			"sustained_single_gflops":10,"sustained_mem_gbs":10,
			"eps_s_pj_per_flop":-10,"eps_mem_pj_per_byte":10,"pi1_w":1,"delta_pi_w":1}`,
		"negative idle": `{"id":"x","name":"y","class":"mini","cache_line_bytes":64,"idle_w":-5,
			"sustained_single_gflops":10,"sustained_mem_gbs":10,
			"eps_s_pj_per_flop":10,"eps_mem_pj_per_byte":10,"pi1_w":1,"delta_pi_w":1}`,
		"overflowing float": `{"id":"x","name":"y","class":"mini","cache_line_bytes":64,
			"sustained_single_gflops":1e999,"sustained_mem_gbs":10,
			"eps_s_pj_per_flop":10,"eps_mem_pj_per_byte":10,"pi1_w":1,"delta_pi_w":1}`,
		"zero l1 bandwidth": `{"id":"x","name":"y","class":"mini","cache_line_bytes":64,
			"sustained_single_gflops":10,"sustained_mem_gbs":10,
			"eps_s_pj_per_flop":10,"eps_mem_pj_per_byte":10,"pi1_w":1,"delta_pi_w":1,
			"l1":{"eps_pj_per_byte":5,"bw_gbs":0}}`,
		"uppercase id": `{"id":"My-GPU","name":"y","class":"mini","cache_line_bytes":64,
			"sustained_single_gflops":10,"sustained_mem_gbs":10,
			"eps_s_pj_per_flop":10,"eps_mem_pj_per_byte":10,"pi1_w":1,"delta_pi_w":1}`,
		"id with slash": `{"id":"a/b","name":"y","class":"mini","cache_line_bytes":64,
			"sustained_single_gflops":10,"sustained_mem_gbs":10,
			"eps_s_pj_per_flop":10,"eps_mem_pj_per_byte":10,"pi1_w":1,"delta_pi_w":1}`,
		"id leading dot": `{"id":".hidden","name":"y","class":"mini","cache_line_bytes":64,
			"sustained_single_gflops":10,"sustained_mem_gbs":10,
			"eps_s_pj_per_flop":10,"eps_mem_pj_per_byte":10,"pi1_w":1,"delta_pi_w":1}`,
	}
	for name, src := range cases {
		if _, err := FromJSON(strings.NewReader(src)); err == nil {
			t.Errorf("%s: should error", name)
		}
	}
	if err := ToJSON(&bytes.Buffer{}, nil); err == nil {
		t.Error("nil platform should error")
	}
}

func TestValidID(t *testing.T) {
	valid := []string{"gtx-titan", "a", "x.1_b-2", strings.Repeat("a", MaxIDLength)}
	for _, id := range valid {
		if !ValidID(id) {
			t.Errorf("ValidID(%q) = false, want true", id)
		}
	}
	invalid := []string{"", "A", "a b", "a/b", "-lead", ".lead", "_lead", "ä",
		strings.Repeat("a", MaxIDLength+1)}
	for _, id := range invalid {
		if ValidID(id) {
			t.Errorf("ValidID(%q) = true, want false", id)
		}
	}
	// Every Table I ID must stay valid: the registry serves them.
	for _, p := range All() {
		if !ValidID(string(p.ID)) {
			t.Errorf("built-in ID %q fails ValidID", p.ID)
		}
	}
}

// TestCanonicalDeterministic pins the property the registry's content
// hashes rely on: decoding the same description bytes always
// canonicalizes to identical bytes, so one uploaded document maps to
// exactly one content hash. (A decode→encode round trip is not an exact
// float fixed point on every platform; the registry therefore hashes
// the canonical bytes it stored at upload time, never a re-encoding.)
func TestCanonicalDeterministic(t *testing.T) {
	for _, p := range All() {
		src, err := Canonical(p)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		var outs [][]byte
		for i := 0; i < 2; i++ {
			back, err := FromJSON(bytes.NewReader(src))
			if err != nil {
				t.Fatalf("%s: decode canonical: %v", p.Name, err)
			}
			c, err := Canonical(back)
			if err != nil {
				t.Fatalf("%s: %v", p.Name, err)
			}
			outs = append(outs, c)
		}
		if !bytes.Equal(outs[0], outs[1]) {
			t.Errorf("%s: same input bytes canonicalized differently", p.Name)
		}
	}
}

// TestToJSONDeterministic guards the encoder against map-iteration-order
// flakiness: two consecutive renders of the same platform must be
// byte-identical (the class name is looked up via an explicit inverse
// map, not by ranging over classNames).
func TestToJSONDeterministic(t *testing.T) {
	for _, p := range All() {
		var a, b bytes.Buffer
		if err := ToJSON(&a, p); err != nil {
			t.Fatalf("%s: first encode: %v", p.Name, err)
		}
		if err := ToJSON(&b, p); err != nil {
			t.Fatalf("%s: second encode: %v", p.Name, err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("%s: consecutive encodings differ", p.Name)
		}
		if !strings.Contains(a.String(), `"class"`) {
			t.Errorf("%s: class field missing from encoding", p.Name)
		}
	}
}
