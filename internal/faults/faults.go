// Package faults is a deterministic, seeded fault-injection layer for
// the measurement stack. The paper's fitted constants come from real
// lab instrumentation, and real power instrumentation is ugly: PowerMon
// channels glitch, sample buffers drop in bursts, ADCs latch, shunt
// calibrations drift, platforms thermally throttle mid-run, and the
// meter link occasionally disconnects outright. The simulated substrate
// models only well-behaved Gaussian noise, so this package layers the
// pathologies on top — composable, probability-scheduled, and entirely
// driven by stats.Stream so the same seed always produces the identical
// fault schedule.
//
// The injector wraps the two chokepoints of the measurement stack:
//
//   - powermon recording (Injector.Record): transient disconnects
//     surface as powermon.ErrDisconnect, and successful recordings come
//     back corrupted with dropped sample windows, sensor spikes,
//     latched channels, and calibration-gain drift;
//   - simulated execution (Injector.ThrottleEvent): a thermal-throttle
//     event cuts the platform's sustained dynamic power mid-run and
//     stretches the wall time to conserve the work done.
//
// Consumers harden themselves against the injected faults: powermon
// sanitizes traces, microbench retries transients and aggregates
// repeat measurements robustly, fit falls back to a robust loss, and
// the archlined daemon sheds load behind a circuit breaker.
package faults

import (
	"fmt"
	"sync"

	"archline/internal/powermon"
	"archline/internal/stats"
	"archline/internal/units"
)

// Profile is one fault environment: per-pathology probabilities and
// magnitudes. The zero value injects nothing.
type Profile struct {
	// Name identifies the profile in flags and logs.
	Name string

	// DropRate is the expected fraction of samples lost to gap bursts.
	DropRate float64
	// DropWindow is the number of consecutive samples lost per burst.
	DropWindow int

	// SpikeRate is the per-sample probability of a sensor spike.
	SpikeRate float64
	// SpikeMag is the multiplicative magnitude of a spike on the
	// sampled current.
	SpikeMag float64

	// StuckProb is the per-channel-trace probability that the ADC
	// latches for a stretch of the recording.
	StuckProb float64
	// StuckFrac is the fraction of the trace a latch lasts.
	StuckFrac float64
	// StuckLow and StuckHigh bound the latched reading as a multiple of
	// the reading at latch onset.
	StuckLow, StuckHigh float64

	// GainDrift bounds the slow multiplicative calibration drift each
	// recording sees relative to the last shunt calibration; a
	// recording's gain error is drawn uniformly from [-GainDrift,
	// +GainDrift].
	GainDrift float64

	// ThrottleProb is the per-run probability of a thermal-throttle
	// event that cuts the sustained dynamic power mid-run.
	ThrottleProb float64
	// ThrottleFactor is the throttled speed (and dynamic-power)
	// fraction in (0, 1].
	ThrottleFactor float64
	// ThrottleWorkFrac is the fraction of the run's work executed while
	// throttled.
	ThrottleWorkFrac float64

	// DisconnectProb is the per-label probability that the meter link
	// drops when a recording is first attempted.
	DisconnectProb float64
	// DisconnectBurst is how many consecutive attempts fail per
	// disconnect episode before the link recovers.
	DisconnectBurst int
}

// Enabled reports whether the profile injects anything at all.
func (p Profile) Enabled() bool {
	return p.DropRate > 0 || p.SpikeRate > 0 || p.StuckProb > 0 ||
		p.GainDrift > 0 || p.ThrottleProb > 0 || p.DisconnectProb > 0
}

// None is the empty profile: no faults.
func None() Profile { return Profile{Name: "none"} }

// Paper is the paper-plausible profile: the pathology rates a careful
// lab actually fights — at most 2% dropped samples, 0.5% spikes,
// roughly one thermal-throttle event per suite run, occasional latched
// channels, sub-percent calibration drift, and rare link drops. The
// robust measure→fit pipeline must recover Table I constants within 5%
// under this profile.
func Paper() Profile {
	return Profile{
		Name:             "paper",
		DropRate:         0.02,
		DropWindow:       24,
		SpikeRate:        0.005,
		SpikeMag:         12,
		StuckProb:        0.04,
		StuckFrac:        0.08,
		StuckLow:         0.3,
		StuckHigh:        1.4,
		GainDrift:        0.004,
		ThrottleProb:     0.02, // ~one event across a ~60-kernel suite
		ThrottleFactor:   0.55,
		ThrottleWorkFrac: 0.5,
		DisconnectProb:   0.02,
		DisconnectBurst:  2,
	}
}

// Harsh is a stress profile well beyond anything the paper's lab saw:
// it exists to exercise degradation paths, not to be survived within
// tight tolerances.
func Harsh() Profile {
	return Profile{
		Name:             "harsh",
		DropRate:         0.10,
		DropWindow:       64,
		SpikeRate:        0.03,
		SpikeMag:         20,
		StuckProb:        0.25,
		StuckFrac:        0.20,
		StuckLow:         0.1,
		StuckHigh:        2.0,
		GainDrift:        0.02,
		ThrottleProb:     0.15,
		ThrottleFactor:   0.4,
		ThrottleWorkFrac: 0.6,
		DisconnectProb:   0.10,
		DisconnectBurst:  3,
	}
}

// Profiles lists the built-in profile names.
func Profiles() []string { return []string{"none", "paper", "harsh"} }

// ByName resolves a built-in profile.
func ByName(name string) (Profile, error) {
	switch name {
	case "", "none":
		return None(), nil
	case "paper":
		return Paper(), nil
	case "harsh":
		return Harsh(), nil
	default:
		return Profile{}, fmt.Errorf("faults: unknown profile %q (want one of none, paper, harsh)", name)
	}
}

// Injector schedules and applies one profile's faults. All randomness
// derives from (seed, label) stats.Streams, so the schedule is a pure
// function of the seed and the labels measured: same seed, same labels
// ⇒ identical faults, regardless of evaluation order. The only mutable
// state is the per-label disconnect countdown, which is itself
// label-deterministic; a mutex makes concurrent use safe.
type Injector struct {
	prof Profile
	seed uint64

	mu         sync.Mutex
	disconnect map[string]int // label -> remaining failures in the episode
}

// New builds an injector for the profile.
func New(prof Profile, seed uint64) *Injector {
	return &Injector{prof: prof, seed: seed, disconnect: map[string]int{}}
}

// Profile returns the injector's profile.
func (in *Injector) Profile() Profile {
	if in == nil {
		return None()
	}
	return in.prof
}

// stream derives the deterministic stream for one fault kind and label.
func (in *Injector) stream(kind, label string) *stats.Stream {
	return stats.NewStream(in.seed^0xfa117, kind+"/"+label)
}

// ThrottleWindow describes one thermal-throttle event inside a run.
type ThrottleWindow struct {
	// Start and Dur delimit the throttled stretch of the (stretched)
	// run, in seconds from run start.
	Start, Dur float64
	// Factor is the dynamic-power (and clock) fraction during the
	// window.
	Factor float64
	// Total is the stretched total wall time of the run.
	Total float64
}

// ThrottleEvent decides whether the labelled run hits a thermal
// throttle. The event conserves work: a fraction of the run executes at
// Factor speed, so the wall time stretches while the dynamic power
// during the window drops by the same factor.
func (in *Injector) ThrottleEvent(label string, trueTime float64) (ThrottleWindow, bool) {
	if in == nil || in.prof.ThrottleProb <= 0 || trueTime <= 0 {
		return ThrottleWindow{}, false
	}
	s := in.stream("throttle", label)
	if s.Float64() >= in.prof.ThrottleProb {
		return ThrottleWindow{}, false
	}
	f := in.prof.ThrottleFactor
	if f <= 0 || f > 1 {
		f = 0.5
	}
	g := in.prof.ThrottleWorkFrac
	if g <= 0 || g >= 1 {
		g = 0.5
	}
	dur := g * trueTime / f              // wall time of the throttled stretch
	total := (1-g)*trueTime + dur        // stretched run length
	start := s.Float64() * (total - dur) // window placement
	return ThrottleWindow{Start: start, Dur: dur, Factor: f, Total: total}, true
}

// Record performs one metered recording under the fault schedule: a
// transient powermon.ErrDisconnect while a disconnect episode is open,
// otherwise the meter's trace corrupted per the profile. rng carries
// the meter's own measurement noise exactly as powermon.Meter.Record
// takes it.
func (in *Injector) Record(m *powermon.Meter, sig powermon.Signal, d units.Time,
	rng *stats.Stream, label string) (*powermon.Trace, error) {
	if in == nil || !in.prof.Enabled() {
		return m.Record(sig, d, rng)
	}
	if err := in.checkDisconnect(label); err != nil {
		return nil, err
	}
	tr, err := m.Record(sig, d, rng)
	if err != nil {
		return nil, err
	}
	in.corrupt(tr, label)
	return tr, nil
}

// checkDisconnect opens (or continues) the label's disconnect episode.
func (in *Injector) checkDisconnect(label string) error {
	if in.prof.DisconnectProb <= 0 {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	remaining, open := in.disconnect[label]
	if !open {
		// First attempt for this label: roll for an episode.
		remaining = 0
		if in.stream("disconnect", label).Float64() < in.prof.DisconnectProb {
			remaining = in.prof.DisconnectBurst
			if remaining < 1 {
				remaining = 1
			}
		}
	}
	if remaining > 0 {
		in.disconnect[label] = remaining - 1
		return fmt.Errorf("faults: %q: %w", label, powermon.ErrDisconnect)
	}
	in.disconnect[label] = 0
	return nil
}

// corrupt applies the profile's trace pathologies channel by channel.
func (in *Injector) corrupt(tr *powermon.Trace, label string) {
	for c := range tr.Channels {
		ch := &tr.Channels[c]
		s := in.stream("corrupt", label+"/"+ch.Channel)
		in.drift(ch, s)
		in.spike(ch, s)
		in.stick(ch, s)
		in.drop(ch, s)
	}
}

// drift applies the recording's calibration-gain drift: the slow shunt
// drift since the last calibration, sampled once per recording.
func (in *Injector) drift(ch *powermon.ChannelTrace, s *stats.Stream) {
	if in.prof.GainDrift <= 0 {
		return
	}
	g := 1 + in.prof.GainDrift*(2*s.Float64()-1)
	for i := range ch.Samples {
		ch.Samples[i].I *= g
	}
}

// spike rails individual readings.
func (in *Injector) spike(ch *powermon.ChannelTrace, s *stats.Stream) {
	if in.prof.SpikeRate <= 0 {
		return
	}
	mag := in.prof.SpikeMag
	if mag <= 1 {
		mag = 10
	}
	for i := range ch.Samples {
		if s.Float64() < in.prof.SpikeRate {
			ch.Samples[i].I *= mag
		}
	}
}

// stick latches the channel for a stretch of the recording.
func (in *Injector) stick(ch *powermon.ChannelTrace, s *stats.Stream) {
	n := len(ch.Samples)
	if in.prof.StuckProb <= 0 || n < 8 || s.Float64() >= in.prof.StuckProb {
		return
	}
	frac := in.prof.StuckFrac
	if frac <= 0 || frac > 0.45 {
		frac = 0.1
	}
	run := int(frac * float64(n))
	if run < 4 {
		run = 4
	}
	start := s.Intn(n - run)
	lo, hi := in.prof.StuckLow, in.prof.StuckHigh
	if lo <= 0 || hi <= lo {
		lo, hi = 0.3, 1.4
	}
	level := ch.Samples[start].I * (lo + (hi-lo)*s.Float64())
	v := ch.Samples[start].V
	for i := start; i < start+run; i++ {
		ch.Samples[i].I = level
		ch.Samples[i].V = v
	}
}

// drop removes bursts of samples, the way a stalled meter link loses
// whole buffer flushes. Timestamps of the survivors are untouched, so
// the gaps stay visible to sanitization.
func (in *Injector) drop(ch *powermon.ChannelTrace, s *stats.Stream) {
	n := len(ch.Samples)
	win := in.prof.DropWindow
	if in.prof.DropRate <= 0 || win < 1 || n <= 2*win {
		return
	}
	// Each trigger eats a whole window, so the per-sample trigger
	// probability is the target rate divided by the window length.
	burstProb := in.prof.DropRate / float64(win)
	kept := ch.Samples[:0]
	i := 0
	for i < n {
		if i > 0 && i+win < n && s.Float64() < burstProb {
			i += win // burst lost
			continue
		}
		kept = append(kept, ch.Samples[i])
		i++
	}
	ch.Samples = kept
}
