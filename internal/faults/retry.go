package faults

import (
	"fmt"
	"time"

	"archline/internal/powermon"
	"archline/internal/stats"
)

// Backoff is an exponential retry schedule with multiplicative jitter.
// The zero value is usable and falls back to the defaults below.
type Backoff struct {
	// Base is the first delay. Default 10ms.
	Base time.Duration
	// Max caps any single delay. Default 500ms.
	Max time.Duration
	// Factor multiplies the delay each attempt. Default 2.
	Factor float64
	// Jitter spreads each delay uniformly over ±Jitter of its nominal
	// value, drawn from a seeded stream so schedules stay reproducible.
	// Zero means the default 0.2; set negative to disable jitter.
	Jitter float64
	// Attempts is the total number of tries (first call included).
	// Default 4.
	Attempts int
}

// Backoff defaults.
const (
	defaultBase     = 10 * time.Millisecond
	defaultMax      = 500 * time.Millisecond
	defaultFactor   = 2.0
	defaultJitter   = 0.2
	defaultAttempts = 4
)

func (b Backoff) withDefaults() Backoff {
	if b.Base <= 0 {
		b.Base = defaultBase
	}
	if b.Max <= 0 {
		b.Max = defaultMax
	}
	if b.Factor < 1 {
		b.Factor = defaultFactor
	}
	switch {
	case b.Jitter < 0:
		b.Jitter = 0 // explicitly disabled
	case b.Jitter == 0 || b.Jitter >= 1:
		b.Jitter = defaultJitter
	}
	if b.Attempts < 1 {
		b.Attempts = defaultAttempts
	}
	return b
}

// Delay returns the jittered delay before retry number attempt (the
// delay after the attempt-th failure, starting at 1). The jitter draw
// comes from rng, so a seeded stream yields an identical schedule every
// run; a nil rng yields the un-jittered nominal delays.
func (b Backoff) Delay(attempt int, rng *stats.Stream) time.Duration {
	b = b.withDefaults()
	if attempt < 1 {
		attempt = 1
	}
	d := float64(b.Base)
	for i := 1; i < attempt; i++ {
		d *= b.Factor
		if d >= float64(b.Max) {
			d = float64(b.Max)
			break
		}
	}
	if d > float64(b.Max) {
		d = float64(b.Max)
	}
	if rng != nil && b.Jitter > 0 {
		d *= 1 + b.Jitter*(2*rng.Float64()-1)
	}
	return time.Duration(d)
}

// Retry runs op until it succeeds, fails permanently, or the attempt
// budget is exhausted. Only transient errors (powermon.IsTransient) are
// retried; anything else returns immediately. sleep receives each
// backoff delay — pass time.Sleep in production and a recording stub in
// tests so no test ever blocks on a real clock. It returns the number
// of retries performed and the final error (nil on success; the last
// transient error wrapped with context if the budget runs out).
func Retry(b Backoff, sleep func(time.Duration), rng *stats.Stream, op func() error) (retries int, err error) {
	return RetryNotify(b, sleep, rng, nil, op)
}

// RetryNotify is Retry with an observer: notify (when non-nil) runs
// before each backoff sleep with the failed attempt number (1-based),
// the delay about to be taken, and the transient error being retried.
// Callers use it to emit retry events onto a span without the retry
// loop knowing anything about tracing.
func RetryNotify(b Backoff, sleep func(time.Duration), rng *stats.Stream,
	notify func(attempt int, delay time.Duration, err error), op func() error) (retries int, err error) {
	b = b.withDefaults()
	if sleep == nil {
		sleep = time.Sleep
	}
	for attempt := 1; ; attempt++ {
		err = op()
		if err == nil || !powermon.IsTransient(err) {
			return retries, err
		}
		if attempt >= b.Attempts {
			return retries, fmt.Errorf("faults: gave up after %d attempts: %w", b.Attempts, err)
		}
		delay := b.Delay(attempt, rng)
		if notify != nil {
			notify(attempt, delay, err)
		}
		sleep(delay)
		retries++
	}
}
