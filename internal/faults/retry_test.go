package faults

import (
	"errors"
	"testing"
	"time"

	"archline/internal/powermon"
	"archline/internal/stats"
)

// fakeClock records requested sleeps without ever blocking.
type fakeClock struct{ slept []time.Duration }

func (c *fakeClock) sleep(d time.Duration) { c.slept = append(c.slept, d) }

func TestRetrySucceedsAfterTransients(t *testing.T) {
	clock := &fakeClock{}
	calls := 0
	retries, err := Retry(Backoff{}, clock.sleep, stats.NewStream(42, "retry"), func() error {
		calls++
		if calls < 3 {
			return powermon.ErrDisconnect
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Retry: %v", err)
	}
	if retries != 2 || calls != 3 {
		t.Errorf("retries = %d, calls = %d; want 2, 3", retries, calls)
	}
	if len(clock.slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(clock.slept))
	}
	// Delays grow and respect the jitter envelope around base*factor^k.
	for i, d := range clock.slept {
		nominal := float64(defaultBase) * pow(defaultFactor, i)
		lo := time.Duration(nominal * (1 - defaultJitter))
		hi := time.Duration(nominal * (1 + defaultJitter))
		if d < lo || d > hi {
			t.Errorf("delay[%d] = %v, want within [%v, %v]", i, d, lo, hi)
		}
	}
}

func pow(f float64, k int) float64 {
	out := 1.0
	for i := 0; i < k; i++ {
		out *= f
	}
	return out
}

func TestRetryPermanentErrorNotRetried(t *testing.T) {
	clock := &fakeClock{}
	calls := 0
	retries, err := Retry(Backoff{}, clock.sleep, nil, func() error {
		calls++
		return powermon.ErrNoChannels
	})
	if !errors.Is(err, powermon.ErrNoChannels) {
		t.Errorf("err = %v, want ErrNoChannels", err)
	}
	if retries != 0 || calls != 1 || len(clock.slept) != 0 {
		t.Errorf("permanent error retried: retries=%d calls=%d sleeps=%d", retries, calls, len(clock.slept))
	}
}

func TestRetryBudgetExhausted(t *testing.T) {
	clock := &fakeClock{}
	b := Backoff{Attempts: 3}
	retries, err := Retry(b, clock.sleep, nil, func() error { return powermon.ErrDisconnect })
	if !errors.Is(err, powermon.ErrDisconnect) {
		t.Errorf("exhausted err = %v, want wrapped ErrDisconnect", err)
	}
	if !powermon.IsTransient(err) {
		t.Error("exhausted error must stay errors.Is-able as transient")
	}
	if retries != 2 || len(clock.slept) != 2 {
		t.Errorf("retries = %d, sleeps = %d; want 2, 2", retries, len(clock.slept))
	}
}

func TestDelayCapsAtMax(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: 300 * time.Millisecond, Factor: 2, Jitter: -1}
	if d := b.Delay(10, nil); d != 300*time.Millisecond {
		t.Errorf("Delay(10) = %v, want capped 300ms", d)
	}
	if d := b.Delay(1, nil); d != 100*time.Millisecond {
		t.Errorf("Delay(1) = %v, want base 100ms", d)
	}
}

func TestJitterDeterministicUnderSeededStream(t *testing.T) {
	// Identical streams must yield identical jittered schedules; no
	// wall-clock randomness may leak in.
	mk := func() []time.Duration {
		rng := stats.NewStream(7, "jitter")
		b := Backoff{}
		var ds []time.Duration
		for a := 1; a <= 5; a++ {
			ds = append(ds, b.Delay(a, rng))
		}
		return ds
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delay[%d]: %v vs %v — jitter not deterministic", i, a[i], b[i])
		}
	}
	// And a different label diverges.
	other := Backoff{}.Delay(1, stats.NewStream(7, "other"))
	if other == a[0] {
		t.Error("distinct streams produced identical jitter (suspicious)")
	}
}

func TestRetryNeverSleepsOnSuccess(t *testing.T) {
	clock := &fakeClock{}
	retries, err := Retry(Backoff{}, clock.sleep, nil, func() error { return nil })
	if err != nil || retries != 0 || len(clock.slept) != 0 {
		t.Errorf("success path slept: retries=%d sleeps=%d err=%v", retries, len(clock.slept), err)
	}
}
