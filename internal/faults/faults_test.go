package faults

import (
	"errors"
	"math"
	"testing"

	"archline/internal/powermon"
	"archline/internal/stats"
)

func record(t *testing.T, in *Injector, label string, seed uint64) (*powermon.Trace, error) {
	t.Helper()
	m := powermon.MobileBoardMeter()
	return in.Record(m, powermon.Constant(40), 1, stats.NewStream(seed, "meter/"+label), label)
}

func mustRecord(t *testing.T, in *Injector, label string, seed uint64) *powermon.Trace {
	t.Helper()
	tr, err := record(t, in, label, seed)
	for powermon.IsTransient(err) {
		tr, err = record(t, in, label, seed)
	}
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func tracesEqual(a, b *powermon.Trace) bool {
	if len(a.Channels) != len(b.Channels) {
		return false
	}
	for c := range a.Channels {
		as, bs := a.Channels[c].Samples, b.Channels[c].Samples
		if len(as) != len(bs) {
			return false
		}
		for i := range as {
			if as[i] != bs[i] {
				return false
			}
		}
	}
	return true
}

func TestSameSeedSameFaultSchedule(t *testing.T) {
	// Two injectors with the same profile and seed must corrupt
	// identically, label by label, including disconnect episodes.
	for _, label := range []string{"gtx-titan/dram_sweep_17", "i7-3930k/flops_sp", "a2x/chase_l2"} {
		a := New(Paper(), 42)
		b := New(Paper(), 42)
		ta, ea := record(t, a, label, 7)
		tb, eb := record(t, b, label, 7)
		if (ea == nil) != (eb == nil) {
			t.Fatalf("%s: error mismatch: %v vs %v", label, ea, eb)
		}
		if ea != nil {
			continue // both disconnected on the same attempt: deterministic
		}
		if !tracesEqual(ta, tb) {
			t.Errorf("%s: same seed produced different corrupted traces", label)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := mustRecord(t, New(Paper(), 1), "k", 7)
	b := mustRecord(t, New(Paper(), 2), "k", 7)
	if tracesEqual(a, b) {
		t.Error("different fault seeds produced identical traces")
	}
}

func TestNoneProfilePassthrough(t *testing.T) {
	// The none profile must be byte-identical to recording directly.
	in := New(None(), 42)
	got := mustRecord(t, in, "k", 7)
	m := powermon.MobileBoardMeter()
	want, err := m.Record(powermon.Constant(40), 1, stats.NewStream(7, "meter/k"))
	if err != nil {
		t.Fatal(err)
	}
	if !tracesEqual(got, want) {
		t.Error("none profile altered the trace")
	}
	if None().Enabled() {
		t.Error("None().Enabled() = true")
	}
	if !Paper().Enabled() || !Harsh().Enabled() {
		t.Error("paper/harsh profiles must be enabled")
	}
}

func TestNilInjectorPassthrough(t *testing.T) {
	var in *Injector
	tr := mustRecord(t, in, "k", 7)
	if tr == nil {
		t.Fatal("nil injector must still record")
	}
	if _, hit := in.ThrottleEvent("k", 1); hit {
		t.Error("nil injector throttled")
	}
	if in.Profile().Name != "none" {
		t.Errorf("nil injector profile = %q", in.Profile().Name)
	}
}

func TestDisconnectBurstThenRecovery(t *testing.T) {
	// Force a disconnect and check the episode lasts exactly
	// DisconnectBurst attempts, returning the typed transient error.
	prof := Paper()
	prof.DisconnectProb = 1
	prof.DisconnectBurst = 2
	in := New(prof, 42)
	var fails int
	for {
		_, err := record(t, in, "k", 7)
		if err == nil {
			break
		}
		if !errors.Is(err, powermon.ErrDisconnect) {
			t.Fatalf("disconnect error = %v, want ErrDisconnect", err)
		}
		if !powermon.IsTransient(err) {
			t.Fatal("disconnect must classify as transient")
		}
		fails++
		if fails > 10 {
			t.Fatal("disconnect episode never recovered")
		}
	}
	if fails != 2 {
		t.Errorf("episode lasted %d failures, want 2", fails)
	}
	// After recovery the label stays connected.
	if _, err := record(t, in, "k", 7); err != nil {
		t.Errorf("recovered label failed again: %v", err)
	}
}

func TestThrottleEventConservesWork(t *testing.T) {
	prof := Paper()
	prof.ThrottleProb = 1 // always throttle
	in := New(prof, 42)
	trueTime := 3.0
	w, hit := in.ThrottleEvent("k", trueTime)
	if !hit {
		t.Fatal("ThrottleProb=1 did not throttle")
	}
	// Work conservation: the throttled stretch runs 1/f slower, so
	// total = (1-g)*T + g*T/f.
	f, g := prof.ThrottleFactor, prof.ThrottleWorkFrac
	wantTotal := (1-g)*trueTime + g*trueTime/f
	if math.Abs(w.Total-wantTotal) > 1e-12 {
		t.Errorf("Total = %v, want %v", w.Total, wantTotal)
	}
	if w.Factor != f {
		t.Errorf("Factor = %v, want %v", w.Factor, f)
	}
	if w.Start < 0 || w.Start+w.Dur > w.Total+1e-12 {
		t.Errorf("window [%v, %v] outside run [0, %v]", w.Start, w.Start+w.Dur, w.Total)
	}
	// Deterministic placement.
	w2, _ := New(prof, 42).ThrottleEvent("k", trueTime)
	if w2 != w {
		t.Errorf("same seed gave different windows: %+v vs %+v", w, w2)
	}
}

func TestPaperProfileRatesArePlausible(t *testing.T) {
	// The paper profile's corruption must stay within the documented
	// envelope: ≤2% dropped samples and ≤0.5% spikes in expectation.
	p := Paper()
	if p.DropRate > 0.02 || p.SpikeRate > 0.005 {
		t.Errorf("paper profile too harsh: drop %v spike %v", p.DropRate, p.SpikeRate)
	}
	prof := p
	prof.DisconnectProb = 0 // measure corruption rates only
	in := New(prof, 42)
	dropped, spiked, total := 0, 0, 0
	for rep := 0; rep < 20; rep++ {
		label := "rate-" + string(rune('a'+rep))
		m := powermon.MobileBoardMeter()
		clean, err := m.Record(powermon.Constant(40), 1, stats.NewStream(99, "meter/"+label))
		if err != nil {
			t.Fatal(err)
		}
		n := clean.SampleCount()
		tr := mustRecord(t, in, label, 99)
		dropped += n - tr.SampleCount()
		// Spikes stand out as >5x the channel's nominal per-sample power.
		for _, ch := range tr.Channels {
			for _, s := range ch.Samples {
				if s.Power().Watts() > 5*40*channelShare(clean, ch.Channel) {
					spiked++
				}
			}
		}
		total += n
	}
	if frac := float64(dropped) / float64(total); frac > 0.04 {
		t.Errorf("dropped fraction %v, want ≤ ~2%% (≤4%% with burst variance)", frac)
	}
	if frac := float64(spiked) / float64(total); frac > 0.012 {
		t.Errorf("spiked fraction %v, want ≤ ~0.5%%", frac)
	}
}

func channelShare(tr *powermon.Trace, name string) float64 {
	for _, ch := range tr.Channels {
		if ch.Channel == name && tr.AvgPower() > 0 {
			return ch.AvgPower().Watts() / tr.AvgPower().Watts()
		}
	}
	return 1
}

func TestSanitizeRecoversPaperCorruption(t *testing.T) {
	// End-to-end over the tentpole's inner loop: corrupt with the paper
	// profile, sanitize, and the average power must come back within 2%
	// of the clean recording (gain drift alone allows ±0.4%).
	prof := Paper()
	prof.DisconnectProb = 0
	in := New(prof, 42)
	m := powermon.MobileBoardMeter()
	clean, err := m.Record(powermon.Constant(40), 1, stats.NewStream(5, "meter/e2e"))
	if err != nil {
		t.Fatal(err)
	}
	want := clean.AvgPower().Watts()
	tr := mustRecord(t, in, "e2e", 5)
	tr.Sanitize()
	got := tr.AvgPower().Watts()
	if math.Abs(got-want)/want > 0.02 {
		t.Errorf("sanitized avg power %v, clean %v (%.2f%% off)", got, want, 100*math.Abs(got-want)/want)
	}
}

func TestByName(t *testing.T) {
	for _, name := range Profiles() {
		p, err := ByName(name)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
		if p.Name != name {
			t.Errorf("ByName(%q).Name = %q", name, p.Name)
		}
	}
	if p, err := ByName(""); err != nil || p.Name != "none" {
		t.Errorf("ByName(\"\") = %v, %v", p, err)
	}
	if _, err := ByName("volcanic"); err == nil {
		t.Error("ByName(volcanic) should fail")
	}
}

func TestRecordRejectsPermanentErrors(t *testing.T) {
	// A misconfigured meter must surface its permanent error, untouched.
	in := New(Paper(), 42)
	m := &powermon.Meter{}
	_, err := in.Record(m, powermon.Constant(1), 1, stats.NewStream(1, "x"), "x")
	if !errors.Is(err, powermon.ErrNoChannels) {
		t.Errorf("err = %v, want ErrNoChannels", err)
	}
	if powermon.IsTransient(err) {
		t.Error("config error must be permanent")
	}
}
