package loadgen

import (
	"math"
	"sort"

	"archline/internal/stats"
)

// zipfPicker draws ranks 0..n-1 with P(k) proportional to 1/(k+1)^s via
// inverse-CDF sampling over a precomputed table. Rank 0 is the hottest.
// The repo's seeded stats.Stream supplies the uniform deviates, so
// draws are deterministic per seed (math/rand's Zipf would drag in a
// second RNG discipline).
type zipfPicker struct {
	cum []float64 // cumulative normalized weights
}

func newZipfPicker(n int, s float64) *zipfPicker {
	if n < 1 {
		n = 1
	}
	cum := make([]float64, n)
	total := 0.0
	for k := 0; k < n; k++ {
		total += 1 / math.Pow(float64(k+1), s)
		cum[k] = total
	}
	for k := range cum {
		cum[k] /= total
	}
	return &zipfPicker{cum: cum}
}

// pick draws one rank.
func (z *zipfPicker) pick(rng *stats.Stream) int {
	x := rng.Float64()
	// The first cumulative weight >= x; Float64 is in [0,1) and the last
	// entry is 1, so the search always lands in range.
	return sort.SearchFloat64s(z.cum, x)
}
