package loadgen

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"archline/internal/stats"
)

// Report is one load run's outcome. The field set is the -json schema:
// scripts parse it, so fields are only ever added, never renamed.
type Report struct {
	DurationS       float64 `json:"duration_s"`
	Requests        int64   `json:"requests"`
	RPS             float64 `json:"rps"`
	OK              int64   `json:"ok"`
	ClientErrors    int64   `json:"client_errors"`
	ServerErrors    int64   `json:"server_errors"`
	Shed            int64   `json:"shed"`
	JobsShed        int64   `json:"jobs_shed"`
	BreakerOpen     int64   `json:"breaker_open"`
	Draining        int64   `json:"draining"`
	TransportErrors int64   `json:"transport_errors"`
	// Canceled counts requests aborted in flight by the run's own
	// deadline — a harness artifact, never a budget violation.
	Canceled int64 `json:"canceled"`
	// Skipped counts open-loop dispatches refused because MaxOutstanding
	// requests were already in flight (client saturation, not a server
	// outcome).
	Skipped int64 `json:"skipped"`

	// Latency quantiles over successful responses, milliseconds.
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`

	// Ops is the per-operation breakdown, name-sorted.
	Ops []OpReport `json:"ops"`
}

// OpReport is one operation's slice of the run.
type OpReport struct {
	Op       string  `json:"op"`
	Requests int64   `json:"requests"`
	OK       int64   `json:"ok"`
	Errors   int64   `json:"errors"`
	P50Ms    float64 `json:"p50_ms"`
	P99Ms    float64 `json:"p99_ms"`
	P999Ms   float64 `json:"p999_ms"`
}

// collect drains the results channel until it closes and aggregates the
// report.
func collect(results <-chan result, start time.Time) Report {
	var rep Report
	lat := []float64{}
	perOp := map[string]*OpReport{}
	perOpLat := map[string][]float64{}
	for r := range results {
		rep.Requests++
		op := perOp[r.op]
		if op == nil {
			op = &OpReport{Op: r.op}
			perOp[r.op] = op
		}
		op.Requests++
		switch r.class {
		case classOK:
			rep.OK++
			op.OK++
			lat = append(lat, r.ms)
			perOpLat[r.op] = append(perOpLat[r.op], r.ms)
		case classClientErr:
			rep.ClientErrors++
			op.Errors++
		case classServerErr:
			rep.ServerErrors++
			op.Errors++
		case classShed:
			rep.Shed++
			op.Errors++
		case classJobsShed:
			rep.JobsShed++
			op.Errors++
		case classBreaker:
			rep.BreakerOpen++
			op.Errors++
		case classDraining:
			rep.Draining++
			op.Errors++
		case classCanceled:
			rep.Canceled++
		default:
			rep.TransportErrors++
			op.Errors++
		}
	}
	rep.DurationS = time.Since(start).Seconds()
	if rep.DurationS > 0 {
		rep.RPS = float64(rep.Requests) / rep.DurationS
	}
	// Quantile returns NaN on an empty sample set, which JSON cannot
	// carry; a run with zero successes reports zero latencies (and fails
	// any budget via the r.OK == 0 check).
	if len(lat) > 0 {
		rep.P50Ms = stats.Quantile(lat, 0.5)
		rep.P99Ms = stats.Quantile(lat, 0.99)
		rep.P999Ms = stats.Quantile(lat, 0.999)
	}
	names := make([]string, 0, len(perOp))
	for name := range perOp {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		op := perOp[name]
		if ol := perOpLat[name]; len(ol) > 0 {
			op.P50Ms = stats.Quantile(ol, 0.5)
			op.P99Ms = stats.Quantile(ol, 0.99)
			op.P999Ms = stats.Quantile(ol, 0.999)
		}
		rep.Ops = append(rep.Ops, *op)
	}
	return rep
}

// Render writes the human-readable table.
func (r Report) Render(w io.Writer) {
	_, _ = fmt.Fprintf(w, "loadgen: %d requests in %.2fs (%.1f req/s), %d ok\n",
		r.Requests, r.DurationS, r.RPS, r.OK)
	_, _ = fmt.Fprintf(w, "  errors: client=%d server=%d transport=%d shed=%d jobs_shed=%d breaker=%d draining=%d canceled=%d skipped=%d\n",
		r.ClientErrors, r.ServerErrors, r.TransportErrors,
		r.Shed, r.JobsShed, r.BreakerOpen, r.Draining, r.Canceled, r.Skipped)
	_, _ = fmt.Fprintf(w, "  latency: p50=%.2fms p99=%.2fms p99.9=%.2fms\n",
		r.P50Ms, r.P99Ms, r.P999Ms)
	_, _ = fmt.Fprintf(w, "  %-10s %8s %8s %8s %10s %10s %10s\n",
		"op", "requests", "ok", "errors", "p50_ms", "p99_ms", "p99.9_ms")
	for _, op := range r.Ops {
		_, _ = fmt.Fprintf(w, "  %-10s %8d %8d %8d %10.2f %10.2f %10.2f\n",
			op.Op, op.Requests, op.OK, op.Errors, op.P50Ms, op.P99Ms, op.P999Ms)
	}
}

// Budget is a committed latency/throughput budget; see
// scripts/load_budget.json. Zero MaxP99Ms, MinRPS, or MaxFlushAgeS
// means that check is skipped; the error ceilings are always enforced
// at their stated value (zero = none allowed).
type Budget struct {
	MaxP99Ms           float64 `json:"max_p99_ms"`
	MinRPS             float64 `json:"min_rps"`
	MaxServerErrors    int64   `json:"max_server_errors"`
	MaxTransportErrors int64   `json:"max_transport_errors"`
	// MaxFlushAgeS bounds archlined_agg_flush_age_seconds in CheckAgg:
	// a daemon whose aggregation flusher lags its interval is failing
	// even if latency looks fine.
	MaxFlushAgeS float64 `json:"max_flush_age_s"`
}

// Check returns the budget violations (empty means within budget).
func (b Budget) Check(r Report) []string {
	var out []string
	if r.OK == 0 {
		out = append(out, "no successful responses at all")
	}
	if b.MaxP99Ms > 0 && r.P99Ms > b.MaxP99Ms {
		out = append(out, fmt.Sprintf("p99 %.2fms exceeds budget %.2fms", r.P99Ms, b.MaxP99Ms))
	}
	if b.MinRPS > 0 && r.RPS < b.MinRPS {
		out = append(out, fmt.Sprintf("throughput %.1f req/s under budget %.1f", r.RPS, b.MinRPS))
	}
	if r.ServerErrors > b.MaxServerErrors {
		out = append(out, fmt.Sprintf("%d server errors exceed budget %d", r.ServerErrors, b.MaxServerErrors))
	}
	if r.TransportErrors > b.MaxTransportErrors {
		out = append(out, fmt.Sprintf("%d transport errors exceed budget %d", r.TransportErrors, b.MaxTransportErrors))
	}
	return out
}

// CheckAgg inspects a /metrics exposition after a load run and returns
// violations of the aggregation pipeline's health contract: per-platform
// counters must have materialized, at least one interval flush must have
// happened, and the last flush must be recent (MaxFlushAgeS; 5s when
// zero).
func (b Budget) CheckAgg(exposition string) []string {
	maxAge := b.MaxFlushAgeS
	if maxAge <= 0 {
		maxAge = 5
	}
	var out []string
	if !strings.Contains(exposition, `archlined_platform_queries_total{platform="`) {
		out = append(out, "no archlined_platform_queries_total series in /metrics")
	}
	flushes, ok := expositionValue(exposition, "archlined_agg_flushes_total")
	switch {
	case !ok:
		out = append(out, "archlined_agg_flushes_total missing from /metrics")
	case flushes < 1:
		out = append(out, "no interval flushes recorded (is the flusher running?)")
	}
	age, ok := expositionValue(exposition, "archlined_agg_flush_age_seconds")
	switch {
	case !ok:
		out = append(out, "archlined_agg_flush_age_seconds missing from /metrics")
	case age > maxAge:
		out = append(out, fmt.Sprintf("flush age %.1fs exceeds %.1fs: the flusher lags its interval", age, maxAge))
	}
	return out
}

// expositionValue finds an unlabelled series' value in a text
// exposition.
func expositionValue(exposition, name string) (float64, bool) {
	for _, line := range strings.Split(exposition, "\n") {
		rest, ok := strings.CutPrefix(line, name+" ")
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			return 0, false
		}
		return v, true
	}
	return 0, false
}
