package loadgen

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"archline/internal/server"
	"archline/internal/stats"
)

// newTestDaemon boots an in-process archlined and returns its base URL
// plus the server (for metrics assertions).
func newTestDaemon(t *testing.T) (*server.Server, string) {
	t.Helper()
	s := server.New(server.Config{})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts.URL
}

// TestRunDeterministicStream checks two equal-seed runs issue the exact
// same operation mix (the request stream is a pure function of the
// seed) and that the standing mix produces only successes against a
// healthy daemon.
func TestRunDeterministicStream(t *testing.T) {
	_, base := newTestDaemon(t)
	cfg := Config{
		BaseURL:     base,
		MaxRequests: 60,
		Duration:    30 * time.Second, // bound by MaxRequests, not time
		Workers:     4,
		Seed:        7,
	}
	rep1, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Requests != 60 || rep2.Requests != 60 {
		t.Fatalf("requests = %d, %d; want 60 each", rep1.Requests, rep2.Requests)
	}
	if rep1.OK != 60 {
		t.Errorf("ok = %d of 60; breakdown %+v", rep1.OK, rep1)
	}
	if len(rep1.Ops) != len(rep2.Ops) {
		t.Fatalf("op sets differ: %d vs %d", len(rep1.Ops), len(rep2.Ops))
	}
	for i := range rep1.Ops {
		a, b := rep1.Ops[i], rep2.Ops[i]
		if a.Op != b.Op || a.Requests != b.Requests {
			t.Errorf("op %d: %s×%d vs %s×%d; the stream must be seed-deterministic",
				i, a.Op, a.Requests, b.Op, b.Requests)
		}
	}
	if rep1.P99Ms <= 0 {
		t.Error("no latency quantiles computed")
	}
}

// TestRunOpenLoop checks the paced mode issues roughly Rate×Duration
// requests and classifies them.
func TestRunOpenLoop(t *testing.T) {
	_, base := newTestDaemon(t)
	rep, err := Run(context.Background(), Config{
		BaseURL:  base,
		Duration: 500 * time.Millisecond,
		Rate:     100,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 {
		t.Fatal("open loop issued no requests")
	}
	if rep.OK == 0 {
		t.Errorf("open loop got no successes: %+v", rep)
	}
	// The pacer cannot overshoot the schedule: at most one dispatch per
	// tick plus the skipped ones.
	if rep.Requests+rep.Skipped > 100 {
		t.Errorf("dispatched %d (+%d skipped) in 0.5s at rate 100; pacing is broken",
			rep.Requests, rep.Skipped)
	}
}

// TestAggContractEndToEnd drives load, flushes the aggregation stage
// the way the daemon's interval flusher would, and checks the /metrics
// health contract the CI gate enforces.
func TestAggContractEndToEnd(t *testing.T) {
	s, base := newTestDaemon(t)
	rep, err := Run(context.Background(), Config{
		BaseURL:     base,
		MaxRequests: 30,
		Duration:    30 * time.Second,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK == 0 {
		t.Fatalf("no successes: %+v", rep)
	}
	s.Metrics().FlushAgg()
	exp := s.Metrics().Render()
	if v := (Budget{}).CheckAgg(exp); len(v) != 0 {
		t.Errorf("agg contract violated after load: %v", v)
	}
	if !strings.Contains(exp, `archlined_platform_queries_total{platform="`) {
		t.Error("per-platform counters did not materialize")
	}
}

// TestParseMix checks override and error behavior.
func TestParseMix(t *testing.T) {
	mix, err := ParseMix("query=1,fit=2")
	if err != nil {
		t.Fatal(err)
	}
	if mix[OpQuery] != 1 || mix[OpFit] != 2 {
		t.Errorf("overrides not applied: %v", mix)
	}
	if mix[OpRoofline] != DefaultMix()[OpRoofline] {
		t.Error("unnamed op lost its default weight")
	}
	for _, bad := range []string{"nope=1", "query", "query=x"} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) accepted", bad)
		}
	}
}

// TestClassify pins the response taxonomy the report counts by.
func TestClassify(t *testing.T) {
	cases := []struct {
		status int
		code   string
		want   string
	}{
		{200, "", classOK},
		{201, "", classOK},
		{202, "", classOK},
		{400, "bad_request", classClientErr},
		{404, "not_found", classClientErr},
		{429, "overloaded", classShed},
		{429, "job_queue_full", classJobsShed},
		{500, "internal", classServerErr},
		{503, "breaker_open", classBreaker},
		{503, "draining", classDraining},
		{503, "", classServerErr},
	}
	for _, c := range cases {
		if got := classify(c.status, c.code); got != c.want {
			t.Errorf("classify(%d, %q) = %s, want %s", c.status, c.code, got, c.want)
		}
	}
}

// TestBudgetCheck checks each limit trips independently.
func TestBudgetCheck(t *testing.T) {
	rep := Report{OK: 100, RPS: 50, P99Ms: 30}
	if v := (Budget{MaxP99Ms: 40, MinRPS: 10}).Check(rep); len(v) != 0 {
		t.Errorf("in-budget report violated: %v", v)
	}
	if v := (Budget{MaxP99Ms: 10}).Check(rep); len(v) != 1 {
		t.Errorf("p99 breach not caught: %v", v)
	}
	if v := (Budget{MinRPS: 100}).Check(rep); len(v) != 1 {
		t.Errorf("rps breach not caught: %v", v)
	}
	rep.ServerErrors = 3
	if v := (Budget{}).Check(rep); len(v) != 1 {
		t.Errorf("server errors not caught by default: %v", v)
	}
	if v := (Budget{MaxServerErrors: 5}).Check(rep); len(v) != 0 {
		t.Errorf("allowed server errors still flagged: %v", v)
	}
	if v := (Budget{}).Check(Report{}); len(v) == 0 {
		t.Error("an all-zero report (no successes) must violate")
	}
}

// TestCheckAggParsing checks the exposition health probe against
// crafted text.
func TestCheckAggParsing(t *testing.T) {
	healthy := strings.Join([]string{
		`archlined_platform_queries_total{platform="gtx-titan"} 5`,
		`archlined_agg_flushes_total 3`,
		`archlined_agg_flush_age_seconds 0.5`,
	}, "\n")
	if v := (Budget{}).CheckAgg(healthy); len(v) != 0 {
		t.Errorf("healthy exposition flagged: %v", v)
	}
	stale := strings.ReplaceAll(healthy,
		"archlined_agg_flush_age_seconds 0.5", "archlined_agg_flush_age_seconds 60")
	if v := (Budget{MaxFlushAgeS: 2}).CheckAgg(stale); len(v) != 1 {
		t.Errorf("stale flush not caught: %v", v)
	}
	if v := (Budget{}).CheckAgg("nothing here"); len(v) != 3 {
		t.Errorf("empty exposition should trip all three checks: %v", v)
	}
}

// TestZipfPicker checks the rank distribution is head-heavy and
// deterministic.
func TestZipfPicker(t *testing.T) {
	z := newZipfPicker(12, 1.1)
	counts := make([]int, 12)
	rng := stats.NewStream(42, "zipf-test")
	for i := 0; i < 10000; i++ {
		counts[z.pick(rng)]++
	}
	if counts[0] <= counts[5] || counts[0] <= counts[11] {
		t.Errorf("rank 0 not hottest: %v", counts)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 10000 {
		t.Fatalf("picks out of range: %v", counts)
	}
	// Same stream, same draws.
	z2 := newZipfPicker(12, 1.1)
	r1, r2 := stats.NewStream(9, "a"), stats.NewStream(9, "a")
	for i := 0; i < 100; i++ {
		if z2.pick(r1) != z2.pick(r2) {
			t.Fatal("zipf draws are not deterministic per stream")
		}
	}
}
