// Package loadgen drives synthetic traffic against a running archlined
// daemon. It exists so latency budgets can be enforced in CI and so
// capacity questions ("what does this box serve at p99 < 50ms?") are
// answerable with a committed, reproducible tool instead of an ad-hoc
// curl loop.
//
// The generator draws a deterministic request stream from a seeded
// stats.Stream: operations come from a weighted mix, platform ids from
// a zipf-ranked distribution (a few hot platforms take most of the
// traffic, a long tail keeps the cache honest, the statistical shape of
// real dashboard traffic), and query intensities from a quantized
// log-spaced grid so repeated draws actually hit the response cache.
// Two pacing disciplines are supported:
//
//   - closed loop (Rate == 0): Workers goroutines issue requests
//     back-to-back, measuring the daemon's saturation throughput;
//   - open loop (Rate > 0): a pacer dispatches requests on a fixed
//     schedule regardless of completions, measuring latency at a given
//     offered load — the discipline that exposes queueing collapse,
//     which closed-loop generators structurally cannot see.
//
// Responses are classified by status code and the JSON error envelope's
// code field, so load shedding (429 overloaded), job-queue sheds (429
// job_queue_full), breaker trips (503 breaker_open), and drains (503
// draining) are counted as themselves rather than smeared into a
// generic error bucket. Latency quantiles are computed with
// internal/stats.Quantile, the same estimator as the paper's boxplots.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"archline/internal/machine"
	"archline/internal/stats"
)

// Op names, also the JSON keys of the mix flag.
const (
	OpQuery     = "query"
	OpRoofline  = "roofline"
	OpCompare   = "compare"
	OpWhatIf    = "whatif"
	OpBatch     = "batch"
	OpPlatforms = "platforms"
	OpFit       = "fit"
	OpUpload    = "upload"
)

// DefaultMix is the standing query mix: read-heavy model queries with a
// sprinkle of list traffic, no async jobs and no uploads (those are
// opt-in slices — a fit job costs seconds of daemon CPU and uploads
// need a daemon with -data-dir).
func DefaultMix() map[string]float64 {
	return map[string]float64{
		OpQuery:     45,
		OpRoofline:  15,
		OpCompare:   10,
		OpWhatIf:    10,
		OpBatch:     10,
		OpPlatforms: 10,
		OpFit:       0,
		OpUpload:    0,
	}
}

// Config tunes one load run.
type Config struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Duration bounds the run. Zero means 5s.
	Duration time.Duration
	// Workers is the closed-loop concurrency (and the open-loop
	// executor-pool floor). Zero means 4.
	Workers int
	// Rate, when positive, switches to open-loop pacing at this many
	// requests per second.
	Rate float64
	// MaxOutstanding caps concurrently executing requests in open-loop
	// mode; dispatches past the cap are counted Skipped instead of
	// queueing client-side (which would silently turn the open loop
	// closed). Zero means max(64, 4*Rate).
	MaxOutstanding int
	// Seed drives every random draw. Same seed, same request stream.
	Seed uint64
	// Mix maps op names to weights; zero-weight ops never fire. Nil
	// means DefaultMix. Unknown names are an error.
	Mix map[string]float64
	// Platforms is the platform-id pool, hottest first (zipf rank 0 is
	// the most queried). Nil means the Table I built-ins.
	Platforms []string
	// Timeout bounds each request. Zero means 5s.
	Timeout time.Duration
	// MaxRequests, when positive, stops the stream after that many
	// requests even if Duration has not elapsed (tests use this for
	// exact determinism).
	MaxRequests int
}

// withDefaults fills zero fields and validates the mix.
func (c Config) withDefaults() (Config, error) {
	if c.BaseURL == "" {
		return c, fmt.Errorf("loadgen: BaseURL is required")
	}
	if c.Duration <= 0 {
		c.Duration = 5 * time.Second
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Timeout <= 0 {
		c.Timeout = 5 * time.Second
	}
	if c.Mix == nil {
		c.Mix = DefaultMix()
	}
	known := DefaultMix()
	// Sorted iteration: the float sum must not depend on map order.
	ops := make([]string, 0, len(c.Mix))
	for op := range c.Mix {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	total := 0.0
	for _, op := range ops {
		w := c.Mix[op]
		if _, ok := known[op]; !ok {
			return c, fmt.Errorf("loadgen: unknown op %q in mix", op)
		}
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return c, fmt.Errorf("loadgen: op %q has weight %v; want finite and >= 0", op, w)
		}
		total += w
	}
	if total <= 0 {
		return c, fmt.Errorf("loadgen: mix has no positive weights")
	}
	if len(c.Platforms) == 0 {
		for _, p := range machine.All() {
			c.Platforms = append(c.Platforms, string(p.ID))
		}
	}
	if c.MaxOutstanding <= 0 {
		c.MaxOutstanding = 64
		if n := int(4 * c.Rate); n > c.MaxOutstanding {
			c.MaxOutstanding = n
		}
	}
	return c, nil
}

// ParseMix parses a "query=50,roofline=20" flag value over DefaultMix:
// named ops are overridden, unnamed ops keep their default weight.
func ParseMix(s string) (map[string]float64, error) {
	mix := DefaultMix()
	if s == "" {
		return mix, nil
	}
	for _, part := range splitComma(s) {
		name, val, ok := cutEq(part)
		if !ok {
			return nil, fmt.Errorf("loadgen: mix entry %q is not name=weight", part)
		}
		if _, known := mix[name]; !known {
			return nil, fmt.Errorf("loadgen: unknown op %q in mix", name)
		}
		w, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("loadgen: mix weight for %q: %v", name, err)
		}
		mix[name] = w
	}
	return mix, nil
}

func splitComma(s string) []string {
	var out []string
	for len(s) > 0 {
		i := 0
		for i < len(s) && s[i] != ',' {
			i++
		}
		out = append(out, s[:i])
		if i == len(s) {
			break
		}
		s = s[i+1:]
	}
	return out
}

func cutEq(s string) (name, val string, ok bool) {
	for i := 0; i < len(s); i++ {
		if s[i] == '=' {
			return s[:i], s[i+1:], true
		}
	}
	return "", "", false
}

// intensityGrid is the quantized log-spaced intensity pool, 1/8 to 512
// flop/byte in 64 steps: wide enough to cross every platform's balance
// points, quantized so repeated draws share response-cache slots.
var intensityGrid = func() []float64 {
	out := make([]float64, 64)
	for i := range out {
		out[i] = 0.125 * math.Pow(2, float64(i)*13.0/63.0)
	}
	return out
}()

// pointsGrid quantizes sweep sizes the same way.
var pointsGrid = []int{17, 33, 65}

// spec is one generated request, fully determined by the seed.
type spec struct {
	op     string
	method string
	path   string
	body   []byte
}

// generator derives the deterministic request stream.
type generator struct {
	rng       *stats.Stream
	ops       []string  // positive-weight ops, name-sorted
	cum       []float64 // cumulative weights over ops
	platforms []string
	zipf      *zipfPicker
	uploads   [][]byte // pre-rendered upload bodies, cycled through
	uploadN   int
}

func newGenerator(cfg Config) (*generator, error) {
	g := &generator{
		rng:       stats.NewStream(cfg.Seed, "loadgen"),
		platforms: cfg.Platforms,
		zipf:      newZipfPicker(len(cfg.Platforms), 1.1),
	}
	// Name-sorted op order makes the cumulative table (and so the whole
	// stream) independent of map iteration order.
	names := make([]string, 0, len(cfg.Mix))
	for op := range cfg.Mix {
		names = append(names, op)
	}
	sort.Strings(names)
	total := 0.0
	for _, op := range names {
		if cfg.Mix[op] <= 0 {
			continue
		}
		total += cfg.Mix[op]
		g.ops = append(g.ops, op)
		g.cum = append(g.cum, total)
	}
	if cfg.Mix[OpUpload] > 0 {
		if err := g.renderUploads(); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// renderUploads pre-builds a small pool of upload bodies: Table I
// platforms re-identified as loadgen-<n>, so a run cycles through
// creates and re-uploads (re-uploads are the interesting case — they
// trigger invalidation sweeps).
func (g *generator) renderUploads() error {
	all := machine.All()
	for i := 0; i < 8; i++ {
		canon, err := machine.Canonical(all[i%len(all)])
		if err != nil {
			return fmt.Errorf("loadgen: rendering upload body: %v", err)
		}
		var doc map[string]any
		if err := json.Unmarshal(canon, &doc); err != nil {
			return fmt.Errorf("loadgen: re-keying upload body: %v", err)
		}
		doc["id"] = "loadgen-" + strconv.Itoa(i)
		doc["name"] = "loadgen synthetic " + strconv.Itoa(i)
		body, err := json.Marshal(doc)
		if err != nil {
			return fmt.Errorf("loadgen: re-keying upload body: %v", err)
		}
		g.uploads = append(g.uploads, body)
	}
	return nil
}

// pickOp draws an op from the weighted mix.
func (g *generator) pickOp() string {
	x := g.rng.Float64() * g.cum[len(g.cum)-1]
	for i, c := range g.cum {
		if x < c {
			return g.ops[i]
		}
	}
	return g.ops[len(g.ops)-1]
}

// platform draws a platform id, zipf-ranked.
func (g *generator) platform() string {
	return g.platforms[g.zipf.pick(g.rng)]
}

// intensity draws from the quantized grid.
func (g *generator) intensity() float64 {
	return intensityGrid[g.rng.Intn(len(intensityGrid))]
}

// queryItem builds one /v1/query body value.
func (g *generator) queryItem() map[string]any {
	return map[string]any{
		"platform_id": g.platform(),
		"intensity":   g.intensity(),
	}
}

// next builds the next request spec.
func (g *generator) next() spec {
	op := g.pickOp()
	switch op {
	case OpQuery:
		return jsonSpec(op, "/v1/query", g.queryItem())
	case OpRoofline:
		pts := pointsGrid[g.rng.Intn(len(pointsGrid))]
		return spec{op: op, method: http.MethodGet,
			path: "/v1/platforms/" + g.platform() + "/roofline?points=" + strconv.Itoa(pts)}
	case OpCompare:
		return jsonSpec(op, "/v1/compare", map[string]any{
			"a":      map[string]any{"platform_id": g.platform()},
			"b":      map[string]any{"platform_id": g.platform()},
			"points": pointsGrid[g.rng.Intn(len(pointsGrid))],
		})
	case OpWhatIf:
		return jsonSpec(op, "/v1/whatif", map[string]any{
			"kind":     "throttle",
			"platform": map[string]any{"platform_id": g.platform()},
		})
	case OpBatch:
		n := 3 + g.rng.Intn(6)
		items := make([]map[string]any, n)
		for i := range items {
			items[i] = g.queryItem()
		}
		return jsonSpec(op, "/v1/batch", map[string]any{"items": items})
	case OpPlatforms:
		return spec{op: op, method: http.MethodGet, path: "/v1/platforms"}
	case OpFit:
		// The cheapest fit that still exercises the whole async path.
		return jsonSpec(op, "/v1/fit", map[string]any{
			"platform_id":  g.platform(),
			"repeats":      1,
			"sweep_points": 16,
		})
	case OpUpload:
		g.uploadN++
		return spec{op: op, method: http.MethodPost, path: "/v1/platforms",
			body: g.uploads[g.uploadN%len(g.uploads)]}
	}
	panic("loadgen: unreachable op " + op)
}

// jsonSpec marshals a POST body. The maps marshal key-sorted
// (encoding/json), so bodies are byte-deterministic per draw.
func jsonSpec(op, path string, v any) spec {
	body, err := json.Marshal(v)
	if err != nil {
		// Everything marshalled here is maps of strings and floats.
		panic("loadgen: marshal: " + err.Error())
	}
	return spec{op: op, method: http.MethodPost, path: path, body: body}
}

// result is one finished request's classification.
type result struct {
	op    string
	class string
	ms    float64
}

// Response classes.
const (
	classOK        = "ok"
	classClientErr = "client_error"
	classServerErr = "server_error"
	classShed      = "shed"
	classJobsShed  = "jobs_shed"
	classBreaker   = "breaker_open"
	classDraining  = "draining"
	classTransport = "transport_error"
	// classCanceled marks requests aborted because the run's own clock
	// expired mid-flight — a harness artifact, not a server outcome, so
	// it is reported separately and never counts against a budget.
	classCanceled = "canceled"
)

// classify maps a response to its class; code is the error envelope's
// code field ("" when absent or unparsable).
func classify(status int, code string) string {
	switch {
	case status >= 200 && status < 300:
		return classOK
	case status == http.StatusTooManyRequests && code == "job_queue_full":
		return classJobsShed
	case status == http.StatusTooManyRequests:
		return classShed
	case status == http.StatusServiceUnavailable && code == "breaker_open":
		return classBreaker
	case status == http.StatusServiceUnavailable && code == "draining":
		return classDraining
	case status >= 500:
		return classServerErr
	default:
		return classClientErr
	}
}

// Run executes one load run and reports. The context cancels early
// (the run otherwise stops at cfg.Duration or cfg.MaxRequests).
func Run(ctx context.Context, cfg Config) (Report, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return Report{}, err
	}
	gen, err := newGenerator(cfg)
	if err != nil {
		return Report{}, err
	}
	client := &http.Client{
		Timeout: cfg.Timeout,
		Transport: &http.Transport{
			MaxIdleConns:        cfg.Workers + cfg.MaxOutstanding,
			MaxIdleConnsPerHost: cfg.Workers + cfg.MaxOutstanding,
		},
	}
	defer client.CloseIdleConnections()

	ctx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()

	// The generator goroutine owns the RNG; workers own the wire. The
	// spec sequence is therefore deterministic per seed regardless of
	// worker scheduling — only the assignment of specs to workers varies.
	specs := make(chan spec, cfg.Workers)
	go func() {
		defer close(specs)
		for n := 0; cfg.MaxRequests <= 0 || n < cfg.MaxRequests; n++ {
			sp := gen.next()
			select {
			case specs <- sp:
			case <-ctx.Done():
				return
			}
		}
	}()

	results := make(chan result, 256)
	var skipped int64
	var wg sync.WaitGroup
	start := time.Now()
	// The collector must be draining before the first dispatch: a full
	// results buffer would otherwise block executors and silently turn
	// the open loop closed.
	done := make(chan Report, 1)
	go func() { done <- collect(results, start) }()
	if cfg.Rate > 0 {
		skipped = runOpenLoop(ctx, cfg, client, specs, results, &wg)
	} else {
		for w := 0; w < cfg.Workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for sp := range specs {
					// The generator may have left buffered specs behind when
					// the deadline hit; issuing them would only manufacture
					// canceled results.
					if ctx.Err() != nil {
						return
					}
					results <- execute(ctx, client, cfg.BaseURL, sp)
				}
			}()
		}
	}
	wg.Wait()
	close(results)
	rep := <-done
	rep.Skipped = skipped
	return rep, nil
}

// runOpenLoop paces dispatches at cfg.Rate per second. Each dispatch
// runs in its own goroutine (completions do not gate the schedule); the
// MaxOutstanding semaphore only protects the client from unbounded
// goroutine growth, and a dispatch that cannot get a slot is counted
// skipped, not queued. Returns the skip count after all dispatches
// finish (wg tracks the in-flight executors).
func runOpenLoop(ctx context.Context, cfg Config, client *http.Client,
	specs <-chan spec, results chan<- result, wg *sync.WaitGroup) int64 {
	interval := time.Duration(float64(time.Second) / cfg.Rate)
	if interval <= 0 {
		interval = time.Microsecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	sem := make(chan struct{}, cfg.MaxOutstanding)
	var skipped int64
	for {
		select {
		case <-ctx.Done():
			return skipped
		case <-tick.C:
			sp, ok := <-specs
			if !ok {
				return skipped
			}
			select {
			case sem <- struct{}{}:
			default:
				skipped++
				continue
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				results <- execute(ctx, client, cfg.BaseURL, sp)
			}()
		}
	}
}

// execute performs one request and classifies the outcome.
func execute(ctx context.Context, client *http.Client, base string, sp spec) result {
	var body io.Reader
	if sp.body != nil {
		body = bytes.NewReader(sp.body)
	}
	req, err := http.NewRequestWithContext(ctx, sp.method, base+sp.path, body)
	if err != nil {
		return result{op: sp.op, class: classTransport}
	}
	if sp.body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	t0 := time.Now()
	resp, err := client.Do(req)
	ms := float64(time.Since(t0)) / float64(time.Millisecond)
	if err != nil {
		// The run deadline aborting an in-flight request is the harness
		// stopping, not the daemon failing; a per-request timeout with the
		// run clock still live stays a transport error.
		if ctx.Err() != nil {
			return result{op: sp.op, class: classCanceled, ms: ms}
		}
		return result{op: sp.op, class: classTransport, ms: ms}
	}
	code := ""
	if resp.StatusCode >= 400 {
		var env struct {
			Error struct {
				Code string `json:"code"`
			} `json:"error"`
		}
		if jerr := json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&env); jerr == nil {
			code = env.Error.Code
		}
	}
	// Drain so the connection is reusable.
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	return result{op: sp.op, class: classify(resp.StatusCode, code), ms: ms}
}
