package server

import (
	"compress/gzip"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
)

// gzipMinBytes is the smallest response body worth compressing: below
// this the gzip frame overhead and the extra CPU beat the transfer
// saving. Error envelopes and small query responses go out raw.
const gzipMinBytes = 1024

// gzipWriters recycles compressors across requests; a gzip.Writer's
// allocation dwarfs a small response body.
var gzipWriters = sync.Pool{
	New: func() any { return gzip.NewWriter(io.Discard) },
}

// acceptsGzip reports whether the request negotiated gzip via
// Accept-Encoding. Parsing is deliberately small: any "gzip" (or "*")
// token accepts unless its q-value is explicitly zero.
func acceptsGzip(r *http.Request) bool {
	for _, part := range strings.Split(r.Header.Get("Accept-Encoding"), ",") {
		enc, params, hasParams := strings.Cut(strings.TrimSpace(part), ";")
		enc = strings.TrimSpace(enc)
		if !strings.EqualFold(enc, "gzip") && enc != "*" {
			continue
		}
		if hasParams {
			if v, ok := strings.CutPrefix(strings.ReplaceAll(params, " ", ""), "q="); ok {
				if q, err := strconv.ParseFloat(v, 64); err == nil && q == 0 {
					return false
				}
			}
		}
		return true
	}
	return false
}

// writeResponseNegotiated emits an encoded body, gzip-compressed when
// the client negotiated it and the body is large enough to profit. The
// cache stores bodies uncompressed (one canonical form, byte-identical
// hits for every client), so compression happens at write time.
func writeResponseNegotiated(w http.ResponseWriter, r *http.Request, resp *cachedResponse) {
	if len(resp.body) < gzipMinBytes || !acceptsGzip(r) {
		writeResponse(w, resp)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Encoding", "gzip")
	w.Header().Add("Vary", "Accept-Encoding")
	w.WriteHeader(resp.status)
	gz := gzipWriters.Get().(*gzip.Writer)
	gz.Reset(w)
	// A failed write means the client went away; same no-recovery rule
	// as writeResponse.
	_, _ = gz.Write(resp.body)
	_ = gz.Close()
	gzipWriters.Put(gz)
}
