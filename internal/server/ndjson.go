package server

import (
	"math"
	"strconv"
	"sync"

	"archline/internal/model"
)

// The stream hot path hand-rolls its chunk lines instead of reflecting
// through encoding/json: the chunk schema is fixed, so an append-based
// encoder writing into a pooled buffer makes a flushed chunk cost zero
// allocations. The byte output is identical to what json.Encoder
// produces for the equivalent streamChunk value — same float
// formatting, same field order, same omission rules, same
// drop-the-whole-line behaviour on non-finite values — which the
// encoder tests and the stream golden test pin, so clients cannot tell
// the encoders apart.

// pointBufs recycles per-chunk evaluation buffers. Capacity is
// maxChunkPoints, the largest chunk a request may ask for, so
// Kernel.AppendLogSpace never grows one.
var pointBufs = sync.Pool{
	New: func() any {
		b := make([]model.Point, 0, maxChunkPoints)
		return &b
	},
}

// lineBufs recycles NDJSON chunk line buffers. A line may outgrow the
// initial capacity (maxChunkPoints-sized chunks run ~400 KiB); callers
// put the grown slice back so the pool converges on the working size.
var lineBufs = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 1<<14)
		return &b
	},
}

// appendJSONFloat appends f rendered exactly as encoding/json renders a
// float64: shortest round-trip form, 'f' format switching to 'e' for
// very small or very large magnitudes, with the exponent's leading zero
// stripped. It reports false for non-finite values — encoding/json
// refuses to marshal those — and the caller must then drop the whole
// line (dst may hold a partial append).
func appendJSONFloat(dst []byte, f float64) ([]byte, bool) {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return dst, false
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, f, format, -1, 64)
	if format == 'e' {
		// encoding/json canonicalizes exponents: e-07 becomes e-7.
		if n := len(dst); n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst, true
}

// appendStreamPoint appends one point object in the rooflinePoint wire
// schema. The omission rules replicate the struct tags byte for byte:
// uncapped_flops_per_sec is omitempty (dropped when zero) and throttle
// is the nf-boxed pointer (dropped when non-finite, kept when finite —
// including zero). The regime letter is appended unescaped, which is
// exact because Regime.Letter returns single ASCII letters that JSON
// string encoding passes through verbatim.
func appendStreamPoint(dst []byte, pt model.Point) ([]byte, bool) {
	var ok bool
	dst = append(dst, `{"intensity":`...)
	if dst, ok = appendJSONFloat(dst, pt.Intensity); !ok {
		return dst, false
	}
	dst = append(dst, `,"regime":"`...)
	dst = append(dst, pt.Regime.Letter()...)
	dst = append(dst, `","flops_per_sec":`...)
	if dst, ok = appendJSONFloat(dst, pt.FlopsPerSec); !ok {
		return dst, false
	}
	if pt.UncappedFlopsPerSec != 0 {
		dst = append(dst, `,"uncapped_flops_per_sec":`...)
		if dst, ok = appendJSONFloat(dst, pt.UncappedFlopsPerSec); !ok {
			return dst, false
		}
	}
	dst = append(dst, `,"flops_per_joule":`...)
	if dst, ok = appendJSONFloat(dst, pt.FlopsPerJoule); !ok {
		return dst, false
	}
	dst = append(dst, `,"avg_power_w":`...)
	if dst, ok = appendJSONFloat(dst, pt.AvgPowerW); !ok {
		return dst, false
	}
	if !math.IsNaN(pt.Throttle) && !math.IsInf(pt.Throttle, 0) {
		dst = append(dst, `,"throttle":`...)
		dst, _ = appendJSONFloat(dst, pt.Throttle)
	}
	return append(dst, '}'), true
}

// appendStreamChunk appends one full NDJSON chunk line (newline
// included) for chunk seq. A false report means some required value was
// non-finite: json.Encoder would have failed the whole Encode and
// written nothing, so the caller drops the line — the chunk still
// counts toward the trailer totals, exactly as the silently ignored
// Encode error used to behave.
func appendStreamChunk(dst []byte, seq int, pts []model.Point) ([]byte, bool) {
	var ok bool
	dst = append(dst, `{"seq":`...)
	dst = strconv.AppendInt(dst, int64(seq), 10)
	dst = append(dst, `,"points":[`...)
	for i := range pts {
		if i > 0 {
			dst = append(dst, ',')
		}
		if dst, ok = appendStreamPoint(dst, pts[i]); !ok {
			return dst, false
		}
	}
	return append(dst, ']', '}', '\n'), true
}
