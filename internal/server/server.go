// Package server implements archlined, the HTTP/JSON query service over
// the energy-roofline engine. It exposes the capped model of eqs. (1)-(7),
// the Table I platform database, and the what-if scenario machinery as a
// long-running daemon, so interactive clients can query time, energy, and
// power predictions instead of re-running the one-shot CLI.
//
// Endpoints:
//
//	GET  /v1/platforms                      Table I database
//	GET  /v1/platforms/{id}/roofline        eq. (1)-(7) sweep over intensity
//	POST /v1/query                          time/energy/power at (W, Q) or I
//	POST /v1/batch                          N query items, one round-trip
//	POST /v1/sweep/stream                   NDJSON roofline sweep, flushed in chunks
//	POST /v1/compare                        fig. 1 crossover analysis
//	POST /v1/whatif                         throttle / bound / aggregate scenarios
//	POST /v1/fit                            submit an async measure→fit job (202 + job ID)
//	GET  /v1/jobs/{id}                      poll a job; terminal body carries the fit
//	GET  /v1/jobs/{id}/events               follow job progress as NDJSON
//	DELETE /v1/jobs/{id}                    cancel a queued or running job
//	GET  /healthz                           liveness
//	GET  /metrics                           counters, latency quantiles, cache stats
//
// Every buffered /v1 response is a pure function of the request, so the
// server keeps an LRU cache keyed on the canonicalized request and
// deduplicates concurrent identical computations singleflight-style: N
// simultaneous requests for the same sweep cost one model evaluation,
// and the N items of one /v1/batch flow through the same cache and
// flight group item by item. Responses negotiate gzip via
// Accept-Encoding. The package uses only the Go standard library.
package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"

	"archline/internal/jobs"
	"archline/internal/obs"
	"archline/internal/registry"
)

// Config tunes the daemon.
type Config struct {
	// Addr is the listen address (host:port). Port 0 picks an ephemeral
	// port; the bound address is printed on startup.
	Addr string
	// MaxBodyBytes caps request body size; larger bodies get 413.
	MaxBodyBytes int64
	// RequestTimeout bounds each request's handling via its context.
	RequestTimeout time.Duration
	// CacheEntries is the response LRU capacity (entries, not bytes).
	CacheEntries int
	// DrainTimeout bounds the graceful-shutdown drain of in-flight
	// requests.
	DrainTimeout time.Duration
	// MaxInFlight caps concurrent requests before /v1 load shedding
	// answers 429 + Retry-After. Zero means DefaultMaxInFlight;
	// negative disables shedding.
	MaxInFlight int
	// BatchWorkers bounds the per-request worker pool evaluating
	// /v1/batch items. Zero means NumCPU (pool.Clamp semantics); the
	// pool never exceeds the batch's item count.
	BatchWorkers int
	// BreakerWindow, BreakerErrRate, BreakerMinSamples, and
	// BreakerCooldown tune the /v1 circuit breaker; zero fields take
	// the resilience defaults.
	BreakerWindow     time.Duration
	BreakerErrRate    float64
	BreakerMinSamples int
	BreakerCooldown   time.Duration
	// ChaosProfile, when set to a fault-profile name ("paper",
	// "harsh"), turns on the chaos middleware: seeded synthetic 500s
	// and latency spikes on /v1 routes. Never enabled implicitly; ""
	// and "none" mean off.
	ChaosProfile string
	// ChaosSeed seeds the chaos draws for reproducible chaos runs.
	ChaosSeed uint64
	// TraceWriter, when non-nil, receives every finished span as one
	// NDJSON line (the archlined -trace-log flag). Nil disables tracing.
	TraceWriter io.Writer
	// LogWriter, when non-nil, receives structured JSON log records
	// (slog). Nil silences the structured log; the plain-text startup
	// announcements on stdout/stderr are unaffected.
	LogWriter io.Writer
	// EnablePprof mounts net/http/pprof under /debug/pprof/. Off by
	// default: profiling endpoints are a diagnostic surface, not part of
	// the public API.
	EnablePprof bool
	// JobWorkers bounds how many async fit jobs execute concurrently.
	// Zero takes the jobs-package default (2, clamped to the CPU count).
	JobWorkers int
	// JobQueueDepth caps how many submitted jobs may wait beyond the
	// running ones; a submit past the cap is shed with 429. Zero takes
	// the jobs-package default; negative disables queueing entirely.
	JobQueueDepth int
	// JobTTL is how long finished jobs stay pollable before eviction.
	// Zero takes the jobs-package default (15 minutes).
	JobTTL time.Duration
	// DataDir, when set, is the persistent platform-registry directory
	// (the archlined -data-dir flag): uploaded platforms are committed
	// there crash-safely and recovered on startup. Empty keeps the
	// registry in memory — built-ins still resolve through it, but
	// POST /v1/platforms answers 503.
	DataDir string
	// RegistryShards is how many consistent-hash shards the registry
	// index splits into; the response cache splits its lock domains the
	// same number of ways. Zero takes registry.DefaultShards.
	RegistryShards int
	// AggFlushInterval is how often the metric aggregation stage drains
	// into the exposition registry (the archlined -agg-flush flag). Zero
	// means DefaultAggFlushInterval; /metrics scrapes additionally drain
	// on demand, so this bounds staleness, not visibility.
	AggFlushInterval time.Duration
}

// Defaults for zero Config fields.
const (
	DefaultAddr           = ":8080"
	DefaultMaxBodyBytes   = 1 << 20 // 1 MiB: platform JSON is ~1 KiB
	DefaultRequestTimeout = 10 * time.Second
	DefaultCacheEntries   = 512
	DefaultDrainTimeout   = 5 * time.Second
	// DefaultAggFlushInterval is the metric aggregation drain cadence: one
	// second keeps worst-case exposition staleness inside a scrape
	// interval while amortizing the registry-lock cost over every request
	// that landed in between.
	DefaultAggFlushInterval = time.Second
)

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = DefaultAddr
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = DefaultRequestTimeout
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = DefaultCacheEntries
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = DefaultDrainTimeout
	}
	if c.MaxInFlight == 0 {
		c.MaxInFlight = DefaultMaxInFlight
	}
	if c.AggFlushInterval <= 0 {
		c.AggFlushInterval = DefaultAggFlushInterval
	}
	return c
}

// Server is the archlined service: routing, response cache, in-flight
// deduplication, and metrics.
type Server struct {
	cfg      Config
	mux      *http.ServeMux
	cache    *shardedCache
	kernels  *kernelCache
	flights  *flightGroup
	metrics  *Metrics
	breaker  *circuitBreaker
	jobs     *jobs.Engine
	registry *registry.Registry
	chaos    *chaosInjector
	tracer   *obs.Tracer // nil unless Config.TraceWriter is set
	log      *slog.Logger
	// initErr holds a construction failure (e.g. an unknown chaos
	// profile); Run surfaces it before listening.
	initErr error

	// testHookEval, when set before the server starts, runs inside every
	// model evaluation (cache-miss compute). Tests use it to hold a
	// request in flight.
	testHookEval func()
}

// New builds a Server from the config (zero fields take defaults).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	shards := cfg.RegistryShards
	if shards <= 0 {
		shards = registry.DefaultShards
	}
	s := &Server{
		cfg:     cfg,
		mux:     http.NewServeMux(),
		cache:   newShardedCache(cfg.CacheEntries, shards),
		kernels: newKernelCache(cfg.CacheEntries),
		flights: newFlightGroup(),
		metrics: NewMetrics(),
		breaker: newCircuitBreaker(cfg.BreakerWindow, cfg.BreakerErrRate,
			cfg.BreakerMinSamples, cfg.BreakerCooldown, nil),
		jobs: jobs.New(jobs.Config{
			Workers:    cfg.JobWorkers,
			QueueDepth: cfg.JobQueueDepth,
			TTL:        cfg.JobTTL,
		}),
	}
	s.chaos, s.initErr = newChaosInjector(cfg.ChaosProfile, cfg.ChaosSeed, nil)
	// The registry is the single platform-resolution path: built-ins
	// always, plus durable uploads when a data directory is configured.
	var regErr error
	if cfg.DataDir != "" {
		s.registry, regErr = registry.Open(cfg.DataDir, shards)
	} else {
		s.registry, regErr = registry.OpenMemory(shards)
	}
	if regErr != nil {
		if s.initErr == nil {
			s.initErr = regErr
		}
		// Keep the server structurally complete so tests and embedders
		// holding a *Server never nil-deref; Run refuses to start.
		s.registry, _ = registry.OpenMemory(shards)
	}
	if s.registry != nil {
		// Runs under the owning registry shard's lock: the version bump
		// and the eviction of every response keyed to the retired
		// version are one atomic step from any resolver's viewpoint.
		s.registry.SetInvalidator(func(id string, _ uint64) {
			frag := "id:" + id + "@v"
			s.cache.invalidate(func(key string) bool {
				return strings.Contains(key, frag)
			})
		})
		s.metrics.registryProbe = s.registry.Stats
	}
	s.metrics.breakerProbe = s.breaker.snapshot
	s.metrics.jobsProbe = s.jobs.Stats
	if cfg.TraceWriter != nil {
		s.tracer = obs.NewTracer(cfg.TraceWriter)
		s.metrics.tracerProbe = s.tracer.Stats
	}
	if cfg.LogWriter != nil {
		s.log, s.metrics.logProbe = obs.NewCountedLogger(cfg.LogWriter)
	} else {
		s.log = obs.NopLogger()
	}
	s.handle("/healthz", methodHandlers{"GET": s.handleHealthz})
	s.handle("/metrics", methodHandlers{"GET": s.handleMetrics})
	s.handle("/v1/platforms", methodHandlers{"GET": s.handlePlatforms, "POST": s.handlePlatformUpload})
	s.handle("/v1/platforms/{id}", methodHandlers{"GET": s.handlePlatformGet, "DELETE": s.handlePlatformDelete})
	s.handle("/v1/platforms/{id}/roofline", methodHandlers{"GET": s.handleRoofline})
	s.handle("/v1/query", methodHandlers{"POST": s.handleQuery})
	s.handle("/v1/batch", methodHandlers{"POST": s.handleBatch})
	s.handle("/v1/sweep/stream", methodHandlers{"POST": s.handleSweepStream})
	s.handle("/v1/compare", methodHandlers{"POST": s.handleCompare})
	s.handle("/v1/whatif", methodHandlers{"POST": s.handleWhatIf})
	s.handle("/v1/fit", methodHandlers{"POST": s.handleFitSubmit})
	s.handle("/v1/jobs/{id}", methodHandlers{"GET": s.handleJobGet, "DELETE": s.handleJobCancel})
	s.handle("/v1/jobs/{id}/events", methodHandlers{"GET": s.handleJobEvents})
	if cfg.EnablePprof {
		// Mounted raw (no serveInstrumented): pprof handlers stream for
		// seconds and must not count against the request timeout, the
		// shed ceiling, or the latency metrics.
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	s.mux.HandleFunc("/", s.handleNotFound)
	return s
}

// Handler returns the fully wrapped HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics exposes the server's metrics registry (for tests and embedding).
func (s *Server) Metrics() *Metrics { return s.metrics }

// ModelEvals reports how many cache-missed model evaluations have run —
// the observable the dedup/cache tests assert on.
func (s *Server) ModelEvals() int64 { return s.metrics.ModelEvals() }

// noteEval records one underlying model evaluation.
func (s *Server) noteEval() {
	s.metrics.noteEval()
	if s.testHookEval != nil {
		s.testHookEval()
	}
}

// handle registers one endpoint with the standard middleware stack:
// metrics instrumentation, method enforcement (405 + Allow for methods
// outside the map), body size limit, panic recovery, and a per-request
// timeout.
func (s *Server) handle(pattern string, methods methodHandlers) {
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		s.serveInstrumented(pattern, methods, w, r)
	})
}

// handleNotFound is the catch-all for unrouted paths, keeping 404s in
// the JSON envelope format. The handler is keyed on the request's own
// method so the 404 (never a 405) is what unrouted paths answer.
func (s *Server) handleNotFound(w http.ResponseWriter, r *http.Request) {
	s.serveInstrumented("other", methodHandlers{
		r.Method: func(_ http.ResponseWriter, r *http.Request) (any, *apiError) {
			return nil, errNotFound("no such endpoint %q", r.URL.Path)
		},
	}, w, r)
}

// cachedJSON serves a pure-function endpoint: cache lookup, singleflight
// dedup of concurrent identical computations, then compute + fill. The
// key must canonicalize the request (two equivalent requests map to one
// key), so cache hits return byte-identical bodies.
func (s *Server) cachedJSON(key string, compute func() (any, *apiError)) (*cachedResponse, *apiError) {
	if resp, ok := s.cache.get(key); ok {
		s.metrics.noteCache(true)
		return resp, nil
	}
	s.metrics.noteCache(false)
	return s.flights.do(key, func() (*cachedResponse, *apiError) {
		// A concurrent flight may have filled the cache while this call
		// waited on the flight lock.
		if resp, ok := s.cache.get(key); ok {
			return resp, nil
		}
		v, aerr := compute()
		if aerr != nil {
			return nil, aerr
		}
		resp, err := marshalResponse(http.StatusOK, v)
		if err != nil {
			return nil, errInternal("encoding response: %v", err)
		}
		s.cache.put(key, resp)
		return resp, nil
	})
}

// Run listens on cfg.Addr, serves until ctx is cancelled (the caller
// wires SIGINT/SIGTERM into ctx), then shuts down gracefully, draining
// in-flight requests for at most cfg.DrainTimeout. The bound address is
// printed to stdout as "archlined listening on http://<addr>" so callers
// (and the CI smoke test) can use port 0.
func (s *Server) Run(ctx context.Context, stdout, stderr io.Writer) error {
	if s.initErr != nil {
		return fmt.Errorf("server: %w", s.initErr)
	}
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return fmt.Errorf("server: listen %s: %w", s.cfg.Addr, err)
	}
	srv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	_, _ = fmt.Fprintf(stdout, "archlined listening on http://%s\n", ln.Addr())
	if s.cfg.DataDir != "" {
		rec := s.registry.Recovery()
		_, _ = fmt.Fprintf(stdout,
			"archlined: registry %s: recovered %d uploaded platform(s), %d tombstone(s), quarantined %d, pruned %d\n",
			s.cfg.DataDir, rec.Loaded, rec.Tombstones, rec.Quarantined, rec.Pruned)
		s.log.LogAttrs(ctx, slog.LevelInfo, "registry recovered",
			slog.String("data_dir", s.cfg.DataDir), slog.Int("loaded", rec.Loaded),
			slog.Int("tombstones", rec.Tombstones), slog.Int("quarantined", rec.Quarantined),
			slog.Int("pruned", rec.Pruned))
	}
	if s.chaos != nil {
		_, _ = fmt.Fprintf(stdout, "archlined: CHAOS MODE enabled (profile %s, seed %d)\n",
			s.cfg.ChaosProfile, s.cfg.ChaosSeed)
	}
	s.log.LogAttrs(ctx, slog.LevelInfo, "listening",
		slog.String("addr", ln.Addr().String()),
		slog.Bool("chaos", s.chaos != nil), slog.Bool("pprof", s.cfg.EnablePprof))
	// The interval flusher drains the metric aggregation stage for the
	// daemon's whole lifetime; it stops (with one final drain) once the
	// serve loop is done, so nothing recorded during the drain is lost.
	flushDone := make(chan struct{})
	flushStop := make(chan struct{})
	go s.runFlusher(flushStop, flushDone)
	defer func() { close(flushStop); <-flushDone }()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return fmt.Errorf("server: serve: %w", err)
	case <-ctx.Done():
	}
	_, _ = fmt.Fprintln(stderr, "archlined: shutdown requested, draining in-flight requests")
	dctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	s.log.LogAttrs(dctx, slog.LevelInfo, "draining",
		slog.Float64("timeout_s", s.cfg.DrainTimeout.Seconds()))
	// Jobs drain first: running fit jobs get most of the budget to
	// finish (stragglers are canceled through their contexts), and a
	// draining job engine closes its event streams, which unblocks any
	// in-flight /v1/jobs/{id}/events requests before srv.Shutdown waits
	// on them. The front-loaded slice keeps time in reserve for the
	// HTTP drain itself.
	jctx, jcancel := context.WithTimeout(dctx, s.cfg.DrainTimeout*4/5)
	jerr := s.jobs.Close(jctx)
	jcancel()
	if jerr != nil {
		_, _ = fmt.Fprintln(stderr, "archlined: job drain:", jerr)
		s.log.LogAttrs(dctx, slog.LevelWarn, "job drain incomplete",
			slog.String("error", jerr.Error()))
	}
	if err := srv.Shutdown(dctx); err != nil {
		return fmt.Errorf("server: drain: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("server: serve: %w", err)
	}
	_, _ = fmt.Fprintln(stderr, "archlined: drained, bye")
	s.log.LogAttrs(dctx, slog.LevelInfo, "drained")
	return nil
}

// runFlusher drains the metric aggregation stage every
// cfg.AggFlushInterval until stop closes, then performs one final
// counted drain before signalling done.
func (s *Server) runFlusher(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	t := time.NewTicker(s.cfg.AggFlushInterval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			s.metrics.FlushAgg()
			return
		case <-t.C:
			s.metrics.FlushAgg()
		}
	}
}

// Run builds a server from cfg and runs it until ctx is cancelled; see
// (*Server).Run.
func Run(ctx context.Context, cfg Config, stdout, stderr io.Writer) error {
	return New(cfg).Run(ctx, stdout, stderr)
}
