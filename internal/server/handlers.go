package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"

	"archline/internal/machine"
	"archline/internal/model"
	"archline/internal/scenario"
	"archline/internal/units"
)

// Sweep-grid defaults and bounds shared by the sweep endpoints. The
// defaults are the paper's figure grid (fig. 5 uses 0.125-512 flop:Byte).
const (
	defaultIMin   = 0.125
	defaultIMax   = 512
	defaultPoints = 49
	maxPoints     = 4096
)

// nf boxes a float for JSON, mapping non-finite values (open-ended cap
// intervals, zero-DeltaPi throttles) to null instead of breaking the
// encoder.
func nf(x float64) *float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return nil
	}
	return &x
}

// platformRef selects a machine: a platform ID (built-in Table I or a
// registered upload), or a caller-supplied inline description in the
// -platform-file JSON schema.
type platformRef struct {
	ID     string          `json:"platform_id,omitempty"`
	Custom json.RawMessage `json:"platform,omitempty"`
}

// resolvePlatform returns the platform plus a canonical cache-key
// fragment. IDs resolve through the registry — one path for built-ins
// and uploads — and their fragment carries the entry's version
// ("id:<id>@v<N>"), so a response cached against a platform that is
// later re-uploaded is structurally unreachable: the new version makes
// a new key. Inline custom platforms key on their canonical encoding,
// so formatting variations of one description share a cache slot.
func (s *Server) resolvePlatform(ref platformRef) (*machine.Platform, string, *apiError) {
	switch {
	case ref.ID != "" && len(ref.Custom) > 0:
		return nil, "", errBadRequest("give either platform_id or platform, not both")
	case ref.ID != "":
		e, err := s.registry.Get(ref.ID)
		if err != nil {
			return nil, "", errNotFound("unknown platform %q (GET /v1/platforms lists the registry)", ref.ID)
		}
		s.metrics.notePlatformQuery(ref.ID)
		return e.Platform, e.CacheKey(), nil
	case len(ref.Custom) > 0:
		plat, err := machine.FromJSON(bytes.NewReader(ref.Custom))
		if err != nil {
			return nil, "", errBadRequest("bad custom platform: %v", err)
		}
		canon, err := machine.Canonical(plat)
		if err != nil {
			return nil, "", errInternal("canonicalizing platform: %v", err)
		}
		// Inline platforms share one counter bucket: their cardinality is
		// unbounded and the interesting signal is "how much traffic skips
		// the registry", not each ad-hoc description.
		s.metrics.notePlatformQuery("inline")
		return plat, "json:" + string(canon), nil
	default:
		return nil, "", errBadRequest("a platform is required: set platform_id or an inline platform description")
	}
}

// paramsFor picks the single- or double-precision model parameters.
func paramsFor(plat *machine.Platform, precision string) (model.Params, *apiError) {
	switch precision {
	case "", "single":
		return plat.Single, nil
	case "double":
		p, err := plat.DoubleParams()
		if err != nil {
			return model.Params{}, errBadRequest("%v", err)
		}
		return p, nil
	default:
		return model.Params{}, errBadRequest("unknown precision %q (want single or double)", precision)
	}
}

// --- GET /v1/platforms -------------------------------------------------

// platformInfo is one Table I row's API summary.
type platformInfo struct {
	ID                 string  `json:"id"`
	Name               string  `json:"name"`
	Processor          string  `json:"processor"`
	Microarch          string  `json:"microarch,omitempty"`
	Class              string  `json:"class"`
	IsGPU              bool    `json:"is_gpu"`
	VendorSingleGflops float64 `json:"vendor_single_gflops"`
	VendorMemGBs       float64 `json:"vendor_mem_gbs"`
	Pi1W               float64 `json:"pi1_w"`
	DeltaPiW           float64 `json:"delta_pi_w"`
	PeakGflopsPerJoule float64 `json:"peak_gflops_per_joule"`
	ConstantPowerShare float64 `json:"constant_power_share"`
	SupportsDouble     bool    `json:"supports_double"`
}

// platformsResponse is the database listing.
type platformsResponse struct {
	Platforms []platformInfo `json:"platforms"`
}

func (s *Server) handlePlatforms(_ http.ResponseWriter, _ *http.Request) (any, *apiError) {
	// The key carries the registry generation: any upload, re-upload, or
	// delete mints a new key, so the listing can never serve a stale
	// membership snapshot (the superseded key simply ages out of the LRU).
	key := "platforms@g" + strconv.FormatUint(s.registry.Generation(), 10)
	resp, aerr := s.cachedJSON(key, func() (any, *apiError) {
		s.noteEval()
		out := platformsResponse{}
		for _, e := range s.registry.List() {
			p := e.Platform
			out.Platforms = append(out.Platforms, platformInfo{
				ID:                 string(p.ID),
				Name:               p.Name,
				Processor:          p.Processor,
				Microarch:          p.Microarch,
				Class:              p.Class.String(),
				IsGPU:              p.IsGPU,
				VendorSingleGflops: p.Vendor.Single.FlopsPerSec() / 1e9,
				VendorMemGBs:       p.Vendor.MemBW.BytesPerSec() / 1e9,
				Pi1W:               p.Single.Pi1.Watts(),
				DeltaPiW:           p.Single.DeltaPi.Watts(),
				PeakGflopsPerJoule: p.Single.PeakFlopsPerJoule().FlopsPerJoule() / 1e9,
				ConstantPowerShare: p.ConstantPowerShare(),
				SupportsDouble:     p.SupportsDouble(),
			})
		}
		return out, nil
	})
	return resp, aerr
}

// --- GET /v1/platforms/{id}/roofline -----------------------------------

// sweepGrid is a parsed and defaulted intensity grid request.
type sweepGrid struct {
	IMin, IMax float64
	Points     int
}

// parseSweepQuery reads imin/imax/points query parameters with defaults
// and bounds checks.
func parseSweepQuery(r *http.Request) (sweepGrid, *apiError) {
	g := sweepGrid{IMin: defaultIMin, IMax: defaultIMax, Points: defaultPoints}
	q := r.URL.Query()
	parse := func(name string, dst *float64) *apiError {
		v := q.Get(name)
		if v == "" {
			return nil
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return errBadRequest("bad %s %q: %v", name, v, err)
		}
		*dst = f
		return nil
	}
	if aerr := parse("imin", &g.IMin); aerr != nil {
		return g, aerr
	}
	if aerr := parse("imax", &g.IMax); aerr != nil {
		return g, aerr
	}
	if v := q.Get("points"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return g, errBadRequest("bad points %q: %v", v, err)
		}
		g.Points = n
	}
	return g, g.validate()
}

// validate bounds-checks a grid wherever it came from (query or body).
func (g sweepGrid) validate() *apiError {
	if !(g.IMin > 0) || math.IsInf(g.IMin, 0) {
		return errBadRequest("imin must be a positive finite intensity, got %g", g.IMin)
	}
	if !(g.IMax > g.IMin) || math.IsInf(g.IMax, 0) {
		return errBadRequest("imax must exceed imin, got [%g, %g]", g.IMin, g.IMax)
	}
	if g.Points < 2 || g.Points > maxPoints {
		return errBadRequest("points must be in [2, %d], got %d", maxPoints, g.Points)
	}
	return nil
}

// orDefaults fills zero fields of a body-supplied grid.
func (g sweepGrid) orDefaults() sweepGrid {
	if g.IMin == 0 {
		g.IMin = defaultIMin
	}
	if g.IMax == 0 {
		g.IMax = defaultIMax
	}
	if g.Points == 0 {
		g.Points = defaultPoints
	}
	return g
}

// rooflinePoint is one intensity sample of eqs. (2), (4), and (7).
type rooflinePoint struct {
	Intensity           float64  `json:"intensity"`
	Regime              string   `json:"regime"`
	FlopsPerSec         float64  `json:"flops_per_sec"`
	UncappedFlopsPerSec float64  `json:"uncapped_flops_per_sec,omitempty"`
	FlopsPerJoule       float64  `json:"flops_per_joule"`
	AvgPowerW           float64  `json:"avg_power_w"`
	Throttle            *float64 `json:"throttle,omitempty"`
}

// rooflineResponse is a full model sweep for one platform.
type rooflineResponse struct {
	PlatformID string  `json:"platform_id"`
	Name       string  `json:"name"`
	Precision  string  `json:"precision"`
	IMin       float64 `json:"imin"`
	IMax       float64 `json:"imax"`

	Balances struct {
		BTau      *float64 `json:"b_tau"`
		BEps      *float64 `json:"b_eps"`
		BTauMinus *float64 `json:"b_tau_minus"`
		BTauPlus  *float64 `json:"b_tau_plus"`
	} `json:"balances"`
	Peak struct {
		FlopsPerSec   float64 `json:"flops_per_sec"`
		BytesPerSec   float64 `json:"bytes_per_sec"`
		FlopsPerJoule float64 `json:"flops_per_joule"`
		AvgPowerW     float64 `json:"avg_power_w"`
	} `json:"peak"`
	CapBinds bool            `json:"cap_binds"`
	Points   []rooflinePoint `json:"points"`
}

// sweepRoofline evaluates the model over the grid; it is the shared
// compute behind the roofline endpoint. The grid points go through the
// kernel (the balance/peak summary stays on Params — once per response,
// off the hot path), evaluated on the fly with the LogSpace formula so
// the grid is never materialized; finite throttles share one exact-size
// backing array instead of a per-point nf box. The context bounds long
// sweeps.
func sweepRoofline(ctx context.Context, id, name, precision string, p model.Params, k model.Kernel, g sweepGrid) (*rooflineResponse, *apiError) {
	out := &rooflineResponse{
		PlatformID: id, Name: name, Precision: precision,
		IMin: g.IMin, IMax: g.IMax,
	}
	out.Balances.BTau = nf(p.TimeBalance().Ratio())
	out.Balances.BEps = nf(p.EnergyBalance().Ratio())
	out.Balances.BTauMinus = nf(p.TimeBalanceMinus().Ratio())
	out.Balances.BTauPlus = nf(p.TimeBalancePlus().Ratio())
	out.Peak.FlopsPerSec = p.PeakFlopRate().FlopsPerSec()
	out.Peak.BytesPerSec = p.PeakByteRate().BytesPerSec()
	out.Peak.FlopsPerJoule = p.PeakFlopsPerJoule().FlopsPerJoule()
	out.Peak.AvgPowerW = p.PeakAvgPower().Watts()
	out.CapBinds = !p.Powerful()
	l0, l1 := math.Log(g.IMin), math.Log(g.IMax)
	out.Points = make([]rooflinePoint, 0, g.Points)
	throttles := make([]float64, g.Points)
	for idx := 0; idx < g.Points; idx++ {
		// Sweeps are cheap but unbounded in points; honour the request
		// deadline without paying a context check per point.
		if idx%64 == 0 && ctx.Err() != nil {
			return nil, errTimeout()
		}
		frac := float64(idx) / float64(g.Points-1)
		pt := k.PointAt(math.Exp(l0 + frac*(l1-l0)))
		rp := rooflinePoint{
			Intensity:           pt.Intensity,
			Regime:              pt.Regime.Letter(),
			FlopsPerSec:         pt.FlopsPerSec,
			UncappedFlopsPerSec: pt.UncappedFlopsPerSec,
			FlopsPerJoule:       pt.FlopsPerJoule,
			AvgPowerW:           pt.AvgPowerW,
		}
		if t := pt.Throttle; !math.IsNaN(t) && !math.IsInf(t, 0) {
			throttles[idx] = t
			rp.Throttle = &throttles[idx]
		}
		out.Points = append(out.Points, rp)
	}
	return out, nil
}

func (s *Server) handleRoofline(_ http.ResponseWriter, r *http.Request) (any, *apiError) {
	id := r.PathValue("id")
	e, err := s.registry.Get(id)
	if err != nil {
		return nil, errNotFound("unknown platform %q (GET /v1/platforms lists the registry)", id)
	}
	s.metrics.notePlatformQuery(id)
	plat := e.Platform
	g, aerr := parseSweepQuery(r)
	if aerr != nil {
		return nil, aerr
	}
	precision := r.URL.Query().Get("precision")
	p, aerr := paramsFor(plat, precision)
	if aerr != nil {
		return nil, aerr
	}
	if precision == "" {
		precision = "single"
	}
	key := fmt.Sprintf("roofline|%s|%s|%g|%g|%d", e.CacheKey(), precision, g.IMin, g.IMax, g.Points)
	ctx := r.Context()
	resp, aerr := s.cachedJSON(key, func() (any, *apiError) {
		s.noteEval()
		k := s.kernels.get(e.CacheKey()+"|"+precision, p)
		return sweepRoofline(ctx, id, plat.Name, precision, p, k, g)
	})
	return resp, aerr
}

// --- POST /v1/query ----------------------------------------------------

// queryRequest asks for the model's outputs on one machine, either for a
// concrete (W, Q) workload or at an operational intensity.
type queryRequest struct {
	platformRef
	Precision string   `json:"precision,omitempty"`
	WFlops    *float64 `json:"w_flops,omitempty"`
	QBytes    *float64 `json:"q_bytes,omitempty"`
	Intensity *float64 `json:"intensity,omitempty"`
}

// queryResponse is the evaluated model point.
type queryResponse struct {
	Platform  string `json:"platform"`
	Precision string `json:"precision"`
	Regime    string `json:"regime"`

	// Workload echo; intensity is set in both modes.
	WFlops    *float64 `json:"w_flops,omitempty"`
	QBytes    *float64 `json:"q_bytes,omitempty"`
	Intensity float64  `json:"intensity"`

	// Concrete-workload outputs (eqs. (1) and (3)); null in intensity mode.
	TimeS   *float64 `json:"time_s,omitempty"`
	EnergyJ *float64 `json:"energy_j,omitempty"`

	// Rate outputs, defined in both modes (eqs. (2), (4), (7)).
	FlopsPerSec   *float64 `json:"flops_per_sec"`
	FlopsPerJoule *float64 `json:"flops_per_joule"`
	AvgPowerW     *float64 `json:"avg_power_w"`
	Throttle      *float64 `json:"throttle,omitempty"`
}

func (s *Server) handleQuery(_ http.ResponseWriter, r *http.Request) (any, *apiError) {
	var req queryRequest
	if aerr := s.decodeBody(r, &req); aerr != nil {
		return nil, aerr
	}
	resp, aerr := s.evalQuery(req)
	if aerr != nil {
		return nil, aerr
	}
	return resp, nil
}

// evalQuery validates and serves one query item through the shared
// response cache and singleflight group. POST /v1/query sends its
// single item here and POST /v1/batch sends each of its N items, so a
// batch item, an equivalent single query, and a concurrent duplicate
// all share one cache slot and at most one model evaluation.
func (s *Server) evalQuery(req queryRequest) (*cachedResponse, *apiError) {
	plat, platKey, aerr := s.resolvePlatform(req.platformRef)
	if aerr != nil {
		return nil, aerr
	}
	p, aerr := paramsFor(plat, req.Precision)
	if aerr != nil {
		return nil, aerr
	}
	precision := req.Precision
	if precision == "" {
		precision = "single"
	}

	workload := req.WFlops != nil || req.QBytes != nil
	switch {
	case workload && req.Intensity != nil:
		return nil, errBadRequest("give either (w_flops, q_bytes) or intensity, not both")
	case workload && (req.WFlops == nil || req.QBytes == nil):
		return nil, errBadRequest("a workload query needs both w_flops and q_bytes")
	case !workload && req.Intensity == nil:
		return nil, errBadRequest("give a workload (w_flops, q_bytes) or an intensity")
	}

	keyStruct := struct {
		Plat, Prec string
		W, Q, I    *float64
	}{platKey, precision, req.WFlops, req.QBytes, req.Intensity}
	keyBytes, err := json.Marshal(keyStruct)
	if err != nil {
		return nil, errInternal("canonicalizing query: %v", err)
	}

	resp, aerr := s.cachedJSON("query|"+string(keyBytes), func() (any, *apiError) {
		s.noteEval()
		out := &queryResponse{Platform: plat.Name, Precision: precision}
		if workload {
			w, q := *req.WFlops, *req.QBytes
			if !(w >= 0) || !(q >= 0) || math.IsInf(w, 0) || math.IsInf(q, 0) {
				return nil, errBadRequest("w_flops and q_bytes must be finite and non-negative")
			}
			pred := p.Predict(units.Flops(w), units.Bytes(q))
			out.WFlops, out.QBytes = nf(w), nf(q)
			out.Intensity = pred.I.Ratio()
			out.Regime = pred.Regime.Letter()
			out.TimeS = nf(pred.Time.Seconds())
			out.EnergyJ = nf(pred.Energy.Joules())
			out.AvgPowerW = nf(pred.AvgPower.Watts())
			if t := pred.Time.Seconds(); t > 0 {
				out.FlopsPerSec = nf(w / t)
			}
			if e := pred.Energy.Joules(); e > 0 {
				out.FlopsPerJoule = nf(w / e)
			}
			return out, nil
		}
		iv := *req.Intensity
		if !(iv > 0) || math.IsInf(iv, 0) {
			return nil, errBadRequest("intensity must be positive and finite, got %g", iv)
		}
		k := s.kernels.get(platKey+"|"+precision, p)
		out.Intensity = iv
		out.Regime = k.RegimeAt(iv).Letter()
		out.FlopsPerSec = nf(k.FlopRateAt(iv))
		out.FlopsPerJoule = nf(k.FlopsPerJouleAt(iv))
		out.AvgPowerW = nf(k.AvgPowerAt(iv))
		out.Throttle = nf(k.ThrottleFactor(iv))
		return out, nil
	})
	return resp, aerr
}

// --- POST /v1/compare --------------------------------------------------

// compareRequest asks for the fig. 1 building-block analysis between
// machines a and b (b also power-matched into an aggregate).
type compareRequest struct {
	A platformRef `json:"a"`
	B platformRef `json:"b"`
	sweepGrid
}

// seriesJSON is one named curve over intensity.
type seriesJSON struct {
	Name   string      `json:"name"`
	Points []pointJSON `json:"points"`
}

// pointJSON is one metric sample.
type pointJSON struct {
	Intensity float64 `json:"intensity"`
	Value     float64 `json:"value"`
}

// toSeries converts a scenario curve, dropping non-finite samples.
func toSeries(s scenario.Series) seriesJSON {
	out := seriesJSON{Name: s.Name, Points: make([]pointJSON, 0, len(s.Points))}
	for _, p := range s.Points {
		if math.IsNaN(p.Value) || math.IsInf(p.Value, 0) {
			continue
		}
		out.Points = append(out.Points, pointJSON{Intensity: p.I.Ratio(), Value: p.Value})
	}
	return out
}

// compareResponse is the fig. 1 analysis over the wire.
type compareResponse struct {
	AName    string `json:"a_name"`
	BName    string `json:"b_name"`
	AggCount int    `json:"agg_count"`

	EnergyCrossover  *float64 `json:"energy_crossover,omitempty"`
	AggPerfCrossover *float64 `json:"agg_perf_crossover,omitempty"`
	MaxAggSpeedup    float64  `json:"max_agg_speedup"`
	AggPeakFraction  float64  `json:"agg_peak_fraction"`

	Perf  []seriesJSON `json:"perf"`
	Eff   []seriesJSON `json:"eff"`
	Power []seriesJSON `json:"power"`
}

// crossoverField maps "no crossover" (zero) to an omitted field.
func crossoverField(i units.Intensity) *float64 {
	if i <= 0 {
		return nil
	}
	return nf(i.Ratio())
}

func (s *Server) handleCompare(_ http.ResponseWriter, r *http.Request) (any, *apiError) {
	var req compareRequest
	if aerr := s.decodeBody(r, &req); aerr != nil {
		return nil, aerr
	}
	a, aKey, aerr := s.resolvePlatform(req.A)
	if aerr != nil {
		return nil, aerr
	}
	b, bKey, aerr := s.resolvePlatform(req.B)
	if aerr != nil {
		return nil, aerr
	}
	g := req.sweepGrid.orDefaults()
	if aerr := g.validate(); aerr != nil {
		return nil, aerr
	}
	key := fmt.Sprintf("compare|%s|%s|%g|%g|%d", aKey, bKey, g.IMin, g.IMax, g.Points)
	resp, aerr := s.cachedJSON(key, func() (any, *apiError) {
		s.noteEval()
		bc, err := scenario.CompareBlocks(a.Name, a.Single, b.Name, b.Single,
			units.Intensity(g.IMin), units.Intensity(g.IMax), g.Points)
		if err != nil {
			return nil, errBadRequest("%v", err)
		}
		out := &compareResponse{
			AName: bc.AName, BName: bc.BName, AggCount: bc.AggCount,
			EnergyCrossover:  crossoverField(bc.EnergyCrossover),
			AggPerfCrossover: crossoverField(bc.AggPerfCrossover),
			MaxAggSpeedup:    bc.MaxAggSpeedup,
			AggPeakFraction:  bc.AggPeakFraction,
		}
		for k := 0; k < 3; k++ {
			out.Perf = append(out.Perf, toSeries(bc.Perf[k]))
			out.Eff = append(out.Eff, toSeries(bc.Eff[k]))
			out.Power = append(out.Power, toSeries(bc.Power[k]))
		}
		return out, nil
	})
	return resp, aerr
}

// --- POST /v1/whatif ---------------------------------------------------

// whatifRequest runs one of the paper's what-if scenarios:
//
//   - "throttle": figs. 6-7, a machine swept under reduced power caps;
//   - "bound": section V-D, a big node throttled to a watt budget versus
//     an assembly of small nodes at the same budget;
//   - "aggregate": the fig. 1 power-matched construction, summarized.
type whatifRequest struct {
	Kind string `json:"kind"`

	// Platform drives "throttle".
	Platform platformRef `json:"platform,omitempty"`
	// Big and Small drive "bound" and "aggregate".
	Big   platformRef `json:"big,omitempty"`
	Small platformRef `json:"small,omitempty"`

	Fractions []float64 `json:"fractions,omitempty"` // throttle caps; default 1, 1/2, 1/4, 1/8
	BudgetW   float64   `json:"budget_w,omitempty"`  // bound watt budget
	Intensity float64   `json:"intensity,omitempty"` // bound evaluation intensity
	sweepGrid
}

// throttleCurveJSON is one cap setting's sweep.
type throttleCurveJSON struct {
	Frac           float64         `json:"frac"`
	PeakPowerRatio float64         `json:"peak_power_ratio"`
	Points         []rooflinePoint `json:"points"`
}

// whatifResponse covers all three kinds; unused sections are omitted.
type whatifResponse struct {
	Kind     string `json:"kind"`
	Platform string `json:"platform,omitempty"`

	Throttle []throttleCurveJSON `json:"throttle,omitempty"`

	Bound *struct {
		BudgetW      float64 `json:"budget_w"`
		Intensity    float64 `json:"intensity"`
		CapFrac      float64 `json:"cap_frac"`
		BigPerfRatio float64 `json:"big_perf_ratio"`
		SmallCount   int     `json:"small_count"`
		SmallVsBig   float64 `json:"small_vs_big"`
	} `json:"bound,omitempty"`

	Aggregate *struct {
		BName            string   `json:"b_name"`
		Count            int      `json:"count"`
		AggPeakFraction  float64  `json:"agg_peak_fraction"`
		MaxAggSpeedup    float64  `json:"max_agg_speedup"`
		AggPerfCrossover *float64 `json:"agg_perf_crossover,omitempty"`
	} `json:"aggregate,omitempty"`
}

// defaultFracs is the figs. 6-7 cap schedule.
var defaultFracs = []float64{1, 0.5, 0.25, 0.125}

func (s *Server) handleWhatIf(_ http.ResponseWriter, r *http.Request) (any, *apiError) {
	var req whatifRequest
	if aerr := s.decodeBody(r, &req); aerr != nil {
		return nil, aerr
	}
	switch req.Kind {
	case "throttle":
		return s.whatifThrottle(req)
	case "bound":
		return s.whatifBound(req)
	case "aggregate":
		return s.whatifAggregate(req)
	default:
		return nil, errBadRequest("unknown what-if kind %q (want throttle, bound, or aggregate)", req.Kind)
	}
}

func (s *Server) whatifThrottle(req whatifRequest) (any, *apiError) {
	plat, platKey, aerr := s.resolvePlatform(req.Platform)
	if aerr != nil {
		return nil, aerr
	}
	fracs := req.Fractions
	if len(fracs) == 0 {
		fracs = defaultFracs
	}
	if len(fracs) > 32 {
		return nil, errBadRequest("at most 32 cap fractions per request, got %d", len(fracs))
	}
	for _, f := range fracs {
		if !(f >= 0) || math.IsInf(f, 0) {
			return nil, errBadRequest("cap fractions must be finite and >= 0, got %g", f)
		}
	}
	g := req.sweepGrid.orDefaults()
	if aerr := g.validate(); aerr != nil {
		return nil, aerr
	}
	key := fmt.Sprintf("whatif-throttle|%s|%v|%g|%g|%d", platKey, fracs, g.IMin, g.IMax, g.Points)
	resp, aerr := s.cachedJSON(key, func() (any, *apiError) {
		s.noteEval()
		grid := model.LogSpace(units.Intensity(g.IMin), units.Intensity(g.IMax), g.Points)
		curves, err := scenario.ThrottleSweep(plat.Single, fracs, grid)
		if err != nil {
			return nil, errBadRequest("%v", err)
		}
		out := &whatifResponse{Kind: "throttle", Platform: plat.Name}
		for _, c := range curves {
			cj := throttleCurveJSON{Frac: c.Frac, Points: make([]rooflinePoint, 0, len(c.Points))}
			ratio, err := scenario.PowerReduction(plat.Single, c.Frac)
			if err == nil {
				cj.PeakPowerRatio = ratio
			}
			for _, pt := range c.Points {
				cj.Points = append(cj.Points, rooflinePoint{
					Intensity:     pt.I.Ratio(),
					Regime:        pt.Regime.Letter(),
					FlopsPerSec:   pt.Perf.FlopsPerSec(),
					FlopsPerJoule: pt.Eff.FlopsPerJoule(),
					AvgPowerW:     pt.Power.Watts(),
				})
			}
			out.Throttle = append(out.Throttle, cj)
		}
		return out, nil
	})
	return resp, aerr
}

func (s *Server) whatifBound(req whatifRequest) (any, *apiError) {
	big, bigKey, aerr := s.resolvePlatform(req.Big)
	if aerr != nil {
		return nil, aerr
	}
	small, smallKey, aerr := s.resolvePlatform(req.Small)
	if aerr != nil {
		return nil, aerr
	}
	if !(req.BudgetW > 0) || math.IsInf(req.BudgetW, 0) {
		return nil, errBadRequest("budget_w must be positive and finite, got %g", req.BudgetW)
	}
	if !(req.Intensity > 0) || math.IsInf(req.Intensity, 0) {
		return nil, errBadRequest("intensity must be positive and finite, got %g", req.Intensity)
	}
	key := fmt.Sprintf("whatif-bound|%s|%s|%g|%g", bigKey, smallKey, req.BudgetW, req.Intensity)
	resp, aerr := s.cachedJSON(key, func() (any, *apiError) {
		s.noteEval()
		res, err := scenario.PowerBound(big.Single, small.Single,
			units.Power(req.BudgetW), units.Intensity(req.Intensity))
		if err != nil {
			return nil, errBadRequest("%v", err)
		}
		out := &whatifResponse{Kind: "bound", Platform: big.Name}
		out.Bound = &struct {
			BudgetW      float64 `json:"budget_w"`
			Intensity    float64 `json:"intensity"`
			CapFrac      float64 `json:"cap_frac"`
			BigPerfRatio float64 `json:"big_perf_ratio"`
			SmallCount   int     `json:"small_count"`
			SmallVsBig   float64 `json:"small_vs_big"`
		}{
			BudgetW:      res.Budget.Watts(),
			Intensity:    res.I.Ratio(),
			CapFrac:      res.CapFrac,
			BigPerfRatio: res.BigPerfRatio,
			SmallCount:   res.SmallCount,
			SmallVsBig:   res.SmallVsBig,
		}
		return out, nil
	})
	return resp, aerr
}

func (s *Server) whatifAggregate(req whatifRequest) (any, *apiError) {
	big, bigKey, aerr := s.resolvePlatform(req.Big)
	if aerr != nil {
		return nil, aerr
	}
	small, smallKey, aerr := s.resolvePlatform(req.Small)
	if aerr != nil {
		return nil, aerr
	}
	g := req.sweepGrid.orDefaults()
	if aerr := g.validate(); aerr != nil {
		return nil, aerr
	}
	key := fmt.Sprintf("whatif-aggregate|%s|%s|%g|%g|%d", bigKey, smallKey, g.IMin, g.IMax, g.Points)
	resp, aerr := s.cachedJSON(key, func() (any, *apiError) {
		s.noteEval()
		bc, err := scenario.CompareBlocks(big.Name, big.Single, small.Name, small.Single,
			units.Intensity(g.IMin), units.Intensity(g.IMax), g.Points)
		if err != nil {
			return nil, errBadRequest("%v", err)
		}
		out := &whatifResponse{Kind: "aggregate", Platform: big.Name}
		out.Aggregate = &struct {
			BName            string   `json:"b_name"`
			Count            int      `json:"count"`
			AggPeakFraction  float64  `json:"agg_peak_fraction"`
			MaxAggSpeedup    float64  `json:"max_agg_speedup"`
			AggPerfCrossover *float64 `json:"agg_perf_crossover,omitempty"`
		}{
			BName:            bc.BName,
			Count:            bc.AggCount,
			AggPeakFraction:  bc.AggPeakFraction,
			MaxAggSpeedup:    bc.MaxAggSpeedup,
			AggPerfCrossover: crossoverField(bc.AggPerfCrossover),
		}
		return out, nil
	})
	return resp, aerr
}
