package server

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"archline/internal/stats"
)

// fakeClock is an injectable breaker clock so no test waits out a real
// cooldown.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1000, 0)} }

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestLoadSheddingStorm is the overload acceptance test, run under
// -race by CI: with a low in-flight ceiling and the model evaluations
// held open, surplus concurrent /v1 requests must be refused with 429 +
// Retry-After (in the JSON envelope), the shed must show up in
// /metrics, and the held requests must still complete once released.
func TestLoadSheddingStorm(t *testing.T) {
	const ceiling = 4
	s := New(Config{MaxInFlight: ceiling})
	entered := make(chan struct{}, ceiling)
	release := make(chan struct{})
	s.testHookEval = func() {
		entered <- struct{}{}
		<-release
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Occupy the ceiling with distinct keys (no cache or singleflight
	// coalescing) and hold every evaluation open.
	var occupiers sync.WaitGroup
	for i := 0; i < ceiling; i++ {
		occupiers.Add(1)
		go func(slot int) {
			defer occupiers.Done()
			status, _ := get(t, fmt.Sprintf("%s/v1/platforms/gtx-titan/roofline?points=%d", ts.URL, 20+slot))
			if status != http.StatusOK {
				t.Errorf("occupier %d: status %d", slot, status)
			}
		}(i)
	}
	for i := 0; i < ceiling; i++ {
		<-entered // all slots demonstrably in flight
	}

	// The storm: every further /v1 request must be shed immediately.
	const surplus = 8
	for i := 0; i < surplus; i++ {
		resp, err := http.Get(fmt.Sprintf("%s/v1/platforms/gtx-titan/roofline?points=%d", ts.URL, 100+i))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Errorf("storm request %d: status %d, want 429", i, resp.StatusCode)
		}
		if ra := resp.Header.Get("Retry-After"); ra == "" {
			t.Error("shed response missing Retry-After")
		}
		body := readAll(t, resp)
		env := decode(t, body)
		if errObj, ok := env["error"].(map[string]any); !ok || errObj["code"] != "overloaded" {
			t.Errorf("shed body not an overloaded envelope: %s", body)
		}
	}

	// Liveness and observability stay reachable while shedding.
	if status, _ := get(t, ts.URL+"/healthz"); status != http.StatusOK {
		t.Errorf("healthz unavailable during overload: %d", status)
	}
	status, metricsBody := get(t, ts.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("metrics unavailable during overload: %d", status)
	}
	if !strings.Contains(string(metricsBody), fmt.Sprintf("archlined_shed_total %d", surplus)) {
		t.Errorf("metrics do not count the %d shed requests:\n%s", surplus, metricsBody)
	}

	close(release)
	occupiers.Wait()
	if got := s.Metrics().Shed(); got != surplus {
		t.Errorf("Shed() = %d, want %d", got, surplus)
	}
}

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func TestCircuitBreakerUnit(t *testing.T) {
	clock := newFakeClock()
	b := newCircuitBreaker(10*time.Second, 0.5, 4, 2*time.Second, clock.now)

	// Below the sample floor nothing trips, even at 100% errors.
	for i := 0; i < 3; i++ {
		b.record(true)
	}
	if ok, _ := b.allow(); !ok {
		t.Fatal("breaker tripped below the sample floor")
	}
	b.record(true) // 4th failure: 4/4 >= 0.5 with min samples met
	if ok, retry := b.allow(); ok {
		t.Fatal("breaker did not open at 100% errors")
	} else if retry <= 0 || retry > 2*time.Second {
		t.Errorf("open retry-after = %v", retry)
	}
	if st, opens := b.snapshot(); st != breakerOpen || opens != 1 {
		t.Errorf("state = %v opens = %d, want open/1", st, opens)
	}

	// Cooldown elapses: exactly one half-open probe is admitted.
	clock.advance(2100 * time.Millisecond)
	if ok, _ := b.allow(); !ok {
		t.Fatal("breaker did not half-open after the cooldown")
	}
	if ok, _ := b.allow(); ok {
		t.Fatal("breaker admitted a second concurrent probe")
	}
	// Probe fails: back to open with a fresh cooldown.
	b.record(true)
	if st, opens := b.snapshot(); st != breakerOpen || opens != 2 {
		t.Errorf("state = %v opens = %d, want open/2 after failed probe", st, opens)
	}

	// Second cooldown, successful probe: breaker closes cleanly.
	clock.advance(2100 * time.Millisecond)
	if ok, _ := b.allow(); !ok {
		t.Fatal("breaker did not half-open after second cooldown")
	}
	b.record(false)
	if st, _ := b.snapshot(); st != breakerClosed {
		t.Errorf("state = %v, want closed after successful probe", st)
	}
	// The window restarted: old failures are forgotten.
	b.record(true)
	b.record(true)
	if ok, _ := b.allow(); !ok {
		t.Error("breaker reopened from pre-recovery failures")
	}
}

// TestBreakerEndToEnd drives the breaker through the HTTP stack: forced
// chaos 500s open it, open responses are 503 + Retry-After in the
// envelope, and after the cooldown a healthy probe closes it again.
func TestBreakerEndToEnd(t *testing.T) {
	s := New(Config{BreakerMinSamples: 4, BreakerErrRate: 0.5, BreakerCooldown: 2 * time.Second})
	clock := newFakeClock()
	s.breaker.now = clock.now
	// Force every /v1 request to fail, deterministically.
	s.chaos = &chaosInjector{errRate: 1, rng: stats.NewStream(1, "chaos/test"), sleep: func(time.Duration) {}}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	url := ts.URL + "/v1/platforms"
	for i := 0; i < 4; i++ {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		body := readAll(t, resp)
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("chaos request %d: status %d", i, resp.StatusCode)
		}
		env := decode(t, body)
		if errObj, ok := env["error"].(map[string]any); !ok || errObj["code"] != "chaos_injected" {
			t.Fatalf("chaos 500 without envelope: %s", body)
		}
	}

	// Breaker is now open: fast 503 with Retry-After, no chaos draw.
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("open breaker returned %d, want 503: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("breaker 503 missing Retry-After")
	}
	env := decode(t, body)
	if errObj, ok := env["error"].(map[string]any); !ok || errObj["code"] != "breaker_open" {
		t.Errorf("breaker body: %s", body)
	}
	if !strings.Contains(s.metrics.Render(), "archlined_breaker_state 2") {
		t.Error("metrics do not show the breaker open")
	}
	if s.Metrics().ChaosInjected() != 4 {
		t.Errorf("chaos injected = %d, want 4", s.Metrics().ChaosInjected())
	}

	// Recovery: stop the chaos, let the cooldown pass, and the single
	// probe closes the breaker for everyone.
	s.chaos.mu.Lock()
	s.chaos.errRate = 0
	s.chaos.mu.Unlock()
	clock.advance(2100 * time.Millisecond)
	for i := 0; i < 3; i++ {
		status, _ := get(t, url)
		if status != http.StatusOK {
			t.Fatalf("post-recovery request %d: status %d", i, status)
		}
	}
	if !strings.Contains(s.metrics.Render(), "archlined_breaker_state 0") {
		t.Error("metrics do not show the breaker closed after recovery")
	}
}

func TestChaosInjectorDeterministic(t *testing.T) {
	mk := func() []bool {
		c, err := newChaosInjector("paper", 42, func(time.Duration) {})
		if err != nil || c == nil {
			t.Fatalf("newChaosInjector: %v %v", c, err)
		}
		var fates []bool
		for i := 0; i < 200; i++ {
			aerr, _ := c.intercept()
			fates = append(fates, aerr != nil)
		}
		return fates
	}
	a, b := mk(), mk()
	hits := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("chaos draw %d diverged", i)
		}
		if a[i] {
			hits++
		}
	}
	if hits == 0 {
		t.Error("paper chaos profile never injected in 200 draws (rate too low?)")
	}
}

func TestChaosDisabledByDefault(t *testing.T) {
	if c, err := newChaosInjector("", 1, nil); c != nil || err != nil {
		t.Errorf("empty profile: %v, %v", c, err)
	}
	if c, err := newChaosInjector("none", 1, nil); c != nil || err != nil {
		t.Errorf("none profile: %v, %v", c, err)
	}
	if _, err := newChaosInjector("volcanic", 1, nil); err == nil {
		t.Error("unknown chaos profile accepted")
	}
	// A server with an unknown profile must refuse to run.
	s := New(Config{ChaosProfile: "volcanic"})
	if s.initErr == nil {
		t.Error("New accepted an unknown chaos profile")
	}
}
