package server

import (
	"bytes"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"

	"archline/internal/machine"
)

// platformBody renders a minimal valid platform description whose model
// outputs are a pure function of the sustained-gflops knob.
func platformBody(id string, gflops float64) string {
	return fmt.Sprintf(`{
		"id": %q, "name": "Upload %s", "class": "mini", "cache_line_bytes": 64,
		"vendor_single_gflops": %g, "vendor_mem_gbs": 20, "idle_w": 3,
		"sustained_single_gflops": %g, "sustained_mem_gbs": 10,
		"eps_s_pj_per_flop": 40, "eps_mem_pj_per_byte": 300,
		"pi1_w": 2, "delta_pi_w": 4
	}`, id, id, gflops*1.25, gflops)
}

// doReq performs one request with optional body and headers, returning
// the response (body fully read and closed).
func doReq(t *testing.T, method, url, body string, headers map[string]string) (*http.Response, []byte) {
	t.Helper()
	var rd *strings.Reader
	if body == "" {
		rd = strings.NewReader("")
	} else {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestPlatformUploadLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{DataDir: t.TempDir()})

	// Create.
	resp, body := doReq(t, http.MethodPost, ts.URL+"/v1/platforms", platformBody("dev-board", 8), nil)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload status = %d, body %s", resp.StatusCode, body)
	}
	ack := decode(t, body)
	if ack["id"] != "dev-board" || ack["version"] != float64(1) || ack["outcome"] != "created" {
		t.Fatalf("upload ack = %v", ack)
	}
	etag, _ := ack["etag"].(string)
	if resp.Header.Get("ETag") != etag || !strings.HasPrefix(etag, `"`) {
		t.Errorf("ETag header %q vs ack %q", resp.Header.Get("ETag"), etag)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/platforms/dev-board" {
		t.Errorf("Location = %q", loc)
	}

	// Fetch: canonical bytes, strong ETag, and a 304 on revalidation.
	resp, body = doReq(t, http.MethodGet, ts.URL+"/v1/platforms/dev-board", "", nil)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("ETag") != etag {
		t.Fatalf("get status = %d, etag %q", resp.StatusCode, resp.Header.Get("ETag"))
	}
	plat, err := machine.FromJSON(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("served platform does not validate: %v", err)
	}
	canon, err := machine.Canonical(plat)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSuffix(string(body), "\n"); got != string(canon) {
		t.Errorf("served body is not the canonical encoding")
	}
	resp, body = doReq(t, http.MethodGet, ts.URL+"/v1/platforms/dev-board", "",
		map[string]string{"If-None-Match": etag})
	if resp.StatusCode != http.StatusNotModified || len(body) != 0 {
		t.Fatalf("revalidation: status = %d, body %q", resp.StatusCode, body)
	}

	// Idempotent re-upload: same bytes, same version.
	resp, body = doReq(t, http.MethodPost, ts.URL+"/v1/platforms", platformBody("dev-board", 8), nil)
	ack = decode(t, body)
	if resp.StatusCode != http.StatusOK || ack["outcome"] != "unchanged" || ack["version"] != float64(1) {
		t.Fatalf("idempotent re-upload: status %d ack %v", resp.StatusCode, ack)
	}

	// Changed re-upload: version bump, new ETag.
	resp, body = doReq(t, http.MethodPost, ts.URL+"/v1/platforms", platformBody("dev-board", 9), nil)
	ack = decode(t, body)
	if resp.StatusCode != http.StatusOK || ack["outcome"] != "updated" || ack["version"] != float64(2) {
		t.Fatalf("re-upload: status %d ack %v", resp.StatusCode, ack)
	}
	if ack["etag"] == etag {
		t.Error("re-upload kept the old ETag")
	}

	// The listing includes the upload alongside the Table I builtins.
	status, listBody := get(t, ts.URL+"/v1/platforms")
	if status != http.StatusOK || !bytes.Contains(listBody, []byte(`"dev-board"`)) {
		t.Fatalf("listing status %d missing upload: %s", status, listBody)
	}

	// Delete, then the platform is gone from GET and the listing.
	resp, _ = doReq(t, http.MethodDelete, ts.URL+"/v1/platforms/dev-board", "", nil)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status = %d", resp.StatusCode)
	}
	status, body = get(t, ts.URL+"/v1/platforms/dev-board")
	wantError(t, status, body, http.StatusNotFound, "not_found")
	_, listBody = get(t, ts.URL+"/v1/platforms")
	if bytes.Contains(listBody, []byte(`"dev-board"`)) {
		t.Error("deleted platform still listed")
	}
}

func TestPlatformUploadErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{DataDir: t.TempDir()})

	status, body := post(t, ts.URL+"/v1/platforms", `{"id": "x"}`)
	wantError(t, status, body, http.StatusBadRequest, "bad_request")

	// Built-in Table I entries are read-only, for uploads and deletes.
	status, body = post(t, ts.URL+"/v1/platforms", platformBody("arndale-cpu", 8))
	wantError(t, status, body, http.StatusConflict, "conflict")
	resp, body := doReq(t, http.MethodDelete, ts.URL+"/v1/platforms/arndale-cpu", "", nil)
	wantError(t, resp.StatusCode, body, http.StatusConflict, "conflict")

	resp, body = doReq(t, http.MethodDelete, ts.URL+"/v1/platforms/never-uploaded", "", nil)
	wantError(t, resp.StatusCode, body, http.StatusNotFound, "not_found")
}

func TestPlatformUploadNeedsDataDir(t *testing.T) {
	// Without -data-dir the registry runs in memory: builtins resolve,
	// mutations are politely refused (403, not 5xx — the breaker must
	// not count configuration as failure).
	_, ts := newTestServer(t, Config{})
	status, body := post(t, ts.URL+"/v1/platforms", platformBody("dev-board", 8))
	wantError(t, status, body, http.StatusForbidden, "registry_read_only")
	resp, body := doReq(t, http.MethodDelete, ts.URL+"/v1/platforms/dev-board", "", nil)
	wantError(t, resp.StatusCode, body, http.StatusNotFound, "not_found")
}

func TestPlatformReuploadInvalidatesCache(t *testing.T) {
	s, ts := newTestServer(t, Config{DataDir: t.TempDir()})
	if _, body := post(t, ts.URL+"/v1/platforms", platformBody("dev-board", 8)); len(body) == 0 {
		t.Fatal("upload failed")
	}
	query := `{"platform_id": "dev-board", "intensity": 1000}`
	_, first := post(t, ts.URL+"/v1/query", query)
	_, second := post(t, ts.URL+"/v1/query", query)
	if !bytes.Equal(first, second) {
		t.Fatalf("identical queries disagree:\n%s\n%s", first, second)
	}
	if hits := s.metrics.CacheHits(); hits != 1 {
		t.Fatalf("cache hits = %d, want 1", hits)
	}

	// Re-upload with a different sustained rate: the version-keyed cache
	// must never serve the old answer again.
	post(t, ts.URL+"/v1/platforms", platformBody("dev-board", 16))
	_, third := post(t, ts.URL+"/v1/query", query)
	if bytes.Equal(first, third) {
		t.Fatal("query served a stale response after re-upload")
	}
	if inv := s.registry.Stats().Invalidations; inv != 1 {
		t.Errorf("invalidations = %d, want 1", inv)
	}

	// The registry metric families are live on /metrics.
	_, expo := get(t, ts.URL+"/metrics")
	for _, want := range []string{
		"archlined_registry_uploads_total 2",
		"archlined_registry_invalidations_total 1",
		"archlined_registry_quarantined_blobs_total 0",
		`archlined_registry_platforms{shard="0"}`,
	} {
		if !bytes.Contains(expo, []byte(want)) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}

func TestPlatformPersistsAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, Config{DataDir: dir})
	_, body := post(t, ts.URL+"/v1/platforms", platformBody("dev-board", 8))
	etag, _ := decode(t, body)["etag"].(string)
	ts.Close()

	// A second daemon over the same data directory recovers the upload
	// with the identical version and content hash.
	_, ts2 := newTestServer(t, Config{DataDir: dir})
	resp, _ := doReq(t, http.MethodGet, ts2.URL+"/v1/platforms/dev-board", "", nil)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("ETag") != etag {
		t.Fatalf("after restart: status %d, etag %q want %q",
			resp.StatusCode, resp.Header.Get("ETag"), etag)
	}
	status, qbody := post(t, ts2.URL+"/v1/query", `{"platform_id": "dev-board", "intensity": 1000}`)
	if status != http.StatusOK {
		t.Fatalf("query after restart: %d %s", status, qbody)
	}
}

// TestPlatformReuploadStormHTTP hammers re-uploads of two platform
// variants while readers query concurrently, asserting every response
// is exactly one variant's complete answer — never a mix of old and new
// platform fields, never an error. Run under -race this also proves the
// registry/cache handoff is data-race-free end to end.
func TestPlatformReuploadStormHTTP(t *testing.T) {
	_, ts := newTestServer(t, Config{DataDir: t.TempDir()})
	query := `{"platform_id": "dev-board", "intensity": 1000}`

	// Establish the two admissible response bodies single-threaded.
	want := map[string]bool{}
	for _, g := range []float64{8, 16} {
		post(t, ts.URL+"/v1/platforms", platformBody("dev-board", g))
		status, body := post(t, ts.URL+"/v1/query", query)
		if status != http.StatusOK {
			t.Fatalf("seed query: %d %s", status, body)
		}
		want[string(body)] = true
	}
	if len(want) != 2 {
		t.Fatalf("variants not distinguishable: %d distinct bodies", len(want))
	}

	const writers, readers, rounds = 3, 4, 20
	errs := make(chan string, writers*rounds+readers*rounds)
	var writerWG, readerWG sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for i := 0; i < rounds; i++ {
				g := []float64{8, 16}[(w+i)%2]
				resp, body := doReq(t, http.MethodPost, ts.URL+"/v1/platforms",
					platformBody("dev-board", g), nil)
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Sprintf("storm upload: %d %s", resp.StatusCode, body)
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				status, body := post(t, ts.URL+"/v1/query", query)
				if status != http.StatusOK {
					errs <- fmt.Sprintf("storm query: %d %s", status, body)
					return
				}
				if !want[string(body)] {
					errs <- fmt.Sprintf("mixed-version response: %s", body)
					return
				}
			}
		}()
	}
	writerWG.Wait()
	close(stop)
	readerWG.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}
