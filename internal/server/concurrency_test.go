package server

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestConcurrentIdenticalSweeps is the dedup acceptance test: 32
// goroutines request the same roofline sweep while the first compute is
// held open, and the model must be evaluated exactly once. Strict
// uniqueness holds because the cache is filled before the flight is
// deregistered: concurrent callers join the flight, late callers hit
// the cache.
func TestConcurrentIdenticalSweeps(t *testing.T) {
	s := New(Config{})
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.testHookEval = func() {
		once.Do(func() {
			close(entered)
			<-release
		})
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const clients = 32
	url := ts.URL + "/v1/platforms/gtx-titan/roofline?points=25"
	bodies := make([]string, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			resp, err := http.Get(url)
			if err != nil {
				t.Errorf("client %d: %v", slot, err)
				return
			}
			defer resp.Body.Close()
			b, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Errorf("client %d: %v", slot, err)
				return
			}
			if resp.StatusCode != http.StatusOK {
				t.Errorf("client %d: status %d: %s", slot, resp.StatusCode, b)
			}
			bodies[slot] = string(b)
		}(i)
	}
	// Hold the single compute open until it is demonstrably in flight,
	// so the other clients really do arrive concurrently.
	<-entered
	close(release)
	wg.Wait()

	if n := s.ModelEvals(); n != 1 {
		t.Errorf("model evals = %d, want exactly 1 for %d identical requests", n, clients)
	}
	for i := 1; i < clients; i++ {
		if bodies[i] != bodies[0] {
			t.Fatalf("client %d body differs from client 0", i)
		}
	}
}

// TestHammerMixedEndpoints drives several endpoints from 32 goroutines;
// it exists to give the race detector surface area over the cache,
// flight group, and metrics paths.
func TestHammerMixedEndpoints(t *testing.T) {
	s := New(Config{CacheEntries: 8})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const clients = 32
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			// Half the clients share one sweep; the rest spread over
			// distinct grids to force eviction churn.
			points := 17
			if slot%2 == 1 {
				points = 5 + slot
			}
			url := fmt.Sprintf("%s/v1/platforms/arndale-gpu/roofline?points=%d", ts.URL, points)
			for rep := 0; rep < 5; rep++ {
				resp, err := http.Get(url)
				if err != nil {
					t.Errorf("client %d: %v", slot, err)
					return
				}
				if _, err := io.Copy(io.Discard, resp.Body); err != nil {
					t.Errorf("client %d: %v", slot, err)
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("client %d: status %d", slot, resp.StatusCode)
				}
			}
			// Interleave metrics scrapes with the sweeps.
			resp, err := http.Get(ts.URL + "/metrics")
			if err != nil {
				t.Errorf("client %d metrics: %v", slot, err)
				return
			}
			if _, err := io.Copy(io.Discard, resp.Body); err != nil {
				t.Errorf("client %d metrics: %v", slot, err)
			}
			resp.Body.Close()
		}(i)
	}
	wg.Wait()
	if got := s.Metrics().Requests(); got < clients*5 {
		t.Errorf("requests recorded = %d, want >= %d", got, clients*5)
	}
}

// TestGracefulDrain starts the real daemon (listener, signal-shaped
// context), holds a request in flight, triggers shutdown, and verifies
// the in-flight request completes with 200 and Run exits cleanly within
// the drain window.
func TestGracefulDrain(t *testing.T) {
	s := New(Config{Addr: "127.0.0.1:0", DrainTimeout: 5 * time.Second})
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.testHookEval = func() {
		once.Do(func() {
			close(entered)
			<-release
		})
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var stdout syncBuffer
	runErr := make(chan error, 1)
	go func() { runErr <- s.Run(ctx, &stdout, io.Discard) }()

	base := waitForListening(t, &stdout)

	reqDone := make(chan int, 1)
	go func() {
		resp, err := http.Get(base + "/v1/platforms/gtx-titan/roofline?points=9")
		if err != nil {
			reqDone <- -1
			return
		}
		defer resp.Body.Close()
		_, _ = io.Copy(io.Discard, resp.Body)
		reqDone <- resp.StatusCode
	}()

	<-entered // the request is now inside the model evaluation
	cancel()  // shutdown requested with the request still in flight

	// Give the shutdown a moment to begin, then let the handler finish.
	time.Sleep(50 * time.Millisecond)
	close(release)

	select {
	case status := <-reqDone:
		if status != http.StatusOK {
			t.Errorf("in-flight request status = %d, want 200", status)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request never completed")
	}
	select {
	case err := <-runErr:
		if err != nil {
			t.Errorf("Run returned %v, want nil after graceful drain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return within the drain window")
	}
}

// syncBuffer is a goroutine-safe writer capturing daemon stdout.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// waitForListening polls the daemon's startup line and returns the base
// URL it announced.
func waitForListening(t *testing.T, out *syncBuffer) string {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		text := out.String()
		if _, rest, ok := strings.Cut(text, "listening on "); ok {
			if url, _, ok := strings.Cut(rest, "\n"); ok {
				return strings.TrimSpace(url)
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("daemon never announced its listen address")
	return ""
}
