package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strings"
	"testing"

	"archline/internal/machine"
	"archline/internal/model"
	"archline/internal/units"
)

// legacyStreamBody reproduces the pre-kernel stream encoding: the
// Params methods evaluated per point, every line marshaled through
// encoding/json. It is the reference the golden test holds the
// hand-rolled kernel path to, byte for byte.
func legacyStreamBody(platID, name, precision string, p model.Params, g sweepGrid, chunk int) []byte {
	var out bytes.Buffer
	enc := json.NewEncoder(&out)
	_ = enc.Encode(streamHeader{
		PlatformID: platID, Name: name, Precision: precision,
		IMin: g.IMin, IMax: g.IMax, Points: g.Points, ChunkPoints: chunk,
	})
	l0, l1 := math.Log(g.IMin), math.Log(g.IMax)
	buf := make([]rooflinePoint, 0, chunk)
	chunks := 0
	for start := 0; start < g.Points; start += chunk {
		end := start + chunk
		if end > g.Points {
			end = g.Points
		}
		buf = buf[:0]
		for k := start; k < end; k++ {
			frac := float64(k) / float64(g.Points-1)
			i := units.Intensity(math.Exp(l0 + frac*(l1-l0)))
			buf = append(buf, rooflinePoint{
				Intensity:           i.Ratio(),
				Regime:              p.RegimeAt(i).Letter(),
				FlopsPerSec:         p.FlopRateAt(i).FlopsPerSec(),
				UncappedFlopsPerSec: p.FlopRateAtUncapped(i).FlopsPerSec(),
				FlopsPerJoule:       p.FlopsPerJouleAt(i).FlopsPerJoule(),
				AvgPowerW:           p.AvgPowerAt(i).Watts(),
				Throttle:            nf(p.ThrottleFactor(i)),
			})
		}
		_ = enc.Encode(streamChunk{Seq: chunks, Points: buf})
		chunks++
	}
	_ = enc.Encode(streamTrailer{Done: true, Chunks: chunks, Points: g.Points})
	return out.Bytes()
}

// streamBodyFor posts one stream request and returns the whole NDJSON
// body (transparently de-gzipped by the client, which matches the
// uncompressed encoding byte for byte).
func streamBodyFor(t *testing.T, tsURL, platformID, precision string, g sweepGrid, chunk int) []byte {
	t.Helper()
	body := fmt.Sprintf(
		`{"platform_id":%q,"precision":%q,"imin":%g,"imax":%g,"points":%d,"chunk_points":%d}`,
		platformID, precision, g.IMin, g.IMax, g.Points, chunk)
	status, out := post(t, tsURL+"/v1/sweep/stream", body)
	if status != http.StatusOK {
		t.Fatalf("%s/%s: status = %d: %s", platformID, precision, status, out)
	}
	return out
}

// TestSweepStreamGoldenBytes is the refactor's wire-level contract:
// for every built-in platform (both precisions where supported) and an
// uploaded platform that exists in no table, the kernel-evaluated,
// hand-encoded stream must be byte-identical to the legacy
// Params-per-point, encoding/json path. The grid is sized so chunks end
// unevenly and the values span both float formats ('f' and 'e').
func TestSweepStreamGoldenBytes(t *testing.T) {
	_, ts := newTestServer(t, Config{DataDir: t.TempDir()})
	g := sweepGrid{IMin: 0.01, IMax: 5000, Points: 229}
	const chunk = 64

	uploadJSON := platformBody("golden-upload", 8)
	if resp, body := doReq(t, http.MethodPost, ts.URL+"/v1/platforms", uploadJSON, nil); resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload status = %d: %s", resp.StatusCode, body)
	}
	uploaded, err := machine.FromJSON(strings.NewReader(uploadJSON))
	if err != nil {
		t.Fatal(err)
	}

	type target struct {
		plat      *machine.Platform
		precision string
	}
	targets := []target{{uploaded, "single"}}
	for _, plat := range machine.All() {
		targets = append(targets, target{plat, "single"})
		if plat.SupportsDouble() {
			targets = append(targets, target{plat, "double"})
		}
	}
	for _, tg := range targets {
		p, aerr := paramsFor(tg.plat, tg.precision)
		if aerr != nil {
			t.Fatalf("%s/%s: %v", tg.plat.ID, tg.precision, aerr)
		}
		got := streamBodyFor(t, ts.URL, string(tg.plat.ID), tg.precision, g, chunk)
		want := legacyStreamBody(string(tg.plat.ID), tg.plat.Name, tg.precision, p, g, chunk)
		if !bytes.Equal(got, want) {
			// Localize the first differing line for the failure message.
			gl, wl := bytes.Split(got, []byte("\n")), bytes.Split(want, []byte("\n"))
			for i := 0; i < len(gl) && i < len(wl); i++ {
				if !bytes.Equal(gl[i], wl[i]) {
					t.Fatalf("%s/%s: stream line %d differs\n got: %.200s\nwant: %.200s",
						tg.plat.ID, tg.precision, i, gl[i], wl[i])
				}
			}
			t.Fatalf("%s/%s: stream length %d, legacy encoding %d", tg.plat.ID, tg.precision, len(got), len(want))
		}
	}
}

// TestStreamChunkEncoderMatchesEncodingJSON pins the hand-rolled
// encoder against encoding/json on adversarial values: magnitudes that
// flip the float format to 'e' (with the exponent-zero cleanup), exact
// zeros that trigger omitempty, non-finite throttles that the nf box
// drops, and non-finite required values that must drop the whole line
// just as a failed Encode wrote nothing.
func TestStreamChunkEncoderMatchesEncodingJSON(t *testing.T) {
	mk := func(iv, rate, uncapped, eff, power, throttle float64) model.Point {
		return model.Point{
			Intensity: iv, Regime: model.ComputeBound,
			FlopsPerSec: rate, UncappedFlopsPerSec: uncapped,
			FlopsPerJoule: eff, AvgPowerW: power, Throttle: throttle,
		}
	}
	pts := []model.Point{
		mk(0.125, 3.5e11, 4e11, 2.1e9, 95.25, 1),
		mk(1e-7, 1.5e21, 0, 5e-7, 1e21, 0),              // 'e' format, omitted uncapped
		mk(2.5e22, 1e-6, 1e-7, 123456789.123, 0, 0.5),   // exponent boundary both sides
		mk(4, 0, 0, 0, -7.5, math.NaN()),                // zeros kept, NaN throttle dropped
		mk(64, 9.999e20, 1e-99, 1e300, 42, math.Inf(1)), // tiny 'e' with long exponent
	}
	var want bytes.Buffer
	enc := json.NewEncoder(&want)
	wire := make([]rooflinePoint, 0, len(pts))
	for _, pt := range pts {
		wire = append(wire, rooflinePoint{
			Intensity:           pt.Intensity,
			Regime:              pt.Regime.Letter(),
			FlopsPerSec:         pt.FlopsPerSec,
			UncappedFlopsPerSec: pt.UncappedFlopsPerSec,
			FlopsPerJoule:       pt.FlopsPerJoule,
			AvgPowerW:           pt.AvgPowerW,
			Throttle:            nf(pt.Throttle),
		})
	}
	if err := enc.Encode(streamChunk{Seq: 7, Points: wire}); err != nil {
		t.Fatal(err)
	}
	got, ok := appendStreamChunk(nil, 7, pts)
	if !ok {
		t.Fatal("appendStreamChunk reported non-finite for finite points")
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("encoder mismatch\n got: %s\nwant: %s", got, want.Bytes())
	}

	// A non-finite required value fails encoding/json's Encode (which
	// then writes nothing); the appender must report the same.
	bad := []model.Point{mk(1, math.Inf(1), 0, 1, 1, 1)}
	if _, ok := appendStreamChunk(nil, 0, bad); ok {
		t.Fatal("appendStreamChunk accepted a non-finite required value")
	}
	badWire := []rooflinePoint{{Intensity: 1, Regime: "C", FlopsPerSec: math.Inf(1)}}
	if err := json.NewEncoder(&bytes.Buffer{}).Encode(streamChunk{Points: badWire}); err == nil {
		t.Fatal("encoding/json accepted a non-finite value; drop-line parity assumption broken")
	}
}

// TestBatchWorkerWidthIdentity: one batch of distinct items answered by
// servers at several worker widths must produce byte-identical results
// arrays — evaluation order and scheduling never leak into the payload.
func TestBatchWorkerWidthIdentity(t *testing.T) {
	items := make([]string, 48)
	for i := range items {
		items[i] = fmt.Sprintf(`{"platform_id":"gtx-titan","intensity":%g}`, 0.25+float64(i))
	}
	body := fmt.Sprintf(`{"items":[%s]}`, strings.Join(items, ","))
	var ref []byte
	for _, workers := range []int{1, 2, 4, 0} {
		_, ts := newTestServer(t, Config{BatchWorkers: workers})
		status, out := post(t, ts.URL+"/v1/batch", body)
		if status != http.StatusOK {
			t.Fatalf("workers=%d: status = %d: %s", workers, status, out)
		}
		if ref == nil {
			ref = out
			continue
		}
		if !bytes.Equal(out, ref) {
			t.Fatalf("workers=%d: batch body differs from workers=1", workers)
		}
	}
}
