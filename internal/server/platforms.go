package server

import (
	"errors"
	"net/http"
	"strings"

	"archline/internal/machine"
	"archline/internal/obs"
	"archline/internal/registry"
)

// Platform registry endpoints:
//
//	POST   /v1/platforms        upload (create or re-upload) a platform
//	GET    /v1/platforms/{id}   fetch the canonical description, with ETag/304
//	DELETE /v1/platforms/{id}   tombstone an uploaded platform
//
// Uploads stream through the strict machine.FromJSON validator straight
// off the size-limited request body, commit crash-safely through
// internal/registry, and answer with the entry's version and strong
// ETag. Re-uploading changed content bumps the version and evicts every
// cached response keyed to the old one; re-uploading identical bytes is
// idempotent.

// platformUploadResponse is the upload acknowledgement.
type platformUploadResponse struct {
	ID      string `json:"id"`
	Version uint64 `json:"version"`
	ETag    string `json:"etag"`
	// Outcome is "created", "updated", or "unchanged".
	Outcome string `json:"outcome"`
}

func (s *Server) handlePlatformUpload(w http.ResponseWriter, r *http.Request) (any, *apiError) {
	// FromJSON streams from the body (already wrapped by MaxBytesReader),
	// so an oversized or malformed upload fails without ever buffering.
	plat, err := machine.FromJSON(r.Body)
	if err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			return nil, errTooLarge(maxErr.Limit)
		}
		return nil, errBadRequest("bad platform description: %v", err)
	}
	e, outcome, rerr := s.registry.Put(plat)
	if aerr := registryError(rerr, string(plat.ID)); aerr != nil {
		return nil, aerr
	}
	span := obs.SpanFrom(r.Context())
	span.Event("registry.upload", obs.String("id", e.ID),
		obs.Int("version", int(e.Version)), obs.String("outcome", outcome.String()))
	if outcome == registry.PutUpdated {
		span.Event("registry.invalidate", obs.String("id", e.ID),
			obs.Int("old_version", int(e.Version-1)))
	}
	w.Header().Set("ETag", e.ETag)
	w.Header().Set("Location", "/v1/platforms/"+e.ID)
	status := http.StatusOK
	if outcome == registry.PutCreated {
		status = http.StatusCreated
	}
	resp, merr := marshalResponse(status, platformUploadResponse{
		ID: e.ID, Version: e.Version, ETag: e.ETag, Outcome: outcome.String(),
	})
	if merr != nil {
		return nil, errInternal("encoding response: %v", merr)
	}
	return resp, nil
}

func (s *Server) handlePlatformGet(w http.ResponseWriter, r *http.Request) (any, *apiError) {
	id := r.PathValue("id")
	e, err := s.registry.Get(id)
	if err != nil {
		return nil, errNotFound("unknown platform %q (GET /v1/platforms lists the registry)", id)
	}
	w.Header().Set("ETag", e.ETag)
	if matchesETag(r.Header.Get("If-None-Match"), e.ETag) {
		w.WriteHeader(http.StatusNotModified)
		return nil, nil
	}
	// Serve the canonical bytes the ETag hashes, never a re-encoding.
	body := make([]byte, 0, len(e.Canonical)+1)
	body = append(append(body, e.Canonical...), '\n')
	return &cachedResponse{status: http.StatusOK, body: body}, nil
}

func (s *Server) handlePlatformDelete(w http.ResponseWriter, r *http.Request) (any, *apiError) {
	id := r.PathValue("id")
	if err := s.registry.Delete(id); err != nil {
		if errors.Is(err, registry.ErrNotFound) {
			return nil, errNotFound("unknown platform %q", id)
		}
		return nil, registryError(err, id)
	}
	span := obs.SpanFrom(r.Context())
	span.Event("registry.delete", obs.String("id", id))
	span.Event("registry.invalidate", obs.String("id", id))
	w.WriteHeader(http.StatusNoContent)
	return nil, nil
}

// registryError maps the registry's sentinel failures onto the API
// error space.
func registryError(err error, id string) *apiError {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, registry.ErrReadOnly):
		return errConflict("platform %q is a built-in Table I entry and read-only", id)
	case errors.Is(err, registry.ErrNoData):
		return errRegistryReadOnly()
	case errors.Is(err, registry.ErrCrashed):
		// Unreachable outside tests (crash injection is test-only), but
		// map it defensively rather than claiming an internal bug.
		return errInternal("registry write interrupted")
	default:
		return errInternal("registry: %v", err)
	}
}

// matchesETag reports whether an If-None-Match header value matches the
// entry's strong ETag: "*" matches anything, otherwise any member of
// the comma-separated list must match byte for byte (weak validators,
// W/"...", never match — re-uploads change bytes, not just semantics).
func matchesETag(header, etag string) bool {
	header = strings.TrimSpace(header)
	if header == "" {
		return false
	}
	if header == "*" {
		return true
	}
	for _, candidate := range strings.Split(header, ",") {
		if strings.TrimSpace(candidate) == etag {
			return true
		}
	}
	return false
}
