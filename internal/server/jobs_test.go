package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"archline/internal/jobs"
	"archline/internal/machine"
)

// postFit submits a fit request with an explicit X-Request-Id and
// returns status + body.
func postFit(t *testing.T, url, reqID, body string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/fit", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if reqID != "" {
		req.Header.Set(requestIDHeader, reqID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// del performs a DELETE and returns status + body.
func del(t *testing.T, url string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// pollJob polls GET /v1/jobs/{id} until the job is terminal.
func pollJob(t *testing.T, base, id string, deadline time.Duration) map[string]any {
	t.Helper()
	end := time.Now().Add(deadline)
	for time.Now().Before(end) {
		status, body := get(t, base+"/v1/jobs/"+id)
		if status != http.StatusOK {
			t.Fatalf("poll status = %d: %s", status, body)
		}
		m := decode(t, body)
		switch m["state"] {
		case "done", "failed", "canceled":
			return m
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s did not reach a terminal state within %v", id, deadline)
	return nil
}

// TestFitJobEndToEnd is the PR's acceptance test: a paper-profile fit
// job submitted over HTTP re-fits the GTX Titan energy and power
// constants within 5% of Table I (the PR 3 bound), exports a parseable
// single-root span tree for the job under the submitting request's
// X-Request-Id, surfaces the archlined_jobs_* families in /metrics, and
// replays its progress events over NDJSON.
func TestFitJobEndToEnd(t *testing.T) {
	var trace syncBuffer
	s, ts := newTestServer(t, Config{TraceWriter: &trace})
	const reqID = "fit-e2e-trace"

	// Parameters pinned to the fit package's acceptance test: sim seed
	// 42, paper faults with seed 7, fitter seed 2.
	status, body := postFit(t, ts.URL, reqID,
		`{"platform_id":"gtx-titan","fault_profile":"paper","seed":42,"fault_seed":7,"fit_seed":2}`)
	if status != http.StatusAccepted {
		t.Fatalf("submit status = %d: %s", status, body)
	}
	sub := decode(t, body)
	id, _ := sub["id"].(string)
	if !strings.HasPrefix(id, "job-") {
		t.Fatalf("submit returned no job ID: %s", body)
	}
	if st := sub["state"]; st != "queued" && st != "running" {
		t.Errorf("submit state = %v", st)
	}

	final := pollJob(t, ts.URL, id, 2*time.Minute)
	if final["state"] != "done" {
		t.Fatalf("job state = %v (error %v)", final["state"], final["error"])
	}
	result, ok := final["result"].(map[string]any)
	if !ok {
		t.Fatalf("terminal body has no result: %v", final)
	}
	if result["fault_profile"] != "paper" {
		t.Errorf("result fault_profile = %v", result["fault_profile"])
	}
	robust, ok := result["robust"].(map[string]any)
	if !ok || robust["repeats"] == nil {
		t.Errorf("terminal body has no robust stats: %v", result)
	}
	if g := result["grade"]; g != "A" && g != "B" {
		t.Errorf("fit grade = %v under the paper profile, want A or B", g)
	}

	// Fitted constants within 5% of Table I ground truth.
	fitBody, ok := result["fit"].(map[string]any)
	if !ok {
		t.Fatalf("terminal body has no fit constants: %v", result)
	}
	truth := machine.MustByID(machine.GTXTitan).Single
	for _, c := range []struct {
		field string
		want  float64
	}{
		{"eps_flop_j_per_flop", truth.EpsFlop.JoulesPerFlop()},
		{"eps_mem_j_per_byte", truth.EpsMem.JoulesPerByte()},
		{"pi1_w", truth.Pi1.Watts()},
	} {
		got, _ := fitBody[c.field].(float64)
		if re := math.Abs(got-c.want) / math.Abs(c.want); re > 0.05 {
			t.Errorf("%s = %v, truth %v (rel err %.3f > 0.05)", c.field, got, c.want, re)
		}
	}

	// The job's span tree: all spans under the submitting request ID
	// form one tree with exactly one root, and every parent resolves.
	type spanRec struct {
		Trace  string `json:"trace"`
		Span   uint64 `json:"span"`
		Parent uint64 `json:"parent"`
		Name   string `json:"name"`
	}
	ids := map[uint64]bool{}
	var spans []spanRec
	for _, line := range strings.Split(strings.TrimSpace(trace.String()), "\n") {
		var rec spanRec
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("unparseable span line %q: %v", line, err)
		}
		if rec.Trace != reqID {
			continue // a polling request's own span
		}
		spans = append(spans, rec)
		ids[rec.Span] = true
	}
	roots, names := 0, map[string]bool{}
	for _, rec := range spans {
		names[rec.Name] = true
		if rec.Parent == 0 {
			roots++
			if rec.Name != "http./v1/fit" {
				t.Errorf("root span is %q, want http./v1/fit", rec.Name)
			}
			continue
		}
		if !ids[rec.Parent] {
			t.Errorf("span %q parent %d not in the tree", rec.Name, rec.Parent)
		}
	}
	if roots != 1 {
		t.Errorf("span tree has %d roots, want 1 (spans %v)", roots, names)
	}
	for _, want := range []string{"http./v1/fit", "job.fit", "microbench.suite", "fit.platform"} {
		if !names[want] {
			t.Errorf("span tree missing %q (have %v)", want, names)
		}
	}

	// Job-state counters on /metrics.
	_, metricsBody := get(t, ts.URL+"/metrics")
	for _, want := range []string{
		"archlined_jobs_submitted_total 1",
		`archlined_jobs_finished_total{state="done"} 1`,
		`archlined_jobs_active{state="running"} 0`,
	} {
		if !strings.Contains(string(metricsBody), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// The events endpoint replays the whole narration after the fact.
	status, evBody := get(t, ts.URL+"/v1/jobs/"+id+"/events")
	if status != http.StatusOK {
		t.Fatalf("events status = %d", status)
	}
	lines := strings.Split(strings.TrimSpace(string(evBody)), "\n")
	if len(lines) < 3 {
		t.Fatalf("events stream too short: %q", evBody)
	}
	header := decode(t, []byte(lines[0]))
	if header["job"] != id {
		t.Errorf("events header = %v", header)
	}
	seen := map[string]bool{}
	for _, line := range lines[1 : len(lines)-1] {
		ev := decode(t, []byte(line))
		name, _ := ev["name"].(string)
		seen[name] = true
	}
	for _, want := range []string{"queued", "running", "measure.start", "measure.done", "fit.start", "fit.done", "state"} {
		if !seen[want] {
			t.Errorf("events stream missing %q (have %v)", want, seen)
		}
	}
	trailer := decode(t, []byte(lines[len(lines)-1]))
	if trailer["done"] != true || trailer["state"] != "done" {
		t.Errorf("events trailer = %v", trailer)
	}

	// The engine never counts async fits as cache-missed model evals:
	// the exact-counter guarantees of the sync endpoints stay intact.
	if n := s.ModelEvals(); n != 0 {
		t.Errorf("fit job incremented model evals to %d", n)
	}
}

func TestFitSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, tc := range []struct {
		name, body string
		status     int
		code       string
	}{
		{"no platform", `{}`, http.StatusBadRequest, "bad_request"},
		{"unknown platform", `{"platform_id":"eniac"}`, http.StatusNotFound, "not_found"},
		{"unknown profile", `{"platform_id":"gtx-titan","fault_profile":"apocalyptic"}`,
			http.StatusBadRequest, "bad_request"},
		{"repeats beyond cap", `{"platform_id":"gtx-titan","repeats":11}`,
			http.StatusBadRequest, "bad_request"},
		{"sweep points beyond cap", `{"platform_id":"gtx-titan","sweep_points":1000}`,
			http.StatusBadRequest, "bad_request"},
		{"unknown field", `{"platform_id":"gtx-titan","bogus":1}`,
			http.StatusBadRequest, "bad_request"},
	} {
		status, body := post(t, ts.URL+"/v1/fit", tc.body)
		wantError(t, status, body, tc.status, tc.code)
	}
}

func TestJobUnknownIDs(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, body := get(t, ts.URL+"/v1/jobs/job-nope")
	wantError(t, status, body, http.StatusNotFound, "not_found")
	status, body = del(t, ts.URL+"/v1/jobs/job-nope")
	wantError(t, status, body, http.StatusNotFound, "not_found")
	status, body = get(t, ts.URL+"/v1/jobs/job-nope/events")
	wantError(t, status, body, http.StatusNotFound, "not_found")
}

// TestJobQueueCapSheds pins the acceptance requirement that concurrent
// duplicate submits cannot exceed the queue cap silently: with one
// worker held and queueing disabled, every extra submit answers 429 +
// Retry-After and the shed counter says how many.
func TestJobQueueCapSheds(t *testing.T) {
	s, ts := newTestServer(t, Config{JobWorkers: 1, JobQueueDepth: -1})
	release := make(chan struct{})
	started := make(chan struct{})
	_, err := s.jobs.Submit(context.Background(), "blocker",
		func(ctx context.Context, p *jobs.Progress) (any, error) {
			close(started)
			select {
			case <-release:
			case <-ctx.Done():
			}
			return nil, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	<-started

	const n = 4
	var wg sync.WaitGroup
	statuses := make([]int, n)
	retryAfter := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/fit",
				strings.NewReader(`{"platform_id":"gtx-titan"}`))
			if err != nil {
				return
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				return
			}
			defer resp.Body.Close()
			_, _ = io.Copy(io.Discard, resp.Body)
			statuses[i] = resp.StatusCode
			retryAfter[i] = resp.Header.Get("Retry-After")
		}(i)
	}
	wg.Wait()
	for i, st := range statuses {
		if st != http.StatusTooManyRequests {
			t.Errorf("duplicate submit %d status = %d, want 429", i, st)
		}
		if retryAfter[i] == "" {
			t.Errorf("duplicate submit %d missing Retry-After", i)
		}
	}
	_, metricsBody := get(t, ts.URL+"/metrics")
	if !strings.Contains(string(metricsBody), fmt.Sprintf("archlined_jobs_shed_total %d", n)) {
		t.Errorf("/metrics does not report %d shed jobs", n)
	}
	close(release)
}

// TestJobCancelRunningPromptly pins DELETE's contract: a running job's
// context is canceled and the job lands terminal without waiting for
// its work to finish.
func TestJobCancelRunningPromptly(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	started := make(chan struct{})
	id, err := s.jobs.Submit(context.Background(), "long-haul",
		func(ctx context.Context, p *jobs.Progress) (any, error) {
			close(started)
			<-ctx.Done() // would run "forever" without cancellation
			return nil, ctx.Err()
		})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	cancelAt := time.Now()
	status, body := del(t, ts.URL+"/v1/jobs/"+id)
	if status != http.StatusOK {
		t.Fatalf("cancel status = %d: %s", status, body)
	}
	final := pollJob(t, ts.URL, id, 5*time.Second)
	if final["state"] != "canceled" {
		t.Errorf("state after DELETE = %v", final["state"])
	}
	if errText, _ := final["error"].(string); !strings.Contains(errText, "context canceled") {
		t.Errorf("canceled job error = %q", errText)
	}
	if d := time.Since(cancelAt); d > 3*time.Second {
		t.Errorf("cancellation took %v, want prompt", d)
	}
	// A second DELETE is a no-op on the terminal job.
	status, body = del(t, ts.URL+"/v1/jobs/"+id)
	if status != http.StatusOK || decode(t, body)["state"] != "canceled" {
		t.Errorf("re-cancel: status %d body %s", status, body)
	}
}

// TestJobEventsStreamFollowsLive subscribes while the job is running
// and reads NDJSON lines as they are flushed, through to the terminal
// trailer.
func TestJobEventsStreamFollowsLive(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	release := make(chan struct{})
	started := make(chan struct{})
	id, err := s.jobs.Submit(context.Background(), "narrated",
		func(ctx context.Context, p *jobs.Progress) (any, error) {
			p.Emit("stage", map[string]any{"n": 1})
			close(started)
			<-release
			p.Emit("stage", map[string]any{"n": 2})
			return "narration over", nil
		})
	if err != nil {
		t.Fatal(err)
	}
	<-started

	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatal("no header line")
	}
	header := decode(t, sc.Bytes())
	if header["job"] != id || header["state"] != "running" {
		t.Errorf("header = %v", header)
	}
	// Drain the replay (queued, running, stage 1) while the job holds.
	for i := 0; i < 3; i++ {
		if !sc.Scan() {
			t.Fatalf("replay line %d missing", i)
		}
	}
	close(release)
	var tail []map[string]any
	for sc.Scan() {
		tail = append(tail, decode(t, sc.Bytes()))
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(tail) < 3 {
		t.Fatalf("live tail too short: %v", tail)
	}
	trailer := tail[len(tail)-1]
	if trailer["done"] != true || trailer["state"] != "done" {
		t.Errorf("trailer = %v", trailer)
	}
	liveNames := map[string]bool{}
	for _, ev := range tail[:len(tail)-1] {
		name, _ := ev["name"].(string)
		liveNames[name] = true
	}
	if !liveNames["stage"] || !liveNames["state"] {
		t.Errorf("live events = %v, want stage + state", liveNames)
	}
}

// TestMethodNotAllowedSetsAllow pins the RFC 9110 requirement: every
// 405 names the methods the resource does support.
func TestMethodNotAllowedSetsAllow(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, tc := range []struct {
		method, path, wantAllow string
	}{
		{http.MethodGet, "/v1/query", "POST"},
		{http.MethodDelete, "/v1/platforms", "GET, POST"},
		{http.MethodPost, "/v1/platforms/arndale-cpu", "DELETE, GET"},
		{http.MethodPost, "/v1/jobs/job-x", "DELETE, GET"},
		{http.MethodPut, "/v1/fit", "POST"},
	} {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		wantError(t, resp.StatusCode, body, http.StatusMethodNotAllowed, "method_not_allowed")
		if got := resp.Header.Get("Allow"); got != tc.wantAllow {
			t.Errorf("%s %s: Allow = %q, want %q", tc.method, tc.path, got, tc.wantAllow)
		}
	}
}

// TestGracefulDrainWithJobs covers the drain contract for the job
// engine: on shutdown, a cooperative running job finishes inside the
// drain window, a job that only stops on cancellation is canceled, and
// Run still exits cleanly within the deadline.
func TestGracefulDrainWithJobs(t *testing.T) {
	// Two workers so both jobs run concurrently even on a single-CPU
	// host, where the default would clamp to one.
	s := New(Config{Addr: "127.0.0.1:0", DrainTimeout: 3 * time.Second, JobWorkers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var stdout syncBuffer
	runErr := make(chan error, 1)
	go func() { runErr <- s.Run(ctx, &stdout, io.Discard) }()
	base := waitForListening(t, &stdout)

	release := make(chan struct{})
	bothRunning := make(chan struct{}, 2)
	cooperative, err := s.jobs.Submit(context.Background(), "cooperative",
		func(ctx context.Context, p *jobs.Progress) (any, error) {
			bothRunning <- struct{}{}
			<-release
			return "made it", nil
		})
	if err != nil {
		t.Fatal(err)
	}
	stubborn, err := s.jobs.Submit(context.Background(), "stubborn",
		func(ctx context.Context, p *jobs.Progress) (any, error) {
			bothRunning <- struct{}{}
			<-ctx.Done() // only the drain's cancellation stops this one
			return nil, ctx.Err()
		})
	if err != nil {
		t.Fatal(err)
	}
	<-bothRunning
	<-bothRunning

	cancel() // SIGTERM
	time.Sleep(50 * time.Millisecond)
	close(release) // the cooperative job finishes mid-drain

	select {
	case err := <-runErr:
		if err != nil {
			t.Errorf("Run returned %v, want nil", err)
		}
	case <-time.After(6 * time.Second):
		t.Fatal("Run did not return within the drain window")
	}
	// Both jobs are terminal: finished and canceled respectively. The
	// HTTP listener is down, so read the engine directly.
	snap, ok := s.jobs.Get(cooperative)
	if !ok || snap.State != jobs.Done {
		t.Errorf("cooperative job: ok=%v state=%v", ok, snap.State)
	}
	snap, ok = s.jobs.Get(stubborn)
	if !ok || snap.State != jobs.Canceled {
		t.Errorf("stubborn job: ok=%v state=%v", ok, snap.State)
	}
	// Submits after drain are refused (the HTTP layer would map this
	// to 503; the listener is already closed, so check the engine).
	if _, err := s.jobs.Submit(context.Background(), "late",
		func(ctx context.Context, p *jobs.Progress) (any, error) { return nil, nil }); err == nil {
		t.Error("post-drain submit was accepted")
	}
	_ = base
}
