package server

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func resp(body string) *cachedResponse {
	return &cachedResponse{status: 200, body: []byte(body)}
}

func TestLRUBasics(t *testing.T) {
	c := newLRUCache(2)
	if _, ok := c.get("a"); ok {
		t.Fatal("empty cache hit")
	}
	c.put("a", resp("A"))
	c.put("b", resp("B"))
	if got, ok := c.get("a"); !ok || string(got.body) != "A" {
		t.Fatalf("get a = %v, %v", got, ok)
	}
	// "a" is now most recently used; inserting "c" evicts "b".
	c.put("c", resp("C"))
	if _, ok := c.get("b"); ok {
		t.Error("b should have been evicted (LRU)")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("a should have survived (recently used)")
	}
	if _, ok := c.get("c"); !ok {
		t.Error("c should be present")
	}
	if n := c.size(); n != 2 {
		t.Errorf("size = %d, want 2", n)
	}
}

func TestLRUOverwrite(t *testing.T) {
	c := newLRUCache(2)
	c.put("a", resp("A1"))
	c.put("a", resp("A2"))
	if got, _ := c.get("a"); string(got.body) != "A2" {
		t.Errorf("overwrite lost: %s", got.body)
	}
	if n := c.size(); n != 1 {
		t.Errorf("size = %d, want 1 after overwrite", n)
	}
}

func TestFlightGroupShares(t *testing.T) {
	g := newFlightGroup()
	const waiters = 16
	var started, done sync.WaitGroup
	release := make(chan struct{})
	var computes atomic.Int32
	results := make([]*cachedResponse, waiters)
	for i := 0; i < waiters; i++ {
		started.Add(1)
		done.Add(1)
		go func(slot int) {
			defer done.Done()
			started.Done()
			r, _ := g.do("key", func() (*cachedResponse, *apiError) {
				computes.Add(1)
				<-release
				return resp("shared"), nil
			})
			results[slot] = r
		}(i)
	}
	started.Wait()
	close(release)
	done.Wait()
	// A caller arriving after the winning flight completes legitimately
	// recomputes (the group alone has no memory; the LRU cache above it
	// provides that), so the guarantee here is suppression, not
	// uniqueness: far fewer computations than callers, and every caller
	// sees a valid result.
	if n := computes.Load(); n < 1 || n >= waiters {
		t.Errorf("computes = %d, want in [1, %d)", n, waiters)
	}
	for i, r := range results {
		if r == nil || string(r.body) != "shared" {
			t.Errorf("waiter %d got %v", i, r)
		}
	}
}

func TestFlightGroupErrorNotSticky(t *testing.T) {
	g := newFlightGroup()
	_, aerr := g.do("k", func() (*cachedResponse, *apiError) {
		return nil, errBadRequest("boom")
	})
	if aerr == nil {
		t.Fatal("want error from first flight")
	}
	// The failed flight is deregistered, so a retry recomputes.
	r, aerr := g.do("k", func() (*cachedResponse, *apiError) {
		return resp("ok"), nil
	})
	if aerr != nil || string(r.body) != "ok" {
		t.Fatalf("retry = %v, %v", r, aerr)
	}
}

func TestFlightGroupDistinctKeys(t *testing.T) {
	g := newFlightGroup()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("k%d", i)
			r, _ := g.do(key, func() (*cachedResponse, *apiError) {
				return resp(key), nil
			})
			if string(r.body) != key {
				t.Errorf("key %s got %s", key, r.body)
			}
		}(i)
	}
	wg.Wait()
}
