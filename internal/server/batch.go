package server

import (
	"bytes"
	"encoding/json"
	"net/http"

	"archline/internal/pool"
)

// maxBatchItems caps one POST /v1/batch request. The cap bounds the
// per-request fan-out the same way maxPoints bounds a sweep: a client
// wanting more splits into multiple batches.
const maxBatchItems = 256

// batchRequest is N query items evaluated in one round-trip. Each item
// has exactly the POST /v1/query schema.
type batchRequest struct {
	Items []queryRequest `json:"items"`
}

// batchResponse returns one result per item, in item order. A result is
// either the item's query response or its error envelope (the same
// body a failing /v1/query would return); item failures do not fail the
// batch.
type batchResponse struct {
	Items   int               `json:"items"`
	Results []json.RawMessage `json:"results"`
}

// handleBatch evaluates N query items through a bounded worker pool.
// Every item goes through evalQuery, i.e. the shared response cache and
// singleflight group: cached items cost no model evaluation, duplicate
// items within the batch (or concurrent with other requests) collapse
// to a single evaluation, and the batch as a whole performs at most N
// model evaluations.
func (s *Server) handleBatch(_ http.ResponseWriter, r *http.Request) (any, *apiError) {
	var req batchRequest
	if aerr := s.decodeBody(r, &req); aerr != nil {
		return nil, aerr
	}
	if len(req.Items) == 0 {
		return nil, errBadRequest("batch needs at least one item")
	}
	if len(req.Items) > maxBatchItems {
		return nil, errBadRequest("at most %d items per batch, got %d (split into multiple requests)",
			maxBatchItems, len(req.Items))
	}
	results, errs := pool.Map(req.Items, s.cfg.BatchWorkers,
		func(_ int, item queryRequest) (json.RawMessage, error) {
			resp, aerr := s.evalQuery(item)
			if aerr != nil {
				body, err := json.Marshal(errorEnvelope{Error: errorBody{
					Code:    aerr.Code,
					Status:  aerr.Status,
					Message: aerr.Message,
				}})
				if err != nil {
					return nil, err
				}
				return body, nil
			}
			// Cached bodies carry a trailing newline for curl; inside the
			// results array it would be noise.
			return json.RawMessage(bytes.TrimSuffix(resp.body, []byte("\n"))), nil
		})
	if _, err := pool.FirstError(errs); err != nil {
		return nil, errInternal("encoding batch item error: %v", err)
	}
	return &batchResponse{Items: len(results), Results: results}, nil
}
