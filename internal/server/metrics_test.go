package server

import (
	"bytes"
	"encoding/json"
	"flag"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// -update rewrites the exposition golden from current output.
var updateGolden = flag.Bool("update", false, "rewrite golden files")

// fixedMetrics builds a Metrics on a deterministic clock: construction
// happens at t0, every later read sees t0+90s.
func fixedMetrics() *Metrics {
	t0 := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	first := true
	return newMetrics(func() time.Time {
		if first {
			first = false
			return t0
		}
		return t0.Add(90 * time.Second)
	})
}

// TestMetricsGoldenExposition pins the full exposition byte-for-byte:
// the injected clock makes the uptime line deterministic, single
// latency samples make every quantile trivially predictable, and a
// second render must reproduce identical bytes.
func TestMetricsGoldenExposition(t *testing.T) {
	m := fixedMetrics()
	m.noteRequest("/v1/platforms", 200, 250*time.Millisecond)
	m.noteRequest("/healthz", 200, 250*time.Millisecond)
	m.noteCache(true)
	m.noteCache(false)
	m.noteEval()
	m.noteInFlight(1)
	m.noteShed()
	m.noteChaos()

	got := m.Render()
	golden := filepath.Join("testdata", "exposition.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("exposition mismatch\ngot:\n%s\nwant:\n%s", got, want)
	}
	if again := m.Render(); again != got {
		t.Error("two renders of identical state produced different bytes")
	}
}

// TestMetricsConcurrentRender hammers the write paths from many
// goroutines while rendering concurrently; run under -race this is the
// registry's thread-safety proof.
func TestMetricsConcurrentRender(t *testing.T) {
	m := fixedMetrics()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				m.noteRequest("/v1/query", 200, time.Duration(i)*time.Millisecond)
				m.noteCache(i%2 == 0)
				m.noteInFlight(1)
				m.noteInFlight(-1)
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			_ = m.Render()
		}
	}()
	wg.Wait()
	if got := m.Requests(); got != 1600 {
		t.Errorf("requests total = %v, want 1600", got)
	}
	if !strings.Contains(m.Render(), `archlined_request_latency_samples{endpoint="/v1/query"} 1024`) {
		t.Error("latency window did not report its full population")
	}
}

// TestLatencyPathsAgree pins the double-accounting fix: one noteRequest
// call feeds both latency surfaces through a single aggregation sink,
// so every endpoint in the sliding-window summary also has duration
// histogram counts, and the two populations are equal.
func TestLatencyPathsAgree(t *testing.T) {
	m := fixedMetrics()
	m.noteRequest("/v1/query", 200, 10*time.Millisecond)
	m.noteRequest("/v1/query", 200, 20*time.Millisecond)
	m.noteRequest("/healthz", 200, time.Millisecond)
	exp := m.Render()
	for _, c := range []struct {
		endpoint string
		n        int
	}{
		{"/v1/query", 2},
		{"/healthz", 1},
	} {
		window := `archlined_request_latency_samples{endpoint="` + c.endpoint + `"} ` + strconv.Itoa(c.n)
		histo := `archlined_request_duration_seconds_count{endpoint="` + c.endpoint + `"} ` + strconv.Itoa(c.n)
		quant := `archlined_request_latency_seconds{endpoint="` + c.endpoint + `",quantile="0.99"}`
		for _, want := range []string{window, histo, quant} {
			if !strings.Contains(exp, want) {
				t.Errorf("exposition missing %q", want)
			}
		}
	}
}

// TestPlatformQueryAggregation checks the per-platform counters and the
// distinct-platform set flow through the aggregation stage into the
// exposition, and that the set resets per interval while the counters
// accumulate.
func TestPlatformQueryAggregation(t *testing.T) {
	m := fixedMetrics()
	m.notePlatformQuery("gtx-titan")
	m.notePlatformQuery("gtx-titan")
	m.notePlatformQuery("i7-3615qm")
	exp := m.Render()
	for _, want := range []string{
		`archlined_platform_queries_total{platform="gtx-titan"} 2`,
		`archlined_platform_queries_total{platform="i7-3615qm"} 1`,
		`archlined_distinct_platforms_queried 2`,
		`archlined_agg_series{family="platform_queries"} 2`,
	} {
		if !strings.Contains(exp, want) {
			t.Errorf("exposition missing %q in:\n%s", want, exp)
		}
	}

	// Next interval: one platform queried again. The counter accumulates
	// across flushes; the distinct gauge reflects only the new interval.
	m.notePlatformQuery("gtx-titan")
	exp = m.Render()
	for _, want := range []string{
		`archlined_platform_queries_total{platform="gtx-titan"} 3`,
		`archlined_distinct_platforms_queried 1`,
	} {
		if !strings.Contains(exp, want) {
			t.Errorf("exposition missing %q in:\n%s", want, exp)
		}
	}
}

// TestAggFlushAccounting checks only interval flushes (FlushAgg) count
// toward archlined_agg_flushes_total and the flush age appears only
// after the first one — render-time drains keep the exposition fresh
// without masking a dead flusher.
func TestAggFlushAccounting(t *testing.T) {
	m := fixedMetrics()
	m.noteRequest("/v1/query", 200, time.Millisecond)
	exp := m.Render()
	if !strings.Contains(exp, "archlined_agg_flushes_total 0") {
		t.Error("render-time drain must not count as an interval flush")
	}
	if strings.Contains(exp, "archlined_agg_flush_age_seconds") {
		t.Error("flush age rendered before any interval flush")
	}

	m.FlushAgg()
	exp = m.Render()
	if !strings.Contains(exp, "archlined_agg_flushes_total 1") {
		t.Error("interval flush was not counted")
	}
	// The fixed clock pins every read after construction to t0+90s, so
	// the age of a flush taken "now" renders as exactly zero.
	if !strings.Contains(exp, "archlined_agg_flush_age_seconds 0") {
		t.Errorf("flush age missing after an interval flush:\n%s", exp)
	}
}

// TestPlatformQueryCardinalityCap floods notePlatformQuery past the
// aggregation family's cap and checks the overflow is dropped and
// counted rather than stored.
func TestPlatformQueryCardinalityCap(t *testing.T) {
	m := fixedMetrics()
	for i := 0; i < 300; i++ {
		m.notePlatformQuery("plat-" + strconv.Itoa(i))
	}
	exp := m.Render()
	if !strings.Contains(exp, `archlined_agg_series{family="platform_queries"} 256`) {
		t.Error("platform_queries family grew past its 256-series cap")
	}
	if !strings.Contains(exp, `archlined_agg_dropped_series_total{family="platform_queries"} 44`) {
		t.Errorf("44 over-cap recordings were not counted dropped:\n%s", exp)
	}
}

// TestLatencyWindowWraps fills one endpooint's ring past capacity and
// checks the sample population saturates at the window size.
func TestLatencyWindowWraps(t *testing.T) {
	w := &latWindow{}
	for i := 0; i < latWindowSize+100; i++ {
		w.add(float64(i))
	}
	if len(w.samples()) != latWindowSize {
		t.Fatalf("window holds %d samples, want %d", len(w.samples()), latWindowSize)
	}
	// The oldest 100 samples were overwritten in place.
	if w.buf[0] != float64(latWindowSize) {
		t.Errorf("ring slot 0 = %v, want %v", w.buf[0], float64(latWindowSize))
	}
}

// TestRequestIDEcho checks X-Request-Id propagation: a caller-supplied
// ID is echoed verbatim, and a missing one is minted.
func TestRequestIDEcho(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req, err := http.NewRequest("GET", ts.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", "caller-supplied-7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "caller-supplied-7" {
		t.Errorf("echoed request ID = %q, want caller's", got)
	}

	resp2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get("X-Request-Id"); len(got) < 8 {
		t.Errorf("minted request ID = %q, want a generated ID", got)
	}
}

// TestPprofGating checks /debug/pprof/ is a 404 by default and only
// mounts under EnablePprof.
func TestPprofGating(t *testing.T) {
	_, off := newTestServer(t, Config{})
	status, _ := get(t, off.URL+"/debug/pprof/")
	if status != http.StatusNotFound {
		t.Errorf("pprof without flag: status = %d, want 404", status)
	}
	_, on := newTestServer(t, Config{EnablePprof: true})
	status, body := get(t, on.URL+"/debug/pprof/")
	if status != http.StatusOK || !bytes.Contains(body, []byte("goroutine")) {
		t.Errorf("pprof with flag: status = %d, want 200 with profile index", status)
	}
}

// TestRequestSpansExported runs a server with a TraceWriter and checks
// each request exports one http.<pattern> span carrying the request ID,
// and that the obs self-metrics appear on /metrics.
func TestRequestSpansExported(t *testing.T) {
	var traces syncBuffer
	_, ts := newTestServer(t, Config{TraceWriter: &traces})
	req, _ := http.NewRequest("GET", ts.URL+"/v1/platforms", nil)
	req.Header.Set("X-Request-Id", "trace-me")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	var rec struct {
		Trace string         `json:"trace"`
		Name  string         `json:"name"`
		Attrs map[string]any `json:"attrs"`
	}
	line := strings.TrimSpace(traces.String())
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("span line is not JSON: %v (%q)", err, line)
	}
	if rec.Name != "http./v1/platforms" || rec.Trace != "trace-me" {
		t.Errorf("span = %+v", rec)
	}
	if rec.Attrs["status"] != float64(200) || rec.Attrs["request_id"] != "trace-me" {
		t.Errorf("span attrs = %v", rec.Attrs)
	}

	_, body := get(t, ts.URL+"/metrics")
	for _, want := range []string{
		"obs_spans_started_total", "obs_spans_ended_total",
		"# HELP archlined_requests_total", "# TYPE archlined_request_duration_seconds histogram",
		`archlined_request_duration_seconds_bucket{endpoint="/v1/platforms",le="+Inf"} 1`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
