package server

import (
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"archline/internal/faults"
	"archline/internal/stats"
)

// Resilience layer: archlined's defenses against overload and its own
// failures, mirroring the fault-hardening of the measurement stack.
//
//   - Load shedding: past a configurable in-flight ceiling, /v1
//     requests are refused immediately with 429 + Retry-After rather
//     than queueing until every client times out.
//   - Circuit breaker: when the recent /v1 error rate crosses a
//     threshold, the breaker opens and fails fast with 503 +
//     Retry-After for a cooldown, then half-opens to probe with a
//     single request before closing again.
//   - Chaos middleware: an explicitly-flagged fault injector for the
//     daemon itself (enveloped 500s and latency spikes on /v1 routes),
//     driven by the same seeded profiles as the measurement faults, so
//     the breaker and shedding paths can be exercised end to end.
//
// Liveness (/healthz) and observability (/metrics) are exempt from all
// three: an operator must be able to see a struggling daemon.

// Resilience defaults.
const (
	// DefaultMaxInFlight is the in-flight request ceiling beyond which
	// /v1 traffic is shed.
	DefaultMaxInFlight = 256
	// DefaultBreakerWindow is the rolling window over which the error
	// rate is measured.
	DefaultBreakerWindow = 10 * time.Second
	// DefaultBreakerErrRate is the 5xx fraction that opens the breaker.
	DefaultBreakerErrRate = 0.5
	// DefaultBreakerMinSamples is the minimum window population before
	// the error rate is trusted.
	DefaultBreakerMinSamples = 16
	// DefaultBreakerCooldown is how long an open breaker fails fast
	// before probing.
	DefaultBreakerCooldown = 2 * time.Second
)

// isShedExempt reports whether a route pattern bypasses shedding, the
// breaker, and chaos injection.
func isShedExempt(pattern string) bool {
	return !strings.HasPrefix(pattern, "/v1")
}

func errShed() *apiError {
	return &apiError{Status: http.StatusTooManyRequests, Code: "overloaded",
		Message: "server is shedding load; retry after the indicated delay"}
}

func errBreakerOpen() *apiError {
	return &apiError{Status: http.StatusServiceUnavailable, Code: "breaker_open",
		Message: "circuit breaker is open after repeated failures; retry after the indicated delay"}
}

func errChaos() *apiError {
	return &apiError{Status: http.StatusInternalServerError, Code: "chaos_injected",
		Message: "chaos middleware injected a synthetic failure"}
}

// breakerState enumerates the circuit breaker's states.
type breakerState int

// Breaker states.
const (
	breakerClosed breakerState = iota
	breakerHalfOpen
	breakerOpen
)

// String names the state.
func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// circuitBreaker is a global breaker over /v1 requests: it watches the
// 5xx rate in a rolling window and fails fast while open. The clock is
// injectable so tests never wait out a real cooldown.
type circuitBreaker struct {
	window     time.Duration
	errRate    float64
	minSamples int
	cooldown   time.Duration
	now        func() time.Time

	mu          sync.Mutex
	state       breakerState
	windowStart time.Time
	successes   int
	failures    int
	openedAt    time.Time
	probing     bool // a half-open probe is in flight
	opens       int64
}

func newCircuitBreaker(window time.Duration, errRate float64, minSamples int,
	cooldown time.Duration, now func() time.Time) *circuitBreaker {
	if window <= 0 {
		window = DefaultBreakerWindow
	}
	if errRate <= 0 || errRate > 1 {
		errRate = DefaultBreakerErrRate
	}
	if minSamples <= 0 {
		minSamples = DefaultBreakerMinSamples
	}
	if cooldown <= 0 {
		cooldown = DefaultBreakerCooldown
	}
	if now == nil {
		now = time.Now
	}
	return &circuitBreaker{
		window: window, errRate: errRate, minSamples: minSamples,
		cooldown: cooldown, now: now,
	}
}

// allow decides whether a /v1 request may proceed. When the breaker is
// open it returns false plus the remaining cooldown for Retry-After;
// after the cooldown it admits exactly one half-open probe.
func (b *circuitBreaker) allow() (ok bool, retryAfter time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true, 0
	case breakerHalfOpen:
		if b.probing {
			return false, b.cooldown
		}
		b.probing = true
		return true, 0
	default: // open
		remaining := b.cooldown - b.now().Sub(b.openedAt)
		if remaining > 0 {
			return false, remaining
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true, 0
	}
}

// record feeds one finished /v1 request's outcome back into the
// breaker. It reports whether this outcome transitioned the breaker to
// open, so the caller can narrate the event.
func (b *circuitBreaker) record(serverFailure bool) (opened bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	if b.state == breakerHalfOpen {
		b.probing = false
		if serverFailure {
			// The probe failed: back to open for a fresh cooldown.
			b.state = breakerOpen
			b.openedAt = now
			b.opens++
			return true
		}
		// Recovery confirmed: close and start a clean window.
		b.state = breakerClosed
		b.windowStart = now
		b.successes, b.failures = 0, 0
		return false
	}
	if b.state == breakerOpen {
		return false // rejected traffic never reaches here; stray results ignored
	}
	if b.windowStart.IsZero() || now.Sub(b.windowStart) > b.window {
		b.windowStart = now
		b.successes, b.failures = 0, 0
	}
	if serverFailure {
		b.failures++
	} else {
		b.successes++
	}
	total := b.successes + b.failures
	if total >= b.minSamples && float64(b.failures)/float64(total) >= b.errRate {
		b.state = breakerOpen
		b.openedAt = now
		b.opens++
		return true
	}
	return false
}

// snapshot returns the state and open count for metrics.
func (b *circuitBreaker) snapshot() (breakerState, int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.opens
}

// chaosInjector injects synthetic daemon failures on /v1 routes: a
// fraction of requests get an enveloped 500, another fraction a latency
// spike. Rates derive from the shared fault profiles, and draws come
// from a seeded stream, so a chaos run is as reproducible as a fault-
// injected measurement run.
type chaosInjector struct {
	errRate   float64
	slowRate  float64
	slowDelay time.Duration
	sleep     func(time.Duration)

	mu  sync.Mutex
	rng *stats.Stream
}

// newChaosInjector builds an injector for a named profile; "" and
// "none" mean disabled (nil injector).
func newChaosInjector(profile string, seed uint64, sleep func(time.Duration)) (*chaosInjector, error) {
	prof, err := faults.ByName(profile)
	if err != nil {
		return nil, err
	}
	if !prof.Enabled() {
		return nil, nil
	}
	if sleep == nil {
		sleep = time.Sleep
	}
	// Map the measurement-fault magnitudes onto request-level chaos:
	// disconnects become injected 500s, dropped windows become latency.
	return &chaosInjector{
		errRate:   prof.DisconnectProb,
		slowRate:  prof.DropRate,
		slowDelay: 20 * time.Millisecond,
		sleep:     sleep,
		rng:       stats.NewStream(seed^0xc4a05, "chaos/"+prof.Name),
	}, nil
}

// intercept decides the fate of one /v1 request: a synthetic failure
// (returned as an apiError), a latency spike (slept here, reported via
// slowed), or nothing.
func (c *chaosInjector) intercept() (aerr *apiError, slowed bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	fail := c.rng.Float64() < c.errRate
	slow := c.rng.Float64() < c.slowRate
	c.mu.Unlock()
	if fail {
		return errChaos(), false
	}
	if slow {
		c.sleep(c.slowDelay)
		return nil, true
	}
	return nil, false
}

// retryAfterHeader formats a Retry-After value: whole seconds, rounded
// up, at least 1.
func retryAfterHeader(d time.Duration) string {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return fmt.Sprintf("%d", secs)
}
