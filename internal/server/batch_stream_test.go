package server

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestBatchDuplicateItemsSingleEval is the batch dedup acceptance test:
// N identical items in one batch must collapse through the cache +
// singleflight layer to exactly one model evaluation, and every result
// slot must carry the same bytes.
func TestBatchDuplicateItemsSingleEval(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	const n = 16
	item := `{"platform_id":"gtx-titan","intensity":4.0}`
	items := make([]string, n)
	for i := range items {
		items[i] = item
	}
	status, body := post(t, ts.URL+"/v1/batch",
		fmt.Sprintf(`{"items":[%s]}`, strings.Join(items, ",")))
	if status != http.StatusOK {
		t.Fatalf("status = %d: %s", status, body)
	}
	var resp struct {
		Items   int               `json:"items"`
		Results []json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("bad batch body %q: %v", body, err)
	}
	if resp.Items != n || len(resp.Results) != n {
		t.Fatalf("items = %d, len(results) = %d, want %d", resp.Items, len(resp.Results), n)
	}
	for i, r := range resp.Results {
		if !bytes.Equal(r, resp.Results[0]) {
			t.Errorf("result %d differs from result 0:\n%s\n%s", i, r, resp.Results[0])
		}
	}
	if got := s.ModelEvals(); got != 1 {
		t.Errorf("ModelEvals = %d, want exactly 1 for %d duplicate items", got, n)
	}
	m := decode(t, []byte(resp.Results[0]))
	if m["platform"] != "GTX Titan" {
		t.Errorf("result platform = %v, want GTX Titan", m["platform"])
	}
}

// TestBatchMixedResults: item failures stay per-item. The batch answers
// 200 with an error envelope in the failing slots and real responses in
// the rest, in item order.
func TestBatchMixedResults(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, body := post(t, ts.URL+"/v1/batch", `{"items":[
		{"platform_id":"gtx-titan","intensity":4.0},
		{"platform_id":"no-such-machine","intensity":4.0},
		{"platform_id":"gtx-titan"},
		{"platform_id":"desktop-cpu","w_flops":1e12,"q_bytes":1e10}
	]}`)
	if status != http.StatusOK {
		t.Fatalf("status = %d: %s", status, body)
	}
	var resp struct {
		Results []json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("bad batch body %q: %v", body, err)
	}
	if len(resp.Results) != 4 {
		t.Fatalf("len(results) = %d, want 4", len(resp.Results))
	}
	if m := decode(t, resp.Results[0]); m["regime"] == nil {
		t.Errorf("result 0 should be a query response, got %s", resp.Results[0])
	}
	for i, wantCode := range map[int]string{1: "not_found", 2: "bad_request"} {
		m := decode(t, resp.Results[i])
		e, ok := m["error"].(map[string]any)
		if !ok {
			t.Fatalf("result %d should be an error envelope, got %s", i, resp.Results[i])
		}
		if e["code"] != wantCode {
			t.Errorf("result %d error code = %v, want %q", i, e["code"], wantCode)
		}
	}
	if m := decode(t, resp.Results[3]); m["time_s"] == nil {
		t.Errorf("result 3 should be a workload response with time_s, got %s", resp.Results[3])
	}
}

// TestBatchLimits: an empty batch and an oversized batch are both
// request-level errors.
func TestBatchLimits(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	status, body := post(t, ts.URL+"/v1/batch", `{"items":[]}`)
	wantError(t, status, body, http.StatusBadRequest, "bad_request")

	items := make([]string, maxBatchItems+1)
	for i := range items {
		items[i] = `{"platform_id":"gtx-titan","intensity":4.0}`
	}
	status, body = post(t, ts.URL+"/v1/batch",
		fmt.Sprintf(`{"items":[%s]}`, strings.Join(items, ",")))
	wantError(t, status, body, http.StatusBadRequest, "bad_request")
}

// readStream parses one NDJSON sweep stream into header, chunks, and
// trailer, asserting the line protocol along the way.
func readStream(t *testing.T, r io.Reader) (header map[string]any, chunks []streamChunk, trailer streamTrailer) {
	t.Helper()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	var lines [][]byte
	for sc.Scan() {
		lines = append(lines, append([]byte(nil), sc.Bytes()...))
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scanning stream: %v", err)
	}
	if len(lines) < 2 {
		t.Fatalf("stream has %d lines, want at least header + trailer", len(lines))
	}
	header = decode(t, lines[0])
	if err := json.Unmarshal(lines[len(lines)-1], &trailer); err != nil {
		t.Fatalf("bad trailer %q: %v", lines[len(lines)-1], err)
	}
	for i, line := range lines[1 : len(lines)-1] {
		var c streamChunk
		if err := json.Unmarshal(line, &c); err != nil {
			t.Fatalf("bad chunk line %d: %q: %v", i, line, err)
		}
		if c.Seq != i {
			t.Errorf("chunk %d has seq %d", i, c.Seq)
		}
		chunks = append(chunks, c)
	}
	return header, chunks, trailer
}

// TestSweepStreamLargeGrid: a 10k-point sweep arrives as multiple
// flushed NDJSON chunks with a done trailer, without the server ever
// holding (or announcing) the full body.
func TestSweepStreamLargeGrid(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp, err := http.Post(ts.URL+"/v1/sweep/stream", "application/json",
		strings.NewReader(`{"platform_id":"gtx-titan","imin":0.001,"imax":1000,"points":10000}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d: %s", resp.StatusCode, b)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q, want application/x-ndjson", ct)
	}
	// A buffered response would carry Content-Length; the stream must be
	// chunked (length unknown up front = nothing was accumulated).
	if resp.ContentLength >= 0 {
		t.Errorf("ContentLength = %d, want unknown (chunked)", resp.ContentLength)
	}
	header, chunks, trailer := readStream(t, resp.Body)
	if header["points"] != float64(10000) {
		t.Errorf("header points = %v, want 10000", header["points"])
	}
	wantChunks := (10000 + defaultChunkPoints - 1) / defaultChunkPoints
	if len(chunks) != wantChunks {
		t.Errorf("got %d chunks, want %d", len(chunks), wantChunks)
	}
	if len(chunks) < 2 {
		t.Fatalf("got %d chunks, want at least 2 flushes", len(chunks))
	}
	total := 0
	for _, c := range chunks {
		total += len(c.Points)
	}
	if total != 10000 {
		t.Errorf("streamed %d points, want 10000", total)
	}
	if !trailer.Done || trailer.Chunks != wantChunks || trailer.Points != 10000 {
		t.Errorf("trailer = %+v, want done with %d chunks / 10000 points", trailer, wantChunks)
	}
	if got := s.ModelEvals(); got != 1 {
		t.Errorf("ModelEvals = %d, want 1 per stream", got)
	}
}

// TestSweepStreamMatchesBufferedSweep: the streamed points must be the
// same numbers the buffered roofline endpoint computes for the same
// grid — the stream changes delivery, not the model.
func TestSweepStreamMatchesBufferedSweep(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Post(ts.URL+"/v1/sweep/stream", "application/json",
		strings.NewReader(`{"platform_id":"gtx-titan","imin":0.01,"imax":100,"points":25,"chunk_points":7}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	_, chunks, trailer := readStream(t, resp.Body)
	if !trailer.Done {
		t.Fatalf("trailer = %+v, want done", trailer)
	}
	var streamed []rooflinePoint
	for _, c := range chunks {
		streamed = append(streamed, c.Points...)
	}

	status, body := get(t, ts.URL+"/v1/platforms/gtx-titan/roofline?imin=0.01&imax=100&points=25")
	if status != http.StatusOK {
		t.Fatalf("roofline status = %d: %s", status, body)
	}
	var buffered struct {
		Points []rooflinePoint `json:"points"`
	}
	if err := json.Unmarshal(body, &buffered); err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(buffered.Points) {
		t.Fatalf("streamed %d points, buffered %d", len(streamed), len(buffered.Points))
	}
	for i := range streamed {
		got, _ := json.Marshal(streamed[i])
		want, _ := json.Marshal(buffered.Points[i])
		if !bytes.Equal(got, want) {
			t.Errorf("point %d: streamed %s, buffered %s", i, got, want)
		}
	}
}

// TestSweepStreamValidation: grid and chunk bounds are enforced before
// any bytes stream.
func TestSweepStreamValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, body := range []string{
		`{"platform_id":"gtx-titan","points":1}`,
		fmt.Sprintf(`{"platform_id":"gtx-titan","points":%d}`, streamMaxPoints+1),
		fmt.Sprintf(`{"platform_id":"gtx-titan","chunk_points":%d}`, maxChunkPoints+1),
		`{"platform_id":"gtx-titan","imin":-1}`,
	} {
		status, out := post(t, ts.URL+"/v1/sweep/stream", body)
		wantError(t, status, out, http.StatusBadRequest, "bad_request")
	}
	status, out := post(t, ts.URL+"/v1/sweep/stream", `{"platform_id":"nope"}`)
	wantError(t, status, out, http.StatusNotFound, "not_found")
}

// gzipGet performs a GET with an explicit Accept-Encoding so the Go
// client's transparent decompression stays out of the way, returning the
// raw response.
func gzipGet(t *testing.T, url string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept-Encoding", "gzip")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestGzipNegotiation: a large buffered response compresses when asked,
// decompresses to the exact bytes a plain client gets, and stays raw for
// clients that don't (or refuse to) accept gzip.
func TestGzipNegotiation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	url := ts.URL + "/v1/platforms/gtx-titan/roofline?points=200"

	_, plain := get(t, url)
	if len(plain) < gzipMinBytes {
		t.Fatalf("test body too small (%d bytes) to exercise compression", len(plain))
	}

	resp := gzipGet(t, url)
	if ce := resp.Header.Get("Content-Encoding"); ce != "gzip" {
		t.Fatalf("Content-Encoding = %q, want gzip", ce)
	}
	if vary := resp.Header.Get("Vary"); !strings.Contains(vary, "Accept-Encoding") {
		t.Errorf("Vary = %q, want Accept-Encoding", vary)
	}
	gr, err := gzip.NewReader(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	unzipped, err := io.ReadAll(gr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(unzipped, plain) {
		t.Errorf("gzip body decompresses to %d bytes, plain body is %d bytes", len(unzipped), len(plain))
	}

	// An explicit q=0 refuses gzip even though the token is present.
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept-Encoding", "gzip;q=0")
	raw, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Body.Close()
	if ce := raw.Header.Get("Content-Encoding"); ce != "" {
		t.Errorf("Content-Encoding = %q with q=0, want identity", ce)
	}
}

// TestGzipSkipsSmallBodies: tiny responses are cheaper raw than framed.
func TestGzipSkipsSmallBodies(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := gzipGet(t, ts.URL+"/healthz")
	if ce := resp.Header.Get("Content-Encoding"); ce != "" {
		t.Errorf("Content-Encoding = %q for a tiny body, want identity", ce)
	}
}

// TestSweepStreamGzip: the NDJSON stream compresses end to end and
// still parses line by line after decompression.
func TestSweepStreamGzip(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/sweep/stream",
		strings.NewReader(`{"platform_id":"gtx-titan","points":2000,"chunk_points":500}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept-Encoding", "gzip")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ce := resp.Header.Get("Content-Encoding"); ce != "gzip" {
		t.Fatalf("Content-Encoding = %q, want gzip", ce)
	}
	gr, err := gzip.NewReader(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	_, chunks, trailer := readStream(t, gr)
	if len(chunks) != 4 || !trailer.Done || trailer.Points != 2000 {
		t.Errorf("got %d chunks, trailer %+v; want 4 chunks done with 2000 points", len(chunks), trailer)
	}
}

// TestAcceptsGzip covers the negotiation parser's corners.
func TestAcceptsGzip(t *testing.T) {
	cases := []struct {
		header string
		want   bool
	}{
		{"", false},
		{"gzip", true},
		{"GZIP", true},
		{"br, gzip;q=0.5", true},
		{"gzip;q=0", false},
		{"gzip; q=0.0", false},
		{"*", true},
		{"identity", false},
		{"br;q=1.0, identity;q=0.5", false},
	}
	for _, c := range cases {
		r, _ := http.NewRequest(http.MethodGet, "/", nil)
		if c.header != "" {
			r.Header.Set("Accept-Encoding", c.header)
		}
		if got := acceptsGzip(r); got != c.want {
			t.Errorf("acceptsGzip(%q) = %v, want %v", c.header, got, c.want)
		}
	}
}

// BenchmarkBatchVsSequential measures the batch endpoint's round-trip
// saving: 64 distinct queries as one /v1/batch POST versus 64 separate
// /v1/query POSTs. Run with -benchtime to taste; the gap is the HTTP +
// handler overhead the batch amortizes.
func BenchmarkBatchVsSequential(b *testing.B) {
	items := make([]string, 64)
	for i := range items {
		items[i] = fmt.Sprintf(`{"platform_id":"gtx-titan","intensity":%g}`, 0.5+float64(i))
	}
	batchBody := fmt.Sprintf(`{"items":[%s]}`, strings.Join(items, ","))

	b.Run("batch", func(b *testing.B) {
		ts := httptest.NewServer(New(Config{}).Handler())
		defer ts.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp, err := http.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader(batchBody))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := io.Copy(io.Discard, resp.Body); err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("status %d", resp.StatusCode)
			}
		}
	})
	b.Run("sequential", func(b *testing.B) {
		ts := httptest.NewServer(New(Config{}).Handler())
		defer ts.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, item := range items {
				resp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(item))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := io.Copy(io.Discard, resp.Body); err != nil {
					b.Fatal(err)
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					b.Fatalf("status %d", resp.StatusCode)
				}
			}
		}
	})
}

// BenchmarkSweepStream measures the streaming sweep end to end: a
// 10k-point grid consumed and discarded. Allocations stay flat in grid
// size because only one chunk is ever buffered.
func BenchmarkSweepStream(b *testing.B) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	body := `{"platform_id":"gtx-titan","imin":0.001,"imax":1000,"points":10000}`
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(ts.URL+"/v1/sweep/stream", "application/json", strings.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
}
