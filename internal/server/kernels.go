package server

import (
	"sync"

	"archline/internal/model"
)

// kernelCache memoizes per-(platform, precision) coefficient tables so
// repeated sweep and query traffic reuses one model.Kernel instead of
// rebuilding it on every request. Keys embed the platform's
// version-carrying cache fragment (resolvePlatform's "id:<id>@v<N>" or
// "json:<canon>"), so a re-upload mints new keys and kernels built
// against a retired platform version become structurally unreachable —
// the same invalidation-by-keying scheme the response cache relies on.
//
// A kernel is a dozen float64s, so the cache is a flat map with a hard
// entry cap; when full it resets wholesale rather than tracking
// recency. Rebuilding a kernel costs a few dozen flops — cheaper than
// any bookkeeping that would avoid the rebuild.
type kernelCache struct {
	mu  sync.RWMutex
	cap int
	m   map[string]model.Kernel
}

// newKernelCache builds a cache holding at most capacity kernels.
func newKernelCache(capacity int) *kernelCache {
	if capacity < 1 {
		capacity = 1
	}
	return &kernelCache{cap: capacity, m: make(map[string]model.Kernel)}
}

// get returns the kernel for key, building and memoizing it from p on a
// miss. Two concurrent misses may both build; they build identical
// values (NewKernel is pure), so the race is benign and last-put wins.
func (c *kernelCache) get(key string, p model.Params) model.Kernel {
	c.mu.RLock()
	k, ok := c.m[key]
	c.mu.RUnlock()
	if ok {
		return k
	}
	k = model.NewKernel(p)
	c.mu.Lock()
	if len(c.m) >= c.cap {
		clear(c.m)
	}
	c.m[key] = k
	c.mu.Unlock()
	return k
}
