package server

import (
	"compress/gzip"
	"encoding/json"
	"io"
	"math"
	"net/http"

	"archline/internal/model"
)

// Streaming sweep bounds. The buffered sweep endpoints cap at maxPoints
// because they must hold the whole response; the stream holds only one
// chunk, so its grid cap is generous.
const (
	streamMaxPoints    = 1 << 20
	defaultChunkPoints = 512
	maxChunkPoints     = 4096
)

// sweepStreamRequest asks for a roofline sweep delivered as NDJSON
// chunks: a platform, a precision, the intensity grid, and the chunk
// granularity.
type sweepStreamRequest struct {
	platformRef
	Precision string `json:"precision,omitempty"`
	sweepGrid
	// ChunkPoints is how many grid points each NDJSON chunk carries.
	// Zero takes defaultChunkPoints; the cap is maxChunkPoints.
	ChunkPoints int `json:"chunk_points,omitempty"`
}

// streamHeader is the first NDJSON line: the sweep's identity and shape,
// so a consumer can size progress bars before any points arrive.
type streamHeader struct {
	PlatformID  string  `json:"platform_id,omitempty"`
	Name        string  `json:"name"`
	Precision   string  `json:"precision"`
	IMin        float64 `json:"imin"`
	IMax        float64 `json:"imax"`
	Points      int     `json:"points"`
	ChunkPoints int     `json:"chunk_points"`
}

// streamChunk is one flushed slice of the sweep. The handler does not
// marshal this struct on the hot path — appendStreamChunk hand-rolls
// the identical bytes into a pooled buffer — but the type remains the
// schema of record: the encoder tests marshal it through encoding/json
// and byte-compare.
type streamChunk struct {
	Seq    int             `json:"seq"`
	Points []rooflinePoint `json:"points"`
}

// streamTrailer is the final NDJSON line. Done is true only when every
// chunk was delivered; a mid-stream failure (the status line is long
// gone by then) instead ends the stream with Error set and Done false.
type streamTrailer struct {
	Done   bool       `json:"done"`
	Chunks int        `json:"chunks"`
	Points int        `json:"points"`
	Error  *errorBody `json:"error,omitempty"`
}

// handleSweepStream serves POST /v1/sweep/stream: an arbitrarily large
// roofline sweep as newline-delimited JSON, flushed chunk by chunk so
// server memory stays constant in the grid size (one chunk buffered,
// never the full response) and clients can start consuming immediately.
// Responses are not cached — the stream is recomputed per request and
// counts as one model evaluation.
func (s *Server) handleSweepStream(w http.ResponseWriter, r *http.Request) (any, *apiError) {
	var req sweepStreamRequest
	if aerr := s.decodeBody(r, &req); aerr != nil {
		return nil, aerr
	}
	plat, platKey, aerr := s.resolvePlatform(req.platformRef)
	if aerr != nil {
		return nil, aerr
	}
	p, aerr := paramsFor(plat, req.Precision)
	if aerr != nil {
		return nil, aerr
	}
	precision := req.Precision
	if precision == "" {
		precision = "single"
	}
	g := req.sweepGrid.orDefaults()
	if !(g.IMin > 0) || math.IsInf(g.IMin, 0) {
		return nil, errBadRequest("imin must be a positive finite intensity, got %g", g.IMin)
	}
	if !(g.IMax > g.IMin) || math.IsInf(g.IMax, 0) {
		return nil, errBadRequest("imax must exceed imin, got [%g, %g]", g.IMin, g.IMax)
	}
	if g.Points < 2 || g.Points > streamMaxPoints {
		return nil, errBadRequest("points must be in [2, %d] for streaming sweeps, got %d",
			streamMaxPoints, g.Points)
	}
	chunk := req.ChunkPoints
	if chunk == 0 {
		chunk = defaultChunkPoints
	}
	if chunk < 1 || chunk > maxChunkPoints {
		return nil, errBadRequest("chunk_points must be in [1, %d], got %d", maxChunkPoints, chunk)
	}

	s.noteEval()
	w.Header().Set("Content-Type", "application/x-ndjson")
	var out io.Writer = w
	var gz *gzip.Writer
	if acceptsGzip(r) {
		w.Header().Set("Content-Encoding", "gzip")
		w.Header().Add("Vary", "Accept-Encoding")
		gz = gzipWriters.Get().(*gzip.Writer)
		gz.Reset(w)
		defer func() {
			_ = gz.Close()
			gzipWriters.Put(gz)
		}()
		out = gz
	}
	w.WriteHeader(http.StatusOK)
	flusher, canFlush := w.(http.Flusher)
	// flush pushes one NDJSON line's bytes all the way to the client:
	// through the gzip frame first, then the HTTP chunked writer.
	flush := func() {
		if gz != nil {
			_ = gz.Flush()
		}
		if canFlush {
			flusher.Flush()
		}
	}
	enc := json.NewEncoder(out)
	// Encode failures past this point mean the client went away; the
	// trailer protocol below is the only error channel left.
	_ = enc.Encode(streamHeader{
		PlatformID: string(plat.ID), Name: plat.Name, Precision: precision,
		IMin: g.IMin, IMax: g.IMax, Points: g.Points, ChunkPoints: chunk,
	})
	flush()

	// The grid is generated on the fly (the LogSpace formula, never
	// materialized) and buffered one chunk at a time: the kernel
	// evaluates a chunk into a pooled point buffer and the hand-rolled
	// encoder renders it into a pooled line buffer, so the steady-state
	// loop allocates nothing regardless of the grid size.
	k := s.kernels.get(platKey+"|"+precision, p)
	l0, l1 := math.Log(g.IMin), math.Log(g.IMax)
	ptsPtr := pointBufs.Get().(*[]model.Point)
	linePtr := lineBufs.Get().(*[]byte)
	defer func() {
		pointBufs.Put(ptsPtr)
		lineBufs.Put(linePtr)
	}()
	chunks := 0
	ctx := r.Context()
	for start := 0; start < g.Points; start += chunk {
		if err := ctx.Err(); err != nil {
			aerr := errTimeout()
			_ = enc.Encode(streamTrailer{Chunks: chunks, Points: start,
				Error: &errorBody{Code: aerr.Code, Status: aerr.Status, Message: aerr.Message}})
			flush()
			return nil, nil
		}
		end := start + chunk
		if end > g.Points {
			end = g.Points
		}
		pts := k.AppendLogSpace((*ptsPtr)[:0], l0, l1, start, end, g.Points)
		line, ok := appendStreamChunk((*linePtr)[:0], chunks, pts)
		*linePtr = line[:0] // keep any growth for the next chunk
		if ok {
			// A failed write means the client went away — same silent
			// treatment the encoder errors get.
			_, _ = out.Write(line)
		}
		flush()
		chunks++
	}
	_ = enc.Encode(streamTrailer{Done: true, Chunks: chunks, Points: g.Points})
	flush()
	return nil, nil
}
