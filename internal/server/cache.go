package server

import (
	"container/list"
	"sync"
)

// lruCache is a fixed-capacity least-recently-used response cache. Every
// /v1 response is a pure function of its canonicalized request, so the
// cache needs no expiry — only bounded memory.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used
	items map[string]*list.Element
}

// lruEntry is one cached response keyed by canonical request.
type lruEntry struct {
	key  string
	resp *cachedResponse
}

// newLRUCache builds a cache holding at most capacity entries.
func newLRUCache(capacity int) *lruCache {
	return &lruCache{
		cap:   capacity,
		order: list.New(),
		items: map[string]*list.Element{},
	}
}

// get returns the cached response and marks it most recently used.
func (c *lruCache) get(key string) (*cachedResponse, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).resp, true
}

// put inserts or refreshes a response, evicting the least recently used
// entry when over capacity.
func (c *lruCache) put(key string, resp *cachedResponse) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).resp = resp
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&lruEntry{key: key, resp: resp})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

// size reports the current entry count.
func (c *lruCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// invalidate removes every entry whose key matches and reports how many
// went. The registry's re-upload protocol calls this through the
// sharded cache so responses computed against a retired platform
// version free their memory immediately (correctness never depends on
// it: version-carrying keys make stale entries unreachable anyway).
func (c *lruCache) invalidate(match func(key string) bool) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for el := c.order.Front(); el != nil; {
		next := el.Next()
		if e := el.Value.(*lruEntry); match(e.key) {
			c.order.Remove(el)
			delete(c.items, e.key)
			n++
		}
		el = next
	}
	return n
}

// cacheShardFloor is the smallest per-shard capacity worth sharding
// for: below it the cache degenerates to a single shard, preserving
// strict global LRU order (which the eviction tests pin for tiny
// caches) and avoiding shards too small to hold a working set.
const cacheShardFloor = 32

// shardedCache splits the response cache into independently locked
// lruCache shards, selected by key hash, so a hot mutation (an
// invalidation sweep, a put on a busy shard) never stalls lookups on
// the other shards. Hashing is plain (not the registry's consistent
// ring): cache shards never rebalance, they only split lock contention.
type shardedCache struct {
	shards []*lruCache
}

// newShardedCache builds a cache of totalCap entries split over at most
// want shards, degenerating to fewer shards when totalCap is too small
// to give each one cacheShardFloor entries.
func newShardedCache(totalCap, want int) *shardedCache {
	if want < 1 {
		want = 1
	}
	if max := totalCap / cacheShardFloor; want > max {
		want = max
	}
	if want < 1 {
		want = 1
	}
	perShard := (totalCap + want - 1) / want
	c := &shardedCache{shards: make([]*lruCache, want)}
	for i := range c.shards {
		c.shards[i] = newLRUCache(perShard)
	}
	return c
}

func (c *shardedCache) pick(key string) *lruCache {
	if len(c.shards) == 1 {
		return c.shards[0]
	}
	return c.shards[hashCacheKey(key)%uint64(len(c.shards))]
}

// hashCacheKey is FNV-1a, inlined so the hot lookup path allocates
// nothing.
func hashCacheKey(key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return h
}

func (c *shardedCache) get(key string) (*cachedResponse, bool) {
	return c.pick(key).get(key)
}

func (c *shardedCache) put(key string, resp *cachedResponse) {
	c.pick(key).put(key, resp)
}

func (c *shardedCache) size() int {
	n := 0
	for _, s := range c.shards {
		n += s.size()
	}
	return n
}

// invalidate sweeps every shard; a matching key may live on any of them.
func (c *shardedCache) invalidate(match func(key string) bool) int {
	n := 0
	for _, s := range c.shards {
		n += s.invalidate(match)
	}
	return n
}

// flightGroup deduplicates concurrent identical computations: while one
// caller computes a key, later callers for the same key wait and share
// the result instead of recomputing. This is the stdlib-only analogue of
// x/sync/singleflight.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

// flight is one in-progress computation.
type flight struct {
	wg   sync.WaitGroup
	resp *cachedResponse
	aerr *apiError
}

// newFlightGroup builds an empty group.
func newFlightGroup() *flightGroup {
	return &flightGroup{m: map[string]*flight{}}
}

// do runs fn for key, unless an identical call is already in progress,
// in which case it waits for and shares that call's result. Errors are
// shared with waiters but never cached, so a later retry recomputes.
func (g *flightGroup) do(key string, fn func() (*cachedResponse, *apiError)) (*cachedResponse, *apiError) {
	g.mu.Lock()
	if f, ok := g.m[key]; ok {
		g.mu.Unlock()
		f.wg.Wait()
		return f.resp, f.aerr
	}
	f := &flight{}
	f.wg.Add(1)
	g.m[key] = f
	g.mu.Unlock()

	f.resp, f.aerr = fn()
	f.wg.Done()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	return f.resp, f.aerr
}
