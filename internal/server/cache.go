package server

import (
	"container/list"
	"sync"
)

// lruCache is a fixed-capacity least-recently-used response cache. Every
// /v1 response is a pure function of its canonicalized request, so the
// cache needs no expiry — only bounded memory.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used
	items map[string]*list.Element
}

// lruEntry is one cached response keyed by canonical request.
type lruEntry struct {
	key  string
	resp *cachedResponse
}

// newLRUCache builds a cache holding at most capacity entries.
func newLRUCache(capacity int) *lruCache {
	return &lruCache{
		cap:   capacity,
		order: list.New(),
		items: map[string]*list.Element{},
	}
}

// get returns the cached response and marks it most recently used.
func (c *lruCache) get(key string) (*cachedResponse, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).resp, true
}

// put inserts or refreshes a response, evicting the least recently used
// entry when over capacity.
func (c *lruCache) put(key string, resp *cachedResponse) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).resp = resp
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&lruEntry{key: key, resp: resp})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

// size reports the current entry count.
func (c *lruCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// flightGroup deduplicates concurrent identical computations: while one
// caller computes a key, later callers for the same key wait and share
// the result instead of recomputing. This is the stdlib-only analogue of
// x/sync/singleflight.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

// flight is one in-progress computation.
type flight struct {
	wg   sync.WaitGroup
	resp *cachedResponse
	aerr *apiError
}

// newFlightGroup builds an empty group.
func newFlightGroup() *flightGroup {
	return &flightGroup{m: map[string]*flight{}}
}

// do runs fn for key, unless an identical call is already in progress,
// in which case it waits for and shares that call's result. Errors are
// shared with waiters but never cached, so a later retry recomputes.
func (g *flightGroup) do(key string, fn func() (*cachedResponse, *apiError)) (*cachedResponse, *apiError) {
	g.mu.Lock()
	if f, ok := g.m[key]; ok {
		g.mu.Unlock()
		f.wg.Wait()
		return f.resp, f.aerr
	}
	f := &flight{}
	f.wg.Add(1)
	g.m[key] = f
	g.mu.Unlock()

	f.resp, f.aerr = fn()
	f.wg.Done()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	return f.resp, f.aerr
}
