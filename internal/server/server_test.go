package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// newTestServer builds a server + httptest host with default config.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// get performs a GET and returns status + body.
func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// post performs a JSON POST and returns status + body.
func post(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// decode unmarshals a response body into a generic map.
func decode(t *testing.T, body []byte) map[string]any {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("bad JSON %q: %v", body, err)
	}
	return m
}

// wantError asserts the structured error envelope.
func wantError(t *testing.T, status int, body []byte, wantStatus int, wantCode string) {
	t.Helper()
	if status != wantStatus {
		t.Fatalf("status = %d, want %d (body %s)", status, wantStatus, body)
	}
	m := decode(t, body)
	e, ok := m["error"].(map[string]any)
	if !ok {
		t.Fatalf("no error envelope in %s", body)
	}
	if e["code"] != wantCode {
		t.Errorf("error code = %v, want %q", e["code"], wantCode)
	}
	if e["status"] != float64(wantStatus) {
		t.Errorf("error status = %v, want %d", e["status"], wantStatus)
	}
	if e["message"] == "" {
		t.Error("error message is empty")
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, body := get(t, ts.URL+"/healthz")
	if status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	if m := decode(t, body); m["status"] != "ok" {
		t.Errorf("healthz = %s", body)
	}
}

func TestPlatforms(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, body := get(t, ts.URL+"/v1/platforms")
	if status != http.StatusOK {
		t.Fatalf("status = %d: %s", status, body)
	}
	m := decode(t, body)
	plats, ok := m["platforms"].([]any)
	if !ok || len(plats) != 12 {
		t.Fatalf("want 12 Table I platforms, got %d", len(plats))
	}
	first := plats[0].(map[string]any)
	for _, field := range []string{"id", "name", "class", "pi1_w", "delta_pi_w", "peak_gflops_per_joule"} {
		if _, ok := first[field]; !ok {
			t.Errorf("platform entry missing %q: %v", field, first)
		}
	}
}

func TestRoofline(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, body := get(t, ts.URL+"/v1/platforms/gtx-titan/roofline?imin=0.25&imax=256&points=31")
	if status != http.StatusOK {
		t.Fatalf("status = %d: %s", status, body)
	}
	m := decode(t, body)
	if m["platform_id"] != "gtx-titan" {
		t.Errorf("platform_id = %v", m["platform_id"])
	}
	points, ok := m["points"].([]any)
	if !ok || len(points) != 31 {
		t.Fatalf("want 31 points, got %d", len(points))
	}
	// Titan's cap binds (Table I: pi_flop + pi_mem > DeltaPi).
	if m["cap_binds"] != true {
		t.Error("gtx-titan cap_binds should be true")
	}
	first := points[0].(map[string]any)
	if first["regime"] != "M" {
		t.Errorf("regime at I=0.25 = %v, want M (memory-bound)", first["regime"])
	}
	last := points[len(points)-1].(map[string]any)
	if !(last["flops_per_sec"].(float64) > first["flops_per_sec"].(float64)) {
		t.Error("flop rate should grow with intensity")
	}
}

func TestRooflineErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, body := get(t, ts.URL+"/v1/platforms/cray-1/roofline")
	wantError(t, status, body, http.StatusNotFound, "not_found")

	status, body = get(t, ts.URL+"/v1/platforms/gtx-titan/roofline?imin=-1")
	wantError(t, status, body, http.StatusBadRequest, "bad_request")

	status, body = get(t, ts.URL+"/v1/platforms/gtx-titan/roofline?points=100000")
	wantError(t, status, body, http.StatusBadRequest, "bad_request")

	status, body = get(t, ts.URL+"/v1/platforms/gtx-titan/roofline?precision=half")
	wantError(t, status, body, http.StatusBadRequest, "bad_request")
}

func TestQueryWorkload(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, body := post(t, ts.URL+"/v1/query",
		`{"platform_id": "gtx-titan", "w_flops": 2e9, "q_bytes": 1e9}`)
	if status != http.StatusOK {
		t.Fatalf("status = %d: %s", status, body)
	}
	m := decode(t, body)
	if m["intensity"].(float64) != 2 {
		t.Errorf("intensity = %v, want 2", m["intensity"])
	}
	for _, field := range []string{"time_s", "energy_j", "avg_power_w", "regime"} {
		if m[field] == nil {
			t.Errorf("workload query missing %q: %s", field, body)
		}
	}
	// Cross-check: avg power must equal energy/time.
	timeS := m["time_s"].(float64)
	energyJ := m["energy_j"].(float64)
	powerW := m["avg_power_w"].(float64)
	if rel := (energyJ/timeS - powerW) / powerW; rel > 1e-9 || rel < -1e-9 {
		t.Errorf("P != E/T: %g != %g/%g", powerW, energyJ, timeS)
	}
}

func TestQueryIntensity(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, body := post(t, ts.URL+"/v1/query", `{"platform_id": "arndale-gpu", "intensity": 4}`)
	if status != http.StatusOK {
		t.Fatalf("status = %d: %s", status, body)
	}
	m := decode(t, body)
	if m["time_s"] != nil {
		t.Error("intensity query should not report absolute time")
	}
	if !(m["flops_per_sec"].(float64) > 0) || !(m["avg_power_w"].(float64) > 0) {
		t.Errorf("rates missing: %s", body)
	}
}

func TestQueryCustomPlatform(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// A platform description in the -platform-file schema.
	custom := `{
	  "platform": {
	    "id": "custom-box", "name": "Custom Box", "processor": "X1", "class": "desktop",
	    "vendor_single_gflops": 1000, "vendor_mem_gbs": 100,
	    "sustained_single_gflops": 800, "sustained_mem_gbs": 80,
	    "eps_s_pj_per_flop": 100, "eps_mem_pj_per_byte": 500,
	    "pi1_w": 50, "delta_pi_w": 100, "cache_line_bytes": 64
	  },
	  "intensity": 8
	}`
	status, body := post(t, ts.URL+"/v1/query", custom)
	if status != http.StatusOK {
		t.Fatalf("status = %d: %s", status, body)
	}
	m := decode(t, body)
	if m["platform"] != "Custom Box" {
		t.Errorf("platform = %v", m["platform"])
	}

	// Both platform_id and platform set: a usage error.
	status, body = post(t, ts.URL+"/v1/query",
		`{"platform_id": "gtx-titan", "platform": {"id": "x"}, "intensity": 1}`)
	wantError(t, status, body, http.StatusBadRequest, "bad_request")
}

func TestQueryErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, body string
		status     int
		code       string
	}{
		{"malformed", `{"platform_id": `, http.StatusBadRequest, "bad_request"},
		{"unknown field", `{"platform_id": "gtx-titan", "wflops": 1}`, http.StatusBadRequest, "bad_request"},
		{"trailing garbage", `{"platform_id": "gtx-titan", "intensity": 1} {}`, http.StatusBadRequest, "bad_request"},
		{"unknown platform", `{"platform_id": "cray-1", "intensity": 1}`, http.StatusNotFound, "not_found"},
		{"no mode", `{"platform_id": "gtx-titan"}`, http.StatusBadRequest, "bad_request"},
		{"both modes", `{"platform_id": "gtx-titan", "intensity": 1, "w_flops": 1, "q_bytes": 1}`,
			http.StatusBadRequest, "bad_request"},
		{"half workload", `{"platform_id": "gtx-titan", "w_flops": 1}`, http.StatusBadRequest, "bad_request"},
		{"negative intensity", `{"platform_id": "gtx-titan", "intensity": -2}`, http.StatusBadRequest, "bad_request"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			status, body := post(t, ts.URL+"/v1/query", c.body)
			wantError(t, status, body, c.status, c.code)
		})
	}
}

func TestOversizedBody(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 128})
	big := `{"platform_id": "gtx-titan", "intensity": 1, "padding": "` +
		strings.Repeat("x", 4096) + `"}`
	status, body := post(t, ts.URL+"/v1/query", big)
	wantError(t, status, body, http.StatusRequestEntityTooLarge, "body_too_large")
}

func TestCompare(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, body := post(t, ts.URL+"/v1/compare",
		`{"a": {"platform_id": "gtx-titan"}, "b": {"platform_id": "arndale-gpu"}}`)
	if status != http.StatusOK {
		t.Fatalf("status = %d: %s", status, body)
	}
	m := decode(t, body)
	if int(m["agg_count"].(float64)) < 2 {
		t.Errorf("agg_count = %v, want the fig. 1 power-matched multiple", m["agg_count"])
	}
	for _, curves := range []string{"perf", "eff", "power"} {
		cs, ok := m[curves].([]any)
		if !ok || len(cs) != 3 {
			t.Fatalf("want 3 %s series (A, B, aggregate), got %v", curves, m[curves])
		}
	}
	if _, ok := m["energy_crossover"].(float64); !ok {
		t.Errorf("fig. 1 energy crossover missing: %s", body)
	}
}

func TestCompareMissingPlatform(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, body := post(t, ts.URL+"/v1/compare", `{"a": {"platform_id": "gtx-titan"}}`)
	wantError(t, status, body, http.StatusBadRequest, "bad_request")
}

func TestWhatIfThrottle(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, body := post(t, ts.URL+"/v1/whatif",
		`{"kind": "throttle", "platform": {"platform_id": "gtx-titan"}, "grid": 9}`)
	wantError(t, status, body, http.StatusBadRequest, "bad_request") // unknown field "grid"

	status, body = post(t, ts.URL+"/v1/whatif",
		`{"kind": "throttle", "platform": {"platform_id": "gtx-titan"}, "points": 9}`)
	if status != http.StatusOK {
		t.Fatalf("status = %d: %s", status, body)
	}
	m := decode(t, body)
	curves, ok := m["throttle"].([]any)
	if !ok || len(curves) != 4 {
		t.Fatalf("want 4 default cap curves, got %v", m["throttle"])
	}
	full := curves[0].(map[string]any)
	half := curves[1].(map[string]any)
	if full["frac"].(float64) != 1 || half["frac"].(float64) != 0.5 {
		t.Errorf("default fracs wrong: %v %v", full["frac"], half["frac"])
	}
	if len(full["points"].([]any)) != 9 {
		t.Errorf("want 9 points per curve")
	}
}

func TestWhatIfBound(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, body := post(t, ts.URL+"/v1/whatif",
		`{"kind": "bound", "big": {"platform_id": "gtx-titan"},
		  "small": {"platform_id": "arndale-gpu"}, "budget_w": 200, "intensity": 4}`)
	if status != http.StatusOK {
		t.Fatalf("status = %d: %s", status, body)
	}
	m := decode(t, body)
	b, ok := m["bound"].(map[string]any)
	if !ok {
		t.Fatalf("no bound section: %s", body)
	}
	if b["budget_w"].(float64) != 200 || !(b["small_count"].(float64) > 0) {
		t.Errorf("bound result wrong: %v", b)
	}
}

func TestWhatIfAggregate(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, body := post(t, ts.URL+"/v1/whatif",
		`{"kind": "aggregate", "big": {"platform_id": "gtx-titan"}, "small": {"platform_id": "arndale-gpu"}}`)
	if status != http.StatusOK {
		t.Fatalf("status = %d: %s", status, body)
	}
	m := decode(t, body)
	agg, ok := m["aggregate"].(map[string]any)
	if !ok {
		t.Fatalf("no aggregate section: %s", body)
	}
	if !(agg["count"].(float64) > 1) {
		t.Errorf("aggregate count = %v", agg["count"])
	}
}

func TestWhatIfUnknownKind(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, body := post(t, ts.URL+"/v1/whatif", `{"kind": "overclock"}`)
	wantError(t, status, body, http.StatusBadRequest, "bad_request")
}

func TestNotFoundAndMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, body := get(t, ts.URL+"/v2/nothing")
	wantError(t, status, body, http.StatusNotFound, "not_found")

	// PUT: /v1/platforms takes GET (list) and POST (upload), nothing else.
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/platforms", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	putBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	wantError(t, resp.StatusCode, putBody, http.StatusMethodNotAllowed, "method_not_allowed")

	status, body = get(t, ts.URL+"/v1/query")
	wantError(t, status, body, http.StatusMethodNotAllowed, "method_not_allowed")
}

func TestCacheDeterminism(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	url := ts.URL + "/v1/platforms/arndale-gpu/roofline?points=17"
	status1, body1 := get(t, url)
	status2, body2 := get(t, url)
	if status1 != http.StatusOK || status2 != http.StatusOK {
		t.Fatalf("statuses %d, %d", status1, status2)
	}
	if string(body1) != string(body2) {
		t.Error("identical requests returned different bytes")
	}
	if n := s.ModelEvals(); n != 1 {
		t.Errorf("model evals = %d, want 1 (second request must hit the cache)", n)
	}
	if h := s.Metrics().CacheHits(); h != 1 {
		t.Errorf("cache hits = %d, want 1", h)
	}

	// POST bodies with different formatting canonicalize to one entry.
	q1 := `{"platform_id": "gtx-titan", "intensity": 4}`
	q2 := `{"intensity": 4.0, "platform_id": "gtx-titan"}`
	_, qBody1 := post(t, ts.URL+"/v1/query", q1)
	_, qBody2 := post(t, ts.URL+"/v1/query", q2)
	if string(qBody1) != string(qBody2) {
		t.Error("equivalent queries returned different bytes")
	}
	if n := s.ModelEvals(); n != 2 {
		t.Errorf("model evals = %d, want 2 (reordered JSON must share the cache slot)", n)
	}
}

func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, _ = get(t, ts.URL+"/v1/platforms")
	_, _ = get(t, ts.URL+"/v1/platforms")
	_, _ = get(t, ts.URL+"/healthz")
	status, body := get(t, ts.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	text := string(body)
	for _, want := range []string{
		`archlined_requests_total{endpoint="/v1/platforms",status="200"} 2`,
		`archlined_requests_total{endpoint="/healthz",status="200"} 1`,
		`archlined_request_latency_seconds{endpoint="/v1/platforms",quantile="0.5"}`,
		"archlined_cache_hits_total 1",
		"archlined_cache_misses_total 1",
		"archlined_model_evals_total 1",
		"archlined_uptime_seconds",
		"archlined_in_flight_requests",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q in:\n%s", want, text)
		}
	}
}

func TestLRUEvictionEndToEnd(t *testing.T) {
	s, ts := newTestServer(t, Config{CacheEntries: 2})
	urls := []string{
		ts.URL + "/v1/platforms/gtx-titan/roofline?points=5",
		ts.URL + "/v1/platforms/arndale-gpu/roofline?points=5",
		ts.URL + "/v1/platforms/gtx-680/roofline?points=5",
	}
	for _, u := range urls {
		_, _ = get(t, u)
	}
	// Cache holds 2 of the 3; re-requesting the oldest recomputes.
	_, _ = get(t, urls[0])
	if n := s.ModelEvals(); n != 4 {
		t.Errorf("model evals = %d, want 4 (first entry evicted by LRU)", n)
	}
}
