package server

import (
	"compress/gzip"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"time"

	"archline/internal/faults"
	"archline/internal/fit"
	"archline/internal/jobs"
	"archline/internal/machine"
	"archline/internal/microbench"
	"archline/internal/obs"
	"archline/internal/sim"
)

// Async fit-job bounds. A fit job runs the whole microbenchmark suite;
// the repeat and sweep caps keep one request from scheduling hours of
// simulated measurement.
const (
	maxFitRepeats     = 10
	maxFitSweepPoints = 256
)

// Default seeds for the async fit pipeline, matching the CLI measure
// defaults so `archline measure` and POST /v1/fit reproduce each other.
const (
	defaultFitSeed      = 42
	defaultFitFaultSeed = 7
)

// fitRequest submits an asynchronous measure→fit job: which platform to
// measure, under which fault profile, and the pipeline's seeds.
type fitRequest struct {
	platformRef
	// FaultProfile names the injector profile ("none", "paper",
	// "harsh"); empty means none.
	FaultProfile string `json:"fault_profile,omitempty"`
	// Seed drives the simulated measurement noise. Zero-omitted takes
	// the CLI default (42).
	Seed *uint64 `json:"seed,omitempty"`
	// FaultSeed drives the fault injector schedule. Zero-omitted takes
	// the CLI default (7).
	FaultSeed *uint64 `json:"fault_seed,omitempty"`
	// FitSeed seeds the fitter's optimizer restarts; defaults to Seed.
	FitSeed *uint64 `json:"fit_seed,omitempty"`
	// Repeats is the per-kernel robust repeat count (default 3, max 10).
	Repeats int `json:"repeats,omitempty"`
	// SweepPoints overrides the suite's intensity grid size (default
	// from microbench.DefaultConfig, max 256).
	SweepPoints int `json:"sweep_points,omitempty"`
}

// fitSpec is the validated form of a fitRequest, carried into the job.
type fitSpec struct {
	plat        *machine.Platform
	prof        faults.Profile
	seed        uint64
	faultSeed   uint64
	fitSeed     uint64
	repeats     int
	sweepPoints int
}

// robustStatsBody is RobustStats on the wire.
type robustStatsBody struct {
	Repeats    int    `json:"repeats"`
	Retries    int    `json:"retries"`
	Discarded  int    `json:"discarded"`
	WorstGrade string `json:"worst_grade"`
}

// fittedParamsBody carries the fitted model constants in SI units.
type fittedParamsBody struct {
	TauFlopS    float64 `json:"tau_flop_s_per_flop"`
	TauMemS     float64 `json:"tau_mem_s_per_byte"`
	EpsFlopJ    float64 `json:"eps_flop_j_per_flop"`
	EpsMemJ     float64 `json:"eps_mem_j_per_byte"`
	Pi1W        float64 `json:"pi1_w"`
	DeltaPiW    float64 `json:"delta_pi_w"`
	IdlePowerW  float64 `json:"idle_power_w"`
	Kernels     int     `json:"kernels"`
	ResidualLog float64 `json:"residual_log"`
}

// fitResult is a Done fit job's terminal body: identity, robustness
// stats, the fitted constants, and the fit's trustworthiness grade.
type fitResult struct {
	PlatformID    string           `json:"platform_id,omitempty"`
	Platform      string           `json:"platform"`
	FaultProfile  string           `json:"fault_profile"`
	Seed          uint64           `json:"seed"`
	FaultSeed     uint64           `json:"fault_seed"`
	FitSeed       uint64           `json:"fit_seed"`
	Robust        robustStatsBody  `json:"robust"`
	Fit           fittedParamsBody `json:"fit"`
	Contamination float64          `json:"contamination"`
	RobustApplied bool             `json:"robust_applied"`
	Grade         string           `json:"grade"`
}

// jobInfo is a job's wire representation for submit, poll, and cancel
// responses. Result is present only once the job is Done; Error only
// when it Failed or was Canceled.
type jobInfo struct {
	ID      string     `json:"id"`
	Name    string     `json:"name"`
	State   string     `json:"state"`
	Created time.Time  `json:"created"`
	Started *time.Time `json:"started,omitempty"`
	Ended   *time.Time `json:"ended,omitempty"`
	Events  int        `json:"events"`
	Error   string     `json:"error,omitempty"`
	Result  any        `json:"result,omitempty"`
}

// jobInfoFrom shapes a snapshot for the wire.
func jobInfoFrom(snap jobs.Snapshot) jobInfo {
	info := jobInfo{
		ID:      snap.ID,
		Name:    snap.Name,
		State:   snap.State.String(),
		Created: snap.Created,
		Events:  snap.Events,
		Result:  snap.Result,
	}
	if !snap.Started.IsZero() {
		t := snap.Started
		info.Started = &t
	}
	if !snap.Ended.IsZero() {
		t := snap.Ended
		info.Ended = &t
	}
	if snap.Err != nil {
		info.Error = snap.Err.Error()
	}
	return info
}

func errJobQueueFull() *apiError {
	return &apiError{Status: http.StatusTooManyRequests, Code: "job_queue_full",
		Message: "the job queue is full; retry after running jobs finish"}
}

func errJobsDraining() *apiError {
	return &apiError{Status: http.StatusServiceUnavailable, Code: "draining",
		Message: "the server is shutting down and no longer accepts jobs"}
}

// handleFitSubmit serves POST /v1/fit: validate the measure→fit request,
// submit it to the job engine, and answer 202 with the job's identity.
// The job itself runs the robust suite + fit off the request path, under
// a span tree rooted at this request's span (the submitting context is
// detached, so the request finishing never cancels the job).
func (s *Server) handleFitSubmit(w http.ResponseWriter, r *http.Request) (any, *apiError) {
	var req fitRequest
	if aerr := s.decodeBody(r, &req); aerr != nil {
		return nil, aerr
	}
	plat, _, aerr := s.resolvePlatform(req.platformRef)
	if aerr != nil {
		return nil, aerr
	}
	prof, err := faults.ByName(req.FaultProfile)
	if err != nil {
		return nil, errBadRequest("%v", err)
	}
	if req.Repeats < 0 || req.Repeats > maxFitRepeats {
		return nil, errBadRequest("repeats must be in [0, %d], got %d", maxFitRepeats, req.Repeats)
	}
	if req.SweepPoints < 0 || req.SweepPoints > maxFitSweepPoints {
		return nil, errBadRequest("sweep_points must be in [0, %d], got %d", maxFitSweepPoints, req.SweepPoints)
	}
	spec := fitSpec{
		plat:        plat,
		prof:        prof,
		seed:        defaultFitSeed,
		faultSeed:   defaultFitFaultSeed,
		repeats:     req.Repeats,
		sweepPoints: req.SweepPoints,
	}
	if req.Seed != nil {
		spec.seed = *req.Seed
	}
	if req.FaultSeed != nil {
		spec.faultSeed = *req.FaultSeed
	}
	spec.fitSeed = spec.seed
	if req.FitSeed != nil {
		spec.fitSeed = *req.FitSeed
	}
	// Detach severs the request's cancellation and deadline but keeps
	// its tracer, request ID, and active span: the job outlives this
	// request, yet its spans still parent under http./v1/fit and the
	// trace stays the submitting X-Request-Id.
	id, err := s.jobs.Submit(obs.Detach(r.Context()), "fit:"+plat.Name, s.fitJob(spec))
	switch {
	case errors.Is(err, jobs.ErrQueueFull):
		w.Header().Set("Retry-After", retryAfterHeader(time.Second))
		return nil, errJobQueueFull()
	case errors.Is(err, jobs.ErrClosed):
		return nil, errJobsDraining()
	case err != nil:
		return nil, errInternal("submitting job: %v", err)
	}
	snap, ok := s.jobs.Get(id)
	if !ok {
		return nil, errInternal("job %s vanished after submit", id)
	}
	resp, merr := marshalResponse(http.StatusAccepted, jobInfoFrom(snap))
	if merr != nil {
		return nil, errInternal("encoding response: %v", merr)
	}
	return resp, nil
}

// fitJob builds the job function for one validated fit spec: run the
// fault-tolerant microbenchmark suite, then fit the model constants,
// narrating each stage through the job's progress events and its own
// job.fit span.
func (s *Server) fitJob(spec fitSpec) jobs.Func {
	return func(ctx context.Context, p *jobs.Progress) (any, error) {
		ctx, span := obs.Start(ctx, "job.fit",
			obs.String("platform", spec.plat.Name), obs.String("profile", spec.prof.Name))
		defer span.End()
		cfg := microbench.DefaultConfig()
		if spec.sweepPoints > 0 {
			cfg.SweepPoints = spec.sweepPoints
		}
		simOpts := sim.Options{Seed: spec.seed, Sanitize: true}
		if spec.prof.Enabled() {
			simOpts.Faults = faults.New(spec.prof, spec.faultSeed)
		}
		p.Emit("measure.start", map[string]any{
			"platform": spec.plat.Name, "profile": spec.prof.Name, "seed": spec.seed,
		})
		res, rs, err := microbench.RunRobustContext(ctx, spec.plat, cfg, simOpts,
			microbench.RobustConfig{Repeats: spec.repeats})
		if err != nil {
			return nil, err
		}
		p.Emit("measure.done", map[string]any{
			"kernels": len(res.Measurements), "retries": rs.Retries,
			"discarded": rs.Discarded, "worst_grade": rs.WorstGrade.String(),
		})
		p.Emit("fit.start", nil)
		pf, err := fit.PlatformContext(ctx, res, fit.Options{Seed: spec.fitSeed})
		if err != nil {
			return nil, err
		}
		p.Emit("fit.done", map[string]any{"grade": pf.Grade.String()})
		var platID string
		if spec.plat.ID != "" {
			platID = string(spec.plat.ID)
		}
		return fitResult{
			PlatformID:   platID,
			Platform:     spec.plat.Name,
			FaultProfile: spec.prof.Name,
			Seed:         spec.seed,
			FaultSeed:    spec.faultSeed,
			FitSeed:      spec.fitSeed,
			Robust: robustStatsBody{
				Repeats:    rs.Repeats,
				Retries:    rs.Retries,
				Discarded:  rs.Discarded,
				WorstGrade: rs.WorstGrade.String(),
			},
			Fit: fittedParamsBody{
				TauFlopS:    pf.Params.TauFlop.SecondsPerFlop(),
				TauMemS:     pf.Params.TauMem.SecondsPerByte(),
				EpsFlopJ:    pf.Params.EpsFlop.JoulesPerFlop(),
				EpsMemJ:     pf.Params.EpsMem.JoulesPerByte(),
				Pi1W:        pf.Params.Pi1.Watts(),
				DeltaPiW:    pf.Params.DeltaPi.Watts(),
				IdlePowerW:  res.IdlePower.Watts(),
				Kernels:     len(res.Measurements),
				ResidualLog: pf.Residual,
			},
			Contamination: pf.Contamination,
			RobustApplied: pf.RobustApplied,
			Grade:         pf.Grade.String(),
		}, nil
	}
}

// handleJobGet serves GET /v1/jobs/{id}: the job's current snapshot.
// Never cached — a job's state is anything but a pure function of the
// request.
func (s *Server) handleJobGet(_ http.ResponseWriter, r *http.Request) (any, *apiError) {
	id := r.PathValue("id")
	snap, ok := s.jobs.Get(id)
	if !ok {
		return nil, errNotFound("no such job %q (finished jobs are evicted after their TTL)", id)
	}
	return jobInfoFrom(snap), nil
}

// handleJobCancel serves DELETE /v1/jobs/{id}: request cancellation and
// answer with the post-cancel snapshot. Queued jobs are canceled
// immediately; running jobs observe their context and land terminal
// shortly after. Canceling a terminal job is a no-op, not an error.
func (s *Server) handleJobCancel(_ http.ResponseWriter, r *http.Request) (any, *apiError) {
	id := r.PathValue("id")
	snap, ok := s.jobs.Cancel(id)
	if !ok {
		return nil, errNotFound("no such job %q (finished jobs are evicted after their TTL)", id)
	}
	return jobInfoFrom(snap), nil
}

// jobEventsHeader is the first NDJSON line of an events stream.
type jobEventsHeader struct {
	Job    string `json:"job"`
	Name   string `json:"name"`
	State  string `json:"state"`
	Replay int    `json:"replay"`
}

// jobEventsTrailer is the final NDJSON line. Done is true only when the
// stream followed the job all the way to a terminal state; hitting the
// request deadline first ends the stream with Error set instead (long
// follows need a raised -timeout).
type jobEventsTrailer struct {
	Done   bool       `json:"done"`
	State  string     `json:"state,omitempty"`
	Events int        `json:"events"`
	Error  *errorBody `json:"error,omitempty"`
}

// handleJobEvents serves GET /v1/jobs/{id}/events: the job's progress
// events as NDJSON — the retained history first, then live events as
// they happen, ending with a trailer once the job is terminal. Uses the
// same flush-per-line + gzip machinery as the sweep stream.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) (any, *apiError) {
	id := r.PathValue("id")
	replay, live, unsubscribe, ok := s.jobs.Subscribe(id)
	if !ok {
		return nil, errNotFound("no such job %q (finished jobs are evicted after their TTL)", id)
	}
	defer unsubscribe()
	snap, _ := s.jobs.Get(id)

	w.Header().Set("Content-Type", "application/x-ndjson")
	var out io.Writer = w
	var gz *gzip.Writer
	if acceptsGzip(r) {
		w.Header().Set("Content-Encoding", "gzip")
		w.Header().Add("Vary", "Accept-Encoding")
		gz = gzipWriters.Get().(*gzip.Writer)
		gz.Reset(w)
		defer func() {
			_ = gz.Close()
			gzipWriters.Put(gz)
		}()
		out = gz
	}
	w.WriteHeader(http.StatusOK)
	flusher, canFlush := w.(http.Flusher)
	flush := func() {
		if gz != nil {
			_ = gz.Flush()
		}
		if canFlush {
			flusher.Flush()
		}
	}
	enc := json.NewEncoder(out)
	// Encode failures past this point mean the client went away; the
	// trailer protocol is the only error channel left.
	_ = enc.Encode(jobEventsHeader{
		Job: id, Name: snap.Name, State: snap.State.String(), Replay: len(replay),
	})
	flush()
	events := 0
	for _, ev := range replay {
		_ = enc.Encode(ev)
		events++
	}
	flush()
	ctx := r.Context()
	for {
		select {
		case ev, open := <-live:
			if !open {
				// Terminal: the engine closed the stream.
				final, _ := s.jobs.Get(id)
				_ = enc.Encode(jobEventsTrailer{
					Done: true, State: final.State.String(), Events: events,
				})
				flush()
				return nil, nil
			}
			_ = enc.Encode(ev)
			events++
			flush()
		case <-ctx.Done():
			aerr := errTimeout()
			cur, _ := s.jobs.Get(id)
			_ = enc.Encode(jobEventsTrailer{
				State: cur.State.String(), Events: events,
				Error: &errorBody{Code: aerr.Code, Status: aerr.Status, Message: aerr.Message},
			})
			flush()
			return nil, nil
		}
	}
}
