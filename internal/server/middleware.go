package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"archline/internal/obs"
)

// handlerFunc is the internal handler shape: return a value to encode as
// JSON (may be a *cachedResponse for pre-encoded bodies) or an apiError.
type handlerFunc func(w http.ResponseWriter, r *http.Request) (any, *apiError)

// methodHandlers maps HTTP methods to handlers for one route pattern.
// A request with a method outside the map gets 405 plus the RFC
// 9110-required Allow header listing what the pattern does support.
type methodHandlers map[string]handlerFunc

// allowList renders a methodHandlers' Allow header value: the supported
// methods, sorted so the header is deterministic.
func allowList(methods methodHandlers) string {
	names := make([]string, 0, len(methods))
	for m := range methods {
		names = append(names, m)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// apiError is a structured endpoint failure carrying its HTTP status.
type apiError struct {
	Status  int
	Code    string
	Message string
}

// Error implements error.
func (e *apiError) Error() string { return e.Message }

func errBadRequest(format string, args ...any) *apiError {
	return &apiError{Status: http.StatusBadRequest, Code: "bad_request", Message: fmt.Sprintf(format, args...)}
}

func errNotFound(format string, args ...any) *apiError {
	return &apiError{Status: http.StatusNotFound, Code: "not_found", Message: fmt.Sprintf(format, args...)}
}

func errMethodNotAllowed(method string) *apiError {
	return &apiError{Status: http.StatusMethodNotAllowed, Code: "method_not_allowed",
		Message: fmt.Sprintf("method %s not allowed on this endpoint", method)}
}

func errTooLarge(limit int64) *apiError {
	return &apiError{Status: http.StatusRequestEntityTooLarge, Code: "body_too_large",
		Message: fmt.Sprintf("request body exceeds the %d-byte limit", limit)}
}

func errConflict(format string, args ...any) *apiError {
	return &apiError{Status: http.StatusConflict, Code: "conflict", Message: fmt.Sprintf(format, args...)}
}

// errRegistryReadOnly is a 403 (not 503: the daemon is healthy and the
// circuit breaker must not count it) for mutations against a registry
// with no backing data directory.
func errRegistryReadOnly() *apiError {
	return &apiError{Status: http.StatusForbidden, Code: "registry_read_only",
		Message: "platform uploads need durable storage: start archlined with -data-dir"}
}

func errTimeout() *apiError {
	return &apiError{Status: http.StatusGatewayTimeout, Code: "deadline_exceeded",
		Message: "request exceeded its processing deadline"}
}

func errInternal(format string, args ...any) *apiError {
	return &apiError{Status: http.StatusInternalServerError, Code: "internal", Message: fmt.Sprintf(format, args...)}
}

// errorEnvelope is the wire form of every failure.
type errorEnvelope struct {
	Error errorBody `json:"error"`
}

type errorBody struct {
	Code    string `json:"code"`
	Status  int    `json:"status"`
	Message string `json:"message"`
}

// cachedResponse is one encoded response body ready to serve.
type cachedResponse struct {
	status int
	body   []byte
}

// marshalResponse encodes v with a trailing newline (curl-friendly).
func marshalResponse(status int, v any) (*cachedResponse, error) {
	body, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return &cachedResponse{status: status, body: append(body, '\n')}, nil
}

// statusRecorder captures the response status for metrics.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

// WriteHeader records the status before delegating.
func (r *statusRecorder) WriteHeader(status int) {
	r.status = status
	r.ResponseWriter.WriteHeader(status)
}

// Flush forwards streaming flushes: wrapping the ResponseWriter hides
// its http.Flusher, and the NDJSON sweep stream needs each chunk pushed
// to the client as it completes.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// requestIDHeader is the header archlined reads a caller-supplied
// request ID from and echoes the effective ID back on.
const requestIDHeader = "X-Request-Id"

// reqSeq backs the fallback request-ID generator.
var reqSeq atomic.Uint64

// newRequestID mints a 16-hex-char request ID, falling back to a
// process-local sequence if the system entropy source fails.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err == nil {
		return hex.EncodeToString(b[:])
	}
	return fmt.Sprintf("req-%d", reqSeq.Add(1))
}

// serveInstrumented runs one handler under the full middleware stack:
// request-ID propagation, span + structured access log, in-flight
// accounting, latency/status metrics labelled by the route pattern,
// method enforcement, request body limits, a context deadline, and
// panic containment.
func (s *Server) serveInstrumented(pattern string, methods methodHandlers, w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.metrics.noteInFlight(1)
	rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}

	// Request identity: adopt the caller's X-Request-Id (or mint one)
	// and echo it on the response, so one ID ties together the client's
	// records, the access log, and the span tree.
	reqID := r.Header.Get(requestIDHeader)
	if reqID == "" {
		reqID = newRequestID()
	}
	rec.Header().Set(requestIDHeader, reqID)
	ctx := obs.WithRequestID(r.Context(), reqID)
	if s.tracer != nil {
		ctx = obs.WithTracer(ctx, s.tracer)
	}
	ctx, span := obs.Start(ctx, "http."+pattern,
		obs.String("method", r.Method), obs.String("request_id", reqID))
	defer span.End()
	r = r.WithContext(ctx)

	// Registered after span.End (LIFO), so the final status lands on the
	// span before it exports, after the recover below rewrites it.
	defer func() {
		s.metrics.noteInFlight(-1)
		d := time.Since(start)
		s.metrics.noteRequest(pattern, rec.status, d)
		span.SetAttr(obs.Int("status", rec.status))
		s.log.LogAttrs(ctx, slog.LevelInfo, "request",
			slog.String("endpoint", pattern), slog.String("method", r.Method),
			slog.Int("status", rec.status), slog.Float64("dur_s", d.Seconds()))
	}()

	// Resilience gates for /v1 routes (liveness and metrics stay open):
	// shed past the in-flight ceiling, fail fast while the breaker is
	// open, and feed every admitted request's outcome back into it.
	if !isShedExempt(pattern) {
		if s.cfg.MaxInFlight > 0 && s.metrics.InFlight() > int64(s.cfg.MaxInFlight) {
			s.metrics.noteShed()
			span.Event("shed", obs.Int("max_in_flight", s.cfg.MaxInFlight))
			s.log.LogAttrs(ctx, slog.LevelWarn, "load shed",
				slog.String("endpoint", pattern), slog.Int("max_in_flight", s.cfg.MaxInFlight))
			rec.Header().Set("Retry-After", retryAfterHeader(time.Second))
			writeError(rec, errShed())
			return
		}
		ok, retry := s.breaker.allow()
		if !ok {
			span.Event("breaker.reject", obs.Float("retry_after_s", retry.Seconds()))
			s.log.LogAttrs(ctx, slog.LevelWarn, "breaker reject",
				slog.String("endpoint", pattern))
			rec.Header().Set("Retry-After", retryAfterHeader(retry))
			writeError(rec, errBreakerOpen())
			return
		}
		// Registered before the panic recover below, so the recover
		// (LIFO) rewrites rec.status first and the breaker sees the 500.
		defer func() {
			if s.breaker.record(rec.status >= http.StatusInternalServerError) {
				span.Event("breaker.open")
				s.log.LogAttrs(ctx, slog.LevelWarn, "circuit breaker opened",
					slog.String("endpoint", pattern))
			}
		}()
	}
	defer func() {
		if p := recover(); p != nil {
			span.Event("panic", obs.String("value", fmt.Sprint(p)))
			s.log.LogAttrs(ctx, slog.LevelError, "handler panic",
				slog.String("endpoint", pattern), slog.String("panic", fmt.Sprint(p)))
			writeError(rec, errInternal("handler panic: %v", p))
		}
	}()

	h := methods[r.Method]
	if h == nil {
		rec.Header().Set("Allow", allowList(methods))
		writeError(rec, errMethodNotAllowed(r.Method))
		return
	}
	if !isShedExempt(pattern) {
		aerr, slowed := s.chaos.intercept()
		if slowed {
			span.Event("chaos.slow")
		}
		if aerr != nil {
			s.metrics.noteChaos()
			span.Event("chaos.fail")
			s.log.LogAttrs(ctx, slog.LevelWarn, "chaos injected failure",
				slog.String("endpoint", pattern))
			writeError(rec, aerr)
			return
		}
	}
	if r.Body != nil {
		r.Body = http.MaxBytesReader(rec, r.Body, s.cfg.MaxBodyBytes)
	}
	ctx, cancel := context.WithTimeout(ctx, s.cfg.RequestTimeout)
	defer cancel()
	r = r.WithContext(ctx)

	v, aerr := h(rec, r)
	if aerr != nil {
		writeError(rec, aerr)
		return
	}
	if v == nil {
		return // handler wrote the response itself (e.g. /metrics)
	}
	resp, ok := v.(*cachedResponse)
	if !ok {
		var err error
		resp, err = marshalResponse(http.StatusOK, v)
		if err != nil {
			writeError(rec, errInternal("encoding response: %v", err))
			return
		}
	}
	writeResponseNegotiated(rec, r, resp)
}

// writeResponse emits an encoded body with JSON headers.
func writeResponse(w http.ResponseWriter, resp *cachedResponse) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(resp.status)
	// A failed write means the client went away; there is no recovery
	// path and the status is already recorded.
	_, _ = w.Write(resp.body)
}

// writeError emits the structured error envelope.
func writeError(w http.ResponseWriter, aerr *apiError) {
	resp, err := marshalResponse(aerr.Status, errorEnvelope{Error: errorBody{
		Code:    aerr.Code,
		Status:  aerr.Status,
		Message: aerr.Message,
	}})
	if err != nil {
		// The envelope is marshal-safe by construction; keep a plain-text
		// fallback anyway.
		http.Error(w, aerr.Message, aerr.Status)
		return
	}
	writeResponse(w, resp)
}

// decodeBody strictly decodes a JSON request body into dst, translating
// size-limit and deadline failures into their structured statuses.
func (s *Server) decodeBody(r *http.Request, dst any) *apiError {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var maxErr *http.MaxBytesError
		switch {
		case errors.As(err, &maxErr):
			return errTooLarge(maxErr.Limit)
		case errors.Is(err, context.DeadlineExceeded):
			return errTimeout()
		default:
			return errBadRequest("malformed JSON body: %v", err)
		}
	}
	// Reject trailing garbage after the JSON document.
	if dec.More() {
		return errBadRequest("request body holds more than one JSON document")
	}
	return nil
}
