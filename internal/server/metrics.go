package server

import (
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"archline/internal/jobs"
	"archline/internal/obs"
	"archline/internal/obs/agg"
	"archline/internal/registry"
	"archline/internal/stats"
)

// latWindowSize bounds how many recent latency samples each endpoint
// keeps for quantile estimation.
const latWindowSize = 1024

// Metrics is the daemon's metrics surface, built on the shared
// obs.Registry: request counts by endpoint and status, latency
// histograms and sliding-window quantiles (computed with
// internal/stats, the same quantile machinery as the paper's boxplots),
// per-platform query counters, cache hit ratio, model-evaluation count,
// in-flight gauge, resilience counters, and the obs layer's own
// self-metrics. Render emits a Prometheus-style text exposition with
// # HELP / # TYPE headers. The clock is injectable so the uptime line
// is deterministic under test.
//
// The high-frequency request paths (request counts, latency samples,
// per-platform counters) do not touch the registry directly: they
// record into a statsd-style aggregation stage (internal/obs/agg) whose
// hot path is a striped-map update with zero allocation, and the
// buffered state drains into the registry families on FlushAgg — called
// by the server's interval flusher — and, uncounted, at the top of
// every Render so the exposition is never stale. Low-frequency
// counters asserted exactly by tests (cache, evals, shed, chaos,
// in-flight) stay direct.
type Metrics struct {
	start time.Time
	now   func() time.Time

	reg             *obs.Registry
	requests        *obs.CounterVec
	duration        *obs.HistogramVec
	platformQueries *obs.CounterVec

	cacheHits         obs.Counter
	cacheMisses       obs.Counter
	modelEvals        obs.Counter
	shed              obs.Counter
	chaos             obs.Counter
	inFlight          obs.Gauge
	distinctPlatforms obs.Gauge
	aggFlushes        obs.Counter

	agg            *agg.Aggregator
	aggRequests    *agg.Counter
	aggLatency     *agg.Timer
	aggPlatQueries *agg.Counter
	aggPlatSet     *agg.Set

	flushMu   sync.Mutex
	lastFlush time.Time // set only by FlushAgg (the counted interval flush)

	mu        sync.Mutex
	latencies map[string]*latWindow // endpoint -> recent seconds

	// breakerProbe, when set, reports the circuit breaker's state and
	// open count for the exposition.
	breakerProbe func() (breakerState, int64)
	// tracerProbe, when set, reports the span tracer's self-counters.
	tracerProbe func() obs.TracerStats
	// logProbe, when set, reports the structured-log record count.
	logProbe func() int64
	// jobsProbe, when set, reports the async job engine's gauges and
	// counters for the archlined_jobs_* families.
	jobsProbe func() jobs.Stats
	// registryProbe, when set, reports the platform registry's upload,
	// invalidation, quarantine, and shard-occupancy figures for the
	// archlined_registry_* families.
	registryProbe func() registry.Stats
}

// latWindow is a fixed ring of recent latency samples in seconds.
type latWindow struct {
	buf  []float64
	next int
}

func (w *latWindow) add(seconds float64) {
	if len(w.buf) < latWindowSize {
		w.buf = append(w.buf, seconds)
		return
	}
	w.buf[w.next] = seconds
	w.next = (w.next + 1) % latWindowSize
}

// samples returns a copy of the window's contents.
func (w *latWindow) samples() []float64 {
	return append([]float64(nil), w.buf...)
}

// latQuantiles are the exposed latency quantiles.
var latQuantiles = []float64{0.5, 0.9, 0.99}

// NewMetrics builds an empty registry on the wall clock.
func NewMetrics() *Metrics { return newMetrics(time.Now) }

// newMetrics builds the registry on an injectable clock, registering
// every family the daemon exposes.
func newMetrics(now func() time.Time) *Metrics {
	reg := obs.NewRegistry()
	m := &Metrics{
		start:     now(),
		now:       now,
		reg:       reg,
		latencies: map[string]*latWindow{},
	}
	m.requests = reg.Counter("archlined_requests_total",
		"finished requests by route pattern and HTTP status", "endpoint", "status")
	m.duration = reg.Histogram("archlined_request_duration_seconds",
		"request latency distribution by route pattern", obs.DefBuckets, "endpoint")
	m.cacheHits = reg.Counter("archlined_cache_hits_total", "response cache hits").With()
	m.cacheMisses = reg.Counter("archlined_cache_misses_total", "response cache misses").With()
	m.modelEvals = reg.Counter("archlined_model_evals_total",
		"cache-missed model evaluations").With()
	m.shed = reg.Counter("archlined_shed_total", "requests refused by load shedding").With()
	m.chaos = reg.Counter("archlined_chaos_injected_total",
		"chaos-injected synthetic failures").With()
	m.inFlight = reg.Gauge("archlined_in_flight_requests",
		"requests currently being served").With()
	m.platformQueries = reg.Counter("archlined_platform_queries_total",
		`model queries by platform id ("inline" is a caller-supplied platform)`, "platform")
	m.distinctPlatforms = reg.Gauge("archlined_distinct_platforms_queried",
		"distinct platform ids queried in the last flush interval").With()
	m.aggFlushes = reg.Counter("archlined_agg_flushes_total",
		"interval flushes of the metric aggregation stage").With()

	// The aggregation stage. Family caps are deliberate policy:
	// request/latency cardinality is bounded by the route table (times
	// the status alphabet), so the aggregator default is plenty;
	// platform_queries is the genuinely high-cardinality family (any
	// registry upload mints an id), so it gets a tight cap and spills to
	// archlined_agg_dropped_series_total rather than growing without
	// bound. The latency ring holds 4096 samples per endpoint per
	// interval; beyond that the oldest samples are overwritten and the
	// loss lands in archlined_agg_dropped_samples_total.
	m.agg = agg.New(agg.Config{})
	m.aggRequests = m.agg.Counter("requests", 2, func(l []string, delta float64) {
		m.requests.With(l[0], l[1]).Add(delta)
	}, agg.Opts{})
	m.aggLatency = m.agg.Timer("latency", 1, m.sinkLatency, agg.Opts{TimerCap: 4096})
	m.aggPlatQueries = m.agg.Counter("platform_queries", 1, func(l []string, delta float64) {
		m.platformQueries.With(l[0]).Add(delta)
	}, agg.Opts{MaxSeries: 256})
	m.aggPlatSet = m.agg.Set("distinct_platforms", 0, func(_ []string, distinct float64) {
		m.distinctPlatforms.Set(distinct)
	}, agg.Opts{})

	reg.Collect("archlined_agg_series", "live series per aggregation family", "gauge",
		[]string{"family"}, func(emit func([]string, float64)) {
			// Stats reports in registration order (a slice, never a map),
			// so renders stay byte-stable.
			for _, st := range m.agg.Stats() {
				emit([]string{st.Name}, float64(st.Series))
			}
		})
	reg.Collect("archlined_agg_dropped_series_total",
		"recordings refused by a family's aggregation cardinality cap", "counter",
		[]string{"family"}, func(emit func([]string, float64)) {
			for _, st := range m.agg.Stats() {
				if st.DroppedSeries > 0 {
					emit([]string{st.Name}, float64(st.DroppedSeries))
				}
			}
		})
	reg.Collect("archlined_agg_dropped_samples_total",
		"timer samples overwritten before their interval flush", "counter",
		[]string{"family"}, func(emit func([]string, float64)) {
			for _, st := range m.agg.Stats() {
				if st.DroppedSamples > 0 {
					emit([]string{st.Name}, float64(st.DroppedSamples))
				}
			}
		})
	reg.Collect("archlined_agg_flush_age_seconds",
		"seconds since the last interval flush of the aggregation stage", "gauge", nil,
		func(emit func([]string, float64)) {
			m.flushMu.Lock()
			last := m.lastFlush
			m.flushMu.Unlock()
			if last.IsZero() {
				// No interval flush yet (render-time flushes are not
				// counted): emitting nothing beats emitting a lie.
				return
			}
			emit(nil, math.Round(m.now().Sub(last).Seconds()*1000)/1000)
		})

	reg.Collect("archlined_uptime_seconds", "seconds since the daemon started", "gauge", nil,
		func(emit func([]string, float64)) {
			emit(nil, math.Round(m.now().Sub(m.start).Seconds()*1000)/1000)
		})
	reg.Collect("archlined_cache_hit_ratio", "cache hits over cache lookups", "gauge", nil,
		func(emit func([]string, float64)) {
			hits, misses := m.cacheHits.Value(), m.cacheMisses.Value()
			ratio := 0.0
			if hits+misses > 0 {
				ratio = hits / (hits + misses)
			}
			emit(nil, math.Round(ratio*1e4)/1e4)
		})
	reg.Collect("archlined_request_latency_seconds",
		"latency quantiles over a sliding sample window", "summary",
		[]string{"endpoint", "quantile"}, func(emit func([]string, float64)) {
			m.mu.Lock()
			defer m.mu.Unlock()
			for _, e := range m.latencyEndpoints() {
				samples := m.latencies[e].samples()
				for _, q := range latQuantiles {
					emit([]string{e, strconv.FormatFloat(q, 'g', -1, 64)},
						stats.Quantile(samples, q))
				}
			}
		})
	reg.Collect("archlined_request_latency_samples",
		"sliding-window population behind the latency quantiles", "gauge",
		[]string{"endpoint"}, func(emit func([]string, float64)) {
			m.mu.Lock()
			defer m.mu.Unlock()
			for _, e := range m.latencyEndpoints() {
				emit([]string{e}, float64(len(m.latencies[e].buf)))
			}
		})
	reg.Collect("archlined_breaker_state",
		"circuit breaker state (0 closed, 1 half-open, 2 open)", "gauge", nil,
		func(emit func([]string, float64)) {
			if m.breakerProbe != nil {
				state, _ := m.breakerProbe()
				emit(nil, float64(state))
			}
		})
	reg.Collect("archlined_breaker_opens_total",
		"times the circuit breaker has opened", "counter", nil,
		func(emit func([]string, float64)) {
			if m.breakerProbe != nil {
				_, opens := m.breakerProbe()
				emit(nil, float64(opens))
			}
		})
	reg.Collect("obs_spans_started_total", "spans started by the tracer", "counter", nil,
		func(emit func([]string, float64)) {
			if m.tracerProbe != nil {
				emit(nil, float64(m.tracerProbe().Started))
			}
		})
	reg.Collect("obs_spans_ended_total", "spans ended and exported by the tracer", "counter", nil,
		func(emit func([]string, float64)) {
			if m.tracerProbe != nil {
				emit(nil, float64(m.tracerProbe().Ended))
			}
		})
	reg.Collect("obs_span_events_total", "events recorded on spans", "counter", nil,
		func(emit func([]string, float64)) {
			if m.tracerProbe != nil {
				emit(nil, float64(m.tracerProbe().Events))
			}
		})
	reg.Collect("obs_log_records_total", "structured log records emitted", "counter", nil,
		func(emit func([]string, float64)) {
			if m.logProbe != nil {
				emit(nil, float64(m.logProbe()))
			}
		})
	reg.Collect("archlined_jobs_active", "async jobs currently queued or running", "gauge",
		[]string{"state"}, func(emit func([]string, float64)) {
			if m.jobsProbe == nil {
				return
			}
			st := m.jobsProbe()
			// Emitted in the jobs.States order (the live states first),
			// never from a map, so renders stay byte-stable.
			emit([]string{jobs.Queued.String()}, float64(st.Queued))
			emit([]string{jobs.Running.String()}, float64(st.Running))
		})
	reg.Collect("archlined_jobs_finished_total", "async jobs by terminal state", "counter",
		[]string{"state"}, func(emit func([]string, float64)) {
			if m.jobsProbe == nil {
				return
			}
			st := m.jobsProbe()
			emit([]string{jobs.Done.String()}, float64(st.Done))
			emit([]string{jobs.Failed.String()}, float64(st.Failed))
			emit([]string{jobs.Canceled.String()}, float64(st.Canceled))
		})
	reg.Collect("archlined_jobs_submitted_total", "async jobs accepted by the engine", "counter", nil,
		func(emit func([]string, float64)) {
			if m.jobsProbe != nil {
				emit(nil, float64(m.jobsProbe().Submitted))
			}
		})
	reg.Collect("archlined_jobs_shed_total", "async job submits refused by the queue cap", "counter", nil,
		func(emit func([]string, float64)) {
			if m.jobsProbe != nil {
				emit(nil, float64(m.jobsProbe().Shed))
			}
		})
	reg.Collect("archlined_registry_uploads_total",
		"platform uploads committed (creates and re-uploads)", "counter", nil,
		func(emit func([]string, float64)) {
			if m.registryProbe != nil {
				emit(nil, float64(m.registryProbe().Uploads))
			}
		})
	reg.Collect("archlined_registry_invalidations_total",
		"cache invalidation sweeps triggered by re-uploads and deletes", "counter", nil,
		func(emit func([]string, float64)) {
			if m.registryProbe != nil {
				emit(nil, float64(m.registryProbe().Invalidations))
			}
		})
	reg.Collect("archlined_registry_quarantined_blobs_total",
		"corrupt registry blobs quarantined by the recovery scan", "counter", nil,
		func(emit func([]string, float64)) {
			if m.registryProbe != nil {
				emit(nil, float64(m.registryProbe().Quarantined))
			}
		})
	reg.Collect("archlined_registry_platforms",
		"registered platforms per consistent-hash shard", "gauge",
		[]string{"shard"}, func(emit func([]string, float64)) {
			if m.registryProbe == nil {
				return
			}
			// Emitted in shard-index order (a slice, never a map), so
			// renders stay byte-stable.
			for i, n := range m.registryProbe().ShardPlatforms {
				emit([]string{strconv.Itoa(i)}, float64(n))
			}
		})
	return m
}

// latencyEndpoints returns the latency-window keys sorted; the caller
// holds m.mu.
func (m *Metrics) latencyEndpoints() []string {
	eps := make([]string, 0, len(m.latencies))
	for e := range m.latencies {
		eps = append(eps, e)
	}
	sort.Strings(eps)
	return eps
}

// noteRequest records one finished request. The write is two striped
// aggregation updates — no registry family lock, no allocation — and
// the data reaches the exposition at the next flush.
func (m *Metrics) noteRequest(endpoint string, status int, d time.Duration) {
	m.aggRequests.Add2(endpoint, statusLabel(status), 1)
	m.aggLatency.Observe1(endpoint, d.Seconds())
}

// notePlatformQuery records one platform resolution on the model query
// paths; id is the registry platform id or "inline" for caller-supplied
// platform descriptions.
func (m *Metrics) notePlatformQuery(id string) {
	m.aggPlatQueries.Add1(id, 1)
	m.aggPlatSet.Insert(id)
}

// sinkLatency is the latency timer's flush sink: the single recording
// call in noteRequest feeds both latency surfaces from here — the
// duration histogram and the sliding-window quantiles — so the two can
// never double-count or drift apart.
func (m *Metrics) sinkLatency(labels []string, samples []float64) {
	endpoint := labels[0]
	h := m.duration.With(endpoint)
	for _, s := range samples {
		h.Observe(s)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	w, ok := m.latencies[endpoint]
	if !ok {
		w = &latWindow{}
		m.latencies[endpoint] = w
	}
	for _, s := range samples {
		w.add(s)
	}
}

// FlushAgg drains the aggregation stage into the registry and counts
// the flush; the server's interval flusher calls it. Render also
// flushes, but uncounted — archlined_agg_flushes_total and the flush
// age track only the interval cadence, so a lagging flusher is visible
// no matter how often the exposition is scraped.
func (m *Metrics) FlushAgg() {
	m.agg.Flush()
	m.aggFlushes.Inc()
	m.flushMu.Lock()
	m.lastFlush = m.now()
	m.flushMu.Unlock()
}

// AggStats exposes the aggregation stage's cardinality accounting (for
// tests and embedding).
func (m *Metrics) AggStats() []agg.FamilyStats { return m.agg.Stats() }

// statusLabel returns the decimal status label without allocating for
// the codes the daemon actually answers; anything exotic falls back to
// strconv.
func statusLabel(code int) string {
	switch code {
	case http.StatusOK:
		return "200"
	case http.StatusAccepted:
		return "202"
	case http.StatusNoContent:
		return "204"
	case http.StatusBadRequest:
		return "400"
	case http.StatusNotFound:
		return "404"
	case http.StatusMethodNotAllowed:
		return "405"
	case http.StatusConflict:
		return "409"
	case http.StatusRequestEntityTooLarge:
		return "413"
	case http.StatusTooManyRequests:
		return "429"
	case http.StatusInternalServerError:
		return "500"
	case http.StatusServiceUnavailable:
		return "503"
	default:
		return strconv.Itoa(code)
	}
}

// noteCache records one cache lookup outcome.
func (m *Metrics) noteCache(hit bool) {
	if hit {
		m.cacheHits.Inc()
		return
	}
	m.cacheMisses.Inc()
}

// noteEval records one model evaluation (a cache-missed compute).
func (m *Metrics) noteEval() { m.modelEvals.Inc() }

// noteInFlight adjusts the in-flight request gauge.
func (m *Metrics) noteInFlight(delta int64) { m.inFlight.Add(float64(delta)) }

// noteShed records one load-shed request.
func (m *Metrics) noteShed() { m.shed.Inc() }

// noteChaos records one chaos-injected failure.
func (m *Metrics) noteChaos() { m.chaos.Inc() }

// InFlight reports the current in-flight request count.
func (m *Metrics) InFlight() int64 { return int64(m.inFlight.Value()) }

// Shed reports the total load-shed requests so far.
func (m *Metrics) Shed() int64 { return int64(m.shed.Value()) }

// ChaosInjected reports the total chaos-injected failures so far.
func (m *Metrics) ChaosInjected() int64 { return int64(m.chaos.Value()) }

// ModelEvals reports the total model evaluations so far.
func (m *Metrics) ModelEvals() int64 { return int64(m.modelEvals.Value()) }

// CacheHits reports the total cache hits so far.
func (m *Metrics) CacheHits() int64 { return int64(m.cacheHits.Value()) }

// Requests reports the total finished requests across all endpoints,
// draining the aggregation stage first so buffered requests count.
func (m *Metrics) Requests() int64 {
	m.agg.Flush()
	return int64(m.requests.Sum())
}

// Render emits the text exposition. The aggregation stage is drained
// first (uncounted — see FlushAgg) so a scrape never reads stale
// buffered state; families and series are key-sorted and the clock is
// injectable, so two renders of the same state are byte-identical.
func (m *Metrics) Render() string {
	m.agg.Flush()
	return "# archlined metrics\n" + m.reg.Render()
}

// healthResponse is the /healthz body.
type healthResponse struct {
	Status string `json:"status"`
}

// handleHealthz answers liveness probes. It bypasses the cache: health
// is not a pure function of the request.
func (s *Server) handleHealthz(http.ResponseWriter, *http.Request) (any, *apiError) {
	return healthResponse{Status: "ok"}, nil
}

// handleMetrics serves the text exposition (not JSON, never cached). It
// writes directly and returns the already-handled sentinel.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) (any, *apiError) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = io.WriteString(w, s.metrics.Render())
	return nil, nil
}
