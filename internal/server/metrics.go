package server

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"archline/internal/stats"
)

// latWindowSize bounds how many recent latency samples each endpoint
// keeps for quantile estimation.
const latWindowSize = 1024

// Metrics is the daemon's stdlib-only metrics registry: request counts
// by endpoint and status, latency quantiles over a sliding window
// (computed with internal/stats, the same quantile machinery as the
// paper's boxplots), cache hit ratio, model-evaluation count, and an
// in-flight gauge. Render emits a Prometheus-style text exposition.
type Metrics struct {
	start time.Time

	mu        sync.Mutex
	requests  map[string]map[int]int64 // endpoint -> status -> count
	latencies map[string]*latWindow    // endpoint -> recent seconds

	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	modelEvals  atomic.Int64
	inFlight    atomic.Int64
	shed        atomic.Int64
	chaos       atomic.Int64

	// breakerProbe, when set, reports the circuit breaker's state and
	// open count for the exposition.
	breakerProbe func() (breakerState, int64)
}

// latWindow is a fixed ring of recent latency samples in seconds.
type latWindow struct {
	buf  []float64
	next int
	full bool
}

func (w *latWindow) add(seconds float64) {
	if len(w.buf) < latWindowSize {
		w.buf = append(w.buf, seconds)
		return
	}
	w.buf[w.next] = seconds
	w.next = (w.next + 1) % latWindowSize
	w.full = true
}

// samples returns a copy of the window's contents.
func (w *latWindow) samples() []float64 {
	return append([]float64(nil), w.buf...)
}

// NewMetrics builds an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		start:     time.Now(),
		requests:  map[string]map[int]int64{},
		latencies: map[string]*latWindow{},
	}
}

// noteRequest records one finished request.
func (m *Metrics) noteRequest(endpoint string, status int, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	byStatus, ok := m.requests[endpoint]
	if !ok {
		byStatus = map[int]int64{}
		m.requests[endpoint] = byStatus
	}
	byStatus[status]++
	w, ok := m.latencies[endpoint]
	if !ok {
		w = &latWindow{}
		m.latencies[endpoint] = w
	}
	w.add(d.Seconds())
}

// noteCache records one cache lookup outcome.
func (m *Metrics) noteCache(hit bool) {
	if hit {
		m.cacheHits.Add(1)
		return
	}
	m.cacheMisses.Add(1)
}

// noteEval records one model evaluation (a cache-missed compute).
func (m *Metrics) noteEval() { m.modelEvals.Add(1) }

// noteInFlight adjusts the in-flight request gauge.
func (m *Metrics) noteInFlight(delta int64) { m.inFlight.Add(delta) }

// noteShed records one load-shed request.
func (m *Metrics) noteShed() { m.shed.Add(1) }

// noteChaos records one chaos-injected failure.
func (m *Metrics) noteChaos() { m.chaos.Add(1) }

// Shed reports the total load-shed requests so far.
func (m *Metrics) Shed() int64 { return m.shed.Load() }

// ChaosInjected reports the total chaos-injected failures so far.
func (m *Metrics) ChaosInjected() int64 { return m.chaos.Load() }

// ModelEvals reports the total model evaluations so far.
func (m *Metrics) ModelEvals() int64 { return m.modelEvals.Load() }

// CacheHits reports the total cache hits so far.
func (m *Metrics) CacheHits() int64 { return m.cacheHits.Load() }

// Requests reports the total finished requests across all endpoints.
func (m *Metrics) Requests() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var total int64
	for _, byStatus := range m.requests {
		for _, n := range byStatus {
			total += n
		}
	}
	return total
}

// latQuantiles are the exposed latency quantiles.
var latQuantiles = []float64{0.5, 0.9, 0.99}

// Render emits the text exposition. Map iterations are key-sorted so two
// renders of the same state are byte-identical.
func (m *Metrics) Render() string {
	var b strings.Builder
	b.WriteString("# archlined metrics\n")
	fmt.Fprintf(&b, "archlined_uptime_seconds %.3f\n", time.Since(m.start).Seconds())

	m.mu.Lock()
	endpoints := make([]string, 0, len(m.requests))
	for e := range m.requests {
		endpoints = append(endpoints, e)
	}
	sort.Strings(endpoints)
	for _, e := range endpoints {
		byStatus := m.requests[e]
		statuses := make([]int, 0, len(byStatus))
		for s := range byStatus {
			statuses = append(statuses, s)
		}
		sort.Ints(statuses)
		for _, s := range statuses {
			fmt.Fprintf(&b, "archlined_requests_total{endpoint=%q,status=\"%d\"} %d\n", e, s, byStatus[s])
		}
	}
	latEndpoints := make([]string, 0, len(m.latencies))
	for e := range m.latencies {
		latEndpoints = append(latEndpoints, e)
	}
	sort.Strings(latEndpoints)
	for _, e := range latEndpoints {
		samples := m.latencies[e].samples()
		for _, q := range latQuantiles {
			fmt.Fprintf(&b, "archlined_request_latency_seconds{endpoint=%q,quantile=\"%g\"} %.6g\n",
				e, q, stats.Quantile(samples, q))
		}
	}
	m.mu.Unlock()

	hits, misses := m.cacheHits.Load(), m.cacheMisses.Load()
	fmt.Fprintf(&b, "archlined_cache_hits_total %d\n", hits)
	fmt.Fprintf(&b, "archlined_cache_misses_total %d\n", misses)
	ratio := 0.0
	if hits+misses > 0 {
		ratio = float64(hits) / float64(hits+misses)
	}
	fmt.Fprintf(&b, "archlined_cache_hit_ratio %.4f\n", ratio)
	fmt.Fprintf(&b, "archlined_model_evals_total %d\n", m.modelEvals.Load())
	fmt.Fprintf(&b, "archlined_in_flight_requests %d\n", m.inFlight.Load())
	fmt.Fprintf(&b, "archlined_shed_total %d\n", m.shed.Load())
	fmt.Fprintf(&b, "archlined_chaos_injected_total %d\n", m.chaos.Load())
	if m.breakerProbe != nil {
		state, opens := m.breakerProbe()
		fmt.Fprintf(&b, "archlined_breaker_state %d\n", int(state))
		fmt.Fprintf(&b, "archlined_breaker_opens_total %d\n", opens)
	}
	return b.String()
}

// healthResponse is the /healthz body.
type healthResponse struct {
	Status string `json:"status"`
}

// handleHealthz answers liveness probes. It bypasses the cache: health
// is not a pure function of the request.
func (s *Server) handleHealthz(http.ResponseWriter, *http.Request) (any, *apiError) {
	return healthResponse{Status: "ok"}, nil
}

// handleMetrics serves the text exposition (not JSON, never cached). It
// writes directly and returns the already-handled sentinel.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) (any, *apiError) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = io.WriteString(w, s.metrics.Render())
	return nil, nil
}
