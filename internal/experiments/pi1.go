package experiments

import (
	"fmt"
	"strings"

	"archline/internal/machine"
	"archline/internal/report"
	"archline/internal/scenario"
	"archline/internal/units"
)

// Pi1Result answers the paper's closing question — "To what extent can
// pi_1 be reduced...?" — as a what-if: peak energy efficiency and power
// reconfigurability per platform under pi_1 x {1, 1/2, 1/4, 0}.
type Pi1Result struct {
	Studies []scenario.Pi1Study
}

// Pi1 runs the reduction study over all platforms.
func Pi1() (*Pi1Result, error) {
	studies, err := scenario.Pi1Reduction(machine.ByPeakEfficiency(), 0.125, 512)
	if err != nil {
		return nil, err
	}
	return &Pi1Result{Studies: studies}, nil
}

// Render formats the study.
func (r *Pi1Result) Render() string {
	var b strings.Builder
	b.WriteString("Constant-power reduction what-if (the paper's closing question):\n")
	b.WriteString("peak flop/J gain and within-platform power range as pi_1 shrinks\n\n")
	tb := &report.Table{
		Headers: []string{"platform", "pi_1 share", "x1", "x1/2", "x1/4", "x0",
			"range x1", "range x0"},
	}
	for _, s := range r.Studies {
		row := []string{
			s.Platform.Name,
			fmt.Sprintf("%.0f%%", 100*s.Platform.ConstantPowerShare()),
		}
		for _, pt := range s.Points {
			row = append(row, units.FormatFlopsPerJoule(pt.PeakFlopsPerJoule))
		}
		row = append(row,
			fmt.Sprintf("%.2fx", s.Points[0].ReconfigRange),
			fmt.Sprintf("%.2fx", s.Points[3].ReconfigRange))
		tb.AddRow(row...)
	}
	b.WriteString(tb.Render())
	b.WriteString("\n(pi_1-dominated platforms gain the most; the power range widens as pi_1 falls,\n")
	b.WriteString("confirming \"driving down pi_1 would be the key factor for ... reconfigurability\")\n")
	return b.String()
}
