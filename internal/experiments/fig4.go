package experiments

import (
	"fmt"
	"sort"
	"strings"

	"archline/internal/machine"
	"archline/internal/report"
	"archline/internal/sim"
	"archline/internal/stats"
)

// Fig4Platform holds one platform's model-validation outcome: the
// distributions of relative power-prediction error under the uncapped
// (prior) and capped (this paper) models.
type Fig4Platform struct {
	Platform *machine.Platform
	// UncappedErrs and CappedErrs are (model - measured)/measured per
	// sweep intensity, the y-axis of fig. 4.
	UncappedErrs []float64
	CappedErrs   []float64
	// Summaries are the boxplot five-number statistics.
	UncappedSummary stats.FiveNumber
	CappedSummary   stats.FiveNumber
	// KS is the two-sample Kolmogorov-Smirnov comparison of the two error
	// distributions; Significant at p < 0.05 earns the paper's "**".
	KS stats.KSResult
}

// Significant reports the fig. 4 "**" marker.
func (f *Fig4Platform) Significant() bool { return f.KS.Significant(0.05) }

// Fig4Result is the full model-accuracy comparison across platforms,
// sorted in descending order of median uncapped error (fig. 4's
// left-to-right order).
type Fig4Result struct {
	Platforms []*Fig4Platform
}

// Fig4 reproduces fig. 4: run the single-precision intensity sweep on
// every platform, predict power with both models using the published
// (fitted) constants, and compare the error distributions.
func Fig4(opts Options) (*Fig4Result, error) {
	platforms, err := forEachPlatform(machine.All(), opts.Workers,
		func(plat *machine.Platform) (*Fig4Platform, error) {
			return fig4Platform(plat, opts)
		})
	if err != nil {
		return nil, err
	}
	res := &Fig4Result{Platforms: platforms}
	sort.SliceStable(res.Platforms, func(i, j int) bool {
		return res.Platforms[i].UncappedSummary.Median > res.Platforms[j].UncappedSummary.Median
	})
	return res, nil
}

// fig4Platform computes one platform's error distributions.
func fig4Platform(plat *machine.Platform, opts Options) (*Fig4Platform, error) {
	reps := opts.Replicates
	if reps < 1 {
		reps = 1
	}
	fp := &Fig4Platform{Platform: plat}
	var sweep []sim.Measurement
	for rep := 0; rep < reps; rep++ {
		o := opts
		o.Seed = opts.Seed + uint64(rep)*0x1000
		suite, err := o.runSuite(plat)
		if err != nil {
			return nil, err
		}
		sweep = append(sweep, suite.Sweep(sim.Single)...)
	}
	{
		for _, m := range sweep {
			measuredP := m.AvgPower.Watts()
			if measuredP <= 0 {
				continue
			}
			// Capped model: eq. (7). Uncapped model: E/T with the
			// prior max-of-two time.
			capped := plat.Single.AvgPowerAt(m.Intensity).Watts()
			tu := plat.Single.TimeUncapped(m.W, m.Q)
			uncapped := plat.Single.EnergyUncapped(m.W, m.Q).Over(tu).Watts()
			fp.CappedErrs = append(fp.CappedErrs, (capped-measuredP)/measuredP)
			fp.UncappedErrs = append(fp.UncappedErrs, (uncapped-measuredP)/measuredP)
		}
	}
	var err error
	if fp.UncappedSummary, err = stats.Summary(fp.UncappedErrs); err != nil {
		return nil, err
	}
	if fp.CappedSummary, err = stats.Summary(fp.CappedErrs); err != nil {
		return nil, err
	}
	if fp.KS, err = stats.KolmogorovSmirnov(fp.UncappedErrs, fp.CappedErrs); err != nil {
		return nil, err
	}
	return fp, nil
}

// SignificantCount returns how many platforms earn the "**" marker
// (the paper: 7 of 12).
func (r *Fig4Result) SignificantCount() int {
	n := 0
	for _, p := range r.Platforms {
		if p.Significant() {
			n++
		}
	}
	return n
}

// Improved reports the paper's qualitative claim for a platform: the
// capped model's error distribution is "either lower in median value or
// more tightly grouped" than the uncapped model's.
func (f *Fig4Platform) Improved() bool {
	medianBetter := stats.AbsMedian(f.CappedErrs) <= stats.AbsMedian(f.UncappedErrs)*1.05+1e-9
	tighter := f.CappedSummary.IQR() <= f.UncappedSummary.IQR()*1.05+1e-9
	return medianBetter || tighter
}

// Render formats fig. 4 as a table of error distributions with
// significance markers.
func (r *Fig4Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 4: power prediction error, uncapped (prior) vs capped (this paper)\n")
	b.WriteString("platforms sorted by descending median uncapped error; '**' = K-S p < 0.05\n\n")
	tb := &report.Table{
		Headers: []string{"platform", "sig", "uncapped med", "uncapped IQR",
			"capped med", "capped IQR", "K-S D", "K-S p"},
	}
	for _, p := range r.Platforms {
		sig := ""
		if p.Significant() {
			sig = "**"
		}
		tb.AddRow(
			p.Platform.Name,
			sig,
			fmt.Sprintf("%+.3f", p.UncappedSummary.Median),
			fmt.Sprintf("%.3f", p.UncappedSummary.IQR()),
			fmt.Sprintf("%+.3f", p.CappedSummary.Median),
			fmt.Sprintf("%.3f", p.CappedSummary.IQR()),
			fmt.Sprintf("%.3f", p.KS.D),
			fmt.Sprintf("%.4f", p.KS.P),
		)
	}
	b.WriteString(tb.Render())

	var uncapped, capped []report.BoxRow
	for _, p := range r.Platforms {
		uncapped = append(uncapped, report.BoxRow{Label: p.Platform.Name, Stats: p.UncappedSummary})
		capped = append(capped, report.BoxRow{Label: p.Platform.Name, Stats: p.CappedSummary})
	}
	b.WriteString("\nuncapped (prior) model error distributions (':' marks zero error):\n")
	b.WriteString(report.Boxplot(uncapped, 56, 0))
	b.WriteString("\ncapped (this paper) model error distributions:\n")
	b.WriteString(report.Boxplot(capped, 56, 0))

	fmt.Fprintf(&b, "\nplatforms with statistically different distributions: %d of %d (paper: 7 of 12)\n",
		r.SignificantCount(), len(r.Platforms))
	return b.String()
}
