package experiments

import (
	"fmt"
	"strings"

	"archline/internal/machine"
	"archline/internal/model"
	"archline/internal/report"
	"archline/internal/units"
)

// DVFSPoint is one intensity's energy-optimal operating point.
type DVFSPoint struct {
	I units.Intensity
	// FOpt is the energy-optimal frequency as a fraction of nominal.
	FOpt float64
	// EffGain is flop/J at FOpt relative to flop/J at nominal.
	EffGain float64
}

// DVFSPlatform is one platform's DVFS analysis.
type DVFSPlatform struct {
	Platform *machine.Platform
	Envelope model.DVFS
	Points   []DVFSPoint
}

// DVFSResult extends the what-if catalogue with frequency scaling, the
// knob the power-bounding literature the paper cites (Rountree et al.)
// manages: for each platform, the energy-optimal frequency per intensity
// and the efficiency gained over running at nominal.
type DVFSResult struct {
	Platforms []*DVFSPlatform
}

// envelopeFor builds a representative DVFS envelope for a platform:
// mobile SoCs share clock domains with memory, discrete cards do not.
func envelopeFor(p *machine.Platform) model.DVFS {
	d := model.DVFS{
		Base:         p.Single,
		F0:           1e9, // normalized: only ratios matter below
		FMin:         0.4e9,
		FMax:         1e9,
		V0:           1.1,
		VMin:         0.85,
		FVmin:        0.6e9,
		Pi1FreqShare: 0.35,
	}
	if p.Class == machine.ClassMobile || p.Class == machine.ClassMini {
		d.MemScaling = 0.5
		d.Pi1FreqShare = 0.5
	}
	return d
}

// DVFSAnalysis sweeps the energy-optimal frequency across intensities on
// every platform.
func DVFSAnalysis() (*DVFSResult, error) {
	res := &DVFSResult{}
	grid := model.LogSpace(0.25, 256, 6)
	for _, plat := range machine.ByPeakEfficiency() {
		d := envelopeFor(plat)
		dp := &DVFSPlatform{Platform: plat, Envelope: d}
		for _, i := range grid {
			fOpt, err := d.EnergyOptimalFrequency(i)
			if err != nil {
				return nil, err
			}
			pOpt, err := d.AtFrequency(fOpt)
			if err != nil {
				return nil, err
			}
			nominal, err := d.AtFrequency(d.F0)
			if err != nil {
				return nil, err
			}
			gain := float64(pOpt.FlopsPerJouleAt(i)) / float64(nominal.FlopsPerJouleAt(i))
			dp.Points = append(dp.Points, DVFSPoint{
				I: i, FOpt: fOpt / d.F0, EffGain: gain,
			})
		}
		res.Platforms = append(res.Platforms, dp)
	}
	return res, nil
}

// Render formats the DVFS analysis.
func (r *DVFSResult) Render() string {
	var b strings.Builder
	b.WriteString("DVFS extension: energy-optimal frequency (fraction of nominal) by intensity\n")
	b.WriteString("and flop/J gain over running at nominal\n\n")
	if len(r.Platforms) == 0 {
		return b.String()
	}
	headers := []string{"platform"}
	for _, pt := range r.Platforms[0].Points {
		headers = append(headers, "I="+units.FormatIntensity(pt.I))
	}
	tb := &report.Table{Headers: headers}
	for _, dp := range r.Platforms {
		row := []string{dp.Platform.Name}
		for _, pt := range dp.Points {
			row = append(row, fmt.Sprintf("%.2f (%.2fx)", pt.FOpt, pt.EffGain))
		}
		tb.AddRow(row...)
	}
	b.WriteString(tb.Render())
	b.WriteString("\n(memory-bound work wants the lowest clock; compute-bound work balances pi_1 time against V^2 energy)\n")
	return b.String()
}
