package experiments

import (
	"fmt"
	"strings"

	"archline/internal/cluster"
	"archline/internal/machine"
	"archline/internal/report"
	"archline/internal/units"
)

// ScalingResult is the cluster-scaling study: the Arndale-GPU building
// block swept from 1 to 64 nodes under strong and weak scaling on two
// fabrics, completing the fig. 1 story at system scale.
type ScalingResult struct {
	Node    *machine.Platform
	Strong  map[string][]cluster.ScalingPoint // by fabric name
	Weak    map[string][]cluster.ScalingPoint
	Fabrics []string
	Sizes   []int
}

// Scaling runs the sweeps.
func Scaling() (*ScalingResult, error) {
	node := machine.MustByID(machine.ArndaleGPU)
	res := &ScalingResult{
		Node:    node,
		Strong:  map[string][]cluster.ScalingPoint{},
		Weak:    map[string][]cluster.ScalingPoint{},
		Fabrics: []string{"1 GbE", "FDR IB"},
		Sizes:   []int{1, 2, 4, 8, 16, 32, 64},
	}
	nets := map[string]cluster.Network{
		"1 GbE":  cluster.EthernetLowPower(),
		"FDR IB": cluster.InfinibandFDR(),
	}
	// Strong scaling: a fixed global stencil-like problem with fixed
	// per-node halo; weak scaling: fixed per-node share.
	strongStep := cluster.Step{
		W: units.TFlops(0.1), Q: units.GB(40),
		Msg: units.MiB(16), Pattern: cluster.Halo,
	}
	weakStep := cluster.Step{
		W: units.GFlops(20), Q: units.GB(8),
		Msg: units.MiB(4), Pattern: cluster.Halo,
	}
	for name, net := range nets {
		s, err := cluster.ScalingSweep(node.Single, net, res.Sizes, strongStep,
			cluster.StrongScaling, true)
		if err != nil {
			return nil, err
		}
		res.Strong[name] = s
		w, err := cluster.ScalingSweep(node.Single, net, res.Sizes, weakStep,
			cluster.WeakScaling, true)
		if err != nil {
			return nil, err
		}
		res.Weak[name] = w
	}
	return res, nil
}

// Render formats the sweeps.
func (r *ScalingResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Cluster scaling of the %s building block (halo exchange, overlap on)\n\n", r.Node.Name)
	for _, mode := range []string{"strong", "weak"} {
		data := r.Strong
		if mode == "weak" {
			data = r.Weak
		}
		fmt.Fprintf(&b, "%s scaling — parallel efficiency by fabric:\n", mode)
		headers := []string{"nodes"}
		headers = append(headers, r.Fabrics...)
		headers = append(headers, "network-bound")
		tb := &report.Table{Headers: headers}
		for k, n := range r.Sizes {
			row := []string{fmt.Sprintf("%d", n)}
			nb := ""
			for _, f := range r.Fabrics {
				pt := data[f][k]
				row = append(row, fmt.Sprintf("%.2f", pt.Efficiency))
				if pt.NetworkBound {
					nb = nb + f + " "
				}
			}
			row = append(row, strings.TrimSpace(nb))
			tb.AddRow(row...)
		}
		b.WriteString(tb.Render())
		b.WriteByte('\n')
	}
	b.WriteString("(fixed halos break strong scaling on slow fabrics; weak scaling holds while compute covers the wire)\n")
	return b.String()
}
