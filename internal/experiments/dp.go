package experiments

import (
	"fmt"
	"sort"
	"strings"

	"archline/internal/machine"
	"archline/internal/report"
	"archline/internal/units"
)

// DPPlatform is one platform's double-precision energy picture. The
// paper's evaluation focuses on single precision ("full support for
// double is incomplete on several of our evaluation platforms") but
// publishes eps_d in Table I for the nine platforms that have it; this
// experiment is the double-precision analysis those columns support.
type DPPlatform struct {
	Platform *machine.Platform
	// EpsRatio is eps_d/eps_s: the per-flop energy premium of double
	// precision.
	EpsRatio float64
	// RateRatio is sustained DP/SP throughput.
	RateRatio float64
	// PeakFlopsPerJoule is the DP asymptotic energy efficiency.
	PeakFlopsPerJoule units.FlopsPerJoule
	// BalanceDP is the DP time balance (flop:Byte) — how much easier it
	// is to be compute-bound in double precision.
	BalanceDP units.Intensity
}

// DPResult ranks the double-capable platforms by DP energy efficiency.
type DPResult struct {
	Platforms []*DPPlatform
}

// DoublePrecision computes the DP analysis over the nine double-capable
// platforms.
func DoublePrecision() (*DPResult, error) {
	res := &DPResult{}
	for _, plat := range machine.All() {
		if !plat.SupportsDouble() {
			continue
		}
		d, err := plat.DoubleParams()
		if err != nil {
			return nil, err
		}
		res.Platforms = append(res.Platforms, &DPPlatform{
			Platform:          plat,
			EpsRatio:          float64(plat.DoubleEps) / float64(plat.Single.EpsFlop),
			RateRatio:         float64(plat.Sustained.DoubleRate) / float64(plat.Sustained.SingleRate),
			PeakFlopsPerJoule: d.PeakFlopsPerJoule(),
			BalanceDP:         d.TimeBalance(),
		})
	}
	sort.SliceStable(res.Platforms, func(i, j int) bool {
		return res.Platforms[i].PeakFlopsPerJoule > res.Platforms[j].PeakFlopsPerJoule
	})
	return res, nil
}

// Render formats the DP table.
func (r *DPResult) Render() string {
	var b strings.Builder
	b.WriteString("Double precision: per-flop energy premium and efficiency (Table I eps_d columns)\n\n")
	tb := &report.Table{
		Headers: []string{"platform", "eps_d/eps_s", "DP/SP rate", "DP peak flop/J", "DP B_tau"},
	}
	for _, p := range r.Platforms {
		tb.AddRow(
			p.Platform.Name,
			fmt.Sprintf("%.2fx", p.EpsRatio),
			fmt.Sprintf("%.2fx", p.RateRatio),
			units.FormatFlopsPerJoule(p.PeakFlopsPerJoule),
			units.FormatIntensity(p.BalanceDP),
		)
	}
	b.WriteString(tb.Render())
	b.WriteString("\n(3 platforms — NUC GPU, APU GPU, Arndale GPU — lack double support and are omitted)\n")
	return b.String()
}
