package experiments

import (
	"fmt"
	"strings"

	"archline/internal/cluster"
	"archline/internal/machine"
	"archline/internal/model"
	"archline/internal/report"
	"archline/internal/units"
)

// NetworkCase is the fig. 1 aggregate re-evaluated under one network.
type NetworkCase struct {
	Name string
	Net  cluster.Network
	// EffAdvantage is the aggregate's flop/J advantage over the Titan at
	// I = 0.25 once the network's constant power is charged.
	EffAdvantage float64
	// PerfAdvantage is the flop/s advantage at I = 0.25 for a halo-style
	// workload including wire time (per-step, overlap enabled).
	PerfAdvantage float64
	// ConstantPower is the cluster's total constant power.
	ConstantPower units.Power
}

// NetworkResult quantifies the paper's caveat that fig. 1's 47-GPU
// aggregate "ignores the significant costs of an interconnection
// network" and is "more likely to improve upon GTX Titan only marginally
// or not at all" once they are paid.
type NetworkResult struct {
	Nodes int
	Cases []NetworkCase
}

// Network evaluates the 47-Arndale aggregate under a free network, a
// low-power Ethernet fabric, and an HPC-class InfiniBand fabric.
func Network() (*NetworkResult, error) {
	titan := machine.MustByID(machine.GTXTitan).Single
	mali := machine.MustByID(machine.ArndaleGPU).Single
	nodes, err := model.PowerMatch(titan, mali)
	if err != nil {
		return nil, err
	}
	res := &NetworkResult{Nodes: nodes}
	i := units.Intensity(0.25)

	// The halo workload: enough flops for ~1 second on the aggregate at
	// I = 0.25, exchanging a 2 MiB surface per node per step.
	cases := []struct {
		name string
		net  cluster.Network
	}{
		{"free network", cluster.Network{SwitchRadix: 1, LinkBW: units.GBPerSec(1e6)}},
		{"1 GbE class", cluster.EthernetLowPower()},
		{"FDR InfiniBand", cluster.InfinibandFDR()},
	}
	titanRate := float64(titan.FlopRateAt(i))
	titanEff := float64(titan.FlopsPerJouleAt(i))
	for _, c := range cases {
		cl := &cluster.Cluster{Node: mali, Nodes: nodes, Net: c.net, Overlap: true}
		eff, err := cl.EffectiveParams()
		if err != nil {
			return nil, err
		}
		// One second of work at the effective rate.
		horizon := units.Time(1)
		w := units.Flops(eff.FlopRateAt(i).FlopsPerSec() * horizon.Seconds())
		q := i.Bytes(w)
		step := cluster.Step{W: w, Q: q, Msg: units.MiB(2), Pattern: cluster.Halo}
		pred, err := cl.Run(step)
		if err != nil {
			return nil, err
		}
		res.Cases = append(res.Cases, NetworkCase{
			Name:          c.name,
			Net:           c.net,
			EffAdvantage:  float64(eff.FlopsPerJouleAt(i)) / titanEff,
			PerfAdvantage: w.Count() / pred.Time.Seconds() / titanRate,
			ConstantPower: cl.ConstantPower(),
		})
	}
	return res, nil
}

// Render formats the network-adjusted comparison.
func (r *NetworkResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 1 caveat quantified: %d-Arndale-GPU aggregate vs GTX Titan at I = 1/4,\n", r.Nodes)
	b.WriteString("once an interconnection network is charged (halo exchange, 2 MiB/node/step)\n\n")
	tb := &report.Table{
		Headers: []string{"network", "const power", "flop/J advantage", "flop/s advantage"},
	}
	for _, c := range r.Cases {
		tb.AddRow(c.Name,
			units.FormatPower(c.ConstantPower),
			fmt.Sprintf("%.2fx", c.EffAdvantage),
			fmt.Sprintf("%.2fx", c.PerfAdvantage))
	}
	b.WriteString(tb.Render())
	b.WriteString("\n(the paper: with the network, the aggregate improves on the Titan \"only marginally or not at all\")\n")
	return b.String()
}
