package experiments

import (
	"fmt"
	"strings"

	"archline/internal/machine"
	"archline/internal/model"
	"archline/internal/report"
	"archline/internal/scenario"
	"archline/internal/sim"
	"archline/internal/units"
)

// Fig5Panel is one platform's power-vs-intensity panel: the three-regime
// model line and the simulated measurements, both normalized to
// pi_1 + DeltaPi as in the figure.
type Fig5Panel struct {
	Platform *machine.Platform
	Model    []scenario.MetricPoint // normalized eq. (7)
	Measured []scenario.MetricPoint // normalized measured power
	// RegimeAt mirrors the model points with their F/C/M classification.
	Regimes []model.Regime
	// MaxAbsErr is the largest |model-measured|/measured across the sweep
	// (the paper notes mispredictions "always less than 15%" even on the
	// worst platforms).
	MaxAbsErr float64
}

// Fig5Result is the twelve-panel power figure in decreasing order of
// peak energy efficiency.
type Fig5Result struct {
	Panels []*Fig5Panel
}

// Fig5 reproduces fig. 5.
func Fig5(opts Options) (*Fig5Result, error) {
	panels, err := forEachPlatform(machine.ByPeakEfficiency(), opts.Workers,
		func(plat *machine.Platform) (*Fig5Panel, error) {
			return fig5Panel(plat, opts)
		})
	if err != nil {
		return nil, err
	}
	return &Fig5Result{Panels: panels}, nil
}

// fig5Panel computes one platform's panel.
func fig5Panel(plat *machine.Platform, opts Options) (*Fig5Panel, error) {
	grid := model.LogSpace(fig5Grid.Lo, fig5Grid.Hi, fig5Grid.N)
	panel := &Fig5Panel{Platform: plat}
	norm := plat.Single.Pi1.Watts() + plat.Single.DeltaPi.Watts()
	for _, i := range grid {
		panel.Model = append(panel.Model, scenario.MetricPoint{
			I: i, Value: plat.Single.AvgPowerAt(i).Watts() / norm,
		})
		panel.Regimes = append(panel.Regimes, plat.Single.RegimeAt(i))
	}
	suite, err := opts.runSuite(plat)
	if err != nil {
		return nil, err
	}
	for _, m := range suite.Sweep(sim.Single) {
		v := m.AvgPower.Watts() / norm
		panel.Measured = append(panel.Measured, scenario.MetricPoint{I: m.Intensity, Value: v})
		modelV := plat.Single.AvgPowerAt(m.Intensity).Watts() / norm
		if e := abs(modelV-v) / v; e > panel.MaxAbsErr {
			panel.MaxAbsErr = e
		}
	}
	return panel, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// Render draws each panel as an ASCII plot with its header annotations.
func (r *Fig5Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 5: power (normalized to pi_1 + DeltaPi) vs intensity, by peak energy efficiency\n\n")
	for _, panel := range r.Panels {
		fmt.Fprintf(&b, "== %s ==\n%s\n", panel.Platform.Name, report.PanelHeader(panel.Platform))
		p := &report.Plot{
			XLabel: "intensity (flop:Byte)",
			Width:  64, Height: 10,
			Series: []report.PlotSeries{
				seriesFromPoints("model", panel.Model, '-'),
				seriesFromPoints("measured", panel.Measured, '*'),
			},
		}
		b.WriteString(p.Render())
		// Regime transitions along the sweep, fig. 6-style letters.
		b.WriteString("regimes: ")
		last := model.Regime(-1)
		for k, reg := range panel.Regimes {
			if reg != last {
				if last != model.Regime(-1) {
					b.WriteString(" -> ")
				}
				fmt.Fprintf(&b, "%s@%s", reg.Letter(), units.FormatIntensity(panel.Model[k].I))
				last = reg
			}
		}
		fmt.Fprintf(&b, "\nmax |model-measured|/measured over sweep: %.1f%%\n\n", 100*panel.MaxAbsErr)
	}
	return b.String()
}

// seriesFromPoints converts metric points to a plot series.
func seriesFromPoints(name string, pts []scenario.MetricPoint, marker byte) report.PlotSeries {
	s := report.PlotSeries{Name: name, Marker: marker}
	for _, p := range pts {
		s.X = append(s.X, p.I.Ratio())
		s.Y = append(s.Y, p.Value)
	}
	return s
}
