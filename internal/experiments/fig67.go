package experiments

import (
	"fmt"
	"strings"

	"archline/internal/machine"
	"archline/internal/model"
	"archline/internal/report"
	"archline/internal/scenario"
	"archline/internal/units"
)

// CapFractions are the paper's DeltaPi/k settings for figs. 6-7.
var CapFractions = []float64{1, 0.5, 0.25, 0.125}

// ThrottleQuantity selects which of figs. 6/7a/7b a throttling run
// reproduces.
type ThrottleQuantity int

// The three throttling figures.
const (
	ThrottlePower ThrottleQuantity = iota // fig. 6
	ThrottlePerf                          // fig. 7a
	ThrottleEff                           // fig. 7b
)

// String names the quantity.
func (q ThrottleQuantity) String() string {
	switch q {
	case ThrottlePower:
		return "power"
	case ThrottlePerf:
		return "performance"
	case ThrottleEff:
		return "energy-efficiency"
	default:
		return "unknown"
	}
}

// ThrottlePanel is one platform's family of cap curves.
type ThrottlePanel struct {
	Platform *machine.Platform
	Curves   []scenario.ThrottleCurve
	// PowerReduction[k] is peak power at CapFractions[k] relative to full
	// cap: the section V-D observation that halving DeltaPi reduces power
	// by less than half.
	PowerReduction []float64
}

// ThrottleResult reproduces one of figs. 6/7a/7b across all platforms.
type ThrottleResult struct {
	Quantity ThrottleQuantity
	Panels   []*ThrottlePanel
}

// Throttle runs the DeltaPi/k sweep for the requested quantity over all
// twelve platforms in fig. 5 panel order.
func Throttle(q ThrottleQuantity) (*ThrottleResult, error) {
	grid := model.LogSpace(0.25, 128, 41) // figs. 6-7 x-range
	res := &ThrottleResult{Quantity: q}
	for _, plat := range machine.ByPeakEfficiency() {
		curves, err := scenario.ThrottleSweep(plat.Single, CapFractions, grid)
		if err != nil {
			return nil, err
		}
		panel := &ThrottlePanel{Platform: plat, Curves: curves}
		for _, f := range CapFractions {
			r, err := scenario.PowerReduction(plat.Single, f)
			if err != nil {
				return nil, err
			}
			panel.PowerReduction = append(panel.PowerReduction, r)
		}
		res.Panels = append(res.Panels, panel)
	}
	return res, nil
}

// value extracts the plotted quantity from a throttle point, normalized
// the way the figure normalizes (fig. 6: to pi_1+DeltaPi at full cap;
// fig. 7a: to 4.0 Tflop/s; fig. 7b: to 16 Gflop/J — we normalize to the
// best platform's peak like the paper).
func (r *ThrottleResult) value(p *ThrottlePanel, pt scenario.ThrottlePoint) float64 {
	switch r.Quantity {
	case ThrottlePower:
		full := p.Platform.Single.Pi1.Watts() + p.Platform.Single.DeltaPi.Watts()
		return pt.Power.Watts() / full
	case ThrottlePerf:
		return float64(pt.Perf)
	default:
		return float64(pt.Eff)
	}
}

// Render draws each platform's curve family.
func (r *ThrottleResult) Render() string {
	var b strings.Builder
	fig := map[ThrottleQuantity]string{
		ThrottlePower: "Fig. 6", ThrottlePerf: "Fig. 7a", ThrottleEff: "Fig. 7b",
	}[r.Quantity]
	fmt.Fprintf(&b, "%s: hypothetical %s as the usable power cap decreases (full, 1/2, 1/4, 1/8)\n\n",
		fig, r.Quantity)
	fracName := map[float64]string{1: "full", 0.5: "1/2", 0.25: "1/4", 0.125: "1/8"}
	for _, panel := range r.Panels {
		fmt.Fprintf(&b, "== %s ==\n%s\n", panel.Platform.Name, report.PanelHeader(panel.Platform))
		p := &report.Plot{
			XLabel: "intensity (flop:Byte)",
			Width:  64, Height: 10,
			LogY: r.Quantity != ThrottlePower,
		}
		markers := []byte{'F', '2', '4', '8'}
		for ci, c := range panel.Curves {
			s := report.PlotSeries{Name: fracName[c.Frac], Marker: markers[ci%len(markers)]}
			for _, pt := range c.Points {
				s.X = append(s.X, pt.I.Ratio())
				s.Y = append(s.Y, r.value(panel, pt))
			}
			p.Series = append(p.Series, s)
		}
		b.WriteString(p.Render())
		// Regime letters per curve, the fig. 6 annotations.
		for ci, c := range panel.Curves {
			fmt.Fprintf(&b, "%s: ", fracName[c.Frac])
			last := model.Regime(-1)
			for k, pt := range c.Points {
				if pt.Regime != last {
					if last != model.Regime(-1) {
						b.WriteString(" -> ")
					}
					fmt.Fprintf(&b, "%s@%s", pt.Regime.Letter(), units.FormatIntensity(c.Points[k].I))
					last = pt.Regime
				}
			}
			if r.Quantity == ThrottlePower {
				fmt.Fprintf(&b, "   (peak power ratio %.2f)", panel.PowerReduction[ci])
			}
			b.WriteByte('\n')
		}
		b.WriteByte('\n')
	}
	return b.String()
}
