package experiments

import (
	"fmt"
	"strings"

	"archline/internal/machine"
	"archline/internal/report"
	"archline/internal/scenario"
	"archline/internal/units"
)

// ScenariosResult bundles the section V-B, V-C, and V-D analyses that are
// not standalone figures.
type ScenariosResult struct {
	// Streaming is section V-B's total energy-per-byte ranking.
	Streaming []scenario.StreamCost
	// ConstPower is section V-C's pi_1 analysis.
	ConstPower *scenario.ConstantPowerStats
	// Bounding is section V-D's Titan-at-140W vs 23-Arndale-GPUs study.
	Bounding *scenario.PowerBoundResult
	// Process is the technology-scaling signal in Table I's process
	// column (an analysis beyond the paper's own).
	Process *scenario.ProcessNodeStats
}

// Scenarios runs the three analyses.
func Scenarios() (*ScenariosResult, error) {
	platforms := machine.All()
	cp, err := scenario.ConstantPowerAnalysis(platforms, 0.125, 512)
	if err != nil {
		return nil, err
	}
	titan := machine.MustByID(machine.GTXTitan).Single
	mali := machine.MustByID(machine.ArndaleGPU).Single
	budget := units.Power(titan.PeakAvgPower().Watts() / 2) // "140 W" (half of peak)
	pb, err := scenario.PowerBound(titan, mali, budget, 0.25)
	if err != nil {
		return nil, err
	}
	proc, err := scenario.ProcessNodeAnalysis(platforms)
	if err != nil {
		return nil, err
	}
	return &ScenariosResult{
		Streaming:  scenario.StreamingEnergyRanking(platforms),
		ConstPower: cp,
		Bounding:   pb,
		Process:    proc,
	}, nil
}

// Render formats the three analyses.
func (r *ScenariosResult) Render() string {
	var b strings.Builder

	b.WriteString("Section V-B: total energy to stream one byte (eps_mem + pi_1*tau charge)\n\n")
	tb := &report.Table{Headers: []string{"platform", "eps_mem", "pi_1 charge", "total"}}
	for _, s := range r.Streaming {
		tb.AddRow(s.Name,
			units.FormatEnergyPerByte(s.EpsMem),
			units.FormatEnergyPerByte(s.ConstCharge),
			units.FormatEnergyPerByte(s.Total))
	}
	b.WriteString(tb.Render())
	b.WriteString("\n(the ranking by total inverts the raw eps_mem ranking: Arndale GPU < Titan < Phi)\n\n")

	b.WriteString("Section V-C: constant power share pi_1/(pi_1+DeltaPi)\n\n")
	tc := &report.Table{Headers: []string{"platform", "share", ">50%", "power range (max/min)"}}
	for _, plat := range machine.ByPeakEfficiency() {
		share := r.ConstPower.Shares[plat.ID]
		over := ""
		if share > 0.5 {
			over = "yes"
		}
		tc.AddRow(plat.Name, fmt.Sprintf("%.0f%%", 100*share), over,
			fmt.Sprintf("%.2fx", r.ConstPower.PowerRange[plat.ID]))
	}
	b.WriteString(tc.Render())
	fmt.Fprintf(&b, "\nplatforms above 50%%: %d of 12 (paper: 7); correlation with peak Gflop/J: %.2f (paper: about -0.6)\n\n",
		r.ConstPower.OverHalf, r.ConstPower.Correlation)

	pb := r.Bounding
	b.WriteString("Section V-D: power bounding at half a Titan node's power\n\n")
	fmt.Fprintf(&b, "budget: %s -> Titan cap setting DeltaPi x %.3f (paper: 1/8)\n",
		units.FormatPower(pb.Budget), pb.CapFrac)
	fmt.Fprintf(&b, "throttled Titan at I=%s: %.2fx of unthrottled (paper: ~0.31x)\n",
		units.FormatIntensity(pb.I), pb.BigPerfRatio)
	fmt.Fprintf(&b, "Arndale GPUs matching the budget: %d (paper: 23)\n", pb.SmallCount)
	fmt.Fprintf(&b, "assembly vs throttled Titan at I=%s: %.2fx (paper: ~2.8x)\n",
		units.FormatIntensity(pb.I), pb.SmallVsBig)

	if r.Process != nil {
		b.WriteString("\nTechnology scaling latent in Table I (beyond the paper's analysis):\n")
		fmt.Fprintf(&b, "Spearman(process nm, eps_s): %.2f over all %d platforms, %.2f over the %d CPUs\n",
			r.Process.RhoAll, r.Process.N, r.Process.RhoCPU, r.Process.NCPU)
		b.WriteString("(per-flop energy falls with process node, the Dennard-scaling signal)\n")
	}
	return b.String()
}
