package experiments

import (
	"fmt"
	"strings"
	"testing"

	"archline/internal/machine"
)

func TestDoublePrecision(t *testing.T) {
	res, err := DoublePrecision()
	if err != nil {
		t.Fatal(err)
	}
	// Nine double-capable platforms.
	if len(res.Platforms) != 9 {
		t.Fatalf("got %d platforms, want 9", len(res.Platforms))
	}
	for _, p := range res.Platforms {
		// Double flops cost more energy than single everywhere in Table I.
		if p.EpsRatio <= 1 {
			t.Errorf("%s: eps_d/eps_s = %v, want > 1", p.Platform.Name, p.EpsRatio)
		}
		// And run no faster.
		if p.RateRatio > 1.001 {
			t.Errorf("%s: DP rate ratio %v > 1", p.Platform.Name, p.RateRatio)
		}
		if p.PeakFlopsPerJoule <= 0 {
			t.Errorf("%s: non-positive DP efficiency", p.Platform.Name)
		}
	}
	// Sorted descending.
	for i := 1; i < len(res.Platforms); i++ {
		if res.Platforms[i].PeakFlopsPerJoule > res.Platforms[i-1].PeakFlopsPerJoule {
			t.Fatal("not sorted by DP efficiency")
		}
	}
	// The Phi and Titan lead in double precision, as their DP-oriented
	// designs should.
	leaders := map[machine.ID]bool{
		res.Platforms[0].Platform.ID: true,
		res.Platforms[1].Platform.ID: true,
	}
	if !leaders[machine.XeonPhi] || !leaders[machine.GTXTitan] {
		t.Errorf("DP leaders should be Phi and Titan, got %v", leaders)
	}
	out := res.Render()
	for _, want := range []string{"Double precision", "eps_d/eps_s", "Xeon Phi", "omitted"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestNetworkCaveat(t *testing.T) {
	res, err := Network()
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes != 47 {
		t.Errorf("nodes = %d, want 47", res.Nodes)
	}
	if len(res.Cases) != 3 {
		t.Fatalf("got %d cases", len(res.Cases))
	}
	free, eth, ib := res.Cases[0], res.Cases[1], res.Cases[2]
	// Free network: the fig. 1 best case — aggregate ahead on energy
	// (fig. 1's middle panel shows the two close at low intensity, the
	// Arndale slightly ahead) and clearly ahead on performance.
	if free.EffAdvantage < 1.05 {
		t.Errorf("free-network flop/J advantage %v, expected the fig. 1 best case", free.EffAdvantage)
	}
	if free.PerfAdvantage < 1.3 {
		t.Errorf("free-network flop/s advantage %v, expected ~1.6x", free.PerfAdvantage)
	}
	// Any real network erodes both.
	for _, c := range []NetworkCase{eth, ib} {
		if c.EffAdvantage >= free.EffAdvantage {
			t.Errorf("%s: network should erode the energy advantage", c.Name)
		}
		if c.PerfAdvantage >= free.PerfAdvantage*1.001 {
			t.Errorf("%s: network should not improve the perf advantage", c.Name)
		}
	}
	// The paper's prediction: "marginally or not at all" — the IB case
	// (8 W NICs on 6 W nodes!) should erase the energy advantage
	// entirely.
	if ib.EffAdvantage >= 1 {
		t.Errorf("FDR NICs should erase the 47-node advantage, got %vx", ib.EffAdvantage)
	}
	out := res.Render()
	for _, want := range []string{"47-Arndale-GPU", "1 GbE", "InfiniBand", "marginally"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestDVFSAnalysis(t *testing.T) {
	res, err := DVFSAnalysis()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Platforms) != 12 {
		t.Fatalf("got %d platforms", len(res.Platforms))
	}
	for _, dp := range res.Platforms {
		if len(dp.Points) != 6 {
			t.Fatalf("%s: %d points", dp.Platform.Name, len(dp.Points))
		}
		for _, pt := range dp.Points {
			if pt.FOpt < 0.39 || pt.FOpt > 1.01 {
				t.Errorf("%s I=%v: optimal frequency fraction %v outside envelope",
					dp.Platform.Name, pt.I, pt.FOpt)
			}
			// The optimum never loses to nominal (up to the search's
			// 1e-6 frequency tolerance).
			if pt.EffGain < 1-1e-6 {
				t.Errorf("%s I=%v: optimal point worse than nominal (%v)",
					dp.Platform.Name, pt.I, pt.EffGain)
			}
		}
		// The memory-bound optimum sits at a floor: the frequency floor
		// when memory is clock-independent (discrete cards — downclocking
		// is free bandwidth-wise), or the *voltage* floor when memory is
		// clock-coupled (SoCs — below it, slowing the clock cuts
		// bandwidth with no V^2 savings left).
		floor := 0.41 // FMin/F0 with slack
		if dp.Envelope.MemScaling > 0 {
			floor = dp.Envelope.FVmin/dp.Envelope.F0 + 0.01
		}
		if dp.Points[0].FOpt > floor {
			t.Errorf("%s: memory-bound optimum %v should sit at the floor %v",
				dp.Platform.Name, dp.Points[0].FOpt, floor)
		}
	}
	out := res.Render()
	for _, want := range []string{"DVFS extension", "GTX Titan", "I=1/4"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestPi1Experiment(t *testing.T) {
	res, err := Pi1()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Studies) != 12 {
		t.Fatalf("got %d studies", len(res.Studies))
	}
	out := res.Render()
	for _, want := range []string{"Constant-power reduction", "pi_1 share", "Xeon Phi", "reconfigurability"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestMemoryMountain(t *testing.T) {
	res, err := Mountain(machine.DesktopCPU, Options{Seed: 5, Noiseless: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sizes) == 0 || len(res.Strides) == 0 {
		t.Fatal("empty mountain")
	}
	plat := res.Platform
	// Unit-stride column: L1-resident sets run at L1 bandwidth, DRAM-
	// sized sets at DRAM bandwidth.
	colBW := func(i int) float64 { return float64(res.BW[i][0]) }
	first, last := colBW(0), colBW(len(res.Sizes)-1)
	if first < 0.9*float64(plat.Sustained.L1BW) {
		t.Errorf("small-set bandwidth %v, want ~L1 %v", first, plat.Sustained.L1BW)
	}
	if last > 1.1*float64(plat.Sustained.MemBW) {
		t.Errorf("large-set bandwidth %v, want ~DRAM %v", last, plat.Sustained.MemBW)
	}
	// Along a row, useful bandwidth is non-increasing with stride.
	for i := range res.Sizes {
		for j := 1; j < len(res.Strides); j++ {
			if float64(res.BW[i][j]) > float64(res.BW[i][j-1])*1.01 {
				t.Errorf("bandwidth rose with stride at ws=%v stride=%v",
					res.Sizes[i], res.Strides[j])
			}
		}
	}
	// Line-stride column collapses by the word/line ratio.
	lineCol := -1
	for j, st := range res.Strides {
		if st == plat.CacheLine {
			lineCol = j
		}
	}
	if lineCol >= 0 {
		ratio := float64(res.BW[0][lineCol]) / colBW(0)
		want := 4 / float64(plat.CacheLine)
		if ratio > want*1.2 || ratio < want*0.8 {
			t.Errorf("line-stride collapse ratio %v, want ~%v", ratio, want)
		}
	}
	out := res.Render()
	for _, want := range []string{"memory mountain", "working set", "plateau"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
	if _, err := Mountain("bogus", Options{}); err == nil {
		t.Error("unknown platform should error")
	}
}

func TestParallelDriversDeterministic(t *testing.T) {
	// Platform fan-out must not change any result: worker counts 1 and 8
	// produce identical artefacts (noise streams key on platform IDs).
	serial := Options{Seed: 23, SweepPoints: 10, Workers: 1}
	parallel := Options{Seed: 23, SweepPoints: 10, Workers: 8}

	a, err := TableI(serial)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TableI(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if a.Render() != b.Render() {
		t.Error("TableI differs across worker counts")
	}

	f1, err := Fig4(serial)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := Fig4(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if f1.Render() != f2.Render() {
		t.Error("Fig4 differs across worker counts")
	}

	p1, err := Fig5(serial)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Fig5(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Render() != p2.Render() {
		t.Error("Fig5 differs across worker counts")
	}
}

func TestForEachPlatformErrorPropagation(t *testing.T) {
	plats := machine.All()
	_, err := forEachPlatform(plats, 4, func(p *machine.Platform) (int, error) {
		if p.ID == machine.XeonPhi {
			return 0, errFake
		}
		return 1, nil
	})
	if err == nil || !strings.Contains(err.Error(), "Xeon Phi") {
		t.Errorf("error should name the failing platform, got %v", err)
	}
	// Order preservation.
	vals, err := forEachPlatform(plats, 5, func(p *machine.Platform) (machine.ID, error) {
		return p.ID, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range plats {
		if vals[i] != p.ID {
			t.Fatal("results out of order")
		}
	}
}

var errFake = fmt.Errorf("synthetic failure")

func TestScalingExperiment(t *testing.T) {
	res, err := Scaling()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sizes) != 7 || len(res.Fabrics) != 2 {
		t.Fatal("shape")
	}
	for _, f := range res.Fabrics {
		if len(res.Strong[f]) != 7 || len(res.Weak[f]) != 7 {
			t.Fatalf("%s: sweep lengths", f)
		}
	}
	// Strong scaling on GbE collapses by 64 nodes; on IB it holds longer.
	gbe := res.Strong["1 GbE"][6].Efficiency
	ib := res.Strong["FDR IB"][6].Efficiency
	if gbe >= ib {
		t.Errorf("GbE strong efficiency %v should trail IB %v at 64 nodes", gbe, ib)
	}
	// Weak scaling on IB stays near 1.
	if res.Weak["FDR IB"][6].Efficiency < 0.9 {
		t.Errorf("IB weak efficiency %v", res.Weak["FDR IB"][6].Efficiency)
	}
	out := res.Render()
	for _, want := range []string{"Cluster scaling", "strong scaling", "weak scaling", "1 GbE", "FDR IB"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}
