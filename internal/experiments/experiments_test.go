package experiments

import (
	"math"
	"strings"
	"testing"

	"archline/internal/machine"
	"archline/internal/model"
)

// fastOpts keeps the full-pipeline tests quick while staying realistic.
func fastOpts() Options { return Options{Seed: 17, SweepPoints: 15} }

func TestTableIReproduction(t *testing.T) {
	res, err := TableI(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 12 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	// Quirk-free platforms recover the published constants tightly.
	for _, param := range []string{"tau_flop", "tau_mem", "pi_1"} {
		if e := res.MaxRelErr(param); e > 0.12 {
			t.Errorf("worst %s error %.3f exceeds 12%%", param, e)
		}
	}
	if e := res.MaxRelErr("eps_mem"); e > 0.20 {
		t.Errorf("worst eps_mem error %.3f exceeds 20%%", e)
	}
	if e := res.MaxRelErr("delta_pi"); e > 0.15 {
		t.Errorf("worst delta_pi error %.3f exceeds 15%%", e)
	}
	// eps_s on platforms whose flop power is watts-scale against a tens-
	// of-watts pi_1 is noise-limited; 20% is the realistic bound.
	if e := res.MaxRelErr("eps_s"); e > 0.20 {
		t.Errorf("worst eps_s error %.3f exceeds 20%%", e)
	}
	out := res.Render()
	for _, want := range []string{"Table I reproduction", "GTX Titan", "Arndale GPU", "eps_rand", "fit residual"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestFig1Reproduction(t *testing.T) {
	res, err := Fig1(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	bc := res.Comparison
	if bc.AggCount != 47 {
		t.Errorf("aggregate count %d, paper: 47", bc.AggCount)
	}
	if x := float64(bc.EnergyCrossover); x < 1.5 || x > 8 {
		t.Errorf("energy crossover %v, paper: ~4", x)
	}
	if bc.MaxAggSpeedup < 1.3 || bc.MaxAggSpeedup > 2.0 {
		t.Errorf("aggregate speedup %v, paper: up to 1.6x", bc.MaxAggSpeedup)
	}
	if bc.AggPeakFraction >= 0.5 {
		t.Errorf("aggregate peak fraction %v, paper: < 1/2", bc.AggPeakFraction)
	}
	// Measured dots exist for both platforms and track the model.
	for pi := range res.MeasuredPower {
		if len(res.MeasuredPower[pi]) < 10 {
			t.Fatalf("platform %d has %d measured points", pi, len(res.MeasuredPower[pi]))
		}
	}
	// Titan's measured power tracks its model curve within 20%.
	titan := machine.MustByID(machine.GTXTitan).Single
	for _, pt := range res.MeasuredPower[0] {
		want := float64(titan.AvgPowerAt(pt.I))
		if math.Abs(pt.Value-want) > 0.2*want {
			t.Errorf("measured Titan power %v at I=%v, model %v", pt.Value, pt.I, want)
		}
	}
	out := res.Render()
	for _, want := range []string{"Fig. 1", "flop / time", "flop / energy", "power", "47 x Arndale GPU", "crossover"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestFig4Reproduction(t *testing.T) {
	res, err := Fig4(Options{Seed: 9, SweepPoints: 25, Replicates: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Platforms) != 12 {
		t.Fatalf("got %d platforms", len(res.Platforms))
	}
	// The headline claim: the capped model's errors are smaller or more
	// tightly grouped on every platform.
	for _, p := range res.Platforms {
		if !p.Improved() {
			t.Errorf("%s: capped model did not improve the median error", p.Platform.Name)
		}
	}
	// The uncapped model overpredicts (positive bias) on the platforms
	// where the cap binds hard: the top of the fig. 4 ordering.
	top := res.Platforms[0]
	if top.UncappedSummary.Median < 0.04 {
		t.Errorf("worst platform's uncapped median %v should be clearly positive",
			top.UncappedSummary.Median)
	}
	// A majority of platforms differ significantly under K-S (paper: 7 of
	// 12; the exact count depends on noise draws).
	if n := res.SignificantCount(); n < 5 {
		t.Errorf("only %d platforms significant, paper found 7", n)
	}
	// The cap-dominated GPUs must be among the significant ones.
	for _, p := range res.Platforms {
		switch p.Platform.ID {
		case machine.ArndaleGPU, machine.GTX680, machine.NUCGPU:
			if !p.Significant() {
				t.Errorf("%s should be K-S significant", p.Platform.Name)
			}
		}
	}
	out := res.Render()
	for _, want := range []string{"Fig. 4", "**", "K-S", "of 12"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestFig5Reproduction(t *testing.T) {
	res, err := Fig5(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Panels) != 12 {
		t.Fatalf("got %d panels", len(res.Panels))
	}
	// Panel order: Titan first, Desktop CPU (or APU CPU) last.
	if res.Panels[0].Platform.ID != machine.GTXTitan {
		t.Errorf("first panel %s, want GTX Titan", res.Panels[0].Platform.ID)
	}
	last := res.Panels[11].Platform.ID
	if last != machine.DesktopCPU && last != machine.APUCPU {
		t.Errorf("last panel %s, want Desktop CPU or APU CPU", last)
	}
	for _, panel := range res.Panels {
		// Mispredictions bounded: the paper says always < 15% even on the
		// anomalous platforms.
		if panel.MaxAbsErr > 0.16 {
			t.Errorf("%s: max model error %.1f%% exceeds the paper's 15%% bound",
				panel.Platform.Name, 100*panel.MaxAbsErr)
		}
		// Normalized model power peaks at 1 where the cap binds.
		peak := 0.0
		for _, pt := range panel.Model {
			peak = math.Max(peak, pt.Value)
		}
		if peak > 1.0001 {
			t.Errorf("%s: normalized model power %v exceeds 1", panel.Platform.Name, peak)
		}
		if peak < 0.85 {
			t.Errorf("%s: normalized peak %v never approaches the cap", panel.Platform.Name, peak)
		}
		// All three regimes should appear somewhere across the 12 panels;
		// each panel is individually in sane regime order (M before C
		// before F as intensity grows).
		lastRegime := model.MemoryBound
		for k, reg := range panel.Regimes {
			if reg < lastRegime {
				t.Errorf("%s: regime went backwards at point %d", panel.Platform.Name, k)
			}
			lastRegime = reg
		}
	}
	out := res.Render()
	for _, want := range []string{"Fig. 5", "GTX Titan", "regimes:", "C@", "max |model-measured|"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestThrottleReproduction(t *testing.T) {
	for _, q := range []ThrottleQuantity{ThrottlePower, ThrottlePerf, ThrottleEff} {
		res, err := Throttle(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Panels) != 12 {
			t.Fatalf("%v: got %d panels", q, len(res.Panels))
		}
		for _, panel := range res.Panels {
			if len(panel.Curves) != 4 {
				t.Fatalf("%v %s: %d curves", q, panel.Platform.Name, len(panel.Curves))
			}
		}
	}
	// Section V-D observations on the power figure:
	res, _ := Throttle(ThrottlePower)
	var mali, phi *ThrottlePanel
	for _, p := range res.Panels {
		switch p.Platform.ID {
		case machine.ArndaleGPU:
			mali = p
		case machine.XeonPhi:
			phi = p
		}
	}
	// "the Arndale GPU has the most potential to reduce system power by
	// reducing DeltaPi, whereas the Xeon Phi ... the least".
	if mali.PowerReduction[3] >= phi.PowerReduction[3] {
		t.Errorf("Arndale reduction %v should beat Phi %v",
			mali.PowerReduction[3], phi.PowerReduction[3])
	}
	out := res.Render()
	for _, want := range []string{"Fig. 6", "full", "1/8", "peak power ratio"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
	out = mustRender(t, ThrottlePerf)
	if !strings.Contains(out, "Fig. 7a") {
		t.Error("7a title missing")
	}
	out = mustRender(t, ThrottleEff)
	if !strings.Contains(out, "Fig. 7b") {
		t.Error("7b title missing")
	}
}

func mustRender(t *testing.T, q ThrottleQuantity) string {
	t.Helper()
	res, err := Throttle(q)
	if err != nil {
		t.Fatal(err)
	}
	return res.Render()
}

func TestFig7aTitanVsNUCCPUDegradation(t *testing.T) {
	// Section V-D: "Highly memory-bound, low intensity computations on
	// the GTX Titan degrade the least as DeltaPi decreases ... for highly
	// compute-bound computations, the NUC CPU degrades the least".
	res, err := Throttle(ThrottlePerf)
	if err != nil {
		t.Fatal(err)
	}
	degradation := func(id machine.ID, idx int) float64 {
		for _, p := range res.Panels {
			if p.Platform.ID == id {
				full := p.Curves[0].Points[idx]
				eighth := p.Curves[3].Points[idx]
				return float64(eighth.Perf) / float64(full.Perf)
			}
		}
		t.Fatalf("panel %s not found", id)
		return 0
	}
	lowI, highI := 0, 40 // grid endpoints: I=0.25 and I=128
	// At low intensity the Titan retains more of its performance than the
	// NUC CPU; at high intensity the opposite.
	if degradation(machine.GTXTitan, lowI) <= degradation(machine.NUCCPU, lowI) {
		t.Error("Titan should degrade least at low intensity")
	}
	if degradation(machine.NUCCPU, highI) <= degradation(machine.GTXTitan, highI) {
		t.Error("NUC CPU should degrade least at high intensity")
	}
}

func TestScenariosReproduction(t *testing.T) {
	res, err := Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Streaming) != 12 {
		t.Fatalf("streaming ranking has %d entries", len(res.Streaming))
	}
	if res.ConstPower.OverHalf != 7 {
		t.Errorf("over-half count %d, paper: 7", res.ConstPower.OverHalf)
	}
	if res.Bounding.SmallCount != 23 {
		t.Errorf("small count %d, paper: 23", res.Bounding.SmallCount)
	}
	if math.Abs(res.Bounding.BigPerfRatio-0.31) > 0.05 {
		t.Errorf("big perf ratio %v, paper: ~0.31", res.Bounding.BigPerfRatio)
	}
	out := res.Render()
	for _, want := range []string{"Section V-B", "Section V-C", "Section V-D", "Arndale GPU", "paper: 23"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}
