// Package experiments contains one driver per table and figure of the
// paper's evaluation. Each driver runs the full pipeline — simulate the
// microbenchmark suite, measure with the PowerMon substrate, fit or
// predict with the capped/uncapped models — and returns both structured
// results (consumed by the tests and benches) and a rendered text
// artefact (consumed by the archline CLI and EXPERIMENTS.md).
package experiments

import (
	"archline/internal/machine"
	"archline/internal/microbench"
	"archline/internal/sim"
	"archline/internal/units"
)

// Options configure experiment runs.
type Options struct {
	// Seed drives all simulation noise.
	Seed uint64
	// Noiseless disables measurement noise (useful for debugging; the
	// published artefacts use noisy runs as the paper did).
	Noiseless bool
	// SweepPoints overrides the per-platform intensity sweep resolution.
	// Zero keeps the default (25, matching a dense sweep).
	SweepPoints int
	// Replicates repeats the suite with distinct seeds and pools the
	// samples, as the paper's repeated runs do; zero means 1.
	Replicates int
	// Workers bounds each level of the drivers' two-level fan-out: the
	// platform-level pool (12-way) and the kernel-level pool inside each
	// microbench.Run both take this count. Zero uses NumCPU-many; the
	// exact clamping semantics live in pool.Clamp. Results are
	// bit-identical at any worker count.
	Workers int
}

// suiteConfig builds the microbenchmark configuration for an experiment,
// threading the worker budget down so the suite's kernel-level pool
// follows the same setting as the platform fan-out.
func (o Options) suiteConfig() microbench.Config {
	cfg := microbench.DefaultConfig()
	if o.SweepPoints > 0 {
		cfg.SweepPoints = o.SweepPoints
	}
	cfg.Workers = o.Workers
	return cfg
}

// simOptions builds the simulator options for one platform.
func (o Options) simOptions() sim.Options {
	return sim.Options{Seed: o.Seed, Noiseless: o.Noiseless}
}

// runSuite runs the full microbenchmark suite on a platform.
func (o Options) runSuite(p *machine.Platform) (*microbench.Result, error) {
	return microbench.Run(p, o.suiteConfig(), o.simOptions())
}

// fig5Grid is the intensity range of figs. 5-7: 1/8 to 512 flop:Byte.
var fig5Grid = struct {
	Lo, Hi units.Intensity
	N      int
}{Lo: 0.125, Hi: 512, N: 49}
