package experiments

import (
	"fmt"
	"strings"

	"archline/internal/machine"
	"archline/internal/report"
	"archline/internal/scenario"
	"archline/internal/sim"
	"archline/internal/units"
)

// Fig1Result is the fig. 1 / section I demonstration: GTX Titan versus
// Arndale GPU (and the power-matched aggregate) on time-efficiency,
// energy-efficiency, and power over intensity, with simulated
// measurements overlaid on the model curves.
type Fig1Result struct {
	Comparison *scenario.BlockComparison
	// Measured holds the simulated microbenchmark dots for the two real
	// machines: [Titan, Arndale GPU] per metric.
	MeasuredPerf  [2][]scenario.MetricPoint
	MeasuredEff   [2][]scenario.MetricPoint
	MeasuredPower [2][]scenario.MetricPoint
}

// Fig1 reproduces fig. 1 over the paper's 1/8..256 flop:Byte range.
func Fig1(opts Options) (*Fig1Result, error) {
	titan := machine.MustByID(machine.GTXTitan)
	mali := machine.MustByID(machine.ArndaleGPU)
	bc, err := scenario.CompareBlocks(titan.Name, titan.Single, mali.Name, mali.Single,
		0.125, 256, 64)
	if err != nil {
		return nil, err
	}
	res := &Fig1Result{Comparison: bc}
	for pi, plat := range []*machine.Platform{titan, mali} {
		suite, err := opts.runSuite(plat)
		if err != nil {
			return nil, err
		}
		for _, m := range suite.Sweep(sim.Single) {
			if m.Intensity > 256 || m.Intensity < 0.125 {
				continue
			}
			rate := m.W.Count() / m.Time.Seconds()
			eff := m.W.Count() / m.Energy.Joules()
			res.MeasuredPerf[pi] = append(res.MeasuredPerf[pi],
				scenario.MetricPoint{I: m.Intensity, Value: rate})
			res.MeasuredEff[pi] = append(res.MeasuredEff[pi],
				scenario.MetricPoint{I: m.Intensity, Value: eff})
			res.MeasuredPower[pi] = append(res.MeasuredPower[pi],
				scenario.MetricPoint{I: m.Intensity, Value: m.AvgPower.Watts()})
		}
	}
	return res, nil
}

// plotPanel builds one ASCII panel combining model lines and measured dots.
func (r *Fig1Result) plotPanel(title string, modelSeries [3]scenario.Series,
	measured [2][]scenario.MetricPoint) string {
	p := &report.Plot{
		Title:  title,
		XLabel: "intensity (single-precision flop:Byte)",
		LogY:   true,
		Height: 16,
	}
	markers := []byte{'T', 'a', '4'} // Titan, arndale, 47x aggregate
	for i, s := range modelSeries {
		ps := report.PlotSeries{Name: s.Name + " (model)", Marker: markers[i]}
		for _, pt := range s.Points {
			ps.X = append(ps.X, pt.I.Ratio())
			ps.Y = append(ps.Y, pt.Value)
		}
		p.Series = append(p.Series, ps)
	}
	dotMarkers := []byte{'.', ','}
	names := [2]string{"GTX Titan (measured)", "Arndale GPU (measured)"}
	for i, pts := range measured {
		ps := report.PlotSeries{Name: names[i], Marker: dotMarkers[i]}
		for _, pt := range pts {
			ps.X = append(ps.X, pt.I.Ratio())
			ps.Y = append(ps.Y, pt.Value)
		}
		p.Series = append(p.Series, ps)
	}
	return p.Render()
}

// Render draws the three panels and the headline findings.
func (r *Fig1Result) Render() string {
	var b strings.Builder
	bc := r.Comparison
	b.WriteString("Fig. 1: GTX Titan vs Arndale GPU building blocks\n\n")
	b.WriteString(r.plotPanel("flop / time (flop/s)", bc.Perf, r.MeasuredPerf))
	b.WriteByte('\n')
	b.WriteString(r.plotPanel("flop / energy (flop/J)", bc.Eff, r.MeasuredEff))
	b.WriteByte('\n')
	b.WriteString(r.plotPanel("power (W)", bc.Power, r.MeasuredPower))
	b.WriteByte('\n')
	fmt.Fprintf(&b, "power-matched aggregate: %d x Arndale GPU (paper: 47)\n", bc.AggCount)
	fmt.Fprintf(&b, "energy-efficiency crossover: I = %s flop:Byte (paper: ~4)\n",
		units.FormatIntensity(bc.EnergyCrossover))
	fmt.Fprintf(&b, "aggregate wins on perf below I = %s flop:Byte, by up to %.2fx (paper: up to 1.6x below ~4)\n",
		units.FormatIntensity(bc.AggPerfCrossover), bc.MaxAggSpeedup)
	fmt.Fprintf(&b, "aggregate peak is %.2fx of Titan peak (paper: < 1/2)\n", bc.AggPeakFraction)
	return b.String()
}
