package experiments

import (
	"fmt"
	"math"
	"strings"

	"archline/internal/fit"
	"archline/internal/machine"
	"archline/internal/report"
	"archline/internal/units"
)

// TableIRow compares one platform's fitted parameters against the
// paper's published Table I values.
type TableIRow struct {
	Platform *machine.Platform
	Fit      *fit.PlatformFit
	// RelErrs maps parameter name to |fitted - reference| / reference.
	RelErrs map[string]float64
}

// TableIResult is the Table I reproduction: the full fitting pipeline run
// on every platform, compared against the published constants.
type TableIResult struct {
	Rows []TableIRow
}

// TableI reproduces Table I: for each of the twelve platforms it runs the
// microbenchmark suite on the simulated hardware, fits the six model
// parameters (plus cache levels and random access where measured), and
// reports fitted-vs-published values.
func TableI(opts Options) (*TableIResult, error) {
	rows, err := forEachPlatform(machine.All(), opts.Workers,
		func(plat *machine.Platform) (TableIRow, error) {
			return tableIRow(plat, opts)
		})
	if err != nil {
		return nil, err
	}
	return &TableIResult{Rows: rows}, nil
}

// tableIRow runs the suite and fit for one platform.
func tableIRow(plat *machine.Platform, opts Options) (TableIRow, error) {
	suite, err := opts.runSuite(plat)
	if err != nil {
		return TableIRow{}, err
	}
	pf, err := fit.Platform(suite, fit.Options{Seed: opts.Seed})
	if err != nil {
		return TableIRow{}, fmt.Errorf("fitting: %w", err)
	}
	row := TableIRow{Platform: plat, Fit: pf, RelErrs: map[string]float64{}}
	{
		ref := plat.Single
		add := func(name string, got, want float64) {
			if want != 0 {
				row.RelErrs[name] = math.Abs(got-want) / math.Abs(want)
			}
		}
		add("tau_flop", float64(pf.Params.TauFlop), float64(ref.TauFlop))
		add("tau_mem", float64(pf.Params.TauMem), float64(ref.TauMem))
		add("eps_s", float64(pf.Params.EpsFlop), float64(ref.EpsFlop))
		add("eps_mem", float64(pf.Params.EpsMem), float64(ref.EpsMem))
		add("pi_1", pf.Params.Pi1.Watts(), ref.Pi1.Watts())
		add("delta_pi", pf.Params.DeltaPi.Watts(), ref.DeltaPi.Watts())
		if plat.SupportsDouble() {
			add("eps_d", float64(pf.DoubleEps), float64(plat.DoubleEps))
		}
		if pf.L1 != nil && plat.L1 != nil {
			add("eps_L1", float64(pf.L1.Eps), float64(plat.L1.Eps))
		}
		if pf.L2 != nil && plat.L2 != nil {
			add("eps_L2", float64(pf.L2.Eps), float64(plat.L2.Eps))
		}
		if pf.Rand != nil && plat.Rand != nil {
			add("eps_rand", float64(pf.Rand.Eps), float64(plat.Rand.Eps))
		}
	}
	return row, nil
}

// MaxRelErr returns the worst relative error for a parameter across
// quirk-free platforms (quirky platforms deviate by design, as the
// paper's own fits do).
func (r *TableIResult) MaxRelErr(param string) float64 {
	worst := 0.0
	for _, row := range r.Rows {
		if len(row.Platform.Quirks) > 0 {
			continue
		}
		if e, ok := row.RelErrs[param]; ok && e > worst {
			worst = e
		}
	}
	return worst
}

// Render formats the reproduction as two tables: fitted constants in
// Table I's units, and fitted-vs-published relative errors.
func (r *TableIResult) Render() string {
	var b strings.Builder

	fitted := &report.Table{
		Title: "Table I reproduction: fitted constants (published values in parentheses)",
		Headers: []string{"platform", "pi_1 W", "dpi W", "eps_s pJ/F", "eps_d pJ/F",
			"eps_mem pJ/B", "eps_L1 pJ/B", "eps_L2 pJ/B", "eps_rand nJ/acc"},
	}
	pj := func(v float64) string { return fmt.Sprintf("%.3g", v*1e12) }
	nj := func(v float64) string { return fmt.Sprintf("%.3g", v*1e9) }
	for _, row := range r.Rows {
		p, f := row.Platform, row.Fit
		cell := func(got, want float64, fmtv func(float64) string) string {
			if want == 0 {
				return "-"
			}
			return fmt.Sprintf("%s (%s)", fmtv(got), fmtv(want))
		}
		epsD := "-"
		if p.SupportsDouble() {
			epsD = cell(float64(f.DoubleEps), float64(p.DoubleEps), pj)
		}
		epsL1, epsL2, epsR := "-", "-", "-"
		if f.L1 != nil && p.L1 != nil {
			epsL1 = cell(float64(f.L1.Eps), float64(p.L1.Eps), pj)
		}
		if f.L2 != nil && p.L2 != nil {
			epsL2 = cell(float64(f.L2.Eps), float64(p.L2.Eps), pj)
		}
		if f.Rand != nil && p.Rand != nil {
			epsR = cell(float64(f.Rand.Eps), float64(p.Rand.Eps), nj)
		}
		fitted.AddRow(
			p.Name,
			fmt.Sprintf("%.3g (%.3g)", float64(f.Params.Pi1), float64(p.Single.Pi1)),
			fmt.Sprintf("%.3g (%.3g)", float64(f.Params.DeltaPi), float64(p.Single.DeltaPi)),
			cell(float64(f.Params.EpsFlop), float64(p.Single.EpsFlop), pj),
			epsD,
			cell(float64(f.Params.EpsMem), float64(p.Single.EpsMem), pj),
			epsL1, epsL2, epsR,
		)
	}
	b.WriteString(fitted.Render())
	b.WriteByte('\n')

	thr := &report.Table{
		Title: "Sustained throughput recovered by the fit (published in parentheses)",
		Headers: []string{"platform", "single", "mem bw", "rand",
			"fit residual"},
	}
	for _, row := range r.Rows {
		p, f := row.Platform, row.Fit
		randCell := "-"
		if f.Rand != nil && p.Rand != nil {
			randCell = fmt.Sprintf("%s (%s)",
				units.FormatAccessRate(f.Rand.Rate), units.FormatAccessRate(p.Rand.Rate))
		}
		thr.AddRow(
			p.Name,
			fmt.Sprintf("%s (%s)", units.FormatFlopRate(f.Params.PeakFlopRate()),
				units.FormatFlopRate(p.Sustained.SingleRate)),
			fmt.Sprintf("%s (%s)", units.FormatByteRate(f.Params.PeakByteRate()),
				units.FormatByteRate(p.Sustained.MemBW)),
			randCell,
			fmt.Sprintf("%.4f", f.Residual),
		)
	}
	b.WriteString(thr.Render())
	return b.String()
}
