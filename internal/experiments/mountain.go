package experiments

import (
	"fmt"
	"strings"

	"archline/internal/machine"
	"archline/internal/report"
	"archline/internal/sim"
	"archline/internal/units"
)

// MountainResult is the classic "memory mountain": effective (useful)
// bandwidth as a function of working-set size and access stride. It
// makes two of the paper's measurement-methodology points visible at
// once: working sets that fit a cache level run at that level's
// bandwidth (the premise of the cache microbenchmarks), and strides at
// or beyond the line size waste transferred bytes (why the intensity
// microbenchmark "directs" the prefetcher into loading only used data).
type MountainResult struct {
	Platform *machine.Platform
	Sizes    []units.Bytes
	Strides  []units.Bytes
	// BW[i][j] is the useful bandwidth at Sizes[i], Strides[j].
	BW [][]units.ByteRate
}

// Mountain sweeps working sets from 8 KiB to 64 MiB and strides from one
// word to 4 KiB on the given platform.
func Mountain(id machine.ID, opts Options) (*MountainResult, error) {
	plat, err := machine.ByID(id)
	if err != nil {
		return nil, err
	}
	res := &MountainResult{Platform: plat}
	for ws := units.KiB(8); ws <= units.MiB(64); ws *= 4 {
		res.Sizes = append(res.Sizes, ws)
	}
	for st := units.Bytes(4); st <= units.KiB(4); st *= 4 {
		res.Strides = append(res.Strides, st)
	}
	s := sim.New(plat, sim.Options{Seed: opts.Seed, Noiseless: opts.Noiseless})
	for _, ws := range res.Sizes {
		row := make([]units.ByteRate, 0, len(res.Strides))
		for _, st := range res.Strides {
			k := sim.Kernel{
				Name:        fmt.Sprintf("mtn-%d-%d", int64(ws), int64(st)),
				Precision:   sim.Single,
				Pattern:     sim.StridedPattern,
				WorkingSet:  ws,
				Passes:      4,
				StrideBytes: st,
			}
			//archlint:ignore floatcmp strides are exact small powers of two in a float64 carrier
			if st == 4 {
				k.Pattern = sim.StreamPattern
			}
			r, err := s.Run(k)
			if err != nil {
				return nil, err
			}
			// Useful bytes: one word per touched position.
			var useful float64
			if k.Pattern == sim.StreamPattern {
				useful = ws.Count() * float64(k.Passes)
			} else {
				words := ws.Count() / st.Count()
				if words < 1 {
					words = 1
				}
				useful = words * 4 * float64(k.Passes)
			}
			row = append(row, units.ByteRate(useful/r.TrueTime.Seconds()))
		}
		res.BW = append(res.BW, row)
	}
	return res, nil
}

// Render draws the mountain as a table: rows are working sets, columns
// strides, cells useful bandwidth.
func (r *MountainResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s memory mountain: useful bandwidth by working set and stride\n", r.Platform.Name)
	fmt.Fprintf(&b, "(L1 %s, L2 %s, line %d B)\n\n",
		units.FormatSI(float64(r.Platform.L1Size), "B", 3),
		units.FormatSI(float64(r.Platform.L2Size), "B", 3),
		int64(r.Platform.CacheLine))
	headers := []string{"working set"}
	for _, st := range r.Strides {
		headers = append(headers, "s="+units.FormatSI(float64(st), "B", 3))
	}
	tb := &report.Table{Headers: headers}
	for i, ws := range r.Sizes {
		row := []string{units.FormatSI(float64(ws), "B", 3)}
		for _, bw := range r.BW[i] {
			row = append(row, units.FormatByteRate(bw))
		}
		tb.AddRow(row...)
	}
	b.WriteString(tb.Render())
	b.WriteString("\n(the plateau heights are the per-level bandwidths; large strides burn whole lines per word)\n")
	return b.String()
}
