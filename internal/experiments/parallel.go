package experiments

import (
	"fmt"

	"archline/internal/machine"
	"archline/internal/pool"
)

// forEachPlatform runs fn over the platforms concurrently with a bounded
// worker pool and returns the results in platform order. Each platform's
// simulation is seeded independently (noise streams key on the platform
// ID), so the outcome is bit-identical regardless of scheduling — the
// parallelism only buys wall-clock time on the 12-way fan-out the
// experiment drivers all share. Worker-count semantics (0 = NumCPU,
// clamped to the platform count) live in pool.Clamp; the kernel-level
// pool inside microbench.Run uses the same policy, so the two fan-out
// layers cannot drift.
func forEachPlatform[T any](platforms []*machine.Platform, workers int,
	fn func(*machine.Platform) (T, error)) ([]T, error) {
	results, errs := pool.Map(platforms, workers, func(_ int, p *machine.Platform) (T, error) {
		return fn(p)
	})
	if i, err := pool.FirstError(errs); err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", platforms[i].Name, err)
	}
	return results, nil
}
