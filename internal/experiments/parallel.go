package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"archline/internal/machine"
)

// forEachPlatform runs fn over the platforms concurrently with a bounded
// worker pool and returns the results in platform order. Each platform's
// simulation is seeded independently (noise streams key on the platform
// ID), so the outcome is bit-identical regardless of scheduling — the
// parallelism only buys wall-clock time on the 12-way fan-out the
// experiment drivers all share.
func forEachPlatform[T any](platforms []*machine.Platform, workers int,
	fn func(*machine.Platform) (T, error)) ([]T, error) {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(platforms) {
		workers = len(platforms)
	}
	if workers < 1 {
		workers = 1
	}
	results := make([]T, len(platforms))
	errs := make([]error, len(platforms))
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				results[idx], errs[idx] = fn(platforms[idx])
			}
		}()
	}
	for idx := range platforms {
		jobs <- idx
	}
	close(jobs)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", platforms[i].Name, err)
		}
	}
	return results, nil
}
