package workload

import (
	"math"
	"testing"

	"archline/internal/machine"
	"archline/internal/model"
	"archline/internal/units"
)

func TestStreamTriad(t *testing.T) {
	p, err := StreamTriad(1000, WordSingle)
	if err != nil {
		t.Fatal(err)
	}
	if p.W != 2000 || p.Q != 12000 {
		t.Errorf("triad W=%v Q=%v", p.W, p.Q)
	}
	if math.Abs(float64(p.Intensity())-1.0/6) > 1e-12 {
		t.Errorf("triad intensity %v, want 1/6", p.Intensity())
	}
	if _, err := StreamTriad(0, 4); err == nil {
		t.Error("n=0 should error")
	}
	if _, err := StreamTriad(10, 3); err == nil {
		t.Error("bad word size should error")
	}
}

func TestDot(t *testing.T) {
	p, err := Dot(1<<20, WordDouble)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(p.Intensity())-0.125) > 1e-12 {
		t.Errorf("double dot intensity %v, want 1/8", p.Intensity())
	}
}

func TestSpMVIntensityBand(t *testing.T) {
	// The paper: large SP SpMV is roughly 0.25-0.5 flop:Byte.
	for _, nnzPerRow := range []int64{5, 20, 100} {
		n := int64(1 << 20)
		p, err := SpMV(n, n*nnzPerRow, WordSingle)
		if err != nil {
			t.Fatal(err)
		}
		i := float64(p.Intensity())
		if i < 0.15 || i > 0.5 {
			t.Errorf("SpMV nnz/row=%d intensity %v outside the paper's band", nnzPerRow, i)
		}
	}
	if _, err := SpMV(100, 50, WordSingle); err == nil {
		t.Error("nnz < n should error")
	}
}

func TestFFTIntensityBand(t *testing.T) {
	// The paper: a large SP FFT is 2-4 flop:Byte.
	z := float64(units.MiB(1))
	for _, logN := range []int{24, 26, 28} {
		p, err := FFT(1<<logN, WordSingle, z)
		if err != nil {
			t.Fatal(err)
		}
		i := float64(p.Intensity())
		if i < 2 || i > 6 {
			t.Errorf("FFT 2^%d intensity %v, paper band 2-4", logN, i)
		}
	}
	// Tiny fast memory rejected.
	if _, err := FFT(1024, WordSingle, 4); err == nil {
		t.Error("tiny Z should error")
	}
	// In-core FFT: single pass.
	small, err := FFT(1024, WordSingle, float64(units.MiB(1)))
	if err != nil {
		t.Fatal(err)
	}
	if float64(small.Q) != 2*1024*8 {
		t.Errorf("in-core FFT should stream once, Q=%v", small.Q)
	}
}

func TestMatMulIntensityGrowsWithCache(t *testing.T) {
	small, err := MatMul(2048, WordSingle, float64(units.KiB(32)))
	if err != nil {
		t.Fatal(err)
	}
	big, err := MatMul(2048, WordSingle, float64(units.MiB(8)))
	if err != nil {
		t.Fatal(err)
	}
	if big.Intensity() <= small.Intensity() {
		t.Error("matmul intensity should grow with fast-memory capacity")
	}
	if small.W != units.Flops(2*2048.0*2048*2048) {
		t.Error("matmul work")
	}
	if _, err := MatMul(128, WordSingle, 8); err == nil {
		t.Error("tiny Z should error")
	}
}

func TestStencil7(t *testing.T) {
	// Planes fit: streams once.
	p, err := Stencil7(128, WordSingle, float64(units.MiB(1)))
	if err != nil {
		t.Fatal(err)
	}
	wantQ := 2.0 * 128 * 128 * 128 * 4
	if float64(p.Q) != wantQ {
		t.Errorf("blocked stencil Q=%v want %v", p.Q, wantQ)
	}
	if float64(p.Intensity()) != 1.0 {
		t.Errorf("blocked SP stencil intensity %v, want 1", p.Intensity())
	}
	// Planes do not fit: extra traffic halves intensity.
	p2, err := Stencil7(1024, WordSingle, float64(units.KiB(32)))
	if err != nil {
		t.Fatal(err)
	}
	if p2.Intensity() >= p.Intensity() {
		t.Error("unblocked stencil should have lower intensity")
	}
}

func TestMergeSort(t *testing.T) {
	p, err := MergeSort(1<<24, WordSingle, float64(units.MiB(1)))
	if err != nil {
		t.Fatal(err)
	}
	if p.W != units.Flops((1<<24)*24) {
		t.Errorf("comparisons = %v", p.W)
	}
	// 2^24 keys, 2^18 fit: 24/18 -> 2 passes, each 2*n*word.
	if p.Q != units.Bytes(2*2*float64(1<<24)*4) {
		t.Errorf("sort traffic = %v", p.Q)
	}
	if _, err := MergeSort(100, WordSingle, 4); err == nil {
		t.Error("tiny Z should error")
	}
}

func TestBFS(t *testing.T) {
	p, err := BFS(1<<20, 1<<24, 64)
	if err != nil {
		t.Fatal(err)
	}
	if p.RandomAccesses != 1<<24 || p.W != 1<<24 {
		t.Error("BFS edge accounting")
	}
	if _, err := BFS(0, 1, 64); err == nil {
		t.Error("n=0 should error")
	}
	if _, err := BFS(1, 0, 64); err == nil {
		t.Error("m=0 should error")
	}
	if _, err := BFS(1, 1, 0); err == nil {
		t.Error("line=0 should error")
	}
}

func TestPlaceStreaming(t *testing.T) {
	titan := machine.MustByID(machine.GTXTitan)
	p, _ := SpMV(1<<22, 1<<26, WordSingle)
	pl, err := Place(p, titan.Single, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Time <= 0 || pl.Energy <= 0 {
		t.Error("placement should produce positive costs")
	}
	// SpMV on Titan is memory-bound.
	if pl.Regime != model.MemoryBound {
		t.Errorf("SpMV regime %v, want memory-bound", pl.Regime)
	}
	// Placement consistency with the model.
	want := titan.Single.Predict(p.W, p.Q)
	if pl.Time != want.Time || pl.Energy != want.Energy {
		t.Error("placement should match Predict")
	}
}

func TestPlaceRandom(t *testing.T) {
	titan := machine.MustByID(machine.GTXTitan)
	p, _ := BFS(1<<20, 1<<24, float64(titan.Rand.Line))
	pl, err := Place(p, titan.Single, titan.Rand)
	if err != nil {
		t.Fatal(err)
	}
	// Costed at the chase rate.
	wantT := float64(p.RandomAccesses) / float64(titan.Rand.Rate)
	if math.Abs(float64(pl.Time)-wantT) > 1e-9*wantT {
		t.Errorf("BFS time %v, want %v", pl.Time, wantT)
	}
	// Without rand params it falls back to streaming cost.
	pl2, err := Place(p, titan.Single, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pl2.Time >= pl.Time {
		t.Error("streaming fallback should be (unrealistically) faster than chasing")
	}
}

func TestPaperFig1Reading(t *testing.T) {
	// The paper reads fig. 1 as: SpMV (0.25-0.5) and large FFT (2-4) both
	// fall where the Arndale GPU matches the Titan in energy efficiency.
	titan := machine.MustByID(machine.GTXTitan).Single
	arndale := machine.MustByID(machine.ArndaleGPU).Single
	spmv, _ := SpMV(1<<22, 1<<25, WordSingle)
	fftP, _ := FFT(1<<26, WordSingle, float64(units.MiB(1)))
	for _, p := range []Profile{spmv, fftP} {
		i := p.Intensity()
		ratio := float64(arndale.FlopsPerJouleAt(i)) / float64(titan.FlopsPerJouleAt(i))
		if ratio < 0.8 {
			t.Errorf("%s (I=%v): Arndale/Titan energy efficiency %v, paper says comparable",
				p.Name, i, ratio)
		}
	}
}
