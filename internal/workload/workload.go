// Package workload models the abstract algorithms the paper reasons
// about: each algorithm is characterized by its work W(n), its memory
// traffic Q(n; Z) given a fast-memory capacity Z, and hence its
// operational intensity I = W/Q — the x-coordinate at which it lands on
// every roofline in the paper.
//
// The paper's running examples are sparse matrix-vector multiply
// ("roughly 0.25-0.5 flop:Byte in single-precision") and the large FFT
// ("2-4 flop:Byte"), used to read fig. 1; this package provides those
// plus the other standard kernels of the roofline literature so the
// examples and experiments can place real algorithms on the models.
package workload

import (
	"errors"
	"fmt"
	"math"

	"archline/internal/model"
	"archline/internal/units"
)

// Profile is an algorithm instance's abstract cost.
type Profile struct {
	Name string
	W    units.Flops // arithmetic operations (or the algorithm's natural op)
	Q    units.Bytes // slow-fast memory traffic
	// RandomAccesses is nonzero for irregular algorithms whose traffic is
	// pointer chasing rather than streaming (BFS); such algorithms are
	// costed with eps_rand rather than eps_mem.
	RandomAccesses units.Accesses
}

// Intensity is W/Q.
func (p Profile) Intensity() units.Intensity { return p.W.Intensity(p.Q) }

// Common word sizes.
const (
	WordSingle = 4 // bytes per single-precision value
	WordDouble = 8 // bytes per double-precision value
	WordIndex  = 4 // bytes per 32-bit index
)

// validate checks shared constraints.
func validate(n int64, word, z float64) error {
	if n <= 0 {
		return errors.New("workload: n must be positive")
	}
	//archlint:ignore floatcmp word size is a discrete enum (4 or 8) carried in a float64
	if word != WordSingle && word != WordDouble {
		return fmt.Errorf("workload: word size %v must be 4 or 8", word)
	}
	if z <= 0 {
		return errors.New("workload: fast memory capacity must be positive")
	}
	return nil
}

// StreamTriad is the STREAM triad a[i] = b[i] + s*c[i]: 2 flops per
// element against three streamed words (two reads, one write).
func StreamTriad(n int64, word float64) (Profile, error) {
	if err := validate(n, word, 1); err != nil {
		return Profile{}, err
	}
	return Profile{
		Name: "stream-triad",
		W:    units.Flops(2 * float64(n)),
		Q:    units.Bytes(3 * word * float64(n)),
	}, nil
}

// Dot is the inner product of two n-vectors: 2 flops per element, two
// streamed words.
func Dot(n int64, word float64) (Profile, error) {
	if err := validate(n, word, 1); err != nil {
		return Profile{}, err
	}
	return Profile{
		Name: "dot",
		W:    units.Flops(2 * float64(n)),
		Q:    units.Bytes(2 * word * float64(n)),
	}, nil
}

// SpMV is sparse matrix-vector multiply in CSR with nnz nonzeros: 2 flops
// per nonzero; each nonzero streams a value and a column index, and the
// source/destination vectors stream once. With 4-byte values the
// intensity lands in the paper's quoted 0.25-0.5 flop:Byte band
// (approaching 0.25 as nnz/n grows).
func SpMV(n, nnz int64, word float64) (Profile, error) {
	if err := validate(n, word, 1); err != nil {
		return Profile{}, err
	}
	if nnz < n {
		return Profile{}, errors.New("workload: nnz must be at least n")
	}
	matrix := float64(nnz) * (word + WordIndex)
	vectors := 2 * float64(n) * word
	rows := float64(n) * WordIndex // row pointers
	return Profile{
		Name: "spmv",
		W:    units.Flops(2 * float64(nnz)),
		Q:    units.Bytes(matrix + vectors + rows),
	}, nil
}

// FFT is a large out-of-core complex-to-complex FFT of n points: W =
// 5 n log2 n flops. When the transform exceeds fast memory it proceeds in
// passes, each streaming the whole dataset (2 words per complex point,
// read+write), with ceil(log2 n / log2 (Z/(2 word))) passes — the
// standard two-level-memory FFT bound. Large single-precision transforms
// land in the paper's 2-4 flop:Byte band.
func FFT(n int64, word, z float64) (Profile, error) {
	if err := validate(n, word, z); err != nil {
		return Profile{}, err
	}
	pointBytes := 2 * word // complex
	pointsInFast := z / pointBytes
	if pointsInFast < 2 {
		return Profile{}, errors.New("workload: fast memory too small for FFT radix")
	}
	passes := math.Ceil(math.Log2(float64(n)) / math.Log2(pointsInFast))
	if passes < 1 {
		passes = 1
	}
	perPass := 2 * float64(n) * pointBytes // read + write each point
	return Profile{
		Name: "fft",
		W:    units.Flops(5 * float64(n) * math.Log2(float64(n))),
		Q:    units.Bytes(passes * perPass),
	}, nil
}

// MatMul is dense n x n matrix multiply, cache-blocked: W = 2 n^3 and the
// classic blocked traffic bound Q ~ 2 n^3 word / sqrt(Z/ (3 word)) + 3 n^2
// word (compulsory). Its intensity grows with sqrt(Z), making it the
// canonical compute-bound workload.
func MatMul(n int64, word, z float64) (Profile, error) {
	if err := validate(n, word, z); err != nil {
		return Profile{}, err
	}
	block := math.Sqrt(z / (3 * word)) // b x b tiles of three operands
	if block < 1 {
		return Profile{}, errors.New("workload: fast memory too small for blocking")
	}
	nf := float64(n)
	traffic := 2*nf*nf*nf*word/block + 3*nf*nf*word
	return Profile{
		Name: "matmul",
		W:    units.Flops(2 * nf * nf * nf),
		Q:    units.Bytes(traffic),
	}, nil
}

// Stencil is an out-of-place 7-point 3D stencil over an n^3 grid: 8 flops
// per point; with plane-blocking the grid streams in and out once per
// sweep when three planes fit in fast memory.
func Stencil7(n int64, word, z float64) (Profile, error) {
	if err := validate(n, word, z); err != nil {
		return Profile{}, err
	}
	nf := float64(n)
	planes := 3 * nf * nf * word
	traffic := 2 * nf * nf * nf * word // read + write each point
	if planes > z {
		// Planes do not fit: each point additionally re-reads its
		// vertical neighbours.
		traffic += 2 * nf * nf * nf * word
	}
	return Profile{
		Name: "stencil7",
		W:    units.Flops(8 * nf * nf * nf),
		Q:    units.Bytes(traffic),
	}, nil
}

// MergeSort is an out-of-core merge sort of n keys, counted in the
// algorithm's natural unit (comparisons, per the paper's footnote that
// one may substitute "comparisons for sorting"): n log2 n comparisons,
// and each of the log_{Z/word}(n/ (Z/word)) merge passes streams the data
// in and out.
func MergeSort(n int64, word, z float64) (Profile, error) {
	if err := validate(n, word, z); err != nil {
		return Profile{}, err
	}
	keysInFast := z / word
	if keysInFast < 2 {
		return Profile{}, errors.New("workload: fast memory too small to sort")
	}
	passes := math.Ceil(math.Log2(float64(n)) / math.Log2(keysInFast))
	if passes < 1 {
		passes = 1
	}
	return Profile{
		Name: "mergesort",
		W:    units.Flops(float64(n) * math.Log2(float64(n))), // comparisons
		Q:    units.Bytes(passes * 2 * float64(n) * word),
	}, nil
}

// BFS is breadth-first search over a graph with n vertices and m edges in
// CSR: each edge traversal is one near-random access into the visited/
// distance arrays ("edges traversed" is the natural op). Traffic is
// dominated by random accesses, so BFS is costed against eps_rand.
func BFS(n, m int64, lineBytes float64) (Profile, error) {
	if n <= 0 || m <= 0 {
		return Profile{}, errors.New("workload: vertices and edges must be positive")
	}
	if lineBytes <= 0 {
		return Profile{}, errors.New("workload: line size must be positive")
	}
	return Profile{
		Name:           "bfs",
		W:              units.Flops(m), // edges traversed
		Q:              units.Bytes(float64(m) * lineBytes),
		RandomAccesses: units.Accesses(m),
	}, nil
}

// Placement is a workload evaluated on a machine.
type Placement struct {
	Profile  Profile
	Time     units.Time
	Energy   units.Energy
	AvgPower units.Power
	Regime   model.Regime
}

// Place evaluates the profile on a machine with the capped model. For
// random-access profiles, the time/energy come from the machine's random
// access mode when provided (rand may be nil to fall back to streaming).
func Place(p Profile, m model.Params, rand *model.RandomAccessParams) (Placement, error) {
	if p.RandomAccesses > 0 && rand != nil {
		t, e, err := rand.TimeEnergy(p.RandomAccesses, m)
		if err != nil {
			return Placement{}, err
		}
		return Placement{
			Profile: p, Time: t, Energy: e,
			AvgPower: e.Over(t), Regime: model.CapBound,
		}, nil
	}
	pred := m.Predict(p.W, p.Q)
	return Placement{
		Profile: p, Time: pred.Time, Energy: pred.Energy,
		AvgPower: pred.AvgPower, Regime: pred.Regime,
	}, nil
}
