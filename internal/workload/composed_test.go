package workload

import (
	"fmt"
	"math"
	"testing"

	"archline/internal/machine"
	"archline/internal/model"
	"archline/internal/sim"
	"archline/internal/units"
)

func TestAXPY(t *testing.T) {
	p, err := AXPY(1000, WordSingle)
	if err != nil {
		t.Fatal(err)
	}
	if p.W != 2000 || p.Q != 12000 {
		t.Errorf("axpy W=%v Q=%v", p.W, p.Q)
	}
	if _, err := AXPY(0, 4); err == nil {
		t.Error("n=0 should error")
	}
}

func TestAppValidate(t *testing.T) {
	dot, _ := Dot(100, 4)
	good := App{Name: "x", Phases: []Profile{dot}, Iterations: 1}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Name = ""
	if bad.Validate() == nil {
		t.Error("empty name should be rejected")
	}
	bad = good
	bad.Phases = nil
	if bad.Validate() == nil {
		t.Error("no phases should be rejected")
	}
	bad = good
	bad.Iterations = 0
	if bad.Validate() == nil {
		t.Error("zero iterations should be rejected")
	}
	if _, err := bad.Total(); err == nil {
		t.Error("Total should validate")
	}
	if _, err := PlaceApp(bad, machine.MustByID(machine.GTXTitan).Single, nil); err == nil {
		t.Error("PlaceApp should validate")
	}
}

func TestCGComposition(t *testing.T) {
	app, err := CG(1<<20, 1<<24, WordSingle, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(app.Phases) != 6 {
		t.Fatalf("CG iteration has %d phases, want 6", len(app.Phases))
	}
	total, err := app.Total()
	if err != nil {
		t.Fatal(err)
	}
	// Work: 10 x (2 nnz + 2*2n + 3*2n) flops.
	wantW := 10.0 * (2*float64(1<<24) + 10*float64(1<<20))
	if math.Abs(float64(total.W)-wantW) > 1e-6*wantW {
		t.Errorf("CG W = %v, want %v", total.W, wantW)
	}
	// CG is memory-bound: total intensity well below 1 flop:Byte in SP.
	if i := float64(total.Intensity()); i > 0.5 {
		t.Errorf("CG intensity %v, want bandwidth-bound", i)
	}
	if _, err := CG(100, 50, WordSingle, 1); err == nil {
		t.Error("bad SpMV args should propagate")
	}
}

func TestPlaceAppCG(t *testing.T) {
	titan := machine.MustByID(machine.GTXTitan)
	app, _ := CG(1<<22, 1<<26, WordSingle, 5)
	pl, err := PlaceApp(app, titan.Single, titan.Rand)
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.Phases) != 6 {
		t.Fatal("per-phase breakdown missing")
	}
	// Every CG phase on the Titan is memory-bound.
	for _, ph := range pl.Phases {
		if ph.Regime != model.MemoryBound {
			t.Errorf("phase %s regime %v, want memory-bound", ph.Profile.Name, ph.Regime)
		}
	}
	// Total time is iterations x sum of phases.
	var sum float64
	for _, ph := range pl.Phases {
		sum += float64(ph.Time)
	}
	if math.Abs(float64(pl.Time)-5*sum) > 1e-9*float64(pl.Time) {
		t.Error("app time should be iterations x phase sum")
	}
	// E = P*T.
	if math.Abs(float64(pl.AvgPower)*float64(pl.Time)-float64(pl.Energy)) > 1e-9*float64(pl.Energy) {
		t.Error("E = P*T consistency")
	}
	// Summing phases is costlier than (hypothetically) running the fused
	// total with full overlap: the composed model charges dependencies.
	tot, _ := app.Total()
	fused := titan.Single.Predict(tot.W, tot.Q)
	if float64(pl.Time) < float64(fused.Time)*(1-1e-12) {
		t.Error("phase-sequential time cannot beat fully-overlapped time")
	}
}

func TestJacobi3D(t *testing.T) {
	app, err := Jacobi3D(128, WordSingle, float64(units.MiB(1)), 20)
	if err != nil {
		t.Fatal(err)
	}
	tot, err := app.Total()
	if err != nil {
		t.Fatal(err)
	}
	if tot.W <= 0 || tot.Q <= 0 {
		t.Error("degenerate totals")
	}
	if _, err := Jacobi3D(0, 4, 1024, 1); err == nil {
		t.Error("n=0 should error")
	}
}

func TestFFTConv(t *testing.T) {
	app, err := FFTConv(1<<24, WordSingle, float64(units.MiB(1)))
	if err != nil {
		t.Fatal(err)
	}
	if len(app.Phases) != 3 {
		t.Fatal("fftconv should have forward, pointwise, inverse")
	}
	tot, _ := app.Total()
	// Dominated by the two transforms: intensity in the FFT band.
	if i := float64(tot.Intensity()); i < 1 || i > 6 {
		t.Errorf("fftconv intensity %v", i)
	}
	if _, err := FFTConv(1024, WordSingle, 4); err == nil {
		t.Error("tiny Z should propagate")
	}
}

func TestPlaceAppWithRandomPhase(t *testing.T) {
	titan := machine.MustByID(machine.GTXTitan)
	bfs, _ := BFS(1<<18, 1<<22, float64(titan.Rand.Line))
	dot, _ := Dot(1<<18, WordSingle)
	app := App{Name: "graph+score", Phases: []Profile{bfs, dot}, Iterations: 3}
	pl, err := PlaceApp(app, titan.Single, titan.Rand)
	if err != nil {
		t.Fatal(err)
	}
	// The BFS phase dominates: random access is an order of magnitude
	// more expensive per byte.
	if pl.Phases[0].Energy < pl.Phases[1].Energy {
		t.Error("BFS phase should dominate energy")
	}
}

// TestWorkloadModelAgreesWithSimulator closes the loop between the
// abstract workload profiles and the hardware simulator: a CG
// iteration's phases, run as explicit streaming kernels on the simulated
// Titan, must land on the same time and energy the capped model predicts
// for the workload profile.
func TestWorkloadModelAgreesWithSimulator(t *testing.T) {
	plat := machine.MustByID(machine.GTXTitan)
	s := sim.New(plat, sim.Options{Seed: 3, Noiseless: true})

	app, err := CG(1<<22, 1<<26, WordSingle, 1)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := PlaceApp(app, plat.Single, plat.Rand)
	if err != nil {
		t.Fatal(err)
	}
	var simTime, simEnergy float64
	for i, phase := range app.Phases {
		// Express the phase as a streaming kernel with matching W and Q:
		// one pass over Q bytes at fpw = W/(Q/word).
		words := float64(phase.Q) / WordSingle
		k := sim.Kernel{
			Name:         fmt.Sprintf("cg-phase-%d", i),
			Precision:    sim.Single,
			Pattern:      sim.StreamPattern,
			FlopsPerWord: float64(phase.W) / words,
			WorkingSet:   phase.Q,
			Passes:       1,
		}
		m, err := s.Measure(k)
		if err != nil {
			t.Fatal(err)
		}
		simTime += float64(m.Time)
		simEnergy += float64(m.Energy)
	}
	if math.Abs(simTime-float64(pl.Time)) > 1e-6*float64(pl.Time) {
		t.Errorf("sim time %v vs model %v", simTime, pl.Time)
	}
	if math.Abs(simEnergy-float64(pl.Energy)) > 1e-3*float64(pl.Energy) {
		t.Errorf("sim energy %v vs model %v", simEnergy, pl.Energy)
	}
}
