package workload

import (
	"errors"
	"fmt"

	"archline/internal/model"
	"archline/internal/units"
)

// This file composes the primitive kernels into whole applications: a
// solver iteration is a sequence of phases with different intensities,
// and its time/energy on a machine is the sum over phases — each phase
// landing in its own regime of the capped model. This is the "more
// complex applications" direction the paper's conclusion names as
// ongoing work.

// AXPY is y = a*x + y over n words: 2 flops per element, three streamed
// words (two reads, one write).
func AXPY(n int64, word float64) (Profile, error) {
	if err := validate(n, word, 1); err != nil {
		return Profile{}, err
	}
	return Profile{
		Name: "axpy",
		W:    units.Flops(2 * float64(n)),
		Q:    units.Bytes(3 * word * float64(n)),
	}, nil
}

// App is a composed application: a named sequence of phases executed
// Iterations times.
type App struct {
	Name       string
	Phases     []Profile
	Iterations int
}

// Validate checks the application structure.
func (a App) Validate() error {
	if a.Name == "" {
		return errors.New("workload: app needs a name")
	}
	if len(a.Phases) == 0 {
		return errors.New("workload: app needs at least one phase")
	}
	if a.Iterations < 1 {
		return errors.New("workload: iterations must be >= 1")
	}
	return nil
}

// Total sums the phases over all iterations into one profile. Random
// accesses accumulate separately.
func (a App) Total() (Profile, error) {
	if err := a.Validate(); err != nil {
		return Profile{}, err
	}
	var w, q, r float64
	for _, p := range a.Phases {
		w += p.W.Count()
		q += p.Q.Count()
		r += p.RandomAccesses.Count()
	}
	it := float64(a.Iterations)
	return Profile{
		Name:           a.Name,
		W:              units.Flops(w * it),
		Q:              units.Bytes(q * it),
		RandomAccesses: units.Accesses(r * it),
	}, nil
}

// AppPlacement is an application evaluated phase-by-phase on a machine.
type AppPlacement struct {
	App      App
	Phases   []Placement // one per phase (single iteration)
	Time     units.Time  // all iterations
	Energy   units.Energy
	AvgPower units.Power
}

// PlaceApp evaluates each phase with the capped model (random-access
// phases use rand when available) and totals over iterations. Summing
// per-phase costs is the right model for phases separated by
// dependencies — a CG iteration cannot overlap its SpMV with its dots.
func PlaceApp(a App, m model.Params, rand *model.RandomAccessParams) (AppPlacement, error) {
	if err := a.Validate(); err != nil {
		return AppPlacement{}, err
	}
	out := AppPlacement{App: a}
	var t, e float64
	for _, p := range a.Phases {
		pl, err := Place(p, m, rand)
		if err != nil {
			return AppPlacement{}, fmt.Errorf("workload: phase %s: %w", p.Name, err)
		}
		out.Phases = append(out.Phases, pl)
		t += pl.Time.Seconds()
		e += pl.Energy.Joules()
	}
	it := float64(a.Iterations)
	out.Time = units.Time(t * it)
	out.Energy = units.Energy(e * it)
	out.AvgPower = out.Energy.Over(out.Time)
	return out, nil
}

// CG builds one conjugate-gradient solve: per iteration one SpMV, two
// dots, and three AXPYs over vectors of length n, run for iters
// iterations. The SpMV dominates traffic, the dots and AXPYs keep it
// bandwidth-bound — the canonical "memory-bound solver" of the paper's
// motivation.
func CG(n, nnz int64, word float64, iters int) (App, error) {
	spmv, err := SpMV(n, nnz, word)
	if err != nil {
		return App{}, err
	}
	dot, err := Dot(n, word)
	if err != nil {
		return App{}, err
	}
	axpy, err := AXPY(n, word)
	if err != nil {
		return App{}, err
	}
	return App{
		Name:       "cg",
		Phases:     []Profile{spmv, dot, dot, axpy, axpy, axpy},
		Iterations: iters,
	}, nil
}

// Jacobi3D builds a Jacobi relaxation: one 7-point stencil sweep per
// iteration plus a norm (dot) check.
func Jacobi3D(n int64, word, z float64, iters int) (App, error) {
	st, err := Stencil7(n, word, z)
	if err != nil {
		return App{}, err
	}
	norm, err := Dot(n*n*n, word)
	if err != nil {
		return App{}, err
	}
	return App{
		Name:       "jacobi3d",
		Phases:     []Profile{st, norm},
		Iterations: iters,
	}, nil
}

// FFTConv builds an FFT-based convolution: forward transform, pointwise
// complex multiply (6 flops per point over 3 streamed complex arrays),
// inverse transform.
func FFTConv(n int64, word, z float64) (App, error) {
	fwd, err := FFT(n, word, z)
	if err != nil {
		return App{}, err
	}
	mul := Profile{
		Name: "pointwise",
		W:    units.Flops(6 * float64(n)),
		Q:    units.Bytes(3 * 2 * word * float64(n)),
	}
	return App{
		Name:       "fftconv",
		Phases:     []Profile{fwd, mul, fwd},
		Iterations: 1,
	}, nil
}
