package trace

import (
	"math"
	"testing"

	"archline/internal/machine"
	"archline/internal/powermon"
	"archline/internal/sim"
	"archline/internal/stats"
	"archline/internal/units"
)

func approx(t *testing.T, got, want, relTol float64, name string) {
	t.Helper()
	if math.Abs(got-want) > relTol*math.Abs(want)+1e-300 {
		t.Errorf("%s = %v, want %v", name, got, want)
	}
}

// flatPoints builds an evenly sampled constant-power timeline.
func flatPoints(p float64, n int, dt float64) []Point {
	pts := make([]Point, n)
	for k := range pts {
		pts[k] = Point{T: units.Time((float64(k) + 0.5) * dt), P: units.Power(p)}
	}
	return pts
}

func TestFromTraceSumsRails(t *testing.T) {
	m := powermon.PCIeGPUMeter()
	for i := range m.Channels {
		m.Channels[i].CalibGain = 1
		m.Channels[i].NoiseSD = 0
	}
	tr, err := m.Record(powermon.Constant(250), 0.25, nil)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := FromTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(tr.Channels[0].Samples) {
		t.Fatalf("point count %d", len(pts))
	}
	for _, p := range pts {
		approx(t, float64(p.P), 250, 1e-9, "summed rail power")
	}
	if _, err := FromTrace(nil); err == nil {
		t.Error("nil trace should error")
	}
	if _, err := FromTrace(&powermon.Trace{Channels: []powermon.ChannelTrace{{}}}); err == nil {
		t.Error("empty channels should error")
	}
}

func TestEnergyTrapezoid(t *testing.T) {
	// Constant 100 W over 2 s: 200 J regardless of sampling.
	pts := flatPoints(100, 64, 2.0/64)
	e, err := Energy(pts, 2)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, float64(e), 200, 1e-9, "constant energy")

	// Linear ramp 0->100 W over 1 s: 50 J.
	n := 1000
	ramp := make([]Point, n)
	for k := range ramp {
		ts := (float64(k) + 0.5) / float64(n)
		ramp[k] = Point{T: units.Time(ts), P: units.Power(100 * ts)}
	}
	e, err = Energy(ramp, 1)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, float64(e), 50, 1e-3, "ramp energy")

	if _, err := Energy(nil, 1); err == nil {
		t.Error("no points should error")
	}
	if _, err := Energy(pts, 0); err == nil {
		t.Error("zero end should error")
	}
}

func TestCumulative(t *testing.T) {
	pts := flatPoints(10, 10, 0.1)
	cum := Cumulative(pts)
	if len(cum) != 10 {
		t.Fatal("length")
	}
	// Monotone, ending near 10 W * ~0.95 s.
	for k := 1; k < len(cum); k++ {
		if cum[k] < cum[k-1] {
			t.Fatal("cumulative energy must be monotone")
		}
	}
	approx(t, float64(cum[len(cum)-1]), 10*0.95, 1e-6, "final cumulative")
	if len(Cumulative(nil)) != 0 {
		t.Error("empty input")
	}
}

func TestMovingAverage(t *testing.T) {
	pts := flatPoints(5, 20, 0.05)
	pts[10].P = 50 // spike
	sm := MovingAverage(pts, 5)
	if float64(sm[10].P) >= 50 {
		t.Error("smoothing should damp the spike")
	}
	approx(t, float64(sm[0].P), 5, 1e-12, "edge window excludes the far spike")
	// Even window widths round up; width<1 clamps.
	if got := MovingAverage(pts, 4); len(got) != len(pts) {
		t.Error("length preserved")
	}
	if got := MovingAverage(pts, 0); got[10].P != 50 {
		t.Error("window 1 is identity")
	}
}

func TestPercentile(t *testing.T) {
	pts := flatPoints(1, 5, 0.2)
	for i := range pts {
		pts[i].P = units.Power(i + 1) // 1..5
	}
	approx(t, float64(Percentile(pts, 0)), 1, 0, "min")
	approx(t, float64(Percentile(pts, 1)), 5, 0, "max")
	approx(t, float64(Percentile(pts, 0.5)), 3, 1e-12, "median")
	if !math.IsNaN(float64(Percentile(nil, 0.5))) {
		t.Error("empty percentile should be NaN")
	}
	if !math.IsNaN(float64(Percentile(pts, 2))) {
		t.Error("out-of-range q should be NaN")
	}
}

func TestDetectPhasesSyntheticStep(t *testing.T) {
	// 100 samples at 100 W, then 100 at 200 W, then 100 at 120 W.
	var pts []Point
	levels := []float64{100, 200, 120}
	dt := 0.001
	k := 0
	for _, lv := range levels {
		for i := 0; i < 100; i++ {
			pts = append(pts, Point{T: units.Time(float64(k) * dt), P: units.Power(lv)})
			k++
		}
	}
	phases, err := DetectPhases(pts, 10, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) != 3 {
		t.Fatalf("detected %d phases, want 3", len(phases))
	}
	for i, want := range levels {
		approx(t, float64(phases[i].AvgPower), want, 0.02, "phase power")
	}
	if phases[0].Duration() <= 0 {
		t.Error("phase duration must be positive")
	}
	// Errors.
	if _, err := DetectPhases(nil, 5, 0.1); err == nil {
		t.Error("no points should error")
	}
	if _, err := DetectPhases(pts, 0, 0.1); err == nil {
		t.Error("minLen 0 should error")
	}
	if _, err := DetectPhases(pts, 5, 0); err == nil {
		t.Error("zero threshold should error")
	}
}

func TestDetectPhasesConstantIsOnePhase(t *testing.T) {
	rng := stats.NewStream(3, "phase-noise")
	pts := flatPoints(100, 500, 0.001)
	for i := range pts {
		pts[i].P *= units.Power(1 + 0.01*rng.NormFloat64())
	}
	phases, err := DetectPhases(pts, 20, 0.08)
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) != 1 {
		t.Errorf("noisy constant power should be one phase, got %d", len(phases))
	}
}

func TestEndToEndSequencePhaseDetection(t *testing.T) {
	// Integration: run a low-intensity, a high-intensity, and a chase
	// kernel back-to-back on the simulated Titan, record with PowerMon,
	// and recover the three phases from the trace.
	plat := machine.MustByID(machine.GTXTitan)
	s := sim.New(plat, sim.Options{Seed: 4})
	// Pass counts chosen so each phase lasts ~0.25 s, long enough for the
	// 1024 Hz meter to resolve.
	kernels := []sim.Kernel{
		{Name: "mem", Precision: sim.Single, FlopsPerWord: 0.5, WorkingSet: units.MiB(64), Passes: 900},
		{Name: "flops", Precision: sim.Single, FlopsPerWord: 4096, WorkingSet: units.MiB(64), Passes: 15},
		{Name: "chase", Precision: sim.Single, Pattern: sim.ChasePattern, WorkingSet: units.MiB(256), Passes: 120},
	}
	seq, tr, err := s.MeasureSequence(kernels)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Runs) != 3 || seq.Total <= 0 {
		t.Fatal("sequence bookkeeping")
	}
	pts, err := FromTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	phases, err := DetectPhases(MovingAverage(pts, 9), 16, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) != 3 {
		t.Fatalf("detected %d phases, want 3 (kernels)", len(phases))
	}
	// Phase powers match the ground-truth run powers.
	for i, run := range seq.Runs {
		want := float64(plat.Single.Pi1) + float64(run.TrueDyn)
		approx(t, float64(phases[i].AvgPower), want, 0.06, "phase "+run.Kernel.Name)
	}
	// Total energy from the trace matches avg-power x duration within
	// sampling error.
	e, err := Energy(pts, seq.Total)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, float64(e), float64(tr.Energy()), 0.02, "trapezoid vs avg-power energy")
}

func TestRunSequenceErrors(t *testing.T) {
	s := sim.New(machine.MustByID(machine.GTXTitan), sim.Options{Seed: 1})
	if _, err := s.RunSequence(nil); err == nil {
		t.Error("empty sequence should error")
	}
	bad := []sim.Kernel{{Name: "bad", Passes: 0}}
	if _, err := s.RunSequence(bad); err == nil {
		t.Error("invalid kernel should propagate")
	}
	if _, _, err := s.MeasureSequence(bad); err == nil {
		t.Error("invalid kernel should propagate through MeasureSequence")
	}
}
