// Package trace analyses time-resolved power recordings: the
// PowerMon-style sample streams produced by internal/powermon. It
// reconstructs the total-power timeline across supply rails, integrates
// cumulative energy, and segments a run into phases of distinct power
// draw — the trace-level view a measurement study needs when a benchmark
// alternates between compute-heavy and memory-heavy sections.
package trace

import (
	"errors"
	"math"
	"sort"

	"archline/internal/powermon"
	"archline/internal/units"
)

// Point is one instantaneous total-power sample.
type Point struct {
	T units.Time
	P units.Power
}

// FromTrace sums a multi-rail recording into a single total-power
// timeline. All channels of a PowerMon recording share timestamps; the
// function tolerates ragged channel lengths by truncating to the
// shortest.
func FromTrace(tr *powermon.Trace) ([]Point, error) {
	if tr == nil || len(tr.Channels) == 0 {
		return nil, errors.New("trace: empty recording")
	}
	n := len(tr.Channels[0].Samples)
	for _, ch := range tr.Channels[1:] {
		if len(ch.Samples) < n {
			n = len(ch.Samples)
		}
	}
	if n == 0 {
		return nil, errors.New("trace: recording has no samples")
	}
	pts := make([]Point, n)
	for k := 0; k < n; k++ {
		var sum float64
		for _, ch := range tr.Channels {
			sum += ch.Samples[k].Power().Watts()
		}
		pts[k] = Point{T: tr.Channels[0].Samples[k].T, P: units.Power(sum)}
	}
	return pts, nil
}

// Energy integrates the timeline by the trapezoid rule over [0, end],
// extending the first and last samples to the interval edges (samples
// are mid-interval).
func Energy(pts []Point, end units.Time) (units.Energy, error) {
	if len(pts) == 0 {
		return 0, errors.New("trace: no points")
	}
	if end <= 0 {
		return 0, errors.New("trace: end must be positive")
	}
	e := pts[0].P.Watts() * pts[0].T.Seconds() // leading edge
	for k := 1; k < len(pts); k++ {
		dt := (pts[k].T - pts[k-1].T).Seconds()
		e += 0.5 * (pts[k].P.Watts() + pts[k-1].P.Watts()) * dt
	}
	last := pts[len(pts)-1]
	if tail := (end - last.T).Seconds(); tail > 0 {
		e += last.P.Watts() * tail
	}
	return units.Energy(e), nil
}

// Cumulative returns the running energy at each sample time.
func Cumulative(pts []Point) []units.Energy {
	out := make([]units.Energy, len(pts))
	if len(pts) == 0 {
		return out
	}
	acc := pts[0].P.Watts() * pts[0].T.Seconds()
	out[0] = units.Energy(acc)
	for k := 1; k < len(pts); k++ {
		dt := (pts[k].T - pts[k-1].T).Seconds()
		acc += 0.5 * (pts[k].P.Watts() + pts[k-1].P.Watts()) * dt
		out[k] = units.Energy(acc)
	}
	return out
}

// MovingAverage smooths the timeline with a centred window of the given
// odd width (even widths are rounded up).
func MovingAverage(pts []Point, window int) []Point {
	if window < 1 {
		window = 1
	}
	if window%2 == 0 {
		window++
	}
	half := window / 2
	out := make([]Point, len(pts))
	for k := range pts {
		lo, hi := k-half, k+half
		if lo < 0 {
			lo = 0
		}
		if hi >= len(pts) {
			hi = len(pts) - 1
		}
		sum := 0.0
		for j := lo; j <= hi; j++ {
			sum += pts[j].P.Watts()
		}
		out[k] = Point{T: pts[k].T, P: units.Power(sum / float64(hi-lo+1))}
	}
	return out
}

// Percentile returns the q-quantile of the power values.
func Percentile(pts []Point, q float64) units.Power {
	if len(pts) == 0 || q < 0 || q > 1 {
		return units.Power(math.NaN())
	}
	vals := make([]float64, len(pts))
	for i, p := range pts {
		vals[i] = p.P.Watts()
	}
	sort.Float64s(vals)
	h := q * float64(len(vals)-1)
	lo := int(math.Floor(h))
	hi := int(math.Ceil(h))
	if lo == hi {
		return units.Power(vals[lo])
	}
	frac := h - float64(lo)
	return units.Power(vals[lo]*(1-frac) + vals[hi]*frac)
}

// Phase is a contiguous run of samples with approximately constant power.
type Phase struct {
	Start, End units.Time
	AvgPower   units.Power
	Samples    int
}

// Duration returns End - Start.
func (p Phase) Duration() units.Time { return p.End - p.Start }

// DetectPhases segments the timeline by two-window change-point
// detection: at each index it compares the mean of the preceding minLen
// samples against the following minLen samples; boundaries are placed at
// local maxima of the relative difference where it exceeds relThreshold,
// with boundaries closer than minLen merged. minLen controls noise
// immunity; relThreshold is typically 0.05-0.15 for PowerMon-class noise.
func DetectPhases(pts []Point, minLen int, relThreshold float64) ([]Phase, error) {
	if len(pts) == 0 {
		return nil, errors.New("trace: no points")
	}
	if minLen < 1 {
		return nil, errors.New("trace: minLen must be >= 1")
	}
	if relThreshold <= 0 {
		return nil, errors.New("trace: threshold must be positive")
	}
	n := len(pts)
	m := minLen
	if 2*m > n {
		// Too short to split: one phase.
		return []Phase{summarise(pts, 0, n)}, nil
	}
	// Prefix sums for O(1) window means.
	prefix := make([]float64, n+1)
	for k, p := range pts {
		prefix[k+1] = prefix[k] + p.P.Watts()
	}
	mean := func(lo, hi int) float64 { return (prefix[hi] - prefix[lo]) / float64(hi-lo) }

	// Relative two-window difference at each candidate boundary.
	diff := make([]float64, n)
	for k := m; k+m <= n; k++ {
		before := mean(k-m, k)
		after := mean(k, k+m)
		base := math.Abs(before)
		if base == 0 {
			base = 1e-300
		}
		diff[k] = math.Abs(after-before) / base
	}
	// Local maxima above threshold, greedily separated by >= m.
	var cuts []int
	for k := m; k+m <= n; k++ {
		if diff[k] <= relThreshold {
			continue
		}
		isMax := true
		for j := maxInt(m, k-m); j <= minInt(n-m, k+m); j++ {
			//archlint:ignore floatcmp exact tie-break keeps peak selection deterministic
			if diff[j] > diff[k] || (diff[j] == diff[k] && j < k) {
				isMax = j == k
				if !isMax {
					break
				}
			}
		}
		if isMax && (len(cuts) == 0 || k-cuts[len(cuts)-1] >= m) {
			cuts = append(cuts, k)
		}
	}
	var phases []Phase
	start := 0
	for _, c := range cuts {
		phases = append(phases, summarise(pts, start, c))
		start = c
	}
	phases = append(phases, summarise(pts, start, n))
	return phases, nil
}

// summarise builds a Phase over pts[lo:hi].
func summarise(pts []Point, lo, hi int) Phase {
	sum := 0.0
	for _, p := range pts[lo:hi] {
		sum += p.P.Watts()
	}
	return Phase{
		Start:    pts[lo].T,
		End:      pts[hi-1].T,
		AvgPower: units.Power(sum / float64(hi-lo)),
		Samples:  hi - lo,
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
