// Package pool is the one bounded-worker-pool implementation the
// engine's fan-out layers share. The experiment drivers fan out over
// the twelve platforms, the microbenchmark suite fans out over its
// kernels within one platform, and archlined's /v1/batch endpoint fans
// out over request items — all three run CPU-bound, seeded-deterministic
// work whose outputs must not depend on scheduling, so they all use the
// same order-stable Map and the same worker-count policy.
//
// Worker-count policy (Clamp, the single source of truth — the layers
// must not reimplement it):
//
//   - workers <= 0 means "use the machine": runtime.NumCPU() many;
//   - never more workers than items (idle goroutines are waste);
//   - never fewer than one.
package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Clamp resolves a requested worker count against n items: zero or
// negative requests take runtime.NumCPU(), and the result is clamped to
// [1, n] (for n < 1 the result is 1, so a degenerate item count still
// yields a runnable pool).
func Clamp(workers, n int) int {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// mapChunkDivisor sets the dispatch granularity of Map: the item range
// is carved into roughly workers*mapChunkDivisor chunks, so each worker
// claims a few chunks over the run (enough slack to absorb uneven item
// costs) while the per-item synchronization cost drops to one atomic
// add per chunk. A per-item channel send — the previous dispatch — cost
// two goroutine wakeups per item and made workers=2 slower than
// workers=1 on cheap items (see BenchmarkMapDispatch).
const mapChunkDivisor = 4

// Map runs fn over items with at most Clamp(workers, len(items))
// concurrent goroutines and returns the results in item order along
// with a parallel error slice (each entry nil on success). fn receives
// the item's index and value; it must be safe for concurrent use.
// Because results and errors land at their item's index, the output is
// identical at any worker count whenever fn itself is deterministic
// per item — the property the seeded simulation layers rely on.
//
// Dispatch is chunked: workers claim contiguous index ranges off an
// atomic cursor instead of receiving items one by one over a channel,
// so scheduling overhead is independent of the item count. A resolved
// worker count of one runs inline, with no goroutines at all.
func Map[S, T any](items []S, workers int, fn func(int, S) (T, error)) ([]T, []error) {
	n := len(items)
	results := make([]T, n)
	errs := make([]error, n)
	if n == 0 {
		return results, errs
	}
	workers = Clamp(workers, n)
	if workers == 1 {
		for idx := range items {
			results[idx], errs[idx] = fn(idx, items[idx])
		}
		return results, errs
	}
	chunk := n / (workers * mapChunkDivisor)
	if chunk < 1 {
		chunk = 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				start := int(next.Add(int64(chunk))) - chunk
				if start >= n {
					return
				}
				end := start + chunk
				if end > n {
					end = n
				}
				for idx := start; idx < end; idx++ {
					results[idx], errs[idx] = fn(idx, items[idx])
				}
			}
		}()
	}
	wg.Wait()
	return results, errs
}

// FirstError returns the lowest-index non-nil error and its index, or
// (-1, nil) when every entry is nil. Reducing by lowest index keeps the
// reported failure independent of goroutine scheduling.
func FirstError(errs []error) (int, error) {
	for i, err := range errs {
		if err != nil {
			return i, err
		}
	}
	return -1, nil
}
