package pool

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestClamp(t *testing.T) {
	cases := []struct {
		workers, n, want int
	}{
		{0, 8, min(runtime.NumCPU(), 8)},
		{-3, 4, min(runtime.NumCPU(), 4)},
		{2, 8, 2},
		{16, 4, 4},
		{3, 0, 1},
		{0, 0, 1},
		{1, 1, 1},
	}
	for _, c := range cases {
		if got := Clamp(c.workers, c.n); got != c.want {
			t.Errorf("Clamp(%d, %d) = %d, want %d", c.workers, c.n, got, c.want)
		}
	}
}

func TestMapOrderStable(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	for _, workers := range []int{1, 3, 8, 0} {
		got, errs := Map(items, workers, func(idx, v int) (int, error) {
			return v * v, nil
		})
		if _, err := FirstError(errs); err != nil {
			t.Fatalf("workers=%d: unexpected error %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapErrorsLandAtIndex(t *testing.T) {
	items := []int{0, 1, 2, 3, 4, 5}
	boom := errors.New("boom")
	_, errs := Map(items, 4, func(idx, v int) (int, error) {
		if v%2 == 1 {
			return 0, fmt.Errorf("item %d: %w", v, boom)
		}
		return v, nil
	})
	if len(errs) != len(items) {
		t.Fatalf("errs length %d, want %d", len(errs), len(items))
	}
	for i, err := range errs {
		if (i%2 == 1) != (err != nil) {
			t.Errorf("errs[%d] = %v", i, err)
		}
	}
	idx, err := FirstError(errs)
	if idx != 1 || !errors.Is(err, boom) {
		t.Fatalf("FirstError = (%d, %v), want index 1 wrapping boom", idx, err)
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int64
	items := make([]int, 64)
	_, errs := Map(items, workers, func(idx, v int) (int, error) {
		n := inFlight.Add(1)
		defer inFlight.Add(-1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		return 0, nil
	})
	if _, err := FirstError(errs); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent workers, cap was %d", p, workers)
	}
}

// TestMapWidthIdentity: for a deterministic per-item fn, the results
// slice is identical at every worker width — the contract the sweep and
// batch layers rely on to keep outputs independent of scheduling. Item
// counts straddle the chunking boundaries (n < workers, n not a chunk
// multiple, n ≫ workers).
func TestMapWidthIdentity(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 64, 100, 257} {
		items := make([]int, n)
		for i := range items {
			items[i] = i
		}
		ref, _ := Map(items, 1, func(idx, v int) (float64, error) {
			return float64(v) * 1.0625, nil
		})
		for _, workers := range []int{2, 3, 4, 8, 16, 0} {
			got, errs := Map(items, workers, func(idx, v int) (float64, error) {
				return float64(v) * 1.0625, nil
			})
			if _, err := FirstError(errs); err != nil {
				t.Fatalf("n=%d workers=%d: %v", n, workers, err)
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("n=%d workers=%d: result[%d] = %v, workers=1 gives %v",
						n, workers, i, got[i], ref[i])
				}
			}
		}
	}
}

// BenchmarkMapDispatch measures pure dispatch overhead: fn is as cheap
// as work gets, so the benchmark is dominated by how items reach
// workers. Under the old per-item channel dispatch, workers=2 was
// slower than workers=1 here; chunked dispatch removes that cliff.
func BenchmarkMapDispatch(b *testing.B) {
	items := make([]int, 4096)
	for i := range items {
		items[i] = i
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for b.Loop() {
				Map(items, workers, func(idx, v int) (int, error) {
					return v + 1, nil
				})
			}
		})
	}
}

func TestMapEmpty(t *testing.T) {
	got, errs := Map(nil, 4, func(idx int, v struct{}) (int, error) { return 1, nil })
	if len(got) != 0 || len(errs) != 0 {
		t.Fatalf("empty Map returned %d results, %d errors", len(got), len(errs))
	}
	if idx, err := FirstError(nil); idx != -1 || err != nil {
		t.Fatalf("FirstError(nil) = (%d, %v)", idx, err)
	}
}
