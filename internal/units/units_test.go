package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFormatSI(t *testing.T) {
	cases := []struct {
		v    float64
		unit string
		sig  int
		want string
	}{
		{4.02e12, "flop/s", 3, "4.02 Tflop/s"},
		{240e9, "B/s", 3, "240 GB/s"},
		{518e-12, "J/B", 3, "518 pJ/B"},
		{30.4e-12, "J/flop", 3, "30.4 pJ/flop"},
		{1.13e-9, "J/B", 3, "1.13 nJ/B"},
		{16e9, "flop/J", 2, "16 Gflop/J"},
		{123, "W", 3, "123 W"},
		{0, "W", 3, "0 W"},
		{-2.5e6, "flop", 2, "-2.5 Mflop"},
		{999.96e9, "B/s", 3, "1 TB/s"}, // rounding promotes the prefix
		{1e-30, "J", 3, "1e-06 yJ"},    // saturates at the smallest prefix
		{1, "s", 3, "1 s"},
		{0.001, "s", 3, "1 ms"},
		{1536, "Hz", 4, "1.536 kHz"},
	}
	for _, c := range cases {
		if got := FormatSI(c.v, c.unit, c.sig); got != c.want {
			t.Errorf("FormatSI(%g,%q,%d) = %q, want %q", c.v, c.unit, c.sig, got, c.want)
		}
	}
}

func TestFormatSINonFinite(t *testing.T) {
	if got := FormatSI(math.Inf(1), "W", 3); got != "+Inf W" {
		t.Errorf("inf: got %q", got)
	}
	if got := FormatSI(math.NaN(), "W", 3); got != "NaN W" {
		t.Errorf("nan: got %q", got)
	}
}

func TestFormatIntensity(t *testing.T) {
	cases := []struct {
		v    Intensity
		want string
	}{
		{0.125, "1/8"},
		{0.25, "1/4"},
		{0.5, "1/2"},
		{1, "1"},
		{4, "4"},
		{256, "256"},
		{0.3, "1/3.33"}, // 1/0.3 is not integral -> falls through? no: inv=3.33 not integral
	}
	// fix expectation for 0.3: not a unit fraction, >0 and <1 -> falls to trimFloat
	cases[6].want = "0.3"
	for _, c := range cases {
		if got := FormatIntensity(c.v); got != c.want {
			t.Errorf("FormatIntensity(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestConversionsRoundTrip(t *testing.T) {
	r := GFlopPerSec(100)
	if got := r.Inverse().Inverse(); math.Abs(float64(got-r)) > 1e-3 {
		t.Errorf("FlopRate inverse round trip: %v != %v", got, r)
	}
	b := GBPerSec(25.6)
	if got := b.Inverse().Inverse(); math.Abs(float64(got-b)) > 1e-3 {
		t.Errorf("ByteRate inverse round trip: %v != %v", got, b)
	}
}

func TestDerivedAccessors(t *testing.T) {
	cases := []struct {
		name string
		got  float64
		want float64
	}{
		{"FlopRate.FlopsPerSec", FlopRate(4.02e12).FlopsPerSec(), 4.02e12},
		{"ByteRate.BytesPerSec", ByteRate(240e9).BytesPerSec(), 240e9},
		{"AccessRate.AccessesPerSec", AccessRate(968e6).AccessesPerSec(), 968e6},
		{"TimePerFlop.SecondsPerFlop", TimePerFlop(2.5e-13).SecondsPerFlop(), 2.5e-13},
		{"TimePerByte.SecondsPerByte", TimePerByte(4.2e-12).SecondsPerByte(), 4.2e-12},
		{"EnergyPerFlop.JoulesPerFlop", EnergyPerFlop(30.4e-12).JoulesPerFlop(), 30.4e-12},
		{"EnergyPerByte.JoulesPerByte", EnergyPerByte(267e-12).JoulesPerByte(), 267e-12},
		{"EnergyPerAccess.JoulesPerAccess", EnergyPerAccess(48e-9).JoulesPerAccess(), 48e-9},
		{"FlopsPerJoule.FlopsPerJoule", FlopsPerJoule(16e9).FlopsPerJoule(), 16e9},
		{"BytesPerJoule.BytesPerJoule", BytesPerJoule(1.3e9).BytesPerJoule(), 1.3e9},
		{"Accesses.Count", Accesses(1024).Count(), 1024},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
		}
	}
}

func TestEnergyPowerTime(t *testing.T) {
	e := Energy(100)
	tt := Time(4)
	p := e.Over(tt)
	if p != 25 {
		t.Fatalf("100 J over 4 s = %v W, want 25", p)
	}
	if back := p.For(tt); back != e {
		t.Fatalf("25 W for 4 s = %v J, want 100", back)
	}
}

func TestDivisionByZeroYieldsInf(t *testing.T) {
	if !math.IsInf(float64(Energy(1).Over(0)), 1) {
		t.Error("Energy.Over(0) should be +Inf")
	}
	if !math.IsInf(float64(Flops(1).Rate(0)), 1) {
		t.Error("Flops.Rate(0) should be +Inf")
	}
	if !math.IsInf(float64(Bytes(1).Rate(0)), 1) {
		t.Error("Bytes.Rate(0) should be +Inf")
	}
	if !math.IsInf(float64(Accesses(1).Rate(0)), 1) {
		t.Error("Accesses.Rate(0) should be +Inf")
	}
	if !math.IsInf(float64(Flops(1).PerJoule(0)), 1) {
		t.Error("Flops.PerJoule(0) should be +Inf")
	}
	if !math.IsInf(float64(FlopRate(0).Inverse()), 1) {
		t.Error("FlopRate(0).Inverse should be +Inf")
	}
	if !math.IsInf(float64(Flops(1).Intensity(0)), 1) {
		t.Error("Intensity with Q=0 should be +Inf")
	}
}

func TestIntensityBytes(t *testing.T) {
	w := GFlops(8)
	i := Intensity(2)
	q := i.Bytes(w)
	if got := w.Intensity(q); math.Abs(float64(got-i)) > 1e-12 {
		t.Errorf("Intensity/Bytes round trip: got %v want %v", got, i)
	}
}

func TestPowerPerOp(t *testing.T) {
	// GTX Titan-ish: 30.4 pJ/flop at 4.02 Tflop/s is ~122 W of flop power.
	pf := PowerPerFlop(PicoJoulePerFlop(30.4), GFlopPerSec(4020).Inverse())
	if math.Abs(float64(pf)-122.2) > 0.2 {
		t.Errorf("pi_flop = %v, want ~122.2 W", pf)
	}
	pm := PowerPerByte(PicoJoulePerByte(267), GBPerSec(239).Inverse())
	if math.Abs(float64(pm)-63.8) > 0.2 {
		t.Errorf("pi_mem = %v, want ~63.8 W", pm)
	}
	if !math.IsInf(float64(PowerPerFlop(1, 0)), 1) {
		t.Error("PowerPerFlop with tau=0 should be +Inf")
	}
	if !math.IsInf(float64(PowerPerByte(1, 0)), 1) {
		t.Error("PowerPerByte with tau=0 should be +Inf")
	}
}

func TestMagnitudeConstructors(t *testing.T) {
	if GFlops(2) != 2e9 {
		t.Error("GFlops")
	}
	if TFlops(3) != 3e12 {
		t.Error("TFlops")
	}
	if MFlops(5) != 5e6 {
		t.Error("MFlops")
	}
	if KiB(1) != 1024 {
		t.Error("KiB")
	}
	if MiB(1) != 1<<20 {
		t.Error("MiB")
	}
	if GiB(1) != 1<<30 {
		t.Error("GiB")
	}
	if GB(1) != 1e9 {
		t.Error("GB")
	}
	if MAccPerSec(1) != 1e6 {
		t.Error("MAccPerSec")
	}
	if math.Abs(float64(NanoJoulePerAccess(48))-48e-9) > 1e-21 {
		t.Error("NanoJoulePerAccess")
	}
}

// Property: round-tripping rate<->cost is the identity for positive finite
// values.
func TestQuickInverseRoundTrip(t *testing.T) {
	f := func(v float64) bool {
		v = math.Abs(v)
		if v == 0 || math.IsInf(v, 0) || math.IsNaN(v) || v < 1e-300 || v > 1e300 {
			return true
		}
		r := FlopRate(v)
		back := r.Inverse().Inverse()
		return math.Abs(float64(back)-v) <= 1e-12*v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: FormatSI never panics and always contains the unit suffix.
func TestQuickFormatSITotal(t *testing.T) {
	f := func(v float64, sig uint8) bool {
		s := FormatSI(v, "X", int(sig%8))
		return len(s) > 0 && s[len(s)-1] == 'X'
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: intensity of (W, W/I) recovers I.
func TestQuickIntensityRoundTrip(t *testing.T) {
	f := func(w, i float64) bool {
		w, i = math.Abs(w), math.Abs(i)
		if w < 1e-6 || i < 1e-6 || w > 1e30 || i > 1e30 {
			return true
		}
		q := Intensity(i).Bytes(Flops(w))
		got := Flops(w).Intensity(q)
		return math.Abs(float64(got)-i) <= 1e-9*i
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRoundSig(t *testing.T) {
	if roundSig(999.96, 3) != 1000 {
		t.Errorf("roundSig(999.96,3) = %v", roundSig(999.96, 3))
	}
	if roundSig(0, 3) != 0 {
		t.Error("roundSig(0)")
	}
	if roundSig(123.456, 4) != 123.5 {
		t.Errorf("roundSig(123.456,4) = %v", roundSig(123.456, 4))
	}
}

func TestParseSize(t *testing.T) {
	cases := []struct {
		in   string
		want float64
	}{
		{"64Mi", 64 << 20},
		{"8Ki", 8 << 10},
		{"1Gi", 1 << 30},
		{"4096", 4096},
		{"0.5Mi", 512 << 10},
	}
	for _, c := range cases {
		got, err := ParseSize(c.in)
		if err != nil {
			t.Fatalf("ParseSize(%q): %v", c.in, err)
		}
		if math.Abs(float64(got)-c.want) > 1e-9 {
			t.Errorf("ParseSize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "x", "-1Ki", "0", "InfMi", "12Qi3"} {
		if _, err := ParseSize(bad); err == nil {
			t.Errorf("ParseSize(%q) should error", bad)
		}
	}
}
