// Package units provides typed physical quantities and SI engineering
// formatting for the time/energy/power analysis in this repository.
//
// All quantities are float64s in SI base units (seconds, joules, watts,
// bytes, flops). Distinct named types keep the model code honest about
// what is being multiplied with what: the compiler rejects adding a time
// to an energy, and conversions are explicit methods that carry the
// physical meaning (e.g. Energy.Over(Time) is Power).
package units

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Time is a duration in seconds.
type Time float64

// Energy is an amount of energy in joules.
type Energy float64

// Power is an instantaneous or average power in watts.
type Power float64

// Flops is a count of floating-point operations. It is fractional so that
// averages and model predictions compose without rounding.
type Flops float64

// Bytes is a count of bytes moved. Fractional for the same reason as Flops.
type Bytes float64

// Accesses is a count of (random) memory accesses.
type Accesses float64

// Intensity is the operational (arithmetic) intensity of a computation in
// flops per byte, the x-axis of every roofline in the paper.
type Intensity float64

// FlopRate is a computational throughput in flop/s.
type FlopRate float64

// ByteRate is a memory bandwidth in bytes/s.
type ByteRate float64

// AccessRate is a random-access throughput in accesses/s.
type AccessRate float64

// TimePerFlop is a throughput-reciprocal cost in seconds per flop (the
// model's tau_flop).
type TimePerFlop float64

// TimePerByte is seconds per byte (the model's tau_mem).
type TimePerByte float64

// EnergyPerFlop is joules per flop (the model's epsilon_flop).
type EnergyPerFlop float64

// EnergyPerByte is joules per byte (the model's epsilon_mem and the
// per-cache-level epsilons).
type EnergyPerByte float64

// EnergyPerAccess is joules per random access (the model's epsilon_rand).
type EnergyPerAccess float64

// FlopsPerJoule is an energy efficiency in flop/J.
type FlopsPerJoule float64

// BytesPerJoule is a memory energy efficiency in B/J.
type BytesPerJoule float64

// Seconds returns t as a plain float64 number of seconds.
func (t Time) Seconds() float64 { return float64(t) }

// Joules returns e as a plain float64 number of joules.
func (e Energy) Joules() float64 { return float64(e) }

// Watts returns p as a plain float64 number of watts.
func (p Power) Watts() float64 { return float64(p) }

// Count returns w as a plain float64 number of flops.
func (w Flops) Count() float64 { return float64(w) }

// Count returns q as a plain float64 number of bytes.
func (q Bytes) Count() float64 { return float64(q) }

// Count returns a as a plain float64 number of accesses.
func (a Accesses) Count() float64 { return float64(a) }

// Ratio returns i as a plain float64 flop:byte ratio.
func (i Intensity) Ratio() float64 { return float64(i) }

// FlopsPerSec returns r as a plain float64 throughput in flop/s.
func (r FlopRate) FlopsPerSec() float64 { return float64(r) }

// BytesPerSec returns r as a plain float64 bandwidth in B/s.
func (r ByteRate) BytesPerSec() float64 { return float64(r) }

// AccessesPerSec returns r as a plain float64 rate in accesses/s.
func (r AccessRate) AccessesPerSec() float64 { return float64(r) }

// SecondsPerFlop returns t as a plain float64 cost in s/flop.
func (t TimePerFlop) SecondsPerFlop() float64 { return float64(t) }

// SecondsPerByte returns t as a plain float64 cost in s/B.
func (t TimePerByte) SecondsPerByte() float64 { return float64(t) }

// JoulesPerFlop returns e as a plain float64 energy cost in J/flop.
func (e EnergyPerFlop) JoulesPerFlop() float64 { return float64(e) }

// JoulesPerByte returns e as a plain float64 energy cost in J/B.
func (e EnergyPerByte) JoulesPerByte() float64 { return float64(e) }

// JoulesPerAccess returns e as a plain float64 energy cost in J/access.
func (e EnergyPerAccess) JoulesPerAccess() float64 { return float64(e) }

// FlopsPerJoule returns e as a plain float64 efficiency in flop/J.
func (e FlopsPerJoule) FlopsPerJoule() float64 { return float64(e) }

// BytesPerJoule returns e as a plain float64 efficiency in B/J.
func (e BytesPerJoule) BytesPerJoule() float64 { return float64(e) }

// Over divides an energy by a time, yielding the average power.
func (e Energy) Over(t Time) Power {
	if t <= 0 {
		return Power(math.Inf(1))
	}
	return Power(float64(e) / float64(t))
}

// For integrates a constant power over a duration, yielding energy.
func (p Power) For(t Time) Energy { return Energy(float64(p) * float64(t)) }

// Rate converts a flop count over a duration into a throughput.
func (w Flops) Rate(t Time) FlopRate {
	if t <= 0 {
		return FlopRate(math.Inf(1))
	}
	return FlopRate(float64(w) / float64(t))
}

// Rate converts a byte count over a duration into a bandwidth.
func (q Bytes) Rate(t Time) ByteRate {
	if t <= 0 {
		return ByteRate(math.Inf(1))
	}
	return ByteRate(float64(q) / float64(t))
}

// Rate converts an access count over a duration into an access rate.
func (a Accesses) Rate(t Time) AccessRate {
	if t <= 0 {
		return AccessRate(math.Inf(1))
	}
	return AccessRate(float64(a) / float64(t))
}

// PerJoule converts a flop count and an energy into an energy efficiency.
func (w Flops) PerJoule(e Energy) FlopsPerJoule {
	if e <= 0 {
		return FlopsPerJoule(math.Inf(1))
	}
	return FlopsPerJoule(float64(w) / float64(e))
}

// PerJoule converts a byte count and an energy into a memory efficiency.
func (q Bytes) PerJoule(e Energy) BytesPerJoule {
	if e <= 0 {
		return BytesPerJoule(math.Inf(1))
	}
	return BytesPerJoule(float64(q) / float64(e))
}

// Inverse converts a throughput into a per-operation time cost.
func (r FlopRate) Inverse() TimePerFlop {
	if r <= 0 {
		return TimePerFlop(math.Inf(1))
	}
	return TimePerFlop(1 / float64(r))
}

// Inverse converts a bandwidth into a per-byte time cost.
func (r ByteRate) Inverse() TimePerByte {
	if r <= 0 {
		return TimePerByte(math.Inf(1))
	}
	return TimePerByte(1 / float64(r))
}

// Inverse converts a per-flop time cost back into a throughput.
func (t TimePerFlop) Inverse() FlopRate {
	if t <= 0 {
		return FlopRate(math.Inf(1))
	}
	return FlopRate(1 / float64(t))
}

// Inverse converts a per-byte time cost back into a bandwidth.
func (t TimePerByte) Inverse() ByteRate {
	if t <= 0 {
		return ByteRate(math.Inf(1))
	}
	return ByteRate(1 / float64(t))
}

// Intensity computes the flop:Byte ratio W/Q of a computation.
func (w Flops) Intensity(q Bytes) Intensity {
	if q <= 0 {
		return Intensity(math.Inf(1))
	}
	return Intensity(float64(w) / float64(q))
}

// Bytes returns the byte volume implied by w flops at intensity i (Q = W/I).
func (i Intensity) Bytes(w Flops) Bytes {
	if i <= 0 {
		return Bytes(math.Inf(1))
	}
	return Bytes(float64(w) / float64(i))
}

// PowerPerFlop is the model's pi_flop = eps_flop / tau_flop: the power drawn
// when executing flops at peak throughput.
func PowerPerFlop(eps EnergyPerFlop, tau TimePerFlop) Power {
	if tau <= 0 {
		return Power(math.Inf(1))
	}
	return Power(float64(eps) / float64(tau))
}

// PowerPerByte is the model's pi_mem = eps_mem / tau_mem: the power drawn
// when streaming memory at peak bandwidth.
func PowerPerByte(eps EnergyPerByte, tau TimePerByte) Power {
	if tau <= 0 {
		return Power(math.Inf(1))
	}
	return Power(float64(eps) / float64(tau))
}

// prefixes maps exponent/3 steps to SI prefixes. Index 8 is the empty
// prefix (10^0); the table spans 10^-24 .. 10^24.
var prefixes = []string{"y", "z", "a", "f", "p", "n", "µ", "m", "", "k", "M", "G", "T", "P", "E", "Z", "Y"}

const prefixZero = 8 // index of "" in prefixes

// FormatSI renders value with an SI engineering prefix and the given unit
// suffix, using sig significant digits: FormatSI(4.02e12, "flop/s", 3) ==
// "4.02 Tflop/s". Zero renders without a prefix; non-finite values render
// via %g. Values outside the prefix table saturate at the table edges.
func FormatSI(value float64, unit string, sig int) string {
	if sig < 1 {
		sig = 1
	}
	if value == 0 {
		return trimFloat(0, sig) + " " + unit
	}
	if math.IsNaN(value) || math.IsInf(value, 0) {
		return fmt.Sprintf("%g %s", value, unit)
	}
	neg := ""
	v := value
	if v < 0 {
		neg = "-"
		v = -v
	}
	exp := int(math.Floor(math.Log10(v) / 3))
	idx := prefixZero + exp
	if idx < 0 {
		idx = 0
	}
	if idx >= len(prefixes) {
		idx = len(prefixes) - 1
	}
	scaled := v / math.Pow(1000, float64(idx-prefixZero))
	// Rounding can push the mantissa to 1000 (e.g. 999.96 at 3 sig figs);
	// promote to the next prefix when it does.
	if rounded := roundSig(scaled, sig); rounded >= 1000 && idx+1 < len(prefixes) {
		idx++
		scaled = v / math.Pow(1000, float64(idx-prefixZero))
	}
	return neg + trimFloat(roundSig(scaled, sig), sig) + " " + prefixes[idx] + unit
}

// roundSig rounds v to sig significant digits.
func roundSig(v float64, sig int) float64 {
	if v == 0 {
		return 0
	}
	mag := math.Ceil(math.Log10(math.Abs(v)))
	factor := math.Pow(10, float64(sig)-mag)
	return math.Round(v*factor) / factor
}

// trimFloat formats v at sig significant digits without trailing zeros.
func trimFloat(v float64, sig int) string {
	s := fmt.Sprintf("%.*g", sig, v)
	return s
}

// FormatTime renders a duration with an SI prefix ("1.3 ms").
func FormatTime(t Time) string { return FormatSI(float64(t), "s", 3) }

// FormatEnergy renders an energy with an SI prefix ("518 pJ").
func FormatEnergy(e Energy) string { return FormatSI(float64(e), "J", 3) }

// FormatPower renders a power with an SI prefix ("123 W").
func FormatPower(p Power) string { return FormatSI(float64(p), "W", 3) }

// FormatFlopRate renders a throughput as in the paper's tables
// ("4.02 Tflop/s").
func FormatFlopRate(r FlopRate) string { return FormatSI(float64(r), "flop/s", 3) }

// FormatByteRate renders a bandwidth ("240 GB/s").
func FormatByteRate(r ByteRate) string { return FormatSI(float64(r), "B/s", 3) }

// FormatAccessRate renders a random-access throughput ("968 Macc/s").
func FormatAccessRate(r AccessRate) string { return FormatSI(float64(r), "acc/s", 3) }

// FormatEnergyPerFlop renders a per-flop energy ("30.4 pJ/flop").
func FormatEnergyPerFlop(e EnergyPerFlop) string { return FormatSI(float64(e), "J/flop", 3) }

// FormatEnergyPerByte renders a per-byte energy ("267 pJ/B").
func FormatEnergyPerByte(e EnergyPerByte) string { return FormatSI(float64(e), "J/B", 3) }

// FormatEnergyPerAccess renders a per-access energy ("48 nJ/access").
func FormatEnergyPerAccess(e EnergyPerAccess) string { return FormatSI(float64(e), "J/access", 3) }

// FormatFlopsPerJoule renders an energy efficiency ("16 Gflop/J").
func FormatFlopsPerJoule(e FlopsPerJoule) string { return FormatSI(float64(e), "flop/J", 3) }

// FormatBytesPerJoule renders a memory energy efficiency ("1.3 GB/J").
func FormatBytesPerJoule(e BytesPerJoule) string { return FormatSI(float64(e), "B/J", 3) }

// FormatIntensity renders an intensity as the paper's axes do: powers of
// two appear as fractions ("1/8", "4"), everything else at 3 significant
// digits.
func FormatIntensity(i Intensity) string {
	v := float64(i)
	if v > 0 && math.Abs(v-math.Round(v)) < 1e-9*math.Max(v, 1) && math.Round(v) >= 1 {
		return fmt.Sprintf("%d", int(math.Round(v)))
	}
	if v > 0 && v < 1 {
		inv := 1 / v
		if math.Abs(inv-math.Round(inv)) < 1e-9*inv {
			return fmt.Sprintf("1/%d", int(math.Round(inv)))
		}
	}
	return trimFloat(roundSig(v, 3), 3)
}

// GFlops, TFlops, MFlops build flop counts from conventional magnitudes.
func GFlops(v float64) Flops { return Flops(v * 1e9) }

// TFlops returns v trillion flops.
func TFlops(v float64) Flops { return Flops(v * 1e12) }

// MFlops returns v million flops.
func MFlops(v float64) Flops { return Flops(v * 1e6) }

// KiB, MiB, GiB build byte counts from binary magnitudes (working-set
// sizes are naturally binary).
func KiB(v float64) Bytes { return Bytes(v * 1024) }

// MiB returns v binary megabytes.
func MiB(v float64) Bytes { return Bytes(v * 1024 * 1024) }

// GiB returns v binary gigabytes.
func GiB(v float64) Bytes { return Bytes(v * 1024 * 1024 * 1024) }

// GB builds a decimal gigabyte count (bandwidth contexts use decimal).
func GB(v float64) Bytes { return Bytes(v * 1e9) }

// GFlopPerSec builds a throughput from Gflop/s, the unit of Table I.
func GFlopPerSec(v float64) FlopRate { return FlopRate(v * 1e9) }

// GBPerSec builds a bandwidth from GB/s (decimal), the unit of Table I.
func GBPerSec(v float64) ByteRate { return ByteRate(v * 1e9) }

// MAccPerSec builds an access rate from Macc/s, the unit of Table I.
func MAccPerSec(v float64) AccessRate { return AccessRate(v * 1e6) }

// PicoJoulePerFlop builds a per-flop energy from pJ/flop, Table I's unit.
func PicoJoulePerFlop(v float64) EnergyPerFlop { return EnergyPerFlop(v * 1e-12) }

// PicoJoulePerByte builds a per-byte energy from pJ/B, Table I's unit.
func PicoJoulePerByte(v float64) EnergyPerByte { return EnergyPerByte(v * 1e-12) }

// NanoJoulePerAccess builds a per-access energy from nJ/access.
func NanoJoulePerAccess(v float64) EnergyPerAccess { return EnergyPerAccess(v * 1e-9) }

// ParseSize parses a byte count with an optional binary suffix:
// "64Mi" = 64 MiB, "8Ki", "1Gi", or a plain number of bytes. It is the
// working-set syntax the command-line tools accept.
func ParseSize(s string) (Bytes, error) {
	mult := 1.0
	switch {
	case strings.HasSuffix(s, "Ki"):
		mult, s = 1<<10, strings.TrimSuffix(s, "Ki")
	case strings.HasSuffix(s, "Mi"):
		mult, s = 1<<20, strings.TrimSuffix(s, "Mi")
	case strings.HasSuffix(s, "Gi"):
		mult, s = 1<<30, strings.TrimSuffix(s, "Gi")
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || v <= 0 || math.IsInf(v, 0) || math.IsNaN(v) {
		return 0, fmt.Errorf("units: bad size %q", s)
	}
	return Bytes(v * mult), nil
}
