package registry

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"archline/internal/machine"
)

// testPlatform returns a valid custom platform description with the
// given id and a content knob so tests can produce distinct versions.
func testPlatform(t *testing.T, id string, gflops float64) *machine.Platform {
	t.Helper()
	src := fmt.Sprintf(`{
		"id": %q, "name": "Test %s", "class": "mini", "cache_line_bytes": 64,
		"vendor_single_gflops": %g, "vendor_mem_gbs": 20, "idle_w": 3,
		"sustained_single_gflops": %g, "sustained_mem_gbs": 10,
		"eps_s_pj_per_flop": 40, "eps_mem_pj_per_byte": 300,
		"pi1_w": 2, "delta_pi_w": 4
	}`, id, id, gflops*1.25, gflops)
	p, err := machine.FromJSON(strings.NewReader(src))
	if err != nil {
		t.Fatalf("test platform %s: %v", id, err)
	}
	return p
}

func mustOpen(t *testing.T, dir string) *Registry {
	t.Helper()
	r, err := Open(dir, 4)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return r
}

func TestOpenSeedsBuiltins(t *testing.T) {
	r := mustOpen(t, t.TempDir())
	all := machine.All()
	list := r.List()
	if len(list) != len(all) {
		t.Fatalf("List() = %d entries, want %d builtins", len(list), len(all))
	}
	for i := 1; i < len(list); i++ {
		if list[i-1].ID >= list[i].ID {
			t.Fatal("List() not sorted by ID")
		}
	}
	for _, p := range all {
		e, err := r.Get(string(p.ID))
		if err != nil {
			t.Fatalf("Get(%s): %v", p.ID, err)
		}
		if !e.Builtin || e.Version != 1 {
			t.Errorf("%s: Builtin=%v Version=%d, want builtin v1", p.ID, e.Builtin, e.Version)
		}
		canon, err := machine.Canonical(p)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(e.Canonical, canon) {
			t.Errorf("%s: registry canonical bytes differ from machine.Canonical", p.ID)
		}
		if e.ETag != etagFor(canon) {
			t.Errorf("%s: ETag %s does not hash the canonical bytes", p.ID, e.ETag)
		}
	}
	if _, err := r.Get("no-such-platform"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get(missing) = %v, want ErrNotFound", err)
	}
}

func TestBuiltinsReadOnly(t *testing.T) {
	r := mustOpen(t, t.TempDir())
	builtin := string(machine.All()[0].ID)
	if _, _, err := r.Put(testPlatform(t, builtin, 10)); !errors.Is(err, ErrReadOnly) {
		t.Errorf("Put(builtin id) = %v, want ErrReadOnly", err)
	}
	if err := r.Delete(builtin); !errors.Is(err, ErrReadOnly) {
		t.Errorf("Delete(builtin id) = %v, want ErrReadOnly", err)
	}
}

func TestPutPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	r := mustOpen(t, dir)
	e1, outcome, err := r.Put(testPlatform(t, "dev-board", 10))
	if err != nil {
		t.Fatal(err)
	}
	if outcome != PutCreated || e1.Version != 1 {
		t.Fatalf("first Put: outcome=%v version=%d, want created v1", outcome, e1.Version)
	}
	if got := e1.CacheKey(); got != "dev-board@v1" && got != "id:dev-board@v1" {
		// Pin the exact format: the server's eviction matcher depends on it.
		t.Fatalf("CacheKey() = %q", got)
	}
	if e1.CacheKey() != "id:dev-board@v1" {
		t.Fatalf("CacheKey() = %q, want id:dev-board@v1", e1.CacheKey())
	}

	r2 := mustOpen(t, dir)
	if r2.Recovery().Loaded != 1 {
		t.Fatalf("reopen Recovery() = %+v, want Loaded=1", r2.Recovery())
	}
	e2, err := r2.Get("dev-board")
	if err != nil {
		t.Fatal(err)
	}
	if e2.Version != e1.Version || e2.ETag != e1.ETag || !bytes.Equal(e2.Canonical, e1.Canonical) {
		t.Error("recovered entry differs from the committed one")
	}
	if e2.Builtin {
		t.Error("recovered upload marked builtin")
	}
	// The recovered platform drives the model identically.
	if e2.Platform.Single.AvgPowerAt(4) <= 0 {
		t.Error("recovered platform fails model evaluation")
	}
}

func TestPutIdempotentAndVersioned(t *testing.T) {
	r := mustOpen(t, t.TempDir())
	var invalidated []string
	r.SetInvalidator(func(id string, oldV uint64) {
		invalidated = append(invalidated, fmt.Sprintf("%s@v%d", id, oldV))
	})

	e1, _, err := r.Put(testPlatform(t, "dev-board", 10))
	if err != nil {
		t.Fatal(err)
	}
	// Byte-identical content: no version bump, no invalidation.
	e2, outcome, err := r.Put(testPlatform(t, "dev-board", 10))
	if err != nil {
		t.Fatal(err)
	}
	if outcome != PutUnchanged || e2.Version != e1.Version || e2.ETag != e1.ETag {
		t.Fatalf("idempotent re-upload: outcome=%v version=%d", outcome, e2.Version)
	}
	if len(invalidated) != 0 {
		t.Fatalf("idempotent re-upload invalidated %v", invalidated)
	}
	// New content: version bump, old version evicted.
	e3, outcome, err := r.Put(testPlatform(t, "dev-board", 20))
	if err != nil {
		t.Fatal(err)
	}
	if outcome != PutUpdated || e3.Version != 2 || e3.ETag == e1.ETag {
		t.Fatalf("re-upload: outcome=%v version=%d", outcome, e3.Version)
	}
	if len(invalidated) != 1 || invalidated[0] != "dev-board@v1" {
		t.Fatalf("invalidations = %v, want [dev-board@v1]", invalidated)
	}
	st := r.Stats()
	if st.Uploads != 2 || st.Invalidations != 1 {
		t.Errorf("Stats = %+v, want 2 uploads, 1 invalidation", st)
	}
}

func TestDeleteTombstoneAndVersionFloor(t *testing.T) {
	dir := t.TempDir()
	r := mustOpen(t, dir)
	if _, _, err := r.Put(testPlatform(t, "dev-board", 10)); err != nil {
		t.Fatal(err)
	}
	if err := r.Delete("dev-board"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get("dev-board"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after delete = %v, want ErrNotFound", err)
	}
	if err := r.Delete("dev-board"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete = %v, want ErrNotFound", err)
	}

	// The tombstone survives restart...
	r2 := mustOpen(t, dir)
	if _, err := r2.Get("dev-board"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after reopen = %v, want ErrNotFound", err)
	}
	if r2.Recovery().Tombstones != 1 {
		t.Errorf("Recovery() = %+v, want Tombstones=1", r2.Recovery())
	}
	// ...and holds the version floor: re-creation starts above every
	// version any cache has ever seen (v1 upload, v2 tombstone → v3).
	e, outcome, err := r2.Put(testPlatform(t, "dev-board", 30))
	if err != nil {
		t.Fatal(err)
	}
	if outcome != PutCreated || e.Version != 3 {
		t.Fatalf("re-create after delete: outcome=%v version=%d, want created v3", outcome, e.Version)
	}
}

// TestCrashConsistency is the injected-failure harness: one committed
// platform, then a second upload crashed at each point of the
// write path in turn. After every crash the registry must reopen with
// the committed platform intact; the interrupted upload is visible only
// if the crash hit after the rename (the commit point), and in-flight
// debris is cleaned, never quarantined as corruption.
func TestCrashConsistency(t *testing.T) {
	steps := []struct {
		step      string
		committed bool // is the interrupted upload durable?
	}{
		{crashTmpCreated, false},
		{crashTmpPartial, false},
		{crashTmpWritten, false},
		{crashTmpSynced, false},
		{crashRenamed, true},
	}
	for _, tc := range steps {
		t.Run(tc.step, func(t *testing.T) {
			dir := t.TempDir()
			r := mustOpen(t, dir)
			if _, _, err := r.Put(testPlatform(t, "committed", 10)); err != nil {
				t.Fatal(err)
			}
			r.store.crashAt = func(step string) bool { return step == tc.step }
			_, _, err := r.Put(testPlatform(t, "doomed", 20))
			if !errors.Is(err, ErrCrashed) {
				t.Fatalf("crashed Put = %v, want ErrCrashed", err)
			}

			r2 := mustOpen(t, dir)
			if _, err := r2.Get("committed"); err != nil {
				t.Fatalf("committed platform lost after crash at %s: %v", tc.step, err)
			}
			_, err = r2.Get("doomed")
			if tc.committed && err != nil {
				t.Fatalf("post-rename crash lost the committed blob: %v", err)
			}
			if !tc.committed && !errors.Is(err, ErrNotFound) {
				t.Fatalf("pre-rename crash leaked a half-written platform: %v", err)
			}
			stats := r2.Recovery()
			if stats.Quarantined != 0 {
				t.Errorf("crash debris quarantined as corruption: %+v", stats)
			}
			wantTmp := 0
			if tc.step != crashRenamed {
				wantTmp = 1 // the abandoned temp file
			}
			if stats.TmpCleaned != wantTmp {
				t.Errorf("TmpCleaned = %d, want %d (%+v)", stats.TmpCleaned, wantTmp, stats)
			}
			// And the store still works after recovery.
			if _, _, err := r2.Put(testPlatform(t, "after", 30)); err != nil {
				t.Fatalf("Put after recovery: %v", err)
			}
		})
	}
}

// TestCrashDuringReuploadPrunesSuperseded: a crash after rename but
// before the old blob is pruned leaves two versions of one ID on disk.
// Recovery must adopt the higher version and prune the stale blob.
func TestCrashDuringReuploadPrunesSuperseded(t *testing.T) {
	dir := t.TempDir()
	r := mustOpen(t, dir)
	if _, _, err := r.Put(testPlatform(t, "dev-board", 10)); err != nil {
		t.Fatal(err)
	}
	r.store.crashAt = func(step string) bool { return step == crashRenamed }
	if _, _, err := r.Put(testPlatform(t, "dev-board", 20)); !errors.Is(err, ErrCrashed) {
		t.Fatal("expected injected crash")
	}
	blobs, err := os.ReadDir(filepath.Join(dir, "blobs"))
	if err != nil {
		t.Fatal(err)
	}
	if len(blobs) != 2 {
		t.Fatalf("expected both versions on disk before recovery, found %d blobs", len(blobs))
	}

	r2 := mustOpen(t, dir)
	e, err := r2.Get("dev-board")
	if err != nil {
		t.Fatal(err)
	}
	if e.Version != 2 {
		t.Fatalf("recovered version %d, want the re-uploaded v2", e.Version)
	}
	if r2.Recovery().Pruned != 1 {
		t.Errorf("Recovery() = %+v, want Pruned=1", r2.Recovery())
	}
	blobs, err = os.ReadDir(filepath.Join(dir, "blobs"))
	if err != nil {
		t.Fatal(err)
	}
	if len(blobs) != 1 {
		t.Errorf("superseded blob not pruned: %d blobs remain", len(blobs))
	}
}

// plantBlob writes raw bytes into blobs/ under their content-addressed
// name, simulating a committed blob with arbitrary contents.
func plantBlob(t *testing.T, dir string, data []byte) string {
	t.Helper()
	sum := sha256.Sum256(data)
	name := hex.EncodeToString(sum[:]) + ".json"
	if err := os.MkdirAll(filepath.Join(dir, "blobs"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "blobs", name), data, 0o644); err != nil {
		t.Fatal(err)
	}
	return name
}

func TestRecoveryQuarantinesCorruption(t *testing.T) {
	dir := t.TempDir()
	r := mustOpen(t, dir)
	if _, _, err := r.Put(testPlatform(t, "good", 10)); err != nil {
		t.Fatal(err)
	}

	// (a) A blob whose bytes do not hash to its name: bit rot.
	rotName := "deadbeef" + strings.Repeat("00", 28) + ".json"
	if err := os.WriteFile(filepath.Join(dir, "blobs", rotName), []byte(`{"format":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	// (b) A file that is not a blob at all.
	if err := os.WriteFile(filepath.Join(dir, "blobs", "notes.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	// (c) A well-hashed envelope whose platform fails strict validation.
	env := map[string]any{
		"format": 1, "id": "evil", "version": 1,
		"sha256":   hex.EncodeToString(sumOf(`{"id":"evil"}`)),
		"platform": json.RawMessage(`{"id":"evil"}`),
	}
	envBytes, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	plantBlob(t, dir, envBytes)
	// (d) A well-hashed envelope shadowing a built-in ID.
	builtinID := string(machine.All()[0].ID)
	canon, err := machine.Canonical(machine.All()[0])
	if err != nil {
		t.Fatal(err)
	}
	shadow, err := json.Marshal(map[string]any{
		"format": 1, "id": builtinID, "version": 9,
		"sha256":   hex.EncodeToString(sumOf(string(canon))),
		"platform": json.RawMessage(canon),
	})
	if err != nil {
		t.Fatal(err)
	}
	plantBlob(t, dir, shadow)

	r2 := mustOpen(t, dir)
	stats := r2.Recovery()
	if stats.Quarantined != 4 || stats.Loaded != 1 {
		t.Fatalf("Recovery() = %+v, want Quarantined=4 Loaded=1", stats)
	}
	if _, err := r2.Get("good"); err != nil {
		t.Errorf("healthy platform lost during quarantine sweep: %v", err)
	}
	if _, err := r2.Get("evil"); !errors.Is(err, ErrNotFound) {
		t.Errorf("invalid platform served: %v", err)
	}
	if e, err := r2.Get(builtinID); err != nil || !e.Builtin || e.Version != 1 {
		t.Errorf("builtin shadowed: %+v, %v", e, err)
	}
	// Every quarantined blob has a reason file beside it.
	qdir := filepath.Join(dir, "quarantine")
	entries, err := os.ReadDir(qdir)
	if err != nil {
		t.Fatal(err)
	}
	var blobs, reasons int
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".reason") {
			reasons++
			data, err := os.ReadFile(filepath.Join(qdir, e.Name()))
			if err != nil || len(bytes.TrimSpace(data)) == 0 {
				t.Errorf("%s: empty or unreadable reason (%v)", e.Name(), err)
			}
		} else {
			blobs++
		}
	}
	if blobs != 4 || reasons != 4 {
		t.Errorf("quarantine holds %d blobs / %d reasons, want 4 / 4", blobs, reasons)
	}
	if st := r2.Stats(); st.Quarantined != 4 {
		t.Errorf("Stats().Quarantined = %d, want 4", st.Quarantined)
	}
}

func sumOf(s string) []byte {
	sum := sha256.Sum256([]byte(s))
	return sum[:]
}

// TestReuploadStorm is the -race proof that no reader ever observes a
// mixed old/new platform: writers hammer re-uploads of one ID while
// readers continuously resolve it and check that every observed entry
// is internally consistent (ETag hashes the canonical bytes, canonical
// bytes decode to the served platform's sustained rate) and versions
// are monotonic per reader.
func TestReuploadStorm(t *testing.T) {
	r := mustOpen(t, t.TempDir())
	var evictions atomic.Uint64
	r.SetInvalidator(func(id string, oldV uint64) { evictions.Add(1) })
	if _, _, err := r.Put(testPlatform(t, "storm", 1)); err != nil {
		t.Fatal(err)
	}

	const writers, readers, rounds = 4, 4, 25
	contents := make([]*machine.Platform, writers)
	for i := range contents {
		contents[i] = testPlatform(t, "storm", float64(10*(i+1)))
	}
	var writerWG, readerWG sync.WaitGroup
	errc := make(chan error, writers+readers)
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for i := 0; i < rounds; i++ {
				if _, _, err := r.Put(contents[(w+i)%writers]); err != nil {
					errc <- err
					return
				}
			}
		}(w)
	}
	for g := 0; g < readers; g++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			var lastVersion uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				e, err := r.Get("storm")
				if err != nil {
					errc <- err
					return
				}
				if e.Version < lastVersion {
					errc <- fmt.Errorf("version went backwards: %d after %d", e.Version, lastVersion)
					return
				}
				lastVersion = e.Version
				if e.ETag != etagFor(e.Canonical) {
					errc <- errors.New("torn entry: ETag does not hash Canonical")
					return
				}
				p, err := machine.FromJSON(bytes.NewReader(e.Canonical))
				if err != nil {
					errc <- fmt.Errorf("torn entry: canonical bytes invalid: %w", err)
					return
				}
				if p.Sustained.SingleRate != e.Platform.Sustained.SingleRate {
					errc <- errors.New("torn entry: canonical bytes disagree with served platform")
					return
				}
			}
		}()
	}
	writerWG.Wait()
	close(stop)
	readerWG.Wait()
	close(errc)
	for err := range errc {
		if err != nil {
			t.Fatal(err)
		}
	}
	// Idempotent duplicates aside, every content change evicted.
	st := r.Stats()
	if st.Invalidations != evictions.Load() {
		t.Errorf("Stats().Invalidations=%d but hook ran %d times", st.Invalidations, evictions.Load())
	}
}

func TestRingDeterministicAndInRange(t *testing.T) {
	a, b := newRing(8), newRing(8)
	ids := []string{"intel-i7-3820", "gtx-titan", "dev-board", "a", "zz-top"}
	for _, id := range ids {
		sa, sb := a.shard(id), b.shard(id)
		if sa != sb {
			t.Errorf("%s: shard differs across identical rings (%d vs %d)", id, sa, sb)
		}
		if sa < 0 || sa >= 8 {
			t.Errorf("%s: shard %d out of range", id, sa)
		}
	}
	// All shards of a reasonably sized ring receive some keys.
	counts := make([]int, 8)
	for i := 0; i < 4096; i++ {
		counts[a.shard(fmt.Sprintf("key-%d", i))]++
	}
	for s, c := range counts {
		if c == 0 {
			t.Errorf("shard %d received no keys out of 4096", s)
		}
	}
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open("", 4); err == nil {
		t.Error("Open with empty dir should error")
	}
	// shards <= 0 falls back to the default.
	r := mustOpen(t, t.TempDir())
	if got := len(r.Stats().ShardPlatforms); got != 4 {
		t.Errorf("shard count = %d, want 4", got)
	}
	r2, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(r2.Stats().ShardPlatforms); got != DefaultShards {
		t.Errorf("default shard count = %d, want %d", got, DefaultShards)
	}
	// Occupancy sums to the builtin count on a fresh registry.
	var sum int
	for _, c := range r2.Stats().ShardPlatforms {
		sum += c
	}
	if sum != len(machine.All()) {
		t.Errorf("shard occupancy sums to %d, want %d", sum, len(machine.All()))
	}
}
