package registry

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// ringReplicas is the number of virtual nodes per shard. 64 points per
// shard keeps the assignment spread within a few percent of uniform
// for the shard counts this process runs (≤ 64) while the whole ring
// stays a few KiB.
const ringReplicas = 64

// ring is a consistent-hash ring mapping platform IDs to shards. The
// assignment depends only on (id, shard count), never on insertion
// order, so the same ID lands on the same shard across restarts — and
// when the shard count grows, only ~1/N of IDs move, the property that
// makes the in-process shards a stepping stone to true horizontal
// sharding (ROADMAP).
type ring struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash  uint64
	shard int
}

// hashKey is FNV-1a with a splitmix64-style finalizer. Raw FNV of
// short, near-identical strings ("shard-0/1", "shard-0/2", …) leaves
// the high bits — which dominate ring ordering — badly clustered; the
// multiply-xor-shift avalanche spreads them, which is what makes the
// per-shard load within a few percent of uniform.
func hashKey(key string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func newRing(shards int) *ring {
	r := &ring{points: make([]ringPoint, 0, shards*ringReplicas)}
	for s := 0; s < shards; s++ {
		for v := 0; v < ringReplicas; v++ {
			key := "shard-" + strconv.Itoa(s) + "/" + strconv.Itoa(v)
			r.points = append(r.points, ringPoint{hash: hashKey(key), shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.shard < b.shard // deterministic on the (unlikely) collision
	})
	return r
}

// shard returns the shard owning id: the first ring point clockwise
// from the id's hash, wrapping past the top.
func (r *ring) shard(id string) int {
	h := hashKey(id)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}
