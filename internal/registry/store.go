// Package registry persists user-uploaded platform definitions with
// crash-safe writes, verifies every blob's checksum on load, and serves
// them alongside the built-in Table I set behind a sharded, versioned
// in-memory index. The on-disk layout under the data directory is
//
//	blobs/<sha256-of-file-bytes>.json   committed envelopes
//	quarantine/<name>(.reason)          blobs that failed verification
//	tmp/                                in-flight writes (never committed)
//
// A blob is an envelope: format marker, platform ID, monotonic version,
// the SHA-256 of the canonical platform bytes (the ETag basis), and the
// canonical platform JSON itself — or a tombstone recording a deletion.
// The blob's own file name is the SHA-256 of the complete envelope
// bytes, so any torn or bit-flipped file is detectable without trusting
// its contents.
package registry

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// envelopeFormat is bumped only on incompatible schema changes; blobs
// with an unknown format are quarantined, never guessed at.
const envelopeFormat = 1

// ErrCrashed is returned by the write path when an injected crash point
// fires. The write is abandoned exactly as a real crash would leave it:
// whatever bytes already reached disk stay there for recovery to judge.
var ErrCrashed = errors.New("registry: injected crash")

// Crash-point names, in write-path order. A crashAt hook returning true
// for one of these abandons the commit at that instant.
const (
	crashTmpCreated = "tmp-created" // temp file exists, zero bytes written
	crashTmpPartial = "tmp-partial" // half the envelope written, no fsync
	crashTmpWritten = "tmp-written" // all bytes written, no fsync
	crashTmpSynced  = "tmp-synced"  // file fsynced, not yet renamed
	crashRenamed    = "renamed"     // renamed into blobs/, dir not fsynced
)

// envelope is the on-disk record. Platform holds the canonical JSON
// produced by machine.Canonical at upload time; SHA256 is the hex
// digest of exactly those bytes. Tombstones set Deleted and omit both.
type envelope struct {
	Format   int             `json:"format"`
	ID       string          `json:"id"`
	Version  uint64          `json:"version"`
	SHA256   string          `json:"sha256,omitempty"`
	Deleted  bool            `json:"deleted,omitempty"`
	Platform json.RawMessage `json:"platform,omitempty"`
}

// store owns the data directory. It knows nothing about sharding or
// builtins — it commits envelopes atomically and replays them.
type store struct {
	dir string

	// crashAt, when non-nil, is consulted at each named crash point;
	// returning true abandons the write with ErrCrashed. Test-only.
	crashAt func(step string) bool
}

func (s *store) blobsDir() string      { return filepath.Join(s.dir, "blobs") }
func (s *store) quarantineDir() string { return filepath.Join(s.dir, "quarantine") }
func (s *store) tmpDir() string        { return filepath.Join(s.dir, "tmp") }

func newStore(dir string) (*store, error) {
	s := &store{dir: dir}
	for _, d := range []string{dir, s.blobsDir(), s.quarantineDir(), s.tmpDir()} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("registry: creating %s: %w", d, err)
		}
	}
	return s, nil
}

func (s *store) crash(step string) bool {
	return s.crashAt != nil && s.crashAt(step)
}

// syncDir fsyncs a directory so a completed rename is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		_ = d.Close()
		return err
	}
	return d.Close()
}

// writeEnvelope commits env durably: marshal, stream to a temp file,
// fsync the file, rename it to its content-addressed name under blobs/,
// and fsync the directory. A crash (real or injected) at any point
// leaves either the complete committed blob or debris that recovery
// discards — never a half-visible entry.
func (s *store) writeEnvelope(env *envelope) (string, error) {
	data, err := json.Marshal(env)
	if err != nil {
		return "", fmt.Errorf("registry: encoding envelope: %w", err)
	}
	sum := sha256.Sum256(data)
	name := hex.EncodeToString(sum[:]) + ".json"
	tmpPath := filepath.Join(s.tmpDir(), name+".partial")

	f, err := os.OpenFile(tmpPath, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return "", fmt.Errorf("registry: creating temp blob: %w", err)
	}
	if s.crash(crashTmpCreated) {
		_ = f.Close()
		return "", ErrCrashed
	}
	half := len(data) / 2
	if _, err := f.Write(data[:half]); err != nil {
		_ = f.Close()
		return "", fmt.Errorf("registry: writing temp blob: %w", err)
	}
	if s.crash(crashTmpPartial) {
		_ = f.Close()
		return "", ErrCrashed
	}
	if _, err := f.Write(data[half:]); err != nil {
		_ = f.Close()
		return "", fmt.Errorf("registry: writing temp blob: %w", err)
	}
	if s.crash(crashTmpWritten) {
		_ = f.Close()
		return "", ErrCrashed
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return "", fmt.Errorf("registry: syncing temp blob: %w", err)
	}
	if err := f.Close(); err != nil {
		return "", fmt.Errorf("registry: closing temp blob: %w", err)
	}
	if s.crash(crashTmpSynced) {
		return "", ErrCrashed
	}
	if err := os.Rename(tmpPath, filepath.Join(s.blobsDir(), name)); err != nil {
		return "", fmt.Errorf("registry: committing blob: %w", err)
	}
	if s.crash(crashRenamed) {
		// The rename happened; whether it survives a real power cut
		// before the directory fsync is up to the filesystem. Recovery
		// accepts either outcome, so the injected crash models the
		// worst case: committed data, unsynced metadata.
		return "", ErrCrashed
	}
	if err := syncDir(s.blobsDir()); err != nil {
		return "", fmt.Errorf("registry: syncing blob dir: %w", err)
	}
	return name, nil
}

// remove deletes a superseded blob. Best-effort by contract: a stale
// blob left behind is re-pruned on the next recovery scan.
func (s *store) remove(name string) error {
	if err := os.Remove(filepath.Join(s.blobsDir(), name)); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

// quarantine moves a blob out of blobs/ and records why. The move uses
// rename so the evidence is preserved byte-for-byte for post-mortems.
func (s *store) quarantine(name, reason string) error {
	dst := filepath.Join(s.quarantineDir(), name)
	if err := os.Rename(filepath.Join(s.blobsDir(), name), dst); err != nil {
		return fmt.Errorf("registry: quarantining %s: %w", name, err)
	}
	if err := os.WriteFile(dst+".reason", []byte(reason+"\n"), 0o644); err != nil {
		return fmt.Errorf("registry: writing quarantine reason for %s: %w", name, err)
	}
	return nil
}

// recoveredBlob is one verified envelope from the startup scan.
type recoveredBlob struct {
	name string
	env  envelope
}

// RecoveryStats summarizes the startup scan.
type RecoveryStats struct {
	Loaded      int // verified envelopes adopted into the index
	Tombstones  int // deletions replayed (their version floor is kept)
	Quarantined int // corrupt or inadmissible blobs moved aside
	Pruned      int // superseded blobs deleted
	TmpCleaned  int // abandoned in-flight temp files removed
}

// isBlobName reports whether name looks like a committed blob:
// 64 hex characters plus ".json".
func isBlobName(name string) bool {
	const hexLen = sha256.Size * 2
	if len(name) != hexLen+len(".json") || !strings.HasSuffix(name, ".json") {
		return false
	}
	for i := 0; i < hexLen; i++ {
		c := name[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// verifyBlob checks one file end to end and returns the reason it is
// inadmissible, or "" if it verifies. validate is the caller's semantic
// check on the decoded envelope (platform parses, ID admissible, …).
func verifyBlob(name string, data []byte, env *envelope, validate func(*envelope) string) string {
	sum := sha256.Sum256(data)
	if hex.EncodeToString(sum[:])+".json" != name {
		return "content hash does not match blob name (truncated or corrupted)"
	}
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(env); err != nil {
		return "envelope does not parse: " + err.Error()
	}
	if dec.More() {
		return "trailing data after envelope"
	}
	if env.Format != envelopeFormat {
		return fmt.Sprintf("unsupported envelope format %d", env.Format)
	}
	if env.Version == 0 {
		return "envelope version must be >= 1"
	}
	if env.Deleted {
		if len(env.Platform) != 0 || env.SHA256 != "" {
			return "tombstone carries platform data"
		}
	} else {
		psum := sha256.Sum256(env.Platform)
		if hex.EncodeToString(psum[:]) != env.SHA256 {
			return "platform bytes do not match recorded sha256"
		}
	}
	return validate(env)
}

// recoverScan replays the data directory: abandoned temp files are
// removed, every blob is re-verified (name hash, envelope schema, inner
// platform hash, caller validation), failures are quarantined with a
// reason file, and the survivors are returned in deterministic name
// order for the registry to index.
func (s *store) recoverScan(validate func(*envelope) string) ([]recoveredBlob, RecoveryStats, error) {
	var stats RecoveryStats

	tmps, err := os.ReadDir(s.tmpDir())
	if err != nil {
		return nil, stats, fmt.Errorf("registry: scanning tmp dir: %w", err)
	}
	for _, e := range tmps {
		if err := os.Remove(filepath.Join(s.tmpDir(), e.Name())); err != nil {
			return nil, stats, fmt.Errorf("registry: removing abandoned temp file: %w", err)
		}
		stats.TmpCleaned++
	}

	entries, err := os.ReadDir(s.blobsDir())
	if err != nil {
		return nil, stats, fmt.Errorf("registry: scanning blob dir: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)

	var out []recoveredBlob
	for _, name := range names {
		if !isBlobName(name) {
			if err := s.quarantine(name, "unrecognized blob name"); err != nil {
				return nil, stats, err
			}
			stats.Quarantined++
			continue
		}
		data, err := os.ReadFile(filepath.Join(s.blobsDir(), name))
		if err != nil {
			return nil, stats, fmt.Errorf("registry: reading blob %s: %w", name, err)
		}
		var env envelope
		if reason := verifyBlob(name, data, &env, validate); reason != "" {
			if err := s.quarantine(name, reason); err != nil {
				return nil, stats, err
			}
			stats.Quarantined++
			continue
		}
		out = append(out, recoveredBlob{name: name, env: env})
	}
	return out, stats, nil
}
