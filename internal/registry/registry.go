package registry

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"archline/internal/machine"
)

// Sentinel errors for the API surface. The server maps them to
// 404/409/503 respectively.
var (
	ErrNotFound = errors.New("registry: platform not found")
	ErrReadOnly = errors.New("registry: built-in platforms are read-only")
	ErrNoData   = errors.New("registry: no data directory configured; uploads are disabled")
)

// DefaultShards is the shard count when the caller passes 0.
const DefaultShards = 8

// Entry is one resolvable platform. Entries are immutable once
// published: a re-upload installs a new Entry at a higher version, so a
// reader that resolved an Entry keeps a consistent (platform, version,
// etag) triple for its whole request even while an upload races it.
type Entry struct {
	ID      string
	Version uint64
	// ETag is the strong validator: the quoted SHA-256 hex of the
	// canonical platform bytes. Identical content → identical ETag,
	// whatever formatting the uploader used.
	ETag    string
	Builtin bool
	// Platform must be treated as read-only by callers.
	Platform *machine.Platform
	// Canonical is the platform's canonical JSON — the exact bytes the
	// ETag hashes and GET /v1/platforms/{id} serves.
	Canonical []byte
}

// CacheKey is the version-carrying cache-key fragment for responses
// computed against this entry. Because the version is part of the key,
// a response cached against version N is structurally unreachable once
// version N+1 exists — correctness does not depend on eviction racing
// ahead of the next read.
func (e *Entry) CacheKey() string {
	return "id:" + e.ID + "@v" + strconv.FormatUint(e.Version, 10)
}

// PutOutcome says what a Put did.
type PutOutcome int

const (
	PutCreated   PutOutcome = iota // new ID
	PutUpdated                     // existing ID, new content, version bumped
	PutUnchanged                   // byte-identical content, no new version
)

func (o PutOutcome) String() string {
	switch o {
	case PutCreated:
		return "created"
	case PutUpdated:
		return "updated"
	case PutUnchanged:
		return "unchanged"
	}
	return "unknown"
}

// Stats is a point-in-time snapshot for the metrics probe.
type Stats struct {
	Uploads       uint64 // durable Put commits since open
	Invalidations uint64 // version bumps that evicted cached responses
	Quarantined   uint64 // blobs quarantined by the recovery scan
	Generation    uint64 // bumped on any membership or content change
	// ShardPlatforms is the live-entry count per shard (builtins
	// included): the occupancy gauge.
	ShardPlatforms []int
}

// shard is one lock domain of the index.
type shard struct {
	mu sync.RWMutex
	// entries holds live platforms (builtin + user). Tombstoned IDs are
	// absent here but keep their floor in versions.
	entries map[string]*Entry
	// versions is the monotonic floor per ID: the highest version ever
	// committed, surviving deletes, so a re-created platform can never
	// reuse a version a cached response was keyed under.
	versions map[string]uint64
	// blobs maps ID → current on-disk blob name (user entries and
	// tombstones; builtins have no blob).
	blobs map[string]string
}

// Registry is the sharded, versioned platform index over the crash-safe
// store. Built-in Table I platforms appear as read-only entries so
// every endpoint resolves platforms through one path.
type Registry struct {
	store    *store
	ring     *ring
	shards   []*shard
	builtins map[string]bool
	recovery RecoveryStats

	// inval is called under the owning shard's write lock whenever an
	// ID's published version stops being current (re-upload or delete),
	// so no new cache entry for the old version can be admitted after
	// the eviction ran.
	inval func(id string, oldVersion uint64)

	uploads       atomic.Uint64
	invalidations atomic.Uint64
	generation    atomic.Uint64
}

// Open loads the registry from dir, creating the layout on first run.
// The recovery scan verifies every blob, quarantines what fails, prunes
// superseded versions, and seeds the index; built-in platforms are
// installed as read-only version-1 entries. shards <= 0 selects
// DefaultShards.
func Open(dir string, shards int) (*Registry, error) {
	if dir == "" {
		return nil, errors.New("registry: data directory required")
	}
	st, err := newStore(dir)
	if err != nil {
		return nil, err
	}
	r, err := newRegistry(st, shards)
	if err != nil {
		return nil, err
	}
	if err := r.replay(); err != nil {
		return nil, err
	}
	return r, nil
}

// OpenMemory builds a registry with no backing store: the built-in
// platforms resolve normally, but Put and Delete fail with ErrNoData.
// It backs a daemon started without -data-dir, which still routes every
// platform lookup through the registry.
func OpenMemory(shards int) (*Registry, error) {
	return newRegistry(nil, shards)
}

func newRegistry(st *store, shards int) (*Registry, error) {
	if shards <= 0 {
		shards = DefaultShards
	}
	r := &Registry{
		store:    st,
		ring:     newRing(shards),
		shards:   make([]*shard, shards),
		builtins: make(map[string]bool),
	}
	for i := range r.shards {
		r.shards[i] = &shard{
			entries:  make(map[string]*Entry),
			versions: make(map[string]uint64),
			blobs:    make(map[string]string),
		}
	}
	for _, p := range machine.All() {
		canon, err := machine.Canonical(p)
		if err != nil {
			return nil, fmt.Errorf("registry: canonicalizing built-in %s: %w", p.ID, err)
		}
		id := string(p.ID)
		r.builtins[id] = true
		sh := r.shardFor(id)
		sh.entries[id] = &Entry{
			ID:        id,
			Version:   1,
			ETag:      etagFor(canon),
			Builtin:   true,
			Platform:  p,
			Canonical: canon,
		}
		sh.versions[id] = 1
	}
	return r, nil
}

// replay runs the store's recovery scan and installs the winners.
func (r *Registry) replay() error {
	blobs, stats, err := r.store.recoverScan(r.admissible)
	if err != nil {
		return err
	}
	// Group by ID; highest version wins. The scan returns blobs in
	// name order, so ties (same version committed twice, which a crash
	// between rename and prune can leave) resolve deterministically to
	// the lexically-last blob.
	byID := make(map[string][]recoveredBlob)
	ids := make([]string, 0, len(blobs))
	for _, b := range blobs {
		if _, seen := byID[b.env.ID]; !seen {
			ids = append(ids, b.env.ID)
		}
		byID[b.env.ID] = append(byID[b.env.ID], b)
	}
	sort.Strings(ids)
	for _, id := range ids {
		group := byID[id]
		winner := group[0]
		for _, b := range group[1:] {
			if b.env.Version >= winner.env.Version {
				winner = b
			}
		}
		for _, b := range group {
			if b.name == winner.name {
				continue
			}
			if err := r.store.remove(b.name); err != nil {
				return fmt.Errorf("registry: pruning superseded blob: %w", err)
			}
			stats.Pruned++
		}
		sh := r.shardFor(id)
		sh.versions[id] = winner.env.Version
		sh.blobs[id] = winner.name
		if winner.env.Deleted {
			stats.Tombstones++
			continue
		}
		p, err := machine.FromJSON(bytes.NewReader(winner.env.Platform))
		if err != nil {
			// admissible already decoded this envelope successfully;
			// reaching here means the two paths disagree, which is a
			// bug worth failing loudly over, not quarantining.
			return fmt.Errorf("registry: verified blob failed decode: %w", err)
		}
		sh.entries[id] = &Entry{
			ID:        id,
			Version:   winner.env.Version,
			ETag:      `"` + winner.env.SHA256 + `"`,
			Platform:  p,
			Canonical: winner.env.Platform,
		}
		stats.Loaded++
	}
	r.recovery = stats
	return nil
}

// admissible is the semantic half of blob verification: the envelope's
// platform must decode under the strict validator, agree with the
// envelope's ID, and not shadow a built-in.
func (r *Registry) admissible(env *envelope) string {
	if !machine.ValidID(env.ID) {
		return "inadmissible platform id"
	}
	if r.builtins[env.ID] {
		return "shadows a built-in platform"
	}
	if env.Deleted {
		return ""
	}
	p, err := machine.FromJSON(bytes.NewReader(env.Platform))
	if err != nil {
		return "platform fails strict validation: " + err.Error()
	}
	if string(p.ID) != env.ID {
		return "platform id disagrees with envelope id"
	}
	return ""
}

func etagFor(canonical []byte) string {
	sum := sha256.Sum256(canonical)
	return `"` + hex.EncodeToString(sum[:]) + `"`
}

func (r *Registry) shardFor(id string) *shard {
	return r.shards[r.ring.shard(id)]
}

// SetInvalidator installs the cache-eviction hook. It runs under the
// owning shard's write lock on every version bump (re-upload, delete)
// with the ID and the version being retired. Install it before serving.
func (r *Registry) SetInvalidator(fn func(id string, oldVersion uint64)) {
	r.inval = fn
}

// Recovery returns the startup scan's summary.
func (r *Registry) Recovery() RecoveryStats { return r.recovery }

// Generation increments on every membership or content change; listing
// caches key on it so they refresh without explicit eviction.
func (r *Registry) Generation() uint64 { return r.generation.Load() }

// Get resolves a live platform by ID.
func (r *Registry) Get(id string) (*Entry, error) {
	sh := r.shardFor(id)
	sh.mu.RLock()
	e := sh.entries[id]
	sh.mu.RUnlock()
	if e == nil {
		return nil, ErrNotFound
	}
	return e, nil
}

// List returns every live entry (builtins and uploads) sorted by ID.
func (r *Registry) List() []*Entry {
	var ids []string
	for _, sh := range r.shards {
		sh.mu.RLock()
		for id := range sh.entries {
			ids = append(ids, id)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(ids)
	out := make([]*Entry, 0, len(ids))
	for _, id := range ids {
		// Re-resolved per ID: an entry swapped since the key snapshot is
		// served at its newest version; one deleted meanwhile is skipped.
		if e, err := r.Get(id); err == nil {
			out = append(out, e)
		}
	}
	return out
}

// Put durably installs p, already validated by machine.FromJSON. A new
// ID is created at the floor version + 1; an existing ID with different
// content is updated (version bump + invalidation); byte-identical
// content is a no-op returning the current entry — re-uploading the
// same file is idempotent and keeps caches warm.
func (r *Registry) Put(p *machine.Platform) (*Entry, PutOutcome, error) {
	id := string(p.ID)
	if r.builtins[id] {
		return nil, 0, ErrReadOnly
	}
	if r.store == nil {
		return nil, 0, ErrNoData
	}
	canon, err := machine.Canonical(p)
	if err != nil {
		return nil, 0, fmt.Errorf("registry: canonicalizing %s: %w", id, err)
	}
	etag := etagFor(canon)

	sh := r.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()

	cur := sh.entries[id]
	if cur != nil && cur.ETag == etag {
		return cur, PutUnchanged, nil
	}
	version := sh.versions[id] + 1
	sum := sha256.Sum256(canon)
	name, err := r.store.writeEnvelope(&envelope{
		Format:   envelopeFormat,
		ID:       id,
		Version:  version,
		SHA256:   hex.EncodeToString(sum[:]),
		Platform: canon,
	})
	if err != nil {
		return nil, 0, err
	}
	if old := sh.blobs[id]; old != "" {
		// Best-effort: a leftover superseded blob is pruned by the
		// next recovery scan.
		_ = r.store.remove(old)
	}
	sh.blobs[id] = name
	sh.versions[id] = version
	e := &Entry{
		ID:        id,
		Version:   version,
		ETag:      etag,
		Platform:  p,
		Canonical: canon,
	}
	sh.entries[id] = e
	r.uploads.Add(1)
	r.generation.Add(1)
	outcome := PutCreated
	if cur != nil {
		outcome = PutUpdated
		// Under the shard lock: no resolver can observe the new
		// version until the old version's cached responses are gone.
		if r.inval != nil {
			r.inval(id, cur.Version)
		}
		r.invalidations.Add(1)
	}
	return e, outcome, nil
}

// Delete tombstones an uploaded platform. The tombstone is committed
// through the same crash-safe path as uploads and preserves the version
// floor, so a later re-creation starts above every version a cache has
// ever seen.
func (r *Registry) Delete(id string) error {
	if r.builtins[id] {
		return ErrReadOnly
	}
	sh := r.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()

	cur := sh.entries[id]
	if cur == nil {
		// Checked before the no-store case: an ID nobody ever uploaded is
		// "not found" whether or not durable storage is configured.
		return ErrNotFound
	}
	if r.store == nil {
		return ErrNoData
	}
	version := sh.versions[id] + 1
	name, err := r.store.writeEnvelope(&envelope{
		Format:  envelopeFormat,
		ID:      id,
		Version: version,
		Deleted: true,
	})
	if err != nil {
		return err
	}
	if old := sh.blobs[id]; old != "" {
		_ = r.store.remove(old)
	}
	sh.blobs[id] = name
	sh.versions[id] = version
	delete(sh.entries, id)
	r.generation.Add(1)
	if r.inval != nil {
		r.inval(id, cur.Version)
	}
	r.invalidations.Add(1)
	return nil
}

// Stats snapshots the registry for the metrics probe.
func (r *Registry) Stats() Stats {
	s := Stats{
		Uploads:        r.uploads.Load(),
		Invalidations:  r.invalidations.Load(),
		Quarantined:    uint64(r.recovery.Quarantined),
		Generation:     r.generation.Load(),
		ShardPlatforms: make([]int, len(r.shards)),
	}
	for i, sh := range r.shards {
		sh.mu.RLock()
		s.ShardPlatforms[i] = len(sh.entries)
		sh.mu.RUnlock()
	}
	return s
}
