// Package microbench assembles and runs the paper's microbenchmark suite
// (section IV) against the simulated platforms.
//
// The suite has three families, mirroring the paper's:
//
//   - the intensity microbenchmark, which "varies intensity nearly
//     continuously, by varying the number of floating point operations on
//     each word of data loaded from main memory", in single and (where
//     supported) double precision;
//   - the cache microbenchmarks, which size the working set to fit a
//     target level of the memory hierarchy;
//   - the random-access microbenchmark, which chases pointers through a
//     working set far larger than any cache.
//
// Each kernel's pass count is tuned so a run lasts long enough for the
// 1024 Hz power meter to integrate cleanly — the simulated analogue of
// the paper's hand-tuned unrolled loops running for measurable durations.
package microbench

import (
	"fmt"
	"math"

	"archline/internal/machine"
	"archline/internal/model"
	"archline/internal/pool"
	"archline/internal/sim"
	"archline/internal/units"
)

// Config tunes suite construction.
type Config struct {
	// SweepPoints is the number of intensity-sweep kernels (log-spaced
	// flops-per-word). Default 25.
	SweepPoints int
	// MinFPW and MaxFPW bound the flops-per-word sweep. Defaults 0.5 and
	// 2048 (I from 1/8 to 512 flop:Byte in single precision).
	MinFPW, MaxFPW float64
	// TargetRunTime is the wall time each kernel should occupy so the
	// power meter sees enough samples. Default 0.25 s.
	TargetRunTime units.Time
	// DRAMWorkingSet is the streaming working set. Default 64 MiB.
	DRAMWorkingSet units.Bytes
	// IncludeDouble adds a double-precision sweep on capable platforms.
	IncludeDouble bool
	// IncludeCache adds per-cache-level kernels.
	IncludeCache bool
	// IncludeChase adds the random-access kernel.
	IncludeChase bool
	// Workers bounds the kernel-level fan-out of Run: how many kernels
	// are measured concurrently on this platform. Zero means NumCPU;
	// the count is clamped by pool.Clamp, the same policy the
	// platform-level fan-out in internal/experiments uses. Every noise
	// stream keys on (platform, kernel), so Run's output is
	// bit-identical at any worker count — workers only buy wall clock.
	Workers int
}

// DefaultConfig is the full suite as the paper ran it.
func DefaultConfig() Config {
	return Config{
		SweepPoints:    25,
		MinFPW:         0.5,
		MaxFPW:         2048,
		TargetRunTime:  0.25,
		DRAMWorkingSet: units.MiB(64),
		IncludeDouble:  true,
		IncludeCache:   true,
		IncludeChase:   true,
	}
}

// cacheFPWs are the flops-per-word points used inside each cache level:
// enough spread to separate the level's tau and eps in the fit.
var cacheFPWs = []float64{0, 1, 4, 16}

// BuildSuite constructs the kernel list for a platform.
func BuildSuite(plat *machine.Platform, cfg Config) ([]sim.Kernel, error) {
	if cfg.SweepPoints < 2 {
		return nil, fmt.Errorf("microbench: need at least 2 sweep points, got %d", cfg.SweepPoints)
	}
	if cfg.MinFPW <= 0 || cfg.MaxFPW <= cfg.MinFPW {
		return nil, fmt.Errorf("microbench: bad flops-per-word range [%v, %v]", cfg.MinFPW, cfg.MaxFPW)
	}
	if cfg.TargetRunTime <= 0 || cfg.DRAMWorkingSet <= 0 {
		return nil, fmt.Errorf("microbench: target run time and working set must be positive")
	}
	var kernels []sim.Kernel

	// Intensity sweep from DRAM.
	for i := 0; i < cfg.SweepPoints; i++ {
		frac := float64(i) / float64(cfg.SweepPoints-1)
		fpw := math.Exp(math.Log(cfg.MinFPW) + frac*(math.Log(cfg.MaxFPW)-math.Log(cfg.MinFPW)))
		kernels = append(kernels, tuned(plat, sim.Kernel{
			Name:         fmt.Sprintf("sweep-sp-%02d", i),
			Precision:    sim.Single,
			Pattern:      sim.StreamPattern,
			FlopsPerWord: fpw,
			WorkingSet:   cfg.DRAMWorkingSet,
		}, cfg.TargetRunTime))
		if cfg.IncludeDouble && plat.SupportsDouble() {
			kernels = append(kernels, tuned(plat, sim.Kernel{
				Name:         fmt.Sprintf("sweep-dp-%02d", i),
				Precision:    sim.Double,
				Pattern:      sim.StreamPattern,
				FlopsPerWord: fpw,
				WorkingSet:   cfg.DRAMWorkingSet,
			}, cfg.TargetRunTime))
		}
	}

	if cfg.IncludeCache {
		if plat.L1 != nil {
			for j, fpw := range cacheFPWs {
				kernels = append(kernels, tuned(plat, sim.Kernel{
					Name:         fmt.Sprintf("l1-%d", j),
					Precision:    sim.Single,
					Pattern:      sim.StreamPattern,
					FlopsPerWord: fpw,
					WorkingSet:   units.Bytes(plat.L1Size.Count() / 2),
				}, cfg.TargetRunTime))
			}
		}
		if plat.L2 != nil {
			for j, fpw := range cacheFPWs {
				kernels = append(kernels, tuned(plat, sim.Kernel{
					Name:         fmt.Sprintf("l2-%d", j),
					Precision:    sim.Single,
					Pattern:      sim.StreamPattern,
					FlopsPerWord: fpw,
					// Halfway between L1 and L2 capacity: resident in L2,
					// too large for L1.
					WorkingSet: units.Bytes((plat.L1Size.Count() + plat.L2Size.Count()) / 2),
				}, cfg.TargetRunTime))
			}
		}
	}

	if cfg.IncludeChase && plat.Rand != nil {
		kernels = append(kernels, tuned(plat, sim.Kernel{
			Name:       "chase",
			Precision:  sim.Single,
			Pattern:    sim.ChasePattern,
			WorkingSet: units.MiB(256),
		}, cfg.TargetRunTime))
	}
	return kernels, nil
}

// tuned sets the kernel's pass count so its predicted duration is close
// to the target, using the platform's known throughputs the way a
// benchmark author calibrates iteration counts.
func tuned(plat *machine.Platform, k sim.Kernel, target units.Time) sim.Kernel {
	var perPass float64
	if k.Pattern == sim.ChasePattern {
		if plat.Rand != nil && plat.Rand.Rate > 0 {
			accesses := k.WorkingSet.Count() / plat.Rand.Line.Count()
			perPass = accesses / float64(plat.Rand.Rate)
		}
	} else {
		p := plat.Single
		words := k.WorkingSet.Count() / k.Precision.Bytes().Count()
		tFlop := k.FlopsPerWord * words * float64(p.TauFlop)
		// Use the fastest plausible memory path (L1) for the bound so
		// cache-resident kernels do not under-run.
		tau := float64(p.TauMem)
		if plat.L1 != nil && float64(plat.L1.Tau) < tau {
			tau = float64(plat.L1.Tau)
		}
		tMem := k.WorkingSet.Count() * tau
		perPass = math.Max(tFlop, tMem)
	}
	passes := 1
	if perPass > 0 {
		passes = int(math.Ceil(target.Seconds() / perPass))
	}
	if passes < 1 {
		passes = 1
	}
	k.Passes = passes
	return k
}

// Result is the outcome of running the suite on one platform.
type Result struct {
	Platform     *machine.Platform
	Measurements []sim.Measurement
	IdlePower    units.Power
}

// Run builds and executes the suite, returning all measurements. The
// kernels are measured concurrently under a bounded worker pool
// (Config.Workers; zero means NumCPU). Measurements land in suite
// order and every noise stream keys on (platform, kernel), so the
// Result is bit-identical at any worker count; combined with the
// platform-level fan-out in internal/experiments this gives the
// 12-platform drivers two-level parallelism.
func Run(plat *machine.Platform, cfg Config, opts sim.Options) (*Result, error) {
	kernels, err := BuildSuite(plat, cfg)
	if err != nil {
		return nil, err
	}
	// The simulator is safe for concurrent Measure calls: its platform
	// and meter are read-only and the fault injector locks its own
	// label-keyed state.
	s := sim.New(plat, opts)
	measurements, errs := pool.Map(kernels, cfg.Workers,
		func(_ int, k sim.Kernel) (sim.Measurement, error) {
			return s.Measure(k)
		})
	if i, err := pool.FirstError(errs); err != nil {
		return nil, fmt.Errorf("microbench: %s on %s: %w", kernels[i].Name, plat.Name, err)
	}
	res := &Result{Platform: plat, Measurements: measurements}
	idle, err := s.MeasureIdle(1)
	if err != nil {
		return nil, err
	}
	res.IdlePower = idle
	return res, nil
}

// filter returns the measurements satisfying keep, preallocated by a
// counted first pass so the hot fitting paths cost exactly one
// allocation instead of append's repeated regrowth.
func (r *Result) filter(keep func(*sim.Measurement) bool) []sim.Measurement {
	n := 0
	for i := range r.Measurements {
		if keep(&r.Measurements[i]) {
			n++
		}
	}
	if n == 0 {
		return nil
	}
	out := make([]sim.Measurement, 0, n)
	for i := range r.Measurements {
		if keep(&r.Measurements[i]) {
			out = append(out, r.Measurements[i])
		}
	}
	return out
}

// Sweep returns the DRAM intensity-sweep measurements of one precision,
// in ascending intensity order (the suite builds them that way).
func (r *Result) Sweep(prec sim.Precision) []sim.Measurement {
	return r.filter(func(m *sim.Measurement) bool {
		return m.Pattern == sim.StreamPattern && m.Level == model.LevelDRAM && m.Precision == prec
	})
}

// ByLevel returns the cache measurements for a level.
func (r *Result) ByLevel(level model.MemLevel) []sim.Measurement {
	return r.filter(func(m *sim.Measurement) bool {
		return m.Level == level && m.Pattern == sim.StreamPattern
	})
}

// Chase returns the random-access measurements.
func (r *Result) Chase() []sim.Measurement {
	return r.filter(func(m *sim.Measurement) bool {
		return m.Pattern == sim.ChasePattern
	})
}
