package microbench

import (
	"math"
	"testing"

	"archline/internal/machine"
	"archline/internal/model"
	"archline/internal/sim"
	"archline/internal/units"
)

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.SweepPoints != 25 || !cfg.IncludeDouble || !cfg.IncludeCache || !cfg.IncludeChase {
		t.Error("unexpected defaults")
	}
}

func TestBuildSuiteTitan(t *testing.T) {
	plat := machine.MustByID(machine.GTXTitan)
	kernels, err := BuildSuite(plat, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// 25 SP + 25 DP sweep + 4 L1 + 4 L2 + 1 chase = 59.
	if len(kernels) != 59 {
		t.Fatalf("Titan suite has %d kernels, want 59", len(kernels))
	}
	for _, k := range kernels {
		if err := k.Validate(); err != nil {
			t.Errorf("kernel %s invalid: %v", k.Name, err)
		}
		if k.Passes < 1 {
			t.Errorf("kernel %s untuned", k.Name)
		}
	}
}

func TestBuildSuiteSkipsUnsupported(t *testing.T) {
	// NUC GPU: no double, no cache data, no chase data.
	plat := machine.MustByID(machine.NUCGPU)
	kernels, err := BuildSuite(plat, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(kernels) != 25 {
		t.Fatalf("NUC GPU suite has %d kernels, want 25 (SP sweep only)", len(kernels))
	}
	for _, k := range kernels {
		if k.Precision == sim.Double {
			t.Error("NUC GPU suite must not contain double kernels")
		}
		if k.Pattern == sim.ChasePattern {
			t.Error("NUC GPU suite must not contain chase kernels")
		}
	}
	// Scratchpad-only platform: L1 kernels but no L2.
	mali := machine.MustByID(machine.ArndaleGPU)
	kernels, _ = BuildSuite(mali, DefaultConfig())
	hasL1, hasL2 := false, false
	for _, k := range kernels {
		switch {
		case len(k.Name) >= 2 && k.Name[:2] == "l1":
			hasL1 = true
		case len(k.Name) >= 2 && k.Name[:2] == "l2":
			hasL2 = true
		}
	}
	if !hasL1 || hasL2 {
		t.Errorf("Mali suite: hasL1=%v hasL2=%v, want L1 only", hasL1, hasL2)
	}
}

func TestBuildSuiteConfigErrors(t *testing.T) {
	plat := machine.MustByID(machine.GTXTitan)
	bad := DefaultConfig()
	bad.SweepPoints = 1
	if _, err := BuildSuite(plat, bad); err == nil {
		t.Error("1 sweep point should error")
	}
	bad = DefaultConfig()
	bad.MinFPW = 0
	if _, err := BuildSuite(plat, bad); err == nil {
		t.Error("zero min fpw should error")
	}
	bad = DefaultConfig()
	bad.MaxFPW = bad.MinFPW
	if _, err := BuildSuite(plat, bad); err == nil {
		t.Error("empty fpw range should error")
	}
	bad = DefaultConfig()
	bad.TargetRunTime = 0
	if _, err := BuildSuite(plat, bad); err == nil {
		t.Error("zero target time should error")
	}
}

func TestSweepCoversIntensityRange(t *testing.T) {
	plat := machine.MustByID(machine.GTXTitan)
	kernels, _ := BuildSuite(plat, DefaultConfig())
	minI, maxI := math.Inf(1), 0.0
	for _, k := range kernels {
		if k.Pattern != sim.StreamPattern || k.Precision != sim.Single || k.WorkingSet < units.MiB(1) {
			continue
		}
		i := float64(k.Intensity())
		minI = math.Min(minI, i)
		maxI = math.Max(maxI, i)
	}
	if minI > 0.125+1e-9 || maxI < 512-1e-6 {
		t.Errorf("sweep covers [%v, %v], want [1/8, 512]", minI, maxI)
	}
}

func TestTunedRunTimes(t *testing.T) {
	// Tuned kernels should run near the target duration in simulation.
	plat := machine.MustByID(machine.DesktopCPU)
	cfg := DefaultConfig()
	s := sim.New(plat, sim.Options{Seed: 1, Noiseless: true})
	kernels, _ := BuildSuite(plat, cfg)
	for _, k := range kernels {
		res, err := s.Run(k)
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		d := float64(res.TrueTime)
		if d < 0.2*float64(cfg.TargetRunTime) || d > 40*float64(cfg.TargetRunTime) {
			t.Errorf("%s runs %vs, target %vs", k.Name, d, cfg.TargetRunTime)
		}
	}
}

func TestRunSuiteAndFilters(t *testing.T) {
	plat := machine.MustByID(machine.GTXTitan)
	res, err := Run(plat, DefaultConfig(), sim.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Measurements) != 59 {
		t.Fatalf("got %d measurements", len(res.Measurements))
	}
	if res.IdlePower <= 0 {
		t.Error("idle power should be measured")
	}

	sp := res.Sweep(sim.Single)
	if len(sp) != 25 {
		t.Errorf("SP sweep has %d points", len(sp))
	}
	// Ascending intensity.
	for i := 1; i < len(sp); i++ {
		if sp[i].Intensity <= sp[i-1].Intensity {
			t.Error("sweep should ascend in intensity")
		}
	}
	dp := res.Sweep(sim.Double)
	if len(dp) != 25 {
		t.Errorf("DP sweep has %d points", len(dp))
	}
	if len(res.ByLevel(model.LevelL1)) != 4 || len(res.ByLevel(model.LevelL2)) != 4 {
		t.Error("cache measurements missing")
	}
	ch := res.Chase()
	if len(ch) != 1 || ch[0].Level != model.LevelRand {
		t.Error("chase measurement missing")
	}
}

func TestRunPropagatesBuildErrors(t *testing.T) {
	plat := machine.MustByID(machine.GTXTitan)
	bad := DefaultConfig()
	bad.SweepPoints = 0
	if _, err := Run(plat, bad, sim.Options{}); err == nil {
		t.Error("bad config should propagate")
	}
}

func TestSuiteMeasurementsMatchModelNoiselessly(t *testing.T) {
	// End-to-end sanity: noiseless suite measurements on a quirk-free
	// platform match the capped model's closed forms.
	plat := machine.MustByID(machine.XeonPhi)
	res, err := Run(plat, DefaultConfig(), sim.Options{Seed: 1, Noiseless: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range res.Sweep(sim.Single) {
		wantP := float64(plat.Single.AvgPowerAt(m.Intensity))
		if math.Abs(float64(m.AvgPower)-wantP) > 1e-3*wantP {
			t.Errorf("I=%v: power %v, model %v", m.Intensity, m.AvgPower, wantP)
		}
		wantT := float64(plat.Single.Time(m.W, m.Q))
		if math.Abs(float64(m.Time)-wantT) > 1e-6*wantT {
			t.Errorf("I=%v: time %v, model %v", m.Intensity, m.Time, wantT)
		}
	}
}
