package microbench

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"archline/internal/faults"
	"archline/internal/machine"
	"archline/internal/model"
	"archline/internal/sim"
)

// marshalResult canonicalizes a Result for byte comparison: the
// measurements and idle power are everything Run computes (the Platform
// pointer is shared input, not output).
func marshalResult(t *testing.T, r *Result) []byte {
	t.Helper()
	b, err := json.Marshal(struct {
		Measurements []sim.Measurement
		IdlePower    float64
	}{r.Measurements, r.IdlePower.Watts()})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestRunDeterministicAcrossWorkers is the scheduling-independence
// contract of the kernel-level pool: the same platform and seed must
// produce byte-identical marshalled Results at any worker count.
// Run under -race this also exercises the concurrent Measure path.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	plat := machine.MustByID(machine.GTXTitan)
	opts := sim.Options{Seed: 42}
	base := DefaultConfig()
	base.SweepPoints = 8

	cfg := base
	cfg.Workers = 1
	ref, err := Run(plat, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := marshalResult(t, ref)

	for _, workers := range []int{2, 8, 0} {
		cfg := base
		cfg.Workers = workers
		res, err := Run(plat, cfg, opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := marshalResult(t, res); string(got) != string(want) {
			t.Fatalf("workers=%d produced a different Result than workers=1", workers)
		}
	}
}

// TestRunParallelPreservesSuiteOrder pins the order-stability half of
// the contract separately: measurement k must describe kernel k of the
// built suite, at a worker count far above the kernel count.
func TestRunParallelPreservesSuiteOrder(t *testing.T) {
	plat := machine.MustByID(machine.ArndaleGPU)
	cfg := DefaultConfig()
	cfg.SweepPoints = 5
	cfg.Workers = 64
	kernels, err := BuildSuite(plat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(plat, cfg, sim.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Measurements) != len(kernels) {
		t.Fatalf("got %d measurements for %d kernels", len(res.Measurements), len(kernels))
	}
	for i, m := range res.Measurements {
		if m.Kernel != kernels[i].Name {
			t.Fatalf("measurement %d is %q, want %q", i, m.Kernel, kernels[i].Name)
		}
	}
}

// TestRunParallelPropagatesLowestIndexError checks that failures
// surface deterministically under concurrency: with every meter
// recording disconnecting, the reported kernel is the suite's first
// regardless of which worker hit its failure soonest.
func TestRunParallelPropagatesLowestIndexError(t *testing.T) {
	plat := machine.MustByID(machine.GTXTitan)
	cfg := DefaultConfig()
	cfg.SweepPoints = 4
	kernels, err := BuildSuite(plat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.New(faults.Profile{Name: "always-down", DisconnectProb: 1, DisconnectBurst: 1000}, 1)
	for _, workers := range []int{1, 8} {
		cfg.Workers = workers
		_, err := Run(plat, cfg, sim.Options{Seed: 3, Faults: inj})
		if err == nil {
			t.Fatalf("workers=%d: expected a disconnect failure", workers)
		}
		if !strings.Contains(err.Error(), kernels[0].Name) {
			t.Fatalf("workers=%d: error %q does not name the first kernel %q",
				workers, err, kernels[0].Name)
		}
	}
}

// TestFiltersSingleAllocation proves the counted-preallocation claim:
// each filter accessor performs at most one slice allocation per call.
func TestFiltersSingleAllocation(t *testing.T) {
	plat := machine.MustByID(machine.GTXTitan)
	cfg := DefaultConfig()
	cfg.SweepPoints = 10
	res, err := Run(plat, cfg, sim.Options{Seed: 1, Noiseless: true})
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		name string
		fn   func()
	}{
		{"Sweep", func() { res.Sweep(sim.Single) }},
		{"ByLevel", func() { res.ByLevel(model.LevelL1) }},
		{"Chase", func() { res.Chase() }},
	}
	for _, c := range checks {
		if allocs := testing.AllocsPerRun(20, c.fn); allocs > 1 {
			t.Errorf("%s allocates %.0f times per call, want <= 1", c.name, allocs)
		}
	}
}

// BenchmarkResultFilters measures the per-call cost of the Result
// accessors the fitting pipeline hammers; allocs/op is the headline
// (one counted preallocation per call).
func BenchmarkResultFilters(b *testing.B) {
	plat := machine.MustByID(machine.GTXTitan)
	cfg := DefaultConfig()
	res, err := Run(plat, cfg, sim.Options{Seed: 1, Noiseless: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = res.Sweep(sim.Single)
		_ = res.ByLevel(model.LevelL1)
		_ = res.Chase()
	}
}

// BenchmarkRunWorkers measures one platform's full suite at increasing
// kernel-level worker counts (the tentpole's inner fan-out).
func BenchmarkRunWorkers(b *testing.B) {
	plat := machine.MustByID(machine.GTXTitan)
	for _, workers := range []int{1, 2, 4, 0} {
		name := fmt.Sprintf("workers-%d", workers)
		if workers == 0 {
			name = "workers-max"
		}
		b.Run(name, func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.SweepPoints = 15
			cfg.Workers = workers
			for i := 0; i < b.N; i++ {
				if _, err := Run(plat, cfg, sim.Options{Seed: 42}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
