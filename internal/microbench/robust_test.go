package microbench

import (
	"context"
	"errors"
	"testing"
	"time"

	"archline/internal/faults"
	"archline/internal/machine"
	"archline/internal/powermon"
	"archline/internal/sim"
)

func robustOpts(inj *faults.Injector) sim.Options {
	return sim.Options{Seed: 42, Faults: inj, Sanitize: true}
}

// sleepRecorder fails the test if any retry tries to sleep for real.
func sleepRecorder(t *testing.T) (func(time.Duration), *int) {
	t.Helper()
	n := 0
	return func(d time.Duration) {
		n++
		if d > time.Second {
			t.Errorf("retry slept %v, beyond the cap", d)
		}
	}, &n
}

func TestRunRobustCleanMatchesSuite(t *testing.T) {
	plat := machine.MustByID(machine.GTXTitan)
	cfg := DefaultConfig()
	sleep, slept := sleepRecorder(t)
	res, rs, err := RunRobust(plat, cfg, robustOpts(nil), RobustConfig{Sleep: sleep})
	if err != nil {
		t.Fatal(err)
	}
	kernels, err := BuildSuite(plat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Measurements) != len(kernels) {
		t.Errorf("measurements = %d, want %d", len(res.Measurements), len(kernels))
	}
	for i, m := range res.Measurements {
		if m.Kernel != kernels[i].Name {
			t.Errorf("measurement %d kernel = %q, want %q (repeat suffix must be stripped)",
				i, m.Kernel, kernels[i].Name)
		}
	}
	if rs.Retries != 0 || rs.Discarded != 0 {
		t.Errorf("clean run retried/discarded: %v", rs)
	}
	if rs.WorstGrade != powermon.GradeA {
		t.Errorf("clean worst grade = %v, want A", rs.WorstGrade)
	}
	if *slept != 0 {
		t.Errorf("clean run slept %d times", *slept)
	}
	if res.IdlePower <= 0 {
		t.Errorf("idle power = %v", res.IdlePower)
	}
}

func TestRunRobustSurvivesPaperFaults(t *testing.T) {
	plat := machine.MustByID(machine.GTXTitan)
	cfg := DefaultConfig()
	sleep, _ := sleepRecorder(t)
	inj := faults.New(faults.Paper(), 7)
	res, rs, err := RunRobust(plat, cfg, robustOpts(inj), RobustConfig{Sleep: sleep})
	if err != nil {
		t.Fatalf("robust run did not survive the paper profile: %v", err)
	}
	if got, want := len(res.Measurements), 2*cfg.SweepPoints+1; got < want {
		t.Errorf("measurements = %d, want at least %d", got, want)
	}
	// With ~190 labels at 2% disconnect probability some retries are
	// overwhelmingly likely; the suite must have absorbed them silently.
	if rs.Retries == 0 {
		t.Log("note: no transient retries occurred under the paper profile (possible but unlikely)")
	}
	if rs.WorstGrade > powermon.GradeC {
		t.Errorf("worst grade = %v", rs.WorstGrade)
	}
}

func TestRunRobustDeterministic(t *testing.T) {
	plat := machine.MustByID(machine.GTXTitan)
	cfg := DefaultConfig()
	cfg.SweepPoints = 6
	cfg.IncludeDouble = false
	cfg.IncludeCache = false
	cfg.IncludeChase = false
	run := func() (*Result, *RobustStats) {
		sleep, _ := sleepRecorder(t)
		res, rs, err := RunRobust(plat, cfg, robustOpts(faults.New(faults.Paper(), 7)),
			RobustConfig{Sleep: sleep})
		if err != nil {
			t.Fatal(err)
		}
		return res, rs
	}
	a, ra := run()
	b, rb := run()
	if *ra != *rb {
		t.Errorf("robust stats diverged: %v vs %v", ra, rb)
	}
	for i := range a.Measurements {
		if a.Measurements[i] != b.Measurements[i] {
			t.Errorf("measurement %d diverged:\n%+v\n%+v", i, a.Measurements[i], b.Measurements[i])
		}
	}
	if a.IdlePower != b.IdlePower {
		t.Errorf("idle power diverged: %v vs %v", a.IdlePower, b.IdlePower)
	}
}

func TestRunRobustAllRepeatsFailing(t *testing.T) {
	// A label that disconnects more often than the retry budget admits
	// must surface a hard error, not a silent hole in the suite.
	prof := faults.Paper()
	prof.DisconnectProb = 1
	prof.DisconnectBurst = 1000
	plat := machine.MustByID(machine.GTXTitan)
	cfg := DefaultConfig()
	cfg.SweepPoints = 2
	cfg.IncludeDouble = false
	cfg.IncludeCache = false
	cfg.IncludeChase = false
	sleep, _ := sleepRecorder(t)
	_, _, err := RunRobust(plat, cfg, robustOpts(faults.New(prof, 7)), RobustConfig{Sleep: sleep})
	if err == nil {
		t.Fatal("permanently disconnected meter should fail the run")
	}
	if !powermon.IsTransient(err) {
		t.Errorf("exhausted-retry error should stay classifiable: %v", err)
	}
}

func TestRunRobustContextCancellation(t *testing.T) {
	// A canceled context must abort the suite promptly with a
	// context.Canceled-classifiable error, not run every kernel.
	plat := machine.MustByID(machine.GTXTitan)
	cfg := DefaultConfig()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sleep, _ := sleepRecorder(t)
	res, _, err := RunRobustContext(ctx, plat, cfg, robustOpts(nil), RobustConfig{Sleep: sleep})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Errorf("canceled run still returned a result with %d measurements", len(res.Measurements))
	}
}
