package microbench

import (
	"context"
	"fmt"
	"strings"
	"time"

	"archline/internal/faults"
	"archline/internal/machine"
	"archline/internal/obs"
	"archline/internal/powermon"
	"archline/internal/sim"
	"archline/internal/stats"
	"archline/internal/units"
)

// RobustConfig tunes the fault-tolerant suite runner.
type RobustConfig struct {
	// Repeats is how many times each kernel is measured. Default 3.
	Repeats int
	// Backoff schedules retries of transient measurement errors.
	Backoff faults.Backoff
	// Sleep receives each backoff delay; nil means time.Sleep. Tests
	// inject a recording stub so no retry ever blocks on a real clock.
	Sleep func(time.Duration)
}

func (rc RobustConfig) withDefaults() RobustConfig {
	if rc.Repeats < 1 {
		rc.Repeats = 3
	}
	return rc
}

// RobustStats summarizes what the robust runner had to absorb.
type RobustStats struct {
	// Retries counts transient errors retried across the whole suite.
	Retries int
	// Discarded counts repeat measurements dropped as GradeC when a
	// cleaner repeat existed.
	Discarded int
	// Repeats is the per-kernel repeat count used.
	Repeats int
	// WorstGrade is the worst quality grade among the measurements that
	// were kept.
	WorstGrade powermon.Grade
}

// String renders the stats compactly.
func (rs RobustStats) String() string {
	return fmt.Sprintf("repeats %d, retries %d, discarded %d, worst grade %s",
		rs.Repeats, rs.Retries, rs.Discarded, rs.WorstGrade)
}

// repeatSuffix tags a repeat's kernel name so each repeat draws its own
// noise and fault schedule.
func repeatSuffix(rep int) string { return fmt.Sprintf("@r%d", rep) }

// RunRobust builds and executes the suite the way a careful lab does on
// flaky instrumentation: every kernel is measured Repeats times (each
// repeat under its own noise and fault schedule), transient meter errors
// are retried with capped jittered backoff, traces are sanitized,
// GradeC repeats are discarded when a cleaner repeat exists, and the
// surviving repeats are aggregated component-wise by median — the
// outlier-trimmed estimate a single throttled or corrupted run cannot
// drag. The aggregated Result is shaped exactly like Run's, so the
// fitting pipeline consumes it unchanged.
func RunRobust(plat *machine.Platform, cfg Config, opts sim.Options, rc RobustConfig) (*Result, *RobustStats, error) {
	return RunRobustContext(context.Background(), plat, cfg, opts, rc)
}

// RunRobustContext is RunRobust under a microbench.suite span: each
// kernel gets a child span carrying retry, lost-repeat, and discard
// events, and the suite span closes with the aggregate robustness
// stats. Without a tracer on ctx it behaves exactly like RunRobust.
func RunRobustContext(ctx context.Context, plat *machine.Platform, cfg Config,
	opts sim.Options, rc RobustConfig) (*Result, *RobustStats, error) {
	rc = rc.withDefaults()
	if rc.Sleep == nil {
		// Default retry backoff honours ctx: a canceled suite wakes
		// early instead of sitting out the delay, and the next ctx.Err
		// check aborts the run.
		rc.Sleep = func(d time.Duration) {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-t.C:
			case <-ctx.Done():
			}
		}
	}
	opts.Sanitize = true
	ctx, span := obs.Start(ctx, "microbench.suite",
		obs.String("platform", string(plat.ID)), obs.Int("repeats", rc.Repeats))
	defer span.End()
	kernels, err := BuildSuite(plat, cfg)
	if err != nil {
		return nil, nil, err
	}
	s := sim.New(plat, opts)
	res := &Result{Platform: plat}
	rs := &RobustStats{Repeats: rc.Repeats}
	for _, k := range kernels {
		// The simulator itself never blocks, so cancellation (an async
		// job being deleted, a drain deadline) is honoured here, between
		// kernels — the suite stops promptly instead of grinding through
		// the remaining measurements.
		if err := ctx.Err(); err != nil {
			return nil, nil, fmt.Errorf("microbench: suite on %s: %w", plat.Name, err)
		}
		m, err := measureKernelRobust(ctx, s, k, rc, rs, opts.Seed)
		if err != nil {
			return nil, nil, fmt.Errorf("microbench: %s on %s: %w", k.Name, plat.Name, err)
		}
		res.Measurements = append(res.Measurements, m)
	}
	idle, err := measureIdleRobust(ctx, s, rc, rs, opts.Seed, plat)
	if err != nil {
		return nil, nil, err
	}
	res.IdlePower = idle
	span.SetAttr(obs.Int("kernels", len(res.Measurements)), obs.Int("retries", rs.Retries),
		obs.Int("discarded", rs.Discarded), obs.String("worst_grade", rs.WorstGrade.String()))
	return res, rs, nil
}

// measureKernelRobust measures one kernel Repeats times with retry,
// discards contaminated repeats, and aggregates the survivors.
func measureKernelRobust(ctx context.Context, s *sim.Simulator, k sim.Kernel,
	rc RobustConfig, rs *RobustStats, seed uint64) (sim.Measurement, error) {
	ctx, span := obs.Start(ctx, "microbench.kernel", obs.String("kernel", k.Name))
	defer span.End()
	var reps []sim.Measurement
	var lastErr error
	for rep := 0; rep < rc.Repeats; rep++ {
		if err := ctx.Err(); err != nil {
			return sim.Measurement{}, err
		}
		rk := k
		rk.Name = k.Name + repeatSuffix(rep)
		rng := stats.NewStream(seed^0x5e77, string(s.Platform().ID)+"/retry/"+rk.Name)
		var m sim.Measurement
		retries, err := faults.RetryNotify(rc.Backoff, rc.Sleep, rng,
			func(attempt int, delay time.Duration, rerr error) {
				span.Event("fault.retry", obs.String("kernel", rk.Name), obs.Int("attempt", attempt),
					obs.Float("delay_s", delay.Seconds()), obs.String("error", rerr.Error()))
			},
			func() error {
				var merr error
				m, merr = s.MeasureContext(ctx, rk)
				return merr
			})
		rs.Retries += retries
		if err != nil {
			span.Event("repeat.lost", obs.String("kernel", rk.Name), obs.String("error", err.Error()))
			lastErr = err
			continue // this repeat is lost; others may still land
		}
		m.Kernel = strings.TrimSuffix(m.Kernel, repeatSuffix(rep))
		reps = append(reps, m)
	}
	if len(reps) == 0 {
		return sim.Measurement{}, fmt.Errorf("all %d repeats failed: %w", rc.Repeats, lastErr)
	}
	kept := discardContaminated(reps)
	if d := len(reps) - len(kept); d > 0 {
		span.Event("repeat.discarded", obs.Int("count", d))
	}
	rs.Discarded += len(reps) - len(kept)
	agg := aggregate(kept)
	if agg.Quality.Grade > rs.WorstGrade {
		rs.WorstGrade = agg.Quality.Grade
	}
	span.SetAttr(obs.String("grade", agg.Quality.Grade.String()), obs.Int("kept", len(kept)))
	return agg, nil
}

// discardContaminated drops GradeC repeats as long as at least one
// cleaner repeat survives; with nothing cleaner available the
// contaminated repeats are all we have, and the grade says so.
func discardContaminated(reps []sim.Measurement) []sim.Measurement {
	var kept []sim.Measurement
	for _, m := range reps {
		if m.Quality.Grade < powermon.GradeC {
			kept = append(kept, m)
		}
	}
	if len(kept) == 0 {
		return reps
	}
	return kept
}

// aggregate folds repeat measurements into one by component-wise median
// on the measured quantities. Ground-truth fields (W, Q, level, ...)
// are identical across repeats and taken from the first.
func aggregate(reps []sim.Measurement) sim.Measurement {
	out := reps[0]
	if len(reps) == 1 {
		return out
	}
	times := make([]float64, len(reps))
	energies := make([]float64, len(reps))
	powers := make([]float64, len(reps))
	for i, m := range reps {
		times[i] = m.Time.Seconds()
		energies[i] = m.Energy.Joules()
		powers[i] = m.AvgPower.Watts()
		if i > 0 {
			out.Quality = out.Quality.Merge(m.Quality)
		}
	}
	out.Time = units.Time(stats.Median(times))
	out.Energy = units.Energy(stats.Median(energies))
	out.AvgPower = units.Power(stats.Median(powers))
	return out
}

// measureIdleRobust records the idle baseline with retry and takes the
// median across repeats.
func measureIdleRobust(ctx context.Context, s *sim.Simulator, rc RobustConfig,
	rs *RobustStats, seed uint64, plat *machine.Platform) (units.Power, error) {
	ctx, span := obs.Start(ctx, "microbench.idle", obs.Int("repeats", rc.Repeats))
	defer span.End()
	var idles []float64
	var lastErr error
	for rep := 0; rep < rc.Repeats; rep++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		rng := stats.NewStream(seed^0x5e77, string(plat.ID)+"/retry/idle"+repeatSuffix(rep))
		var p units.Power
		retries, err := faults.RetryNotify(rc.Backoff, rc.Sleep, rng,
			func(attempt int, delay time.Duration, rerr error) {
				span.Event("fault.retry", obs.String("kernel", "idle"), obs.Int("attempt", attempt),
					obs.Float("delay_s", delay.Seconds()), obs.String("error", rerr.Error()))
			},
			func() error {
				var merr error
				p, merr = s.MeasureIdleContext(ctx, 1)
				return merr
			})
		rs.Retries += retries
		if err != nil {
			span.Event("repeat.lost", obs.String("kernel", "idle"), obs.String("error", err.Error()))
			lastErr = err
			continue
		}
		idles = append(idles, p.Watts())
	}
	if len(idles) == 0 {
		return 0, fmt.Errorf("microbench: idle measurement failed on %s: %w", plat.Name, lastErr)
	}
	return units.Power(stats.Median(idles)), nil
}
