// Package stats implements the statistical machinery the paper's
// evaluation uses: descriptive statistics, quantiles and boxplot
// five-number summaries (fig. 4's error distributions), Pearson
// correlation (the pi_1-fraction vs. energy-efficiency correlation of
// section V-C), and the two-sample Kolmogorov-Smirnov test used to decide
// which platforms' capped and uncapped error distributions differ
// significantly (the "**" markers of fig. 4).
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty reports a statistic requested over an empty sample.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs, or NaN for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased (n-1) sample variance, or NaN when fewer
// than two observations are available.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the unbiased sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the smallest element, or NaN for an empty sample.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element, or NaN for an empty sample.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics (type-7, the R default the paper's
// boxplots were produced with). It returns NaN for an empty sample or q
// outside [0, 1]. xs need not be sorted.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 || q < 0 || q > 1 || math.IsNaN(q) {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return quantileSorted(s, q)
}

// quantileSorted is Quantile on an already-sorted slice.
func quantileSorted(s []float64, q float64) float64 {
	n := len(s)
	if n == 1 {
		return s[0]
	}
	h := q * float64(n-1)
	lo := int(math.Floor(h))
	hi := int(math.Ceil(h))
	if lo == hi {
		return s[lo]
	}
	frac := h - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 0.5-quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// FiveNumber is a boxplot summary: minimum, lower quartile, median, upper
// quartile, maximum.
type FiveNumber struct {
	Min, Q1, Median, Q3, Max float64
}

// IQR returns the interquartile range Q3 - Q1.
func (f FiveNumber) IQR() float64 { return f.Q3 - f.Q1 }

// Summary computes the five-number summary of xs.
func Summary(xs []float64) (FiveNumber, error) {
	if len(xs) == 0 {
		return FiveNumber{}, ErrEmpty
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return FiveNumber{
		Min:    s[0],
		Q1:     quantileSorted(s, 0.25),
		Median: quantileSorted(s, 0.5),
		Q3:     quantileSorted(s, 0.75),
		Max:    s[len(s)-1],
	}, nil
}

// Pearson returns the Pearson product-moment correlation coefficient of
// the paired samples xs and ys. It returns an error when the samples have
// different lengths or fewer than two pairs, and NaN when either sample
// has zero variance.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: mismatched sample lengths")
	}
	if len(xs) < 2 {
		return 0, ErrEmpty
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN(), nil
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// KSResult is the outcome of a two-sample Kolmogorov-Smirnov test.
type KSResult struct {
	D float64 // the K-S statistic: sup |F1 - F2| over the pooled sample
	P float64 // asymptotic p-value against H0: same underlying distribution
	N int     // size of the first sample
	M int     // size of the second sample
}

// Significant reports whether the null hypothesis (same distribution) is
// rejected at level alpha; the paper uses alpha = 0.05.
func (r KSResult) Significant(alpha float64) bool { return r.P < alpha }

// KolmogorovSmirnov performs the two-sample K-S test on xs and ys,
// mirroring the paper's use of it to compare capped and uncapped model
// error distributions. The p-value uses the asymptotic Kolmogorov
// distribution with the effective sample size n*m/(n+m); as the paper
// notes, the test makes no distributional assumptions and may be
// conservative.
func KolmogorovSmirnov(xs, ys []float64) (KSResult, error) {
	n, m := len(xs), len(ys)
	if n == 0 || m == 0 {
		return KSResult{}, ErrEmpty
	}
	a := append([]float64(nil), xs...)
	b := append([]float64(nil), ys...)
	sort.Float64s(a)
	sort.Float64s(b)

	var d float64
	i, j := 0, 0
	for i < n && j < m {
		x := a[i]
		y := b[j]
		v := math.Min(x, y)
		for i < n && a[i] <= v {
			i++
		}
		for j < m && b[j] <= v {
			j++
		}
		f1 := float64(i) / float64(n)
		f2 := float64(j) / float64(m)
		if diff := math.Abs(f1 - f2); diff > d {
			d = diff
		}
	}

	ne := float64(n) * float64(m) / float64(n+m)
	// Asymptotic p-value with the Stephens small-sample correction, as in
	// Numerical Recipes and R's ks.test (exact=FALSE).
	sq := math.Sqrt(ne)
	lambda := (sq + 0.12 + 0.11/sq) * d
	return KSResult{D: d, P: kolmogorovQ(lambda), N: n, M: m}, nil
}

// kolmogorovQ evaluates Q_KS(lambda) = 2 sum_{k>=1} (-1)^{k-1}
// exp(-2 k^2 lambda^2), the complementary CDF of the Kolmogorov
// distribution. It is monotone from 1 (lambda -> 0) to 0 (lambda -> inf).
func kolmogorovQ(lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	const (
		eps1    = 1e-6  // relative convergence
		eps2    = 1e-16 // absolute convergence
		maxTerm = 100
	)
	a2 := -2 * lambda * lambda
	sum := 0.0
	prev := 0.0
	sign := 1.0
	for k := 1; k <= maxTerm; k++ {
		term := sign * 2 * math.Exp(a2*float64(k)*float64(k))
		sum += term
		at := math.Abs(term)
		if at <= eps1*prev || at <= eps2*sum {
			if sum < 0 {
				return 0
			}
			if sum > 1 {
				return 1
			}
			return sum
		}
		prev = at
		sign = -sign
	}
	return 1 // failed to converge: be conservative, do not reject
}

// ECDF returns the empirical CDF of xs evaluated at x: the fraction of
// observations <= x.
func ECDF(xs []float64, x float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	c := 0
	for _, v := range xs {
		if v <= x {
			c++
		}
	}
	return float64(c) / float64(len(xs))
}

// RelativeErrors returns (model - measured) / measured for each pair, the
// error metric of fig. 4. Pairs with measured == 0 yield +/-Inf as IEEE
// division dictates; callers filter if needed.
func RelativeErrors(model, measured []float64) ([]float64, error) {
	if len(model) != len(measured) {
		return nil, errors.New("stats: mismatched sample lengths")
	}
	out := make([]float64, len(model))
	for i := range model {
		out[i] = (model[i] - measured[i]) / measured[i]
	}
	return out, nil
}

// AbsMedian returns the median of |xs|, a robust magnitude summary used
// when ranking platforms by model error.
func AbsMedian(xs []float64) float64 {
	abs := make([]float64, len(xs))
	for i, x := range xs {
		abs[i] = math.Abs(x)
	}
	return Median(abs)
}

// Spearman returns the Spearman rank correlation of the paired samples:
// Pearson correlation of the rank vectors, robust to monotone
// transformations and outliers. Ties receive average ranks.
func Spearman(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: mismatched sample lengths")
	}
	if len(xs) < 2 {
		return 0, ErrEmpty
	}
	return Pearson(ranks(xs), ranks(ys))
}

// ranks assigns average ranks (1-based) to the sample.
func ranks(xs []float64) []float64 {
	type iv struct {
		v float64
		i int
	}
	s := make([]iv, len(xs))
	for i, v := range xs {
		s[i] = iv{v, i}
	}
	sort.Slice(s, func(a, b int) bool { return s[a].v < s[b].v })
	out := make([]float64, len(xs))
	for i := 0; i < len(s); {
		j := i
		//archlint:ignore floatcmp rank ties must use exact equality; fuzzy ties would change the statistic
		for j < len(s) && s[j].v == s[i].v {
			j++
		}
		avg := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			out[s[k].i] = avg
		}
		i = j
	}
	return out
}
