package stats

import (
	"hash/fnv"
	"math"
)

// Stream is a small deterministic pseudo-random stream (SplitMix64 core)
// used to generate reproducible measurement noise in the hardware
// simulator. Unlike math/rand's global source, Streams are derived from
// string labels, so "the noise on platform X, kernel Y" is stable across
// runs and independent of evaluation order — a property the fitting and
// statistics tests rely on.
type Stream struct {
	state uint64
	// cached spare normal deviate for the Box-Muller transform
	spare    float64
	hasSpare bool
}

// NewStream derives a deterministic stream from a seed and a label.
func NewStream(seed uint64, label string) *Stream {
	h := fnv.New64a()
	h.Write([]byte(label)) //archlint:ignore errdrop hash.Hash.Write is documented never to return an error
	return &Stream{state: seed ^ h.Sum64()}
}

// next advances the SplitMix64 state and returns 64 pseudo-random bits.
func (s *Stream) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 pseudo-random bits.
func (s *Stream) Uint64() uint64 { return s.next() }

// Float64 returns a uniform deviate in [0, 1).
func (s *Stream) Float64() float64 {
	return float64(s.next()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive bound")
	}
	return int(s.next() % uint64(n))
}

// NormFloat64 returns a standard normal deviate via Box-Muller.
func (s *Stream) NormFloat64() float64 {
	if s.hasSpare {
		s.hasSpare = false
		return s.spare
	}
	var u, v, r2 float64
	for {
		u = 2*s.Float64() - 1
		v = 2*s.Float64() - 1
		r2 = u*u + v*v
		if r2 > 0 && r2 < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(r2) / r2)
	s.spare = v * f
	s.hasSpare = true
	return u * f
}

// Gaussian returns a normal deviate with the given mean and standard
// deviation.
func (s *Stream) Gaussian(mean, sd float64) float64 {
	return mean + sd*s.NormFloat64()
}

// LogNormalFactor returns a multiplicative noise factor exp(N(0, sigma)),
// i.e. 1 on average in log space. Measurement noise on time and energy is
// naturally multiplicative, and log-normal factors keep the simulated
// values positive.
func (s *Stream) LogNormalFactor(sigma float64) float64 {
	return math.Exp(sigma * s.NormFloat64())
}

// Shuffle permutes the first n indices, calling swap as sort.Slice would.
func (s *Stream) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}
