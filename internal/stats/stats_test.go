package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, got, want, tol float64, name string) {
	t.Helper()
	if math.IsNaN(got) != math.IsNaN(want) || math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (tol %v)", name, got, want, tol)
	}
}

func TestDescriptive(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	approx(t, Mean(xs), 5, 1e-12, "Mean")
	approx(t, Variance(xs), 32.0/7.0, 1e-12, "Variance")
	approx(t, StdDev(xs), math.Sqrt(32.0/7.0), 1e-12, "StdDev")
	approx(t, Min(xs), 2, 0, "Min")
	approx(t, Max(xs), 9, 0, "Max")
}

func TestDescriptiveEmpty(t *testing.T) {
	for name, v := range map[string]float64{
		"Mean": Mean(nil), "Min": Min(nil), "Max": Max(nil),
		"Variance": Variance(nil), "Median": Median(nil),
	} {
		if !math.IsNaN(v) {
			t.Errorf("%s(nil) = %v, want NaN", name, v)
		}
	}
	if _, err := Summary(nil); err != ErrEmpty {
		t.Errorf("Summary(nil) err = %v, want ErrEmpty", err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	approx(t, Quantile(xs, 0), 1, 0, "q0")
	approx(t, Quantile(xs, 1), 4, 0, "q1")
	approx(t, Quantile(xs, 0.5), 2.5, 1e-12, "median")
	approx(t, Quantile(xs, 0.25), 1.75, 1e-12, "q1(type7)") // R type-7
	approx(t, Quantile([]float64{42}, 0.73), 42, 0, "singleton")
	if !math.IsNaN(Quantile(xs, -0.1)) || !math.IsNaN(Quantile(xs, 1.1)) {
		t.Error("out-of-range q should be NaN")
	}
	// Quantile must not mutate its input.
	ys := []float64{3, 1, 2}
	Quantile(ys, 0.5)
	if ys[0] != 3 || ys[1] != 1 || ys[2] != 2 {
		t.Error("Quantile mutated input")
	}
}

func TestSummary(t *testing.T) {
	s, err := Summary([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, s.Min, 1, 0, "min")
	approx(t, s.Q1, 2, 1e-12, "q1")
	approx(t, s.Median, 3, 0, "median")
	approx(t, s.Q3, 4, 1e-12, "q3")
	approx(t, s.Max, 5, 0, "max")
	approx(t, s.IQR(), 2, 1e-12, "iqr")
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, r, 1, 1e-12, "perfect positive")

	neg := []float64{10, 8, 6, 4, 2}
	r, _ = Pearson(xs, neg)
	approx(t, r, -1, 1e-12, "perfect negative")

	if _, err := Pearson(xs, ys[:3]); err == nil {
		t.Error("mismatched lengths should error")
	}
	if _, err := Pearson(nil, nil); err != ErrEmpty {
		t.Error("empty should return ErrEmpty")
	}
	r, _ = Pearson([]float64{1, 1, 1}, []float64{1, 2, 3})
	if !math.IsNaN(r) {
		t.Error("zero variance should yield NaN")
	}
}

func TestKolmogorovSmirnovIdentical(t *testing.T) {
	xs := make([]float64, 200)
	s := NewStream(7, "ks-identical")
	for i := range xs {
		xs[i] = s.NormFloat64()
	}
	r, err := KolmogorovSmirnov(xs, xs)
	if err != nil {
		t.Fatal(err)
	}
	if r.D != 0 {
		t.Errorf("D = %v for identical samples, want 0", r.D)
	}
	if r.P < 0.99 {
		t.Errorf("P = %v for identical samples, want ~1", r.P)
	}
	if r.Significant(0.05) {
		t.Error("identical samples should not be significant")
	}
}

func TestKolmogorovSmirnovShifted(t *testing.T) {
	s := NewStream(11, "ks-shifted")
	xs := make([]float64, 300)
	ys := make([]float64, 300)
	for i := range xs {
		xs[i] = s.NormFloat64()
		ys[i] = s.NormFloat64() + 1.5 // well-separated
	}
	r, err := KolmogorovSmirnov(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Significant(0.05) {
		t.Errorf("shifted samples not significant: D=%v P=%v", r.D, r.P)
	}
	if r.D < 0.4 {
		t.Errorf("D = %v for 1.5-sigma shift, want large", r.D)
	}
}

func TestKolmogorovSmirnovSameDistribution(t *testing.T) {
	// Two draws from the same distribution should usually NOT be
	// significant. With a fixed seed this is deterministic.
	s := NewStream(13, "ks-same")
	xs := make([]float64, 250)
	ys := make([]float64, 250)
	for i := range xs {
		xs[i] = s.NormFloat64()
		ys[i] = s.NormFloat64()
	}
	r, err := KolmogorovSmirnov(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if r.Significant(0.05) {
		t.Errorf("same-distribution samples flagged significant: D=%v P=%v", r.D, r.P)
	}
}

func TestKolmogorovSmirnovEmpty(t *testing.T) {
	if _, err := KolmogorovSmirnov(nil, []float64{1}); err != ErrEmpty {
		t.Error("empty first sample should error")
	}
	if _, err := KolmogorovSmirnov([]float64{1}, nil); err != ErrEmpty {
		t.Error("empty second sample should error")
	}
}

func TestKolmogorovQ(t *testing.T) {
	// Known values of the Kolmogorov distribution.
	approx(t, kolmogorovQ(0), 1, 0, "Q(0)")
	approx(t, kolmogorovQ(1.36), 0.0505, 5e-3, "Q(1.36)~0.05 critical value")
	approx(t, kolmogorovQ(1.63), 0.01, 5e-3, "Q(1.63)~0.01 critical value")
	if q := kolmogorovQ(10); q > 1e-10 {
		t.Errorf("Q(10) = %v, want ~0", q)
	}
	// Monotone non-increasing.
	prev := 1.0
	for l := 0.1; l < 3; l += 0.1 {
		q := kolmogorovQ(l)
		if q > prev+1e-12 {
			t.Fatalf("kolmogorovQ not monotone at %v: %v > %v", l, q, prev)
		}
		prev = q
	}
}

func TestECDF(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	approx(t, ECDF(xs, 0), 0, 0, "below")
	approx(t, ECDF(xs, 2), 0.5, 0, "mid")
	approx(t, ECDF(xs, 4), 1, 0, "top")
	if !math.IsNaN(ECDF(nil, 1)) {
		t.Error("ECDF of empty should be NaN")
	}
}

func TestRelativeErrors(t *testing.T) {
	errs, err := RelativeErrors([]float64{110, 90}, []float64{100, 100})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, errs[0], 0.1, 1e-12, "over")
	approx(t, errs[1], -0.1, 1e-12, "under")
	if _, err := RelativeErrors([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("mismatched lengths should error")
	}
}

func TestAbsMedian(t *testing.T) {
	approx(t, AbsMedian([]float64{-3, 1, 2}), 2, 1e-12, "AbsMedian")
}

func TestStreamDeterminism(t *testing.T) {
	a := NewStream(42, "x")
	b := NewStream(42, "x")
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed+label should produce identical streams")
		}
	}
	c := NewStream(42, "y")
	same := true
	a = NewStream(42, "x")
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different labels should produce different streams")
	}
}

func TestStreamDistributions(t *testing.T) {
	s := NewStream(1, "dist")
	n := 20000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sum2 += v * v
	}
	mean := sum / float64(n)
	sd := math.Sqrt(sum2/float64(n) - mean*mean)
	approx(t, mean, 0, 0.03, "normal mean")
	approx(t, sd, 1, 0.03, "normal sd")

	s2 := NewStream(2, "uniform")
	var us float64
	for i := 0; i < n; i++ {
		u := s2.Float64()
		if u < 0 || u >= 1 {
			t.Fatalf("Float64 out of range: %v", u)
		}
		us += u
	}
	approx(t, us/float64(n), 0.5, 0.01, "uniform mean")
}

func TestStreamGaussianAndLogNormal(t *testing.T) {
	s := NewStream(3, "g")
	n := 20000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Gaussian(10, 2)
	}
	approx(t, sum/float64(n), 10, 0.1, "gaussian mean")

	s = NewStream(4, "ln")
	for i := 0; i < 1000; i++ {
		if f := s.LogNormalFactor(0.05); f <= 0 {
			t.Fatal("log-normal factor must be positive")
		}
	}
}

func TestStreamIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	NewStream(1, "p").Intn(0)
}

func TestStreamShuffle(t *testing.T) {
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	s := NewStream(5, "shuffle")
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make(map[int]bool)
	for _, x := range xs {
		seen[x] = true
	}
	if len(seen) != 8 {
		t.Error("shuffle lost elements")
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestQuickQuantileMonotone(t *testing.T) {
	f := func(raw []float64, q1, q2 float64) bool {
		xs := raw[:0]
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		q1 = math.Abs(math.Mod(q1, 1))
		q2 = math.Abs(math.Mod(q2, 1))
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		lo, hi := Quantile(xs, q1), Quantile(xs, q2)
		return lo <= hi && lo >= Min(xs)-1e-9 && hi <= Max(xs)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: K-S D statistic is within [0,1] and p within [0,1].
func TestQuickKSBounds(t *testing.T) {
	f := func(a, b []float64) bool {
		xs := filterFinite(a)
		ys := filterFinite(b)
		if len(xs) == 0 || len(ys) == 0 {
			return true
		}
		r, err := KolmogorovSmirnov(xs, ys)
		if err != nil {
			return false
		}
		return r.D >= 0 && r.D <= 1 && r.P >= 0 && r.P <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Pearson correlation lies in [-1, 1].
func TestQuickPearsonBounds(t *testing.T) {
	f := func(a []float64) bool {
		xs := filterFinite(a)
		if len(xs) < 2 {
			return true
		}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = x*0.5 + float64(i%3)
		}
		r, err := Pearson(xs, ys)
		if err != nil {
			return false
		}
		return math.IsNaN(r) || (r >= -1-1e-9 && r <= 1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func filterFinite(raw []float64) []float64 {
	var out []float64
	for _, v := range raw {
		if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e100 {
			out = append(out, v)
		}
	}
	return out
}

func TestSpearman(t *testing.T) {
	// Monotone nonlinear relation: Spearman 1, Pearson < 1.
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 8, 27, 64, 125}
	rho, err := Spearman(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, rho, 1, 1e-12, "monotone spearman")
	// Reversed: -1.
	rev := []float64{125, 64, 27, 8, 1}
	rho, _ = Spearman(xs, rev)
	approx(t, rho, -1, 1e-12, "reversed spearman")
	// Ties get average ranks and stay in [-1,1].
	tied := []float64{1, 1, 2, 2, 3}
	rho, err = Spearman(xs, tied)
	if err != nil {
		t.Fatal(err)
	}
	if rho < 0.8 || rho > 1 {
		t.Errorf("tied spearman %v", rho)
	}
	if _, err := Spearman(xs, ys[:2]); err == nil {
		t.Error("mismatched lengths should error")
	}
	if _, err := Spearman(nil, nil); err != ErrEmpty {
		t.Error("empty should return ErrEmpty")
	}
}

func TestRanks(t *testing.T) {
	r := ranks([]float64{10, 30, 20, 30})
	want := []float64{1, 3.5, 2, 3.5}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("ranks = %v, want %v", r, want)
		}
	}
}
