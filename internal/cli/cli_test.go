package cli

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"archline/internal/experiments"
	"archline/internal/machine"
)

// fastOpts keep command tests quick.
func fastOpts() experiments.Options {
	return experiments.Options{Seed: 7, SweepPoints: 10}
}

// runCmd executes one subcommand and returns its output.
func runCmd(t *testing.T, cmd string, plat machine.ID) string {
	t.Helper()
	var buf bytes.Buffer
	if err := Run(cmd, fastOpts(), plat, &buf); err != nil {
		t.Fatalf("%s: %v", cmd, err)
	}
	return buf.String()
}

func TestCommandsProduceTheirArtifacts(t *testing.T) {
	if testing.Short() {
		t.Skip("full command sweep in -short mode")
	}
	cases := []struct {
		cmd    string
		expect []string
	}{
		{"fig1", []string{"Fig. 1", "47 x Arndale GPU", "crossover"}},
		{"fig5", []string{"Fig. 5", "GTX Titan", "regimes:"}},
		{"fig6", []string{"Fig. 6", "peak power ratio"}},
		{"fig7a", []string{"Fig. 7a"}},
		{"fig7b", []string{"Fig. 7b"}},
		{"scenarios", []string{"Section V-B", "Section V-C", "Section V-D"}},
		{"dp", []string{"Double precision", "eps_d/eps_s"}},
		{"network", []string{"47-Arndale-GPU", "InfiniBand"}},
		{"dvfs", []string{"DVFS extension"}},
		{"pi1", []string{"Constant-power reduction"}},
		{"sweep", []string{"model sweep", "intensity", "throttle"}},
		{"scaling", []string{"Cluster scaling", "strong scaling", "weak scaling"}},
		{"roofline", []string{"time roofline", "energy roofline", "power cap binds"}},
		{"list", []string{"Table I platforms", "gtx-titan", "arndale-gpu"}},
	}
	for _, c := range cases {
		out := runCmd(t, c.cmd, machine.GTXTitan)
		for _, want := range c.expect {
			if !strings.Contains(out, want) {
				t.Errorf("%s: output missing %q", c.cmd, want)
			}
		}
	}
}

func TestFitCommand(t *testing.T) {
	out := runCmd(t, "fit", machine.ArndaleCPU)
	for _, want := range []string{"Arndale CPU", "fitted", "published", "pi_1", "eps_rand", "log-residual"} {
		if !strings.Contains(out, want) {
			t.Errorf("fit output missing %q", want)
		}
	}
}

func TestFig4Command(t *testing.T) {
	var buf bytes.Buffer
	opts := fastOpts()
	// Replicates default to 4 inside the command.
	if err := Run("fig4", opts, machine.GTXTitan, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "K-S") {
		t.Error("fig4 output missing K-S table")
	}
}

func TestTable1Command(t *testing.T) {
	out := runCmd(t, "table1", machine.GTXTitan)
	if !strings.Contains(out, "Table I reproduction") {
		t.Error("table1 output missing title")
	}
}

func TestExperimentsMDCommand(t *testing.T) {
	out := runCmd(t, "experiments-md", machine.GTXTitan)
	for _, want := range []string{"# EXPERIMENTS", "## Table I", "## Fig. 4", "Extensions beyond"} {
		if !strings.Contains(out, want) {
			t.Errorf("experiments-md missing %q", want)
		}
	}
}

func TestRooflineUncappedPlatformMessage(t *testing.T) {
	// Build output for a platform and check the cap-range line exists in
	// one form or the other (all Table I platforms bind somewhere, so
	// exercise the "binds" branch; the "never binds" branch is covered by
	// the message choice logic itself).
	out := runCmd(t, "roofline", machine.XeonPhi)
	if !strings.Contains(out, "power cap binds for I in") {
		t.Error("roofline should report the cap-binding range")
	}
}

func TestUnknownCommandAndPlatformErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("nonsense", fastOpts(), machine.GTXTitan, &buf); err == nil {
		t.Error("unknown command should error")
	}
	for _, cmd := range []string{"fit", "sweep", "roofline"} {
		if err := Run(cmd, fastOpts(), "no-such-platform", &buf); err == nil {
			t.Errorf("%s with bad platform should error", cmd)
		}
	}
}

func TestMainExitCodes(t *testing.T) {
	var out, errb bytes.Buffer
	if code := Main([]string{"list"}, &out, &errb); code != 0 {
		t.Errorf("list exit code %d, stderr %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "Table I platforms") {
		t.Error("list output missing")
	}
	out.Reset()
	errb.Reset()
	if code := Main([]string{}, &out, &errb); code != 2 {
		t.Errorf("no command should exit 2, got %d", code)
	}
	if !strings.Contains(errb.String(), "usage:") {
		t.Error("usage should print on stderr")
	}
	errb.Reset()
	if code := Main([]string{"bogus"}, &out, &errb); code != ExitUsage {
		t.Errorf("unknown command should exit %d (usage), got %d", ExitUsage, code)
	}
	if code := Main([]string{"-badflag"}, &out, &errb); code != ExitUsage {
		t.Error("bad flag should exit 2")
	}
	// Runtime failures (valid command, bad input) exit 1, not 2.
	errb.Reset()
	if code := Main([]string{"-platform", "no-such-platform", "sweep"}, &out, &errb); code != ExitRuntime {
		t.Errorf("unknown platform should exit %d (runtime), got %d", ExitRuntime, code)
	}
	// Flags reach the command.
	out.Reset()
	errb.Reset()
	if code := Main([]string{"-platform", "xeon-phi", "-points", "8", "sweep"}, &out, &errb); code != 0 {
		t.Fatalf("sweep failed: %s", errb.String())
	}
	if !strings.Contains(out.String(), "Xeon Phi") {
		t.Error("platform flag ignored")
	}
}

func TestExportCommand(t *testing.T) {
	var buf bytes.Buffer
	opts := fastOpts()
	opts.SweepPoints = 6
	if err := Run("export", opts, machine.GTXTitan, &buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if !strings.HasPrefix(lines[0], "platform,kernel,precision") {
		t.Error("CSV header missing")
	}
	// All 12 platforms appear.
	for _, id := range []string{"gtx-titan", "xeon-phi", "arndale-gpu", "desktop-cpu"} {
		if !strings.Contains(buf.String(), id) {
			t.Errorf("export missing platform %s", id)
		}
	}
	// Every row has the full column count.
	for i, l := range lines {
		if got := len(strings.Split(l, ",")); got != 12 {
			t.Fatalf("row %d has %d columns", i, got)
		}
	}
	if len(lines) < 12*6 {
		t.Errorf("export suspiciously small: %d rows", len(lines))
	}
}

func TestMountainCommand(t *testing.T) {
	out := runCmd(t, "mountain", machine.XeonPhi)
	if !strings.Contains(out, "memory mountain") {
		t.Error("mountain output missing")
	}
}

func TestPlatformFileFlow(t *testing.T) {
	// Export a Table I platform, reload it through -platform-file, and
	// run the platform-scoped commands against it.
	dir := t.TempDir()
	path := dir + "/custom.json"
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := machine.ToJSON(f, machine.MustByID(machine.ArndaleGPU)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var out, errb bytes.Buffer
	if code := Main([]string{"-platform-file", path, "sweep"}, &out, &errb); code != 0 {
		t.Fatalf("sweep via platform-file: %s", errb.String())
	}
	if !strings.Contains(out.String(), "Arndale GPU") {
		t.Error("custom platform not used")
	}
	out.Reset()
	if code := Main([]string{"-platform-file", path, "roofline"}, &out, &errb); code != 0 {
		t.Fatalf("roofline via platform-file: %s", errb.String())
	}
	if !strings.Contains(out.String(), "time roofline") {
		t.Error("roofline output missing")
	}
	// Unsupported command with a platform file: the caller's mistake, so
	// it is a usage error, not a runtime failure.
	errb.Reset()
	if code := Main([]string{"-platform-file", path, "fig5"}, &out, &errb); code != ExitUsage {
		t.Errorf("fig5 with platform-file should exit %d (usage), got %d", ExitUsage, code)
	}
	if !strings.Contains(errb.String(), "does not support") {
		t.Error("error message should explain")
	}
	// Missing file.
	if code := Main([]string{"-platform-file", dir + "/nope.json", "sweep"}, &out, &errb); code != 1 {
		t.Error("missing file should fail")
	}
	// Malformed file.
	bad := dir + "/bad.json"
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := Main([]string{"-platform-file", bad, "sweep"}, &out, &errb); code != 1 {
		t.Error("malformed file should fail")
	}
}

// lockedBuffer is a goroutine-safe writer for daemon output.
type lockedBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *lockedBuffer) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuffer) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

func TestServeCommand(t *testing.T) {
	// Substitute a test-cancellable context for the signal-driven one.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	orig := serveContext
	serveContext = func() (context.Context, context.CancelFunc) {
		return context.WithCancel(ctx)
	}
	defer func() { serveContext = orig }()

	var out, errb lockedBuffer
	exit := make(chan int, 1)
	go func() {
		exit <- Main([]string{"serve", "-addr", "127.0.0.1:0"}, &out, &errb)
	}()

	// Wait for the startup line and extract the base URL.
	var base string
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && base == "" {
		if _, rest, ok := strings.Cut(out.String(), "listening on "); ok {
			if url, _, ok := strings.Cut(rest, "\n"); ok {
				base = strings.TrimSpace(url)
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	if base == "" {
		t.Fatalf("daemon never announced its address; stderr: %s", errb.String())
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d, err %v", resp.StatusCode, err)
	}
	if !strings.Contains(string(body), `"ok"`) {
		t.Errorf("healthz body = %s", body)
	}

	cancel() // deliver the "signal"
	select {
	case code := <-exit:
		if code != ExitOK {
			t.Errorf("serve exit code %d, want %d; stderr: %s", code, ExitOK, errb.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not shut down after cancellation")
	}
	if !strings.Contains(errb.String(), "drained") {
		t.Errorf("drain message missing from stderr: %s", errb.String())
	}
}

func TestServeUsageErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := Main([]string{"serve", "-nosuchflag"}, &out, &errb); code != ExitUsage {
		t.Errorf("bad serve flag should exit %d, got %d", ExitUsage, code)
	}
	errb.Reset()
	if code := Main([]string{"serve", "surplus"}, &out, &errb); code != ExitUsage {
		t.Errorf("surplus serve argument should exit %d, got %d", ExitUsage, code)
	}
	if !strings.Contains(errb.String(), "unexpected argument") {
		t.Errorf("stderr should name the surplus argument: %s", errb.String())
	}
}

func TestExperimentsMDDeterministic(t *testing.T) {
	// The published record must be reproducible: two runs with the same
	// options emit byte-identical EXPERIMENTS.md content.
	var a, b bytes.Buffer
	opts := fastOpts()
	if err := Run("experiments-md", opts, machine.GTXTitan, &a); err != nil {
		t.Fatal(err)
	}
	if err := Run("experiments-md", opts, machine.GTXTitan, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("experiments-md output is not deterministic")
	}
}
