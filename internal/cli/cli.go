// Package cli implements the archline command-line tool: one subcommand
// per table/figure of the paper plus utilities. It lives in an internal
// package (rather than package main) so every command path is unit
// tested.
package cli

import (
	"context"
	"encoding/csv"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"syscall"

	"archline/internal/experiments"
	"archline/internal/faults"
	"archline/internal/fit"
	"archline/internal/machine"
	"archline/internal/microbench"
	"archline/internal/model"
	"archline/internal/obs"
	"archline/internal/report"
	"archline/internal/server"
	"archline/internal/sim"
	"archline/internal/units"
)

// Exit codes: usage errors (bad flags, unknown commands) are
// distinguished from runtime failures so scripts can tell a typo from a
// genuinely failed computation.
const (
	ExitOK      = 0
	ExitRuntime = 1
	ExitUsage   = 2
)

// ErrUsage marks an error as the caller's mistake (unknown command,
// unsupported flag combination); Main maps it to ExitUsage.
var ErrUsage = errors.New("usage error")

// Usage is the help text.
const Usage = `usage: archline [flags] <command>

commands:
  table1     Table I: fit all twelve platforms and compare to published constants
  fig1       Fig. 1: GTX Titan vs Arndale GPU building blocks
  fig4       Fig. 4: capped vs uncapped model error distributions (K-S tests)
  fig5       Fig. 5: power vs intensity, all platforms
  fig6       Fig. 6: power under reduced caps
  fig7a      Fig. 7a: performance under reduced caps
  fig7b      Fig. 7b: energy efficiency under reduced caps
  scenarios  Sections V-B, V-C, V-D analyses
  dp         Double-precision energy analysis (Table I eps_d columns)
  network    Fig. 1 aggregate re-evaluated with interconnect costs
  dvfs       Energy-optimal frequency per intensity (DVFS extension)
  pi1        Constant-power reduction what-if (the conclusions' question)
  mountain   Memory mountain: bandwidth vs working set and stride (-platform)
  scaling    Strong/weak cluster scaling of the Arndale building block
  export     Dump every platform's suite measurements as CSV (released dataset)
  fit        Fit one platform (-platform) and print recovered constants
  measure    Fault-tolerant measure+fit for one platform (-platform, -faults, -fault-seed, -trace-out)
  sweep      Print one platform's model curves over intensity (-platform)
  roofline   ASCII time and energy rooflines for one platform (-platform)
  list       List the twelve platforms
  experiments-md  Emit EXPERIMENTS.md (paper-vs-measured record)
  all        Run everything in paper order
  serve      Run archlined, the HTTP/JSON query daemon (own flags; -h lists them)

exit codes: 0 success, 1 runtime failure, 2 usage error
`

// Main parses args (excluding the program name) and runs the command,
// writing output to stdout and diagnostics to stderr. It returns the
// process exit code.
func Main(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("archline", flag.ContinueOnError)
	fs.SetOutput(stderr)
	// fail reports an error on stderr and returns the process exit
	// code. A failed stderr write has no further recovery path.
	fail := func(err error) int {
		_, _ = fmt.Fprintln(stderr, "archline:", err)
		if errors.Is(err, ErrUsage) {
			return ExitUsage
		}
		return ExitRuntime
	}
	var (
		seed       = fs.Uint64("seed", 42, "simulation noise seed")
		points     = fs.Int("points", 25, "intensity sweep points per platform")
		replicates = fs.Int("replicates", 1, "suite replicates (fig4 uses 4 by default)")
		noiseless  = fs.Bool("noiseless", false, "disable measurement noise")
		workers    = fs.Int("workers", 0,
			"worker-pool width per fan-out level (0 = all CPUs); results are identical at any width")
		platform   = fs.String("platform", "gtx-titan", "platform ID for fit/sweep/roofline/measure")
		platFile   = fs.String("platform-file", "", "JSON platform description to use instead of -platform")
		faultsProf = fs.String("faults", "none", "fault-injection profile for measure: none, paper, harsh")
		faultSeed  = fs.Uint64("fault-seed", 7, "fault-schedule seed for measure (same seed, same faults)")
		traceOut   = fs.String("trace-out", "", "write the measure pipeline's span tree to this file as NDJSON")
	)
	fs.Usage = func() {
		_, _ = fmt.Fprint(stderr, Usage)
		_, _ = fmt.Fprintln(stderr, "flags:")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return ExitUsage
	}
	// serve takes its own flag set (daemon tuning is disjoint from the
	// experiment flags), so hand everything after the command to it.
	if fs.NArg() >= 1 && fs.Arg(0) == "serve" {
		return serveMain(fs.Args()[1:], stdout, stderr)
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return ExitUsage
	}
	opts := experiments.Options{
		Seed:        *seed,
		SweepPoints: *points,
		Noiseless:   *noiseless,
		Replicates:  *replicates,
		Workers:     *workers,
	}
	// measure carries fault-injection flags the generic dispatch does not
	// know about, so it is routed here (with -platform-file support).
	if fs.Arg(0) == "measure" {
		plat, err := loadPlatform(*platFile, machine.ID(*platform))
		if err != nil {
			return fail(err)
		}
		if err := measurePlatform(opts, plat, *faultsProf, *faultSeed, *traceOut, stdout); err != nil {
			return fail(err)
		}
		return ExitOK
	}
	if *platFile != "" {
		custom, err := loadPlatform(*platFile, "")
		if err != nil {
			return fail(err)
		}
		if err := RunOn(fs.Arg(0), opts, custom, stdout); err != nil {
			return fail(err)
		}
		return ExitOK
	}
	if err := Run(fs.Arg(0), opts, machine.ID(*platform), stdout); err != nil {
		return fail(err)
	}
	return ExitOK
}

// serveContext builds the daemon's run context. It is a variable so cli
// tests can substitute a cancellable context for the signal-driven one.
var serveContext = func() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

// serveMain runs the archlined daemon until SIGINT/SIGTERM.
func serveMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("archline serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", server.DefaultAddr, "listen address (host:port; port 0 is ephemeral)")
		entries     = fs.Int("cache-entries", server.DefaultCacheEntries, "response LRU cache capacity")
		timeout     = fs.Duration("timeout", server.DefaultRequestTimeout, "per-request processing deadline")
		maxBody     = fs.Int64("max-body", server.DefaultMaxBodyBytes, "request body size limit in bytes")
		drain       = fs.Duration("drain", server.DefaultDrainTimeout, "graceful-shutdown drain timeout")
		maxInflight = fs.Int("max-inflight", server.DefaultMaxInFlight,
			"concurrent-request ceiling before /v1 load shedding (negative disables)")
		batchWorkers = fs.Int("batch-workers", 0,
			"worker-pool width for /v1/batch item evaluation (0 = all CPUs)")
		chaosProf = fs.String("chaos", "",
			"chaos middleware fault profile (paper, harsh); off unless set explicitly")
		chaosSeed  = fs.Uint64("chaos-seed", 42, "seed for chaos draws (same seed, same chaos)")
		traceLog   = fs.String("trace-log", "", "write every finished request span to this file as NDJSON")
		pprofOn    = fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		jobWorkers = fs.Int("job-workers", 0,
			"concurrent async fit jobs (0 = default 2, clamped to the CPU count)")
		jobQueue = fs.Int("job-queue", 0,
			"queued-job cap beyond the running ones before POST /v1/fit sheds with 429 (0 = default 16, negative disables queueing)")
		jobTTL = fs.Duration("job-ttl", 0,
			"how long finished jobs stay pollable before eviction (0 = default 15m)")
		dataDir = fs.String("data-dir", "",
			"directory for the persistent platform registry; empty runs it in memory (uploads rejected)")
		regShards = fs.Int("registry-shards", 0,
			"consistent-hash shard count for the platform registry (0 = default 8)")
		aggFlush = fs.Duration("agg-flush", server.DefaultAggFlushInterval,
			"metric aggregation drain cadence (staleness bound for /metrics)")
	)
	if err := fs.Parse(args); err != nil {
		return ExitUsage
	}
	if fs.NArg() != 0 {
		_, _ = fmt.Fprintf(stderr, "archline serve: unexpected argument %q\n", fs.Arg(0))
		return ExitUsage
	}
	// An unknown chaos profile is the caller's typo: catch it before the
	// daemon boots rather than failing at listen time.
	if _, err := faults.ByName(*chaosProf); err != nil {
		_, _ = fmt.Fprintln(stderr, "archline serve:", err)
		return ExitUsage
	}
	ctx, cancel := serveContext()
	defer cancel()
	cfg := server.Config{
		Addr:             *addr,
		MaxBodyBytes:     *maxBody,
		RequestTimeout:   *timeout,
		CacheEntries:     *entries,
		DrainTimeout:     *drain,
		MaxInFlight:      *maxInflight,
		BatchWorkers:     *batchWorkers,
		ChaosProfile:     *chaosProf,
		ChaosSeed:        *chaosSeed,
		LogWriter:        stderr,
		EnablePprof:      *pprofOn,
		JobWorkers:       *jobWorkers,
		JobQueueDepth:    *jobQueue,
		JobTTL:           *jobTTL,
		DataDir:          *dataDir,
		RegistryShards:   *regShards,
		AggFlushInterval: *aggFlush,
	}
	var tf *os.File
	if *traceLog != "" {
		var err error
		tf, err = os.Create(*traceLog)
		if err != nil {
			_, _ = fmt.Fprintln(stderr, "archline serve:", err)
			return ExitRuntime
		}
		cfg.TraceWriter = tf
	}
	err := server.Run(ctx, cfg, stdout, stderr)
	if tf != nil {
		if cerr := tf.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		_, _ = fmt.Fprintln(stderr, "archline serve:", err)
		return ExitRuntime
	}
	return ExitOK
}

// RunOn dispatches the per-platform subcommands against a custom
// (JSON-loaded) platform. Only the platform-scoped commands are
// supported; the table/figure reproductions are tied to the Table I set.
func RunOn(cmd string, opts experiments.Options, plat *machine.Platform, w io.Writer) error {
	switch cmd {
	case "fit":
		return fitPlatform(opts, plat, w)
	case "sweep":
		return sweepPlatform(plat, w)
	case "roofline":
		return rooflinePlatform(plat, w)
	default:
		return fmt.Errorf("%w: command %q does not support -platform-file (use fit, sweep, roofline, or measure)", ErrUsage, cmd)
	}
}

// renderer is anything that formats itself.
type renderer interface{ Render() string }

// Run dispatches one subcommand, writing its artefact to w.
func Run(cmd string, opts experiments.Options, plat machine.ID, w io.Writer) error {
	render := func(f func() (renderer, error)) error {
		r, err := f()
		if err != nil {
			return err
		}
		_, err = fmt.Fprintln(w, r.Render())
		return err
	}
	switch cmd {
	case "table1":
		return render(func() (renderer, error) { r, err := experiments.TableI(opts); return r, err })
	case "fig1":
		return render(func() (renderer, error) { r, err := experiments.Fig1(opts); return r, err })
	case "fig4":
		if opts.Replicates <= 1 {
			opts.Replicates = 4
		}
		return render(func() (renderer, error) { r, err := experiments.Fig4(opts); return r, err })
	case "fig5":
		return render(func() (renderer, error) { r, err := experiments.Fig5(opts); return r, err })
	case "fig6":
		return render(func() (renderer, error) {
			r, err := experiments.Throttle(experiments.ThrottlePower)
			return r, err
		})
	case "fig7a":
		return render(func() (renderer, error) {
			r, err := experiments.Throttle(experiments.ThrottlePerf)
			return r, err
		})
	case "fig7b":
		return render(func() (renderer, error) {
			r, err := experiments.Throttle(experiments.ThrottleEff)
			return r, err
		})
	case "scenarios":
		return render(func() (renderer, error) { r, err := experiments.Scenarios(); return r, err })
	case "dp":
		return render(func() (renderer, error) { r, err := experiments.DoublePrecision(); return r, err })
	case "network":
		return render(func() (renderer, error) { r, err := experiments.Network(); return r, err })
	case "dvfs":
		return render(func() (renderer, error) { r, err := experiments.DVFSAnalysis(); return r, err })
	case "pi1":
		return render(func() (renderer, error) { r, err := experiments.Pi1(); return r, err })
	case "mountain":
		return render(func() (renderer, error) { r, err := experiments.Mountain(plat, opts); return r, err })
	case "export":
		return exportAll(opts, w)
	case "scaling":
		return render(func() (renderer, error) { r, err := experiments.Scaling(); return r, err })
	case "experiments-md":
		return experiments.WriteExperimentsMD(w, opts)
	case "fit":
		return fitOne(opts, plat, w)
	case "sweep":
		return sweepOne(plat, w)
	case "roofline":
		return roofline(plat, w)
	case "list":
		return list(w)
	case "all":
		for _, c := range []string{"table1", "fig1", "fig4", "fig5", "fig6", "fig7a", "fig7b",
			"scenarios", "dp", "network", "dvfs", "pi1"} {
			if _, err := fmt.Fprintf(w, "==================== %s ====================\n", c); err != nil {
				return err
			}
			if err := Run(c, opts, plat, w); err != nil {
				return err
			}
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("%w: unknown command %q", ErrUsage, cmd)
	}
}

func fitOne(opts experiments.Options, id machine.ID, w io.Writer) error {
	plat, err := machine.ByID(id)
	if err != nil {
		return err
	}
	return fitPlatform(opts, plat, w)
}

func fitPlatform(opts experiments.Options, plat *machine.Platform, w io.Writer) error {
	cfg := microbench.DefaultConfig()
	if opts.SweepPoints > 0 {
		cfg.SweepPoints = opts.SweepPoints
	}
	cfg.Workers = opts.Workers
	suite, err := microbench.Run(plat, cfg, sim.Options{Seed: opts.Seed, Noiseless: opts.Noiseless})
	if err != nil {
		return err
	}
	pf, err := fit.Platform(suite, fit.Options{Seed: opts.Seed})
	if err != nil {
		return err
	}
	return renderFit(plat, pf, w)
}

// renderFit prints the fitted-vs-published constants table for one
// platform fit (shared by the fit and measure commands).
func renderFit(plat *machine.Platform, pf *fit.PlatformFit, w io.Writer) error {
	tb := &report.Table{
		Title:   fmt.Sprintf("%s: fitted constants (published Table I values in parentheses)", plat.Name),
		Headers: []string{"parameter", "fitted", "published"},
	}
	tb.AddRow("peak flop/s", units.FormatFlopRate(pf.Params.PeakFlopRate()),
		units.FormatFlopRate(plat.Sustained.SingleRate))
	tb.AddRow("mem bandwidth", units.FormatByteRate(pf.Params.PeakByteRate()),
		units.FormatByteRate(plat.Sustained.MemBW))
	tb.AddRow("eps_s", units.FormatEnergyPerFlop(pf.Params.EpsFlop),
		units.FormatEnergyPerFlop(plat.Single.EpsFlop))
	if plat.SupportsDouble() {
		tb.AddRow("eps_d", units.FormatEnergyPerFlop(pf.DoubleEps),
			units.FormatEnergyPerFlop(plat.DoubleEps))
	}
	tb.AddRow("eps_mem", units.FormatEnergyPerByte(pf.Params.EpsMem),
		units.FormatEnergyPerByte(plat.Single.EpsMem))
	tb.AddRow("pi_1", units.FormatPower(pf.Params.Pi1), units.FormatPower(plat.Single.Pi1))
	tb.AddRow("delta_pi", units.FormatPower(pf.Params.DeltaPi), units.FormatPower(plat.Single.DeltaPi))
	if pf.L1 != nil && plat.L1 != nil {
		tb.AddRow("eps_L1", units.FormatEnergyPerByte(pf.L1.Eps), units.FormatEnergyPerByte(plat.L1.Eps))
	}
	if pf.L2 != nil && plat.L2 != nil {
		tb.AddRow("eps_L2", units.FormatEnergyPerByte(pf.L2.Eps), units.FormatEnergyPerByte(plat.L2.Eps))
	}
	if pf.Rand != nil && plat.Rand != nil {
		tb.AddRow("eps_rand", units.FormatEnergyPerAccess(pf.Rand.Eps),
			units.FormatEnergyPerAccess(plat.Rand.Eps))
	}
	if _, err := fmt.Fprintln(w, tb.Render()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "fit RMS log-residual: %.4f\n", pf.Residual)
	return err
}

// loadPlatform resolves the platform under measurement: a JSON file when
// path is set, otherwise the Table I entry for id.
func loadPlatform(path string, id machine.ID) (*machine.Platform, error) {
	if path == "" {
		return machine.ByID(id)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	plat, err := machine.FromJSON(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return plat, err
}

// measurePlatform runs the fault-tolerant measurement pipeline on one
// platform — repeat measurements with retry under the requested fault
// profile, trace sanitization, outlier-trimmed aggregation — then fits
// the model constants and reports per-kernel quality plus the overall
// degradation grade. With traceOut set, the whole pipeline runs under a
// root span and the finished span tree is written there as NDJSON.
func measurePlatform(opts experiments.Options, plat *machine.Platform, profile string,
	faultSeed uint64, traceOut string, w io.Writer) error {
	prof, err := faults.ByName(profile)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrUsage, err)
	}
	ctx := context.Background()
	var tracer *obs.Tracer
	var tf *os.File
	if traceOut != "" {
		tf, err = os.Create(traceOut)
		if err != nil {
			return err
		}
		tracer = obs.NewTracer(tf)
		ctx = obs.WithTracer(ctx, tracer)
	}
	// The pipeline runs in a closure so the root span has ended (and
	// exported) before the trace file is closed and summarized.
	err = func() error {
		ctx, span := obs.Start(ctx, "archline.measure",
			obs.String("platform", string(plat.ID)), obs.String("profile", prof.Name))
		defer span.End()
		cfg := microbench.DefaultConfig()
		if opts.SweepPoints > 0 {
			cfg.SweepPoints = opts.SweepPoints
		}
		simOpts := sim.Options{Seed: opts.Seed, Noiseless: opts.Noiseless, Sanitize: true}
		if prof.Enabled() {
			simOpts.Faults = faults.New(prof, faultSeed)
		}
		rc := microbench.RobustConfig{}
		if opts.Replicates > 1 {
			rc.Repeats = opts.Replicates
		}
		res, rs, err := microbench.RunRobustContext(ctx, plat, cfg, simOpts, rc)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s: robust measurement, fault profile %s (fault seed %d)\n\n",
			plat.Name, prof.Name, faultSeed); err != nil {
			return err
		}
		qt := &report.Table{
			Title:   "per-kernel measurement quality",
			Headers: []string{"kernel", "intensity", "power", "grade", "gaps", "spikes", "stuck", "repaired"},
		}
		for _, m := range res.Measurements {
			q := m.Quality
			qt.AddRow(m.Kernel, units.FormatIntensity(m.Intensity), units.FormatPower(m.AvgPower),
				q.Grade.String(), strconv.Itoa(q.GapsFilled), strconv.Itoa(q.SpikesRemoved),
				strconv.Itoa(q.StuckRepaired), fmt.Sprintf("%.1f%%", 100*q.RepairedFrac))
		}
		if _, err := fmt.Fprintln(w, qt.Render()); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "suite: %s\n\n", rs); err != nil {
			return err
		}
		pf, err := fit.PlatformContext(ctx, res, fit.Options{Seed: opts.Seed})
		if err != nil {
			return err
		}
		if err := renderFit(plat, pf, w); err != nil {
			return err
		}
		robust := "no"
		if pf.RobustApplied {
			robust = "yes (Huber re-fit)"
		}
		_, err = fmt.Fprintf(w, "degradation grade: %s (contamination %.1f%%, robust re-fit: %s)\n",
			pf.Grade, 100*pf.Contamination, robust)
		return err
	}()
	if tf != nil {
		if cerr := tf.Close(); err == nil {
			err = cerr
		}
		if err == nil {
			st := tracer.Stats()
			_, err = fmt.Fprintf(w, "trace: %d spans, %d events -> %s\n",
				st.Ended, st.Events, traceOut)
		}
	}
	return err
}

func sweepOne(id machine.ID, w io.Writer) error {
	plat, err := machine.ByID(id)
	if err != nil {
		return err
	}
	return sweepPlatform(plat, w)
}

func sweepPlatform(plat *machine.Platform, w io.Writer) error {
	p := plat.Single
	if _, err := fmt.Fprintf(w, "%s model sweep\n%s\n\n", plat.Name, report.PanelHeader(plat)); err != nil {
		return err
	}
	tb := &report.Table{
		Headers: []string{"intensity", "regime", "flop/s", "flop/J", "power", "throttle"},
	}
	for _, i := range model.LogSpace(0.125, 512, 25) {
		tb.AddRow(
			units.FormatIntensity(i),
			p.RegimeAt(i).Letter(),
			units.FormatFlopRate(p.FlopRateAt(i)),
			units.FormatFlopsPerJoule(p.FlopsPerJouleAt(i)),
			units.FormatPower(p.AvgPowerAt(i)),
			fmt.Sprintf("%.2fx", p.ThrottleFactor(i)),
		)
	}
	_, err := fmt.Fprintln(w, tb.Render())
	return err
}

// roofline draws the platform's time roofline (flop/s vs intensity) and
// energy roofline (flop/J vs intensity) as ASCII plots — the paper's two
// core curves side by side.
func roofline(id machine.ID, w io.Writer) error {
	plat, err := machine.ByID(id)
	if err != nil {
		return err
	}
	return rooflinePlatform(plat, w)
}

func rooflinePlatform(plat *machine.Platform, w io.Writer) error {
	p := plat.Single
	grid := model.LogSpace(0.125, 512, 49)
	timeSeries := report.PlotSeries{Name: "flop/s (capped)", Marker: '*'}
	timeFree := report.PlotSeries{Name: "flop/s (uncapped)", Marker: '.'}
	energySeries := report.PlotSeries{Name: "flop/J", Marker: 'o'}
	for _, i := range grid {
		x := i.Ratio()
		timeSeries.X = append(timeSeries.X, x)
		timeSeries.Y = append(timeSeries.Y, float64(p.FlopRateAt(i)))
		timeFree.X = append(timeFree.X, x)
		timeFree.Y = append(timeFree.Y, float64(p.FlopRateAtUncapped(i)))
		energySeries.X = append(energySeries.X, x)
		energySeries.Y = append(energySeries.Y, float64(p.FlopsPerJouleAt(i)))
	}
	if _, err := fmt.Fprintf(w, "%s rooflines\n%s\n\n", plat.Name, report.PanelHeader(plat)); err != nil {
		return err
	}
	tp := &report.Plot{
		Title:  "time roofline",
		XLabel: "intensity (flop:Byte)",
		LogY:   true, Height: 14,
		Series: []report.PlotSeries{timeSeries, timeFree},
	}
	if _, err := fmt.Fprintln(w, tp.Render()); err != nil {
		return err
	}
	ep := &report.Plot{
		Title:  "energy roofline",
		XLabel: "intensity (flop:Byte)",
		LogY:   true, Height: 14,
		Series: []report.PlotSeries{energySeries},
	}
	if _, err := fmt.Fprintln(w, ep.Render()); err != nil {
		return err
	}
	var err error
	if lo, hi, ok := p.CapBindingRange(); ok {
		_, err = fmt.Fprintf(w, "power cap binds for I in [%s, %s]\n",
			units.FormatIntensity(lo), units.FormatIntensity(hi))
	} else {
		_, err = fmt.Fprintln(w, "power cap never binds on this platform")
	}
	return err
}

func list(w io.Writer) error {
	tb := &report.Table{
		Title: "Table I platforms",
		Headers: []string{"id", "name", "processor", "uarch", "class",
			"peak SP", "peak bw", "peak flop/J"},
	}
	for _, p := range machine.All() {
		tb.AddRow(string(p.ID), p.Name, p.Processor, p.Microarch, p.Class.String(),
			units.FormatFlopRate(units.FlopRate(p.Vendor.Single)),
			units.FormatByteRate(units.ByteRate(p.Vendor.MemBW)),
			units.FormatFlopsPerJoule(p.Single.PeakFlopsPerJoule()))
	}
	if _, err := fmt.Fprintln(w, tb.Render()); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w, `run "archline fit -platform <id>" to fit one platform, "archline all" for every figure`)
	return err
}

// exportAll runs the full microbenchmark suite on every platform and
// streams the pooled measurements as one CSV — the reproduction's
// analogue of the paper's publicly released measurement data.
func exportAll(opts experiments.Options, w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"platform", "kernel", "precision", "pattern", "level",
		"W_flops", "Q_bytes", "accesses", "intensity", "time_s", "energy_J", "power_W"}
	if err := cw.Write(header); err != nil {
		return err
	}
	cfg := microbench.DefaultConfig()
	if opts.SweepPoints > 0 {
		cfg.SweepPoints = opts.SweepPoints
	}
	cfg.Workers = opts.Workers
	for _, plat := range machine.All() {
		res, err := microbench.Run(plat, cfg, sim.Options{Seed: opts.Seed, Noiseless: opts.Noiseless})
		if err != nil {
			return err
		}
		for _, m := range res.Measurements {
			rec := []string{
				string(m.Platform), m.Kernel, m.Precision.String(), m.Pattern.String(),
				m.Level.String(),
				strconv.FormatFloat(m.W.Count(), 'g', -1, 64),
				strconv.FormatFloat(m.Q.Count(), 'g', -1, 64),
				strconv.FormatFloat(m.Accesses.Count(), 'g', -1, 64),
				strconv.FormatFloat(m.Intensity.Ratio(), 'g', -1, 64),
				strconv.FormatFloat(m.Time.Seconds(), 'g', -1, 64),
				strconv.FormatFloat(m.Energy.Joules(), 'g', -1, 64),
				strconv.FormatFloat(m.AvgPower.Watts(), 'g', -1, 64),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
