package cli

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// spanLine is the NDJSON wire form the trace tests decode.
type spanLine struct {
	Trace  string         `json:"trace"`
	Span   uint64         `json:"span"`
	Parent uint64         `json:"parent"`
	Name   string         `json:"name"`
	Start  string         `json:"start"`
	DurMS  float64        `json:"dur_ms"`
	Events []spanEvent    `json:"events"`
	Attrs  map[string]any `json:"attrs"`
}

type spanEvent struct {
	Name  string         `json:"name"`
	Attrs map[string]any `json:"attrs"`
}

// TestMeasureTraceOut runs the full fault-injected measure pipeline with
// -trace-out and checks the exported NDJSON is a well-formed span tree:
// every line parses, every parent resolves, one trace ID covers the
// whole run, the measure→sanitize→fit layers all appear, and at least
// one fault retry or Huber re-fit event survives in the trace.
func TestMeasureTraceOut(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.ndjson")
	var out, errb bytes.Buffer
	code := Main([]string{"-platform", "gtx-titan", "-points", "10",
		"-faults", "paper", "-fault-seed", "1", "-trace-out", path, "measure"}, &out, &errb)
	if code != ExitOK {
		t.Fatalf("measure -trace-out exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "trace: ") {
		t.Errorf("stdout missing trace summary line: %s", out.String())
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	byID := map[uint64]spanLine{}
	var spans []spanLine
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var s spanLine
		if err := json.Unmarshal([]byte(line), &s); err != nil {
			t.Fatalf("trace line is not JSON: %v (%q)", err, line)
		}
		spans = append(spans, s)
		byID[s.Span] = s
	}
	if len(spans) < 10 {
		t.Fatalf("only %d spans exported; want a full pipeline tree", len(spans))
	}

	names := map[string]int{}
	events := map[string]int{}
	var roots int
	for _, s := range spans {
		names[s.Name]++
		for _, e := range s.Events {
			events[e.Name]++
		}
		if s.Trace != spans[0].Trace {
			t.Errorf("span %d has trace %q, want single trace %q", s.Span, s.Trace, spans[0].Trace)
		}
		if s.Parent == 0 {
			roots++
			continue
		}
		if _, ok := byID[s.Parent]; !ok {
			t.Errorf("span %d (%s) has unresolved parent %d", s.Span, s.Name, s.Parent)
		}
	}
	if roots != 1 {
		t.Errorf("span tree has %d roots, want exactly 1 (archline.measure)", roots)
	}
	for _, want := range []string{"archline.measure", "microbench.suite",
		"microbench.kernel", "sim.measure", "powermon.sanitize", "fit.platform"} {
		if names[want] == 0 {
			t.Errorf("trace missing %q spans; got %v", want, names)
		}
	}
	if events["fault.retry"]+events["huber.refit"] == 0 {
		t.Errorf("trace has neither fault.retry nor huber.refit events; got %v", events)
	}
}

// TestMeasureTraceDeterministic re-runs the same traced measurement and
// compares the two files with timestamps and durations stripped: the
// span tree (ids, names, parents, attrs, events) must be identical.
func TestMeasureTraceDeterministic(t *testing.T) {
	run := func(path string) []string {
		var out, errb bytes.Buffer
		code := Main([]string{"-platform", "gtx-titan", "-points", "10",
			"-faults", "paper", "-fault-seed", "1", "-trace-out", path, "measure"}, &out, &errb)
		if code != ExitOK {
			t.Fatalf("measure exit %d, stderr: %s", code, errb.String())
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var shapes []string
		for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
			var s spanLine
			if err := json.Unmarshal([]byte(line), &s); err != nil {
				t.Fatal(err)
			}
			s.Start, s.DurMS = "", 0
			shape, err := json.Marshal(s)
			if err != nil {
				t.Fatal(err)
			}
			shapes = append(shapes, string(shape))
		}
		return shapes
	}
	dir := t.TempDir()
	a := run(filepath.Join(dir, "a.ndjson"))
	b := run(filepath.Join(dir, "b.ndjson"))
	if strings.Join(a, "\n") != strings.Join(b, "\n") {
		t.Error("span tree differs across identical seeded runs")
	}
}

// TestServeTraceLogAndPprof boots the daemon with -trace-log and -pprof:
// the profile index must be served, and each handled request must land
// in the trace log as an http.* span.
func TestServeTraceLogAndPprof(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	orig := serveContext
	serveContext = func() (context.Context, context.CancelFunc) {
		return context.WithCancel(ctx)
	}
	defer func() { serveContext = orig }()

	tracePath := filepath.Join(t.TempDir(), "spans.ndjson")
	var out, errb lockedBuffer
	exit := make(chan int, 1)
	go func() {
		exit <- Main([]string{"serve", "-addr", "127.0.0.1:0",
			"-trace-log", tracePath, "-pprof"}, &out, &errb)
	}()

	var base string
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && base == "" {
		if _, rest, ok := strings.Cut(out.String(), "listening on "); ok {
			if url, _, ok := strings.Cut(rest, "\n"); ok {
				base = strings.TrimSpace(url)
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	if base == "" {
		t.Fatalf("daemon never announced its address; stderr: %s", errb.String())
	}

	for _, path := range []string{"/healthz", "/debug/pprof/"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d, want 200", path, resp.StatusCode)
		}
	}

	cancel()
	select {
	case code := <-exit:
		if code != ExitOK {
			t.Errorf("serve exit code %d; stderr: %s", code, errb.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not shut down after cancellation")
	}

	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"name":"http./healthz"`) {
		t.Errorf("trace log missing the handled request's span: %s", data)
	}
}
