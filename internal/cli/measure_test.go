package cli

import (
	"bytes"
	"context"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"archline/internal/machine"
)

// measureArgs builds a fast measure invocation.
func measureArgs(extra ...string) []string {
	args := []string{"-platform", "gtx-titan", "-points", "10"}
	args = append(args, extra...)
	return append(args, "measure")
}

func TestMeasureCommandClean(t *testing.T) {
	var out, errb bytes.Buffer
	if code := Main(measureArgs(), &out, &errb); code != ExitOK {
		t.Fatalf("measure exit %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{
		"fault profile none",
		"per-kernel measurement quality",
		"suite: repeats 3, retries 0, discarded 0, worst grade A",
		"fitted", "published", "pi_1",
		"degradation grade:",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("measure output missing %q", want)
		}
	}
}

func TestMeasureCommandPaperFaults(t *testing.T) {
	var out, errb bytes.Buffer
	code := Main(measureArgs("-faults", "paper", "-fault-seed", "7"), &out, &errb)
	if code != ExitOK {
		t.Fatalf("measure -faults paper exit %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{"fault profile paper (fault seed 7)", "degradation grade:"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("measure output missing %q", want)
		}
	}
}

func TestMeasureCommandDeterministic(t *testing.T) {
	run := func() string {
		var out, errb bytes.Buffer
		if code := Main(measureArgs("-faults", "paper"), &out, &errb); code != ExitOK {
			t.Fatalf("measure exit %d, stderr: %s", code, errb.String())
		}
		return out.String()
	}
	if run() != run() {
		t.Error("measure output is not deterministic for a fixed fault seed")
	}
}

func TestMeasureUnknownProfile(t *testing.T) {
	var out, errb bytes.Buffer
	if code := Main(measureArgs("-faults", "volcanic"), &out, &errb); code != ExitUsage {
		t.Errorf("unknown fault profile should exit %d (usage), got %d", ExitUsage, code)
	}
	if !strings.Contains(errb.String(), "volcanic") {
		t.Errorf("stderr should name the bad profile: %s", errb.String())
	}
}

func TestMeasurePlatformFile(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/custom.json"
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := machine.ToJSON(f, machine.MustByID(machine.ArndaleGPU)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	var out, errb bytes.Buffer
	code := Main([]string{"-platform-file", path, "-points", "10", "measure"}, &out, &errb)
	if code != ExitOK {
		t.Fatalf("measure via platform-file exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "Arndale GPU") {
		t.Error("custom platform not measured")
	}
}

func TestServeResilienceFlags(t *testing.T) {
	var out, errb bytes.Buffer
	// An unknown chaos profile is rejected before the daemon boots.
	if code := Main([]string{"serve", "-chaos", "volcanic"}, &out, &errb); code != ExitUsage {
		t.Errorf("unknown chaos profile should exit %d (usage), got %d", ExitUsage, code)
	}
	if !strings.Contains(errb.String(), "volcanic") {
		t.Errorf("stderr should name the bad profile: %s", errb.String())
	}
}

// TestServeChaosMode boots the daemon with -chaos, -chaos-seed, and
// -max-inflight: the startup banner must announce chaos mode, the
// chaos-exempt liveness probe must stay 200, and shutdown must drain.
func TestServeChaosMode(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	orig := serveContext
	serveContext = func() (context.Context, context.CancelFunc) {
		return context.WithCancel(ctx)
	}
	defer func() { serveContext = orig }()

	var out, errb lockedBuffer
	exit := make(chan int, 1)
	go func() {
		exit <- Main([]string{"serve", "-addr", "127.0.0.1:0",
			"-chaos", "paper", "-chaos-seed", "9", "-max-inflight", "8"}, &out, &errb)
	}()

	var base string
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && base == "" {
		if _, rest, ok := strings.Cut(out.String(), "listening on "); ok {
			if url, _, ok := strings.Cut(rest, "\n"); ok {
				base = strings.TrimSpace(url)
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	if base == "" {
		t.Fatalf("daemon never announced its address; stderr: %s", errb.String())
	}
	if !strings.Contains(out.String(), "CHAOS MODE enabled (profile paper, seed 9)") {
		t.Errorf("startup output missing chaos banner: %s", out.String())
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz under chaos = %d, want 200 (exempt route)", resp.StatusCode)
	}

	cancel()
	select {
	case code := <-exit:
		if code != ExitOK {
			t.Errorf("serve exit code %d; stderr: %s", code, errb.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not shut down after cancellation")
	}
}
