package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// waitState polls until the job reaches want or the deadline passes.
func waitState(t *testing.T, e *Engine, id string, want State) Snapshot {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		snap, ok := e.Get(id)
		if !ok {
			t.Fatalf("job %s disappeared while waiting for %v", id, want)
		}
		if snap.State == want {
			return snap
		}
		if snap.State.Terminal() && !want.Terminal() {
			t.Fatalf("job %s reached terminal %v while waiting for %v (err=%v)", id, snap.State, want, snap.Err)
		}
		time.Sleep(time.Millisecond)
	}
	snap, _ := e.Get(id)
	t.Fatalf("job %s stuck in %v, want %v", id, snap.State, want)
	return Snapshot{}
}

func TestStateStringsAndTerminal(t *testing.T) {
	want := map[State]string{
		Queued: "queued", Running: "running", Done: "done",
		Failed: "failed", Canceled: "canceled",
	}
	if len(States) != len(want) {
		t.Fatalf("States has %d entries, want %d", len(States), len(want))
	}
	for _, s := range States {
		if s.String() != want[s] {
			t.Errorf("State(%d).String() = %q, want %q", int(s), s.String(), want[s])
		}
		wantTerminal := s == Done || s == Failed || s == Canceled
		if s.Terminal() != wantTerminal {
			t.Errorf("State %v Terminal() = %v, want %v", s, s.Terminal(), wantTerminal)
		}
	}
	if got := State(99).String(); got != "state(99)" {
		t.Errorf("unknown state renders %q", got)
	}
}

func TestJobRunsToDone(t *testing.T) {
	e := New(Config{})
	defer e.Close(context.Background())
	id, err := e.Submit(context.Background(), "ok", func(ctx context.Context, p *Progress) (any, error) {
		p.Emit("halfway", map[string]any{"pct": 50})
		return 42, nil
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	snap := waitState(t, e, id, Done)
	if snap.Result != 42 {
		t.Errorf("Result = %v, want 42", snap.Result)
	}
	if snap.Err != nil {
		t.Errorf("Err = %v, want nil", snap.Err)
	}
	if snap.Name != "ok" {
		t.Errorf("Name = %q", snap.Name)
	}
	if snap.Created.IsZero() || snap.Started.IsZero() || snap.Ended.IsZero() {
		t.Errorf("timestamps not all set: %+v", snap)
	}
	// queued, running, halfway, state = 4 events.
	if snap.Events != 4 {
		t.Errorf("Events = %d, want 4", snap.Events)
	}
}

func TestJobFailure(t *testing.T) {
	e := New(Config{})
	defer e.Close(context.Background())
	boom := errors.New("boom")
	id, err := e.Submit(context.Background(), "fail", func(ctx context.Context, p *Progress) (any, error) {
		return nil, boom
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	snap := waitState(t, e, id, Failed)
	if !errors.Is(snap.Err, boom) {
		t.Errorf("Err = %v, want %v", snap.Err, boom)
	}
	st := e.Stats()
	if st.Failed != 1 {
		t.Errorf("Stats.Failed = %d, want 1", st.Failed)
	}
}

func TestCancelRunningJob(t *testing.T) {
	e := New(Config{Workers: 1})
	defer e.Close(context.Background())
	started := make(chan struct{})
	id, err := e.Submit(context.Background(), "block", func(ctx context.Context, p *Progress) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-started
	if _, ok := e.Cancel(id); !ok {
		t.Fatal("Cancel: job not found")
	}
	snap := waitState(t, e, id, Canceled)
	if !errors.Is(snap.Err, context.Canceled) {
		t.Errorf("Err = %v, want context.Canceled", snap.Err)
	}
}

func TestCancelQueuedJobIsImmediate(t *testing.T) {
	e := New(Config{Workers: 1})
	defer e.Close(context.Background())
	release := make(chan struct{})
	started := make(chan struct{})
	blocker, err := e.Submit(context.Background(), "blocker", func(ctx context.Context, p *Progress) (any, error) {
		close(started)
		<-release
		return nil, nil
	})
	if err != nil {
		t.Fatalf("Submit blocker: %v", err)
	}
	<-started
	queued, err := e.Submit(context.Background(), "queued", func(ctx context.Context, p *Progress) (any, error) {
		t.Error("queued job ran despite cancellation")
		return nil, nil
	})
	if err != nil {
		t.Fatalf("Submit queued: %v", err)
	}
	snap, ok := e.Cancel(queued)
	if !ok {
		t.Fatal("Cancel: job not found")
	}
	// Queued jobs finish synchronously inside Cancel.
	if snap.State != Canceled {
		t.Errorf("post-cancel state = %v, want Canceled", snap.State)
	}
	close(release)
	waitState(t, e, blocker, Done)
}

func TestCancelTerminalJobIsNoop(t *testing.T) {
	e := New(Config{})
	defer e.Close(context.Background())
	id, _ := e.Submit(context.Background(), "ok", func(ctx context.Context, p *Progress) (any, error) {
		return "kept", nil
	})
	waitState(t, e, id, Done)
	snap, ok := e.Cancel(id)
	if !ok || snap.State != Done || snap.Result != "kept" {
		t.Errorf("Cancel on terminal job: ok=%v snap=%+v", ok, snap)
	}
}

func TestCancelUnknownJob(t *testing.T) {
	e := New(Config{})
	defer e.Close(context.Background())
	if _, ok := e.Cancel("job-nope"); ok {
		t.Error("Cancel returned ok for unknown job")
	}
	if _, ok := e.Get("job-nope"); ok {
		t.Error("Get returned ok for unknown job")
	}
}

func TestQueueFullSheds(t *testing.T) {
	e := New(Config{Workers: 1, QueueDepth: 1})
	defer e.Close(context.Background())
	release := make(chan struct{})
	started := make(chan struct{})
	block := func(ctx context.Context, p *Progress) (any, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		select {
		case <-release:
			return nil, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	// Worker slot + one queue slot fill; the third submit must shed.
	if _, err := e.Submit(context.Background(), "run", block); err != nil {
		t.Fatalf("Submit 1: %v", err)
	}
	<-started
	if _, err := e.Submit(context.Background(), "wait", block); err != nil {
		t.Fatalf("Submit 2: %v", err)
	}
	if _, err := e.Submit(context.Background(), "shed", block); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("Submit 3 err = %v, want ErrQueueFull", err)
	}
	st := e.Stats()
	if st.Shed != 1 {
		t.Errorf("Stats.Shed = %d, want 1", st.Shed)
	}
	if st.Submitted != 2 {
		t.Errorf("Stats.Submitted = %d, want 2", st.Submitted)
	}
	close(release)
}

func TestSubmitAfterCloseRefused(t *testing.T) {
	e := New(Config{})
	if err := e.Close(context.Background()); err != nil {
		t.Fatalf("Close: %v", err)
	}
	_, err := e.Submit(context.Background(), "late", func(ctx context.Context, p *Progress) (any, error) {
		return nil, nil
	})
	if !errors.Is(err, ErrClosed) {
		t.Errorf("Submit after Close err = %v, want ErrClosed", err)
	}
}

func TestCloseCancelsQueuedAndWaitsForRunning(t *testing.T) {
	e := New(Config{Workers: 1})
	release := make(chan struct{})
	started := make(chan struct{})
	running, err := e.Submit(context.Background(), "running", func(ctx context.Context, p *Progress) (any, error) {
		close(started)
		<-release
		return "finished", nil
	})
	if err != nil {
		t.Fatalf("Submit running: %v", err)
	}
	<-started
	queued, err := e.Submit(context.Background(), "queued", func(ctx context.Context, p *Progress) (any, error) {
		return nil, nil
	})
	if err != nil {
		t.Fatalf("Submit queued: %v", err)
	}
	closed := make(chan error, 1)
	go func() { closed <- e.Close(context.Background()) }()
	// The queued job must land Canceled without ever running.
	waitState(t, e, queued, Canceled)
	close(release)
	if err := <-closed; err != nil {
		t.Fatalf("Close: %v", err)
	}
	snap, ok := e.Get(running)
	if !ok || snap.State != Done || snap.Result != "finished" {
		t.Errorf("running job after drain: ok=%v snap=%+v", ok, snap)
	}
}

func TestCloseDeadlineCancelsRunning(t *testing.T) {
	e := New(Config{Workers: 1})
	started := make(chan struct{})
	id, err := e.Submit(context.Background(), "slow", func(ctx context.Context, p *Progress) (any, error) {
		close(started)
		<-ctx.Done() // only stops when drain cancels it
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := e.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
	snap, ok := e.Get(id)
	if !ok || snap.State != Canceled {
		t.Errorf("job after deadline drain: ok=%v state=%v", ok, snap.State)
	}
}

func TestTTLEviction(t *testing.T) {
	now := time.Unix(1700000000, 0)
	var mu sync.Mutex
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	e := New(Config{TTL: time.Minute, Clock: clock})
	defer e.Close(context.Background())
	id, _ := e.Submit(context.Background(), "short-lived", func(ctx context.Context, p *Progress) (any, error) {
		return nil, nil
	})
	waitState(t, e, id, Done)
	if _, ok := e.Get(id); !ok {
		t.Fatal("job missing before TTL")
	}
	mu.Lock()
	now = now.Add(2 * time.Minute)
	mu.Unlock()
	if _, ok := e.Get(id); ok {
		t.Error("terminal job still present after TTL")
	}
}

func TestSubscribeReplayAndLive(t *testing.T) {
	e := New(Config{})
	defer e.Close(context.Background())
	entered := make(chan struct{})
	release := make(chan struct{})
	id, err := e.Submit(context.Background(), "narrated", func(ctx context.Context, p *Progress) (any, error) {
		p.Emit("phase", map[string]any{"n": 1})
		close(entered)
		<-release
		p.Emit("phase", map[string]any{"n": 2})
		return nil, nil
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-entered
	replay, live, cancel, ok := e.Subscribe(id)
	if !ok {
		t.Fatal("Subscribe: job not found")
	}
	defer cancel()
	// queued, running, phase(1) have already happened.
	if len(replay) != 3 {
		t.Fatalf("replay has %d events: %+v", len(replay), replay)
	}
	if replay[0].Name != "queued" || replay[1].Name != "running" || replay[2].Name != "phase" {
		t.Errorf("replay names: %q %q %q", replay[0].Name, replay[1].Name, replay[2].Name)
	}
	close(release)
	var names []string
	for ev := range live { // closes at terminal state
		names = append(names, ev.Name)
	}
	if len(names) != 2 || names[0] != "phase" || names[1] != "state" {
		t.Errorf("live events = %v, want [phase state]", names)
	}
	// Seq keeps counting across replay + live.
	replay2, live2, cancel2, _ := e.Subscribe(id)
	defer cancel2()
	if len(replay2) != 5 || replay2[4].Seq != 5 {
		t.Errorf("terminal replay = %+v", replay2)
	}
	if _, open := <-live2; open {
		t.Error("live channel for terminal job not closed")
	}
}

func TestSubscribeUnknownJob(t *testing.T) {
	e := New(Config{})
	defer e.Close(context.Background())
	if _, _, _, ok := e.Subscribe("job-nope"); ok {
		t.Error("Subscribe returned ok for unknown job")
	}
}

func TestEventHistoryTruncates(t *testing.T) {
	p := newProgress()
	for i := 0; i < maxEvents+10; i++ {
		p.emit("tick", nil)
	}
	replay, live, cancel := p.subscribe()
	defer cancel()
	_ = live
	if len(replay) != maxEvents+1 {
		t.Fatalf("retained %d events, want %d", len(replay), maxEvents+1)
	}
	if replay[maxEvents].Name != "events.truncated" {
		t.Errorf("last retained event = %q, want events.truncated", replay[maxEvents].Name)
	}
	if p.count() != maxEvents+10 {
		t.Errorf("count = %d, want %d", p.count(), maxEvents+10)
	}
}

func TestSlowSubscriberDropsNotBlocks(t *testing.T) {
	p := newProgress()
	_, live, cancel := p.subscribe()
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < subBuffer*4; i++ { // never read from live
			p.emit("flood", nil)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("emit blocked on a slow subscriber")
	}
	if n := len(live); n != subBuffer {
		t.Errorf("subscriber buffered %d events, want %d (rest dropped)", n, subBuffer)
	}
}

func TestSubscriberCancelIsIdempotent(t *testing.T) {
	p := newProgress()
	_, _, cancel := p.subscribe()
	cancel()
	cancel() // second call must not close a closed channel
	p.emit("after", nil)
	p.close()
	p.close()
}

func TestStatsGauges(t *testing.T) {
	e := New(Config{Workers: 1})
	defer e.Close(context.Background())
	release := make(chan struct{})
	started := make(chan struct{})
	e.Submit(context.Background(), "a", func(ctx context.Context, p *Progress) (any, error) {
		close(started)
		<-release
		return nil, nil
	})
	<-started
	e.Submit(context.Background(), "b", func(ctx context.Context, p *Progress) (any, error) {
		return nil, nil
	})
	st := e.Stats()
	if st.Running != 1 || st.Queued != 1 {
		t.Errorf("Stats = %+v, want Running=1 Queued=1", st)
	}
	close(release)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		st = e.Stats()
		if st.Done == 2 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if st.Running != 0 || st.Queued != 0 || st.Done != 2 {
		t.Errorf("final Stats = %+v, want all drained with Done=2", st)
	}
}

func TestConcurrentSubmitPollCancel(t *testing.T) {
	e := New(Config{Workers: 4, QueueDepth: 256})
	defer e.Close(context.Background())
	const n = 64
	var wg sync.WaitGroup
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id, err := e.Submit(context.Background(), fmt.Sprintf("j%d", i), func(ctx context.Context, p *Progress) (any, error) {
				p.Emit("work", map[string]any{"i": i})
				if i%7 == 0 {
					return nil, errors.New("unlucky")
				}
				return i, nil
			})
			if err != nil {
				t.Errorf("Submit %d: %v", i, err)
				return
			}
			ids[i] = id
			if i%5 == 0 {
				e.Cancel(id) // may or may not land before completion
			}
			e.Get(id)
			e.Stats()
		}(i)
	}
	wg.Wait()
	for i, id := range ids {
		if id == "" {
			continue
		}
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			snap, ok := e.Get(id)
			if !ok {
				t.Fatalf("job %d evicted mid-test", i)
			}
			if snap.State.Terminal() {
				break
			}
			time.Sleep(time.Millisecond)
		}
	}
	st := e.Stats()
	if st.Done+st.Failed+st.Canceled != n {
		t.Errorf("terminal counts %d+%d+%d != %d", st.Done, st.Failed, st.Canceled, n)
	}
}
