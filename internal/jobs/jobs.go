// Package jobs is archline's in-process asynchronous job engine: the
// production primitive that keeps anything slower than a cache hit off
// the request path. A caller Submits a named function and gets back a
// job ID immediately; a bounded worker pool executes the function under
// a cancellable context; a registry tracks every job through the state
// machine
//
//	queued → running → done | failed | canceled
//
// with TTL eviction of terminal jobs, a queue cap with shed semantics
// (a full queue refuses the submit rather than growing without bound),
// and per-job progress events that consumers can replay and follow
// live (events.go). Close drains the engine for graceful shutdown:
// queued jobs are canceled, running jobs get until the deadline to
// finish, and stragglers are canceled through their contexts.
//
// The worker-count policy is pool.Clamp, the same single source of
// truth the engine's other fan-out layers use. The package uses only
// the Go standard library.
package jobs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"archline/internal/pool"
)

// State is one stop in the job lifecycle.
type State int

// The job state machine: a job is born Queued, becomes Running when a
// worker picks it up, and ends in exactly one of the terminal states.
const (
	Queued State = iota
	Running
	Done
	Failed
	Canceled
)

// States lists every state in declaration order, so metric renderings
// and summaries never depend on map iteration order.
var States = []State{Queued, Running, Done, Failed, Canceled}

// String renders the state for wire bodies and metric labels.
func (s State) String() string {
	switch s {
	case Queued:
		return "queued"
	case Running:
		return "running"
	case Done:
		return "done"
	case Failed:
		return "failed"
	case Canceled:
		return "canceled"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s >= Done }

// Func is the work one job performs. It must honour ctx — cancellation
// (DELETE, engine drain) is delivered through it — and may narrate
// itself via p. The returned value becomes the job's Result.
type Func func(ctx context.Context, p *Progress) (any, error)

// Config tunes an Engine.
type Config struct {
	// Workers bounds how many jobs execute concurrently. Zero or
	// negative means DefaultWorkers (jobs are heavyweight by
	// definition; the policy is deliberately not NumCPU).
	Workers int
	// QueueDepth caps how many jobs may wait for a worker. A submit
	// past the cap is shed with ErrQueueFull. Zero means DefaultQueueDepth;
	// negative means no queueing at all (only immediate dispatch).
	QueueDepth int
	// TTL is how long terminal jobs stay queryable before eviction.
	// Zero means DefaultTTL.
	TTL time.Duration
	// Clock is the engine's time source; nil means time.Now. Tests
	// inject a fake clock to drive TTL eviction deterministically.
	Clock func() time.Time
}

// Defaults for zero Config fields.
const (
	DefaultWorkers    = 2
	DefaultQueueDepth = 16
	DefaultTTL        = 15 * time.Minute
)

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		// "Use the machine" per the shared pool.Clamp policy, but never
		// more than DefaultWorkers: a job is a whole-suite measure→fit
		// run, not a per-kernel work item, and the kernel-level fan-out
		// inside each job already soaks the cores.
		c.Workers = pool.Clamp(0, DefaultWorkers)
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = DefaultQueueDepth
	}
	if c.QueueDepth < 0 {
		c.QueueDepth = 0
	}
	if c.TTL <= 0 {
		c.TTL = DefaultTTL
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// Sentinel submit failures, distinguishable so the HTTP layer can map
// a full queue to 429 and a draining engine to 503.
var (
	// ErrQueueFull sheds a submit when QueueDepth jobs already wait.
	ErrQueueFull = errors.New("jobs: queue is full")
	// ErrClosed refuses submits after Close has begun draining.
	ErrClosed = errors.New("jobs: engine is draining")
)

// Snapshot is one job's externally visible state at a point in time.
// Result and Err are only meaningful in terminal states.
type Snapshot struct {
	ID      string
	Name    string
	State   State
	Created time.Time
	Started time.Time // zero until the job runs
	Ended   time.Time // zero until the job is terminal
	Err     error     // nil unless Failed or Canceled
	Result  any       // nil unless Done
	Events  int       // progress events emitted so far
}

// Stats is the engine's metrics surface: live state gauges plus
// cumulative counters, consumed by the server's Collect families.
type Stats struct {
	Queued    int
	Running   int
	Submitted int64
	Shed      int64
	Done      int64
	Failed    int64
	Canceled  int64
}

// job is the registry entry; mutable fields are guarded by Engine.mu.
type job struct {
	id      string
	name    string
	fn      Func
	ctx     context.Context
	cancel  context.CancelFunc
	state   State
	created time.Time
	started time.Time
	ended   time.Time
	err     error
	result  any
	prog    *Progress
}

// Engine runs jobs on a bounded worker pool and tracks them until TTL
// eviction. Safe for concurrent use.
type Engine struct {
	cfg   Config
	clock func() time.Time
	sem   chan struct{} // worker slots
	wg    sync.WaitGroup
	seq   atomic.Uint64

	mu      sync.Mutex
	jobs    map[string]*job
	queued  int
	running int
	closed  bool

	submitted atomic.Int64
	shed      atomic.Int64
	done      atomic.Int64
	failed    atomic.Int64
	canceled  atomic.Int64
}

// New builds an engine (zero Config fields take defaults). The engine
// spawns no goroutines until jobs are submitted; Close drains it.
func New(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	return &Engine{
		cfg:   cfg,
		clock: cfg.Clock,
		sem:   make(chan struct{}, cfg.Workers),
		jobs:  map[string]*job{},
	}
}

// newJobID mints a 16-hex-char job ID, falling back to a process-local
// sequence if the system entropy source fails.
func (e *Engine) newJobID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err == nil {
		return "job-" + hex.EncodeToString(b[:])
	}
	return fmt.Sprintf("job-seq-%d", e.seq.Add(1))
}

// Submit registers fn as a new job and returns its ID without waiting
// for execution. ctx carries values into the job's context (tracer,
// request ID) but NOT cancellation: the job outlives the submitting
// request by design, so callers should pass an already-detached
// context (obs.Detach). A full queue sheds with ErrQueueFull; a
// draining engine refuses with ErrClosed.
func (e *Engine) Submit(ctx context.Context, name string, fn Func) (string, error) {
	now := e.clock()
	jctx, cancel := context.WithCancel(ctx)
	j := &job{
		id:      e.newJobID(),
		name:    name,
		fn:      fn,
		ctx:     jctx,
		cancel:  cancel,
		state:   Queued,
		created: now,
		prog:    newProgress(),
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		cancel()
		return "", ErrClosed
	}
	e.evictLocked(now)
	// Occupancy cap: Workers jobs may run and QueueDepth more may
	// wait. Counting queued+running (rather than queued alone) keeps
	// the bound independent of how quickly worker goroutines move jobs
	// from one gauge to the other.
	if e.queued+e.running >= e.cfg.QueueDepth+cap(e.sem) {
		e.shed.Add(1)
		e.mu.Unlock()
		cancel()
		return "", ErrQueueFull
	}
	e.jobs[j.id] = j
	e.queued++
	e.submitted.Add(1)
	e.wg.Add(1)
	e.mu.Unlock()
	j.prog.emit("queued", map[string]any{"job": j.id, "name": name})
	//archlint:ignore ctxgoroutine job goroutines outlive Submit by design; Close joins them via wg.Wait
	go e.run(j)
	return j.id, nil
}

// run is one job's goroutine: wait for a worker slot (or cancellation),
// execute, finish.
func (e *Engine) run(j *job) {
	defer e.wg.Done()
	select {
	case e.sem <- struct{}{}:
	case <-j.ctx.Done():
		// Canceled while still queued.
		e.finish(j, nil, j.ctx.Err())
		return
	}
	defer func() { <-e.sem }()
	e.mu.Lock()
	if j.state != Queued { // canceled between dequeue and here
		e.mu.Unlock()
		return
	}
	j.state = Running
	j.started = e.clock()
	e.queued--
	e.running++
	e.mu.Unlock()
	j.prog.emit("running", nil)
	res, err := j.fn(j.ctx, j.prog)
	e.finish(j, res, err)
}

// finish moves a job to its terminal state exactly once, updates the
// counters, and closes the progress stream with a final state event.
func (e *Engine) finish(j *job, res any, err error) {
	e.mu.Lock()
	if j.state.Terminal() {
		e.mu.Unlock()
		return
	}
	switch j.state {
	case Queued:
		e.queued--
	case Running:
		e.running--
	}
	switch {
	case err == nil:
		j.state = Done
		j.result = res
		e.done.Add(1)
	case errors.Is(err, context.Canceled):
		j.state = Canceled
		j.err = err
		e.canceled.Add(1)
	default:
		j.state = Failed
		j.err = err
		e.failed.Add(1)
	}
	j.ended = e.clock()
	state := j.state
	e.mu.Unlock()
	j.cancel() // release the context's resources on every path
	attrs := map[string]any{"state": state.String()}
	if err != nil {
		attrs["error"] = err.Error()
	}
	j.prog.emit("state", attrs)
	j.prog.close()
}

// snapshotLocked copies a job's visible state; the caller holds e.mu.
func snapshotLocked(j *job) Snapshot {
	return Snapshot{
		ID:      j.id,
		Name:    j.name,
		State:   j.state,
		Created: j.created,
		Started: j.started,
		Ended:   j.ended,
		Err:     j.err,
		Result:  j.result,
		Events:  j.prog.count(),
	}
}

// Get returns a job's snapshot, or ok=false for unknown (or evicted)
// IDs.
func (e *Engine) Get(id string) (Snapshot, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.evictLocked(e.clock())
	j, ok := e.jobs[id]
	if !ok {
		return Snapshot{}, false
	}
	return snapshotLocked(j), true
}

// Cancel requests a job's cancellation. Queued jobs become Canceled
// immediately; Running jobs have their context canceled and reach
// Canceled when the function observes it. Terminal jobs are left
// untouched. The returned snapshot reflects the post-cancel state.
func (e *Engine) Cancel(id string) (Snapshot, bool) {
	e.mu.Lock()
	j, ok := e.jobs[id]
	if !ok {
		e.mu.Unlock()
		return Snapshot{}, false
	}
	if j.state.Terminal() {
		snap := snapshotLocked(j)
		e.mu.Unlock()
		return snap, true
	}
	wasQueued := j.state == Queued
	e.mu.Unlock()
	if !wasQueued {
		j.prog.emit("cancel.requested", nil)
	}
	j.cancel()
	if wasQueued {
		// Finish synchronously so the caller sees the terminal state
		// without racing the worker goroutine's ctx.Done select.
		e.finish(j, nil, context.Canceled)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return snapshotLocked(j), true
}

// Subscribe returns the job's progress events so far plus a channel of
// subsequent ones; the channel closes when the job is terminal (for an
// already-terminal job it is closed on return). cancel detaches the
// subscription and must always be called.
func (e *Engine) Subscribe(id string) (replay []Event, live <-chan Event, cancel func(), ok bool) {
	e.mu.Lock()
	j, found := e.jobs[id]
	e.mu.Unlock()
	if !found {
		return nil, nil, nil, false
	}
	replay, live, cancel = j.prog.subscribe()
	return replay, live, cancel, true
}

// Stats snapshots the engine's metrics surface.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	e.evictLocked(e.clock())
	queued, running := e.queued, e.running
	e.mu.Unlock()
	return Stats{
		Queued:    queued,
		Running:   running,
		Submitted: e.submitted.Load(),
		Shed:      e.shed.Load(),
		Done:      e.done.Load(),
		Failed:    e.failed.Load(),
		Canceled:  e.canceled.Load(),
	}
}

// evictLocked drops terminal jobs older than TTL; the caller holds
// e.mu. Eviction order is irrelevant (each job is judged on its own
// clock), so the map iteration is safe.
func (e *Engine) evictLocked(now time.Time) {
	for id, j := range e.jobs {
		if j.state.Terminal() && now.Sub(j.ended) > e.cfg.TTL {
			delete(e.jobs, id)
		}
	}
}

// closeGrace bounds how long Close waits for job functions to notice
// their canceled contexts after the drain deadline has already passed.
const closeGrace = 2 * time.Second

// Close drains the engine: no further submits are accepted, queued
// jobs are canceled immediately, and running jobs get until ctx's
// deadline to finish before their contexts are canceled too. It
// returns nil when every job reached a terminal state (finished or
// canceled), or an error if a job function ignored its context past
// the grace period.
func (e *Engine) Close(ctx context.Context) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	// Cancel queued jobs in place: CancelFunc only signals (finish runs
	// in the job's own goroutine), so holding e.mu here cannot deadlock,
	// and cancellation order is irrelevant.
	for _, j := range e.jobs {
		if j.state == Queued {
			j.cancel()
		}
	}
	e.mu.Unlock()
	joined := make(chan struct{})
	go func() { e.wg.Wait(); close(joined) }()
	select {
	case <-joined:
		return nil
	case <-ctx.Done():
	}
	// Deadline passed with jobs still running: cancel them and give
	// their functions a bounded grace to observe it.
	e.mu.Lock()
	for _, j := range e.jobs {
		if !j.state.Terminal() {
			j.cancel()
		}
	}
	e.mu.Unlock()
	select {
	case <-joined:
		return nil
	case <-time.After(closeGrace):
		return errors.New("jobs: drain timed out with jobs ignoring cancellation")
	}
}
