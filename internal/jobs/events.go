package jobs

import "sync"

// Event is one progress observation from a job: lifecycle transitions
// emitted by the engine (queued, running, cancel.requested, the final
// state) and anything the job Func narrates via Progress.Emit. Seq is a
// per-job monotonically increasing sequence number, so consumers that
// reconnect can detect replayed events.
type Event struct {
	Seq   int            `json:"seq"`
	Name  string         `json:"name"`
	Attrs map[string]any `json:"attrs,omitempty"`
}

// maxEvents caps the per-job event history. A job that narrates past
// the cap keeps running; the history ends with one events.truncated
// marker and live subscribers still receive everything.
const maxEvents = 512

// subBuffer is each subscriber's channel capacity. A subscriber that
// falls further behind than this loses events (the live stream is
// lossy by design — Snapshot.Events exposes the true count), because a
// stalled HTTP client must never be able to wedge a running job.
const subBuffer = 64

// Progress is a job's event log: a bounded replay buffer plus a fan-out
// to live subscribers. The engine creates one per job; the job Func
// receives it to narrate progress. Safe for concurrent use.
type Progress struct {
	mu      sync.Mutex
	events  []Event
	seq     int
	subs    map[int]chan Event
	nextSub int
	closed  bool
}

func newProgress() *Progress {
	return &Progress{subs: map[int]chan Event{}}
}

// Emit records a progress event from the job's own code (the engine
// uses the same path for lifecycle events). Emitting after the job is
// terminal is a no-op.
func (p *Progress) Emit(name string, attrs map[string]any) {
	p.emit(name, attrs)
}

func (p *Progress) emit(name string, attrs map[string]any) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.seq++
	ev := Event{Seq: p.seq, Name: name, Attrs: attrs}
	switch {
	case len(p.events) < maxEvents:
		p.events = append(p.events, ev)
	case len(p.events) == maxEvents:
		p.events = append(p.events, Event{Seq: p.seq, Name: "events.truncated"})
	}
	for _, ch := range p.subs {
		// Non-blocking fan-out: drop rather than let a slow subscriber
		// stall the job goroutine.
		select {
		case ch <- ev:
		default:
		}
	}
}

// count reports how many events have been emitted (not how many were
// retained).
func (p *Progress) count() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.seq
}

// subscribe returns a copy of the retained history plus a channel of
// subsequent events. The channel closes when the job reaches a terminal
// state; for an already-closed Progress it is returned closed, so
// consumers can range over it uniformly. cancel detaches the
// subscription and must always be called (it is idempotent).
func (p *Progress) subscribe() (replay []Event, live <-chan Event, cancel func()) {
	p.mu.Lock()
	defer p.mu.Unlock()
	replay = append([]Event(nil), p.events...)
	ch := make(chan Event, subBuffer)
	if p.closed {
		close(ch)
		return replay, ch, func() {}
	}
	id := p.nextSub
	p.nextSub++
	p.subs[id] = ch
	return replay, ch, func() {
		p.mu.Lock()
		defer p.mu.Unlock()
		if _, ok := p.subs[id]; ok {
			delete(p.subs, id)
			close(ch)
		}
	}
}

// close ends the event stream: every subscriber channel is closed and
// further emits become no-ops. Called exactly once by Engine.finish.
func (p *Progress) close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.closed = true
	for id, ch := range p.subs {
		delete(p.subs, id)
		close(ch)
	}
}
