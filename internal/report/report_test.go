package report

import (
	"math"
	"strings"
	"testing"

	"archline/internal/machine"
	"archline/internal/stats"
)

func TestTableRender(t *testing.T) {
	tb := &Table{
		Title:   "demo",
		Headers: []string{"name", "value"},
	}
	tb.AddRow("alpha", "1")
	tb.AddRow("beta-longer", "22")
	tb.AddRow("gamma") // short row padded
	out := tb.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "demo" {
		t.Errorf("title line %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "name") || !strings.Contains(lines[1], "value") {
		t.Errorf("header line %q", lines[1])
	}
	if !strings.Contains(lines[2], "---") {
		t.Errorf("separator line %q", lines[2])
	}
	// Columns aligned: "value" column starts at the same offset in all rows.
	idx := strings.Index(lines[1], "value")
	if got := strings.Index(lines[3], "1"); got != idx {
		t.Errorf("misaligned column: %d != %d", got, idx)
	}
	if len(lines) != 6 {
		t.Errorf("expected 6 lines, got %d: %q", len(lines), out)
	}
	// No trailing spaces.
	for _, l := range lines {
		if strings.TrimRight(l, " ") != l {
			t.Errorf("line has trailing spaces: %q", l)
		}
	}
}

func TestPanelHeader(t *testing.T) {
	h := PanelHeader(machine.MustByID(machine.GTXTitan))
	for _, want := range []string{"Gflop/J", "GB/J", "Tflop/s", "[81%]", "GB/s", "[83%]", "123 W (const)", "164 W (cap)"} {
		if !strings.Contains(h, want) {
			t.Errorf("panel header missing %q:\n%s", want, h)
		}
	}
}

func TestPercent(t *testing.T) {
	if Percent(0.81) != "[81%]" {
		t.Errorf("got %q", Percent(0.81))
	}
	if Percent(1.0) != "[100%]" {
		t.Errorf("got %q", Percent(1.0))
	}
}

func TestPlotRender(t *testing.T) {
	p := &Plot{
		Title:  "power",
		XLabel: "intensity (flop:Byte)",
		YLabel: "watts",
		Width:  40,
		Height: 10,
		Series: []PlotSeries{
			{Name: "titan", X: []float64{0.25, 1, 4, 16, 64}, Y: []float64{190, 250, 287, 287, 260}},
			{Name: "mali", X: []float64{0.25, 1, 4, 16, 64}, Y: []float64{5, 5.5, 6.1, 6.1, 5.8}},
		},
	}
	out := p.Render()
	for _, want := range []string{"power", "watts", "intensity", "legend:", "titan", "mali", "287", "+---"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q:\n%s", want, out)
		}
	}
	// Marker glyphs present.
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("expected default markers * and o")
	}
}

func TestPlotLogY(t *testing.T) {
	p := &Plot{
		LogY:   true,
		Width:  30,
		Height: 8,
		Series: []PlotSeries{
			{Name: "s", X: []float64{1, 10, 100}, Y: []float64{1, 100, 10000}},
		},
	}
	out := p.Render()
	// On a log-y plot of y = x^2 the three points form a straight
	// diagonal: top-right and bottom-left markers exist.
	lines := strings.Split(out, "\n")
	var rows []string
	for _, l := range lines {
		if strings.Contains(l, "|") {
			rows = append(rows, l[strings.Index(l, "|")+1:])
		}
	}
	if len(rows) != 8 {
		t.Fatalf("expected 8 plot rows, got %d", len(rows))
	}
	if !strings.Contains(rows[0], "*") || !strings.Contains(rows[len(rows)-1], "*") {
		t.Error("log-y diagonal endpoints missing")
	}
	mid := rows[len(rows)/2]
	if !strings.Contains(strings.Join(rows[2:6], ""), "*") {
		t.Errorf("log-y midpoint missing near centre: %q", mid)
	}
}

func TestPlotEmptyAndDegenerate(t *testing.T) {
	p := &Plot{Series: []PlotSeries{{Name: "nil"}}}
	if !strings.Contains(p.Render(), "no data") {
		t.Error("empty plot should say no data")
	}
	// Negative/zero values dropped on log-y without panicking.
	p = &Plot{
		LogY: true,
		Series: []PlotSeries{
			{Name: "bad", X: []float64{1, 2}, Y: []float64{-5, 0}},
		},
	}
	if !strings.Contains(p.Render(), "no data") {
		t.Error("all-invalid log-y plot should say no data")
	}
	// Single point: degenerate ranges handled.
	p = &Plot{Series: []PlotSeries{{Name: "pt", X: []float64{2}, Y: []float64{3}}}}
	out := p.Render()
	if !strings.Contains(out, "*") {
		t.Errorf("single point should render: %s", out)
	}
}

func TestPlotCustomMarker(t *testing.T) {
	p := &Plot{
		Series: []PlotSeries{
			{Name: "dots", X: []float64{1, 2}, Y: []float64{1, 2}, Marker: '.'},
		},
	}
	if !strings.Contains(p.Render(), ".") {
		t.Error("custom marker not used")
	}
}

func TestBoxplot(t *testing.T) {
	rows := []BoxRow{
		{Label: "alpha", Stats: statsFive(-0.1, 0.0, 0.2, 0.5, 1.0)},
		{Label: "beta-long", Stats: statsFive(0.1, 0.12, 0.15, 0.2, 0.3)},
	}
	out := Boxplot(rows, 40, 0)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("expected 2 rows + scale, got %d:\n%s", len(lines), out)
	}
	for _, want := range []string{"alpha", "beta-long", "[", "]", "M", "|", ":"} {
		if !strings.Contains(out, want) {
			t.Errorf("boxplot missing %q:\n%s", want, out)
		}
	}
	// Median of alpha sits left of median of beta on the shared scale? No:
	// alpha median 0.2 > beta median 0.15, so alpha's M is further right.
	aM := strings.IndexByte(lines[0], 'M')
	bM := strings.IndexByte(lines[1], 'M')
	if aM <= bM {
		t.Errorf("median positions: alpha %d should exceed beta %d", aM, bM)
	}
	// Degenerate cases.
	if !strings.Contains(Boxplot(nil, 40, 0), "no data") {
		t.Error("empty rows")
	}
	flat := []BoxRow{{Label: "flat", Stats: statsFive(1, 1, 1, 1, 1)}}
	if out := Boxplot(flat, 10, math.NaN()); !strings.Contains(out, "M") {
		t.Error("flat distribution should still render")
	}
}

// statsFive builds a FiveNumber directly.
func statsFive(min, q1, med, q3, max float64) stats.FiveNumber {
	return stats.FiveNumber{Min: min, Q1: q1, Median: med, Q3: q3, Max: max}
}

func TestTableMarkdown(t *testing.T) {
	tb := &Table{Title: "cap", Headers: []string{"a", "b"}}
	tb.AddRow("1", "x|y")
	md := tb.Markdown()
	for _, want := range []string{"**cap**", "| a | b |", "| --- | --- |", `x\|y`} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
	lines := strings.Split(strings.TrimSpace(md), "\n")
	if len(lines) != 5 { // caption, blank, header, separator, row
		t.Errorf("line count %d:\n%s", len(lines), md)
	}
}
