package report

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"archline/internal/units"
)

// PlotSeries is one named curve for the ASCII plotter.
type PlotSeries struct {
	Name   string
	X      []float64 // intensities
	Y      []float64 // metric values
	Marker byte      // glyph; 0 picks automatically
}

// Plot renders series on a log-x (and optionally log-y) character grid —
// a textual rendition of the paper's figures.
type Plot struct {
	Title  string
	XLabel string
	YLabel string
	Width  int // plot area columns (default 72)
	Height int // plot area rows (default 20)
	LogY   bool
	Series []PlotSeries
}

var defaultMarkers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Render draws the plot.
func (p *Plot) Render() string {
	w, h := p.Width, p.Height
	if w <= 0 {
		w = 72
	}
	if h <= 0 {
		h = 20
	}
	// Collect finite positive-x points.
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range p.Series {
		for i := range s.X {
			x, y := s.X[i], s.Y[i]
			if x <= 0 || math.IsNaN(y) || math.IsInf(y, 0) {
				continue
			}
			if p.LogY && y <= 0 {
				continue
			}
			xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
			ymin, ymax = math.Min(ymin, y), math.Max(ymax, y)
		}
	}
	var b strings.Builder
	if p.Title != "" {
		b.WriteString(p.Title)
		b.WriteByte('\n')
	}
	if math.IsInf(xmin, 1) {
		b.WriteString("(no data)\n")
		return b.String()
	}
	//archlint:ignore floatcmp exact equality is the degenerate-range guard; approximate would misfire on tiny ranges
	if xmax == xmin {
		xmax = xmin * 2
	}
	//archlint:ignore floatcmp exact equality is the degenerate-range guard; approximate would misfire on tiny ranges
	if ymax == ymin {
		ymax = ymin + 1
	}
	tx := func(x float64) float64 { return math.Log(x) }
	ty := func(y float64) float64 {
		if p.LogY {
			return math.Log(y)
		}
		return y
	}
	x0, x1 := tx(xmin), tx(xmax)
	y0, y1 := ty(ymin), ty(ymax)

	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	for si, s := range p.Series {
		marker := s.Marker
		if marker == 0 {
			marker = defaultMarkers[si%len(defaultMarkers)]
		}
		for i := range s.X {
			x, y := s.X[i], s.Y[i]
			if x <= 0 || math.IsNaN(y) || math.IsInf(y, 0) || (p.LogY && y <= 0) {
				continue
			}
			cx := int(math.Round((tx(x) - x0) / (x1 - x0) * float64(w-1)))
			cy := int(math.Round((ty(y) - y0) / (y1 - y0) * float64(h-1)))
			row := h - 1 - cy
			if row < 0 || row >= h || cx < 0 || cx >= w {
				continue
			}
			grid[row][cx] = marker
		}
	}
	// Y-axis labels at top/bottom.
	topLabel := formatTick(ymax)
	botLabel := formatTick(ymin)
	labelW := len(topLabel)
	if len(botLabel) > labelW {
		labelW = len(botLabel)
	}
	if p.YLabel != "" {
		fmt.Fprintf(&b, "%s\n", p.YLabel)
	}
	for r := 0; r < h; r++ {
		label := strings.Repeat(" ", labelW)
		switch r {
		case 0:
			label = fmt.Sprintf("%*s", labelW, topLabel)
		case h - 1:
			label = fmt.Sprintf("%*s", labelW, botLabel)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", labelW), strings.Repeat("-", w))
	fmt.Fprintf(&b, "%s  %-*s%s\n", strings.Repeat(" ", labelW), w-len(formatTick(xmax)),
		formatTick(xmin), formatTick(xmax))
	if p.XLabel != "" {
		fmt.Fprintf(&b, "%s  %s\n", strings.Repeat(" ", labelW), p.XLabel)
	}
	// Legend.
	names := make([]string, 0, len(p.Series))
	for si, s := range p.Series {
		marker := s.Marker
		if marker == 0 {
			marker = defaultMarkers[si%len(defaultMarkers)]
		}
		names = append(names, fmt.Sprintf("%c %s", marker, s.Name))
	}
	sort.Strings(names)
	b.WriteString("legend: " + strings.Join(names, " | "))
	b.WriteByte('\n')
	return b.String()
}

// formatTick renders an axis extreme compactly.
func formatTick(v float64) string {
	av := math.Abs(v)
	if av >= 1000 || (av < 0.01 && av > 0) {
		return units.FormatSI(v, "", 3)
	}
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.3f", v), "0"), ".")
}
