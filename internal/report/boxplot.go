package report

import (
	"fmt"
	"math"
	"strings"

	"archline/internal/stats"
)

// BoxRow is one labelled distribution for the boxplot renderer.
type BoxRow struct {
	Label string
	Stats stats.FiveNumber
}

// Boxplot renders five-number summaries as aligned ASCII box-and-whisker
// rows on a shared scale — the textual rendition of fig. 4's boxplots:
//
//	name  |------[===M====]--------|
//
// mark, when finite, draws a reference column (fig. 4 uses zero error).
func Boxplot(rows []BoxRow, width int, mark float64) string {
	if len(rows) == 0 {
		return "(no data)\n"
	}
	if width < 20 {
		width = 20
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, r := range rows {
		lo = math.Min(lo, r.Stats.Min)
		hi = math.Max(hi, r.Stats.Max)
	}
	if !math.IsNaN(mark) {
		lo = math.Min(lo, mark)
		hi = math.Max(hi, mark)
	}
	if !(hi > lo) {
		hi = lo + 1
	}
	labelW := 0
	for _, r := range rows {
		if len(r.Label) > labelW {
			labelW = len(r.Label)
		}
	}
	pos := func(v float64) int {
		p := int(math.Round((v - lo) / (hi - lo) * float64(width-1)))
		if p < 0 {
			p = 0
		}
		if p >= width {
			p = width - 1
		}
		return p
	}
	var b strings.Builder
	for _, r := range rows {
		line := []byte(strings.Repeat(" ", width))
		if !math.IsNaN(mark) {
			line[pos(mark)] = ':'
		}
		pMin, pQ1, pMed, pQ3, pMax := pos(r.Stats.Min), pos(r.Stats.Q1),
			pos(r.Stats.Median), pos(r.Stats.Q3), pos(r.Stats.Max)
		for k := pMin; k <= pMax; k++ {
			if line[k] == ' ' {
				line[k] = '-'
			}
		}
		for k := pQ1; k <= pQ3; k++ {
			line[k] = '='
		}
		line[pMin] = '|'
		line[pMax] = '|'
		line[pQ1] = '['
		line[pQ3] = ']'
		line[pMed] = 'M'
		fmt.Fprintf(&b, "%-*s %s\n", labelW, r.Label, string(line))
	}
	fmt.Fprintf(&b, "%-*s %s\n", labelW, "", scaleLine(lo, hi, width))
	return b.String()
}

// scaleLine renders the axis extremes under the plot.
func scaleLine(lo, hi float64, width int) string {
	l := formatTick(lo)
	h := formatTick(hi)
	gap := width - len(l) - len(h)
	if gap < 1 {
		gap = 1
	}
	return l + strings.Repeat(" ", gap) + h
}
