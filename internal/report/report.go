// Package report renders the experiment outputs as text: aligned tables
// (Table I), fig. 5-style panel annotations, and ASCII plots for the
// intensity-sweep figures, so `archline figN` regenerates a recognizable
// textual analogue of each figure in the paper.
package report

import (
	"fmt"
	"strings"

	"archline/internal/machine"
	"archline/internal/units"
)

// Table is a simple aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	for len(cells) < len(t.Headers) {
		cells = append(cells, "")
	}
	t.Rows = append(t.Rows, cells)
}

// Render formats the table with aligned columns.
func (t *Table) Render() string {
	ncol := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > ncol {
			ncol = len(r)
		}
	}
	widths := make([]int, ncol)
	measure := func(cells []string) {
		for i, c := range cells {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.Rows {
		measure(r)
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i := 0; i < ncol; i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		// Trim trailing padding.
		s := b.String()
		trimmed := strings.TrimRight(s, " ")
		b.Reset()
		b.WriteString(trimmed)
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, ncol)
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// PanelHeader renders the three fig. 5 panel annotation lines for a
// platform, e.g.:
//
//	16.3 Gflop/J, 1.28 GB/J
//	4.02 Tflop/s [81%], 239 GB/s [83%]
//	123 W (const) + 164 W (cap)
func PanelHeader(p *machine.Platform) string {
	flopsJ := p.Single.PeakFlopsPerJoule()
	bytesJ := p.Single.PeakBytesPerJoule()
	fFrac, bFrac := p.SustainedFraction()
	return fmt.Sprintf("%s, %s\n%s [%.0f%%], %s [%.0f%%]\n%s (const) + %s (cap)",
		units.FormatFlopsPerJoule(flopsJ),
		units.FormatBytesPerJoule(bytesJ),
		units.FormatFlopRate(p.Sustained.SingleRate), 100*fFrac,
		units.FormatByteRate(p.Sustained.MemBW), 100*bFrac,
		units.FormatPower(p.Single.Pi1),
		units.FormatPower(p.Single.DeltaPi))
}

// Percent formats a ratio as a bracketed percentage, the paper's style.
func Percent(frac float64) string { return fmt.Sprintf("[%.0f%%]", 100*frac) }

// Markdown renders the table as a GitHub-flavoured markdown table. The
// title, when present, becomes a bold caption line.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	writeRow := func(cells []string) {
		b.WriteString("|")
		for i := 0; i < len(t.Headers); i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			b.WriteString(" " + strings.ReplaceAll(c, "|", "\\|") + " |")
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = "---"
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}
