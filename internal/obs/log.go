package obs

import (
	"context"
	"io"
	"log/slog"
	"sync/atomic"
)

// ctxHandler wraps a slog.Handler and stamps every record with the
// context's request ID and active span identifiers, so one grep over
// the JSON log lines follows a request through the whole stack.
type ctxHandler struct {
	inner   slog.Handler
	records *atomic.Int64
}

// Enabled delegates to the wrapped handler.
func (h ctxHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

// Handle counts the record and injects request/trace correlation
// attributes before delegating.
func (h ctxHandler) Handle(ctx context.Context, r slog.Record) error {
	if h.records != nil {
		h.records.Add(1)
	}
	if ctx != nil {
		if id, ok := RequestID(ctx); ok {
			r.AddAttrs(slog.String("request_id", id))
		}
		if span := SpanFrom(ctx); span != nil {
			r.AddAttrs(slog.String("trace", span.TraceID()), slog.Uint64("span", span.ID()))
		}
	}
	return h.inner.Handle(ctx, r)
}

// WithAttrs wraps the delegated handler's WithAttrs.
func (h ctxHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return ctxHandler{inner: h.inner.WithAttrs(attrs), records: h.records}
}

// WithGroup wraps the delegated handler's WithGroup.
func (h ctxHandler) WithGroup(name string) slog.Handler {
	return ctxHandler{inner: h.inner.WithGroup(name), records: h.records}
}

// NewLogger returns a structured JSON logger writing to w, with
// request-ID and span correlation injected from the context passed to
// each logging call.
func NewLogger(w io.Writer) *slog.Logger {
	return slog.New(ctxHandler{inner: slog.NewJSONHandler(w, nil)})
}

// NewCountedLogger is NewLogger plus a counter of emitted records, for
// the obs_log_records_total self-metric.
func NewCountedLogger(w io.Writer) (*slog.Logger, func() int64) {
	n := &atomic.Int64{}
	return slog.New(ctxHandler{inner: slog.NewJSONHandler(w, nil), records: n}), n.Load
}

// NopLogger returns a logger that discards every record, so code can
// log unconditionally without nil checks.
func NopLogger() *slog.Logger {
	return slog.New(slog.NewJSONHandler(io.Discard, nil))
}
