package obs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Metrics registry: a generalized, stdlib-only family of counters,
// gauges, and histograms rendered as a Prometheus-style text exposition
// with # HELP / # TYPE headers. Families registered with Collect are
// computed at render time, for derived values (uptime, quantiles over a
// sample window, breaker state) that have no natural write path.
//
// Rendering is deterministic: families sort by name, series by label
// values, and whole-number values print without a fractional part — so
// two renders of the same state are byte-identical and the exposition
// can be pinned by a golden test.

// DefBuckets are the default latency histogram bucket bounds, in
// seconds, spanning sub-millisecond cache hits to multi-second fits.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// DefaultMaxSeriesPerFamily caps how many labelled series one family
// may intern. A caller that labels a metric with unbounded input (user
// IDs, raw paths) would otherwise grow the exposition — and the heap —
// without limit; past the cap, writes against new label tuples land in
// a shared blackhole series and are counted in obs_dropped_series_total
// instead of being stored.
const DefaultMaxSeriesPerFamily = 1024

// Registry holds metric families and renders the exposition.
type Registry struct {
	mu        sync.Mutex
	families  map[string]*family
	maxSeries int

	droppedMu sync.Mutex
	dropped   map[string]uint64 // family name -> series refused by the cap
}

// family is one named metric with a fixed label schema.
type family struct {
	name    string
	help    string
	typ     string // "counter", "gauge", "histogram", "summary"
	labels  []string
	buckets []float64 // histogram bounds (nil otherwise)

	reg       *Registry // owner, for drop accounting
	maxSeries int       // cap captured at registration

	mu     sync.Mutex
	series map[string]*series
	// overflow absorbs writes refused by the cap: callers get a real
	// series (the nil-safety contract of Counter/Gauge/Histogram is
	// preserved) but it is never rendered.
	overflow *series

	// collect, when set, replaces stored series at render time.
	collect func(emit func(labelValues []string, value float64))
}

// series is one labelled instance of a family.
type series struct {
	labels []string

	mu     sync.Mutex
	value  float64  // counter / gauge
	counts []uint64 // histogram per-bucket counts
	count  uint64   // histogram total observations
	sum    float64  // histogram sum of observations
}

// NewRegistry builds an empty registry. Every registry carries the
// obs_dropped_series_total self-metric, emitted only once a family has
// actually refused a series, so the exposition of a healthy registry is
// unchanged.
func NewRegistry() *Registry {
	r := &Registry{
		families:  map[string]*family{},
		maxSeries: DefaultMaxSeriesPerFamily,
		dropped:   map[string]uint64{},
	}
	r.Collect("obs_dropped_series_total",
		"series resolutions refused by the per-family cardinality cap", "counter",
		[]string{"family"}, func(emit func([]string, float64)) {
			r.droppedMu.Lock()
			defer r.droppedMu.Unlock()
			names := make([]string, 0, len(r.dropped))
			for name := range r.dropped {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				emit([]string{name}, float64(r.dropped[name]))
			}
		})
	return r
}

// SetMaxSeriesPerFamily replaces the per-family series cap for families
// registered afterwards. It exists for tests and special-purpose
// registries; the default suits the daemon.
func (r *Registry) SetMaxSeriesPerFamily(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n > 0 {
		r.maxSeries = n
	}
}

// noteDroppedSeries counts one series refused by a family's cap.
func (r *Registry) noteDroppedSeries(familyName string) {
	r.droppedMu.Lock()
	r.dropped[familyName]++
	r.droppedMu.Unlock()
}

// register adds a family, panicking on a duplicate name: metric
// registration is static configuration, and a clash is a programming
// error better caught at construction than rendered ambiguously.
func (r *Registry) register(f *family) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[f.name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric family %q", f.name))
	}
	f.reg = r
	f.maxSeries = r.maxSeries
	r.families[f.name] = f
	return f
}

// Counter registers a counter family with the given label names.
func (r *Registry) Counter(name, help string, labels ...string) *CounterVec {
	return &CounterVec{fam: r.register(&family{
		name: name, help: help, typ: "counter", labels: labels, series: map[string]*series{},
	})}
}

// Gauge registers a gauge family with the given label names.
func (r *Registry) Gauge(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{fam: r.register(&family{
		name: name, help: help, typ: "gauge", labels: labels, series: map[string]*series{},
	})}
}

// Histogram registers a histogram family with the given cumulative
// bucket upper bounds (ascending; +Inf is implicit) and label names.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	return &HistogramVec{fam: r.register(&family{
		name: name, help: help, typ: "histogram", labels: labels,
		buckets: append([]float64(nil), buckets...), series: map[string]*series{},
	})}
}

// Collect registers a render-time family: fn runs at every Render and
// emits (labelValues, value) pairs. Use it for derived metrics with no
// write path of their own. typ is the exposition TYPE ("counter",
// "gauge", "summary"). A family that emits nothing is omitted entirely.
func (r *Registry) Collect(name, help, typ string, labels []string,
	fn func(emit func(labelValues []string, value float64))) {
	r.register(&family{name: name, help: help, typ: typ, labels: labels, collect: fn})
}

// seriesKey joins label values into a sortable map key.
func seriesKey(values []string) string { return strings.Join(values, "\xff") }

// with returns (creating if needed) the series for the label values.
func (f *family) with(values []string) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d",
			f.name, len(f.labels), len(values)))
	}
	key := seriesKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[key]
	if !ok {
		if f.maxSeries > 0 && len(f.series) >= f.maxSeries {
			// Cardinality cap: spill to the blackhole series and count
			// the refusal, so a runaway caller can't OOM the exposition
			// path and the loss stays observable.
			if f.overflow == nil {
				f.overflow = &series{}
				if f.typ == "histogram" {
					f.overflow.counts = make([]uint64, len(f.buckets))
				}
			}
			f.reg.noteDroppedSeries(f.name)
			return f.overflow
		}
		s = &series{labels: append([]string(nil), values...)}
		if f.typ == "histogram" {
			s.counts = make([]uint64, len(f.buckets))
		}
		f.series[key] = s
	}
	return s
}

// CounterVec is a counter family handle.
type CounterVec struct{ fam *family }

// With resolves the counter for the given label values.
func (v *CounterVec) With(labelValues ...string) Counter {
	return Counter{s: v.fam.with(labelValues)}
}

// Sum totals the family across all series. Keys are sorted so the
// float accumulation order (and thus the rounding) is deterministic.
func (v *CounterVec) Sum() float64 {
	v.fam.mu.Lock()
	defer v.fam.mu.Unlock()
	keys := make([]string, 0, len(v.fam.series))
	for k := range v.fam.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	total := 0.0
	for _, k := range keys {
		s := v.fam.series[k]
		s.mu.Lock()
		total += s.value
		s.mu.Unlock()
	}
	return total
}

// Counter is one monotonically increasing series.
type Counter struct{ s *series }

// Inc adds one.
func (c Counter) Inc() { c.Add(1) }

// Add increases the counter by delta (which must be non-negative).
func (c Counter) Add(delta float64) {
	if c.s == nil || delta < 0 {
		return
	}
	c.s.mu.Lock()
	c.s.value += delta
	c.s.mu.Unlock()
}

// Value reads the current count.
func (c Counter) Value() float64 {
	if c.s == nil {
		return 0
	}
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	return c.s.value
}

// GaugeVec is a gauge family handle.
type GaugeVec struct{ fam *family }

// With resolves the gauge for the given label values.
func (v *GaugeVec) With(labelValues ...string) Gauge {
	return Gauge{s: v.fam.with(labelValues)}
}

// Gauge is one settable series.
type Gauge struct{ s *series }

// Set replaces the gauge's value.
func (g Gauge) Set(v float64) {
	if g.s == nil {
		return
	}
	g.s.mu.Lock()
	g.s.value = v
	g.s.mu.Unlock()
}

// Add shifts the gauge by delta (negative deltas decrease it).
func (g Gauge) Add(delta float64) {
	if g.s == nil {
		return
	}
	g.s.mu.Lock()
	g.s.value += delta
	g.s.mu.Unlock()
}

// Value reads the current value.
func (g Gauge) Value() float64 {
	if g.s == nil {
		return 0
	}
	g.s.mu.Lock()
	defer g.s.mu.Unlock()
	return g.s.value
}

// HistogramVec is a histogram family handle.
type HistogramVec struct{ fam *family }

// With resolves the histogram for the given label values.
func (v *HistogramVec) With(labelValues ...string) Histogram {
	return Histogram{s: v.fam.with(labelValues), buckets: v.fam.buckets}
}

// Histogram is one labelled distribution.
type Histogram struct {
	s       *series
	buckets []float64
}

// Observe records one sample.
func (h Histogram) Observe(v float64) {
	if h.s == nil {
		return
	}
	h.s.mu.Lock()
	defer h.s.mu.Unlock()
	// counts are per-bucket (non-cumulative); Render cumulates into the
	// le-labelled Prometheus form.
	for i, bound := range h.buckets {
		if v <= bound {
			h.s.counts[i]++
			break
		}
	}
	h.s.count++
	h.s.sum += v
}

// Render emits the text exposition: families sorted by name, each with
// # HELP and # TYPE headers, series sorted by label values. Families
// with no series (and Collect families that emit nothing) are omitted.
func (r *Registry) Render() string {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, 0, len(names))
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		f.render(&b)
	}
	return b.String()
}

// samplePoint is one rendered series value.
type samplePoint struct {
	labels []string
	value  float64
	// histogram extras
	counts []uint64
	count  uint64
	sum    float64
}

// render writes one family's block to b.
func (f *family) render(b *strings.Builder) {
	var points []samplePoint
	if f.collect != nil {
		f.collect(func(labelValues []string, value float64) {
			points = append(points, samplePoint{
				labels: append([]string(nil), labelValues...), value: value,
			})
		})
	} else {
		f.mu.Lock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.series[k]
			s.mu.Lock()
			points = append(points, samplePoint{
				labels: s.labels, value: s.value,
				counts: append([]uint64(nil), s.counts...), count: s.count, sum: s.sum,
			})
			s.mu.Unlock()
		}
		f.mu.Unlock()
	}
	if len(points) == 0 {
		return
	}
	sort.Slice(points, func(i, j int) bool {
		return seriesKey(points[i].labels) < seriesKey(points[j].labels)
	})
	fmt.Fprintf(b, "# HELP %s %s\n", f.name, f.help)
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.typ)
	for _, p := range points {
		if f.typ == "histogram" && f.collect == nil {
			f.renderHistogram(b, p)
			continue
		}
		fmt.Fprintf(b, "%s%s %s\n", f.name, labelBlock(f.labels, p.labels), formatValue(p.value))
	}
}

// renderHistogram writes one histogram series: cumulative buckets with
// an le label, then _sum and _count.
func (f *family) renderHistogram(b *strings.Builder, p samplePoint) {
	cum := uint64(0)
	for i, bound := range f.buckets {
		cum += p.counts[i]
		fmt.Fprintf(b, "%s_bucket%s %d\n", f.name,
			labelBlock(append(f.labels, "le"), append(p.labels, formatValue(bound))), cum)
	}
	fmt.Fprintf(b, "%s_bucket%s %d\n", f.name,
		labelBlock(append(f.labels, "le"), append(p.labels, "+Inf")), p.count)
	fmt.Fprintf(b, "%s_sum%s %s\n", f.name, labelBlock(f.labels, p.labels), formatValue(p.sum))
	fmt.Fprintf(b, "%s_count%s %d\n", f.name, labelBlock(f.labels, p.labels), p.count)
}

// labelBlock renders {k1="v1",k2="v2"}, or "" with no labels.
func labelBlock(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, name := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", name, values[i])
	}
	b.WriteByte('}')
	return b.String()
}

// formatValue prints whole numbers without a fractional part and
// everything else in shortest round-trip form.
func formatValue(v float64) string {
	//archlint:ignore floatcmp exact integrality test chooses a print format; approximate comparison would misrender near-integers
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
