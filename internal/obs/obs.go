// Package obs is archline's stdlib-only observability layer: the
// tracing, structured logging, and metrics plumbing that makes the
// measure→fit→serve pipeline's self-healing visible. The measurement
// literature the repo reproduces argues that an energy study is only as
// trustworthy as the telemetry around it; the same holds for the
// service layer — retries, discarded repeats, Huber re-fits, breaker
// trips, and chaos injections must be observable, not inferred from
// final return values.
//
// Three facilities, all built on the standard library alone:
//
//   - Spans (trace.go): context-propagated spans with attributes and
//     timed events. A Tracer exports every ended span as one NDJSON
//     line, so a whole run becomes a greppable span tree. With no
//     Tracer on the context, Start returns a nil *Span whose methods
//     are all no-ops — instrumented code pays nothing when tracing is
//     off and never nil-checks.
//
//   - Logs (log.go): log/slog JSON logging through a context-aware
//     handler that stamps every record with the request ID and the
//     active span's identifiers, tying log lines to traces.
//
//   - Metrics (metrics.go): a registry of counters, gauges, and
//     histograms rendered as a Prometheus-style text exposition with
//     # HELP / # TYPE headers, plus render-time Collect families for
//     derived values (uptime, quantiles, breaker state).
//
// The canonical span idiom, enforced repo-wide by the archlint
// spanclose analyzer:
//
//	ctx, span := obs.Start(ctx, "sim.measure", obs.String("kernel", k.Name))
//	defer span.End()
package obs
