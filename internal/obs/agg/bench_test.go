package agg

import (
	"strconv"
	"testing"
)

// BenchmarkAggRecord measures the hot recording path: one counter
// increment plus one timer append against warmed cells, the exact work
// the server does per finished request. The acceptance bar is 0
// allocs/op; see TestZeroAllocHotPath for the enforced pin.
func BenchmarkAggRecord(b *testing.B) {
	a := New(Config{})
	c := a.Counter("reqs", 2, func([]string, float64) {}, Opts{})
	tm := a.Timer("lat", 1, func([]string, []float64) {}, Opts{})
	c.Add2("/v1/query", "200", 1)
	tm.Observe1("/v1/query", 0.001)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Add2("/v1/query", "200", 1)
		tm.Observe1("/v1/query", 0.001)
		if i%1024 == 0 {
			// Keep the timer ring from spending the whole benchmark in
			// overwrite mode accounting drops.
			b.StopTimer()
			a.Flush()
			b.StartTimer()
		}
	}
}

// BenchmarkAggRecordParallel drives the same recording from all
// available procs across a spread of label tuples: the striped shards
// must keep goroutines from serializing on one lock (the
// lock-contention-collapse check; run with -cpu 8 to pin the
// 8-goroutine figure).
func BenchmarkAggRecordParallel(b *testing.B) {
	a := New(Config{})
	c := a.Counter("reqs", 2, func([]string, float64) {}, Opts{})
	endpoints := []string{
		"/v1/query", "/v1/batch", "/v1/compare", "/v1/whatif",
		"/v1/platforms", "/v1/fit", "/healthz", "/metrics",
	}
	for _, ep := range endpoints {
		c.Add2(ep, "200", 1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			c.Add2(endpoints[i&7], "200", 1)
			i++
		}
	})
}

// BenchmarkAggFlush measures a flush over a realistic population: 64
// counter series with pending deltas and 16 timer series with full
// rings, the per-interval cost the flusher goroutine pays.
func BenchmarkAggFlush(b *testing.B) {
	a := New(Config{})
	c := a.Counter("reqs", 1, func([]string, float64) {}, Opts{})
	tm := a.Timer("lat", 1, func([]string, []float64) {}, Opts{TimerCap: 256})
	eps := make([]string, 64)
	for i := range eps {
		eps[i] = "/v1/endpoint-" + strconv.Itoa(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for _, ep := range eps {
			c.Add1(ep, 1)
		}
		for j := 0; j < 16; j++ {
			for k := 0; k < 256; k++ {
				tm.Observe1(eps[j], float64(k)*0.0001)
			}
		}
		b.StartTimer()
		a.Flush()
	}
}
