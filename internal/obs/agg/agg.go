// Package agg implements a statsd-style buffered aggregation stage for
// high-cardinality metrics: hot-path recording is a striped-map
// increment or a bounded-buffer append, and an explicit Flush drains
// the accumulated state into caller-supplied sinks (typically the
// families of an obs.Registry). The package exists because a histogram
// lock per observation cannot scale to per-user or per-platform label
// cardinality under heavy traffic: here the per-observation cost is one
// shard mutex from a striped pool plus an in-place update, with zero
// heap allocation once a series' cell exists.
//
// Four aggregation shapes are supported, mirroring the statsd metric
// taxonomy:
//
//   - Counter: sums deltas between flushes; flush emits the delta and
//     resets to zero.
//   - Gauge: keeps the last value set; flush emits it and keeps it.
//   - Set: counts distinct string members per interval; flush emits the
//     cardinality and clears the membership.
//   - Timer: appends float64 samples to a bounded ring per series;
//     flush hands the samples to the sink and resets the ring. When a
//     ring is full the oldest samples are overwritten and counted as
//     dropped — bounded loss under overload instead of unbounded
//     memory.
//
// Cardinality is hard-capped per family: once MaxSeries distinct label
// tuples exist, recordings against new tuples are dropped and counted
// (Stats.DroppedSeries), never stored. A buggy or hostile caller can
// therefore cost at most cap×cell memory per family, and the loss is
// observable instead of silent.
//
// Concurrency: each family's series live in a power-of-two pool of
// shards, each a mutex plus a map keyed by the label tuple. Recording
// locks exactly one shard; Flush walks the shards one at a time, so
// recording and flushing interleave without a global stall. Sinks run
// with the owning shard locked and must not call back into the family.
package agg

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Defaults for zero Config fields.
const (
	// DefaultShards is the stripe count per family. Sixteen mutexes
	// keep eight recording goroutines from serializing while staying
	// small enough that a flush walk is cheap.
	DefaultShards = 16
	// DefaultMaxSeries bounds distinct label tuples per family.
	DefaultMaxSeries = 1024
	// DefaultTimerCap bounds buffered samples per timer series per
	// flush interval.
	DefaultTimerCap = 1024
)

// Config tunes an Aggregator.
type Config struct {
	// Shards is the stripe count per family, rounded up to a power of
	// two. Zero means DefaultShards.
	Shards int
	// MaxSeries caps distinct label tuples per family unless a family
	// overrides it. Zero means DefaultMaxSeries.
	MaxSeries int
	// TimerCap caps buffered samples per timer series per interval
	// unless a family overrides it. Zero means DefaultTimerCap.
	TimerCap int
}

// Aggregator owns a set of families and flushes them together.
type Aggregator struct {
	cfg Config

	mu     sync.Mutex // guards registration
	fams   []*family
	byName map[string]*family
}

// New builds an empty aggregator.
func New(cfg Config) *Aggregator {
	if cfg.Shards <= 0 {
		cfg.Shards = DefaultShards
	}
	cfg.Shards = ceilPow2(cfg.Shards)
	if cfg.MaxSeries <= 0 {
		cfg.MaxSeries = DefaultMaxSeries
	}
	if cfg.TimerCap <= 0 {
		cfg.TimerCap = DefaultTimerCap
	}
	return &Aggregator{cfg: cfg, byName: map[string]*family{}}
}

// ceilPow2 rounds n up to the next power of two.
func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// kind is the aggregation shape of a family.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindSet
	kindTimer
)

// tuple is an up-to-two-label series key. A fixed-size struct keys the
// shard maps without joining strings, so a lookup allocates nothing.
type tuple struct{ a, b string }

// cell is one series' accumulation state. Which fields are live depends
// on the family kind.
type cell struct {
	labels []string // materialized once at creation, passed to sinks

	n       float64             // counter delta / gauge value
	touched bool                // gauge: set since construction
	members map[string]struct{} // set membership this interval
	buf     []float64           // timer samples this interval (cap fixed)
	next    int                 // timer ring cursor once buf is full
}

// shard is one stripe of a family's series.
type shard struct {
	mu    sync.Mutex
	cells map[tuple]*cell
}

// family is one named aggregation with a fixed label arity.
type family struct {
	name     string
	kind     kind
	arity    int
	maxSer   int
	timerCap int
	shards   []*shard
	mask     uint64

	series         atomic.Int64  // live cells across shards
	droppedSeries  atomic.Uint64 // recordings refused by the cap
	droppedSamples atomic.Uint64 // timer samples overwritten before flush

	counterSink func(labels []string, delta float64)
	gaugeSink   func(labels []string, value float64)
	setSink     func(labels []string, distinct float64)
	timerSink   func(labels []string, samples []float64)
}

// Opts overrides per-family limits at registration.
type Opts struct {
	// MaxSeries, when positive, overrides Config.MaxSeries.
	MaxSeries int
	// TimerCap, when positive, overrides Config.TimerCap (timer
	// families only).
	TimerCap int
}

// register adds a family, panicking on a duplicate name or a bad arity:
// like obs.Registry, aggregation registration is static configuration
// and a clash is a programming error.
func (a *Aggregator) register(name string, k kind, arity int, opts Opts) *family {
	if arity < 0 || arity > 2 {
		panic(fmt.Sprintf("agg: family %q wants %d labels; 0-2 supported", name, arity))
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, dup := a.byName[name]; dup {
		panic(fmt.Sprintf("agg: duplicate family %q", name))
	}
	f := &family{
		name:     name,
		kind:     k,
		arity:    arity,
		maxSer:   a.cfg.MaxSeries,
		timerCap: a.cfg.TimerCap,
		shards:   make([]*shard, a.cfg.Shards),
		mask:     uint64(a.cfg.Shards - 1),
	}
	if opts.MaxSeries > 0 {
		f.maxSer = opts.MaxSeries
	}
	if opts.TimerCap > 0 {
		f.timerCap = opts.TimerCap
	}
	for i := range f.shards {
		f.shards[i] = &shard{cells: map[tuple]*cell{}}
	}
	a.fams = append(a.fams, f)
	a.byName[name] = f
	return f
}

// Counter registers a counter family: deltas sum between flushes and
// the sink receives each nonzero series delta at flush.
func (a *Aggregator) Counter(name string, arity int, sink func(labels []string, delta float64), opts Opts) *Counter {
	f := a.register(name, kindCounter, arity, opts)
	f.counterSink = sink
	return &Counter{f: f}
}

// Gauge registers a gauge family: the last value set wins and the sink
// receives every touched series' value at flush.
func (a *Aggregator) Gauge(name string, arity int, sink func(labels []string, value float64), opts Opts) *Gauge {
	f := a.register(name, kindGauge, arity, opts)
	f.gaugeSink = sink
	return &Gauge{f: f}
}

// Set registers a set family: distinct members accumulate per interval
// and the sink receives each nonempty series' cardinality at flush.
func (a *Aggregator) Set(name string, arity int, sink func(labels []string, distinct float64), opts Opts) *Set {
	f := a.register(name, kindSet, arity, opts)
	f.setSink = sink
	return &Set{f: f}
}

// Timer registers a timer family: samples buffer per series (bounded by
// TimerCap) and the sink receives each nonempty series' samples at
// flush. The sink must not retain the slice; it is reused.
func (a *Aggregator) Timer(name string, arity int, sink func(labels []string, samples []float64), opts Opts) *Timer {
	f := a.register(name, kindTimer, arity, opts)
	f.timerSink = sink
	return &Timer{f: f}
}

// hash is FNV-1a over the tuple's strings with a separator, allocation
// free.
func (t tuple) hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(t.a); i++ {
		h = (h ^ uint64(t.a[i])) * prime64
	}
	h = (h ^ 0xff) * prime64
	for i := 0; i < len(t.b); i++ {
		h = (h ^ uint64(t.b[i])) * prime64
	}
	return h
}

// cellFor locks the owning shard and returns the cell for key, creating
// it if the cardinality cap allows. The caller must unlock sh.mu when
// done with the cell. A nil cell means the recording was dropped (and
// counted); the shard is already unlocked in that case.
func (f *family) cellFor(key tuple) (*cell, *shard) {
	sh := f.shards[key.hash()&f.mask]
	sh.mu.Lock()
	c, ok := sh.cells[key]
	if !ok {
		if f.series.Load() >= int64(f.maxSer) {
			sh.mu.Unlock()
			f.droppedSeries.Add(1)
			return nil, nil
		}
		c = &cell{}
		switch f.arity {
		case 0:
			c.labels = nil
		case 1:
			c.labels = []string{key.a}
		default:
			c.labels = []string{key.a, key.b}
		}
		switch f.kind {
		case kindSet:
			c.members = make(map[string]struct{})
		case kindTimer:
			c.buf = make([]float64, 0, f.timerCap)
		}
		sh.cells[key] = c
		f.series.Add(1)
	}
	return c, sh
}

// checkArity panics when a recording call's label count does not match
// the family's registration — the same misuse contract obs.Registry
// enforces.
func (f *family) checkArity(n int) {
	if f.arity != n {
		panic(fmt.Sprintf("agg: family %q wants %d label(s), got %d", f.name, f.arity, n))
	}
}

// Counter is a counter family handle.
type Counter struct{ f *family }

// Add accumulates delta on the unlabelled series.
func (c *Counter) Add(delta float64) { c.f.checkArity(0); c.f.add(tuple{}, delta) }

// Add1 accumulates delta on the series for one label value.
func (c *Counter) Add1(l1 string, delta float64) { c.f.checkArity(1); c.f.add(tuple{a: l1}, delta) }

// Add2 accumulates delta on the series for two label values.
func (c *Counter) Add2(l1, l2 string, delta float64) {
	c.f.checkArity(2)
	c.f.add(tuple{a: l1, b: l2}, delta)
}

// add is the shared counter/gauge write.
func (f *family) add(key tuple, delta float64) {
	c, sh := f.cellFor(key)
	if c == nil {
		return
	}
	c.n += delta
	sh.mu.Unlock()
}

// Gauge is a gauge family handle.
type Gauge struct{ f *family }

// Set replaces the unlabelled series' value.
func (g *Gauge) Set(v float64) { g.f.checkArity(0); g.f.set(tuple{}, v) }

// Set1 replaces the value of the series for one label value.
func (g *Gauge) Set1(l1 string, v float64) { g.f.checkArity(1); g.f.set(tuple{a: l1}, v) }

func (f *family) set(key tuple, v float64) {
	c, sh := f.cellFor(key)
	if c == nil {
		return
	}
	c.n = v
	c.touched = true
	sh.mu.Unlock()
}

// Set is a distinct-member set family handle.
type Set struct{ f *family }

// Insert adds member to the unlabelled series' interval membership.
func (s *Set) Insert(member string) { s.f.checkArity(0); s.f.insert(tuple{}, member) }

// Insert1 adds member to the membership of the series for one label
// value.
func (s *Set) Insert1(l1, member string) { s.f.checkArity(1); s.f.insert(tuple{a: l1}, member) }

func (f *family) insert(key tuple, member string) {
	c, sh := f.cellFor(key)
	if c == nil {
		return
	}
	c.members[member] = struct{}{}
	sh.mu.Unlock()
}

// Timer is a timer family handle.
type Timer struct{ f *family }

// Observe appends a sample to the unlabelled series.
func (t *Timer) Observe(v float64) { t.f.checkArity(0); t.f.observe(tuple{}, v) }

// Observe1 appends a sample to the series for one label value.
func (t *Timer) Observe1(l1 string, v float64) { t.f.checkArity(1); t.f.observe(tuple{a: l1}, v) }

// Observe2 appends a sample to the series for two label values.
func (t *Timer) Observe2(l1, l2 string, v float64) {
	t.f.checkArity(2)
	t.f.observe(tuple{a: l1, b: l2}, v)
}

func (f *family) observe(key tuple, v float64) {
	c, sh := f.cellFor(key)
	if c == nil {
		return
	}
	if len(c.buf) < cap(c.buf) {
		c.buf = append(c.buf, v)
	} else {
		// Ring overwrite: keep the newest cap samples, count the loss.
		c.buf[c.next] = v
		c.next = (c.next + 1) % len(c.buf)
		f.droppedSamples.Add(1)
	}
	sh.mu.Unlock()
}

// Flush drains every family into its sink: counter deltas reset, gauge
// values persist, set memberships clear, timer buffers reset (capacity
// kept, so the hot path stays allocation-free). Series cells are never
// deleted — interning is permanent, bounded by the cardinality cap.
// Sinks run with the owning shard locked; recording against other
// shards proceeds concurrently.
func (a *Aggregator) Flush() {
	a.mu.Lock()
	fams := a.fams
	a.mu.Unlock()
	for _, f := range fams {
		for _, sh := range f.shards {
			sh.mu.Lock()
			for _, c := range sh.cells {
				switch f.kind {
				case kindCounter:
					if c.n != 0 {
						f.counterSink(c.labels, c.n)
						c.n = 0
					}
				case kindGauge:
					if c.touched {
						f.gaugeSink(c.labels, c.n)
					}
				case kindSet:
					if len(c.members) > 0 {
						f.setSink(c.labels, float64(len(c.members)))
						clear(c.members)
					}
				case kindTimer:
					if len(c.buf) > 0 {
						f.timerSink(c.labels, c.buf)
						c.buf = c.buf[:0]
						c.next = 0
					}
				}
			}
			sh.mu.Unlock()
		}
	}
}

// FamilyStats is one family's cardinality accounting.
type FamilyStats struct {
	Name           string
	Series         int
	DroppedSeries  uint64
	DroppedSamples uint64
}

// Stats reports per-family cardinality and loss counters, in family
// registration order (never from a map), so callers can render them
// deterministically.
func (a *Aggregator) Stats() []FamilyStats {
	a.mu.Lock()
	fams := a.fams
	a.mu.Unlock()
	out := make([]FamilyStats, 0, len(fams))
	for _, f := range fams {
		out = append(out, FamilyStats{
			Name:           f.name,
			Series:         int(f.series.Load()),
			DroppedSeries:  f.droppedSeries.Load(),
			DroppedSamples: f.droppedSamples.Load(),
		})
	}
	return out
}
