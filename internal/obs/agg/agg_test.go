package agg

import (
	"fmt"
	"sort"
	"sync"
	"testing"
)

// sinkRec captures sink emissions as "label,label=value" strings so
// tests can assert on them order-independently.
type sinkRec struct {
	mu    sync.Mutex
	lines []string
}

func (r *sinkRec) noteValue(labels []string, v float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := ""
	for i, l := range labels {
		if i > 0 {
			key += ","
		}
		key += l
	}
	r.lines = append(r.lines, fmt.Sprintf("%s=%g", key, v))
}

func (r *sinkRec) sorted() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := append([]string(nil), r.lines...)
	sort.Strings(out)
	return out
}

func (r *sinkRec) reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.lines = nil
}

func eq(t *testing.T, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

// TestCounterFlushDeltas checks counters sum deltas between flushes,
// emit once per nonzero series, and reset: a second flush with no new
// recordings emits nothing.
func TestCounterFlushDeltas(t *testing.T) {
	a := New(Config{})
	var rec sinkRec
	c := a.Counter("reqs", 2, rec.noteValue, Opts{})
	c.Add2("/v1/query", "200", 1)
	c.Add2("/v1/query", "200", 1)
	c.Add2("/v1/query", "400", 1)
	c.Add2("/healthz", "200", 5)

	a.Flush()
	eq(t, rec.sorted(), []string{"/healthz,200=5", "/v1/query,200=2", "/v1/query,400=1"})

	rec.reset()
	a.Flush()
	if got := rec.sorted(); len(got) != 0 {
		t.Fatalf("second flush emitted %v, want nothing", got)
	}

	// New recordings after a flush start from zero again.
	c.Add2("/v1/query", "200", 3)
	a.Flush()
	eq(t, rec.sorted(), []string{"/v1/query,200=3"})
}

// TestGaugeKeepsLatest checks gauges emit the last value set and keep
// emitting it on later flushes (a gauge has no delta to reset).
func TestGaugeKeepsLatest(t *testing.T) {
	a := New(Config{})
	var rec sinkRec
	g := a.Gauge("depth", 1, rec.noteValue, Opts{})
	g.Set1("q0", 4)
	g.Set1("q0", 7)
	a.Flush()
	eq(t, rec.sorted(), []string{"q0=7"})

	rec.reset()
	a.Flush()
	eq(t, rec.sorted(), []string{"q0=7"})
}

// TestSetDistinct checks sets count distinct members per interval and
// clear at flush.
func TestSetDistinct(t *testing.T) {
	a := New(Config{})
	var rec sinkRec
	s := a.Set("platforms", 0, rec.noteValue, Opts{})
	s.Insert("gtx-titan")
	s.Insert("gtx-titan")
	s.Insert("i7-3615qm")
	a.Flush()
	eq(t, rec.sorted(), []string{"=2"})

	rec.reset()
	a.Flush()
	if got := rec.sorted(); len(got) != 0 {
		t.Fatalf("cleared set emitted %v, want nothing", got)
	}
	s.Insert("arm1176")
	a.Flush()
	eq(t, rec.sorted(), []string{"=1"})
}

// TestTimerFlushAndReset checks timers hand their buffered samples to
// the sink and reset, and that two flushes of one recording emit once.
func TestTimerFlushAndReset(t *testing.T) {
	a := New(Config{})
	var (
		mu      sync.Mutex
		flushed = map[string][]float64{}
	)
	tm := a.Timer("lat", 1, func(labels []string, samples []float64) {
		mu.Lock()
		defer mu.Unlock()
		flushed[labels[0]] = append(flushed[labels[0]], samples...)
	}, Opts{})
	tm.Observe1("/v1/query", 0.25)
	tm.Observe1("/v1/query", 0.5)
	tm.Observe1("/healthz", 0.001)
	a.Flush()
	a.Flush()

	if got := flushed["/v1/query"]; len(got) != 2 || got[0] != 0.25 || got[1] != 0.5 {
		t.Fatalf("/v1/query samples = %v, want [0.25 0.5] in recording order", got)
	}
	if got := flushed["/healthz"]; len(got) != 1 || got[0] != 0.001 {
		t.Fatalf("/healthz samples = %v", got)
	}
}

// TestCardinalityCapSpills checks a family refuses new label tuples
// past its cap, counts every refusal, and keeps serving the interned
// tuples.
func TestCardinalityCapSpills(t *testing.T) {
	a := New(Config{})
	var rec sinkRec
	c := a.Counter("by_user", 1, rec.noteValue, Opts{MaxSeries: 4})
	for i := 0; i < 4; i++ {
		c.Add1(fmt.Sprintf("user-%d", i), 1)
	}
	// Past the cap: dropped, not stored.
	c.Add1("user-4", 1)
	c.Add1("user-5", 1)
	c.Add1("user-5", 1)
	// An interned tuple still records.
	c.Add1("user-0", 1)

	a.Flush()
	eq(t, rec.sorted(), []string{"user-0=2", "user-1=1", "user-2=1", "user-3=1"})

	st := a.Stats()
	if len(st) != 1 || st[0].Name != "by_user" {
		t.Fatalf("stats = %+v", st)
	}
	if st[0].Series != 4 || st[0].DroppedSeries != 3 {
		t.Errorf("series=%d dropped=%d, want 4 interned and 3 dropped", st[0].Series, st[0].DroppedSeries)
	}
}

// TestTimerOverflowDrops checks a full timer ring overwrites the oldest
// samples, counts the loss, and never grows past its cap.
func TestTimerOverflowDrops(t *testing.T) {
	a := New(Config{})
	var got []float64
	tm := a.Timer("lat", 0, func(_ []string, samples []float64) {
		got = append([]float64(nil), samples...)
	}, Opts{TimerCap: 4})
	for i := 0; i < 7; i++ {
		tm.Observe(float64(i))
	}
	a.Flush()
	if len(got) != 4 {
		t.Fatalf("flushed %d samples, want 4 (the cap)", len(got))
	}
	// Samples 0-2 were overwritten by 4-6; the ring holds 3..6.
	sort.Float64s(got)
	for i, want := range []float64{3, 4, 5, 6} {
		if got[i] != want {
			t.Fatalf("ring kept %v, want the newest 4 samples [3 4 5 6]", got)
		}
	}
	if st := a.Stats(); st[0].DroppedSamples != 3 {
		t.Errorf("dropped samples = %d, want 3", st[0].DroppedSamples)
	}
}

// TestArityEnforced checks a label-count mismatch panics at the
// recording site, the same misuse contract as obs.Registry.
func TestArityEnforced(t *testing.T) {
	a := New(Config{})
	c := a.Counter("c", 1, func([]string, float64) {}, Opts{})
	defer func() {
		if recover() == nil {
			t.Fatal("arity mismatch did not panic")
		}
	}()
	c.Add(1) // family wants 1 label
}

// TestDuplicateFamilyPanics checks duplicate registration panics.
func TestDuplicateFamilyPanics(t *testing.T) {
	a := New(Config{})
	a.Counter("dup", 0, func([]string, float64) {}, Opts{})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate family did not panic")
		}
	}()
	a.Gauge("dup", 0, func([]string, float64) {}, Opts{})
}

// TestConcurrentRecordFlushStorm hammers every family shape from many
// goroutines while a flusher drains and a reader polls Stats. Under
// -race this is the striping's thread-safety proof; the counter total
// must land exactly.
func TestConcurrentRecordFlushStorm(t *testing.T) {
	a := New(Config{Shards: 8})
	var (
		mu    sync.Mutex
		total float64
	)
	c := a.Counter("reqs", 2, func(_ []string, delta float64) {
		mu.Lock()
		total += delta
		mu.Unlock()
	}, Opts{})
	tm := a.Timer("lat", 1, func(_ []string, _ []float64) {}, Opts{})
	s := a.Set("users", 0, func(_ []string, _ float64) {}, Opts{})
	g := a.Gauge("depth", 0, func(_ []string, _ float64) {}, Opts{})

	const (
		goroutines = 8
		perG       = 500
	)
	endpoints := []string{"/v1/query", "/v1/batch", "/v1/compare", "/healthz"}
	var wg sync.WaitGroup
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				ep := endpoints[(gi+i)%len(endpoints)]
				c.Add2(ep, "200", 1)
				tm.Observe1(ep, float64(i)*0.001)
				s.Insert(ep)
				g.Set(float64(i))
			}
		}(gi)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			a.Flush()
			_ = a.Stats()
		}
	}()
	wg.Wait()
	<-done
	a.Flush()

	mu.Lock()
	defer mu.Unlock()
	if want := float64(goroutines * perG); total != want {
		t.Errorf("flushed counter total = %g, want %g (no increment may be lost or doubled)", total, want)
	}
}

// TestZeroAllocHotPath pins the recording hot path at zero heap
// allocations once a series' cell exists — the property that lets the
// server record per-request metrics without GC pressure.
func TestZeroAllocHotPath(t *testing.T) {
	a := New(Config{})
	c := a.Counter("reqs", 2, func([]string, float64) {}, Opts{})
	tm := a.Timer("lat", 1, func([]string, []float64) {}, Opts{TimerCap: 1 << 16})
	s := a.Set("users", 1, func([]string, float64) {}, Opts{})
	g := a.Gauge("depth", 1, func([]string, float64) {}, Opts{})
	// Warm the cells and the set membership.
	c.Add2("/v1/query", "200", 1)
	tm.Observe1("/v1/query", 0.001)
	s.Insert1("shard0", "user-1")
	g.Set1("shard0", 1)

	if n := testing.AllocsPerRun(1000, func() { c.Add2("/v1/query", "200", 1) }); n != 0 {
		t.Errorf("counter Add2 allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { tm.Observe1("/v1/query", 0.002) }); n != 0 {
		t.Errorf("timer Observe1 allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { s.Insert1("shard0", "user-1") }); n != 0 {
		t.Errorf("set Insert1 of a seen member allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set1("shard0", 2) }); n != 0 {
		t.Errorf("gauge Set1 allocates %.1f/op, want 0", n)
	}
}
