package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one span or event attribute. Values should be strings, bools,
// ints, or float64s so the NDJSON export stays flat and greppable.
type Attr struct {
	Key   string
	Value any
}

// String builds a string attribute.
func String(key, value string) Attr { return Attr{Key: key, Value: value} }

// Int builds an integer attribute.
func Int(key string, value int) Attr { return Attr{Key: key, Value: value} }

// Float builds a float attribute.
func Float(key string, value float64) Attr { return Attr{Key: key, Value: value} }

// Bool builds a boolean attribute.
func Bool(key string, value bool) Attr { return Attr{Key: key, Value: value} }

// Event is one timed occurrence inside a span: a retry, a discarded
// repeat, a breaker trip.
type Event struct {
	Name   string
	Offset time.Duration // since the span started
	Attrs  []Attr
}

// TracerStats counts what a tracer has processed; the obs self-metrics
// on /metrics come from here.
type TracerStats struct {
	Started     int64
	Ended       int64
	Events      int64
	WriteErrors int64
}

// Tracer assigns span identities and exports every ended span as one
// NDJSON line on w. It is safe for concurrent use; lines are written
// whole under a mutex so concurrent spans never interleave bytes.
type Tracer struct {
	w   io.Writer
	now func() time.Time
	seq atomic.Uint64

	mu sync.Mutex // serializes writes to w

	started     atomic.Int64
	ended       atomic.Int64
	events      atomic.Int64
	writeErrors atomic.Int64
}

// NewTracer builds a tracer exporting NDJSON span records to w.
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{w: w, now: time.Now}
}

// SetClock replaces the tracer's clock. Call before any span starts;
// tests use it to pin timestamps.
func (t *Tracer) SetClock(now func() time.Time) { t.now = now }

// Stats snapshots the tracer's self-counters.
func (t *Tracer) Stats() TracerStats {
	return TracerStats{
		Started:     t.started.Load(),
		Ended:       t.ended.Load(),
		Events:      t.events.Load(),
		WriteErrors: t.writeErrors.Load(),
	}
}

// Span is one traced operation. A nil *Span is valid and inert: every
// method is a no-op, so instrumented code never checks whether tracing
// is enabled.
type Span struct {
	tracer *Tracer
	name   string
	trace  string
	id     uint64
	parent uint64
	start  time.Time

	mu     sync.Mutex
	attrs  []Attr
	events []Event
	ended  bool
}

// context keys for the tracer, the active span, and the request ID.
type (
	tracerKey    struct{}
	spanKey      struct{}
	requestIDKey struct{}
)

// WithTracer returns a context carrying the tracer; Start on that
// context (and its descendants) produces live spans.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	return context.WithValue(ctx, tracerKey{}, t)
}

// TracerFrom returns the context's tracer, or nil.
func TracerFrom(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey{}).(*Tracer)
	return t
}

// SpanFrom returns the context's active span, or nil.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// WithRequestID returns a context carrying a request ID, which the log
// handler stamps onto every record and Start adopts as the trace ID of
// a new root span.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestID returns the context's request ID, if any.
func RequestID(ctx context.Context) (string, bool) {
	id, ok := ctx.Value(requestIDKey{}).(string)
	return id, ok && id != ""
}

// Detach returns a context that keeps ctx's observability values —
// tracer, request ID, active span — but is never canceled by ctx and
// carries no deadline. Hand it to work that must outlive the request
// that spawned it (an async job): spans started from the detached
// context still parent under the request's span tree and adopt its
// request ID as the trace, while the request's cancellation stops at
// the boundary.
func Detach(ctx context.Context) context.Context {
	return context.WithoutCancel(ctx)
}

// Start begins a span named name under the context's tracer and active
// span. It returns a derived context carrying the new span (so child
// operations nest under it) and the span itself. Without a tracer on
// the context it returns ctx unchanged and a nil span. Every Start must
// be paired with a deferred End in the same block:
//
//	ctx, span := obs.Start(ctx, "fit.platform")
//	defer span.End()
func Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	t := TracerFrom(ctx)
	if t == nil {
		return ctx, nil
	}
	s := &Span{
		tracer: t,
		name:   name,
		id:     t.seq.Add(1),
		start:  t.now(),
		attrs:  append([]Attr(nil), attrs...),
	}
	if parent := SpanFrom(ctx); parent != nil {
		s.trace = parent.trace
		s.parent = parent.id
	} else if id, ok := RequestID(ctx); ok {
		s.trace = id
	} else {
		s.trace = fmt.Sprintf("t%06x", s.id)
	}
	t.started.Add(1)
	return context.WithValue(ctx, spanKey{}, s), s
}

// TraceID returns the span's trace identifier ("" on a nil span).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.trace
}

// ID returns the span's identifier (0 on a nil span).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// SetAttr appends attributes to the span. No-op on nil or ended spans.
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	s.attrs = append(s.attrs, attrs...)
}

// Event records a timed occurrence inside the span. No-op on nil or
// ended spans.
func (s *Span) Event(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	off := s.tracer.now().Sub(s.start)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	s.events = append(s.events, Event{Name: name, Offset: off, Attrs: append([]Attr(nil), attrs...)})
	s.tracer.events.Add(1)
}

// End finishes the span and exports it as one NDJSON line. Idempotent;
// no-op on nil spans. Always defer it right after Start.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := s.tracer.now()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	rec := s.record(end)
	s.mu.Unlock()
	s.tracer.ended.Add(1)
	s.tracer.export(rec)
}

// spanRecord is the NDJSON wire form of one ended span. Struct fields
// give a fixed key order; attr maps are key-sorted by encoding/json, so
// identical spans marshal to identical bytes.
type spanRecord struct {
	Trace  string         `json:"trace"`
	Span   uint64         `json:"span"`
	Parent uint64         `json:"parent,omitempty"`
	Name   string         `json:"name"`
	Start  string         `json:"start"`
	DurMS  float64        `json:"dur_ms"`
	Attrs  map[string]any `json:"attrs,omitempty"`
	Events []eventRecord  `json:"events,omitempty"`
}

// eventRecord is the wire form of one span event.
type eventRecord struct {
	Name     string         `json:"name"`
	OffsetMS float64        `json:"offset_ms"`
	Attrs    map[string]any `json:"attrs,omitempty"`
}

// record builds the export record; the caller holds s.mu.
func (s *Span) record(end time.Time) spanRecord {
	rec := spanRecord{
		Trace:  s.trace,
		Span:   s.id,
		Parent: s.parent,
		Name:   s.name,
		Start:  s.start.UTC().Format(time.RFC3339Nano),
		DurMS:  float64(end.Sub(s.start)) / float64(time.Millisecond),
		Attrs:  attrMap(s.attrs),
	}
	for _, e := range s.events {
		rec.Events = append(rec.Events, eventRecord{
			Name:     e.Name,
			OffsetMS: float64(e.Offset) / float64(time.Millisecond),
			Attrs:    attrMap(e.Attrs),
		})
	}
	return rec
}

// attrMap folds attrs into a map (later keys win); nil when empty so
// the JSON omits the field.
func attrMap(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value
	}
	return m
}

// export marshals and writes one span line.
func (t *Tracer) export(rec spanRecord) {
	line, err := json.Marshal(rec)
	if err != nil {
		t.writeErrors.Add(1)
		return
	}
	line = append(line, '\n')
	t.mu.Lock()
	_, werr := t.w.Write(line)
	t.mu.Unlock()
	if werr != nil {
		t.writeErrors.Add(1)
	}
}
