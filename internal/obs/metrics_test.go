package obs

import (
	"fmt"
	"strings"
	"testing"
)

func TestRegistryRenderExposition(t *testing.T) {
	reg := NewRegistry()
	reqs := reg.Counter("requests_total", "finished requests", "endpoint", "status")
	reqs.With("/a", "200").Add(3)
	reqs.With("/a", "500").Inc()
	reqs.With("/b", "200").Inc()
	g := reg.Gauge("in_flight", "current requests").With()
	g.Set(2)
	h := reg.Histogram("latency_seconds", "request latency", []float64{0.1, 1}, "endpoint")
	h.With("/a").Observe(0.05)
	h.With("/a").Observe(0.5)
	h.With("/a").Observe(5)
	reg.Collect("uptime_seconds", "seconds up", "gauge", nil,
		func(emit func([]string, float64)) { emit(nil, 12.5) })
	reg.Collect("empty_family", "never emits", "gauge", nil,
		func(emit func([]string, float64)) {})

	want := strings.Join([]string{
		`# HELP in_flight current requests`,
		`# TYPE in_flight gauge`,
		`in_flight 2`,
		`# HELP latency_seconds request latency`,
		`# TYPE latency_seconds histogram`,
		`latency_seconds_bucket{endpoint="/a",le="0.1"} 1`,
		`latency_seconds_bucket{endpoint="/a",le="1"} 2`,
		`latency_seconds_bucket{endpoint="/a",le="+Inf"} 3`,
		`latency_seconds_sum{endpoint="/a"} 5.55`,
		`latency_seconds_count{endpoint="/a"} 3`,
		`# HELP requests_total finished requests`,
		`# TYPE requests_total counter`,
		`requests_total{endpoint="/a",status="200"} 3`,
		`requests_total{endpoint="/a",status="500"} 1`,
		`requests_total{endpoint="/b",status="200"} 1`,
		`# HELP uptime_seconds seconds up`,
		`# TYPE uptime_seconds gauge`,
		`uptime_seconds 12.5`,
	}, "\n") + "\n"
	got := reg.Render()
	if got != want {
		t.Errorf("exposition mismatch\ngot:\n%s\nwant:\n%s", got, want)
	}
	if again := reg.Render(); again != got {
		t.Error("two renders of the same state differ")
	}
}

func TestCounterSemantics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "test counter").With()
	c.Inc()
	c.Add(2.5)
	c.Add(-1) // negative deltas are ignored: counters are monotone
	if v := c.Value(); v != 3.5 {
		t.Errorf("counter = %v, want 3.5", v)
	}
	vec := reg.Counter("v_total", "labelled", "k")
	vec.With("a").Add(1)
	vec.With("b").Add(2)
	if s := vec.Sum(); s != 3 {
		t.Errorf("Sum = %v, want 3", s)
	}
}

func TestGaugeSemantics(t *testing.T) {
	g := NewRegistry().Gauge("g", "test gauge").With()
	g.Set(10)
	g.Add(-3)
	if v := g.Value(); v != 7 {
		t.Errorf("gauge = %v, want 7", v)
	}
}

func TestDuplicateFamilyPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dup", "first")
	defer func() {
		if recover() == nil {
			t.Error("duplicate family registration must panic")
		}
	}()
	reg.Gauge("dup", "second")
}

func TestLabelArityPanics(t *testing.T) {
	vec := NewRegistry().Counter("labelled", "two labels", "a", "b")
	defer func() {
		if recover() == nil {
			t.Error("wrong label arity must panic")
		}
	}()
	vec.With("only-one")
}

// TestSeriesCapSpills checks the per-family cardinality guard: past
// the cap, new label tuples are refused (writes land in a blackhole,
// never the exposition), the refusals are counted in
// obs_dropped_series_total, and already-interned series keep recording.
func TestSeriesCapSpills(t *testing.T) {
	reg := NewRegistry()
	reg.SetMaxSeriesPerFamily(4)
	vec := reg.Counter("by_user_total", "per-user requests", "user")
	for i := 0; i < 6; i++ {
		vec.With(fmt.Sprintf("user-%d", i)).Inc()
	}
	// Spilled writes must not lose the nil-safety contract: the
	// returned counter works, it just isn't rendered.
	vec.With("user-5").Add(10)
	// An interned series still records normally.
	vec.With("user-0").Inc()

	exp := reg.Render()
	for _, want := range []string{
		`by_user_total{user="user-0"} 2`,
		`by_user_total{user="user-3"} 1`,
		// Three refused resolutions: user-4, user-5, and user-5 again —
		// the counter tracks refused attempts, so sustained overflow
		// pressure stays visible even at a saturated series count.
		`obs_dropped_series_total{family="by_user_total"} 3`,
	} {
		if !strings.Contains(exp, want) {
			t.Errorf("exposition missing %q in:\n%s", want, exp)
		}
	}
	for _, reject := range []string{`user-4`, `user-5`} {
		if strings.Contains(exp, reject) {
			t.Errorf("capped series %q leaked into the exposition:\n%s", reject, exp)
		}
	}
	if got := vec.Sum(); got != 5 {
		t.Errorf("rendered family sums to %v, want 5 (spilled writes excluded)", got)
	}

	// Histograms spill to a bucketed blackhole without panicking.
	reg2 := NewRegistry()
	reg2.SetMaxSeriesPerFamily(1)
	h := reg2.Histogram("lat", "latency", []float64{1}, "ep")
	h.With("/a").Observe(0.5)
	h.With("/b").Observe(0.5) // refused, must not panic on nil counts
	if !strings.Contains(reg2.Render(), `obs_dropped_series_total{family="lat"} 1`) {
		t.Error("histogram spill was not counted")
	}
}

// TestSeriesCapUnbreachedIsInvisible checks a healthy registry renders
// no drop counter at all — the guard must not change the exposition of
// well-behaved callers.
func TestSeriesCapUnbreachedIsInvisible(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("ok_total", "fine").With().Inc()
	if strings.Contains(reg.Render(), "obs_dropped_series_total") {
		t.Error("drop counter rendered without any drops")
	}
}

func TestFormatValue(t *testing.T) {
	cases := map[float64]string{
		0:      "0",
		3:      "3",
		-2:     "-2",
		2.5:    "2.5",
		0.0001: "0.0001",
	}
	for in, want := range cases {
		if got := formatValue(in); got != want {
			t.Errorf("formatValue(%v) = %q, want %q", in, got, want)
		}
	}
}
