package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

// stepClock returns a deterministic clock advancing step per call.
func stepClock(step time.Duration) func() time.Time {
	t := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	return func() time.Time {
		cur := t
		t = t.Add(step)
		return cur
	}
}

// parseLines decodes every NDJSON line in buf.
func parseLines(t *testing.T, buf *bytes.Buffer) []map[string]any {
	t.Helper()
	var recs []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		recs = append(recs, m)
	}
	return recs
}

func TestSpanTreeExport(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.SetClock(stepClock(time.Millisecond))
	ctx := WithTracer(context.Background(), tr)

	ctx, root := Start(ctx, "suite", String("platform", "gtx-titan"))
	cctx, child := Start(ctx, "kernel", Int("rep", 2))
	child.Event("fault.retry", Int("attempt", 1), String("error", "meter disconnect"))
	child.SetAttr(Bool("kept", true))
	child.End()
	root.End()

	if got := SpanFrom(cctx); got != child {
		t.Fatalf("SpanFrom(child ctx) = %v, want child span", got)
	}
	recs := parseLines(t, &buf)
	if len(recs) != 2 {
		t.Fatalf("want 2 span lines (child first), got %d", len(recs))
	}
	c, r := recs[0], recs[1]
	if c["name"] != "kernel" || r["name"] != "suite" {
		t.Fatalf("names = %v, %v", c["name"], r["name"])
	}
	if c["trace"] != r["trace"] {
		t.Errorf("child trace %v != root trace %v", c["trace"], r["trace"])
	}
	if c["parent"] != r["span"] {
		t.Errorf("child parent %v != root span %v", c["parent"], r["span"])
	}
	if _, hasParent := r["parent"]; hasParent {
		t.Error("root span should omit parent")
	}
	attrs := c["attrs"].(map[string]any)
	if attrs["rep"] != float64(2) || attrs["kept"] != true {
		t.Errorf("child attrs = %v", attrs)
	}
	events := c["events"].([]any)
	ev := events[0].(map[string]any)
	if ev["name"] != "fault.retry" {
		t.Errorf("event = %v", ev)
	}
	evAttrs := ev["attrs"].(map[string]any)
	if evAttrs["attempt"] != float64(1) || evAttrs["error"] != "meter disconnect" {
		t.Errorf("event attrs = %v", evAttrs)
	}
	if c["dur_ms"].(float64) < 0 || r["dur_ms"].(float64) <= 0 {
		t.Errorf("durations: child %v, root %v", c["dur_ms"], r["dur_ms"])
	}
	st := tr.Stats()
	if st.Started != 2 || st.Ended != 2 || st.Events != 1 || st.WriteErrors != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestRootTraceAdoptsRequestID(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	ctx := WithRequestID(WithTracer(context.Background(), tr), "req-abc123")
	_, span := Start(ctx, "http./v1/query")
	if span.TraceID() != "req-abc123" {
		t.Fatalf("trace = %q, want request ID", span.TraceID())
	}
	span.End()
	if got := parseLines(t, &buf)[0]["trace"]; got != "req-abc123" {
		t.Errorf("exported trace = %v", got)
	}
}

func TestNilSpanIsInert(t *testing.T) {
	ctx, span := Start(context.Background(), "no.tracer")
	if span != nil {
		t.Fatal("Start without tracer must return a nil span")
	}
	if SpanFrom(ctx) != nil || TracerFrom(ctx) != nil {
		t.Error("bare context must carry no span or tracer")
	}
	// Every method must be a safe no-op on nil.
	span.SetAttr(String("k", "v"))
	span.Event("e")
	span.End()
	if span.TraceID() != "" || span.ID() != 0 {
		t.Error("nil span identity should be zero")
	}
}

func TestEndIsIdempotent(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	_, span := Start(WithTracer(context.Background(), tr), "once")
	span.End()
	span.End()
	span.SetAttr(String("late", "ignored"))
	span.Event("late.event")
	if n := len(parseLines(t, &buf)); n != 1 {
		t.Fatalf("want exactly 1 exported line, got %d", n)
	}
	st := tr.Stats()
	if st.Ended != 1 || st.Events != 0 {
		t.Errorf("stats after double End = %+v", st)
	}
}

// errWriter fails every write.
type errWriter struct{}

func (errWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

func TestWriteErrorsCounted(t *testing.T) {
	tr := NewTracer(errWriter{})
	_, span := Start(WithTracer(context.Background(), tr), "doomed")
	span.End()
	if st := tr.Stats(); st.WriteErrors != 1 {
		t.Errorf("WriteErrors = %d, want 1", st.WriteErrors)
	}
}

func TestDeterministicExport(t *testing.T) {
	run := func() string {
		var buf bytes.Buffer
		tr := NewTracer(&buf)
		tr.SetClock(stepClock(time.Millisecond))
		ctx := WithTracer(context.Background(), tr)
		ctx, root := Start(ctx, "a", Float("x", 1.5))
		_, child := Start(ctx, "b")
		child.Event("ev", Int("n", 3))
		child.End()
		root.End()
		return buf.String()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("identical runs exported different bytes:\n%s\nvs\n%s", a, b)
	}
}

func TestDetachKeepsObsValuesDropsCancellation(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	ctx := WithRequestID(WithTracer(context.Background(), tr), "req-detach")
	ctx, parent := Start(ctx, "http.request")
	ctx, cancel := context.WithCancel(ctx)
	det := Detach(ctx)
	cancel()
	if det.Err() != nil {
		t.Fatalf("detached context inherited cancellation: %v", det.Err())
	}
	if TracerFrom(det) != tr {
		t.Error("detached context lost the tracer")
	}
	if id, ok := RequestID(det); !ok || id != "req-detach" {
		t.Errorf("detached context request ID = %q, %v", id, ok)
	}
	if SpanFrom(det) == nil {
		t.Error("detached context lost the active span")
	}
	_, child := Start(det, "job.work")
	child.End()
	parent.End()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("exported %d spans, want 2", len(lines))
	}
	var rec struct {
		Trace  string `json:"trace"`
		Parent uint64 `json:"parent"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Trace != "req-detach" || rec.Parent == 0 {
		t.Errorf("detached child span trace=%q parent=%d; want the request trace and a non-root parent", rec.Trace, rec.Parent)
	}
}
