package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"testing"
)

func TestLoggerInjectsCorrelation(t *testing.T) {
	var logBuf, traceBuf bytes.Buffer
	logger, count := NewCountedLogger(&logBuf)
	tr := NewTracer(&traceBuf)
	ctx := WithRequestID(WithTracer(context.Background(), tr), "req-42")
	ctx, span := Start(ctx, "op")
	defer span.End()

	logger.LogAttrs(ctx, slog.LevelInfo, "hello", slog.String("k", "v"))

	var rec map[string]any
	if err := json.Unmarshal(logBuf.Bytes(), &rec); err != nil {
		t.Fatalf("log line is not JSON: %v (%q)", err, logBuf.String())
	}
	if rec["msg"] != "hello" || rec["k"] != "v" {
		t.Errorf("record = %v", rec)
	}
	if rec["request_id"] != "req-42" {
		t.Errorf("request_id = %v, want req-42", rec["request_id"])
	}
	if rec["trace"] != span.TraceID() || rec["span"] != float64(span.ID()) {
		t.Errorf("trace/span correlation missing: %v", rec)
	}
	if n := count(); n != 1 {
		t.Errorf("record count = %d, want 1", n)
	}
}

func TestLoggerWithoutContextValues(t *testing.T) {
	var buf bytes.Buffer
	logger := NewLogger(&buf)
	logger.LogAttrs(context.Background(), slog.LevelWarn, "plain")
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatal(err)
	}
	if _, has := rec["request_id"]; has {
		t.Error("bare context must not inject request_id")
	}
	if _, has := rec["trace"]; has {
		t.Error("bare context must not inject trace")
	}
}

func TestNopLoggerDiscards(t *testing.T) {
	// Must not panic, even with a nil-ish context chain.
	NopLogger().LogAttrs(context.Background(), slog.LevelError, "into the void")
}
