package powermon

import "archline/internal/obs"

// SpanAttrs renders the quality report as span attributes, so sanitize
// spans in a trace carry the same flags the quality table prints.
func (q Quality) SpanAttrs() []obs.Attr {
	return []obs.Attr{
		obs.String("grade", q.Grade.String()),
		obs.Int("gaps_filled", q.GapsFilled),
		obs.Int("spikes_removed", q.SpikesRemoved),
		obs.Int("stuck_repaired", q.StuckRepaired),
		obs.Float("repaired_frac", q.RepairedFrac),
	}
}
