package powermon

import (
	"fmt"
	"math"
	"sort"

	"archline/internal/units"
)

// Trace sanitization: the defensive pass a careful lab applies to raw
// PowerMon dumps before trusting them. Real channels glitch — samples
// drop in bursts when the USB link stalls, single readings spike when a
// shunt amplifier rails, and an ADC occasionally latches and repeats
// one code for a stretch. Sanitize detects each pathology, repairs what
// interpolation can repair, and grades the trace so downstream fitting
// can weigh (or reject) it instead of silently averaging garbage.

// Sanitization thresholds. They are deliberately loose: a clean trace
// (Gaussian sensor noise plus the simulator's 1% utilisation wiggle)
// must pass through untouched.
const (
	// gapFactor: a timestamp step beyond this multiple of the median
	// sampling interval is a dropped-sample gap.
	gapFactor = 1.75
	// spikeK: samples whose power deviates from the channel median by
	// more than spikeK robust standard deviations (MAD-scaled) are
	// sensor spikes.
	spikeK = 8
	// stuckRun: this many consecutive bit-identical readings mark a
	// latched channel. Noisy samples never repeat exactly; genuinely
	// constant (noiseless) traces are exempted below.
	stuckRun = 4
	// madConsistency scales a MAD to a Gaussian-consistent standard
	// deviation.
	madConsistency = 1.4826
)

// Grade buckets a trace's overall measurement quality.
type Grade int

// Grades, ordered from clean to contaminated.
const (
	// GradeA: pristine or near-pristine; repairs touched < 1% of samples.
	GradeA Grade = iota
	// GradeB: degraded but usable; repairs touched < 10% of samples.
	GradeB
	// GradeC: heavily contaminated; the trace should be re-measured or
	// excluded from aggregation.
	GradeC
)

// String names the grade.
func (g Grade) String() string {
	switch g {
	case GradeA:
		return "A"
	case GradeB:
		return "B"
	default:
		return "C"
	}
}

// Quality summarizes what sanitization found and repaired in one trace.
// The zero value reads as a pristine, unsanitized trace.
type Quality struct {
	// GapsFilled counts samples synthesized into dropped-sample gaps.
	GapsFilled int
	// SpikesRemoved counts samples rejected as sensor spikes.
	SpikesRemoved int
	// StuckRepaired counts samples rewritten inside latched runs.
	StuckRepaired int
	// RepairedFrac is the fraction of post-repair samples that were
	// synthesized or rewritten.
	RepairedFrac float64
	// Grade buckets the overall quality.
	Grade Grade
}

// Repairs is the total number of repaired samples.
func (q Quality) Repairs() int { return q.GapsFilled + q.SpikesRemoved + q.StuckRepaired }

// Merge folds another quality report into this one, keeping the worst
// grade and the larger repaired fraction.
func (q Quality) Merge(o Quality) Quality {
	q.GapsFilled += o.GapsFilled
	q.SpikesRemoved += o.SpikesRemoved
	q.StuckRepaired += o.StuckRepaired
	if o.RepairedFrac > q.RepairedFrac {
		q.RepairedFrac = o.RepairedFrac
	}
	if o.Grade > q.Grade {
		q.Grade = o.Grade
	}
	return q
}

// String renders the quality flags compactly, e.g. "B (gaps 12, spikes 2)".
func (q Quality) String() string {
	return fmt.Sprintf("%s (gaps %d, spikes %d, stuck %d, repaired %.1f%%)",
		q.Grade, q.GapsFilled, q.SpikesRemoved, q.StuckRepaired, 100*q.RepairedFrac)
}

// gradeFor buckets a repaired fraction.
func gradeFor(repairedFrac float64) Grade {
	switch {
	case repairedFrac < 0.01:
		return GradeA
	case repairedFrac < 0.10:
		return GradeB
	default:
		return GradeC
	}
}

// Sanitize repairs the trace in place — spike rejection, latched-run
// repair, then gap interpolation, per channel — and returns the quality
// report. A clean trace passes through byte-identical with GradeA.
func (t *Trace) Sanitize() Quality {
	var q Quality
	total := 0
	for i := range t.Channels {
		ch := &t.Channels[i]
		// Latched runs first: a latch far from the median would otherwise
		// be misread as a burst of spikes.
		q.StuckRepaired += unstick(ch.Samples)
		q.SpikesRemoved += despike(ch.Samples)
		filled, samples := fillGaps(ch.Samples)
		q.GapsFilled += filled
		ch.Samples = samples
		total += len(ch.Samples)
	}
	if total > 0 {
		q.RepairedFrac = float64(q.Repairs()) / float64(total)
	}
	q.Grade = gradeFor(q.RepairedFrac)
	return q
}

// medianMAD returns the median and the median absolute deviation of xs.
func medianMAD(xs []float64) (med, mad float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	med = s[len(s)/2]
	dev := make([]float64, len(s))
	for i, x := range s {
		dev[i] = math.Abs(x - med)
	}
	sort.Float64s(dev)
	return med, dev[len(dev)/2]
}

// despike replaces samples whose instantaneous power sits beyond
// spikeK robust standard deviations from the channel median with the
// interpolation of their neighbours, returning the number replaced.
func despike(ss []Sample) int {
	if len(ss) < 3 {
		return 0
	}
	ps := make([]float64, len(ss))
	for i, s := range ss {
		ps[i] = s.Power().Watts()
	}
	med, mad := medianMAD(ps)
	if mad <= 0 {
		return 0 // constant trace: nothing can be a spike
	}
	limit := spikeK * madConsistency * mad
	n := 0
	for i := range ss {
		if math.Abs(ps[i]-med) <= limit {
			continue
		}
		// Replace the reading with its clean-neighbour interpolation
		// (falling back to the channel median at the edges).
		target := med
		lo, hi := i-1, i+1
		for lo >= 0 && math.Abs(ps[lo]-med) > limit {
			lo--
		}
		for hi < len(ss) && math.Abs(ps[hi]-med) > limit {
			hi++
		}
		switch {
		case lo >= 0 && hi < len(ss):
			frac := float64(i-lo) / float64(hi-lo)
			target = ps[lo] + frac*(ps[hi]-ps[lo])
		case lo >= 0:
			target = ps[lo]
		case hi < len(ss):
			target = ps[hi]
		}
		if ss[i].V > 0 {
			ss[i].I = target / ss[i].V
		}
		n++
	}
	return n
}

// unstick finds runs of >= stuckRun bit-identical (V, I) readings — a
// latched ADC — and rewrites their interior by linear interpolation
// between the bracketing healthy samples. Runs covering half the trace
// or more are left alone: that is a genuinely constant signal (e.g. a
// noiseless recording), not a latch.
func unstick(ss []Sample) int {
	n := 0
	i := 0
	for i < len(ss) {
		j := i + 1
		//archlint:ignore floatcmp a latched ADC repeats bit-identical readings; approximate equality would misclassify a smooth signal as stuck
		for j < len(ss) && ss[j].I == ss[i].I && ss[j].V == ss[i].V {
			j++
		}
		run := j - i
		if run >= stuckRun && run <= len(ss)/2 {
			// Interpolate power across the latch from the bracketing
			// samples (clamping at the trace edges).
			loP, hiP := 0.0, 0.0
			if i > 0 {
				loP = ss[i-1].Power().Watts()
			} else if j < len(ss) {
				loP = ss[j].Power().Watts()
			}
			if j < len(ss) {
				hiP = ss[j].Power().Watts()
			} else {
				hiP = loP
			}
			for k := i; k < j; k++ {
				frac := float64(k-i+1) / float64(run+1)
				p := loP + frac*(hiP-loP)
				if ss[k].V > 0 {
					ss[k].I = p / ss[k].V
				}
				n++
			}
		}
		i = j
	}
	return n
}

// fillGaps detects dropped-sample gaps by timestamp spacing and inserts
// linearly interpolated samples so the mean-of-samples average power is
// taken over a uniform grid again. It returns the number of samples
// synthesized and the repaired series.
func fillGaps(ss []Sample) (int, []Sample) {
	if len(ss) < 3 {
		return 0, ss
	}
	dts := make([]float64, 0, len(ss)-1)
	for i := 1; i < len(ss); i++ {
		dts = append(dts, (ss[i].T - ss[i-1].T).Seconds())
	}
	sort.Float64s(dts)
	dtMed := dts[len(dts)/2]
	if dtMed <= 0 {
		return 0, ss
	}
	out := make([]Sample, 0, len(ss))
	filled := 0
	out = append(out, ss[0])
	for i := 1; i < len(ss); i++ {
		gap := (ss[i].T - ss[i-1].T).Seconds()
		if gap > gapFactor*dtMed {
			missing := int(math.Round(gap/dtMed)) - 1
			for k := 1; k <= missing; k++ {
				frac := float64(k) / float64(missing+1)
				out = append(out, Sample{
					T: ss[i-1].T + units.Time(frac*gap),
					V: ss[i-1].V + frac*(ss[i].V-ss[i-1].V),
					I: ss[i-1].I + frac*(ss[i].I-ss[i-1].I),
				})
				filled++
			}
		}
		out = append(out, ss[i])
	}
	return filled, out
}
