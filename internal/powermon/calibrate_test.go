package powermon

import (
	"math"
	"testing"

	"archline/internal/stats"
)

func TestCalibrateCorrectsGainBias(t *testing.T) {
	m := PCIeGPUMeter() // has built-in gain errors up to 0.4%
	rng := stats.NewStream(21, "cal")
	cal, err := Calibrate(m, 100, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(cal.Factors) != 3 {
		t.Fatalf("got %d factors", len(cal.Factors))
	}
	// Factors should approximately invert the configured gains.
	for i, ch := range m.Channels {
		want := 1 / ch.CalibGain
		got := cal.Factors[ch.Name]
		if math.Abs(got-want) > 0.01 {
			t.Errorf("channel %d factor %v, want ~%v", i, got, want)
		}
	}
	// A corrected measurement reads true.
	tr, err := m.Record(Constant(250), 1, stats.NewStream(22, "cal2"))
	if err != nil {
		t.Fatal(err)
	}
	raw := float64(tr.AvgPower())
	cal.Apply(tr)
	corrected := float64(tr.AvgPower())
	if math.Abs(corrected-250) > math.Abs(raw-250) && math.Abs(corrected-250) > 0.5 {
		t.Errorf("calibration should improve accuracy: raw %v, corrected %v", raw, corrected)
	}
	if math.Abs(corrected-250) > 0.01*250 {
		t.Errorf("corrected power %v, want ~250", corrected)
	}
}

func TestCalibrateErrors(t *testing.T) {
	m := MobileBoardMeter()
	if _, err := Calibrate(m, 0, 1, nil); err == nil {
		t.Error("zero reference should error")
	}
	bad := &Meter{SampleRate: 1024}
	if _, err := Calibrate(bad, 100, 1, nil); err == nil {
		t.Error("invalid meter should error")
	}
}

func TestCalibrateZeroShareChannel(t *testing.T) {
	m := &Meter{
		SampleRate: 1024,
		Channels: []Channel{
			{Name: "main", Voltage: 12, Share: 1, CalibGain: 1.02},
			{Name: "spare", Voltage: 12, Share: 0, CalibGain: 1},
		},
	}
	cal, err := Calibrate(m, 50, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cal.Factors["spare"] != 1 {
		t.Error("zero-share channel should get unit factor")
	}
}

func TestApplyNilSafety(t *testing.T) {
	var cal *Calibration
	cal.Apply(nil) // must not panic
	c := &Calibration{Factors: map[string]float64{"x": 2}}
	c.Apply(nil) // must not panic
	tr := &Trace{Channels: []ChannelTrace{{Channel: "unknown", Samples: []Sample{{V: 12, I: 1}}}}}
	c.Apply(tr)
	if tr.Channels[0].Samples[0].I != 1 {
		t.Error("unknown channel should be untouched")
	}
}
