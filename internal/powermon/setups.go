package powermon

// This file provides the measurement setups of the paper's fig. 3: the
// probe placements for mobile dev boards, CPU systems, and
// multiple-supply PCIe devices.

// DefaultSampleRate is PowerMon 2's per-channel rate in Hz.
const DefaultSampleRate = 1024

// DefaultMaxAggregate is PowerMon 2's aggregate sampling budget in Hz.
const DefaultMaxAggregate = 3072

// MobileBoardMeter measures a development board (PandaBoard, Arndale,
// NUC, APU) at its DC power brick: one channel carrying the full
// system-level power, which "includes CPU, GPU, DRAM, and peripherals".
func MobileBoardMeter() *Meter {
	return &Meter{
		SampleRate:   DefaultSampleRate,
		MaxAggregate: DefaultMaxAggregate,
		Channels: []Channel{
			{Name: "dc-brick", Voltage: 12, Share: 1, CalibGain: 1.003, NoiseSD: 0.01},
		},
	}
}

// CPUSystemMeter measures a desktop CPU system: input both to the CPU
// (the ATX 12 V CPU connector) and to the motherboard, which powers the
// DRAM modules.
func CPUSystemMeter() *Meter {
	return &Meter{
		SampleRate:   DefaultSampleRate,
		MaxAggregate: DefaultMaxAggregate,
		Channels: []Channel{
			{Name: "cpu-12v", Voltage: 12, Share: 0.68, CalibGain: 0.998, NoiseSD: 0.01},
			{Name: "motherboard", Voltage: 12, Share: 0.32, CalibGain: 1.002, NoiseSD: 0.012},
		},
	}
}

// PCIeGPUMeter measures a high-performance discrete GPU, which draws
// power from multiple sources: the motherboard through the PCIe slot
// (via the custom PCIe interposer, capped at 75 W by the slot spec) and
// the 12 V 8-pin and 6-pin PCIe power connectors (via PowerMon 2).
func PCIeGPUMeter() *Meter {
	return &Meter{
		SampleRate:   DefaultSampleRate,
		MaxAggregate: DefaultMaxAggregate,
		Channels: []Channel{
			{Name: "pcie-slot", Voltage: 12, Share: 0.24, CalibGain: 1.004, NoiseSD: 0.015},
			{Name: "12v-8pin", Voltage: 12, Share: 0.47, CalibGain: 0.997, NoiseSD: 0.01},
			{Name: "12v-6pin", Voltage: 12, Share: 0.29, CalibGain: 1.001, NoiseSD: 0.01},
		},
	}
}
