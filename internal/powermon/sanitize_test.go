package powermon

import (
	"math"
	"testing"

	"archline/internal/stats"
	"archline/internal/units"
)

// recordClean produces a realistic noisy single-channel trace.
func recordClean(t *testing.T, p units.Power, d units.Time, seed uint64) *Trace {
	t.Helper()
	m := MobileBoardMeter()
	tr, err := m.Record(Constant(p), d, stats.NewStream(seed, "sanitize"))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestSanitizeCleanTraceUntouched(t *testing.T) {
	tr := recordClean(t, 40, 1, 1)
	want := tr.AvgPower().Watts()
	q := tr.Sanitize()
	if q.Repairs() != 0 {
		t.Errorf("clean trace repaired: %v", q)
	}
	if q.Grade != GradeA {
		t.Errorf("clean trace grade = %v, want A", q.Grade)
	}
	if got := tr.AvgPower().Watts(); got != want {
		t.Errorf("sanitize changed clean average power: %v -> %v", want, got)
	}
}

func TestSanitizeNoiselessConstantNotStuck(t *testing.T) {
	// A noiseless recording repeats samples exactly; that is a constant
	// signal, not a latched ADC, and must not be "repaired".
	m := MobileBoardMeter()
	tr, err := m.Record(Constant(25), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if q := tr.Sanitize(); q.Repairs() != 0 {
		t.Errorf("noiseless constant trace repaired: %v", q)
	}
}

func TestSanitizeRemovesSpikes(t *testing.T) {
	tr := recordClean(t, 40, 1, 2)
	clean := tr.AvgPower().Watts()
	ss := tr.Channels[0].Samples
	// Rail five readings at 12x.
	for _, i := range []int{17, 101, 102, 500, 999} {
		ss[i].I *= 12
	}
	if biased := tr.AvgPower().Watts(); biased < clean*1.03 {
		t.Fatalf("spikes should bias the average visibly: %v vs %v", biased, clean)
	}
	q := tr.Sanitize()
	if q.SpikesRemoved != 5 {
		t.Errorf("SpikesRemoved = %d, want 5", q.SpikesRemoved)
	}
	if got := tr.AvgPower().Watts(); math.Abs(got-clean)/clean > 0.002 {
		t.Errorf("despiked average %v, want ~%v", got, clean)
	}
}

func TestSanitizeRepairsStuckRun(t *testing.T) {
	tr := recordClean(t, 40, 1, 3)
	clean := tr.AvgPower().Watts()
	ss := tr.Channels[0].Samples
	// Latch 100 samples at 40% of nominal.
	stuckI := ss[200].I * 0.4
	for i := 200; i < 300; i++ {
		ss[i].I = stuckI
		ss[i].V = ss[200].V
	}
	q := tr.Sanitize()
	if q.StuckRepaired != 100 {
		t.Errorf("StuckRepaired = %d, want 100", q.StuckRepaired)
	}
	if got := tr.AvgPower().Watts(); math.Abs(got-clean)/clean > 0.01 {
		t.Errorf("unstuck average %v, want ~%v", got, clean)
	}
	if q.Grade != GradeB {
		t.Errorf("grade = %v, want B for ~10%% repair", q.Grade)
	}
}

func TestSanitizeFillsGaps(t *testing.T) {
	tr := recordClean(t, 40, 1, 4)
	ss := tr.Channels[0].Samples
	n := len(ss)
	// Drop a 30-sample burst.
	tr.Channels[0].Samples = append(ss[:300:300], ss[330:]...)
	q := tr.Sanitize()
	if q.GapsFilled < 28 || q.GapsFilled > 32 {
		t.Errorf("GapsFilled = %d, want ~30", q.GapsFilled)
	}
	if got := len(tr.Channels[0].Samples); got < n-2 || got > n+2 {
		t.Errorf("post-repair samples = %d, want ~%d", got, n)
	}
	// Timestamps must stay monotonic.
	prev := units.Time(-1)
	for _, s := range tr.Channels[0].Samples {
		if s.T <= prev {
			t.Fatalf("non-monotonic timestamp %v after %v", s.T, prev)
		}
		prev = s.T
	}
}

func TestSanitizeGradesHeavyContamination(t *testing.T) {
	tr := recordClean(t, 40, 1, 5)
	ss := tr.Channels[0].Samples
	// Latch 40% of the trace: usable only as grade C.
	stuckI := ss[100].I * 0.2
	for i := 100; i < 100+len(ss)*2/5; i++ {
		ss[i].I = stuckI
		ss[i].V = ss[100].V
	}
	if q := tr.Sanitize(); q.Grade != GradeC {
		t.Errorf("grade = %v, want C", q.Grade)
	}
}

func TestQualityMergeKeepsWorst(t *testing.T) {
	a := Quality{GapsFilled: 2, RepairedFrac: 0.002, Grade: GradeA}
	b := Quality{SpikesRemoved: 7, RepairedFrac: 0.05, Grade: GradeB}
	m := a.Merge(b)
	if m.Grade != GradeB || m.GapsFilled != 2 || m.SpikesRemoved != 7 {
		t.Errorf("merge = %+v", m)
	}
	if m.RepairedFrac != 0.05 {
		t.Errorf("merged frac = %v, want 0.05", m.RepairedFrac)
	}
}

func TestTransientClassification(t *testing.T) {
	if !IsTransient(ErrDisconnect) || !IsTransient(ErrCalibrationZero) {
		t.Error("disconnect and calibration glitches must be transient")
	}
	for _, err := range []error{ErrNoChannels, ErrBadDuration, ErrNilSignal, ErrEmptyTrace} {
		if IsTransient(err) {
			t.Errorf("%v must be permanent", err)
		}
	}
}
