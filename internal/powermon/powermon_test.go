package powermon

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"archline/internal/stats"
	"archline/internal/units"
)

func approx(t *testing.T, got, want, relTol float64, name string) {
	t.Helper()
	if math.Abs(got-want) > relTol*math.Abs(want)+1e-300 {
		t.Errorf("%s = %v, want %v", name, got, want)
	}
}

func TestMeterValidate(t *testing.T) {
	for _, m := range []*Meter{MobileBoardMeter(), CPUSystemMeter(), PCIeGPUMeter()} {
		if err := m.Validate(); err != nil {
			t.Errorf("standard setup invalid: %v", err)
		}
	}
	bad := &Meter{SampleRate: 1024}
	if bad.Validate() == nil {
		t.Error("no channels should be rejected")
	}
	bad = MobileBoardMeter()
	bad.SampleRate = 0
	if bad.Validate() == nil {
		t.Error("zero sample rate should be rejected")
	}
	bad = MobileBoardMeter()
	bad.Channels[0].Share = 0.5
	if bad.Validate() == nil {
		t.Error("shares not summing to 1 should be rejected")
	}
	bad = MobileBoardMeter()
	bad.Channels[0].Voltage = 0
	if bad.Validate() == nil {
		t.Error("zero voltage should be rejected")
	}
	bad = MobileBoardMeter()
	bad.Channels[0].CalibGain = 0
	if bad.Validate() == nil {
		t.Error("zero gain should be rejected")
	}
	bad = MobileBoardMeter()
	bad.Channels[0].Share = -1
	if bad.Validate() == nil {
		t.Error("negative share should be rejected")
	}
	bad = &Meter{SampleRate: 1024, Channels: make([]Channel, 9)}
	if bad.Validate() == nil {
		t.Error("more than 8 channels should be rejected")
	}
}

func TestEffectiveRateAggregateCap(t *testing.T) {
	// 3 channels at 1024 Hz each = 3072 aggregate: exactly at the cap.
	m := PCIeGPUMeter()
	approx(t, m.EffectiveRate(), 1024, 1e-12, "3-channel rate")
	// 4 channels would exceed 3072: shared down to 768 Hz each.
	m.Channels = append(m.Channels, Channel{Name: "x", Voltage: 12, Share: 0, CalibGain: 1})
	m.Channels[0].Share = 0.24
	approx(t, m.EffectiveRate(), 768, 1e-12, "4-channel rate")
	// Uncapped meter keeps its rate.
	m.MaxAggregate = 0
	approx(t, m.EffectiveRate(), 1024, 1e-12, "uncapped")
}

func TestRecordConstantNoiseless(t *testing.T) {
	m := MobileBoardMeter()
	tr, err := m.Record(Constant(10), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, float64(tr.AvgPower()), 10, 1e-12, "noiseless constant power")
	approx(t, float64(tr.Energy()), 10, 1e-12, "noiseless energy")
	if tr.SampleCount() != 1024 {
		t.Errorf("1 s at 1024 Hz should give 1024 samples, got %d", tr.SampleCount())
	}
}

func TestRecordMultiRailSplitsAndSums(t *testing.T) {
	m := PCIeGPUMeter()
	// Remove calibration error for exactness.
	for i := range m.Channels {
		m.Channels[i].CalibGain = 1
		m.Channels[i].NoiseSD = 0
	}
	tr, err := m.Record(Constant(250), 0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, float64(tr.AvgPower()), 250, 1e-12, "rails sum to device power")
	// Each rail carries its share.
	approx(t, float64(tr.Channels[0].AvgPower()), 250*0.24, 1e-12, "pcie slot share")
	approx(t, float64(tr.Channels[1].AvgPower()), 250*0.47, 1e-12, "8-pin share")
}

func TestRecordTimeVaryingSignal(t *testing.T) {
	// Ramp from 0 to 100 W over 1 s: average 50 W.
	sig := func(ts units.Time) units.Power { return units.Power(100 * float64(ts)) }
	m := MobileBoardMeter()
	m.Channels[0].CalibGain = 1
	m.Channels[0].NoiseSD = 0
	tr, err := m.Record(sig, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, float64(tr.AvgPower()), 50, 1e-3, "ramp average")
}

func TestRecordNoiseUnbiased(t *testing.T) {
	m := MobileBoardMeter()
	m.Channels[0].CalibGain = 1 // keep only zero-mean noise
	rng := stats.NewStream(99, "powermon-test")
	tr, err := m.Record(Constant(20), 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	// 2048 noisy samples at 1% SD: mean within ~0.1%.
	approx(t, float64(tr.AvgPower()), 20, 0.005, "noisy mean")
}

func TestRecordCalibrationBias(t *testing.T) {
	m := MobileBoardMeter()
	m.Channels[0].CalibGain = 1.05
	m.Channels[0].NoiseSD = 0
	rng := stats.NewStream(1, "bias")
	tr, err := m.Record(Constant(100), 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	// 5% gain error shows up as ~5% power bias.
	approx(t, float64(tr.AvgPower()), 105, 0.01, "calibration bias")
}

func TestRecordShortRun(t *testing.T) {
	m := MobileBoardMeter()
	// A 100 microsecond run is far below one sampling interval; the meter
	// still returns a single sample per channel.
	tr, err := m.Record(Constant(5), units.Time(100e-6), nil)
	if err != nil {
		t.Fatal(err)
	}
	if tr.SampleCount() != 1 {
		t.Errorf("short run should yield 1 sample, got %d", tr.SampleCount())
	}
	approx(t, float64(tr.AvgPower()), 5, 1e-12, "short-run power")
}

func TestRecordErrors(t *testing.T) {
	m := MobileBoardMeter()
	if _, err := m.Record(Constant(1), 0, nil); err == nil {
		t.Error("zero duration should error")
	}
	if _, err := m.Record(nil, 1, nil); err == nil {
		t.Error("nil signal should error")
	}
	bad := &Meter{SampleRate: 1024}
	if _, err := bad.Record(Constant(1), 1, nil); err == nil {
		t.Error("invalid meter should error")
	}
}

func TestEmptyTraceAccessors(t *testing.T) {
	ct := &ChannelTrace{}
	if ct.AvgPower() != 0 {
		t.Error("empty channel trace power should be 0")
	}
	tr := &Trace{}
	if tr.AvgPower() != 0 || tr.SampleCount() != 0 {
		t.Error("empty trace accessors")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	m := CPUSystemMeter()
	rng := stats.NewStream(7, "csv")
	tr, err := m.Record(Constant(80), 0.25, rng)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Channels) != len(tr.Channels) {
		t.Fatalf("channel count: got %d want %d", len(back.Channels), len(tr.Channels))
	}
	approx(t, float64(back.AvgPower()), float64(tr.AvgPower()), 1e-9, "round-trip power")
	approx(t, float64(back.Duration), float64(tr.Duration), 0.01, "round-trip duration")
	for c := range tr.Channels {
		if back.Channels[c].Channel != tr.Channels[c].Channel {
			t.Error("channel names should round-trip in order")
		}
		if len(back.Channels[c].Samples) != len(tr.Channels[c].Samples) {
			t.Error("sample counts should round-trip")
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("empty input should error")
	}
	if _, err := ReadCSV(strings.NewReader("channel,t,v,i\n")); err == nil {
		t.Error("header-only input should error")
	}
	if _, err := ReadCSV(strings.NewReader("channel,t,v,i\na,x,1,1\n")); err == nil {
		t.Error("malformed float should error")
	}
	if _, err := ReadCSV(strings.NewReader("channel,t,v,i\na,1,2\n")); err == nil {
		t.Error("wrong column count should error")
	}
	// Single sample: duration heuristic still positive.
	tr, err := ReadCSV(strings.NewReader("channel,t,v,i\na,0.5,12,1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Duration <= 0 {
		t.Error("single-sample duration should be positive")
	}
}

// Property: for any constant power and duration, noiseless measurement is
// exact and energy = power * duration.
func TestQuickConstantExact(t *testing.T) {
	f := func(pRaw, dRaw float64) bool {
		p := math.Abs(math.Mod(pRaw, 1000))
		d := 0.001 + math.Abs(math.Mod(dRaw, 10))
		if math.IsNaN(p) || math.IsNaN(d) {
			return true
		}
		m := MobileBoardMeter()
		m.Channels[0].CalibGain = 1
		m.Channels[0].NoiseSD = 0
		tr, err := m.Record(Constant(units.Power(p)), units.Time(d), nil)
		if err != nil {
			return false
		}
		return math.Abs(float64(tr.AvgPower())-p) <= 1e-9*(p+1) &&
			math.Abs(float64(tr.Energy())-p*d) <= 1e-9*(p*d+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: CSV round trip preserves average power for arbitrary noisy
// recordings.
func TestQuickCSVRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		m := PCIeGPUMeter()
		rng := stats.NewStream(seed, "quick-csv")
		tr, err := m.Record(Constant(100), 0.05, rng)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := tr.WriteCSV(&buf); err != nil {
			return false
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			return false
		}
		return math.Abs(float64(back.AvgPower()-tr.AvgPower())) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
