package powermon

import (
	"errors"
	"fmt"
)

// Measurement failures split into two classes, the way a lab treats
// them: transient faults (a glitched channel read, a dropped meter
// link) clear on retry, while permanent errors (a misconfigured meter,
// a nonsensical recording request) never will. Retry logic keys on the
// class via errors.Is(err, ErrTransient) — every transient sentinel
// wraps the marker, so callers never match on message text.
var (
	// ErrTransient marks a fault a retry may clear. It is a wrapping
	// marker: match with errors.Is, never return it bare.
	ErrTransient = errors.New("transient measurement fault")

	// ErrPermanent marks an error that no retry can clear. Like
	// ErrTransient it is a marker wrapped by the concrete sentinels.
	ErrPermanent = errors.New("permanent measurement error")
)

// Transient sentinels: conditions the paper's lab notebook records as
// "re-run the measurement".
var (
	// ErrCalibrationZero reports a calibration channel reading zero
	// power: a glitched shunt read during the reference load.
	ErrCalibrationZero = fmt.Errorf("powermon: calibration channel read zero power: %w", ErrTransient)

	// ErrDisconnect reports the meter link dropping mid-recording (USB
	// hiccup, buffer overrun); the run must be repeated.
	ErrDisconnect = fmt.Errorf("powermon: meter disconnected mid-record: %w", ErrTransient)
)

// Permanent sentinels: meter and request misconfiguration.
var (
	ErrNoChannels      = fmt.Errorf("powermon: meter needs at least one channel: %w", ErrPermanent)
	ErrTooManyChannels = fmt.Errorf("powermon: PowerMon 2 supports at most 8 channels: %w", ErrPermanent)
	ErrBadSampleRate   = fmt.Errorf("powermon: sample rate must be positive: %w", ErrPermanent)
	ErrBadChannel      = fmt.Errorf("powermon: bad channel configuration: %w", ErrPermanent)
	ErrBadShareSum     = fmt.Errorf("powermon: channel shares must sum to 1: %w", ErrPermanent)
	ErrBadDuration     = fmt.Errorf("powermon: duration must be positive: %w", ErrPermanent)
	ErrNilSignal       = fmt.Errorf("powermon: nil signal: %w", ErrPermanent)
	ErrBadReference    = fmt.Errorf("powermon: reference power must be positive: %w", ErrPermanent)
	ErrEmptyTrace      = fmt.Errorf("powermon: empty trace: %w", ErrPermanent)
	ErrMalformedTrace  = fmt.Errorf("powermon: malformed trace row: %w", ErrPermanent)
)

// IsTransient reports whether err is a fault a retry may clear.
func IsTransient(err error) bool { return errors.Is(err, ErrTransient) }
