package powermon

import (
	"archline/internal/stats"
	"archline/internal/units"
)

// Calibration corrects per-channel gain error the way a lab calibrates
// PowerMon's shunts: record a known reference load, compare each
// channel's reading against its expected share, and derive correction
// factors to apply to subsequent recordings.
type Calibration struct {
	// Factors maps channel name to the multiplicative correction that
	// makes the calibration load read true.
	Factors map[string]float64
}

// Calibrate records the reference load (a precision resistor bank of
// known power) on the meter and returns the per-channel corrections. The
// shares configured on the meter define each channel's expected reading.
func Calibrate(m *Meter, reference units.Power, duration units.Time, rng *stats.Stream) (*Calibration, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if reference <= 0 {
		return nil, ErrBadReference
	}
	tr, err := m.Record(Constant(reference), duration, rng)
	if err != nil {
		return nil, err
	}
	cal := &Calibration{Factors: map[string]float64{}}
	for i, ch := range m.Channels {
		measured := tr.Channels[i].AvgPower().Watts()
		expected := reference.Watts() * ch.Share
		if ch.Share == 0 {
			cal.Factors[ch.Name] = 1
			continue
		}
		if measured <= 0 {
			return nil, ErrCalibrationZero
		}
		cal.Factors[ch.Name] = expected / measured
	}
	return cal, nil
}

// Apply corrects a trace in place using the calibration factors.
// Channels without a factor are left untouched.
func (c *Calibration) Apply(tr *Trace) {
	if c == nil || tr == nil {
		return
	}
	for i := range tr.Channels {
		f, ok := c.Factors[tr.Channels[i].Channel]
		if !ok {
			continue
		}
		for k := range tr.Channels[i].Samples {
			tr.Channels[i].Samples[k].I *= f
		}
	}
}
