// Package powermon simulates the paper's power-measurement
// infrastructure: PowerMon 2, a fine-grained DC power monitor that sits
// between a device and its supply sampling voltage and current at 1024 Hz
// per channel (up to 3072 Hz aggregate over 8 channels), and the custom
// PCIe interposer that measures the power a GPU draws through the
// motherboard slot.
//
// The simulation reproduces the measurement *computation* of section IV
// exactly: instantaneous power is the product of sampled current and
// voltage; average power is the mean of instantaneous power over samples,
// summed across supply rails; total energy is average power times
// execution time. It also reproduces the measurement *artefacts* that
// make fitting non-trivial: finite sampling rate, aggregate-bandwidth
// sharing across channels, per-channel calibration error, and additive
// sensor noise.
package powermon

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"archline/internal/stats"
	"archline/internal/units"
)

// Signal is the ground-truth instantaneous power draw of a device as a
// function of time since the start of the run. The hardware simulator
// provides one per experiment.
type Signal func(t units.Time) units.Power

// Constant returns a flat power signal.
func Constant(p units.Power) Signal {
	return func(units.Time) units.Power { return p }
}

// Channel configures one measurement channel: one DC rail intercepted by
// PowerMon 2 or by the PCIe interposer.
type Channel struct {
	Name    string  // e.g. "12V-8pin", "PCIe-slot"
	Voltage float64 // nominal rail voltage (V)
	Share   float64 // fraction of device power drawn through this rail
	// CalibGain is the channel's multiplicative calibration error
	// (1.0 = perfect). PowerMon's shunt calibration is good to ~1%.
	CalibGain float64
	// NoiseSD is the standard deviation of multiplicative sensor noise
	// applied to each current sample.
	NoiseSD float64
}

// Meter is a configured measurement setup.
type Meter struct {
	Channels []Channel
	// SampleRate is the per-channel sampling frequency in Hz.
	// PowerMon 2 samples at 1024 Hz per channel.
	SampleRate float64
	// MaxAggregate caps the total samples/s across channels (PowerMon 2:
	// 3072 Hz over up to 8 channels). Zero means uncapped.
	MaxAggregate float64
}

// Validate checks the meter configuration: shares must sum to 1 so the
// rails jointly carry the device's power.
func (m *Meter) Validate() error {
	if len(m.Channels) == 0 {
		return ErrNoChannels
	}
	if len(m.Channels) > 8 {
		return ErrTooManyChannels
	}
	if m.SampleRate <= 0 {
		return ErrBadSampleRate
	}
	total := 0.0
	for _, c := range m.Channels {
		if c.Voltage <= 0 {
			return fmt.Errorf("channel %q voltage must be positive: %w", c.Name, ErrBadChannel)
		}
		if c.Share < 0 {
			return fmt.Errorf("channel %q share must be non-negative: %w", c.Name, ErrBadChannel)
		}
		if c.CalibGain <= 0 {
			return fmt.Errorf("channel %q calibration gain must be positive: %w", c.Name, ErrBadChannel)
		}
		total += c.Share
	}
	if total < 0.999 || total > 1.001 {
		return fmt.Errorf("channel shares sum to %v: %w", total, ErrBadShareSum)
	}
	return nil
}

// EffectiveRate is the realized per-channel sampling rate after the
// aggregate cap is shared across channels.
func (m *Meter) EffectiveRate() float64 {
	r := m.SampleRate
	if m.MaxAggregate > 0 && float64(len(m.Channels))*r > m.MaxAggregate {
		r = m.MaxAggregate / float64(len(m.Channels))
	}
	return r
}

// Sample is one time-stamped voltage/current measurement on one channel.
type Sample struct {
	T units.Time // time since run start
	V float64    // volts
	I float64    // amperes
}

// Power is the instantaneous power of the sample.
func (s Sample) Power() units.Power { return units.Power(s.V * s.I) }

// ChannelTrace is the sample series for one channel.
type ChannelTrace struct {
	Channel string
	Samples []Sample
}

// AvgPower is the mean instantaneous power over the samples, the paper's
// per-source average ("assuming uniform samples, we compute the average
// power as the average of the instantaneous power over all samples").
func (ct *ChannelTrace) AvgPower() units.Power {
	if len(ct.Samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range ct.Samples {
		sum += s.Power().Watts()
	}
	return units.Power(sum / float64(len(ct.Samples)))
}

// Trace is a complete multi-rail recording of one run.
type Trace struct {
	Channels []ChannelTrace
	Duration units.Time
}

// AvgPower sums the per-channel average powers, the paper's treatment of
// multi-source devices ("we sum the average powers to get total power").
func (t *Trace) AvgPower() units.Power {
	var sum units.Power
	for i := range t.Channels {
		sum += t.Channels[i].AvgPower()
	}
	return sum
}

// Energy is average power times execution time, as in section IV.
func (t *Trace) Energy() units.Energy { return t.AvgPower().For(t.Duration) }

// SampleCount returns the total number of samples across channels.
func (t *Trace) SampleCount() int {
	n := 0
	for i := range t.Channels {
		n += len(t.Channels[i].Samples)
	}
	return n
}

// Record measures a run: it samples the signal on every channel at the
// effective rate for the given duration. Each channel sees its share of
// the device power at its nominal voltage, perturbed by calibration gain
// and per-sample noise. rng may be nil for noiseless recording.
func (m *Meter) Record(sig Signal, duration units.Time, rng *stats.Stream) (*Trace, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if duration <= 0 {
		return nil, ErrBadDuration
	}
	if sig == nil {
		return nil, ErrNilSignal
	}
	rate := m.EffectiveRate()
	n := int(duration.Seconds() * rate)
	if n < 1 {
		n = 1 // a very short run still yields one sample per channel
	}
	dt := duration.Seconds() / float64(n)
	tr := &Trace{Duration: duration}
	for _, ch := range m.Channels {
		ctr := ChannelTrace{Channel: ch.Name, Samples: make([]Sample, n)}
		for k := 0; k < n; k++ {
			// Sample mid-interval, as an integrating ADC effectively does.
			ts := units.Time((float64(k) + 0.5) * dt)
			p := sig(ts).Watts() * ch.Share
			i := p / ch.Voltage
			v := ch.Voltage
			if rng != nil {
				i *= ch.CalibGain * (1 + ch.NoiseSD*rng.NormFloat64())
				v *= 1 + 0.001*rng.NormFloat64() // small supply ripple
			}
			ctr.Samples[k] = Sample{T: ts, V: v, I: i}
		}
		tr.Channels = append(tr.Channels, ctr)
	}
	return tr, nil
}

// WriteCSV streams the trace as time-stamped rows:
// channel,t_seconds,volts,amps.
func (t *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"channel", "t", "v", "i"}); err != nil {
		return err
	}
	for _, ch := range t.Channels {
		for _, s := range ch.Samples {
			rec := []string{
				ch.Channel,
				strconv.FormatFloat(s.T.Seconds(), 'g', -1, 64),
				strconv.FormatFloat(s.V, 'g', -1, 64),
				strconv.FormatFloat(s.I, 'g', -1, 64),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace written by WriteCSV. The duration is recovered
// as the latest timestamp plus half the median sampling interval.
func ReadCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) < 2 {
		return nil, ErrEmptyTrace
	}
	byChan := map[string][]Sample{}
	var order []string
	maxT := 0.0
	for _, row := range rows[1:] {
		if len(row) != 4 {
			return nil, fmt.Errorf("row %v: %w", row, ErrMalformedTrace)
		}
		ts, err1 := strconv.ParseFloat(row[1], 64)
		v, err2 := strconv.ParseFloat(row[2], 64)
		i, err3 := strconv.ParseFloat(row[3], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("row %v: %w", row, ErrMalformedTrace)
		}
		if _, ok := byChan[row[0]]; !ok {
			order = append(order, row[0])
		}
		byChan[row[0]] = append(byChan[row[0]], Sample{T: units.Time(ts), V: v, I: i})
		if ts > maxT {
			maxT = ts
		}
	}
	tr := &Trace{}
	for _, name := range order {
		ss := byChan[name]
		sort.Slice(ss, func(a, b int) bool { return ss[a].T < ss[b].T })
		tr.Channels = append(tr.Channels, ChannelTrace{Channel: name, Samples: ss})
	}
	// Recover duration: samples are mid-interval, so the run extends half
	// an interval past the last sample.
	first := tr.Channels[0].Samples
	if len(first) >= 2 {
		dt := (first[1].T - first[0].T).Seconds()
		tr.Duration = units.Time(maxT + dt/2)
	} else {
		tr.Duration = units.Time(2 * maxT)
	}
	return tr, nil
}
