package cache

import (
	"errors"

	"archline/internal/stats"
	"archline/internal/units"
)

// StreamAddrs generates the address stream of a unit-stride streaming
// read over a working set of wsBytes, touched passes times with word-size
// accesses. This is the access pattern of the paper's intensity and cache
// microbenchmarks.
func StreamAddrs(wsBytes units.Bytes, wordBytes units.Bytes, passes int) ([]uint64, error) {
	ws, word := int64(wsBytes), int64(wordBytes)
	if ws <= 0 || word <= 0 || ws < word {
		return nil, errors.New("cache: working set must hold at least one word")
	}
	if passes < 1 {
		return nil, errors.New("cache: passes must be >= 1")
	}
	n := ws / word
	addrs := make([]uint64, 0, n*int64(passes))
	for p := 0; p < passes; p++ {
		for i := int64(0); i < n; i++ {
			addrs = append(addrs, uint64(i*word))
		}
	}
	return addrs, nil
}

// StridedAddrs generates a strided read pattern: every strideBytes over
// the working set, wrapping, for count accesses. Strides beyond the line
// size defeat spatial locality the way the paper "directs" the prefetcher.
func StridedAddrs(wsBytes, strideBytes units.Bytes, count int) ([]uint64, error) {
	ws, stride := int64(wsBytes), int64(strideBytes)
	if ws <= 0 || stride <= 0 {
		return nil, errors.New("cache: working set and stride must be positive")
	}
	if count < 1 {
		return nil, errors.New("cache: count must be >= 1")
	}
	addrs := make([]uint64, count)
	pos := int64(0)
	for i := range addrs {
		addrs[i] = uint64(pos)
		pos += stride
		if pos >= ws {
			pos -= ws
		}
	}
	return addrs, nil
}

// ChaseAddrs generates a pointer-chasing pattern: a random Hamiltonian
// cycle over the cache lines of the working set, followed for count
// steps. This is the paper's random-access microbenchmark: by
// construction each access depends on the previous one, cannot use the
// full interface width, and defeats prefetching.
func ChaseAddrs(wsBytes, lineBytes units.Bytes, count int, rng *stats.Stream) ([]uint64, error) {
	ws, line := int64(wsBytes), int64(lineBytes)
	if ws <= 0 || line <= 0 || ws < line {
		return nil, errors.New("cache: working set must hold at least one line")
	}
	if count < 1 {
		return nil, errors.New("cache: count must be >= 1")
	}
	if rng == nil {
		rng = stats.NewStream(1, "chase")
	}
	n := int(ws / line)
	// Build a random cycle with Sattolo's algorithm: next[i] gives the
	// line visited after line i, and the permutation is one single cycle,
	// so all n lines are visited before any repeats.
	next := make([]int, n)
	for i := range next {
		next[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := rng.Intn(i)
		next[i], next[j] = next[j], next[i]
	}
	addrs := make([]uint64, count)
	cur := 0
	for k := range addrs {
		addrs[k] = uint64(int64(cur) * line)
		cur = next[cur]
	}
	return addrs, nil
}
