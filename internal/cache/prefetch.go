package cache

// Prefetcher models a stride-detecting hardware prefetcher in front of
// one cache level. The paper's microbenchmarks are designed to "direct"
// the prefetcher "into prefetching only the data that will be used";
// this model lets the simulator quantify that: unit-stride streams make
// every prefetch useful, while irregular (pointer-chase) streams defeat
// stride detection entirely and large strides waste fills.
type Prefetcher struct {
	level *Level
	// Degree is how many lines ahead to prefetch once a stride locks.
	Degree int
	// Threshold is how many consecutive identical strides are needed to
	// lock (typical hardware uses 2).
	Threshold int

	lastLine   uint64
	lastStride int64
	confidence int
	haveLast   bool

	issued uint64
}

// NewPrefetcher wraps a level with a stride prefetcher.
func NewPrefetcher(level *Level, degree, threshold int) *Prefetcher {
	if degree < 1 {
		degree = 1
	}
	if threshold < 1 {
		threshold = 1
	}
	return &Prefetcher{level: level, Degree: degree, Threshold: threshold}
}

// Issued returns the number of prefetch fills requested so far.
func (p *Prefetcher) Issued() uint64 { return p.issued }

// Accuracy returns usefulPrefetches/issued, or 1 before any prefetch.
func (p *Prefetcher) Accuracy() float64 {
	if p.issued == 0 {
		return 1
	}
	return float64(p.level.UsefulPrefetches()) / float64(p.issued)
}

// Access performs a demand read through the prefetcher: it updates the
// stride detector and, when locked, inserts the next Degree lines. It
// reports whether the demand access hit.
func (p *Prefetcher) Access(addr uint64) bool {
	hit, _ := p.AccessOp(Op{Addr: addr})
	return hit
}

// AccessOp is Access for read/write ops.
func (p *Prefetcher) AccessOp(op Op) (hit, writeback bool) {
	hit, writeback = p.level.AccessOp(op)
	line := op.Addr >> p.level.lineShift
	if p.haveLast {
		stride := int64(line) - int64(p.lastLine)
		if stride != 0 && stride == p.lastStride {
			p.confidence++
		} else {
			p.confidence = 0
			p.lastStride = stride
		}
		if p.confidence >= p.Threshold && p.lastStride != 0 {
			for k := 1; k <= p.Degree; k++ {
				next := int64(line) + p.lastStride*int64(k)
				if next < 0 {
					break
				}
				target := uint64(next) << p.level.lineShift
				if !p.level.Insert(target) {
					p.issued++
				}
			}
		}
	}
	p.lastLine = line
	p.haveLast = true
	return hit, writeback
}

// Reset clears the detector state (the level is reset separately).
func (p *Prefetcher) Reset() {
	p.haveLast = false
	p.confidence = 0
	p.lastStride = 0
	p.issued = 0
}
