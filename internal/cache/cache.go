// Package cache implements a set-associative cache hierarchy simulator.
//
// The paper's cache microbenchmarks size their working sets so the data
// fits in a chosen level of the memory hierarchy, and its random-access
// microbenchmark chases pointers through a permutation too large to
// cache. This package provides the substrate that makes those working-set
// arguments checkable in simulation: given an access stream, it reports
// how many bytes each level actually served, which internal/microbench
// converts into the per-level Q values the energy model charges.
//
// The simulator models inclusive caches with configurable size, line
// size, associativity, and replacement policy (LRU, FIFO, or pseudo-
// random). It is a functional cache model, not a timing model: timing and
// energy are the job of internal/model and internal/sim.
package cache

import (
	"errors"
	"fmt"

	"archline/internal/stats"
	"archline/internal/units"
)

// Policy selects the replacement policy of a cache level.
type Policy int

// Replacement policies.
const (
	LRU Policy = iota
	FIFO
	Random
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "LRU"
	case FIFO:
		return "FIFO"
	case Random:
		return "random"
	default:
		return "unknown"
	}
}

// Config describes one cache level.
type Config struct {
	Name     string      // e.g. "L1"
	Size     units.Bytes // total capacity; must be a multiple of LineSize*Assoc
	LineSize units.Bytes // bytes per line; power of two
	Assoc    int         // ways per set; >= 1
	Policy   Policy
}

// Validate checks the geometry.
func (c Config) Validate() error {
	size, line := int64(c.Size), int64(c.LineSize)
	if line <= 0 || line&(line-1) != 0 {
		return fmt.Errorf("cache: %s line size %d must be a positive power of two", c.Name, line)
	}
	if c.Assoc < 1 {
		return fmt.Errorf("cache: %s associativity %d must be >= 1", c.Name, c.Assoc)
	}
	if size <= 0 || size%(line*int64(c.Assoc)) != 0 {
		return fmt.Errorf("cache: %s size %d must be a positive multiple of line*assoc = %d",
			c.Name, size, line*int64(c.Assoc))
	}
	nsets := size / (line * int64(c.Assoc))
	if nsets&(nsets-1) != 0 {
		return fmt.Errorf("cache: %s set count %d must be a power of two", c.Name, nsets)
	}
	return nil
}

// Sets returns the number of sets.
func (c Config) Sets() int {
	return int(int64(c.Size) / (int64(c.LineSize) * int64(c.Assoc)))
}

// way holds one resident line: its tag and the bookkeeping counters the
// replacement policies need.
type way struct {
	tag        uint64
	valid      bool
	lastUsed   uint64 // LRU timestamp
	loaded     uint64 // FIFO timestamp
	dirty      bool   // written since fill (write-back policy)
	prefetched bool   // filled by a prefetch, not yet demand-hit
}

// Level is one simulated cache level.
type Level struct {
	cfg              Config
	sets             [][]way
	tick             uint64
	rng              *stats.Stream
	hits             uint64
	misses           uint64
	writebacks       uint64
	prefetchFills    uint64
	usefulPrefetches uint64
	lineShift        uint
	setMask          uint64
}

// NewLevel builds an empty cache level.
func NewLevel(cfg Config) (*Level, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Sets()
	sets := make([][]way, n)
	for i := range sets {
		sets[i] = make([]way, cfg.Assoc)
	}
	shift := uint(0)
	for l := int64(cfg.LineSize); l > 1; l >>= 1 {
		shift++
	}
	return &Level{
		cfg:       cfg,
		sets:      sets,
		rng:       stats.NewStream(0x9e3779b9, "cache-"+cfg.Name),
		lineShift: shift,
		setMask:   uint64(n - 1),
	}, nil
}

// Config returns the level's configuration.
func (l *Level) Config() Config { return l.cfg }

// Hits returns the number of accesses served by this level.
func (l *Level) Hits() uint64 { return l.hits }

// Misses returns the number of accesses that missed this level.
func (l *Level) Misses() uint64 { return l.misses }

// Accesses returns hits + misses.
func (l *Level) Accesses() uint64 { return l.hits + l.misses }

// MissRate returns misses/accesses, or 0 before any access.
func (l *Level) MissRate() float64 {
	total := l.Accesses()
	if total == 0 {
		return 0
	}
	return float64(l.misses) / float64(total)
}

// Reset clears contents and counters.
func (l *Level) Reset() {
	for i := range l.sets {
		for j := range l.sets[i] {
			l.sets[i][j] = way{}
		}
	}
	l.tick, l.hits, l.misses = 0, 0, 0
	l.writebacks, l.prefetchFills, l.usefulPrefetches = 0, 0, 0
}

// Access looks up the line containing addr as a read, filling it on a
// miss, and reports whether it hit.
func (l *Level) Access(addr uint64) bool {
	hit, _ := l.AccessOp(Op{Addr: addr})
	return hit
}

// len64 returns the number of set-index bits implied by the mask.
func len64(mask uint64) int {
	n := 0
	for mask != 0 {
		n++
		mask >>= 1
	}
	return n
}

// Hierarchy is an ordered stack of cache levels backed by memory. All
// levels share the innermost level's line size for traffic accounting.
type Hierarchy struct {
	levels []*Level
}

// NewHierarchy builds a hierarchy from inner (L1) to outer (last-level)
// configurations. At least one level is required, and line sizes must be
// non-decreasing outward.
func NewHierarchy(cfgs ...Config) (*Hierarchy, error) {
	if len(cfgs) == 0 {
		return nil, errors.New("cache: hierarchy needs at least one level")
	}
	h := &Hierarchy{}
	var prevLine units.Bytes
	for i, cfg := range cfgs {
		if i > 0 && cfg.LineSize < prevLine {
			return nil, fmt.Errorf("cache: %s line size shrinks outward", cfg.Name)
		}
		prevLine = cfg.LineSize
		l, err := NewLevel(cfg)
		if err != nil {
			return nil, err
		}
		h.levels = append(h.levels, l)
	}
	return h, nil
}

// Levels returns the levels from innermost to outermost.
func (h *Hierarchy) Levels() []*Level { return h.levels }

// Reset clears all levels.
func (h *Hierarchy) Reset() {
	for _, l := range h.levels {
		l.Reset()
	}
}

// Access walks the hierarchy with addr and returns the depth that served
// it: 0 for the innermost level, len(levels) for memory. Missing levels
// are filled on the way back (inclusive allocation).
func (h *Hierarchy) Access(addr uint64) int {
	for depth, l := range h.levels {
		if l.Access(addr) {
			return depth
		}
	}
	return len(h.levels)
}

// Traffic summarises where an access stream's data came from.
type Traffic struct {
	// ServedBy[d] counts accesses satisfied at depth d; index len(levels)
	// is main memory.
	ServedBy []uint64
	// LineBytes[d] is the byte volume moved *into* depth d-1 from depth d,
	// i.e. misses at depth d-1 times the line size; LineBytes[0] is the
	// bytes the core requested.
	LineBytes []units.Bytes
}

// Run replays an address stream and accumulates traffic. accessBytes is
// the request size the core issues per access (word size for streaming
// loads).
func (h *Hierarchy) Run(addrs []uint64, accessBytes units.Bytes) Traffic {
	served := make([]uint64, len(h.levels)+1)
	for _, a := range addrs {
		served[h.Access(a)]++
	}
	bytes := make([]units.Bytes, len(h.levels)+1)
	bytes[0] = units.Bytes(float64(len(addrs)) * accessBytes.Count())
	for d := 1; d <= len(h.levels); d++ {
		// Accesses served at depth >= d all crossed the boundary between
		// depth d-1 and d, each moving one line of the level at depth d-1.
		var crossings uint64
		for k := d; k <= len(h.levels); k++ {
			crossings += served[k]
		}
		line := h.levels[d-1].cfg.LineSize
		bytes[d] = units.Bytes(float64(crossings) * line.Count())
	}
	return Traffic{ServedBy: served, LineBytes: bytes}
}
