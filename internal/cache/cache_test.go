package cache

import (
	"testing"
	"testing/quick"

	"archline/internal/stats"
	"archline/internal/units"
)

func l1Config() Config {
	return Config{Name: "L1", Size: units.KiB(32), LineSize: 64, Assoc: 8, Policy: LRU}
}

func l2Config() Config {
	return Config{Name: "L2", Size: units.KiB(256), LineSize: 64, Assoc: 8, Policy: LRU}
}

func TestConfigValidate(t *testing.T) {
	if err := l1Config().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := l1Config()
	bad.LineSize = 48 // not a power of two
	if bad.Validate() == nil {
		t.Error("non-power-of-two line size should be rejected")
	}
	bad = l1Config()
	bad.Assoc = 0
	if bad.Validate() == nil {
		t.Error("zero associativity should be rejected")
	}
	bad = l1Config()
	bad.Size = units.KiB(33) // not a multiple of line*assoc
	if bad.Validate() == nil {
		t.Error("ragged size should be rejected")
	}
	bad = l1Config()
	bad.Size = units.Bytes(64 * 8 * 3) // 3 sets: not a power of two
	if bad.Validate() == nil {
		t.Error("non-power-of-two set count should be rejected")
	}
	if got := l1Config().Sets(); got != 64 {
		t.Errorf("32KiB/64B/8-way has 64 sets, got %d", got)
	}
}

func TestPolicyString(t *testing.T) {
	for p, want := range map[Policy]string{LRU: "LRU", FIFO: "FIFO", Random: "random", Policy(9): "unknown"} {
		if p.String() != want {
			t.Errorf("%d.String() = %q", p, p.String())
		}
	}
}

func TestLevelBasics(t *testing.T) {
	l, err := NewLevel(l1Config())
	if err != nil {
		t.Fatal(err)
	}
	// First touch misses, second hits (same line).
	if l.Access(0) {
		t.Error("cold access should miss")
	}
	if !l.Access(32) {
		t.Error("same-line access should hit")
	}
	if l.Hits() != 1 || l.Misses() != 1 || l.Accesses() != 2 {
		t.Errorf("counters: hits=%d misses=%d", l.Hits(), l.Misses())
	}
	if l.MissRate() != 0.5 {
		t.Errorf("miss rate = %v", l.MissRate())
	}
	l.Reset()
	if l.Accesses() != 0 || l.MissRate() != 0 {
		t.Error("Reset should clear counters")
	}
	if l.Access(0) {
		t.Error("post-reset access should miss again")
	}
	if l.Config().Name != "L1" {
		t.Error("Config accessor")
	}
}

func TestWorkingSetFitsAllHits(t *testing.T) {
	// A working set equal to the capacity streams at 100% hits after the
	// first pass — the premise of the paper's cache microbenchmarks.
	l, _ := NewLevel(l1Config())
	addrs, err := StreamAddrs(units.KiB(32), 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range addrs {
		l.Access(a)
	}
	coldMisses := uint64(int64(units.KiB(32)) / 64)
	if l.Misses() != coldMisses {
		t.Errorf("misses = %d, want only %d cold misses", l.Misses(), coldMisses)
	}
}

func TestWorkingSetExceedsCapacityLRUStreamsMiss(t *testing.T) {
	// Streaming a working set 2x the capacity under LRU evicts every line
	// before reuse: 100% miss rate at line granularity.
	l, _ := NewLevel(l1Config())
	addrs, _ := StreamAddrs(units.KiB(64), 64, 3) // line-stride touches
	for _, a := range addrs {
		l.Access(a)
	}
	if l.Hits() != 0 {
		t.Errorf("LRU streaming over 2x capacity should never hit, got %d hits", l.Hits())
	}
}

func TestLRUEviction(t *testing.T) {
	// Single-set cache, 2 ways, 64B lines: third distinct line evicts the
	// least recently used.
	cfg := Config{Name: "tiny", Size: 128, LineSize: 64, Assoc: 2, Policy: LRU}
	l, err := NewLevel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l.Access(0)   // miss, loads line 0
	l.Access(64)  // miss, loads line 1
	l.Access(0)   // hit, line 0 now MRU
	l.Access(128) // miss, evicts line 1 (LRU)
	if !l.Access(0) {
		t.Error("line 0 should still be resident")
	}
	if l.Access(64) {
		t.Error("line 1 should have been evicted")
	}
}

func TestFIFOEviction(t *testing.T) {
	cfg := Config{Name: "tiny", Size: 128, LineSize: 64, Assoc: 2, Policy: FIFO}
	l, _ := NewLevel(cfg)
	l.Access(0)   // loads line 0 (first in)
	l.Access(64)  // loads line 1
	l.Access(0)   // hit; FIFO ignores recency
	l.Access(128) // evicts line 0 (first in), despite being just used
	if !l.Access(64) {
		t.Error("line 1 should still be resident under FIFO")
	}
	if l.Access(0) {
		t.Error("FIFO should have evicted line 0")
	}
}

func TestRandomPolicyStaysLegal(t *testing.T) {
	cfg := Config{Name: "tiny", Size: 256, LineSize: 64, Assoc: 4, Policy: Random}
	l, _ := NewLevel(cfg)
	for i := 0; i < 10000; i++ {
		l.Access(uint64(i*64) % 4096)
	}
	if l.Accesses() != 10000 {
		t.Error("all accesses must be counted")
	}
	if l.Hits()+l.Misses() != l.Accesses() {
		t.Error("hits + misses must equal accesses")
	}
}

func TestHierarchy(t *testing.T) {
	h, err := NewHierarchy(l1Config(), l2Config())
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Levels()) != 2 {
		t.Fatal("two levels expected")
	}
	// Cold access misses both: served by memory (depth 2).
	if d := h.Access(0); d != 2 {
		t.Errorf("cold access served at depth %d, want 2 (memory)", d)
	}
	// Immediately again: L1 hit (depth 0).
	if d := h.Access(0); d != 0 {
		t.Errorf("warm access served at depth %d, want 0", d)
	}
	h.Reset()
	if d := h.Access(0); d != 2 {
		t.Error("Reset should cold the hierarchy")
	}

	if _, err := NewHierarchy(); err == nil {
		t.Error("empty hierarchy should error")
	}
	shrink := l2Config()
	shrink.LineSize = 32
	if _, err := NewHierarchy(l1Config(), shrink); err == nil {
		t.Error("line size shrinking outward should error")
	}
	bad := l1Config()
	bad.Assoc = 0
	if _, err := NewHierarchy(bad); err == nil {
		t.Error("invalid level config should propagate")
	}
}

func TestL2ServesL1Overflow(t *testing.T) {
	// Working set fits L2 but not L1: after warmup, L1 misses are served
	// by L2, not memory.
	h, _ := NewHierarchy(l1Config(), l2Config())
	addrs, _ := StreamAddrs(units.KiB(128), 64, 1)
	for _, a := range addrs { // warm both
		h.Access(a)
	}
	tr := h.Run(addrs, 64)
	if tr.ServedBy[2] != 0 {
		t.Errorf("second pass over L2-resident set should not touch memory, got %d", tr.ServedBy[2])
	}
	if tr.ServedBy[1] == 0 {
		t.Error("L2 should serve the L1 overflow")
	}
}

func TestTrafficAccounting(t *testing.T) {
	h, _ := NewHierarchy(l1Config(), l2Config())
	addrs, _ := StreamAddrs(units.KiB(16), 8, 1) // cold streaming, fits L1
	tr := h.Run(addrs, 8)
	n := uint64(len(addrs))
	var total uint64
	for _, s := range tr.ServedBy {
		total += s
	}
	if total != n {
		t.Errorf("ServedBy sums to %d, want %d", total, n)
	}
	// Requested bytes: n words of 8 bytes.
	if tr.LineBytes[0] != units.Bytes(float64(n)*8) {
		t.Errorf("requested bytes = %v", tr.LineBytes[0])
	}
	// Cold pass: every line fetched exactly once from memory.
	lines := float64(units.KiB(16)) / 64
	if tr.LineBytes[2] != units.Bytes(lines*64) {
		t.Errorf("memory traffic = %v bytes, want %v", tr.LineBytes[2], lines*64)
	}
	// Inclusive traffic is non-increasing outward beyond the request level.
	if tr.LineBytes[2] > tr.LineBytes[1] {
		t.Errorf("memory traffic %v exceeds L2 traffic %v", tr.LineBytes[2], tr.LineBytes[1])
	}
}

func TestStreamAddrs(t *testing.T) {
	addrs, err := StreamAddrs(64, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != 16 {
		t.Fatalf("len = %d", len(addrs))
	}
	if addrs[0] != 0 || addrs[7] != 56 || addrs[8] != 0 {
		t.Error("stream addresses wrong")
	}
	for _, c := range []struct {
		ws, word units.Bytes
		passes   int
	}{
		{0, 8, 1}, {8, 0, 1}, {4, 8, 1}, {64, 8, 0},
	} {
		if _, err := StreamAddrs(c.ws, c.word, c.passes); err == nil {
			t.Errorf("StreamAddrs(%v,%v,%d) should error", c.ws, c.word, c.passes)
		}
	}
}

func TestStridedAddrs(t *testing.T) {
	addrs, err := StridedAddrs(256, 64, 6)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{0, 64, 128, 192, 0, 64}
	for i, w := range want {
		if addrs[i] != w {
			t.Errorf("addrs[%d] = %d, want %d", i, addrs[i], w)
		}
	}
	if _, err := StridedAddrs(0, 64, 1); err == nil {
		t.Error("zero working set should error")
	}
	if _, err := StridedAddrs(256, 0, 1); err == nil {
		t.Error("zero stride should error")
	}
	if _, err := StridedAddrs(256, 64, 0); err == nil {
		t.Error("zero count should error")
	}
}

func TestChaseAddrsVisitsAllLines(t *testing.T) {
	const lines = 64
	rng := stats.NewStream(42, "chase-test")
	addrs, err := ChaseAddrs(lines*64, 64, lines, rng)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	for _, a := range addrs {
		if a%64 != 0 {
			t.Fatalf("address %d not line-aligned", a)
		}
		seen[a] = true
	}
	// Sattolo's cycle: the first n steps visit all n lines exactly once.
	if len(seen) != lines {
		t.Errorf("chase visited %d distinct lines, want %d", len(seen), lines)
	}
}

func TestChaseAddrsDefeatsCache(t *testing.T) {
	// Chasing through a working set far larger than the cache should miss
	// nearly always — the premise of the random-access benchmark.
	l, _ := NewLevel(l1Config())
	addrs, _ := ChaseAddrs(units.MiB(8), 64, 100000, stats.NewStream(7, "big-chase"))
	for _, a := range addrs {
		l.Access(a)
	}
	if l.MissRate() < 0.95 {
		t.Errorf("chase over 8 MiB should defeat a 32 KiB cache, miss rate %v", l.MissRate())
	}
}

func TestChaseAddrsErrors(t *testing.T) {
	if _, err := ChaseAddrs(32, 64, 10, nil); err == nil {
		t.Error("working set below one line should error")
	}
	if _, err := ChaseAddrs(1024, 64, 0, nil); err == nil {
		t.Error("zero count should error")
	}
	if _, err := ChaseAddrs(1024, 0, 10, nil); err == nil {
		t.Error("zero line should error")
	}
	// nil rng uses a default stream deterministically.
	a, err := ChaseAddrs(1024, 64, 16, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := ChaseAddrs(1024, 64, 16, nil)
	for i := range a {
		if a[i] != b[i] {
			t.Error("nil-rng chase should be deterministic")
		}
	}
}

// Property: hits + misses == accesses for arbitrary address streams.
func TestQuickCountersConsistent(t *testing.T) {
	f := func(raw []uint32, policyRaw uint8) bool {
		cfg := Config{Name: "q", Size: 4096, LineSize: 64, Assoc: 4,
			Policy: Policy(policyRaw % 3)}
		l, err := NewLevel(cfg)
		if err != nil {
			return false
		}
		for _, a := range raw {
			l.Access(uint64(a))
		}
		return l.Hits()+l.Misses() == uint64(len(raw))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: an immediate re-access of the same address always hits.
func TestQuickTemporalLocality(t *testing.T) {
	f := func(raw []uint32) bool {
		l, err := NewLevel(l1Config())
		if err != nil {
			return false
		}
		for _, a := range raw {
			l.Access(uint64(a))
			if !l.Access(uint64(a)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: traffic outward is non-increasing and ServedBy sums to the
// access count.
func TestQuickHierarchyTraffic(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		h, err := NewHierarchy(
			Config{Name: "L1", Size: 1024, LineSize: 64, Assoc: 2, Policy: LRU},
			Config{Name: "L2", Size: 8192, LineSize: 64, Assoc: 4, Policy: LRU},
		)
		if err != nil {
			return false
		}
		addrs := make([]uint64, len(raw))
		for i, a := range raw {
			addrs[i] = uint64(a % 65536)
		}
		tr := h.Run(addrs, 8)
		var total uint64
		for _, s := range tr.ServedBy {
			total += s
		}
		if total != uint64(len(addrs)) {
			return false
		}
		return tr.LineBytes[2] <= tr.LineBytes[1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
