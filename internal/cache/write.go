package cache

import (
	"archline/internal/units"
)

// This file adds write handling to the cache simulator: write-back,
// write-allocate caches, the policy of every platform in Table I. The
// paper's eps_mem "does not differentiate reads and writes, so consider
// eps_mem as the average of these costs"; the write-back machinery lets
// the microbenchmarks quantify how much write-back traffic a kernel
// actually generates, which is what that average is averaging over.

// Op is one memory operation in a read/write access stream.
type Op struct {
	Addr  uint64
	Write bool
}

// ReadStream converts plain addresses into read ops.
func ReadStream(addrs []uint64) []Op {
	ops := make([]Op, len(addrs))
	for i, a := range addrs {
		ops[i] = Op{Addr: a}
	}
	return ops
}

// WriteEvery marks every k-th op of a read stream as a write (k >= 1),
// modelling a kernel with a given store ratio. k <= 0 leaves all reads.
func WriteEvery(addrs []uint64, k int) []Op {
	ops := ReadStream(addrs)
	if k <= 0 {
		return ops
	}
	for i := k - 1; i < len(ops); i += k {
		ops[i].Write = true
	}
	return ops
}

// AccessOp performs one read or write with write-allocate semantics and
// reports whether it hit and whether a dirty line was written back.
func (l *Level) AccessOp(op Op) (hit, writeback bool) {
	l.tick++
	lineAddr := op.Addr >> l.lineShift
	set := l.sets[lineAddr&l.setMask]
	tag := lineAddr >> uint(len64(l.setMask))
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			l.hits++
			set[i].lastUsed = l.tick
			if op.Write {
				set[i].dirty = true
			}
			if set[i].prefetched {
				set[i].prefetched = false
				l.usefulPrefetches++
			}
			return true, false
		}
	}
	l.misses++
	victim := l.chooseVictim(set)
	writeback = set[victim].valid && set[victim].dirty
	if writeback {
		l.writebacks++
	}
	set[victim] = way{tag: tag, valid: true, lastUsed: l.tick, loaded: l.tick, dirty: op.Write}
	return false, writeback
}

// chooseVictim picks a replacement victim in the set per the policy.
func (l *Level) chooseVictim(set []way) int {
	for i := range set {
		if !set[i].valid {
			return i
		}
	}
	switch l.cfg.Policy {
	case LRU:
		victim := 0
		for i := 1; i < len(set); i++ {
			if set[i].lastUsed < set[victim].lastUsed {
				victim = i
			}
		}
		return victim
	case FIFO:
		victim := 0
		for i := 1; i < len(set); i++ {
			if set[i].loaded < set[victim].loaded {
				victim = i
			}
		}
		return victim
	case Random:
		return l.rng.Intn(len(set))
	default:
		return 0
	}
}

// Writebacks returns the number of dirty lines evicted so far.
func (l *Level) Writebacks() uint64 { return l.writebacks }

// UsefulPrefetches returns how many prefetched lines saw a demand hit.
func (l *Level) UsefulPrefetches() uint64 { return l.usefulPrefetches }

// Insert loads a line without demand-access accounting (a prefetch). It
// reports whether the line was already resident. Inserted lines are
// marked so a later demand hit counts as a useful prefetch.
func (l *Level) Insert(addr uint64) bool {
	l.tick++
	lineAddr := addr >> l.lineShift
	set := l.sets[lineAddr&l.setMask]
	tag := lineAddr >> uint(len64(l.setMask))
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true
		}
	}
	victim := l.chooseVictim(set)
	if set[victim].valid && set[victim].dirty {
		l.writebacks++
	}
	set[victim] = way{tag: tag, valid: true, lastUsed: l.tick, loaded: l.tick, prefetched: true}
	l.prefetchFills++
	return false
}

// PrefetchFills returns how many lines prefetching inserted.
func (l *Level) PrefetchFills() uint64 { return l.prefetchFills }

// RWTraffic summarises a read/write stream replay: demand traffic per
// boundary plus the write-back volume flowing outward from each level.
type RWTraffic struct {
	Traffic
	// WritebackBytes[d] is the dirty-eviction volume leaving the level at
	// depth d (index 0 = innermost).
	WritebackBytes []units.Bytes
}

// RunOps replays a read/write stream through the hierarchy with
// write-allocate at every level and returns demand and write-back
// traffic.
func (h *Hierarchy) RunOps(ops []Op, accessBytes units.Bytes) RWTraffic {
	served := make([]uint64, len(h.levels)+1)
	wbBefore := make([]uint64, len(h.levels))
	for i, l := range h.levels {
		wbBefore[i] = l.Writebacks()
	}
	for _, op := range ops {
		depth := len(h.levels)
		for d, l := range h.levels {
			hit, _ := l.AccessOp(op)
			if hit {
				depth = d
				break
			}
		}
		served[depth]++
	}
	bytes := make([]units.Bytes, len(h.levels)+1)
	bytes[0] = units.Bytes(float64(len(ops)) * accessBytes.Count())
	for d := 1; d <= len(h.levels); d++ {
		var crossings uint64
		for k := d; k <= len(h.levels); k++ {
			crossings += served[k]
		}
		line := h.levels[d-1].cfg.LineSize
		bytes[d] = units.Bytes(float64(crossings) * line.Count())
	}
	wb := make([]units.Bytes, len(h.levels))
	for i, l := range h.levels {
		wb[i] = units.Bytes(float64(l.Writebacks()-wbBefore[i]) * l.cfg.LineSize.Count())
	}
	return RWTraffic{
		Traffic:        Traffic{ServedBy: served, LineBytes: bytes},
		WritebackBytes: wb,
	}
}
